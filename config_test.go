package gravel_test

import (
	"errors"
	"strings"
	"testing"

	"gravel"
)

// TestConfigValidate exercises the single validation funnel: each bad
// configuration must come back as a *ConfigError naming the offending
// field.
func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name  string
		cfg   gravel.Config
		field string // "" means valid
	}{
		{"ok-minimal", gravel.Config{Nodes: 1}, ""},
		{"ok-full", gravel.Config{Nodes: 8, WGSize: 256, GroupSize: 4, Transport: "loopback"}, ""},
		{"zero-nodes", gravel.Config{}, "Nodes"},
		{"negative-nodes", gravel.Config{Nodes: -3}, "Nodes"},
		{"wgsize-not-multiple", gravel.Config{Nodes: 2, WGSize: 100}, "WGSize"},
		{"wgsize-negative", gravel.Config{Nodes: 2, WGSize: -64}, "WGSize"},
		{"groupsize-negative", gravel.Config{Nodes: 2, GroupSize: -1}, "GroupSize"},
		{"unknown-transport", gravel.Config{Nodes: 2, Transport: "rdma"}, "Transport"},
		{"chan-alias-ok", gravel.Config{Nodes: 2, Transport: "chan"}, ""},
		{"resolver-shards-ok", gravel.Config{Nodes: 2, ResolverShards: 4}, ""},
		{"resolver-shards-not-pow2", gravel.Config{Nodes: 2, ResolverShards: 3}, "ResolverShards"},
		{"resolver-shards-too-many", gravel.Config{Nodes: 2, ResolverShards: 128}, "ResolverShards"},
		{"resolver-shards-negative", gravel.Config{Nodes: 2, ResolverShards: -2}, "ResolverShards"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.field == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			var ce *gravel.ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("Validate() = %v (%T), want *ConfigError", err, err)
			}
			if ce.Field != tc.field {
				t.Errorf("ConfigError.Field = %q, want %q", ce.Field, tc.field)
			}
			if !strings.Contains(ce.Error(), "invalid "+tc.field) {
				t.Errorf("Error() = %q, want it to name the field", ce.Error())
			}
		})
	}
}

// TestNewCheckedRejects verifies the error-returning constructor and
// that the panicking one throws the same typed value.
func TestNewCheckedRejects(t *testing.T) {
	if _, err := gravel.NewChecked(gravel.Config{Nodes: 0}); err == nil {
		t.Fatal("NewChecked accepted Nodes=0")
	}
	sys, err := gravel.NewChecked(gravel.Config{Nodes: 2})
	if err != nil {
		t.Fatalf("NewChecked rejected a valid config: %v", err)
	}
	sys.Close()

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("New(Nodes=0) did not panic")
		}
		if _, ok := r.(*gravel.ConfigError); !ok {
			t.Fatalf("New panicked with %T, want *ConfigError", r)
		}
	}()
	gravel.New(gravel.Config{})
}

// TestNewModelChecked verifies model-name and cluster-size validation,
// and that every advertised model still constructs.
func TestNewModelChecked(t *testing.T) {
	if _, err := gravel.NewModelChecked("warp-drive", 2, nil); err == nil {
		t.Fatal("NewModelChecked accepted an unknown model")
	} else {
		var ce *gravel.ConfigError
		if !errors.As(err, &ce) || ce.Field != "Model" {
			t.Fatalf("unknown model error = %v, want *ConfigError{Field: Model}", err)
		}
	}
	if _, err := gravel.NewModelChecked(gravel.ModelGravel, 0, nil); err == nil {
		t.Fatal("NewModelChecked accepted 0 nodes")
	}
	for _, name := range gravel.Models() {
		sys, err := gravel.NewModelChecked(name, 2, nil)
		if err != nil {
			t.Errorf("NewModelChecked(%q) = %v", name, err)
			continue
		}
		sys.Close()
	}
}
