package gravel_test

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"gravel"
	"gravel/internal/apps/gups"
	"gravel/internal/core"
	"gravel/internal/transport"
)

// Chaos tests: the TCP fabric must hide every recoverable injected
// fault (bit-exact results under drops, duplicates, delays,
// reordering, corruption, and severs) and fail fast with typed errors
// on unrecoverable ones (a killed worker, a dead coordinator). All are
// skipped under -short; `gravel-node -chaos` is the multi-process twin.

func startChaosCoord(t *testing.T, n int) (*transport.Coordinator, string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := transport.NewCoordinator(n)
	go c.Serve(ln)
	return c, ln.Addr().String(), func() { ln.Close() }
}

// nodeRun is one in-process TCP cluster member's lifecycle and outcome.
type nodeRun struct {
	sys          gravel.System
	tcp          *transport.TCP
	local, total uint64
	err          error
	// startErr snapshots err at startup so the kill tests can check it
	// mid-run (ordered by startWG) while the node goroutine keeps
	// writing err.
	startErr error
}

// start builds the node's system and transport, recovering the typed
// panics the runtime uses for transport failure into r.err.
func (r *nodeRun) start(i, n int, coordAddr string, faults *gravel.FaultConfig, opts gravel.TransportOptions) bool {
	defer r.recoverErr()
	opts.Self = i
	opts.Coord = coordAddr
	r.sys = gravel.New(gravel.Config{
		Nodes:         n,
		Transport:     "tcp",
		Faults:        faults,
		TransportOpts: opts,
	})
	r.tcp = r.sys.(interface{ Fabric() core.Fabric }).Fabric().(*transport.TCP)
	return true
}

func (r *nodeRun) recoverErr() {
	if rec := recover(); rec != nil {
		if e, ok := rec.(error); ok {
			r.err = e
		} else {
			r.err = fmt.Errorf("%v", rec)
		}
	}
}

func (r *nodeRun) close() {
	if r.sys != nil {
		r.sys.Close()
	}
}

var chaosInProcGUPS = gups.Config{
	TableSize:      1 << 12,
	UpdatesPerNode: 1 << 10,
	Seed:           7,
	Steps:          2,
}

func chanRefSum(t *testing.T, n int, cfg gups.Config) uint64 {
	t.Helper()
	ref := gravel.New(gravel.Config{Nodes: n})
	defer ref.Close()
	return gups.Run(ref, cfg).Sum
}

// runFaultedCluster runs GUPS on an n-node in-process TCP cluster with
// the given fault schedule and returns the per-node outcomes.
func runFaultedCluster(t *testing.T, n int, faults *gravel.FaultConfig) []nodeRun {
	t.Helper()
	_, addr, stop := startChaosCoord(t, n)
	defer stop()
	runs := make([]nodeRun, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := &runs[i]
			if !r.start(i, n, addr, faults, gravel.TransportOptions{
				// Generous detection margins: every injected fault in the
				// schedule must be recovered, never escalated.
				SuspectTimeout:    20 * time.Second,
				HeartbeatInterval: 5 * time.Second,
			}) {
				return
			}
			defer r.recoverErr()
			r.local = gups.RunOn(r.sys, chaosInProcGUPS, i).Sum
			r.total, r.err = r.tcp.Reduce("gups:sum", r.local)
		}(i)
	}
	wg.Wait()
	return runs
}

// TestChaosScheduleBitExact runs the acceptance fault schedule — 2%
// drop, 1% dup, 1% reorder, 0.5% corruption, delays up to 5ms, one
// sever per link — over a 4-node TCP cluster and requires the result
// to be bit-exact with the in-process channel fabric.
func TestChaosScheduleBitExact(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped in -short mode")
	}
	const n = 4
	want := chanRefSum(t, n, chaosInProcGUPS)
	faults := &gravel.FaultConfig{
		Seed:     1,
		Drop:     0.02,
		Dup:      0.01,
		Reorder:  0.01,
		Corrupt:  0.005,
		Delay:    0.2,
		DelayMax: 5 * time.Millisecond,
		Sever:    0.002,
		SeverMax: 1,
	}
	runs := runFaultedCluster(t, n, faults)
	var sum uint64
	for i := range runs {
		r := &runs[i]
		defer r.close()
		if r.err != nil {
			t.Fatalf("node %d failed under the recoverable schedule: %v", i, r.err)
		}
		if r.total != want {
			t.Fatalf("node %d reduced sum %d, want %d", i, r.total, want)
		}
		sum += r.local
	}
	if sum != want {
		t.Fatalf("local sums add to %d, want %d", sum, want)
	}
}

// TestChaosCorruptionCountedAndRecovered injects aggressive payload
// corruption: the frame CRC must catch every flip, the receiver must
// count each in NetStats.CorruptFrames, and retransmission must keep
// the result bit-exact.
func TestChaosCorruptionCountedAndRecovered(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped in -short mode")
	}
	const n = 4
	want := chanRefSum(t, n, chaosInProcGUPS)
	runs := runFaultedCluster(t, n, &gravel.FaultConfig{Seed: 9, Corrupt: 0.25})
	var sum uint64
	var corrupt, reconnects int64
	for i := range runs {
		r := &runs[i]
		defer r.close()
		if r.err != nil {
			t.Fatalf("node %d failed under corruption: %v", i, r.err)
		}
		if r.total != want {
			t.Fatalf("node %d reduced sum %d, want %d", i, r.total, want)
		}
		sum += r.local
		s := r.sys.NetStats()
		corrupt += s.CorruptFrames
		reconnects += s.Reconnects
	}
	if sum != want {
		t.Fatalf("local sums add to %d, want %d", sum, want)
	}
	if corrupt == 0 {
		t.Fatal("corruption schedule injected but no CorruptFrames counted — CRC path not exercised")
	}
	if reconnects == 0 {
		t.Fatal("corrupt frames must force retransmit via reconnect, but no reconnects happened")
	}
}

// chaosKillGUPS is one long launch — hundreds of steps of quiesce and
// barrier traffic — so the mid-run kill always lands inside it. It must
// be a single RunOn, not a repeat loop: each RunOn allocates a fresh
// pgas array, and barrier release is asymmetric, so a repeat loop races
// one node's next-iteration updates against another node's not-yet-run
// Alloc.
var chaosKillGUPS = gups.Config{
	TableSize:      1 << 12,
	UpdatesPerNode: 400 << 8,
	Seed:           7,
	Steps:          400,
}

// chaosRun drives the long launch; the kill is expected to unwind it
// with a typed panic, recovered into r.err.
func (r *nodeRun) chaosRun() {
	defer r.recoverErr()
	gups.RunOn(r.sys, chaosKillGUPS, r.tcp.Self())
	r.err = fmt.Errorf("no transport failure surfaced before the run completed")
}

// waitGoroutines polls until the goroutine count returns near base,
// dumping all stacks if it never does — the no-leak check for the
// failure paths.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+5 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	m := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked after failure teardown: %d, base %d\n%s",
		runtime.NumGoroutine(), base, buf[:m])
}

const chaosSuspect = 500 * time.Millisecond

func chaosKillOpts() gravel.TransportOptions {
	return gravel.TransportOptions{
		SuspectTimeout:    chaosSuspect,
		HeartbeatInterval: chaosSuspect / 4,
		CoordRPCTimeout:   time.Second,
	}
}

// TestChaosWorkerKillSurfacesPeerDown kills one node's transport
// mid-run (the in-process stand-in for SIGKILLing a worker) and
// requires every survivor's Step to unwind with a typed PeerDownError
// within twice the suspect timeout, leaking nothing.
func TestChaosWorkerKillSurfacesPeerDown(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped in -short mode")
	}
	const n = 4
	base := runtime.NumGoroutine()
	_, addr, stop := startChaosCoord(t, n)
	defer stop()

	runs := make([]nodeRun, n)
	var startWG, runWG sync.WaitGroup
	for i := 0; i < n; i++ {
		startWG.Add(1)
		runWG.Add(1)
		go func(i int) {
			defer runWG.Done()
			r := &runs[i]
			ok := r.start(i, n, addr, nil, chaosKillOpts())
			r.startErr = r.err
			startWG.Done()
			if !ok {
				return
			}
			r.chaosRun()
		}(i)
	}
	startWG.Wait()
	for i := range runs {
		if runs[i].startErr != nil {
			t.Fatalf("node %d failed to start: %v", i, runs[i].startErr)
		}
	}
	time.Sleep(300 * time.Millisecond) // let the cluster get into its run
	const victim = n - 1
	killedAt := time.Now()
	runs[victim].tcp.Kill()
	runWG.Wait()
	detection := time.Since(killedAt)

	for i := range runs {
		if i == victim {
			continue
		}
		var pd *transport.PeerDownError
		if !errors.As(runs[i].err, &pd) {
			t.Errorf("survivor %d got %v, want a PeerDownError", i, runs[i].err)
		} else if pd.Node != victim {
			t.Errorf("survivor %d blamed node %d, want %d (detector %s)", i, pd.Node, victim, pd.Detector)
		}
	}
	// The acceptance bound: typed errors within 2x the suspect timeout
	// (plus scheduling slack for the recovery unwind itself).
	if limit := 2*chaosSuspect + 2*time.Second; detection > limit {
		t.Errorf("survivors took %v to unwind, want <= %v", detection, limit)
	}
	for i := range runs {
		runs[i].close()
	}
	waitGoroutines(t, base)
}

// TestChaosCoordinatorDeathMidBarrier kills the coordinator mid-run:
// every worker's Step must unwind with a typed CoordDownError within
// its RPC deadline, and teardown must leak no goroutines.
func TestChaosCoordinatorDeathMidBarrier(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped in -short mode")
	}
	const n = 4
	base := runtime.NumGoroutine()
	coord, addr, stop := startChaosCoord(t, n)
	defer stop()

	runs := make([]nodeRun, n)
	var startWG, runWG sync.WaitGroup
	for i := 0; i < n; i++ {
		startWG.Add(1)
		runWG.Add(1)
		go func(i int) {
			defer runWG.Done()
			r := &runs[i]
			ok := r.start(i, n, addr, nil, chaosKillOpts())
			r.startErr = r.err
			startWG.Done()
			if !ok {
				return
			}
			r.chaosRun()
		}(i)
	}
	startWG.Wait()
	for i := range runs {
		if runs[i].startErr != nil {
			t.Fatalf("node %d failed to start: %v", i, runs[i].startErr)
		}
	}
	time.Sleep(300 * time.Millisecond) // land the kill mid-run, between barriers
	killedAt := time.Now()
	stop()       // no new coordinator connections
	coord.Kill() // sever the established ones
	runWG.Wait()
	detection := time.Since(killedAt)

	for i := range runs {
		var cd *transport.CoordDownError
		if !errors.As(runs[i].err, &cd) {
			t.Errorf("worker %d got %v, want a CoordDownError", i, runs[i].err)
		}
	}
	if limit := 2*chaosSuspect + 2*time.Second; detection > limit {
		t.Errorf("workers took %v to unwind, want <= %v", detection, limit)
	}
	for i := range runs {
		runs[i].close()
	}
	waitGoroutines(t, base)
}
