module gravel

go 1.24
