package graphlib

import "math"

// ConnectedComponents labels every vertex with the smallest vertex ID
// in its (weakly) connected component, by min-label propagation: a
// monotone fixpoint, so the persist-slots semantic is safe.
type ConnectedComponents struct{}

// Init implements Program.
func (ConnectedComponents) Init(v int) uint64 { return uint64(v) }

// Scatter implements Program.
func (ConnectedComponents) Scatter(v int, state uint64) (uint64, bool) { return state, true }

// GatherInit implements Program.
func (ConnectedComponents) GatherInit(int) uint64 { return math.MaxUint64 }

// Gather implements Program.
func (ConnectedComponents) Gather(acc, msg uint64) uint64 {
	if msg < acc {
		return msg
	}
	return acc
}

// Apply implements Program.
func (ConnectedComponents) Apply(v int, state, acc uint64) (uint64, bool) {
	if acc < state {
		return acc, true
	}
	return state, false
}

// NoMessage implements Program.
func (ConnectedComponents) NoMessage() uint64 { return math.MaxUint64 }

// PageRank runs a fixed number of damped PageRank iterations in Q.32
// fixed point (identical arithmetic to the paper-workload implementation
// in internal/apps/pagerank). Every vertex stays active for Rounds
// rounds; pass Rounds as maxRounds to Engine.Run.
type PageRank struct {
	// Rounds is the iteration count.
	Rounds int
	// deg is captured at engine setup via NewPageRank.
	deg func(v int) int
}

// PageRankScale is the fixed-point unit (1.0).
const PageRankScale = 1 << 32

// pageRankDamping is 0.85 in fixed point.
const pageRankDamping = PageRankScale * 85 / 100

// NewPageRank builds the program for a particular graph (Scatter needs
// out-degrees).
func NewPageRank(g *Graph, rounds int) *PageRank {
	return &PageRank{Rounds: rounds, deg: g.Deg}
}

// Init implements Program.
func (p *PageRank) Init(int) uint64 { return PageRankScale }

// Scatter implements Program.
func (p *PageRank) Scatter(v int, state uint64) (uint64, bool) {
	d := p.deg(v)
	if d == 0 {
		return 0, false
	}
	return mulQ32(state, pageRankDamping) / uint64(d), true
}

// GatherInit implements Program.
func (p *PageRank) GatherInit(int) uint64 { return PageRankScale - pageRankDamping }

// Gather implements Program.
func (p *PageRank) Gather(acc, msg uint64) uint64 { return acc + msg }

// Apply implements Program.
func (p *PageRank) Apply(v int, state, acc uint64) (uint64, bool) { return acc, true }

// NoMessage implements Program.
func (p *PageRank) NoMessage() uint64 { return 0 }

// mulQ32 multiplies two Q.32 fixed-point numbers.
func mulQ32(a, b uint64) uint64 {
	hiA, loA := a>>32, a&0xffffffff
	hiB, loB := b>>32, b&0xffffffff
	return hiA*hiB<<32 + hiA*loB + loA*hiB + loA*loB>>32
}
