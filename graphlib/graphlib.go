// Package graphlib is a vertex-centric graph-processing layer over the
// gravel runtime, in the style of GasCL [32] — the single-node system
// the paper's PR, SSSP and color workloads were derived from — extended
// to a distributed cluster.
//
// A Program defines per-vertex behaviour (scatter a value along
// out-edges, gather incoming values, apply the result); the Engine runs
// it in bulk-synchronous rounds. Scattered values travel as Gravel
// fine-grain PUT messages into a dedicated slot per directed edge,
// co-located with the target vertex, so gathers are purely local — the
// same communication structure as the paper's PR workload (§6, §7.1).
//
// Slots persist between rounds: a vertex that does not scatter leaves
// its previous value visible to neighbors. Monotone programs (label
// propagation, min/max fixpoints) and always-active programs (PageRank)
// are both correct under this semantic; see Engine.Run.
package graphlib

import (
	"gravel/internal/graph"
	"gravel/internal/pgas"
	"gravel/internal/rt"
)

// Graph is a symmetric directed graph in CSR form.
type Graph = graph.Graph

// Generators and helpers, re-exported from the internal substrate.
var (
	// Bubbles generates the hugebubbles-like mesh input.
	Bubbles = graph.Bubbles
	// Cage generates the cage15-like clustered input.
	Cage = graph.Cage
	// Random generates an Erdős–Rényi-style test graph.
	Random = graph.Random
	// Path generates a path graph.
	Path = graph.Path
	// Hash64 is a deterministic 64-bit mixer.
	Hash64 = graph.Hash64
)

// Program defines one vertex-centric computation.
type Program interface {
	// Init returns vertex v's initial state; every vertex starts active.
	Init(v int) uint64
	// Scatter returns the value v pushes along each out-edge this round,
	// or ok=false to push nothing (leaving the previous value in place).
	Scatter(v int, state uint64) (msg uint64, ok bool)
	// GatherInit is the fold identity for v.
	GatherInit(v int) uint64
	// Gather folds one incoming edge value into the accumulator.
	Gather(acc, msg uint64) uint64
	// Apply consumes the gathered accumulator and returns the new state
	// and whether v stays active for the next round.
	Apply(v int, state, acc uint64) (uint64, bool)
	// NoMessage is the non-interfering value edge slots hold before any
	// scatter reaches them (0 for sums, MaxUint64 for minima) — the same
	// notion the paper's diverged WG-level operations use (§5.2).
	NoMessage() uint64
}

// Engine executes Programs over one graph on one system. It may be
// reused for several consecutive Runs.
type Engine struct {
	sys rt.System
	g   *Graph

	inOff  []int64
	slotOf []int64
	vb     []int // vertex partition bounds
	grid   []int

	state *pgas.Array
	slots *pgas.Array

	active []bool // per vertex; host-managed between rounds
}

// NewEngine allocates the engine's distributed state for g on sys.
func NewEngine(sys rt.System, g *Graph) *Engine {
	nodes := sys.Nodes()
	e := &Engine{sys: sys, g: g}
	e.inOff, e.slotOf = g.InSlots()

	part := (g.N + nodes - 1) / nodes
	e.vb = make([]int, nodes+1)
	sb := make([]int, nodes+1)
	for i := 1; i <= nodes; i++ {
		v := i * part
		if v > g.N {
			v = g.N
		}
		e.vb[i] = v
		sb[i] = int(e.inOff[v])
	}
	e.grid = make([]int, nodes)
	for i := 0; i < nodes; i++ {
		e.grid[i] = e.vb[i+1] - e.vb[i]
	}

	e.state = sys.Space().AllocRanges(e.vb)
	e.slots = sys.Space().AllocRanges(sb)
	e.active = make([]bool, g.N)
	return e
}

// State returns vertex v's current state.
func (e *Engine) State(v int) uint64 { return e.state.Load(uint64(v)) }

// Run executes p until no vertex is active or maxRounds is reached
// (0 = unlimited); it returns the number of rounds executed.
func (e *Engine) Run(p Program, maxRounds int) int {
	g := e.g
	// Initialize state and slots (host, at quiescence).
	for v := 0; v < g.N; v++ {
		e.state.Store(uint64(v), p.Init(v))
		e.active[v] = true
	}
	noMsg := p.NoMessage()
	for s := int64(0); s < int64(g.E()); s++ {
		e.slots.Store(uint64(s), noMsg)
	}

	rounds := 0
	for maxRounds == 0 || rounds < maxRounds {
		rounds++

		// Scatter: active vertices PUT their message into each
		// out-neighbor's in-slot (remote for cut edges).
		e.sys.Step("gas-scatter", e.grid, 0, func(c rt.Ctx) {
			wg := c.Group()
			lo := e.vb[c.Node()]
			counts := make([]int, wg.Size)
			msg := make([]uint64, wg.Size)
			idx := make([]uint64, wg.Size)
			val := make([]uint64, wg.Size)
			wg.VectorN(3, func(l int) {
				v := lo + wg.GlobalID(l)
				counts[l] = 0
				if !e.active[v] {
					return
				}
				if m, ok := p.Scatter(v, e.state.Load(uint64(v))); ok {
					msg[l] = m
					counts[l] = g.Deg(v)
				}
			})
			wg.PredicatedLoop(counts, 2, func(i int, active []bool) {
				wg.VectorMasked(2, active, func(l int) {
					v := lo + wg.GlobalID(l)
					eIdx := g.Off[v] + int64(i)
					idx[l] = uint64(e.slotOf[eIdx])
					val[l] = msg[l]
				})
				wg.ChargeMemDivergence(wg.ActiveLaneCount())
				c.Put(e.slots, idx, val, active)
			})
		})

		// Gather + apply: fold in-slots locally and update state; the
		// next round's activity flags are written by each vertex's own
		// lane.
		next := make([]bool, g.N)
		e.sys.Step("gas-apply", e.grid, 0, func(c rt.Ctx) {
			wg := c.Group()
			lo := e.vb[c.Node()]
			wg.VectorN(4, func(l int) {
				v := lo + wg.GlobalID(l)
				acc := p.GatherInit(v)
				for s := e.inOff[v]; s < e.inOff[v+1]; s++ {
					acc = p.Gather(acc, e.slots.Load(uint64(s)))
				}
				wg.ChargeMemDivergence(1)
				st, act := p.Apply(v, e.state.Load(uint64(v)), acc)
				e.state.Store(uint64(v), st)
				next[v] = act
			})
		})
		e.sys.ChargeHost(1000)

		e.active = next
		anyActive := false
		for _, a := range e.active {
			if a {
				anyActive = true
				break
			}
		}
		if !anyActive {
			break
		}
	}
	return rounds
}
