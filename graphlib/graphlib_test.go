package graphlib_test

import (
	"testing"

	"gravel"
	"gravel/graphlib"
	"gravel/internal/apps/pagerank"
)

func TestConnectedComponents(t *testing.T) {
	// Two disjoint path graphs glued into one vertex set: build a graph
	// with two components by generating a path and removing nothing —
	// use two Random graphs offset? Simplest: a path has one component;
	// check labels are all 0. Then check a multi-component random graph
	// against a union-find reference.
	g := graphlib.Random(500, 3, 77) // sparse: likely several components
	sys := gravel.New(gravel.Config{Nodes: 4})
	defer sys.Close()
	eng := graphlib.NewEngine(sys, g)
	rounds := eng.Run(graphlib.ConnectedComponents{}, 0)
	if rounds == 0 {
		t.Fatal("no rounds executed")
	}

	// Union-find reference.
	parent := make([]int, g.N)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for u := 0; u < g.N; u++ {
		for _, v := range g.Out(u) {
			ru, rv := find(u), find(int(v))
			if ru != rv {
				if ru < rv {
					parent[rv] = ru
				} else {
					parent[ru] = rv
				}
			}
		}
	}
	// Min vertex per component.
	minOf := make(map[int]uint64)
	for v := 0; v < g.N; v++ {
		r := find(v)
		if m, ok := minOf[r]; !ok || uint64(v) < m {
			minOf[r] = uint64(v)
		}
	}
	for v := 0; v < g.N; v++ {
		if got, want := eng.State(v), minOf[find(v)]; got != want {
			t.Fatalf("vertex %d: label %d, want %d", v, got, want)
		}
	}
}

func TestConnectedComponentsPath(t *testing.T) {
	g := graphlib.Path(100)
	sys := gravel.New(gravel.Config{Nodes: 2})
	defer sys.Close()
	eng := graphlib.NewEngine(sys, g)
	rounds := eng.Run(graphlib.ConnectedComponents{}, 0)
	for v := 0; v < g.N; v++ {
		if eng.State(v) != 0 {
			t.Fatalf("vertex %d not labeled 0", v)
		}
	}
	// Label 0 needs ~99 rounds to reach the far end of the path.
	if rounds < 99 {
		t.Fatalf("rounds = %d, want >= 99", rounds)
	}
}

// TestPageRankMatchesWorkload: the graphlib PageRank program reproduces
// the paper-workload implementation bit for bit.
func TestPageRankMatchesWorkload(t *testing.T) {
	g := graphlib.Random(400, 6, 5)
	const iters = 4
	want := pagerank.Reference(g, iters)

	sys := gravel.New(gravel.Config{Nodes: 3})
	defer sys.Close()
	eng := graphlib.NewEngine(sys, g)
	eng.Run(graphlib.NewPageRank(g, iters), iters)
	for v := 0; v < g.N; v++ {
		if got := eng.State(v); got != want[v] {
			t.Fatalf("vertex %d: rank %d, want %d", v, got, want[v])
		}
	}
}

// TestEngineReuse: consecutive Runs on one engine must reinitialize.
func TestEngineReuse(t *testing.T) {
	g := graphlib.Path(50)
	sys := gravel.New(gravel.Config{Nodes: 2})
	defer sys.Close()
	eng := graphlib.NewEngine(sys, g)
	eng.Run(graphlib.ConnectedComponents{}, 0)
	first := eng.State(49)
	eng.Run(graphlib.ConnectedComponents{}, 0)
	if eng.State(49) != first {
		t.Fatal("second run diverged")
	}
}

func TestMaxRoundsBound(t *testing.T) {
	g := graphlib.Path(1000)
	sys := gravel.New(gravel.Config{Nodes: 2})
	defer sys.Close()
	eng := graphlib.NewEngine(sys, g)
	if rounds := eng.Run(graphlib.ConnectedComponents{}, 5); rounds != 5 {
		t.Fatalf("rounds = %d, want 5", rounds)
	}
}

// TestPageRankMassProperty: rank mass stays ~N on any graph without
// dangling vertices (symmetric graphs never dangle).
func TestPageRankMassProperty(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		g := graphlib.Random(300, 6, seed)
		sys := gravel.New(gravel.Config{Nodes: 2})
		eng := graphlib.NewEngine(sys, g)
		eng.Run(graphlib.NewPageRank(g, 8), 8)
		var mass float64
		for v := 0; v < g.N; v++ {
			mass += float64(eng.State(v)) / graphlib.PageRankScale
		}
		sys.Close()
		if mass < float64(g.N)*0.99 || mass > float64(g.N)*1.01 {
			t.Errorf("seed %d: rank mass %.2f, want ≈ %d", seed, mass, g.N)
		}
	}
}
