package graphlib_test

import (
	"fmt"

	"gravel"
	"gravel/graphlib"
)

// Connected components by min-label propagation: each round, active
// vertices push their label along every edge as a Gravel fine-grain PUT.
func ExampleEngine_Run() {
	g := graphlib.Path(10) // one component
	sys := gravel.New(gravel.Config{Nodes: 2})
	defer sys.Close()

	eng := graphlib.NewEngine(sys, g)
	eng.Run(graphlib.ConnectedComponents{}, 0)
	fmt.Println(eng.State(0), eng.State(9))
	// Output: 0 0
}
