// Package gravel is a Go reproduction of "Gravel: Fine-Grain
// GPU-Initiated Network Messages" (Orr et al., SC'17): a runtime that
// lets the threads of a (simulated) GPU initiate small PGAS-style
// network messages, which are offloaded at work-group granularity
// through a GPU-efficient producer/consumer queue to a CPU aggregator
// that combines them into large per-node queues.
//
// Because no GPU or InfiniBand cluster is involved, the GPU is a
// faithful SIMT simulator (work-items, 64-wide wavefronts, work-groups,
// divergence, WG-level operations) and the cluster is simulated
// in-process; message delivery is functionally real while time is
// virtual, calibrated to the paper's hardware. See DESIGN.md.
//
// # Quick start
//
//	sys := gravel.New(gravel.Config{Nodes: 8})
//	defer sys.Close()
//	table := sys.Space().Alloc(1 << 20)
//	grid := []int{n, n, n, n, n, n, n, n}
//	sys.Step("updates", grid, 0, func(c gravel.Ctx) {
//		g := c.Group()
//		idx := make([]uint64, g.Size)
//		one := make([]uint64, g.Size)
//		g.Vector(func(l int) {
//			idx[l] = myRandomOffset(c.Node(), g.GlobalID(l))
//			one[l] = 1
//		})
//		c.Inc(table, idx, one, nil) // fine-grain atomic increments
//	})
//	fmt.Println(table.Sum(), sys.VirtualTimeNs())
//
// Kernels run once per work-group; per-lane work is expressed through
// the Group's vector operations, and the Ctx methods (Put, Inc, AM)
// offload the active lanes' messages with a single work-group-level
// reservation — the paper's core mechanism.
//
// The rival GPU networking models evaluated in the paper (coprocessor,
// message-per-lane, coalesced APIs, and a CPU-only distributed baseline)
// are available through NewModel, so any application written against
// this API can be compared across models as in the paper's Figure 15.
package gravel

import (
	"fmt"

	"gravel/internal/fabric"
	"gravel/internal/models"
	"gravel/internal/pgas"
	"gravel/internal/rt"
	"gravel/internal/simt"
	"gravel/internal/timemodel"
	"gravel/internal/transport/fault"
)

// System is a running cluster: kernels are launched with Step and every
// initiated message is applied by the time Step returns.
type System = rt.System

// Ctx is the per-work-group kernel context (lane-indexed PGAS
// operations with diverged work-group-level semantics).
type Ctx = rt.Ctx

// Kernel is GPU code, invoked once per work-group.
type Kernel = rt.Kernel

// AMHandler is an active-message handler, executed serialized on the
// destination node's network thread.
type AMHandler = rt.AMHandler

// Stats is the versioned statistics snapshot (System.Stats): cumulative
// totals organized by subsystem (Queue, Agg, Transport, Faults) plus
// per-step deltas. StatsVersion identifies the schema.
type Stats = rt.Stats

// StatsVersion is the schema version carried in Stats.Version.
const StatsVersion = rt.StatsVersion

// Per-subsystem sections of Stats, and the per-step delta record.
type (
	QueueStats     = rt.QueueStats
	AggStats       = rt.AggStats
	ResolverStats  = rt.ResolverStats
	BankCount      = rt.BankCount
	TransportStats = rt.TransportStats
	FaultStats     = rt.FaultStats
	StepStats      = rt.StepStats
)

// NetStats summarizes communication behaviour (remote-access frequency,
// wire packet sizes, aggregator utilization).
//
// Deprecated: NetStats is the flat pre-observability snapshot; use
// Stats. System.NetStats() is now derived from Stats, so the shared
// fields match bit-for-bit.
type NetStats = rt.NetStats

// Array is a symmetric distributed array in the global address space.
type Array = pgas.Array

// Space is a cluster's global address space.
type Space = pgas.Space

// Group is a SIMT work-group executing a kernel.
type Group = simt.Group

// Params is the virtual-time cost model (calibrated to the paper's
// Table 3 node architecture by DefaultParams).
type Params = timemodel.Params

// DivergenceMode selects how WG-level operations behave in diverged
// control flow (§5 of the paper).
type DivergenceMode = simt.DivergenceMode

// Divergence modes.
const (
	// SoftwarePredication is what current GPUs require (§5.1).
	SoftwarePredication = simt.SoftwarePredication
	// WGReconvergence models WG-granularity control flow (§5.3).
	WGReconvergence = simt.WGReconvergence
	// FineGrainBarrier models HSA-style fbars over arbitrary WI sets.
	FineGrainBarrier = simt.FineGrainBarrier
)

// DefaultParams returns the cost model calibrated to the paper's
// hardware (Table 3).
func DefaultParams() *Params { return timemodel.Default() }

// Config configures a Gravel cluster.
type Config struct {
	// Model selects the networking model by name: "" or ModelGravel
	// (the paper's system), or any rival model listed by Models. Every
	// model runs over every Transport — in-process or as a
	// multi-process cluster — so the Figure 15 comparison works over a
	// real fabric.
	Model string
	// Nodes is the cluster size (the paper evaluates 1-8).
	Nodes int
	// Params overrides the cost model; nil means DefaultParams.
	Params *Params
	// WGSize is the work-group size in lanes (default 256 = 4
	// wavefronts, the paper's best configuration).
	WGSize int
	// DivMode selects diverged WG-level operation behaviour.
	DivMode DivergenceMode
	// GroupSize > 1 enables two-level hierarchical aggregation over
	// groups of this many nodes (the paper's §10 scaling proposal).
	GroupSize int
	// ResolverShards splits each node's receive-side resolution into
	// this many concurrent per-bank resolvers, keyed by destination
	// address (same word → same bank, so per-word ordering survives).
	// 0 or 1 is the paper's serial network thread, bit-identical to
	// the unsharded runtime; more must be a power of two, at most 64.
	ResolverShards int
	// Transport selects the fabric implementation by registered name:
	// "" or "chan" (in-process channels, the default), "loopback"
	// (in-process with real wire framing), or "tcp" (real sockets; one
	// process per node — see cmd/gravel-node). Listed by Transports.
	Transport string
	// TransportOpts configures socket transports (which node this
	// process hosts, listen address, coordinator address, wall-clock
	// charging, failure-detection timeouts). Ignored by in-process
	// transports.
	TransportOpts TransportOptions
	// Faults, when non-nil, enables deterministic seeded fault injection
	// on socket transports: drops, duplicates, delays, reordering, byte
	// corruption, stalls, severs, node blackouts, and asymmetric
	// partitions, all replayable from Faults.Seed. Nil (the default) is
	// a zero-cost pass-through. Shorthand for TransportOpts.Faults.
	Faults *FaultConfig
}

// TransportOptions configures socket transports; see fabric.Options.
type TransportOptions = fabric.Options

// FaultConfig is a deterministic fault-injection schedule; see
// internal/transport/fault.Config for field semantics and
// fault.Parse for the "drop=0.02,sever=0.01:1,..." spec syntax used by
// cmd/gravel-node's -faults flag and GRAVEL_FAULTS.
type FaultConfig = fault.Config

// Transports lists the registered fabric transport names.
func Transports() []string { return fabric.Names() }

// ConfigError reports an invalid Config (or NewModel argument): which
// field is wrong and why. It is the error type behind Validate,
// NewChecked, and NewModelChecked, and the panic value of New/NewModel
// on bad input.
type ConfigError struct {
	Field  string // the offending Config field ("Nodes", "WGSize", ...)
	Reason string
}

func (e *ConfigError) Error() string {
	return "gravel: invalid " + e.Field + ": " + e.Reason
}

// Validate checks the configuration and returns a *ConfigError
// describing the first problem found, or nil. It is the single place
// configuration rules live: New, NewChecked, and cmd binaries all go
// through it.
func (cfg Config) Validate() error {
	if cfg.Nodes <= 0 {
		return &ConfigError{Field: "Nodes", Reason: fmt.Sprintf("cluster size %d, need at least 1", cfg.Nodes)}
	}
	if cfg.Model != "" && cfg.Model != ModelGravel {
		known := false
		for _, n := range Models() {
			if n == cfg.Model {
				known = true
				break
			}
		}
		if !known {
			return &ConfigError{Field: "Model", Reason: fmt.Sprintf("unknown model %q (have %v)", cfg.Model, Models())}
		}
		if cfg.GroupSize > 1 {
			return &ConfigError{Field: "GroupSize", Reason: fmt.Sprintf("hierarchical aggregation requires the gravel model, not %q", cfg.Model)}
		}
	}
	p := cfg.Params
	if p == nil {
		p = DefaultParams()
	}
	if cfg.WGSize < 0 || (cfg.WGSize > 0 && cfg.WGSize%p.WFWidth != 0) {
		return &ConfigError{Field: "WGSize", Reason: fmt.Sprintf("work-group size %d must be a positive multiple of the wavefront width %d", cfg.WGSize, p.WFWidth)}
	}
	if cfg.GroupSize < 0 {
		return &ConfigError{Field: "GroupSize", Reason: fmt.Sprintf("negative group size %d", cfg.GroupSize)}
	}
	if cfg.ResolverShards != 0 && !fabric.ValidBanks(cfg.ResolverShards) {
		return &ConfigError{Field: "ResolverShards", Reason: fmt.Sprintf("resolver shard count %d must be a power of two in [1, %d]", cfg.ResolverShards, fabric.MaxResolverBanks)}
	}
	if cfg.Transport != "" && cfg.Transport != "chan" {
		known := false
		for _, n := range fabric.Names() {
			if n == cfg.Transport {
				known = true
				break
			}
		}
		if !known {
			return &ConfigError{Field: "Transport", Reason: fmt.Sprintf("unknown transport %q (have %v)", cfg.Transport, fabric.Names())}
		}
	}
	return nil
}

// New creates a Gravel cluster. Callers must Close it. It panics with a
// *ConfigError on invalid configuration; NewChecked returns the error
// instead.
func New(cfg Config) System {
	sys, err := NewChecked(cfg)
	if err != nil {
		panic(err)
	}
	return sys
}

// NewChecked is New returning configuration errors (always a
// *ConfigError) instead of panicking.
func NewChecked(cfg Config) (System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Faults != nil && cfg.TransportOpts.Faults == nil {
		cfg.TransportOpts.Faults = cfg.Faults
	}
	model := cfg.Model
	if model == "" {
		model = ModelGravel
	}
	return models.NewSystem(model, models.Config{
		Nodes:          cfg.Nodes,
		Params:         cfg.Params,
		WGSize:         cfg.WGSize,
		DivMode:        cfg.DivMode,
		GroupSize:      cfg.GroupSize,
		ResolverShards: cfg.ResolverShards,
		Transport:      cfg.Transport,
		TransportOpts:  cfg.TransportOpts,
	}), nil
}

// Model names accepted by NewModel, in the paper's Figure 15 order plus
// the Figure 13 CPU-only baseline.
const (
	ModelGravel         = "gravel"
	ModelGravelArchive  = "gravel-archive"
	ModelCoprocessor    = "coprocessor"
	ModelCoprocessorBuf = "coprocessor+buf"
	ModelMsgPerLane     = "msg-per-lane"
	ModelCoalesced      = "coalesced"
	ModelCoalescedAgg   = "coalesced+agg"
	ModelCPUOnly        = "cpu-only"
)

// Models lists every available networking model.
func Models() []string {
	return append(models.Names(), ModelCPUOnly)
}

// NewModel creates a cluster running one of the paper's GPU networking
// models; applications written against this package run unmodified
// under any of them. A nil params means DefaultParams. It panics with a
// *ConfigError on an unknown model or invalid cluster size;
// NewModelChecked returns the error instead.
func NewModel(name string, nodes int, params *Params) System {
	sys, err := NewModelChecked(name, nodes, params)
	if err != nil {
		panic(err)
	}
	return sys
}

// NewModelChecked is NewModel returning configuration errors (always a
// *ConfigError) instead of panicking. It is shorthand for NewChecked
// with Config.Model set; use NewChecked directly to also pick a
// transport.
func NewModelChecked(name string, nodes int, params *Params) (System, error) {
	return NewChecked(Config{Model: name, Nodes: nodes, Params: params})
}
