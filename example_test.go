package gravel_test

import (
	"fmt"

	"gravel"
)

// The canonical fine-grain pattern: every work-item initiates one
// 8-byte atomic increment against a distributed table; Gravel offloads
// them at work-group granularity and aggregates per destination.
func ExampleNew() {
	sys := gravel.New(gravel.Config{Nodes: 2})
	defer sys.Close()

	table := sys.Space().Alloc(1024)
	sys.Step("updates", []int{512, 512}, 0, func(c gravel.Ctx) {
		g := c.Group()
		idx := make([]uint64, g.Size)
		one := make([]uint64, g.Size)
		g.Vector(func(l int) {
			idx[l] = uint64(g.GlobalID(l)) % 1024
			one[l] = 1
		})
		c.Inc(table, idx, one, nil)
	})
	fmt.Println(table.Sum())
	// Output: 1024
}

// Active messages run at the destination's network thread; handlers may
// reply with HostAM, building request/reply protocols that resolve
// within a single Step.
func ExampleSystem_hostAM() {
	sys := gravel.New(gravel.Config{Nodes: 2})
	defer sys.Close()

	acc := sys.Space().Alloc(2)
	var pong uint8
	ping := sys.RegisterAM(func(node int, a, b uint64) {
		acc.Add(uint64(node), 1)
		sys.HostAM(node, pong, int(a), 0, 0)
	})
	pong = sys.RegisterAM(func(node int, a, b uint64) {
		acc.Add(uint64(node), 10)
	})

	sys.Step("ping", []int{1, 0}, 0, func(c gravel.Ctx) {
		g := c.Group()
		dest := make([]int, g.Size)
		a := make([]uint64, g.Size)
		b := make([]uint64, g.Size)
		g.Vector(func(l int) { dest[l] = 1; a[l] = 0 })
		c.AM(ping, dest, a, b, nil)
	})
	fmt.Println(acc.Load(0), acc.Load(1))
	// Output: 10 1
}

// Every networking model the paper compares runs the same application
// code; NewModel selects one.
func ExampleNewModel() {
	for _, name := range []string{gravel.ModelGravel, gravel.ModelMsgPerLane} {
		sys := gravel.NewModel(name, 2, nil)
		table := sys.Space().Alloc(64)
		sys.Step("inc", []int{256, 256}, 0, func(c gravel.Ctx) {
			g := c.Group()
			idx := make([]uint64, g.Size)
			one := make([]uint64, g.Size)
			g.Vector(func(l int) { idx[l] = uint64(l % 64); one[l] = 1 })
			c.Inc(table, idx, one, nil)
		})
		fmt.Println(name, table.Sum())
		sys.Close()
	}
	// Output:
	// gravel 512
	// msg-per-lane 512
}
