package gravel_test

import (
	"fmt"
	"net"
	"sync"
	"testing"

	"gravel"
	"gravel/internal/core"
	"gravel/internal/harness"
	"gravel/internal/rt"
	"gravel/internal/transport"
)

// TestDeviceCollectives drives rt.DeviceColl through the public system:
// one work-group per node runs a barrier, the three all-reduce ops and
// a broadcast back to back — five rounds, so the parity double-buffer
// is reused — and a disjoint sub-team reduces concurrently with the
// world rounds on its own symmetric state.
func TestDeviceCollectives(t *testing.T) {
	sys := gravel.New(gravel.Config{Nodes: 4})
	defer sys.Close()
	sp := sys.Space()

	world := rt.NewDeviceColl(sp, 4, rt.WorldTeam)
	sub := rt.NewDeviceColl(sp, 4, rt.TeamOf(1, 3))
	out := sp.SymAlloc(8)

	sys.Step("devcoll", []int{1, 1, 1, 1}, 0, func(c rt.Ctx) {
		me := c.Node()
		v := uint64(10 * (me + 1)) // 10,20,30,40

		world.Barrier(c)
		sum := world.AllReduce(c, rt.OpSum, v)
		mn := world.AllReduce(c, rt.OpMin, v)
		mx := world.AllReduce(c, rt.OpMax, v)
		bc := world.Broadcast(c, 2, v)
		out.Store(out.SymIndex(me, 0), sum)
		out.Store(out.SymIndex(me, 1), mn)
		out.Store(out.SymIndex(me, 2), mx)
		out.Store(out.SymIndex(me, 3), bc)

		if sub.Team().Contains(me) {
			out.Store(out.SymIndex(me, 4), sub.AllReduce(c, rt.OpSum, v))
			out.Store(out.SymIndex(me, 5), sub.AllReduce(c, rt.OpMin, v))
		}
	})

	for me := 0; me < 4; me++ {
		got := [4]uint64{
			out.Load(out.SymIndex(me, 0)),
			out.Load(out.SymIndex(me, 1)),
			out.Load(out.SymIndex(me, 2)),
			out.Load(out.SymIndex(me, 3)),
		}
		if got != [4]uint64{100, 10, 40, 30} {
			t.Fatalf("node %d world results = %v, want [100 10 40 30]", me, got)
		}
	}
	for _, me := range []int{1, 3} {
		if s, m := out.Load(out.SymIndex(me, 4)), out.Load(out.SymIndex(me, 5)); s != 60 || m != 20 {
			t.Fatalf("node %d sub-team results = %d/%d, want 60/20", me, s, m)
		}
	}

	// A non-member touching the team collective is a typed panic.
	sys.Step("devcoll-bad", []int{1, 0, 0, 0}, 0, func(c rt.Ctx) {
		defer func() {
			if _, ok := recover().(*rt.CollectiveError); !ok {
				t.Error("non-member DeviceColl call did not panic with *rt.CollectiveError")
			}
		}()
		sub.AllReduce(c, rt.OpSum, 1)
	})
}

// TestDeviceCollRecDoubleMatchesLinear pins the recursive-doubling
// all-reduce schedule against the linear fan-out: at every power-of-two
// team size the two schedules must produce identical results for sum,
// min, max and broadcast across repeated rounds (so both parity banks
// are reused), and a non-power-of-two team must silently fall back to
// the linear schedule and still reduce correctly.
func TestDeviceCollRecDoubleMatchesLinear(t *testing.T) {
	for _, nodes := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("nodes=%d", nodes), func(t *testing.T) {
			sys := gravel.New(gravel.Config{Nodes: nodes})
			defer sys.Close()
			sp := sys.Space()

			lin := rt.NewDeviceColl(sp, nodes, rt.WorldTeam)
			rd := rt.NewDeviceCollSched(sp, nodes, rt.WorldTeam, rt.DCRecDouble)
			if rd.Schedule() != rt.DCRecDouble {
				t.Fatalf("power-of-two team got schedule %v, want recdouble", rd.Schedule())
			}
			const rounds = 3 // odd, so later rounds exercise both parities
			out := sp.SymAlloc(8)

			grid := make([]int, nodes)
			for i := range grid {
				grid[i] = 1
			}
			sys.Step("recdouble", grid, 0, func(c rt.Ctx) {
				me := c.Node()
				for r := 0; r < rounds; r++ {
					v := uint64(7*me + 3 + r)
					out.Store(out.SymIndex(me, 0), lin.AllReduce(c, rt.OpSum, v))
					out.Store(out.SymIndex(me, 1), rd.AllReduce(c, rt.OpSum, v))
					out.Store(out.SymIndex(me, 2), lin.AllReduce(c, rt.OpMin, v))
					out.Store(out.SymIndex(me, 3), rd.AllReduce(c, rt.OpMin, v))
					out.Store(out.SymIndex(me, 4), lin.AllReduce(c, rt.OpMax, v))
					out.Store(out.SymIndex(me, 5), rd.AllReduce(c, rt.OpMax, v))
					out.Store(out.SymIndex(me, 6), lin.Broadcast(c, nodes-1, v))
					out.Store(out.SymIndex(me, 7), rd.Broadcast(c, nodes-1, v))
				}
			})

			for me := 0; me < nodes; me++ {
				for k := 0; k < 8; k += 2 {
					l, r := out.Load(out.SymIndex(me, k)), out.Load(out.SymIndex(me, k+1))
					if l != r {
						t.Fatalf("node %d op %d: linear %d != recdouble %d", me, k/2, l, r)
					}
				}
				// The final round's sum is also checkable in closed form.
				want := uint64(nodes*(3+rounds-1)) + 7*uint64(nodes*(nodes-1)/2)
				if got := out.Load(out.SymIndex(me, 1)); got != want {
					t.Fatalf("node %d recdouble sum = %d, want %d", me, got, want)
				}
			}
		})
	}

	// Non-power-of-two team: requesting recursive doubling degrades to
	// the linear schedule, results unchanged.
	sys := gravel.New(gravel.Config{Nodes: 4})
	defer sys.Close()
	sub := rt.TeamOf(0, 1, 2)
	rd := rt.NewDeviceCollSched(sys.Space(), 4, sub, rt.DCRecDouble)
	if rd.Schedule() != rt.DCLinear {
		t.Fatalf("3-member team got schedule %v, want linear fallback", rd.Schedule())
	}
	out := sys.Space().SymAlloc(1)
	sys.Step("recdouble-fallback", []int{1, 1, 1, 0}, 0, func(c rt.Ctx) {
		me := c.Node()
		out.Store(out.SymIndex(me, 0), rd.AllReduce(c, rt.OpSum, uint64(me+1)))
	})
	for _, me := range []int{0, 1, 2} {
		if got := out.Load(out.SymIndex(me, 0)); got != 6 {
			t.Fatalf("fallback sum on node %d = %d, want 6", me, got)
		}
	}
}

// TestTCPClusterPGASAppsMatchSingle is the acceptance pin for the two
// PGAS-verb apps: a real multi-process-style TCP cluster — one
// gravel.New per node, joined through a coordinator, host collectives
// over tcp.Collectives() — must reproduce the single-process checksum
// bit for bit, with the serial network thread and with four resolver
// banks per node.
func TestTCPClusterPGASAppsMatchSingle(t *testing.T) {
	const n = 4
	p := harness.Params{Scale: 0.02}

	for _, name := range []string{"bfs-dir", "histogram"} {
		a := harness.MustApp(name)
		ref := gravel.New(gravel.Config{Nodes: n})
		want := a.Run(ref, p)
		ref.Close()
		if want.Err != nil {
			t.Fatalf("%s: single-process run failed: %v", name, want.Err)
		}
		if want.Check == 0 {
			t.Fatalf("%s: single-process check is zero", name)
		}

		for _, shards := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/shards=%d", name, shards), func(t *testing.T) {
				ln, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					t.Fatal(err)
				}
				coord := transport.NewCoordinator(n)
				go coord.Serve(ln)
				defer ln.Close()

				locals := make([]uint64, n)
				totals := make([]uint64, n)
				errs := make([]error, n)
				var wg sync.WaitGroup
				for i := 0; i < n; i++ {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						sys := gravel.New(gravel.Config{
							Nodes:          n,
							Transport:      "tcp",
							ResolverShards: shards,
							TransportOpts: gravel.TransportOptions{
								Self:  i,
								Coord: ln.Addr().String(),
							},
						})
						defer sys.Close()
						tcp := sys.(interface{ Fabric() core.Fabric }).Fabric().(*transport.TCP)
						shard := a.Shard(sys, i, p, tcp.Collectives())
						if shard.Err != nil {
							errs[i] = shard.Err
							return
						}
						locals[i] = shard.Check
						totals[i], errs[i] = tcp.Reduce(name+":check", shard.Check)
					}(i)
				}
				wg.Wait()

				var sum uint64
				for i := 0; i < n; i++ {
					if errs[i] != nil {
						t.Fatalf("node %d: %v", i, errs[i])
					}
					if totals[i] != totals[0] {
						t.Fatalf("nodes disagree on the reduced check: %d vs %d", totals[i], totals[0])
					}
					sum += locals[i]
				}
				if sum != want.Check || totals[0] != want.Check {
					t.Fatalf("%s TCP cluster check = %d (reduced %d), single-process = %d",
						name, sum, totals[0], want.Check)
				}
			})
		}
	}
}
