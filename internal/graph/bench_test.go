package graph

import "testing"

// BenchmarkBubbles measures mesh generation (dominated by CSR build).
func BenchmarkBubbles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Bubbles(10000, int64(i))
	}
}

// BenchmarkCage measures clustered-graph generation.
func BenchmarkCage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Cage(4000, int64(i))
	}
}

// BenchmarkInSlots measures the per-edge slot index build.
func BenchmarkInSlots(b *testing.B) {
	g := Cage(8000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.InSlots()
	}
}
