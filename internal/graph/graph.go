// Package graph provides the CSR graph substrate the paper's graph
// applications (PageRank, SSSP, coloring) run on, together with
// synthetic stand-ins for the paper's Table 4 inputs:
//
//   - Bubbles emulates hugebubbles-00020 (2D adaptive-mesh matrix:
//     ~3 average degree, very large diameter, moderate vertex-ID
//     locality).
//   - Cage emulates cage15 (DNA electrophoresis matrix: ~20 average
//     degree, small diameter, strong clustered ID locality).
//
// Bubbles controls the remote-access frequency under block partitioning
// by *relabeling* a fraction of vertices (topology — and hence the
// diameter that drives SSSP superstep counts — is untouched); Cage
// controls it with the fraction of edges that leave their ID cluster.
// Both are calibrated against the paper's Table 5 (see DESIGN.md §2 for
// the substitution argument).
package graph

import (
	"fmt"
	"math/rand"
	"sort"
)

// Graph is a directed graph in compressed-sparse-row form. The
// applications use symmetric digraphs (every undirected edge appears in
// both directions).
type Graph struct {
	N   int
	Off []int64  // len N+1; out-edges of u are Adj[Off[u]:Off[u+1]]
	Adj []uint32 // edge targets
	W   []uint8  // edge weights in [1,8] (nil until EnsureWeights)
}

// E returns the directed edge count.
func (g *Graph) E() int { return len(g.Adj) }

// Deg returns vertex u's out-degree.
func (g *Graph) Deg(u int) int { return int(g.Off[u+1] - g.Off[u]) }

// Out returns u's out-neighbor slice.
func (g *Graph) Out(u int) []uint32 { return g.Adj[g.Off[u]:g.Off[u+1]] }

// OutW returns u's out-edge weights.
func (g *Graph) OutW(u int) []uint8 { return g.W[g.Off[u]:g.Off[u+1]] }

// edge is a construction-time directed edge.
type edge struct{ u, v uint32 }

// fromEdges builds a CSR graph from a directed edge list.
func fromEdges(n int, edges []edge) *Graph {
	g := &Graph{N: n, Off: make([]int64, n+1), Adj: make([]uint32, len(edges))}
	for _, e := range edges {
		g.Off[e.u+1]++
	}
	for i := 0; i < n; i++ {
		g.Off[i+1] += g.Off[i]
	}
	pos := make([]int64, n)
	copy(pos, g.Off[:n])
	for _, e := range edges {
		g.Adj[pos[e.u]] = e.v
		pos[e.u]++
	}
	// Sort each adjacency list for determinism.
	for u := 0; u < n; u++ {
		adj := g.Adj[g.Off[u]:g.Off[u+1]]
		sort.Slice(adj, func(i, j int) bool { return adj[i] < adj[j] })
	}
	return g
}

// EnsureWeights assigns deterministic symmetric weights in [1,8]:
// w(u,v) = w(v,u) derived from a hash of the unordered pair.
func (g *Graph) EnsureWeights() {
	if g.W != nil {
		return
	}
	g.W = make([]uint8, len(g.Adj))
	for u := 0; u < g.N; u++ {
		for i := g.Off[u]; i < g.Off[u+1]; i++ {
			v := int(g.Adj[i])
			a, b := uint64(u), uint64(v)
			if a > b {
				a, b = b, a
			}
			g.W[i] = uint8(mix(a*0x9e3779b97f4a7c15+b)%8) + 1
		}
	}
}

func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Hash64 exposes the graph package's mixing function for callers that
// need deterministic per-vertex values (e.g. coloring priorities).
func Hash64(x uint64) uint64 { return mix(x) }

// relabel applies a partial random permutation: frac of the vertices are
// selected and shuffled among themselves. This changes block-partition
// locality without changing topology.
func relabel(n int, edges []edge, frac float64, rng *rand.Rand) []edge {
	if frac <= 0 {
		return edges
	}
	perm := make([]uint32, n)
	for i := range perm {
		perm[i] = uint32(i)
	}
	var moved []int
	for i := 0; i < n; i++ {
		if rng.Float64() < frac {
			moved = append(moved, i)
		}
	}
	// Shuffle the labels of the moved vertices among themselves.
	labels := make([]uint32, len(moved))
	for i, v := range moved {
		labels[i] = uint32(v)
	}
	rng.Shuffle(len(labels), func(i, j int) { labels[i], labels[j] = labels[j], labels[i] })
	for i, v := range moved {
		perm[v] = labels[i]
	}
	out := make([]edge, len(edges))
	for i, e := range edges {
		out[i] = edge{perm[e.u], perm[e.v]}
	}
	return out
}

// Bubbles generates the hugebubbles-00020 stand-in: a 2D grid mesh with
// a fraction of edges deleted (average degree ≈ 3, diameter ≈ 2·√n) and
// ~20 % of vertex IDs scattered (≈ 37.7 % remote accesses under 8-way
// block partitioning, Table 5 PR-1).
func Bubbles(n int, seed int64) *Graph {
	return bubbles(n, seed, 0.20)
}

func bubbles(n int, seed int64, scatter float64) *Graph {
	side := 1
	for side*side < n {
		side++
	}
	n = side * side
	rng := rand.New(rand.NewSource(seed))
	var edges []edge
	keep := func(u, v int) bool {
		// Deterministically delete ~25% of undirected edges.
		a, b := uint64(u), uint64(v)
		if a > b {
			a, b = b, a
		}
		return mix(a<<32|b)%4 != 0
	}
	add := func(u, v int) {
		if keep(u, v) {
			edges = append(edges, edge{uint32(u), uint32(v)}, edge{uint32(v), uint32(u)})
		}
	}
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			u := r*side + c
			if c+1 < side {
				add(u, u+1)
			}
			if r+1 < side {
				add(u, u+side)
			}
		}
	}
	return fromEdges(n, relabel(n, edges, scatter, rng))
}

// Cage generates the cage15 stand-in: a clustered random graph (average
// degree ≈ 20, small diameter) whose vertices live in contiguous
// clusters of ~128 IDs; ~15 % of edges leave their cluster for a random
// vertex anywhere. Under 8-way block partitioning this yields ≈ 16.5 %
// remote accesses (Table 5 PR-2) while the frontier of a traversal
// spreads across every partition within a few hops — unlike a banded
// layout, which would serialize wavefront algorithms across partitions.
func Cage(n int, seed int64) *Graph {
	return cage(n, seed, 0.155)
}

func cage(n int, seed int64, interFrac float64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	clusterSize := 128
	if clusterSize > n {
		clusterSize = n
	}
	const halfDeg = 10
	seen := make(map[uint64]bool, n*halfDeg)
	var edges []edge
	for u := 0; u < n; u++ {
		cluster := u / clusterSize
		cLo := cluster * clusterSize
		cHi := cLo + clusterSize
		if cHi > n {
			cHi = n
		}
		for k := 0; k < halfDeg; k++ {
			var v int
			if rng.Float64() < interFrac {
				v = rng.Intn(n)
			} else {
				v = cLo + rng.Intn(cHi-cLo)
			}
			if v == u {
				continue
			}
			a, b := uint64(u), uint64(v)
			if a > b {
				a, b = b, a
			}
			key := a<<32 | b
			if seen[key] {
				continue
			}
			seen[key] = true
			edges = append(edges, edge{uint32(u), uint32(v)}, edge{uint32(v), uint32(u)})
		}
	}
	return fromEdges(n, edges)
}

// Random generates an Erdős–Rényi-style symmetric graph with the given
// average directed degree (for tests).
func Random(n, avgDeg int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[uint64]bool)
	var edges []edge
	target := n * avgDeg / 2
	for len(edges)/2 < target {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		a, b := uint64(u), uint64(v)
		if a > b {
			a, b = b, a
		}
		key := a<<32 | b
		if seen[key] {
			continue
		}
		seen[key] = true
		edges = append(edges, edge{uint32(u), uint32(v)}, edge{uint32(v), uint32(u)})
	}
	return fromEdges(n, edges)
}

// Path returns a path graph (for tests).
func Path(n int) *Graph {
	var edges []edge
	for u := 0; u+1 < n; u++ {
		edges = append(edges, edge{uint32(u), uint32(u + 1)}, edge{uint32(u + 1), uint32(u)})
	}
	return fromEdges(n, edges)
}

// CutFrac returns the fraction of directed edges crossing a block
// partition into parts (calibration for Table 5).
func (g *Graph) CutFrac(parts int) float64 {
	if g.E() == 0 {
		return 0
	}
	part := (g.N + parts - 1) / parts
	cut := 0
	for u := 0; u < g.N; u++ {
		pu := u / part
		for _, v := range g.Out(u) {
			if int(v)/part != pu {
				cut++
			}
		}
	}
	return float64(cut) / float64(g.E())
}

// AvgDeg returns the average directed out-degree.
func (g *Graph) AvgDeg() float64 {
	if g.N == 0 {
		return 0
	}
	return float64(g.E()) / float64(g.N)
}

// InSlots assigns every directed edge a unique global slot grouped by
// target vertex: the in-edges of vertex v occupy slots
// [inOff[v], inOff[v+1]). slotOf[e] maps directed edge e (CSR order) to
// its slot. PageRank and coloring use these slots so a vertex's incoming
// values can be PUT by neighbors and read locally.
func (g *Graph) InSlots() (inOff []int64, slotOf []int64) {
	inOff = make([]int64, g.N+1)
	for _, v := range g.Adj {
		inOff[v+1]++
	}
	for i := 0; i < g.N; i++ {
		inOff[i+1] += inOff[i]
	}
	pos := make([]int64, g.N)
	copy(pos, inOff[:g.N])
	slotOf = make([]int64, len(g.Adj))
	for u := 0; u < g.N; u++ {
		for i := g.Off[u]; i < g.Off[u+1]; i++ {
			v := g.Adj[i]
			slotOf[i] = pos[v]
			pos[v]++
		}
	}
	return inOff, slotOf
}

// String implements fmt.Stringer.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{N=%d E=%d avgDeg=%.1f}", g.N, g.E(), g.AvgDeg())
}
