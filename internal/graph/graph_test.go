package graph

import "testing"

func TestFromEdgesCSR(t *testing.T) {
	g := Path(5)
	if g.N != 5 || g.E() != 8 {
		t.Fatalf("path(5): N=%d E=%d", g.N, g.E())
	}
	if g.Deg(0) != 1 || g.Deg(1) != 2 || g.Deg(4) != 1 {
		t.Fatalf("path degrees wrong: %v", g.Off)
	}
	if got := g.Out(2); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("Out(2) = %v", got)
	}
}

func TestSymmetry(t *testing.T) {
	for name, g := range map[string]*Graph{
		"bubbles": Bubbles(2000, 1),
		"cage":    Cage(2000, 1),
		"random":  Random(500, 8, 1),
	} {
		// Every edge must appear in both directions.
		has := make(map[uint64]bool, g.E())
		for u := 0; u < g.N; u++ {
			for _, v := range g.Out(u) {
				has[uint64(u)<<32|uint64(v)] = true
			}
		}
		for u := 0; u < g.N; u++ {
			for _, v := range g.Out(u) {
				if !has[uint64(v)<<32|uint64(u)] {
					t.Fatalf("%s: edge %d->%d has no reverse", name, u, v)
				}
			}
		}
	}
}

func TestWeightsSymmetricAndBounded(t *testing.T) {
	g := Random(300, 6, 2)
	g.EnsureWeights()
	w := make(map[uint64]uint8)
	for u := 0; u < g.N; u++ {
		ws := g.OutW(u)
		for i, v := range g.Out(u) {
			if ws[i] < 1 || ws[i] > 8 {
				t.Fatalf("weight out of range: %d", ws[i])
			}
			w[uint64(u)<<32|uint64(v)] = ws[i]
		}
	}
	for u := 0; u < g.N; u++ {
		ws := g.OutW(u)
		for i, v := range g.Out(u) {
			if w[uint64(v)<<32|uint64(u)] != ws[i] {
				t.Fatalf("asymmetric weight on %d<->%d", u, v)
			}
		}
	}
}

func TestInSlots(t *testing.T) {
	g := Random(200, 6, 3)
	inOff, slotOf := g.InSlots()
	if int(inOff[g.N]) != g.E() {
		t.Fatalf("inOff total = %d, want %d", inOff[g.N], g.E())
	}
	// Each slot must be used exactly once and fall in its target range.
	used := make([]bool, g.E())
	for u := 0; u < g.N; u++ {
		for i := g.Off[u]; i < g.Off[u+1]; i++ {
			s := slotOf[i]
			v := g.Adj[i]
			if s < inOff[v] || s >= inOff[v+1] {
				t.Fatalf("slot %d for edge ->%d outside [%d,%d)", s, v, inOff[v], inOff[v+1])
			}
			if used[s] {
				t.Fatalf("slot %d reused", s)
			}
			used[s] = true
		}
	}
}

// TestTable5Calibration checks the generator stand-ins land near the
// paper's Table 5 remote-access frequencies under 8-way partitioning.
// A fully random edge would be 87.5% remote; the relabel fractions are
// tuned for PR-1 ≈ 37.7% and PR-2 ≈ 16.5%.
func TestTable5Calibration(t *testing.T) {
	b := Bubbles(40000, 7)
	if f := b.CutFrac(8); f < 0.30 || f > 0.46 {
		t.Errorf("bubbles cut frac = %.3f, want ≈ 0.377", f)
	}
	if d := b.AvgDeg(); d < 2.4 || d > 3.6 {
		t.Errorf("bubbles avg deg = %.2f, want ≈ 3", d)
	}
	c := Cage(20000, 7)
	if f := c.CutFrac(8); f < 0.11 || f > 0.22 {
		t.Errorf("cage cut frac = %.3f, want ≈ 0.165", f)
	}
	if d := c.AvgDeg(); d < 16 || d > 22 {
		t.Errorf("cage avg deg = %.2f, want ≈ 20", d)
	}
}

func TestCutFracBounds(t *testing.T) {
	g := Random(1000, 8, 9)
	f := g.CutFrac(8)
	if f < 0.8 || f > 0.95 {
		t.Errorf("random graph cut at 8 parts = %.3f, want ≈ 0.875", f)
	}
	if g.CutFrac(1) != 0 {
		t.Errorf("cut at 1 part must be 0")
	}
}
