package core

import (
	"fmt"
	"sync/atomic"

	"gravel/internal/fabric"
	"gravel/internal/obs"
	"gravel/internal/wire"
)

// Sharded receive-side resolution. The paper (§6) resolves every
// received message — and every atomic, local or not — on one serial
// network thread per node. That thread is the scaling wall the paper's
// projections hit first, so the runtime can split it: with
// Config.ResolverShards > 1 the fabric demuxes each received per-node
// queue by destination address into per-bank sub-packets
// (fabric.BankOf), and one resolver goroutine per bank applies them.
// Two messages touching the same word always land on the same bank, so
// per-word ordering survives; messages to different words were never
// ordered to begin with (the aggregator already reorders them).
//
// With one shard the resolver is the paper's network thread delivered
// through the identical single-inbox path: same packets, same apply
// order source, one AddNet charge per packet with the same formula —
// bit-identical results and clocks.
//
// Node-local packets take a second shortcut regardless of shard count:
// the fabric hands them back synchronously (fabric.LocalApplier) and
// applyLocal resolves them on the sending goroutine, skipping the inbox
// round trip. Time-model charges are unchanged, so modeled figures do
// not drift; only wall time does. Per-node per-bank mutexes serialize
// resolver applies against bypass applies, preserving the paper's
// serialized-atomics semantics within each bank.

// WireDecodeError reports a received packet whose payload failed to
// decode. It unwinds Step() — via the quiescence path — like a
// transport PeerDownError, so one corrupt payload fails the run with a
// diagnosis instead of crashing the resolver goroutine in a way no
// caller can recover.
type WireDecodeError struct {
	// Node is the node whose resolver rejected the payload.
	Node int
	// From is the sending node.
	From int
	// Routed reports whether the packet was a routed (§10 gateway)
	// queue.
	Routed bool
	// Bytes is the undecodable payload's length.
	Bytes int
	// Err is the underlying wire decode error.
	Err error
}

func (e *WireDecodeError) Error() string {
	kind := "packet"
	if e.Routed {
		kind = "routed packet"
	}
	return fmt.Sprintf("core: node %d received undecodable %d-byte %s from node %d: %v",
		e.Node, e.Bytes, kind, e.From, e.Err)
}

func (e *WireDecodeError) Unwrap() error { return e.Err }

// bankCounters is one resolver bank's (or one node's bypass path's)
// cumulative work, read by Stats at quiescent phase boundaries.
type bankCounters struct {
	pkts atomic.Int64
	msgs atomic.Int64
	ams  atomic.Int64
	sigs atomic.Int64
}

// failDecode records the first decode failure; later ones lose the race
// and are dropped (they are almost certainly the same corruption). The
// packet is still Done'd by the caller, so quiescence completes and
// Quiesce surfaces the error.
func (cl *Cluster) failDecode(e *WireDecodeError) {
	cl.decodeErr.CompareAndSwap(nil, e)
}

// checkDecodeErr panics with the recorded decode failure, if any. It
// runs inside Quiesce, so the error unwinds Step on the goroutine that
// called it (where noderun's typed-error recovery can see it) instead
// of killing a resolver goroutine.
func (cl *Cluster) checkDecodeErr() {
	if e := cl.decodeErr.Load(); e != nil {
		panic(e)
	}
}

// startResolvers registers the node-local bypass and spawns the
// per-bank resolver goroutines for every hosted node. It must run
// before the aggregators start: SetLocalApply must happen-before the
// first Send.
func (cl *Cluster) startResolvers() {
	if la, ok := cl.fab.(fabric.LocalApplier); ok {
		la.SetLocalApply(cl.applyLocal)
	}
	banked, _ := cl.fab.(fabric.Banked)
	if cl.shards > 1 && (banked == nil || banked.Banks() != cl.shards) {
		panic(fmt.Sprintf("core: transport %q cannot shard resolution %d ways", cl.cfg.Transport, cl.shards))
	}
	for _, n := range cl.nodes {
		if !cl.fab.Hosts(n.ID) {
			continue
		}
		if banked != nil && banked.Banks() > 1 {
			for b := 0; b < banked.Banks(); b++ {
				cl.netWG.Add(1)
				go cl.resolve(n, b, banked.BankInbox(n.ID, b))
			}
			continue
		}
		cl.netWG.Add(1)
		go cl.resolve(n, 0, cl.fab.Inbox(n.ID))
	}
}

// resolve is one resolver bank of a node's receive side — at one shard,
// exactly the per-node network thread of §6. It receives (sub-)packets
// and resolves each message as a local memory operation; atomics and
// active messages execute here, serialized per bank by the bank mutex
// (which also fences out the node-local bypass).
func (cl *Cluster) resolve(n *Node, bank int, inbox <-chan fabric.Packet) {
	defer cl.netWG.Done()
	p := cl.params
	mu := &cl.bankMu[n.ID][bank]
	ctr := &cl.resv[n.ID][bank]
	for pkt := range inbox {
		amExtra := 0
		sigExtra := 0
		apply := func(cmd, a, v uint64) {
			op, h, arr := wire.UnpackCmd(cmd)
			switch op {
			case wire.OpPut:
				cl.space.Array(arr).Store(a, v)
			case wire.OpInc:
				cl.space.Array(arr).Add(a, v)
			case wire.OpAM:
				amExtra++
				cl.handlers[h](n.ID, a, v)
			case wire.OpPutSignal:
				// Store then increment under this bank's lock: the
				// signal's owner equals the data's owner (enforced at the
				// verb), so a waiter that loads the incremented signal is
				// guaranteed to load the stored data.
				dArr, sArr, sIdx := wire.UnpackSigCmd(cmd)
				cl.space.Array(dArr).Store(a, v)
				cl.space.Array(sArr).Add(uint64(sIdx), 1)
				sigExtra++
			default:
				panic(fmt.Sprintf("core: bad op %v in packet", op))
			}
		}
		var err error
		relayed := 0
		if pkt.Routed {
			// Gateway role (§10): routed queues always arrive whole on
			// bank 0, so relays leave in arrival order. Records for this
			// node apply under their own bank's lock; the rest are
			// re-aggregated into per-node queues for this group's
			// members.
			err = wire.DecodeRouted(pkt.Buf, func(cmd, a, v uint64, dest int) {
				if dest == n.ID {
					bm := &cl.bankMu[n.ID][fabric.BankOfRecord(cmd, a, cl.shards)]
					bm.Lock()
					apply(cmd, a, v)
					bm.Unlock()
					return
				}
				relayed++
				n.Agg.AppendDirect(dest, cmd, a, v, p.AggPerMsgNs)
			})
		} else {
			mu.Lock()
			err = wire.Decode(pkt.Buf, apply)
			mu.Unlock()
		}
		if err != nil {
			// Decode validates before applying, so nothing was applied;
			// record the failure for Quiesce to surface and retire the
			// packet so quiescence still completes.
			cl.failDecode(&WireDecodeError{Node: n.ID, From: pkt.From, Routed: pkt.Routed, Bytes: len(pkt.Buf), Err: err})
			cl.fab.Done(pkt)
			continue
		}
		n.Clocks.AddNetBank(bank, p.NetThreadPerPacketNs+
			float64(pkt.Msgs)*p.NetThreadPerMsgNs+
			float64(len(pkt.Buf))*p.NetThreadPerByteNs+
			float64(amExtra)*p.NetThreadAMExtraNs+
			float64(sigExtra)*p.NetThreadSignalExtraNs)
		n.Clocks.CountNetMsgs(pkt.Msgs - relayed)
		ctr.pkts.Add(1)
		ctr.msgs.Add(int64(pkt.Msgs - relayed))
		ctr.ams.Add(int64(amExtra))
		ctr.sigs.Add(int64(sigExtra))
		if obs.Enabled() {
			obs.Emit(obs.KResolve, n.ID, int64(bank), int64(pkt.Msgs), "")
			if sigExtra > 0 {
				obs.Emit(obs.KSignal, n.ID, int64(bank), int64(sigExtra), "")
			}
		}
		cl.fab.Done(pkt)
	}
}

// applyLocal is the fabric's node-local bypass (fabric.LocalApplier): a
// from == to packet resolves synchronously on the sending goroutine
// instead of round-tripping through an inbox. The caller (an aggregator
// pump) holds the aggregator's in-flight guard for the duration, so
// quiescence cannot observe the node idle mid-apply. Charges mirror the
// resolver exactly: at one shard, one AddNet call with the network
// thread's formula (bit-identical ticks); at more, each touched bank is
// charged as if the packet had been demuxed to it.
func (cl *Cluster) applyLocal(pkt fabric.Packet) {
	n := cl.nodes[pkt.To]
	p := cl.params
	id := n.ID
	amExtra := 0
	sigExtra := 0
	if cl.shards == 1 {
		mu := &cl.bankMu[id][0]
		mu.Lock()
		err := wire.Decode(pkt.Buf, func(cmd, a, v uint64) {
			op, h, arr := wire.UnpackCmd(cmd)
			switch op {
			case wire.OpPut:
				cl.space.Array(arr).Store(a, v)
			case wire.OpInc:
				cl.space.Array(arr).Add(a, v)
			case wire.OpAM:
				amExtra++
				cl.handlers[h](id, a, v)
			case wire.OpPutSignal:
				dArr, sArr, sIdx := wire.UnpackSigCmd(cmd)
				cl.space.Array(dArr).Store(a, v)
				cl.space.Array(sArr).Add(uint64(sIdx), 1)
				sigExtra++
			default:
				panic(fmt.Sprintf("core: bad op %v in packet", op))
			}
		})
		mu.Unlock()
		if err != nil {
			cl.failDecode(&WireDecodeError{Node: id, From: pkt.From, Bytes: len(pkt.Buf), Err: err})
			return
		}
		n.Clocks.AddNet(p.NetThreadPerPacketNs +
			float64(pkt.Msgs)*p.NetThreadPerMsgNs +
			float64(len(pkt.Buf))*p.NetThreadPerByteNs +
			float64(amExtra)*p.NetThreadAMExtraNs +
			float64(sigExtra)*p.NetThreadSignalExtraNs)
	} else {
		// Apply each record under its bank's lock, batching consecutive
		// same-bank runs so a sorted stream pays one handoff.
		var msgs, ams, sigs [fabric.MaxResolverBanks]int
		cur := -1
		err := wire.Decode(pkt.Buf, func(cmd, a, v uint64) {
			b := fabric.BankOfRecord(cmd, a, cl.shards)
			if b != cur {
				if cur >= 0 {
					cl.bankMu[id][cur].Unlock()
				}
				cl.bankMu[id][b].Lock()
				cur = b
			}
			msgs[b]++
			op, h, arr := wire.UnpackCmd(cmd)
			switch op {
			case wire.OpPut:
				cl.space.Array(arr).Store(a, v)
			case wire.OpInc:
				cl.space.Array(arr).Add(a, v)
			case wire.OpAM:
				ams[b]++
				cl.handlers[h](id, a, v)
			case wire.OpPutSignal:
				dArr, sArr, sIdx := wire.UnpackSigCmd(cmd)
				cl.space.Array(dArr).Store(a, v)
				cl.space.Array(sArr).Add(uint64(sIdx), 1)
				sigs[b]++
			default:
				panic(fmt.Sprintf("core: bad op %v in packet", op))
			}
		})
		if cur >= 0 {
			cl.bankMu[id][cur].Unlock()
		}
		if err != nil {
			cl.failDecode(&WireDecodeError{Node: id, From: pkt.From, Bytes: len(pkt.Buf), Err: err})
			return
		}
		for b := 0; b < cl.shards; b++ {
			if msgs[b] == 0 {
				continue
			}
			amExtra += ams[b]
			sigExtra += sigs[b]
			n.Clocks.AddNetBank(b, p.NetThreadPerPacketNs+
				float64(msgs[b])*p.NetThreadPerMsgNs+
				float64(msgs[b]*wire.MsgWireBytes)*p.NetThreadPerByteNs+
				float64(ams[b])*p.NetThreadAMExtraNs+
				float64(sigs[b])*p.NetThreadSignalExtraNs)
		}
	}
	n.Clocks.CountNetMsgs(pkt.Msgs)
	bp := &cl.bypass[id]
	bp.pkts.Add(1)
	bp.msgs.Add(int64(pkt.Msgs))
	bp.ams.Add(int64(amExtra))
	bp.sigs.Add(int64(sigExtra))
	if obs.Enabled() {
		obs.Emit(obs.KResolveBypass, id, int64(pkt.Msgs), int64(amExtra), "")
		if sigExtra > 0 {
			obs.Emit(obs.KSignal, id, -1, int64(sigExtra), "")
		}
	}
}
