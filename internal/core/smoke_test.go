package core

import (
	"math/rand"
	"testing"

	"gravel/internal/rt"
)

// TestSmokeIncPutAM drives one cluster through all three operation types
// and checks functional correctness and basic accounting.
func TestSmokeIncPutAM(t *testing.T) {
	cl := New(Config{Nodes: 4})
	defer cl.Close()

	const n = 1 << 14
	arr := cl.Space().Alloc(n)
	dst := cl.Space().Alloc(n)

	var amHits [4]int64
	h := cl.RegisterAM(func(node int, a, b uint64) {
		amHits[node] += int64(b)
	})

	updatesPerNode := 1 << 14
	grid := []int{updatesPerNode, updatesPerNode, updatesPerNode, updatesPerNode}

	cl.Step("inc", grid, 0, func(c rt.Ctx) {
		g := c.Group()
		idx := make([]uint64, g.Size)
		one := make([]uint64, g.Size)
		rng := rand.New(rand.NewSource(int64(c.Node()*1000 + g.ID)))
		g.Vector(func(l int) {
			idx[l] = uint64(rng.Intn(n))
			one[l] = 1
		})
		c.Inc(arr, idx, one, nil)
	})

	if got, want := arr.Sum(), uint64(4*updatesPerNode); got != want {
		t.Fatalf("Inc sum = %d, want %d", got, want)
	}

	cl.Step("put", grid, 0, func(c rt.Ctx) {
		g := c.Group()
		idx := make([]uint64, g.Size)
		val := make([]uint64, g.Size)
		g.Vector(func(l int) {
			gid := uint64(g.GlobalID(l))
			// node i writes its own block plus a rotated block
			base := uint64(c.Node()) * uint64(dst.PartSize())
			tgt := (base + gid*7919) % uint64(n)
			idx[l] = tgt
			val[l] = tgt + 1
		})
		c.Put(dst, idx, val, nil)
	})
	// Every written cell must hold idx+1.
	bad := 0
	for i := uint64(0); i < n; i++ {
		v := dst.Load(i)
		if v != 0 && v != i+1 {
			bad++
		}
	}
	if bad != 0 {
		t.Fatalf("%d PUT cells corrupted", bad)
	}

	cl.Step("am", grid, 0, func(c rt.Ctx) {
		g := c.Group()
		dest := make([]int, g.Size)
		a := make([]uint64, g.Size)
		b := make([]uint64, g.Size)
		g.Vector(func(l int) {
			dest[l] = (c.Node() + 1 + l) % c.Nodes()
			a[l] = 0
			b[l] = 1
		})
		c.AM(h, dest, a, b, nil)
	})
	var total int64
	for _, v := range amHits {
		total += v
	}
	if want := int64(4 * updatesPerNode); total != want {
		t.Fatalf("AM hits = %d, want %d", total, want)
	}

	if cl.VirtualTimeNs() <= 0 {
		t.Fatalf("virtual time not accumulated")
	}
	ns := cl.NetStats()
	if ns.LocalOps+ns.RemoteOps == 0 || ns.WirePackets == 0 {
		t.Fatalf("stats not accumulated: %+v", ns)
	}
	if len(cl.Phases()) != 3 {
		t.Fatalf("phases = %d, want 3", len(cl.Phases()))
	}
}
