package core

import (
	"testing"

	"gravel/internal/rt"
	"gravel/internal/timemodel"
)

// TestTinyPCQBackpressure: a producer/consumer queue with almost no
// slots forces work-groups to stall in Reserve while the aggregator
// drains — the system must make progress, not deadlock.
func TestTinyPCQBackpressure(t *testing.T) {
	p := timemodel.Default()
	p.PCQBytes = 1 // rounds up to the 4-slot minimum
	cl := New(Config{Nodes: 2, Params: p})
	defer cl.Close()
	arr := cl.Space().Alloc(256)
	cl.Step("inc", []int{8192, 8192}, 0, func(c rt.Ctx) {
		g := c.Group()
		idx := make([]uint64, g.Size)
		one := make([]uint64, g.Size)
		g.Vector(func(l int) {
			idx[l] = uint64(g.GlobalID(l) % 256)
			one[l] = 1
		})
		c.Inc(arr, idx, one, nil)
	})
	if got := arr.Sum(); got != 16384 {
		t.Fatalf("sum = %d, want 16384", got)
	}
}

// TestTinyPerNodeQueues: 1-message per-node queues make every message
// its own packet; inbox backpressure must throttle, not deadlock.
func TestTinyPerNodeQueues(t *testing.T) {
	p := timemodel.Default()
	p.PerNodeQueueBytes = 1 // one message per queue
	p.QueuesPerDest = 1     // minimal inbox depth
	cl := New(Config{Nodes: 3, Params: p})
	defer cl.Close()
	arr := cl.Space().Alloc(128)
	cl.Step("inc", []int{2048, 2048, 2048}, 0, func(c rt.Ctx) {
		g := c.Group()
		idx := make([]uint64, g.Size)
		one := make([]uint64, g.Size)
		g.Vector(func(l int) {
			idx[l] = uint64((c.Node()*31 + g.GlobalID(l)) % 128)
			one[l] = 1
		})
		c.Inc(arr, idx, one, nil)
	})
	if got := arr.Sum(); got != 3*2048 {
		t.Fatalf("sum = %d", got)
	}
	if pkts := cl.NetStats().WirePackets; pkts < 1000 {
		t.Fatalf("expected a packet storm, got %d packets", pkts)
	}
}

// TestManySmallSteps: repeated tiny supersteps exercise the quiescence
// protocol's steady-state overhead.
func TestManySmallSteps(t *testing.T) {
	cl := New(Config{Nodes: 2})
	defer cl.Close()
	arr := cl.Space().Alloc(64)
	for i := 0; i < 200; i++ {
		cl.Step("tiny", []int{64, 64}, 0, func(c rt.Ctx) {
			g := c.Group()
			idx := make([]uint64, g.Size)
			one := make([]uint64, g.Size)
			g.Vector(func(l int) { idx[l] = uint64(l); one[l] = 1 })
			c.Inc(arr, idx, one, nil)
		})
	}
	if got := arr.Sum(); got != 200*128 {
		t.Fatalf("sum = %d, want %d", got, 200*128)
	}
	if len(cl.Phases()) != 200 {
		t.Fatalf("phases = %d", len(cl.Phases()))
	}
}

// TestWGSizeVariants: unusual work-group sizes (one wavefront, odd
// multiples, bigger than the grid) must all work.
func TestWGSizeVariants(t *testing.T) {
	for _, wg := range []int{64, 192, 512} {
		cl := New(Config{Nodes: 2, WGSize: wg})
		arr := cl.Space().Alloc(64)
		cl.Step("inc", []int{100, 7}, 0, func(c rt.Ctx) {
			g := c.Group()
			idx := make([]uint64, g.Size)
			one := make([]uint64, g.Size)
			g.Vector(func(l int) { idx[l] = 0; one[l] = 1 })
			c.Inc(arr, idx, one, nil)
		})
		sum := arr.Sum()
		cl.Close()
		if sum != 107 {
			t.Fatalf("wg=%d: sum=%d, want 107", wg, sum)
		}
	}
}

// TestHugeWGAgainstPCQ: the queue's slot shape follows the WG size.
func TestHugeWGAgainstPCQ(t *testing.T) {
	cl := New(Config{Nodes: 1, WGSize: 1024})
	defer cl.Close()
	if cols := cl.Node(0).PCQ.Cols; cols != 1024 {
		t.Fatalf("PCQ cols = %d, want 1024", cols)
	}
	arr := cl.Space().Alloc(8)
	cl.Step("inc", []int{4096}, 0, func(c rt.Ctx) {
		g := c.Group()
		idx := make([]uint64, g.Size)
		one := make([]uint64, g.Size)
		g.Vector(func(l int) { idx[l] = 0; one[l] = 1 })
		c.Inc(arr, idx, one, nil)
	})
	if arr.Load(0) != 4096 {
		t.Fatalf("count = %d", arr.Load(0))
	}
}

// TestSingleLaneActivity: offloads where only one lane is active.
func TestSingleLaneActivity(t *testing.T) {
	cl := New(Config{Nodes: 2})
	defer cl.Close()
	arr := cl.Space().Alloc(8)
	cl.Step("inc", []int{256, 0}, 0, func(c rt.Ctx) {
		g := c.Group()
		idx := make([]uint64, g.Size)
		one := make([]uint64, g.Size)
		active := make([]bool, g.Size)
		g.Vector(func(l int) {
			idx[l] = 7
			one[l] = 1
			active[l] = l == 13
		})
		c.Inc(arr, idx, one, active)
	})
	if arr.Load(7) != 1 {
		t.Fatalf("count = %d, want 1", arr.Load(7))
	}
}

// TestNoActiveLanes: an offload with an all-false mask is a no-op.
func TestNoActiveLanes(t *testing.T) {
	cl := New(Config{Nodes: 2})
	defer cl.Close()
	arr := cl.Space().Alloc(8)
	cl.Step("inc", []int{256, 0}, 0, func(c rt.Ctx) {
		g := c.Group()
		idx := make([]uint64, g.Size)
		one := make([]uint64, g.Size)
		active := make([]bool, g.Size)
		c.Inc(arr, idx, one, active)
		c.Put(arr, idx, one, active)
		c.AM(0, make([]int, g.Size), idx, one, active)
	})
	if arr.Sum() != 0 {
		t.Fatal("no-op offloads mutated state")
	}
}
