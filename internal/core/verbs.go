package core

import (
	"fmt"

	"gravel/internal/obs"
	"gravel/internal/pgas"
	"gravel/internal/simt"
	"gravel/internal/timemodel"
	"gravel/internal/wire"
)

// MaskError reports a lane mask that violates the rt.Ctx convention: a
// non-nil active mask must be exactly as long as the work-group. Every
// model's verb implementations funnel mask validation through CheckMask
// so a bad mask fails the same way everywhere.
type MaskError struct {
	// Verb is the rt.Ctx verb that received the mask.
	Verb string
	// Got is the mask length; Want the work-group size.
	Got, Want int
}

func (e *MaskError) Error() string {
	return fmt.Sprintf("core: %s: active mask has %d entries for a %d-lane work-group (nil means all lanes)", e.Verb, e.Got, e.Want)
}

// CheckMask validates a verb's non-nil lane mask against the
// work-group size, panicking with a *MaskError on mismatch. A nil mask
// (all lanes) is always valid; callers substitute their all-true
// scratch mask after the check.
func CheckMask(verb string, active []bool, wgSize int) {
	if active != nil && len(active) != wgSize {
		panic(&MaskError{Verb: verb, Got: len(active), Want: wgSize})
	}
}

// SignalError reports a PutSignal whose signal cell is not co-owned
// with its data cell, or a WaitUntil on a cell the waiting node does
// not own. Both are programming errors — the signal/wait protocol only
// works when signals land where the waiter can load them — so the
// verbs panic with the full addressing context.
type SignalError struct {
	// Verb is "PutSignal" or "WaitUntil".
	Verb string
	// Node is the node executing the verb.
	Node int
	// DataArr/DataIdx/DataOwner describe the data cell (PutSignal only).
	DataArr   uint16
	DataIdx   uint64
	DataOwner int
	// SigArr/SigIdx/SigOwner describe the signal cell.
	SigArr   uint16
	SigIdx   uint64
	SigOwner int
}

func (e *SignalError) Error() string {
	if e.Verb == "WaitUntil" {
		return fmt.Sprintf("core: WaitUntil on node %d: signal cell %d of array %d is owned by node %d; waits must address local cells",
			e.Node, e.SigIdx, e.SigArr, e.SigOwner)
	}
	return fmt.Sprintf("core: %s on node %d: data cell %d of array %d is owned by node %d but signal cell %d of array %d by node %d; signal cells must be co-owned with their data (allocate with SymAlloc)",
		e.Verb, e.Node, e.DataIdx, e.DataArr, e.DataOwner, e.SigIdx, e.SigArr, e.SigOwner)
}

// CheckSignalPairs validates a PutSignal's lane addressing — each
// active lane's data and signal cells co-owned, each signal index
// within the command word's range — before any queue slot is reserved.
// Every model calls it ahead of its offload, so an addressing panic
// unwinds cleanly instead of stranding a reserved-but-uncommitted slot
// that would wedge quiescence. active must already be WG-sized (run
// CheckMask first).
func CheckSignalPairs(node int, arr *pgas.Array, idx []uint64, sig *pgas.Array, sigIdx []uint64, active []bool) {
	dataID, sigID := arr.ID(), sig.ID()
	for l := range active {
		if !active[l] {
			continue
		}
		if d, s := arr.Owner(idx[l]), sig.Owner(sigIdx[l]); d != s {
			panic(&SignalError{Verb: "PutSignal", Node: node,
				DataArr: dataID, DataIdx: idx[l], DataOwner: d,
				SigArr: sigID, SigIdx: sigIdx[l], SigOwner: s})
		}
		wire.PackSigCmd(dataID, sigID, uint32(sigIdx[l])) // panics if sigIdx overflows the command word
	}
}

// PutSignal implements rt.Ctx: each active lane's data put and signal
// increment travel as one PUT_SIGNAL wire command (wire.PackSigCmd),
// resolved at the data cell's owner under that owner's bank lock — the
// store happens-before the increment on the same serialized bank, so
// any observer of the signal also observes the data. Like Inc, the
// operation always routes through the owner's resolver, even when
// local: the signal increment is an atomic (§6). The aggregator
// transmits PUT_SIGNAL queues eagerly (flushed at the end of each
// drained batch) so a remote waiter is never left spinning on a signal
// parked in a partially-filled per-node queue until end of step.
func (c *ctx) PutSignal(arr *pgas.Array, idx, val []uint64, sig *pgas.Array, sigIdx []uint64, active []bool) {
	active = c.mask("PutSignal", active)
	CheckSignalPairs(c.n.ID, arr, idx, sig, sigIdx, active)
	dataID, sigID := arr.ID(), sig.ID()
	c.offloadCmds(func(l int) uint64 {
		return wire.PackSigCmd(dataID, sigID, uint32(sigIdx[l]))
	}, func(l int) int { return arr.Owner(idx[l]) }, idx, val, active)
}

// WaitUntil implements rt.Ctx: the work-group blocks until every
// active lane's local signal cell has reached its threshold
// (sig[sigIdx[l]] >= until[l]). The wait parks cooperatively
// (simt.Group.Park): not-yet-scheduled work-groups of the same launch
// keep executing and the aggregator/resolver goroutines keep
// delivering, so a waiter cannot wedge the launch or trip quiescence —
// the host never enters Quiesce while a kernel is still running. The
// charge is the fixed, deterministic Params.WaitUntilNs, not the
// scheduler-dependent wall-clock spin time.
func (c *ctx) WaitUntil(sig *pgas.Array, sigIdx, until []uint64, active []bool) {
	active = c.mask("WaitUntil", active)
	WaitUntilOn(c.n.cl.params, c.n, c.g, sig, sigIdx, until, active, nil)
}

// WaitUntilOn is the WaitUntil verb body shared by every model backed
// by a Cluster (the Gravel ctx above, and the coprocessor and
// coalesced contexts in package models): validate that each awaited
// cell is local, charge the fixed deterministic cost, and park until
// the condition holds. active must already be WG-sized (run CheckMask
// first); progress, if non-nil, is invoked on every spin iteration so
// a model with GPU-side staging can keep its own buffers draining.
func WaitUntilOn(params *timemodel.Params, n *Node, g *simt.Group, sig *pgas.Array, sigIdx, until []uint64, active []bool, progress func()) {
	me := n.ID
	lanes := 0
	for l := 0; l < g.Size; l++ {
		if !active[l] {
			continue
		}
		lanes++
		if o := sig.Owner(sigIdx[l]); o != me {
			panic(&SignalError{Verb: "WaitUntil", Node: me, SigArr: sig.ID(), SigIdx: sigIdx[l], SigOwner: o})
		}
	}
	if lanes == 0 {
		return
	}
	g.ChargeCycles(g.Device().NsToCycles(params.WaitUntilNs))
	n.Waits.Inc()
	if obs.Enabled() {
		obs.Emit(obs.KWait, me, int64(g.ID), int64(lanes), "")
	}
	g.Park(func() bool {
		for l := 0; l < g.Size; l++ {
			if active[l] && sig.Load(sigIdx[l]) < until[l] {
				return false
			}
		}
		return true
	}, progress)
}
