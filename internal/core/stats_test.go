package core

import (
	"bytes"
	"testing"

	"gravel/internal/obs"
	"gravel/internal/pgas"
	"gravel/internal/rt"
	"gravel/internal/timemodel"
)

// incWorkload runs a few supersteps of scattered increments so every
// counter the stats snapshot reports (queue ops, drains, wire traffic)
// moves through multiple step boundaries.
func incWorkload(t *testing.T, sys rt.System, steps int) *pgas.Array {
	t.Helper()
	nodes := sys.Nodes()
	arr := sys.Space().Alloc(1 << 12)
	grid := fullGrid(nodes, 256)
	for s := 0; s < steps; s++ {
		sys.Step("inc", grid, 0, func(c rt.Ctx) {
			g := c.Group()
			idx := make([]uint64, g.Size)
			one := make([]uint64, g.Size)
			g.Vector(func(l int) {
				idx[l] = uint64((g.GlobalID(l)*2654435761 + s) % (1 << 12))
				one[l] = 1
			})
			c.Inc(arr, idx, one, nil)
		})
	}
	return arr
}

// TestStatsStepDeltasSumToCumulative pins the Stats contract that the
// per-step delta records add up to the cumulative section totals: both
// are drawn from the same counters at the same point in RecordPhase, so
// any drift means a counter was sampled in the wrong place.
func TestStatsStepDeltasSumToCumulative(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(map[int]string{1: "shards=1", 4: "shards=4"}[shards], func(t *testing.T) {
			testStatsStepDeltas(t, shards)
		})
	}
}

func testStatsStepDeltas(t *testing.T, shards int) {
	cl := New(Config{Nodes: 4, ResolverShards: shards})
	defer cl.Close()
	incWorkload(t, cl, 3)

	st := cl.Stats()
	if st.Version != rt.StatsVersion {
		t.Fatalf("Stats.Version = %d, want %d", st.Version, rt.StatsVersion)
	}
	if len(st.Steps) != 3 {
		t.Fatalf("got %d step records, want 3", len(st.Steps))
	}
	var sum rt.StepStats
	for i, sp := range st.Steps {
		if sp.Index != i {
			t.Errorf("step %d has Index %d", i, sp.Index)
		}
		sum.VirtualNs += sp.VirtualNs
		sum.LocalOps += sp.LocalOps
		sum.RemoteOps += sp.RemoteOps
		sum.SlotsDrained += sp.SlotsDrained
		sum.MsgsDrained += sp.MsgsDrained
		sum.WirePackets += sp.WirePackets
		sum.WireBytes += sp.WireBytes
		sum.SelfPackets += sp.SelfPackets
		sum.AggBusyNs += sp.AggBusyNs
		sum.AggIdleNs += sp.AggIdleNs
		sum.ResolvedPackets += sp.ResolvedPackets
		sum.ResolvedMsgs += sp.ResolvedMsgs
		sum.ResolvedAMs += sp.ResolvedAMs
		sum.BypassPackets += sp.BypassPackets
		sum.BypassMsgs += sp.BypassMsgs
	}
	if sum.LocalOps != st.Queue.LocalOps || sum.RemoteOps != st.Queue.RemoteOps {
		t.Errorf("op deltas sum to (%d,%d), cumulative (%d,%d)",
			sum.LocalOps, sum.RemoteOps, st.Queue.LocalOps, st.Queue.RemoteOps)
	}
	if sum.SlotsDrained != st.Queue.SlotsDrained || sum.MsgsDrained != st.Queue.MsgsDrained {
		t.Errorf("drain deltas sum to (%d,%d), cumulative (%d,%d)",
			sum.SlotsDrained, sum.MsgsDrained, st.Queue.SlotsDrained, st.Queue.MsgsDrained)
	}
	if sum.WirePackets != st.Transport.WirePackets || sum.WireBytes != st.Transport.WireBytes {
		t.Errorf("wire deltas sum to (%d,%d), cumulative (%d,%d)",
			sum.WirePackets, sum.WireBytes, st.Transport.WirePackets, st.Transport.WireBytes)
	}
	if sum.SelfPackets != st.Transport.SelfPackets {
		t.Errorf("self-packet deltas sum to %d, cumulative %d", sum.SelfPackets, st.Transport.SelfPackets)
	}
	if sum.AggBusyNs != st.Agg.BusyNs || sum.AggIdleNs != st.Agg.IdleNs {
		t.Errorf("agg deltas sum to (%g,%g), cumulative (%g,%g)",
			sum.AggBusyNs, sum.AggIdleNs, st.Agg.BusyNs, st.Agg.IdleNs)
	}
	if sum.ResolvedPackets != st.Resolver.Packets || sum.ResolvedMsgs != st.Resolver.Msgs ||
		sum.ResolvedAMs != st.Resolver.AMs {
		t.Errorf("resolver deltas sum to (%d,%d,%d), cumulative (%d,%d,%d)",
			sum.ResolvedPackets, sum.ResolvedMsgs, sum.ResolvedAMs,
			st.Resolver.Packets, st.Resolver.Msgs, st.Resolver.AMs)
	}
	if sum.BypassPackets != st.Resolver.BypassPackets || sum.BypassMsgs != st.Resolver.BypassMsgs {
		t.Errorf("bypass deltas sum to (%d,%d), cumulative (%d,%d)",
			sum.BypassPackets, sum.BypassMsgs, st.Resolver.BypassPackets, st.Resolver.BypassMsgs)
	}
	if st.Resolver.Shards != shards {
		t.Errorf("Stats.Resolver.Shards = %d, want %d", st.Resolver.Shards, shards)
	}
	if sum.VirtualNs != st.VirtualNs {
		t.Errorf("virtual-time deltas sum to %g, cumulative %g", sum.VirtualNs, st.VirtualNs)
	}
	if st.Queue.RemoteOps == 0 || st.Transport.WirePackets == 0 {
		t.Errorf("workload produced no traffic (remote=%d packets=%d); test is vacuous",
			st.Queue.RemoteOps, st.Transport.WirePackets)
	}
}

// TestNetStatsAdapterBitForBit pins the deprecation contract: the old
// flat NetStats is now derived from Stats, and every shared field must
// match its sectioned counterpart exactly — no recomputation, no
// rounding.
func TestNetStatsAdapterBitForBit(t *testing.T) {
	cl := New(Config{Nodes: 4})
	defer cl.Close()
	incWorkload(t, cl, 2)

	st := cl.Stats()
	ns := cl.NetStats()
	if ns.LocalOps != st.Queue.LocalOps || ns.RemoteOps != st.Queue.RemoteOps {
		t.Errorf("ops: NetStats (%d,%d) != Stats.Queue (%d,%d)",
			ns.LocalOps, ns.RemoteOps, st.Queue.LocalOps, st.Queue.RemoteOps)
	}
	if ns.WirePackets != st.Transport.WirePackets || ns.WireBytes != st.Transport.WireBytes {
		t.Errorf("wire: NetStats (%d,%d) != Stats.Transport (%d,%d)",
			ns.WirePackets, ns.WireBytes, st.Transport.WirePackets, st.Transport.WireBytes)
	}
	if ns.AvgPacketBytes != st.Transport.AvgPacketBytes {
		t.Errorf("AvgPacketBytes: %v != %v", ns.AvgPacketBytes, st.Transport.AvgPacketBytes)
	}
	if ns.AggBusyFrac != st.Agg.BusyFrac {
		t.Errorf("AggBusyFrac: %v != %v", ns.AggBusyFrac, st.Agg.BusyFrac)
	}
	if ns.Reconnects != st.Transport.Reconnects || ns.Retries != st.Transport.Retries ||
		ns.Malformed != st.Transport.Malformed || ns.CorruptFrames != st.Transport.CorruptFrames {
		t.Errorf("reliability counters diverge: NetStats %+v vs Stats.Transport %+v", ns, st.Transport)
	}
	if len(ns.PerDest) != len(st.Transport.PerDest) {
		t.Fatalf("PerDest length %d != %d", len(ns.PerDest), len(st.Transport.PerDest))
	}
	for d := range ns.PerDest {
		if ns.PerDest[d] != st.Transport.PerDest[d] {
			t.Errorf("PerDest[%d]: %+v != %+v", d, ns.PerDest[d], st.Transport.PerDest[d])
		}
	}
}

// TestAggBusyFracCapacityWeighted is the regression test for the
// multi-thread utilization bug: busy time accrues on every drain
// thread, so with T aggregator threads the busy fraction must divide by
// nodes x T, not nodes alone. Before the fix a 2-thread aggregator at
// 100% utilization reported BusyFrac 2.0.
func TestAggBusyFracCapacityWeighted(t *testing.T) {
	p := timemodel.Default()
	p.AggregatorThreads = 2
	cl := New(Config{Nodes: 2, Params: p})
	defer cl.Close()

	// Deterministic clock state: every drain thread on every node busy
	// for the whole phase. 2 nodes x 2 threads x 1e6 ns of busy time
	// over a 1e6+barrier ns phase.
	const busy = 1e6
	for _, n := range cl.nodes {
		n.Clocks.AddAgg(busy * float64(p.AggregatorThreads))
	}
	cl.RecordPhase("synthetic", []float64{busy, busy})

	st := cl.Stats()
	if st.Agg.Threads != 2 {
		t.Fatalf("Stats.Agg.Threads = %d, want 2", st.Agg.Threads)
	}
	want := st.Agg.BusyNs / (st.VirtualNs * 2 * 2)
	if st.Agg.BusyFrac != want {
		t.Errorf("BusyFrac = %v, want busy/(virtual*nodes*threads) = %v", st.Agg.BusyFrac, want)
	}
	// The old formula divided by nodes only, reporting ~2.0 here.
	if st.Agg.BusyFrac > 1.0001 {
		t.Errorf("BusyFrac %v exceeds 1 with fully-busy threads: capacity weighting lost", st.Agg.BusyFrac)
	}
}

// TestTraceReplay is the enabled-path flight recorder test: run a real
// workload with the recorder installed, serialize the trace to JSONL,
// and replay it through the validator — which enforces the schema
// (version, known kinds, node range) and monotonic timestamps — then
// check the kinds a superstep must produce are all present.
func TestTraceReplay(t *testing.T) {
	rec := obs.Start(obs.Options{})
	defer obs.Stop()

	cl := New(Config{Nodes: 4})
	incWorkload(t, cl, 2)
	cl.Close()
	obs.Stop()

	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	events, err := obs.ValidateJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("trace failed validation: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("trace is empty")
	}
	seen := map[obs.Kind]int{}
	for _, ev := range events {
		seen[ev.Kind]++
	}
	for _, want := range []obs.Kind{obs.KStepBegin, obs.KStepEnd, obs.KSlotReserve, obs.KSend} {
		if seen[want] == 0 {
			t.Errorf("trace has no %q events (kinds seen: %v)", want, seen)
		}
	}
	if seen[obs.KStepBegin] != 2 || seen[obs.KStepEnd] != 2 {
		t.Errorf("step span events: %d begin / %d end, want 2 / 2",
			seen[obs.KStepBegin], seen[obs.KStepEnd])
	}
	// Flushes happen (full or timeout) whenever messages were staged.
	if seen[obs.KAggFlushFull]+seen[obs.KAggFlushTimeout] == 0 {
		t.Error("trace has no aggregator flush events")
	}
}
