// Package core implements the Gravel runtime — the paper's primary
// contribution (§3.4, §4, §6): a cluster of nodes where each node's GPU
// offloads fine-grain PGAS messages at work-group granularity through a
// producer/consumer queue to a CPU aggregator, which combines messages
// per destination into 64 kB per-node queues; a per-node network thread
// resolves received messages (and all atomics, local or not) as local
// memory operations.
//
// Execution is functionally real — goroutines, atomics, actual message
// buffers — while time is virtual (package timemodel). The same Cluster
// also powers the message-per-lane baseline (AggPerMessage bypasses
// message combining), and its exported internals are reused by the
// coprocessor and coalesced-API baselines in package models.
package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gravel/internal/agg"
	"gravel/internal/fabric"
	"gravel/internal/obs"
	"gravel/internal/pgas"
	"gravel/internal/queue"
	"gravel/internal/rt"
	"gravel/internal/simt"
	"gravel/internal/stats"
	"gravel/internal/timemodel"
	_ "gravel/internal/transport" // registers the "loopback" and "tcp" transports
	"gravel/internal/transport/fault"
	"gravel/internal/wire"
)

// AggMode selects how offloaded messages reach the wire.
type AggMode int

const (
	// AggCombine is Gravel: the aggregator combines messages targeting
	// the same destination into per-node queues.
	AggCombine AggMode = iota
	// AggPerMessage is the message-per-lane baseline (§3.2, §7.2): every
	// message becomes its own wire packet.
	AggPerMessage
)

// Config configures a cluster.
type Config struct {
	// Name labels the system (defaults to "gravel").
	Name string
	// Nodes is the cluster size.
	Nodes int
	// Params is the virtual-time cost model; nil means timemodel.Default.
	Params *timemodel.Params
	// WGSize is the work-group size in lanes (default 256 = 4 WFs).
	WGSize int
	// DivMode selects diverged WG-level operation behaviour (§5).
	DivMode simt.DivergenceMode
	// AggMode selects Gravel aggregation or per-message sends.
	AggMode AggMode
	// AggStrategy selects the send-path aggregation strategy: "" or
	// AggTicket (the paper's sharded ticket-slot builders), or
	// AggArchive (grape-style per-destination growable archives,
	// appended by the device at WF granularity — see agg.Archive).
	// The archive strategy is flat and always combines, so it rejects
	// GroupSize > 1 and AggPerMessage.
	AggStrategy string
	// ArchiveFuse, with AggStrategy == AggArchive, merges a
	// destination's sealed archive segments into one contiguous packet
	// at flush time (the grape default); without it each segment ships
	// as its own packet.
	ArchiveFuse bool
	// Arch overrides the device architecture (nil = the paper's GPU);
	// used by the Figure 13 CPU-only baseline.
	Arch *simt.Arch
	// LocalAtomicsDirect disables the paper's §6 design choice of
	// serializing even node-local atomics through the network thread:
	// instead the GPU executes local increments as concurrent
	// read-modify-writes. The paper found its approach faster; the
	// ablation in internal/bench reproduces that comparison.
	LocalAtomicsDirect bool
	// GroupSize > 1 enables the paper's §10 projection: two-level
	// hierarchical aggregation over groups of this many nodes. Messages
	// leaving the sender's group travel in per-group queues to a gateway
	// member of the destination group, which re-aggregates them.
	GroupSize int
	// ResolverShards splits each node's receive-side resolution into
	// this many concurrent per-bank resolvers (see resolver.go). 0 or 1
	// is the paper's serial network thread, bit-identical to the
	// pre-sharding runtime; more must be a power of two, at most
	// fabric.MaxResolverBanks.
	ResolverShards int
	// Transport names a registered fabric transport: "" or "chan" (the
	// default in-process channel fabric), "loopback" (in-process with
	// real framing), or "tcp" (real sockets; the cluster spans OS
	// processes, one hosted node per process).
	Transport string
	// TransportOpts configures non-default transports (addresses,
	// coordinator, wall-clock timing).
	TransportOpts fabric.Options
}

// Send-path aggregation strategy names (Config.AggStrategy).
const (
	// AggTicket is the paper's aggregator: drain threads repack queue
	// slots into fixed-capacity per-destination builders.
	AggTicket = "ticket"
	// AggArchive is the grape-style rival: per-destination growable
	// archives with WF-aggregated device appends and bulk handoff.
	AggArchive = "archive"
)

// Fabric is the interconnect interface the runtime depends on; concrete
// transports live in internal/fabric ("chan") and internal/transport
// ("loopback", "tcp").
type Fabric = fabric.Fabric

// Node is one simulated machine: an APU (GPU + CPU threads) plus a NIC.
type Node struct {
	ID     int
	GPU    *simt.Device
	PCQ    *queue.Gravel
	Agg    agg.Strategy
	Clocks *timemodel.Clocks

	// LocalOps / RemoteOps count fine-grain accesses by locality
	// (Table 5 remote-access frequency).
	LocalOps, RemoteOps stats.Counter
	// Waits counts WaitUntil verb calls by this node's work-groups.
	Waits stats.Counter

	cl *Cluster
}

// Cluster implements rt.System for Gravel (and, with AggPerMessage, the
// message-per-lane model).
type Cluster struct {
	cfg    Config
	params *timemodel.Params
	space  *pgas.Space
	fab    fabric.Fabric
	nodes  []*Node

	handlers []rt.AMHandler

	// Receive-side resolution (resolver.go): shards is the per-node
	// resolver bank count; bankMu serializes applies per (node, bank);
	// resv and bypass count resolver and bypass work; decodeErr holds
	// the first wire decode failure for Quiesce to surface.
	shards    int
	bankMu    [][]sync.Mutex
	resv      [][]bankCounters
	bypass    []bankCounters
	decodeErr atomic.Pointer[WireDecodeError]

	phases  []timemodel.PhaseRecord
	prev    []timemodel.Snapshot
	totalNs float64

	// Per-step delta capture: steps accumulates one rt.StepStats per
	// recorded phase, prevTotals the cumulative counters at the last
	// phase boundary, stepStart the wall clock of the last LaunchAll.
	steps      []rt.StepStats
	prevTotals runningTotals
	stepStart  time.Time

	netWG  sync.WaitGroup
	closed bool
}

// runningTotals is the cumulative counter set the per-step deltas are
// computed from. Every field is drawn from the same sources Stats uses
// for its cumulative sections, so deltas sum back to the totals.
type runningTotals struct {
	localOps, remoteOps         int64
	slotsDrained, msgsDrained   int64
	wirePkts, wireBytes         int64
	selfPkts                    int64
	aggBusy, aggIdle            float64
	resvPkts, resvMsgs, resvAMs int64
	bypassPkts, bypassMsgs      int64
	signals, waits              int64
}

func (cl *Cluster) totals() runningTotals {
	var t runningTotals
	m := cl.fab.NetMetrics()
	for i, n := range cl.nodes {
		t.localOps += n.LocalOps.Load()
		t.remoteOps += n.RemoteOps.Load()
		snap := n.Clocks.Snapshot()
		t.slotsDrained += snap.AggSlots
		t.msgsDrained += snap.AggMsgs
		t.wirePkts += snap.PktsSent
		t.wireBytes += snap.BytesSent
		t.aggBusy += snap.Agg
		t.aggIdle += snap.AggIdle
		t.selfPkts += m.SelfPkts[i].Load()
		for b := range cl.resv[i] {
			ctr := &cl.resv[i][b]
			t.resvPkts += ctr.pkts.Load()
			t.resvMsgs += ctr.msgs.Load()
			t.resvAMs += ctr.ams.Load()
			t.signals += ctr.sigs.Load()
		}
		t.bypassPkts += cl.bypass[i].pkts.Load()
		t.bypassMsgs += cl.bypass[i].msgs.Load()
		t.signals += cl.bypass[i].sigs.Load()
		t.waits += n.Waits.Load()
	}
	return t
}

// New builds and starts a cluster.
func New(cfg Config) *Cluster {
	if cfg.Nodes <= 0 {
		panic("core: non-positive node count")
	}
	if cfg.Params == nil {
		cfg.Params = timemodel.Default()
	}
	if cfg.WGSize == 0 {
		cfg.WGSize = 4 * cfg.Params.WFWidth
	}
	if cfg.WGSize < 0 || cfg.WGSize%cfg.Params.WFWidth != 0 {
		panic(fmt.Sprintf("core: WGSize %d must be a positive multiple of the wavefront width %d",
			cfg.WGSize, cfg.Params.WFWidth))
	}
	if cfg.GroupSize < 0 {
		panic("core: negative GroupSize")
	}
	if cfg.Name == "" {
		cfg.Name = "gravel"
	}
	switch cfg.AggStrategy {
	case "", AggTicket, AggArchive:
	default:
		panic(fmt.Sprintf("core: unknown AggStrategy %q (have %q, %q)", cfg.AggStrategy, AggTicket, AggArchive))
	}
	if cfg.AggStrategy == AggArchive {
		if cfg.GroupSize > 1 {
			panic("core: the archive aggregation strategy is flat (GroupSize > 1 requires the ticket strategy)")
		}
		if cfg.AggMode == AggPerMessage {
			panic("core: the archive aggregation strategy always combines (AggPerMessage requires the ticket strategy)")
		}
	}
	shards := cfg.ResolverShards
	if shards == 0 {
		shards = 1
	}
	if !fabric.ValidBanks(shards) {
		panic(fmt.Sprintf("core: ResolverShards %d must be a power of two in [1, %d]",
			shards, fabric.MaxResolverBanks))
	}
	p := cfg.Params

	cl := &Cluster{cfg: cfg, params: p, space: pgas.NewSpace(cfg.Nodes), shards: shards}

	clocks := make([]*timemodel.Clocks, cfg.Nodes)
	for i := range clocks {
		clocks[i] = &timemodel.Clocks{}
		if shards > 1 {
			clocks[i].ConfigureNetBanks(shards)
		}
	}
	if cfg.Transport == "" || cfg.Transport == "chan" {
		cl.fab = fabric.NewBanked(p, clocks, shards)
	} else {
		opts := cfg.TransportOpts
		opts.ResolverBanks = shards
		fab, err := fabric.NewByName(cfg.Transport, p, clocks, opts)
		if err != nil {
			panic(err)
		}
		cl.fab = fab
	}
	cl.bankMu = make([][]sync.Mutex, cfg.Nodes)
	cl.resv = make([][]bankCounters, cfg.Nodes)
	cl.bypass = make([]bankCounters, cfg.Nodes)
	for i := range cl.bankMu {
		cl.bankMu[i] = make([]sync.Mutex, shards)
		cl.resv[i] = make([]bankCounters, shards)
	}

	arch := simt.GPUArch(p)
	if cfg.Arch != nil {
		arch = *cfg.Arch
	}

	slotBytes := wire.SlotRows * cfg.WGSize * 8
	numSlots := p.PCQBytes / slotBytes
	if numSlots < 4 {
		numSlots = 4
	}

	cl.nodes = make([]*Node, cfg.Nodes)
	for i := range cl.nodes {
		n := &Node{ID: i, Clocks: clocks[i], cl: cl}
		n.GPU = simt.NewDevice(arch)
		n.GPU.Mode = cfg.DivMode
		n.GPU.Clock = n.Clocks
		n.PCQ = queue.NewGravel(numSlots, wire.SlotRows, cfg.WGSize)
		n.PCQ.Owner = i
		if cfg.AggStrategy == AggArchive {
			n.Agg = agg.NewArchive(i, p, n.PCQ, cl.fab, n.Clocks, cfg.ArchiveFuse)
		} else {
			n.Agg = agg.NewHierarchical(i, p, n.PCQ, cl.fab, n.Clocks, cfg.AggMode == AggPerMessage, cfg.GroupSize)
		}
		cl.nodes[i] = n
	}

	cl.prev = make([]timemodel.Snapshot, cfg.Nodes)
	// Resolvers (and the local bypass registration) come up before the
	// aggregators so the bypass hook happens-before the first Send.
	cl.startResolvers()
	for _, n := range cl.nodes {
		// A multi-process transport hosts one node per process; the
		// others exist only for address-space symmetry and stay idle.
		if !cl.fab.Hosts(n.ID) {
			continue
		}
		n.Agg.Start()
	}
	if hd, ok := cl.fab.(fabric.HostDrainer); ok {
		hd.SetHostDrain(cl.drainHosted)
	}
	return cl
}

// drainHosted flushes every hosted node's staged messages toward the
// wire and reports whether host-side work remains. A multi-process
// fabric calls it (via fabric.HostDrainer) on every local-idleness
// check: once this process has left Quiesce and is polling the quiet
// protocol or the step barrier, an incoming active message's follow-up
// (HostAM from a handler, staged via Agg.AppendDirect) would otherwise
// sit in a partially-filled aggregator queue with nothing left to flush
// it — the cluster's sent/applied counters would balance and the step
// barrier would release with the cascade cut off mid-chain.
func (cl *Cluster) drainHosted() bool {
	idle := true
	for _, n := range cl.nodes {
		if !cl.fab.Hosts(n.ID) {
			continue
		}
		n.Agg.Flush()
		if !n.PCQ.Empty() || n.Agg.Busy() || n.Agg.Pending() {
			idle = false
		}
	}
	return idle
}

// Name implements rt.System.
func (cl *Cluster) Name() string { return cl.cfg.Name }

// Nodes implements rt.System.
func (cl *Cluster) Nodes() int { return cl.cfg.Nodes }

// Space implements rt.System.
func (cl *Cluster) Space() *pgas.Space { return cl.space }

// Params returns the cost model in use.
func (cl *Cluster) Params() *timemodel.Params { return cl.params }

// WGSize returns the configured work-group size.
func (cl *Cluster) WGSize() int { return cl.cfg.WGSize }

// Node returns node i (exported for the baseline models and tests).
func (cl *Cluster) Node(i int) *Node { return cl.nodes[i] }

// Fabric returns the interconnect (exported for the baseline models and
// the multi-process node runtime).
func (cl *Cluster) Fabric() Fabric { return cl.fab }

// ResolverShards returns the per-node resolver bank count in effect.
func (cl *Cluster) ResolverShards() int { return cl.shards }

// RegisterAM implements rt.System. Handlers must be registered before
// the first Step.
func (cl *Cluster) RegisterAM(h rt.AMHandler) uint8 {
	if len(cl.handlers) > 255 {
		panic("core: too many AM handlers")
	}
	cl.handlers = append(cl.handlers, h)
	return uint8(len(cl.handlers) - 1)
}

// Handler returns a registered handler (for the baseline models).
func (cl *Cluster) Handler(h uint8) rt.AMHandler { return cl.handlers[h] }

// Step implements rt.System: launch the kernel everywhere, quiesce,
// record the phase with overlapped composition (§3.4: Gravel overlaps
// communication and computation).
func (cl *Cluster) Step(name string, grid []int, scratchPerWG int, k rt.Kernel) {
	cl.LaunchAll(grid, scratchPerWG, func(n *Node, grp *simt.Group) rt.Ctx {
		return &ctx{n: n, g: grp}
	}, k)
	cl.Quiesce()
	cl.StepBarrier()
	cl.EndPhaseOverlapped(name)
}

// StepBarrier aligns step boundaries across a multi-process fabric:
// without it, a fast process could read results (or send the next
// step's messages) before a skewed peer's current-step messages have
// been applied. In-process fabrics need no alignment — the single Step
// caller is the barrier — so this is a no-op for them. Baseline models
// call it at the end of their own Steps, after Quiesce and before the
// phase record.
func (cl *Cluster) StepBarrier() {
	if b, ok := cl.fab.(interface{ StepBarrier() }); ok {
		b.StepBarrier()
	}
}

// LaunchAll launches kernel k with grid[i] work-items on node i, using
// mkCtx to build each work-group's context. It blocks until all devices
// finish (but does not quiesce or record a phase). Baseline models build
// their Steps from this.
func (cl *Cluster) LaunchAll(grid []int, scratchPerWG int, mkCtx func(*Node, *simt.Group) rt.Ctx, k rt.Kernel) {
	if len(grid) != cl.cfg.Nodes {
		panic(fmt.Sprintf("core: launch grid has %d entries for %d nodes", len(grid), cl.cfg.Nodes))
	}
	cl.stepStart = time.Now()
	if obs.Enabled() {
		obs.Emit(obs.KStepBegin, -1, int64(len(cl.steps)), 0, "")
	}
	var wg sync.WaitGroup
	for i, n := range cl.nodes {
		if grid[i] <= 0 {
			continue
		}
		if !cl.fab.Hosts(i) {
			panic(fmt.Sprintf("core: launch on node %d, which this process does not host", i))
		}
		n.Clocks.AddHost(cl.params.KernelLaunchNs)
		wg.Add(1)
		go func(n *Node, g int) {
			defer wg.Done()
			n.GPU.Launch(g, cl.cfg.WGSize, scratchPerWG, func(grp *simt.Group) {
				k(mkCtx(n, grp))
			})
		}(n, grid[i])
	}
	wg.Wait()
}

// Quiesce blocks until every initiated message has been applied: all
// producer/consumer queues drained, all per-node queues flushed, the
// wire empty, and the network threads idle.
func (cl *Cluster) Quiesce() {
	stable := 0
	for stable < 2 {
		cl.checkDecodeErr()
		for _, n := range cl.nodes {
			for !n.PCQ.Empty() {
				runtime.Gosched()
			}
		}
		for _, n := range cl.nodes {
			n.Agg.Flush()
		}
		for !cl.fab.Quiet() {
			runtime.Gosched()
		}
		quiet := true
		for _, n := range cl.nodes {
			if !n.PCQ.Empty() || n.Agg.Busy() || n.Agg.Pending() {
				quiet = false
				break
			}
		}
		if quiet && cl.fab.Quiet() {
			stable++
		} else {
			stable = 0
		}
	}
	cl.checkDecodeErr()
}

// EndPhaseOverlapped snapshots per-node clocks since the previous phase
// and records a phase whose per-node time is the busiest-resource bound.
func (cl *Cluster) EndPhaseOverlapped(name string) {
	nodeNs := make([]float64, cl.cfg.Nodes)
	for i, n := range cl.nodes {
		snap := n.Clocks.Snapshot()
		nodeNs[i] = snap.Sub(cl.prev[i]).Overlapped()
		cl.prev[i] = snap
	}
	cl.RecordPhase(name, nodeNs)
}

// EndPhaseSequential is EndPhaseOverlapped with bulk-synchronous
// composition (used by the coprocessor baseline).
func (cl *Cluster) EndPhaseSequential(name string) {
	nodeNs := make([]float64, cl.cfg.Nodes)
	for i, n := range cl.nodes {
		snap := n.Clocks.Snapshot()
		nodeNs[i] = snap.Sub(cl.prev[i]).Sequential()
		cl.prev[i] = snap
	}
	cl.RecordPhase(name, nodeNs)
}

// RecordPhase appends a phase record: cluster phase time is the slowest
// node plus one barrier. It is the funnel every model's Step ends in,
// so it also captures the per-step counter deltas for Stats and closes
// the flight recorder's step span.
func (cl *Cluster) RecordPhase(name string, nodeNs []float64) {
	m := 0.0
	for _, v := range nodeNs {
		if v > m {
			m = v
		}
	}
	phase := m + cl.params.BarrierNs
	cl.phases = append(cl.phases, timemodel.PhaseRecord{Name: name, NodeNs: nodeNs, PhaseNs: phase})
	cl.totalNs += phase

	var wall int64
	if !cl.stepStart.IsZero() {
		wall = time.Since(cl.stepStart).Nanoseconds()
		cl.stepStart = time.Time{}
	}
	cur := cl.totals()
	prev := cl.prevTotals
	cl.prevTotals = cur
	cl.steps = append(cl.steps, rt.StepStats{
		Index:        len(cl.steps),
		Name:         name,
		VirtualNs:    phase,
		WallNs:       wall,
		LocalOps:     cur.localOps - prev.localOps,
		RemoteOps:    cur.remoteOps - prev.remoteOps,
		SlotsDrained: cur.slotsDrained - prev.slotsDrained,
		MsgsDrained:  cur.msgsDrained - prev.msgsDrained,
		WirePackets:  cur.wirePkts - prev.wirePkts,
		WireBytes:    cur.wireBytes - prev.wireBytes,
		SelfPackets:  cur.selfPkts - prev.selfPkts,
		AggBusyNs:    cur.aggBusy - prev.aggBusy,
		AggIdleNs:    cur.aggIdle - prev.aggIdle,

		ResolvedPackets: cur.resvPkts - prev.resvPkts,
		ResolvedMsgs:    cur.resvMsgs - prev.resvMsgs,
		ResolvedAMs:     cur.resvAMs - prev.resvAMs,
		BypassPackets:   cur.bypassPkts - prev.bypassPkts,
		BypassMsgs:      cur.bypassMsgs - prev.bypassMsgs,
		Signals:         cur.signals - prev.signals,
		Waits:           cur.waits - prev.waits,
	})
	if obs.Enabled() {
		obs.Emit(obs.KStepEnd, -1, wall, int64(phase), name)
		obs.ObserveStepWall(wall)
	}
}

// HostAM implements rt.System: it initiates an active message from
// host context on node from — typically from inside an AM handler,
// enabling request/reply protocols. The message is staged into the
// node's aggregator and is applied before the enclosing Step returns
// (the quiescence protocol iterates until no messages remain anywhere).
func (cl *Cluster) HostAM(from int, h uint8, dest int, a, b uint64) {
	n := cl.nodes[from]
	// Charge the initiation to the bank that will resolve the message —
	// always bank 0 for AMs (fabric.BankOfRecord) — so banked NetBound
	// (max over banks) still sees it; at one shard this is exactly
	// AddNet.
	n.Clocks.AddNetBank(0, cl.params.NetThreadPerMsgNs)
	if dest == from {
		n.LocalOps.Inc()
	} else {
		n.RemoteOps.Inc()
	}
	n.Agg.AppendDirect(dest, wire.PackCmd(wire.OpAM, h, 0), a, b, 0)
}

// ChargeHost implements rt.System.
func (cl *Cluster) ChargeHost(ns float64) {
	for _, n := range cl.nodes {
		n.Clocks.AddHost(ns)
	}
}

// VirtualTimeNs implements rt.System.
func (cl *Cluster) VirtualTimeNs() float64 { return cl.totalNs }

// Phases implements rt.System.
func (cl *Cluster) Phases() []timemodel.PhaseRecord { return cl.phases }

// Stats implements rt.System: the versioned snapshot every section of
// the runtime reports through.
func (cl *Cluster) Stats() rt.Stats {
	st := rt.Stats{
		Version:   rt.StatsVersion,
		Model:     cl.cfg.Name,
		Nodes:     cl.cfg.Nodes,
		VirtualNs: cl.totalNs,
	}
	cur := cl.totals()
	st.Queue = rt.QueueStats{
		LocalOps:     cur.localOps,
		RemoteOps:    cur.remoteOps,
		SlotsDrained: cur.slotsDrained,
		MsgsDrained:  cur.msgsDrained,
	}

	threads := cl.params.AggregatorThreads
	if threads < 1 {
		threads = 1
	}
	st.Agg = rt.AggStats{
		Strategy: cl.nodes[0].Agg.Name(),
		BusyNs:   cur.aggBusy,
		IdleNs:   cur.aggIdle,
		Threads:  threads,
	}
	// Busy fraction of the aggregator cores over the run's virtual time
	// (the paper's §8.1 metric: 65% of the core's time is polling),
	// weighted by drain capacity: busy time accrues on every drain
	// thread, so the denominator scales with nodes × threads.
	if cl.totalNs > 0 {
		st.Agg.BusyFrac = cur.aggBusy / (cl.totalNs * float64(len(cl.nodes)) * float64(threads))
	}
	for _, n := range cl.nodes {
		full, timeout := n.Agg.FlushCounts()
		st.Agg.FlushesFull += full
		st.Agg.FlushesTimeout += timeout
	}

	st.Resolver = rt.ResolverStats{
		Shards:        cl.shards,
		Packets:       cur.resvPkts,
		Msgs:          cur.resvMsgs,
		AMs:           cur.resvAMs,
		BypassPackets: cur.bypassPkts,
		BypassMsgs:    cur.bypassMsgs,
		PerBank:       make([]rt.BankCount, cl.shards),
	}
	st.PGAS = rt.PGASStats{Signals: cur.signals, Waits: cur.waits}
	for i := range cl.resv {
		for b := range cl.resv[i] {
			ctr := &cl.resv[i][b]
			st.Resolver.PerBank[b].Packets += ctr.pkts.Load()
			st.Resolver.PerBank[b].Msgs += ctr.msgs.Load()
			st.Resolver.PerBank[b].AMs += ctr.ams.Load()
		}
	}

	m := cl.fab.NetMetrics()
	st.Transport = rt.TransportStats{
		WirePackets:    cur.wirePkts,
		WireBytes:      cur.wireBytes,
		AvgPacketBytes: m.TotalAvgPacketBytes(),
		SelfPackets:    cur.selfPkts,
		PerDest:        make([]rt.DestCount, cl.cfg.Nodes),
		Reconnects:     m.Reconnects.Load(),
		Retries:        m.Retries.Load(),
		Malformed:      m.Malformed.Load(),
		CorruptFrames:  m.CorruptFrames.Load(),
	}
	for d := range st.Transport.PerDest {
		st.Transport.PerDest[d] = rt.DestCount{Packets: m.PerDest.Packets(d), Bytes: m.PerDest.Bytes(d)}
	}

	if fi, ok := cl.fab.(interface{ FaultInjector() *fault.Injector }); ok {
		if in := fi.FaultInjector(); in.Enabled() {
			st.Faults.Enabled = true
			st.Faults.Seed = in.Config().Seed
			c := in.Counters()
			st.Faults.Drop, st.Faults.Dup, st.Faults.Reorder, st.Faults.Corrupt = c.Drop, c.Dup, c.Reorder, c.Corrupt
			st.Faults.Delay, st.Faults.Stall, st.Faults.Sever, st.Faults.Blocked = c.Delay, c.Stall, c.Sever, c.Blocked
		}
	}

	st.Steps = append([]rt.StepStats(nil), cl.steps...)
	return st
}

// NetStats implements rt.System.
//
// Deprecated: NetStats is the pre-observability flat snapshot; use
// Stats. It is derived from Stats, so the shared fields match the new
// sections bit-for-bit.
func (cl *Cluster) NetStats() rt.NetStats {
	return cl.Stats().NetStats()
}

// Close implements rt.System.
func (cl *Cluster) Close() {
	if cl.closed {
		return
	}
	cl.closed = true
	for _, n := range cl.nodes {
		if cl.fab.Hosts(n.ID) {
			n.Agg.Stop()
		}
	}
	cl.fab.Close()
	cl.netWG.Wait()
}

var _ rt.System = (*Cluster)(nil)
