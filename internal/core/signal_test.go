package core

import (
	"sync/atomic"
	"testing"

	"gravel/internal/rt"
)

// runSignalOrdering drives the PUT_SIGNAL ordering property on a
// 2-node cluster: node 0's lanes each signalled-put a distinct data
// cell of node 1's symmetric bank, all sharing one arrival counter,
// while node 1's scanner work-group repeatedly waits for rising
// thresholds and checks the invariant that makes signalled puts
// useful — the number of visible data cells is never below the
// observed signal count (signal implies data). Returns the number of
// invariant violations observed.
func runSignalOrdering(t *testing.T, shards int) int64 {
	t.Helper()
	cl := New(Config{Nodes: 2, ResolverShards: shards})
	defer cl.Close()

	const cells = 256
	data := cl.Space().SymAlloc(cells)
	sig := cl.Space().SymAlloc(1)
	var violations int64

	cl.Step("putsig", []int{cells, 1}, 0, func(c rt.Ctx) {
		g := c.Group()
		if c.Node() == 0 {
			idx := make([]uint64, g.Size)
			val := make([]uint64, g.Size)
			si := make([]uint64, g.Size)
			g.Vector(func(l int) {
				idx[l] = data.SymIndex(1, g.GlobalID(l))
				val[l] = uint64(g.GlobalID(l)) + 1
				si[l] = sig.SymIndex(1, 0)
			})
			c.PutSignal(data, idx, val, sig, si, nil)
			return
		}
		// Node 1: the scanner. At each threshold, load the counter
		// first, then count populated cells — the resolver applies the
		// store before the increment under the same bank lock, so every
		// increment the load observed must have its data visible.
		mask := make([]bool, g.Size)
		si := make([]uint64, g.Size)
		until := make([]uint64, g.Size)
		mask[0] = true
		si[0] = sig.SymIndex(1, 0)
		for thr := 32; thr <= cells; thr += 32 {
			until[0] = uint64(thr)
			c.WaitUntil(sig, si, until, mask)
			observed := sig.Load(si[0])
			seen := uint64(0)
			for i := 0; i < cells; i++ {
				if data.Load(data.SymIndex(1, i)) != 0 {
					seen++
				}
			}
			if seen < observed {
				atomic.AddInt64(&violations, 1)
			}
		}
	})

	// At quiescence every put has landed exactly once.
	if got := sig.Load(sig.SymIndex(1, 0)); got != cells {
		t.Errorf("shards=%d: arrival counter = %d, want %d", shards, got, cells)
	}
	for i := 0; i < cells; i++ {
		if got := data.Load(data.SymIndex(1, i)); got != uint64(i)+1 {
			t.Errorf("shards=%d: data cell %d = %d, want %d", shards, i, got, i+1)
			break
		}
	}
	st := cl.Stats()
	if st.PGAS.Signals != cells {
		t.Errorf("shards=%d: PGAS.Signals = %d, want %d", shards, st.PGAS.Signals, cells)
	}
	if st.PGAS.Waits != cells/32 {
		t.Errorf("shards=%d: PGAS.Waits = %d, want %d", shards, st.PGAS.Waits, cells/32)
	}
	return atomic.LoadInt64(&violations)
}

// TestPutSignalOrderingSharded: the signal-implies-data guarantee must
// hold with the serial network thread and with banked receive-side
// resolution — the signal and its data resolve under the same bank
// lock, so sharding cannot split them.
func TestPutSignalOrderingSharded(t *testing.T) {
	for _, shards := range []int{1, 4} {
		if v := runSignalOrdering(t, shards); v != 0 {
			t.Errorf("shards=%d: %d signal-before-data violations", shards, v)
		}
	}
}

// TestWaitUntilDoesNotTripQuiescence: a work-group parked in WaitUntil
// must not wedge its launch or let the step terminate early — later
// work-groups of the same node keep executing (Park spawns replacement
// workers), remote delivery keeps progressing, and Step returns only
// after the waiter was released by the real signal count.
func TestWaitUntilDoesNotTripQuiescence(t *testing.T) {
	cl := New(Config{Nodes: 2, WGSize: 64})
	defer cl.Close()

	const senders = 192 // node 0 work-items, one signalled put each
	sig := cl.Space().SymAlloc(1)
	scratch := cl.Space().Alloc(64)
	var released atomic.Int64

	// Node 1's grid: WG 0 (work-items 0..63) parks on the counter;
	// seven more WGs of unrelated local work must still be scheduled
	// and complete while it is parked.
	cl.Step("wait", []int{senders, 8 * 64}, 0, func(c rt.Ctx) {
		g := c.Group()
		if c.Node() == 0 {
			idx := make([]uint64, g.Size)
			val := make([]uint64, g.Size)
			si := make([]uint64, g.Size)
			g.Vector(func(l int) {
				idx[l] = 63 // scratch cell 63 is owned by node 1, like the counter
				val[l] = 1
				si[l] = sig.SymIndex(1, 0)
			})
			c.PutSignal(scratch, idx, val, sig, si, nil)
			return
		}
		if g.ID == 0 {
			mask := make([]bool, g.Size)
			si := make([]uint64, g.Size)
			until := make([]uint64, g.Size)
			mask[0] = true
			si[0] = sig.SymIndex(1, 0)
			until[0] = senders
			c.WaitUntil(sig, si, until, mask)
			if sig.Load(si[0]) >= senders {
				released.Add(1)
			}
			return
		}
		// Unrelated local work from the later WGs.
		idx := make([]uint64, g.Size)
		one := make([]uint64, g.Size)
		g.Vector(func(l int) {
			idx[l] = uint64(l % 32) // low half: owned by node 0 (remote)
			one[l] = 1
		})
		c.Inc(scratch, idx, one, nil)
	})

	if released.Load() != 1 {
		t.Fatal("waiter was not released by the signal count")
	}
	if got := sig.Load(sig.SymIndex(1, 0)); got != senders {
		t.Fatalf("arrival counter = %d, want %d", got, senders)
	}
	if got := cl.Stats().PGAS.Waits; got != 1 {
		t.Fatalf("PGAS.Waits = %d, want 1", got)
	}
}

// TestWaitUntilDeterministicTime: the wait charges a fixed virtual-time
// cost, not wall-clock spin time, so repeated runs of a park-heavy
// step must agree on virtual time exactly.
func TestWaitUntilDeterministicTime(t *testing.T) {
	run := func() float64 {
		cl := New(Config{Nodes: 2, WGSize: 64})
		defer cl.Close()
		data := cl.Space().SymAlloc(64)
		sig := cl.Space().SymAlloc(1)
		cl.Step("ws", []int{64, 64}, 0, func(c rt.Ctx) {
			g := c.Group()
			if c.Node() == 0 {
				idx := make([]uint64, g.Size)
				val := make([]uint64, g.Size)
				si := make([]uint64, g.Size)
				g.Vector(func(l int) {
					idx[l] = data.SymIndex(1, l)
					val[l] = uint64(l) + 1
					si[l] = sig.SymIndex(1, 0)
				})
				c.PutSignal(data, idx, val, sig, si, nil)
				return
			}
			mask := make([]bool, g.Size)
			si := make([]uint64, g.Size)
			until := make([]uint64, g.Size)
			mask[0] = true
			si[0] = sig.SymIndex(1, 0)
			until[0] = 64
			c.WaitUntil(sig, si, until, mask)
		})
		return cl.VirtualTimeNs()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("park-heavy step virtual time nondeterministic: %v vs %v", a, b)
	}
	if a <= 0 {
		t.Fatalf("virtual time %v", a)
	}
}

// kernelPanic runs a single-work-item kernel and returns the value it
// panicked with (nil if none); the recover happens inside the kernel so
// the launch worker survives.
func kernelPanic(cl *Cluster, body func(c rt.Ctx)) (r any) {
	cl.Step("panic", []int{1, 0}, 0, func(c rt.Ctx) {
		defer func() { r = recover() }()
		body(c)
	})
	return r
}

// TestPutSignalCoOwnershipPanics: a signal cell owned by a different
// node than its data cell is a protocol violation and must panic with
// the typed *SignalError naming both cells.
func TestPutSignalCoOwnershipPanics(t *testing.T) {
	cl := New(Config{Nodes: 2, WGSize: 64})
	defer cl.Close()
	data := cl.Space().SymAlloc(4)
	sig := cl.Space().SymAlloc(1)

	r := kernelPanic(cl, func(c rt.Ctx) {
		g := c.Group()
		mask := make([]bool, g.Size)
		idx := make([]uint64, g.Size)
		val := make([]uint64, g.Size)
		si := make([]uint64, g.Size)
		mask[0] = true
		idx[0] = data.SymIndex(1, 0) // data on node 1...
		si[0] = sig.SymIndex(0, 0)   // ...signal on node 0
		c.PutSignal(data, idx, val, sig, si, mask)
	})
	e, ok := r.(*SignalError)
	if !ok {
		t.Fatalf("panic = %v (%T), want *SignalError", r, r)
	}
	if e.Verb != "PutSignal" || e.DataOwner != 1 || e.SigOwner != 0 {
		t.Fatalf("wrong error coordinates: %+v", e)
	}
}

// TestWaitUntilRemoteCellPanics: waits must address local cells (that
// is where signals are delivered); a remote cell is a *SignalError.
func TestWaitUntilRemoteCellPanics(t *testing.T) {
	cl := New(Config{Nodes: 2, WGSize: 64})
	defer cl.Close()
	sig := cl.Space().SymAlloc(1)

	r := kernelPanic(cl, func(c rt.Ctx) { // runs on node 0
		g := c.Group()
		mask := make([]bool, g.Size)
		si := make([]uint64, g.Size)
		until := make([]uint64, g.Size)
		mask[0] = true
		si[0] = sig.SymIndex(1, 0) // node 1's cell
		c.WaitUntil(sig, si, until, mask)
	})
	e, ok := r.(*SignalError)
	if !ok {
		t.Fatalf("panic = %v (%T), want *SignalError", r, r)
	}
	if e.Verb != "WaitUntil" || e.Node != 0 || e.SigOwner != 1 {
		t.Fatalf("wrong error coordinates: %+v", e)
	}
}

// TestSignalVerbMaskErrors: the new verbs share the runtime's one mask
// convention — nil means all lanes, anything else must be WG-sized and
// violations are a typed *MaskError naming the verb.
func TestSignalVerbMaskErrors(t *testing.T) {
	cl := New(Config{Nodes: 2, WGSize: 64})
	defer cl.Close()
	data := cl.Space().SymAlloc(4)
	sig := cl.Space().SymAlloc(1)

	for _, tc := range []struct {
		verb string
		body func(c rt.Ctx, short []bool)
	}{
		{"PutSignal", func(c rt.Ctx, short []bool) {
			n := c.Group().Size
			c.PutSignal(data, make([]uint64, n), make([]uint64, n), sig, make([]uint64, n), short)
		}},
		{"WaitUntil", func(c rt.Ctx, short []bool) {
			n := c.Group().Size
			c.WaitUntil(sig, make([]uint64, n), make([]uint64, n), short)
		}},
	} {
		r := kernelPanic(cl, func(c rt.Ctx) { tc.body(c, make([]bool, 3)) })
		e, ok := r.(*MaskError)
		if !ok {
			t.Fatalf("%s: panic = %v (%T), want *MaskError", tc.verb, r, r)
		}
		// kernelPanic launches a single work-item, so the WG is 1 lane.
		if e.Verb != tc.verb || e.Got != 3 || e.Want != 1 {
			t.Fatalf("%s: wrong error coordinates: %+v", tc.verb, e)
		}
	}

	// An all-false mask is valid and a no-op: WaitUntil returns without
	// parking or charging a wait.
	before := cl.Stats().PGAS.Waits
	cl.Step("noop", []int{1, 0}, 0, func(c rt.Ctx) {
		g := c.Group()
		c.WaitUntil(sig, make([]uint64, g.Size), make([]uint64, g.Size), make([]bool, g.Size))
	})
	if got := cl.Stats().PGAS.Waits; got != before {
		t.Fatalf("no-active-lane WaitUntil charged a wait (%d -> %d)", before, got)
	}
}
