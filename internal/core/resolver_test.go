package core

import (
	"errors"
	"testing"

	"gravel/internal/rt"
	"gravel/internal/wire"
)

// runSharded runs a seeded scattered-increment workload on a fresh
// cluster and returns an order-sensitive checksum of the whole array,
// the stats snapshot, and the cluster-wide CountNetMsgs total. The
// workload mixes node-local and remote traffic, so it exercises the
// resolver banks and the node-local bypass together.
func runSharded(t *testing.T, nodes, group, shards int, seed uint64) (check uint64, st rt.Stats, netMsgs int64) {
	t.Helper()
	cl := New(Config{Nodes: nodes, GroupSize: group, ResolverShards: shards})
	defer cl.Close()
	const size = 1 << 12
	arr := cl.Space().Alloc(size)
	grid := fullGrid(nodes, 256)
	for s := 0; s < 3; s++ {
		cl.Step("inc", grid, 0, func(c rt.Ctx) {
			g := c.Group()
			idx := make([]uint64, g.Size)
			val := make([]uint64, g.Size)
			node := uint64(c.Node())
			g.Vector(func(l int) {
				idx[l] = (seed + node<<9 + uint64(g.GlobalID(l))*2654435761 + uint64(s)*97) % size
				val[l] = uint64(g.GlobalID(l))%7 + 1
			})
			c.Inc(arr, idx, val, nil)
		})
	}
	for i := uint64(0); i < size; i++ {
		check = check*31 + arr.Load(i)
	}
	st = cl.Stats()
	for _, n := range cl.nodes {
		netMsgs += n.Clocks.Snapshot().NetMsgs
	}
	return check, st, netMsgs
}

// TestShardedResolutionMatchesSerial: sharding the receive side must be
// invisible to application results and to the resolved-message
// accounting — only wall time (and the banked clock split) may change.
func TestShardedResolutionMatchesSerial(t *testing.T) {
	for _, group := range []int{0, 3} {
		ref, refSt, refNet := runSharded(t, 6, group, 1, 42)
		refApplied := refSt.Resolver.Msgs + refSt.Resolver.BypassMsgs
		if refApplied == 0 {
			t.Fatalf("group=%d: workload resolved no messages; test is vacuous", group)
		}
		if refNet != refApplied {
			t.Fatalf("group=%d shards=1: CountNetMsgs %d != resolver-applied %d", group, refNet, refApplied)
		}
		for _, shards := range []int{2, 4} {
			got, st, netMsgs := runSharded(t, 6, group, shards, 42)
			if got != ref {
				t.Errorf("group=%d shards=%d: checksum %d, serial %d", group, shards, got, ref)
			}
			applied := st.Resolver.Msgs + st.Resolver.BypassMsgs
			if applied != refApplied {
				t.Errorf("group=%d shards=%d: resolved %d msgs, serial resolved %d", group, shards, applied, refApplied)
			}
			// Every applied message is counted exactly once, relays at
			// their final destination only.
			if netMsgs != applied {
				t.Errorf("group=%d shards=%d: CountNetMsgs %d != resolver-applied %d", group, shards, netMsgs, applied)
			}
		}
	}
}

// TestRoutedReaggregationSharded is the hierarchical (§10) property
// test: routed packets relay through gateways, and with resolver banks
// the gateway's re-aggregation must neither reorder same-word records
// nor double-count relayed messages. Several seeded workloads must be
// bit-identical between serial and 4-way sharded resolution.
func TestRoutedReaggregationSharded(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		ref, refSt, _ := runSharded(t, 6, 2, 1, seed)
		got, st, netMsgs := runSharded(t, 6, 2, 4, seed)
		if got != ref {
			t.Errorf("seed=%d: sharded checksum %d, serial %d", seed, got, ref)
		}
		refApplied := refSt.Resolver.Msgs + refSt.Resolver.BypassMsgs
		applied := st.Resolver.Msgs + st.Resolver.BypassMsgs
		if applied != refApplied {
			t.Errorf("seed=%d: sharded resolved %d msgs, serial %d (relay double-count?)", seed, applied, refApplied)
		}
		if netMsgs != applied {
			t.Errorf("seed=%d: CountNetMsgs %d != resolver-applied %d", seed, netMsgs, applied)
		}
	}
}

// TestResolverStatsPerBank: the per-bank breakdown must sum exactly to
// the cumulative resolver section, and sharded runs must actually
// spread work across banks.
func TestResolverStatsPerBank(t *testing.T) {
	_, st, _ := runSharded(t, 4, 0, 4, 7)
	if st.Resolver.Shards != 4 {
		t.Fatalf("Resolver.Shards = %d, want 4", st.Resolver.Shards)
	}
	if len(st.Resolver.PerBank) != 4 {
		t.Fatalf("len(PerBank) = %d, want 4", len(st.Resolver.PerBank))
	}
	var pkts, msgs, ams int64
	active := 0
	for _, b := range st.Resolver.PerBank {
		pkts += b.Packets
		msgs += b.Msgs
		ams += b.AMs
		if b.Msgs > 0 {
			active++
		}
	}
	if pkts != st.Resolver.Packets || msgs != st.Resolver.Msgs || ams != st.Resolver.AMs {
		t.Errorf("PerBank sums (%d,%d,%d) != cumulative (%d,%d,%d)",
			pkts, msgs, ams, st.Resolver.Packets, st.Resolver.Msgs, st.Resolver.AMs)
	}
	if active < 2 {
		t.Errorf("only %d of 4 banks resolved messages; demux not spreading", active)
	}
}

// TestSelfSendBypassAccounting pins the node-local fast path's exact
// bookkeeping: on a single node every packet is node-local, so the wire
// stays untouched, every self packet is resolved by the bypass (not a
// resolver inbox), every drained message is bypass-applied, and the
// fabric is quiet the moment Step returns.
func TestSelfSendBypassAccounting(t *testing.T) {
	for _, shards := range []int{1, 4} {
		cl := New(Config{Nodes: 1, ResolverShards: shards})
		arr := cl.Space().Alloc(256)
		cl.Step("inc", []int{1024}, 0, func(c rt.Ctx) {
			g := c.Group()
			idx := make([]uint64, g.Size)
			one := make([]uint64, g.Size)
			g.Vector(func(l int) {
				idx[l] = uint64(g.GlobalID(l) % 256)
				one[l] = 1
			})
			c.Inc(arr, idx, one, nil)
		})
		if !cl.fab.Quiet() {
			t.Fatalf("shards=%d: fabric not quiet after Step", shards)
		}
		if got := arr.Sum(); got != 1024 {
			t.Fatalf("shards=%d: sum = %d, want 1024", shards, got)
		}
		st := cl.Stats()
		var netMsgs int64
		for _, n := range cl.nodes {
			netMsgs += n.Clocks.Snapshot().NetMsgs
		}
		cl.Close()
		if st.Transport.WirePackets != 0 {
			t.Errorf("shards=%d: node-local run put %d packets on the wire", shards, st.Transport.WirePackets)
		}
		if st.Resolver.BypassPackets == 0 {
			t.Fatalf("shards=%d: no packets took the bypass", shards)
		}
		if st.Resolver.BypassPackets != st.Transport.SelfPackets {
			t.Errorf("shards=%d: bypass packets %d != self packets %d",
				shards, st.Resolver.BypassPackets, st.Transport.SelfPackets)
		}
		if st.Resolver.Packets != 0 {
			t.Errorf("shards=%d: %d packets reached resolver inboxes on a 1-node run", shards, st.Resolver.Packets)
		}
		if st.Resolver.BypassMsgs != st.Queue.MsgsDrained {
			t.Errorf("shards=%d: bypass msgs %d != drained msgs %d",
				shards, st.Resolver.BypassMsgs, st.Queue.MsgsDrained)
		}
		if netMsgs != st.Resolver.BypassMsgs {
			t.Errorf("shards=%d: CountNetMsgs %d != bypass msgs %d", shards, netMsgs, st.Resolver.BypassMsgs)
		}
	}
}

// TestHostAMCascadeSharded is TestHostAMCascade at four resolver banks:
// AM handlers execute on resolver goroutines and re-send via HostAM, so
// the cascade proves handler execution, AppendDirect staging, and
// quiescence all survive the fan-out.
func TestHostAMCascadeSharded(t *testing.T) {
	cl := New(Config{Nodes: 4, ResolverShards: 4})
	defer cl.Close()
	arr := cl.Space().Alloc(4)
	var hop uint8
	hop = cl.RegisterAM(func(node int, a, b uint64) {
		arr.Add(uint64(node), 1)
		if b > 0 {
			cl.HostAM(node, hop, (node+1)%4, a, b-1)
		}
	})
	cl.Step("cascade", []int{1, 0, 0, 0}, 0, func(c rt.Ctx) {
		g := c.Group()
		dest := []int{1}
		a := []uint64{0}
		b := []uint64{99}
		g.Vector(func(int) {})
		c.AM(hop, dest, a, b, nil)
	})
	if got := arr.Sum(); got != 100 {
		t.Fatalf("cascade hops = %d, want 100 (quiescence returned early?)", got)
	}
	st := cl.Stats()
	if st.Resolver.AMs == 0 {
		t.Fatal("no AMs resolved on resolver banks")
	}
}

// TestWireDecodeErrorUnwindsQuiesce: a received packet whose payload
// fails wire decode must not crash a resolver goroutine — it surfaces
// as a typed *WireDecodeError panic out of Quiesce (like a transport
// PeerDownError out of Step), carrying the failure's coordinates.
func TestWireDecodeErrorUnwindsQuiesce(t *testing.T) {
	for _, shards := range []int{1, 4} {
		cl := New(Config{Nodes: 2, ResolverShards: shards})
		garbage := append(wire.GetBuf(32), "ragged-payload"...) // 14 B: not a record multiple
		cl.fab.Send(0, 1, garbage, 1)

		var err error
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("shards=%d: Quiesce did not panic on an undecodable payload", shards)
				}
				e, ok := r.(error)
				if !ok {
					t.Fatalf("shards=%d: Quiesce panicked with non-error %v", shards, r)
				}
				err = e
			}()
			cl.Quiesce()
		}()

		var wde *WireDecodeError
		if !errors.As(err, &wde) {
			t.Fatalf("shards=%d: Quiesce panic = %v (%T), want *WireDecodeError", shards, err, err)
		}
		if wde.Node != 1 || wde.From != 0 || wde.Bytes != 14 || wde.Routed {
			t.Errorf("shards=%d: error coordinates wrong: %+v", shards, wde)
		}
		if errors.Unwrap(wde) == nil {
			t.Errorf("shards=%d: WireDecodeError does not wrap the wire error", shards)
		}
		cl.Close()
	}
}
