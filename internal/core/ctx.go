package core

import (
	"gravel/internal/pgas"
	"gravel/internal/queue"
	"gravel/internal/rt"
	"gravel/internal/simt"
	"gravel/internal/wire"
)

// ctx is the per-work-group kernel context: it turns lane-level PGAS
// operations into WG-granularity offloads through the node's
// producer/consumer queue (§4.1): one prefix-sum to pack active lanes,
// one leader reservation (two atomics), one vectorized payload write,
// one commit.
type ctx struct {
	n *Node
	g *simt.Group

	// scratch, lazily sized to the WG
	allOn  []bool
	remote []bool
}

// Node implements rt.Ctx.
func (c *ctx) Node() int { return c.n.ID }

// Nodes implements rt.Ctx.
func (c *ctx) Nodes() int { return c.n.cl.cfg.Nodes }

// Group implements rt.Ctx.
func (c *ctx) Group() *simt.Group { return c.g }

func (c *ctx) allActive() []bool {
	if len(c.allOn) < c.g.Size {
		c.allOn = make([]bool, c.g.Size)
		for i := range c.allOn {
			c.allOn[i] = true
		}
	}
	return c.allOn[:c.g.Size]
}

// mask applies the rt.Ctx lane-mask convention: nil means all lanes,
// anything else must be exactly WG-sized (typed *MaskError otherwise).
func (c *ctx) mask(verb string, active []bool) []bool {
	if active == nil {
		return c.allActive()
	}
	CheckMask(verb, active, c.g.Size)
	return active
}

// offload performs one WG-granularity enqueue of the active lanes'
// messages under a single command word. destOf must be cheap and pure.
func (c *ctx) offload(cmd uint64, destOf func(lane int) int, a, b []uint64, active []bool) {
	c.offloadCmds(func(int) uint64 { return cmd }, destOf, a, b, active)
}

// offloadCmds is offload with a per-lane command word (PUT_SIGNAL
// carries the lane's signal cell in its command; everything else is
// uniform). cmdOf, like destOf, must be cheap and pure.
func (c *ctx) offloadCmds(cmdOf func(lane int) uint64, destOf func(lane int) int, a, b []uint64, active []bool) {
	g := c.g
	offs, count := g.PrefixSumMask(active)
	if count == 0 {
		return
	}
	// Leader reservation: the only global synchronization for up to
	// WGSize messages.
	g.ChargeAtomics(queue.ProducerAtomicsPerReserve)
	s := c.n.PCQ.Reserve(count)
	rowCmd := s.Row(wire.RowCmd)
	rowDest := s.Row(wire.RowDest)
	rowA := s.Row(wire.RowA)
	rowB := s.Row(wire.RowB)
	local, rem := 0, 0
	g.VectorMasked(wire.SlotRows, active, func(l int) {
		m := offs[l]
		d := destOf(l)
		rowCmd[m] = cmdOf(l)
		rowDest[m] = uint64(d)
		rowA[m] = a[l]
		rowB[m] = b[l]
		if d == c.n.ID {
			local++
		} else {
			rem++
		}
	})
	s.Commit()
	g.ChargeMessages(count)
	c.n.LocalOps.Add(int64(local))
	c.n.RemoteOps.Add(int64(rem))
}

// Inc implements rt.Ctx: atomic increments always travel through the
// owner's network thread, even when local (§6) — unless the cluster was
// built with LocalAtomicsDirect, in which case local increments execute
// as concurrent GPU read-modify-writes (the design the paper rejected).
func (c *ctx) Inc(arr *pgas.Array, idx, delta []uint64, active []bool) {
	active = c.mask("Inc", active)
	cmd := wire.PackCmd(wire.OpInc, 0, arr.ID())
	if !c.n.cl.cfg.LocalAtomicsDirect {
		c.offload(cmd, func(l int) int { return arr.Owner(idx[l]) }, idx, delta, active)
		return
	}
	g := c.g
	if len(c.remote) < g.Size {
		c.remote = make([]bool, g.Size)
	}
	remote := c.remote[:g.Size]
	me := c.n.ID
	anyRemote := false
	local := 0
	g.VectorMasked(1, active, func(l int) {
		if arr.Owner(idx[l]) == me {
			arr.Add(idx[l], delta[l])
			remote[l] = false
			local++
		} else {
			remote[l] = true
			anyRemote = true
		}
	})
	// Each local RMW is a contended global atomic, serialized at the
	// memory system.
	g.ChargeAtomics(local)
	c.n.LocalOps.Add(int64(local))
	if anyRemote {
		c.offload(cmd, func(l int) int { return arr.Owner(idx[l]) }, idx, delta, remote)
	}
	for l := 0; l < g.Size; l++ {
		remote[l] = false
	}
}

// Put implements rt.Ctx: local PUTs execute directly as GPU stores;
// remote PUTs are offloaded (§7.1).
func (c *ctx) Put(arr *pgas.Array, idx, val []uint64, active []bool) {
	active = c.mask("Put", active)
	g := c.g
	if len(c.remote) < g.Size {
		c.remote = make([]bool, g.Size)
	}
	remote := c.remote[:g.Size]
	me := c.n.ID
	anyRemote := false
	local := 0
	// One vector instruction: compute owner, store locally or mark for
	// offload.
	g.VectorMasked(2, active, func(l int) {
		if arr.Owner(idx[l]) == me {
			arr.Store(idx[l], val[l])
			remote[l] = false
			local++
		} else {
			remote[l] = true
			anyRemote = true
		}
	})
	c.n.LocalOps.Add(int64(local))
	if anyRemote {
		cmd := wire.PackCmd(wire.OpPut, 0, arr.ID())
		c.offload(cmd, func(l int) int { return arr.Owner(idx[l]) }, idx, val, remote)
		// offload counted the remote lanes as local=0, remote=count.
	}
	// Restore the all-false invariant on the scratch mask: a lane that
	// was active-remote in this call must not leak into the next one
	// (where it may be inactive and would resend a stale message).
	for l := 0; l < g.Size; l++ {
		remote[l] = false
	}
}

// AM implements rt.Ctx: active messages are atomics and always travel
// through the destination's network thread (§6).
func (c *ctx) AM(h uint8, dest []int, a, b []uint64, active []bool) {
	active = c.mask("AM", active)
	cmd := wire.PackCmd(wire.OpAM, h, 0)
	c.offload(cmd, func(l int) int { return dest[l] }, a, b, active)
}

var _ rt.Ctx = (*ctx)(nil)
