package core

import (
	"testing"

	"gravel/internal/rt"
	"gravel/internal/wire"
)

// fullGrid returns an n-node grid of size per node.
func fullGrid(nodes, per int) []int {
	g := make([]int, nodes)
	for i := range g {
		g[i] = per
	}
	return g
}

func TestStepGridValidation(t *testing.T) {
	cl := New(Config{Nodes: 2})
	defer cl.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched grid did not panic")
		}
	}()
	cl.Step("bad", []int{1}, 0, func(rt.Ctx) {})
}

func TestZeroGridStep(t *testing.T) {
	cl := New(Config{Nodes: 2})
	defer cl.Close()
	ran := false
	cl.Step("empty", []int{0, 0}, 0, func(rt.Ctx) { ran = true })
	if ran {
		t.Fatal("kernel ran with empty grid")
	}
	if len(cl.Phases()) != 1 {
		t.Fatal("empty step should still record a phase")
	}
}

func TestPartialGrid(t *testing.T) {
	cl := New(Config{Nodes: 3})
	defer cl.Close()
	arr := cl.Space().Alloc(16)
	cl.Step("partial", []int{64, 0, 32}, 0, func(c rt.Ctx) {
		g := c.Group()
		idx := make([]uint64, g.Size)
		one := make([]uint64, g.Size)
		g.Vector(func(l int) {
			idx[l] = uint64(c.Node())
			one[l] = 1
		})
		c.Inc(arr, idx, one, nil)
	})
	if arr.Load(0) != 64 || arr.Load(1) != 0 || arr.Load(2) != 32 {
		t.Fatalf("per-node counts: %d %d %d", arr.Load(0), arr.Load(1), arr.Load(2))
	}
}

// TestHostAMCascade: handlers that re-send must all resolve within one
// Step (quiescence loops until the cascade dies out).
func TestHostAMCascade(t *testing.T) {
	cl := New(Config{Nodes: 4})
	defer cl.Close()
	arr := cl.Space().Alloc(4)
	var hop uint8
	hop = cl.RegisterAM(func(node int, a, b uint64) {
		arr.Add(uint64(node), 1)
		if b > 0 {
			cl.HostAM(node, hop, (node+1)%4, a, b-1)
		}
	})
	cl.Step("cascade", []int{1, 0, 0, 0}, 0, func(c rt.Ctx) {
		g := c.Group()
		dest := []int{1}
		a := []uint64{0}
		b := []uint64{99} // 100 hops total
		g.Vector(func(int) {})
		c.AM(hop, dest, a, b, nil)
	})
	if got := arr.Sum(); got != 100 {
		t.Fatalf("cascade hops = %d, want 100 (quiescence returned early?)", got)
	}
}

// TestHierarchicalDelivery: with GroupSize set, cross-group messages
// relay through gateways but must deliver identically.
func TestHierarchicalDelivery(t *testing.T) {
	for _, group := range []int{0, 2, 3} {
		cl := New(Config{Nodes: 6, GroupSize: group})
		arr := cl.Space().Alloc(1 << 12)
		cl.Step("inc", fullGrid(6, 2048), 0, func(c rt.Ctx) {
			g := c.Group()
			idx := make([]uint64, g.Size)
			one := make([]uint64, g.Size)
			node := uint64(c.Node())
			g.Vector(func(l int) {
				idx[l] = (node*2048 + uint64(g.GlobalID(l))*797) % (1 << 12)
				one[l] = 1
			})
			c.Inc(arr, idx, one, nil)
		})
		sum := arr.Sum()
		cl.Close()
		if sum != 6*2048 {
			t.Fatalf("group=%d: sum=%d want %d", group, sum, 6*2048)
		}
	}
}

// TestHierarchicalPacketsAreBigger: grouped queues must produce larger
// wire packets than flat per-destination queues under thin traffic.
func TestHierarchicalPacketsAreBigger(t *testing.T) {
	run := func(group int) float64 {
		cl := New(Config{Nodes: 16, GroupSize: group})
		defer cl.Close()
		arr := cl.Space().Alloc(1 << 14)
		for step := 0; step < 4; step++ {
			cl.Step("inc", fullGrid(16, 512), 0, func(c rt.Ctx) {
				g := c.Group()
				idx := make([]uint64, g.Size)
				one := make([]uint64, g.Size)
				node := uint64(c.Node())
				g.Vector(func(l int) {
					idx[l] = (node<<9 ^ uint64(g.GlobalID(l))*2654435761) % (1 << 14)
					one[l] = 1
				})
				c.Inc(arr, idx, one, nil)
			})
		}
		return cl.NetStats().AvgPacketBytes
	}
	flat := run(0)
	hier := run(4)
	if hier <= flat {
		t.Fatalf("hierarchical avg packet (%.0f B) not larger than flat (%.0f B)", hier, flat)
	}
}

func TestLocalAtomicsDirect(t *testing.T) {
	for _, direct := range []bool{false, true} {
		cl := New(Config{Nodes: 2, LocalAtomicsDirect: direct})
		arr := cl.Space().Alloc(128)
		cl.Step("inc", fullGrid(2, 1024), 0, func(c rt.Ctx) {
			g := c.Group()
			idx := make([]uint64, g.Size)
			one := make([]uint64, g.Size)
			g.Vector(func(l int) {
				idx[l] = uint64(g.GlobalID(l) % 128)
				one[l] = 1
			})
			c.Inc(arr, idx, one, nil)
		})
		sum := arr.Sum()
		st := cl.NetStats()
		cl.Close()
		if sum != 2048 {
			t.Fatalf("direct=%v: sum=%d", direct, sum)
		}
		if st.LocalOps+st.RemoteOps != 2048 {
			t.Fatalf("direct=%v: ops=%d", direct, st.LocalOps+st.RemoteOps)
		}
	}
}

// TestPutLocalFastPath: a purely local PUT workload must not create
// wire packets.
func TestPutLocalFastPath(t *testing.T) {
	cl := New(Config{Nodes: 2})
	defer cl.Close()
	arr := cl.Space().Alloc(4096)
	part := arr.PartSize()
	cl.Step("put", fullGrid(2, part), 0, func(c rt.Ctx) {
		g := c.Group()
		idx := make([]uint64, g.Size)
		val := make([]uint64, g.Size)
		lo := uint64(c.Node() * part)
		g.Vector(func(l int) {
			idx[l] = lo + uint64(g.GlobalID(l))
			val[l] = 7
		})
		c.Put(arr, idx, val, nil)
	})
	st := cl.NetStats()
	if st.RemoteOps != 0 || st.WirePackets != 0 {
		t.Fatalf("local PUTs hit the wire: %+v", st)
	}
	if arr.Sum() != 4096*7 {
		t.Fatalf("sum=%d", arr.Sum())
	}
}

// TestPutStaleMaskRegression guards the fixed bug where a lane active
// in one predicated iteration leaked a stale message in the next.
func TestPutStaleMaskRegression(t *testing.T) {
	cl := New(Config{Nodes: 2, WGSize: 64})
	defer cl.Close()
	arr := cl.Space().Alloc(1 << 12)
	counts := []int{3, 1} // lane 0 does 3 puts, lane 1 does 1
	cl.Step("put", []int{2, 0}, 0, func(c rt.Ctx) {
		g := c.Group()
		idx := make([]uint64, g.Size)
		val := make([]uint64, g.Size)
		g.PredicatedLoop(counts, 1, func(i int, active []bool) {
			g.VectorMasked(1, active, func(l int) {
				// All remote (owned by node 1).
				idx[l] = uint64(1<<11 + l*16 + i)
				val[l] = 1
			})
			c.Put(arr, idx, val, active)
		})
	})
	// Exactly 4 distinct cells must be written.
	if got := arr.Sum(); got != 4 {
		t.Fatalf("cells written sum = %d, want 4 (stale-mask resend?)", got)
	}
	st := cl.NetStats()
	if st.RemoteOps != 4 {
		t.Fatalf("remote ops = %d, want 4", st.RemoteOps)
	}
}

func TestPhasesAndVirtualTimeMonotone(t *testing.T) {
	cl := New(Config{Nodes: 2})
	defer cl.Close()
	arr := cl.Space().Alloc(64)
	var last float64
	for i := 0; i < 3; i++ {
		cl.Step("s", fullGrid(2, 256), 0, func(c rt.Ctx) {
			g := c.Group()
			idx := make([]uint64, g.Size)
			one := make([]uint64, g.Size)
			g.Vector(func(l int) { idx[l] = uint64(l % 64); one[l] = 1 })
			c.Inc(arr, idx, one, nil)
		})
		v := cl.VirtualTimeNs()
		if v <= last {
			t.Fatalf("virtual time not monotone: %v then %v", last, v)
		}
		last = v
	}
	if len(cl.Phases()) != 3 {
		t.Fatalf("phases = %d", len(cl.Phases()))
	}
	for _, ph := range cl.Phases() {
		if ph.PhaseNs <= 0 || len(ph.NodeNs) != 2 {
			t.Fatalf("bad phase record %+v", ph)
		}
	}
}

func TestChargeHostAffectsTime(t *testing.T) {
	cl := New(Config{Nodes: 1})
	defer cl.Close()
	arr := cl.Space().Alloc(8)
	step := func() {
		cl.Step("s", []int{64}, 0, func(c rt.Ctx) {
			g := c.Group()
			idx := make([]uint64, g.Size)
			one := make([]uint64, g.Size)
			g.Vector(func(l int) { idx[l] = 0; one[l] = 1 })
			c.Inc(arr, idx, one, nil)
		})
	}
	step()
	base := cl.VirtualTimeNs()
	cl.ChargeHost(1e6)
	step()
	if got := cl.VirtualTimeNs() - base; got < 1e6 {
		t.Fatalf("host charge lost: phase delta %v < 1e6", got)
	}
}

func TestCloseIdempotent(t *testing.T) {
	cl := New(Config{Nodes: 2})
	cl.Close()
	cl.Close() // must not panic or deadlock
}

func TestDeterministicVirtualTime(t *testing.T) {
	run := func() float64 {
		cl := New(Config{Nodes: 4})
		defer cl.Close()
		arr := cl.Space().Alloc(1 << 12)
		for s := 0; s < 2; s++ {
			cl.Step("s", fullGrid(4, 4096), 0, func(c rt.Ctx) {
				g := c.Group()
				idx := make([]uint64, g.Size)
				one := make([]uint64, g.Size)
				node := uint64(c.Node())
				g.Vector(func(l int) {
					idx[l] = (node ^ uint64(g.GlobalID(l))*31) % (1 << 12)
					one[l] = 1
				})
				c.Inc(arr, idx, one, nil)
			})
		}
		return cl.VirtualTimeNs()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("virtual time nondeterministic: %v vs %v", a, b)
	}
}

func TestBadWirePacketPanics(t *testing.T) {
	// Decoding garbage ops must fail loudly, not corrupt state.
	cmd := wire.PackCmd(wire.Op(200), 0, 0)
	var buf [wire.MsgWireBytes]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(cmd >> (8 * i))
	}
	err := wire.Decode(buf[:], func(c, a, v uint64) {
		op, _, _ := wire.UnpackCmd(c)
		if op != wire.Op(200) {
			t.Fatal("op mangled")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	for _, bad := range []Config{
		{Nodes: 0},
		{Nodes: 2, WGSize: 100}, // not a WF multiple
		{Nodes: 2, GroupSize: -1},
		{Nodes: 2, ResolverShards: 3},   // not a power of two
		{Nodes: 2, ResolverShards: 128}, // above MaxResolverBanks
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Config %+v did not panic", bad)
				}
			}()
			New(bad).Close()
		}()
	}
}
