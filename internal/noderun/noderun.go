// Package noderun is the run-lifecycle layer of the distributed
// runtime: everything cmd/gravel-node used to inline — spawning a
// rendezvous coordinator, launching one worker per node, running the
// selected application shard, collecting and cross-checking the
// per-worker results — as a callable Go API. A cluster run is a value
// (Spec) handed to a Runner, not a process invocation, which is what
// lets gravel-server schedule runs onto a warm worker pool and lets
// tests drive real clusters without shelling out.
//
// A Spec picks one of three fabrics:
//
//	FabricLocal  one process, one System on the chan fabric — the
//	             bit-exactness reference and the cheapest execution
//	FabricTCP    one worker goroutine per node over the real TCP
//	             transport (frames, acks, reconnects) inside this
//	             process
//	FabricExec   one OS process per node (re-execed from Exe with the
//	             spec in the environment) — full process isolation,
//	             the fabric gravel-node -smoke and the chaos harness
//	             use
//
// All three produce the same additive checksum for the same Spec; the
// launcher enforces agreement across workers before returning.
package noderun

import (
	"fmt"
	"time"

	"gravel"
	"gravel/internal/harness"
	"gravel/internal/rt"
	"gravel/internal/transport/fault"
)

// Fabric names accepted by Spec.Fabric.
const (
	FabricLocal = "local"
	FabricTCP   = "tcp"
	FabricExec  = "exec"
)

// Spec identifies one cluster run completely: workload, model, cluster
// shape, fabric, and failure-injection/-detection knobs. Two Specs with
// the same Key() are the same run — the job queue dedups and caches on
// it — so every field that changes results (or execution shape) must
// feed Key.
type Spec struct {
	App    string         `json:"app"`
	Model  string         `json:"model"`
	Nodes  int            `json:"nodes"`
	Fabric string         `json:"fabric"`
	Params harness.Params `json:"params"`

	// Faults is a deterministic fault schedule (fault.Parse syntax),
	// applied on the TCP/exec fabrics.
	Faults string `json:"faults,omitempty"`
	// WallClock charges measured wall time for wire activity instead of
	// the virtual cost model.
	WallClock bool `json:"wall_clock,omitempty"`
	// ResolverShards is the per-node receive-side resolver bank count
	// (0 or 1 = the serial network thread; otherwise a power of two).
	ResolverShards int `json:"resolver_shards,omitempty"`

	// Failure-detection cadence and coordinator deadlines; zero values
	// resolve to the transport defaults.
	Suspect         time.Duration `json:"suspect,omitempty"`
	Heartbeat       time.Duration `json:"heartbeat,omitempty"`
	CoordTimeout    time.Duration `json:"coord_timeout,omitempty"`
	CoordBackoff    time.Duration `json:"coord_backoff,omitempty"`
	CoordBackoffMax time.Duration `json:"coord_backoff_max,omitempty"`
	CoordRPCTimeout time.Duration `json:"coord_rpc_timeout,omitempty"`

	// Elastic enables checkpoint/restore and recovery orchestration:
	// workers save shard checkpoints at step barriers, and the launcher
	// heals a worker loss by starting a new membership epoch restored
	// from the latest complete checkpoint instead of failing the run.
	// Requires an app with an Elastic entry point.
	Elastic bool `json:"elastic,omitempty"`
	// CkptEvery is the checkpoint cadence in step barriers (0 = every
	// barrier). Elastic runs only.
	CkptEvery int `json:"ckpt_every,omitempty"`
	// MaxRecoveries bounds unplanned epoch recoveries before the run is
	// declared failed (0 = 3; negative = none allowed). Planned
	// rescales are not charged against it.
	MaxRecoveries int `json:"max_recoveries,omitempty"`
}

// Normalized fills the defaulted fields: gups on the gravel model, 4
// nodes, TCP fabric.
func (s Spec) Normalized() Spec {
	if s.App == "" {
		s.App = "gups"
	}
	if s.Model == "" {
		s.Model = "gravel"
	}
	if s.Nodes == 0 {
		s.Nodes = 4
	}
	if s.Fabric == "" {
		s.Fabric = FabricTCP
	}
	return s
}

// Validate rejects a spec that no fabric could run: unknown app, model
// or fabric, a non-positive cluster size, or an unparsable fault
// schedule.
func (s Spec) Validate() error {
	if _, err := harness.LookupApp(s.App); err != nil {
		return err
	}
	if s.Nodes < 1 {
		return fmt.Errorf("noderun: %d nodes", s.Nodes)
	}
	if err := (gravel.Config{Model: s.Model, Nodes: s.Nodes, ResolverShards: s.ResolverShards}).Validate(); err != nil {
		return err
	}
	switch s.Fabric {
	case FabricLocal, FabricTCP, FabricExec:
	default:
		return fmt.Errorf("noderun: unknown fabric %q (have %s, %s, %s)",
			s.Fabric, FabricLocal, FabricTCP, FabricExec)
	}
	if _, err := fault.Parse(s.Faults); err != nil {
		return fmt.Errorf("noderun: faults: %w", err)
	}
	if s.Elastic {
		if s.Fabric == FabricLocal {
			return fmt.Errorf("noderun: elastic runs need a cluster fabric (%s or %s)", FabricTCP, FabricExec)
		}
		a, _ := harness.LookupApp(s.App)
		if a.Elastic == nil {
			return fmt.Errorf("noderun: app %q has no elastic (checkpoint/restore) entry point", s.App)
		}
	}
	return nil
}

// Key is the canonical identity string of a normalized spec — the
// dedup and cache key of the job queue. Every result-relevant field
// participates.
func (s Spec) Key() string {
	s = s.Normalized()
	p := s.Params
	key := fmt.Sprintf("app=%s model=%s nodes=%d fabric=%s scale=%g seed=%d table=%d updates=%d steps=%d verts=%d iters=%d faults=%s wall=%t",
		s.App, s.Model, s.Nodes, s.Fabric,
		p.Scale, p.Seed, p.Table, p.Updates, p.Steps, p.Verts, p.Iters,
		s.Faults, s.WallClock)
	if s.Elastic {
		// Elastic changes execution shape (checkpoints, epoch loop) even
		// though results stay bit-identical; appended only when set so
		// pre-elastic cache keys stay valid.
		key += fmt.Sprintf(" elastic=true ckpt=%d", s.CkptEvery)
	}
	if s.ResolverShards > 1 {
		// Sharded resolution changes modeled time (NetBound is the
		// busiest bank); appended only when sharded so pre-sharding
		// cache keys stay valid.
		key += fmt.Sprintf(" shards=%d", s.ResolverShards)
	}
	return key
}

// WorkerResult is one worker's outcome — the JSON line a gravel-node
// worker process prints (field names are part of that contract).
// LocalSum is the worker shard's additive checksum; TotalSum the
// cluster-wide reduction of it.
type WorkerResult struct {
	Node     int     `json:"node"`
	App      string  `json:"app"`
	Model    string  `json:"model"`
	Summary  string  `json:"summary"`
	LocalSum uint64  `json:"local_sum"`
	TotalSum uint64  `json:"total_sum"`
	Ns       float64 `json:"ns"`
	Sent     int64   `json:"wire_pkts_sent"`
	Recon    int64   `json:"reconnects"`
}

// WorkerStatus is one worker's view inside a RunResult: its result on
// success, its error and captured stderr tail on failure.
type WorkerStatus struct {
	Node   int           `json:"node"`
	Result *WorkerResult `json:"result,omitempty"`
	Err    string        `json:"err,omitempty"`
	Stderr string        `json:"stderr,omitempty"`
}

// RunResult is one completed cluster run. Check is the reduced
// cluster-wide checksum — bit-identical across fabrics for the same
// Spec.
type RunResult struct {
	Spec        Spec           `json:"spec"`
	Check       uint64         `json:"check"`
	Summary     string         `json:"summary"`
	Ns          float64        `json:"ns"`
	WirePackets int64          `json:"wire_pkts_sent"`
	Reconnects  int64          `json:"reconnects"`
	WallNs      int64          `json:"wall_ns"`
	Workers     []WorkerStatus `json:"workers,omitempty"`

	// Epochs is the number of membership epochs the run spanned
	// (elastic runs; 1 = undisturbed, 0 = non-elastic).
	Epochs int `json:"epochs,omitempty"`
	// Recovered counts unplanned recoveries: epochs that ended in a
	// worker loss and were healed from a checkpoint instead of failing
	// the run. Planned rescales are not counted.
	Recovered int `json:"recovered,omitempty"`
	// EpochLog records each epoch of an elastic run in order.
	EpochLog []EpochStat `json:"epoch_log,omitempty"`

	// Stats is the full runtime snapshot, populated on the local fabric
	// (remote fabrics report per-worker wire counters instead).
	Stats *rt.Stats `json:"stats,omitempty"`
}

// EpochStat is one membership epoch of an elastic run.
type EpochStat struct {
	// Gen is the epoch's membership generation.
	Gen uint32 `json:"gen"`
	// Nodes is the epoch's worker count.
	Nodes int `json:"nodes"`
	// WallNs is the epoch's wall-clock duration.
	WallNs int64 `json:"wall_ns"`
	// Outcome is "completed" (the run finished in this epoch),
	// "recovered" (a worker died; the next epoch healed from a
	// checkpoint), or "rescaled" (a planned membership change ended the
	// epoch at a step barrier).
	Outcome string `json:"outcome"`
}

// WorkerError is a worker's failure inside a cluster run, carrying its
// node and the tail of its stderr (the typed transport diagnosis, the
// fault log) for the retry layer and the operator.
type WorkerError struct {
	Node   int
	Stderr string
	Err    error
}

func (e *WorkerError) Error() string {
	return fmt.Sprintf("worker %d: %v", e.Node, e.Err)
}

func (e *WorkerError) Unwrap() error { return e.Err }

// RunLocal executes the spec as a single process on the chan fabric:
// the cheapest execution and the reference every other fabric is
// checked against.
func RunLocal(spec Spec) (*RunResult, error) {
	spec = spec.Normalized()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	a, err := harness.LookupApp(spec.App)
	if err != nil {
		return nil, err
	}
	sys, err := gravel.NewChecked(gravel.Config{Model: spec.Model, Nodes: spec.Nodes, ResolverShards: spec.ResolverShards})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res := a.Run(sys, spec.Params)
	st := sys.Stats()
	sys.Close()
	if res.Err != nil {
		return nil, fmt.Errorf("noderun: local run failed verification: %w", res.Err)
	}
	return &RunResult{
		Spec:        spec,
		Check:       res.Check,
		Summary:     res.Summary,
		Ns:          res.Ns,
		WirePackets: st.Transport.WirePackets,
		WallNs:      time.Since(start).Nanoseconds(),
		Stats:       &st,
	}, nil
}
