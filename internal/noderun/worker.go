// Worker-side lifecycle: host one node of a cluster run. Extracted
// from cmd/gravel-node so a worker is a callable API — gravel-node's
// -node mode, the goroutine fabric, and the env-re-exec child process
// all funnel through RunWorker.
package noderun

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"gravel"
	"gravel/internal/core"
	"gravel/internal/harness"
	"gravel/internal/transport"
	"gravel/internal/transport/fault"
)

// WorkerConfig is one worker's identity within a cluster run plus the
// host binary's hooks into it.
type WorkerConfig struct {
	// Node is the node this worker hosts, in [0, Spec.Nodes).
	Node int
	// Coord is the rendezvous coordinator's address.
	Coord string
	// Listen is the worker's transport listen address (default
	// 127.0.0.1:0).
	Listen string
	// Spec is the run this worker takes part in. Fabric is ignored: a
	// worker always joins over the TCP transport.
	Spec Spec
	// Gen is the membership generation this worker belongs to (elastic
	// runs; 0 = unstamped fixed membership). Stamped on every
	// coordinator RPC and peer handshake — a stale-generation worker is
	// rejected with a typed error instead of polluting the new epoch.
	Gen uint32

	// OnSystem, if non-nil, observes the constructed runtime before the
	// shard runs — gravel-node wires /healthz and /metrics here.
	OnSystem func(sys gravel.System, tcp *transport.TCP)
	// Diag, if non-nil, receives the failure-time diagnostic dump
	// (per-destination wire statistics, injected-fault log).
	Diag io.Writer
}

// RunWorker hosts one node: it joins the cluster through the
// coordinator, runs the selected application's shard on the selected
// model, folds the local result into the cluster-wide reduction, and
// returns both. On a fatal transport error (a peer or the coordinator
// declared down, surfaced as a typed error from the runtime) it dumps
// diagnostics to cfg.Diag and returns the error; the transport is
// killed, not closed — a graceful drain toward a dead peer would stall
// past the failure detector's own bound.
func RunWorker(cfg WorkerConfig) (res WorkerResult, err error) {
	spec := cfg.Spec.Normalized()
	if cfg.Coord == "" {
		return res, fmt.Errorf("noderun: worker needs a coordinator address")
	}
	if cfg.Node < 0 || cfg.Node >= spec.Nodes {
		return res, fmt.Errorf("noderun: node %d out of range for %d nodes", cfg.Node, spec.Nodes)
	}
	a, err := harness.LookupApp(spec.App)
	if err != nil {
		return res, err
	}
	fcfg, err := fault.Parse(spec.Faults)
	if err != nil {
		return res, fmt.Errorf("noderun: faults: %w", err)
	}
	listen := cfg.Listen
	if listen == "" {
		listen = "127.0.0.1:0"
	}
	var (
		sys gravel.System
		tcp *transport.TCP
	)
	// Transport failures (and misconfigurations) surface as panics on
	// the Step goroutine carrying typed errors (transport.PeerDownError,
	// transport.CoordDownError). Recover them into a diagnosed return.
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				err = e
			} else {
				err = fmt.Errorf("%v", r)
			}
		}
		if err != nil {
			if cfg.Diag != nil {
				dumpDiagnostics(cfg.Diag, cfg.Node, sys, tcp)
			}
			if tcp != nil {
				tcp.Kill()
			}
		} else if sys != nil {
			sys.Close()
		}
	}()
	sys, err = gravel.NewChecked(gravel.Config{
		Model:          spec.Model,
		Nodes:          spec.Nodes,
		ResolverShards: spec.ResolverShards,
		Transport:      "tcp",
		Faults:         fcfg,
		TransportOpts: gravel.TransportOptions{
			Self:                cfg.Node,
			Listen:              listen,
			Coord:               cfg.Coord,
			WallClock:           spec.WallClock,
			SuspectTimeout:      spec.Suspect,
			HeartbeatInterval:   spec.Heartbeat,
			CoordDialTimeout:    spec.CoordTimeout,
			CoordDialBackoff:    spec.CoordBackoff,
			CoordDialBackoffMax: spec.CoordBackoffMax,
			CoordRPCTimeout:     spec.CoordRPCTimeout,
			Generation:          cfg.Gen,
		},
	})
	if err != nil {
		return res, err
	}
	var ok bool
	tcp, ok = sys.(interface{ Fabric() core.Fabric }).Fabric().(*transport.TCP)
	if !ok {
		return res, fmt.Errorf("noderun: fabric is not the TCP transport")
	}
	if cfg.OnSystem != nil {
		cfg.OnSystem(sys, tcp)
	}

	// The shard's superstep collectives (frontier emptiness, k-means
	// accumulators, team reductions) ride the coordinator's keyed
	// reduction through the transport's Collectives surface.
	coll := tcp.Collectives()
	var shard harness.Result
	resharded := false
	if spec.Elastic && a.Elastic != nil {
		ck := harness.CkptRun{
			Every: spec.CkptEvery,
			Save:  tcp.SaveCheckpoint,
		}
		rp, found, ferr := tcp.FetchCheckpoint()
		if ferr != nil {
			return res, ferr
		}
		if found {
			if rp.Nodes != spec.Nodes && !a.Reshardable {
				return res, fmt.Errorf("noderun: app %q cannot restore a %d-node checkpoint on %d nodes", spec.App, rp.Nodes, spec.Nodes)
			}
			resharded = rp.Nodes != spec.Nodes
			ck.Resume = &harness.Checkpoint{Step: rp.Step, Nodes: rp.Nodes, Shards: rp.Shards}
		}
		shard = a.Elastic(sys, cfg.Node, spec.Params, coll, ck)
		if shard.Err != nil {
			return res, shard.Err
		}
	} else {
		shard = a.Shard(sys, cfg.Node, spec.Params, coll)
	}

	total, err := tcp.Reduce(spec.App+":sum", shard.Check)
	if err != nil {
		return res, err
	}
	// A restore that crossed node counts invalidates per-node-count
	// expectations (VerifyTotal derives them from the *current* count);
	// the launcher still cross-checks shard agreement and additivity.
	if a.VerifyTotal != nil && !resharded {
		if err := a.VerifyTotal(total, spec.Params, spec.Nodes); err != nil {
			return res, err
		}
	}
	stats := sys.NetStats()
	var pkts int64
	for _, d := range stats.PerDest {
		pkts += d.Packets
	}
	return WorkerResult{
		Node:     cfg.Node,
		App:      spec.App,
		Model:    spec.Model,
		Summary:  shard.Summary,
		LocalSum: shard.Check,
		TotalSum: total,
		Ns:       shard.Ns,
		Sent:     pkts,
		Recon:    stats.Reconnects,
	}, nil
}

// dumpDiagnostics writes the failure-time picture: per-dest wire
// statistics and, when fault injection is on, the injected-fault
// counters and log tail — everything needed to replay and localize a
// failed run from its seed.
func dumpDiagnostics(w io.Writer, node int, sys gravel.System, tcp *transport.TCP) {
	fmt.Fprintf(w, "gravel-node: diagnostic dump (node %d)\n", node)
	if sys != nil {
		s := sys.NetStats()
		fmt.Fprintf(w, "  wire: %d pkts, %d bytes; reconnects=%d retries=%d malformed=%d corrupt=%d\n",
			s.WirePackets, s.WireBytes, s.Reconnects, s.Retries, s.Malformed, s.CorruptFrames)
		for d, pd := range s.PerDest {
			if pd.Packets > 0 {
				fmt.Fprintf(w, "  -> node %d: %d pkts, %d bytes\n", d, pd.Packets, pd.Bytes)
			}
		}
	}
	if tcp == nil {
		return
	}
	if err := tcp.Err(); err != nil {
		fmt.Fprintf(w, "  transport error: %v\n", err)
	}
	if inj := tcp.FaultInjector(); inj.Enabled() {
		fmt.Fprintf(w, "  faults injected: %s (seed %d)\n", inj.Counters(), inj.Config().Seed)
		for _, e := range inj.Log() {
			fmt.Fprintf(w, "    %s\n", e)
		}
	}
}

// WorkerEnv is the environment variable a FabricExec launcher sets on
// forked children: the worker's identity as JSON. Any binary that may
// serve as a worker host (gravel-node, gravel-server, test binaries)
// calls MaybeWorkerMain first thing in main.
const WorkerEnv = "GRAVEL_NODERUN_WORKER"

// workerEnvDoc is the JSON carried by WorkerEnv.
type workerEnvDoc struct {
	Node  int    `json:"node"`
	Coord string `json:"coord"`
	Spec  Spec   `json:"spec"`
	Gen   uint32 `json:"gen,omitempty"`
}

// MaybeWorkerMain turns the current process into a cluster worker if
// WorkerEnv is set: it runs the node named there, prints the
// WorkerResult JSON line on stdout, and exits — it does not return.
// With WorkerEnv unset it is a no-op, so hosting binaries call it
// unconditionally before flag parsing.
func MaybeWorkerMain() {
	v := os.Getenv(WorkerEnv)
	if v == "" {
		return
	}
	var doc workerEnvDoc
	if err := json.Unmarshal([]byte(v), &doc); err != nil {
		fmt.Fprintf(os.Stderr, "noderun worker: bad %s: %v\n", WorkerEnv, err)
		os.Exit(2)
	}
	res, err := RunWorker(WorkerConfig{
		Node:  doc.Node,
		Coord: doc.Coord,
		Spec:  doc.Spec,
		Gen:   doc.Gen,
		Diag:  os.Stderr,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "noderun worker %d: %v\n", doc.Node, err)
		os.Exit(1)
	}
	if err := json.NewEncoder(os.Stdout).Encode(res); err != nil {
		fmt.Fprintf(os.Stderr, "noderun worker %d: %v\n", doc.Node, err)
		os.Exit(1)
	}
	os.Exit(0)
}
