package noderun_test

import (
	"context"
	"errors"
	"os"
	"strings"
	"testing"
	"time"

	"gravel/internal/noderun"
)

// TestMain lets the launcher's FabricExec re-exec this test binary as
// a cluster worker: with WorkerEnv set the process runs one node and
// exits before any test runs.
func TestMain(m *testing.M) {
	noderun.MaybeWorkerMain()
	os.Exit(m.Run())
}

func spec(fabric string) noderun.Spec {
	s := noderun.Spec{App: "gups", Model: "gravel", Nodes: 3, Fabric: fabric}
	s.Params.Scale = 0.02
	return s
}

// Every fabric must produce the same checksum for the same spec: the
// local chan fabric, worker goroutines over real TCP, and forked
// worker processes.
func TestFabricsAgree(t *testing.T) {
	ref, err := noderun.RunLocal(spec(noderun.FabricLocal))
	if err != nil {
		t.Fatal(err)
	}
	if ref.Check == 0 {
		t.Fatal("local run produced a zero checksum")
	}
	var l noderun.Launcher
	for _, fabric := range []string{noderun.FabricTCP, noderun.FabricExec} {
		fabric := fabric
		t.Run(fabric, func(t *testing.T) {
			res, err := l.Run(context.Background(), spec(fabric))
			if err != nil {
				t.Fatal(err)
			}
			if res.Check != ref.Check {
				t.Fatalf("fabric %s checksum = %d, local = %d", fabric, res.Check, ref.Check)
			}
			if len(res.Workers) != 3 {
				t.Fatalf("got %d worker statuses, want 3", len(res.Workers))
			}
			if res.WirePackets == 0 {
				t.Fatalf("fabric %s sent no wire packets", fabric)
			}
		})
	}
}

// A SIGKILLed worker must surface as a typed WorkerError carrying the
// survivors' diagnoses, not a hang or a silent success.
func TestExecKillWorkerDiagnosed(t *testing.T) {
	s := spec(noderun.FabricExec)
	s.Params.Steps = 20
	s.Suspect = time.Second
	s.Heartbeat = 250 * time.Millisecond
	s.CoordTimeout = 5 * time.Second
	s.CoordRPCTimeout = 2 * time.Second
	l := noderun.Launcher{
		Hooks: noderun.Hooks{
			WorkerStarted: func(node int, kill func()) {
				if node == 1 {
					go func() {
						time.Sleep(300 * time.Millisecond)
						kill()
					}()
				}
			},
		},
	}
	res, err := l.Run(context.Background(), s)
	if err == nil {
		// The run can legitimately beat the kill; then it must be correct.
		if want := refWithSteps(t, s).Check; res.Check != want {
			t.Fatalf("run beat the kill but checksum = %d, want %d", res.Check, want)
		}
		return
	}
	var we *noderun.WorkerError
	if !errors.As(err, &we) {
		t.Fatalf("error is %T (%v), want *WorkerError", err, err)
	}
	if res == nil {
		t.Fatal("failed run returned no RunResult for diagnosis")
	}
}

func refWithSteps(t *testing.T, s noderun.Spec) *noderun.RunResult {
	t.Helper()
	s.Fabric = noderun.FabricLocal
	s.Elastic = false
	s.Suspect, s.Heartbeat, s.CoordTimeout, s.CoordRPCTimeout = 0, 0, 0, 0
	ref, err := noderun.RunLocal(s)
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

// Canceling the context must unwind a TCP-fabric run with an error
// within the failure detector's bound instead of hanging.
func TestTCPCancelUnwinds(t *testing.T) {
	s := spec(noderun.FabricTCP)
	s.Params.Steps = 50
	s.Suspect = time.Second
	s.Heartbeat = 250 * time.Millisecond
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(200 * time.Millisecond)
		cancel()
	}()
	var l noderun.Launcher
	done := make(chan error, 1)
	go func() {
		_, err := l.Run(ctx, s)
		done <- err
	}()
	select {
	case <-done:
		// Error or clean finish (the run may beat the cancel) — either
		// way it unwound.
	case <-time.After(30 * time.Second):
		t.Fatal("canceled run did not unwind within 30s")
	}
}

func TestSpecKeyAndValidate(t *testing.T) {
	a := spec(noderun.FabricTCP)
	b := a
	if a.Key() != b.Key() {
		t.Fatal("identical specs disagree on Key")
	}
	b.Params.Seed = 99
	if a.Key() == b.Key() {
		t.Fatal("different seeds share a Key")
	}
	c := a
	c.Fabric = noderun.FabricLocal
	if a.Key() == c.Key() {
		t.Fatal("different fabrics share a Key")
	}
	if (noderun.Spec{}).Normalized().Key() == "" {
		t.Fatal("empty spec has no key")
	}

	bad := a
	bad.App = "no-such-app"
	if bad.Validate() == nil {
		t.Fatal("unknown app validated")
	}
	bad = a
	bad.Fabric = "carrier-pigeon"
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "fabric") {
		t.Fatalf("unknown fabric validated: %v", err)
	}
	bad = a
	bad.Faults = "drop=notanumber"
	if bad.Validate() == nil {
		t.Fatal("unparsable fault schedule validated")
	}
}
