package noderun_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"gravel/internal/noderun"
	"gravel/internal/obs"
)

// elasticSpec is the shared shape of the recovery tests: a real TCP
// cluster with a tight failure detector and per-barrier checkpoints.
func elasticSpec(app string, nodes int) noderun.Spec {
	s := noderun.Spec{App: app, Model: "gravel", Nodes: nodes, Fabric: noderun.FabricTCP, Elastic: true}
	s.Params.Scale = 0.02
	s.Suspect = time.Second
	s.Heartbeat = 100 * time.Millisecond
	s.CoordTimeout = 5 * time.Second
	s.CoordRPCTimeout = 2 * time.Second
	return s
}

// TestElasticRecoveryBitIdentical is the pinned chaos-recovery check:
// a worker is killed mid-run, after the cluster has completed at least
// one full checkpoint cut; the launcher must heal the run by starting
// a new generation restored from that checkpoint, and the healed run's
// reduced checksum must be bit-identical to the undisturbed local
// reference.
func TestElasticRecoveryBitIdentical(t *testing.T) {
	s := elasticSpec("gups", 3)
	s.Params.Steps = 20

	ref := refWithSteps(t, s)

	rec := obs.Start(obs.Options{})
	defer obs.Stop()

	// Kill node 1's first-epoch transport as soon as every worker has
	// saved its shard for some step — a complete cut exists, so the
	// recovery must restore (not cold-start) and still finish 19-ish of
	// the 20 steps.
	var killMu sync.Mutex
	var killGen1 func()
	killed := false
	l := noderun.Launcher{
		Hooks: noderun.Hooks{
			WorkerStarted: func(node int, kill func()) {
				killMu.Lock()
				defer killMu.Unlock()
				if node == 1 && killGen1 == nil {
					killGen1 = kill
				}
			},
		},
	}
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-time.After(200 * time.Microsecond):
			}
			if rec.Count(obs.KCheckpoint) >= int64(s.Nodes) {
				killMu.Lock()
				if killGen1 != nil && !killed {
					killed = true
					killGen1()
				}
				killMu.Unlock()
				return
			}
		}
	}()

	res, err := l.Run(context.Background(), s)
	if err != nil {
		t.Fatalf("elastic run did not heal: %v", err)
	}
	if res.Check != ref.Check {
		t.Fatalf("healed checksum = %d, undisturbed reference = %d", res.Check, ref.Check)
	}
	if res.Recovered < 1 {
		t.Fatalf("run recorded %d recoveries, want >= 1 (kill fired: %v)", res.Recovered, killed)
	}
	if res.Epochs != len(res.EpochLog) || res.Epochs < 2 {
		t.Fatalf("epochs = %d, epoch log = %v", res.Epochs, res.EpochLog)
	}
	last := res.EpochLog[len(res.EpochLog)-1]
	if last.Outcome != "completed" {
		t.Fatalf("final epoch outcome = %q, want completed", last.Outcome)
	}
	for i, e := range res.EpochLog[:len(res.EpochLog)-1] {
		if e.Outcome != "recovered" {
			t.Fatalf("epoch %d outcome = %q, want recovered", i, e.Outcome)
		}
		if res.EpochLog[i+1].Gen <= e.Gen {
			t.Fatalf("generations did not increase: %v", res.EpochLog)
		}
	}
	if rec.Count(obs.KRestore) < 1 {
		t.Fatal("no restore events: the healed epoch cold-started despite a complete checkpoint")
	}
}

// TestElasticRescaleScaleOut drives a planned 2 -> 4 scale-out of a
// pagerank run mid-flight: the first epoch is asked to rescale once a
// complete checkpoint cut exists, the second epoch re-shards the saved
// ranks over 4 workers, and the final reduced FixedSum must equal the
// undisturbed reference (pagerank's reduction is partition-invariant).
func TestElasticRescaleScaleOut(t *testing.T) {
	s := elasticSpec("pagerank", 2)
	s.Params.Verts = 512
	s.Params.Iters = 10

	ref := refWithSteps(t, s)

	rec := obs.Start(obs.Options{})
	defer obs.Stop()

	var once sync.Once
	l := noderun.Launcher{
		Hooks: noderun.Hooks{
			EpochStarted: func(gen uint32, nodes int, rescale func(int)) {
				if nodes != 2 {
					return
				}
				go func() {
					for rec.Count(obs.KCheckpoint) < 2 {
						time.Sleep(200 * time.Microsecond)
					}
					once.Do(func() { rescale(4) })
				}()
			},
		},
	}
	res, err := l.Run(context.Background(), s)
	if err != nil {
		t.Fatalf("scale-out run failed: %v", err)
	}
	if res.Check != ref.Check {
		t.Fatalf("scaled-out checksum = %d, undisturbed reference = %d", res.Check, ref.Check)
	}
	if res.Recovered != 0 {
		t.Fatalf("planned rescale was charged as %d recoveries", res.Recovered)
	}
	if len(res.EpochLog) != 2 {
		t.Fatalf("epoch log = %+v, want exactly 2 epochs", res.EpochLog)
	}
	if res.EpochLog[0].Outcome != "rescaled" || res.EpochLog[0].Nodes != 2 {
		t.Fatalf("first epoch = %+v, want a rescaled 2-node epoch", res.EpochLog[0])
	}
	if res.EpochLog[1].Outcome != "completed" || res.EpochLog[1].Nodes != 4 {
		t.Fatalf("second epoch = %+v, want a completed 4-node epoch", res.EpochLog[1])
	}
	if len(res.Workers) != 4 {
		t.Fatalf("final epoch reported %d workers, want 4", len(res.Workers))
	}
}

// TestElasticUndisturbedMatchesPlain verifies the elastic entry points
// are bit-identical to the plain shard path when nothing goes wrong,
// for every app that has one.
func TestElasticUndisturbedMatchesPlain(t *testing.T) {
	for _, app := range []string{"gups", "pagerank", "kmeans", "bfs-dir", "histogram"} {
		app := app
		t.Run(app, func(t *testing.T) {
			s := elasticSpec(app, 2)
			s.Params.Steps = 4
			s.Params.Iters = 3
			ref := refWithSteps(t, s)
			var l noderun.Launcher
			res, err := l.Run(context.Background(), s)
			if err != nil {
				t.Fatal(err)
			}
			if res.Check != ref.Check {
				t.Fatalf("elastic checksum = %d, plain local = %d", res.Check, ref.Check)
			}
			if res.Epochs != 1 || res.Recovered != 0 {
				t.Fatalf("undisturbed run reported epochs=%d recovered=%d", res.Epochs, res.Recovered)
			}
		})
	}
}

// TestElasticValidate pins the spec-level rules: elastic needs a
// cluster fabric and an app with an Elastic entry point.
func TestElasticValidate(t *testing.T) {
	s := elasticSpec("gups", 2)
	s.Fabric = noderun.FabricLocal
	if s.Validate() == nil {
		t.Fatal("elastic validated on the local fabric")
	}
	s = elasticSpec("sssp-1", 2)
	if s.Validate() == nil {
		t.Fatal("elastic validated for an app with no elastic entry point")
	}
	a := elasticSpec("gups", 2)
	b := a
	b.Elastic = false
	if a.Key() == b.Key() {
		t.Fatal("elastic and non-elastic specs share a Key")
	}
	b = a
	b.CkptEvery = 5
	if a.Key() == b.Key() {
		t.Fatal("different checkpoint cadences share a Key")
	}
}
