// Launcher-side lifecycle: realize a Spec as a running cluster —
// coordinator up, one worker per node, results collected and
// cross-checked. Extracted from cmd/gravel-node's smoke/chaos modes so
// gravel-server (and tests) can launch the same clusters through a Go
// API.
package noderun

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"sync"
	"sync/atomic"
	"time"

	"gravel"
	"gravel/internal/obs"
	"gravel/internal/transport"
)

// Coord is an in-process rendezvous coordinator bound to a live
// listener. Its listener closes itself once every worker has said
// goodbye.
type Coord struct {
	c  *transport.Coordinator
	ln net.Listener
}

// StartCoordinator listens on 127.0.0.1 and serves a rendezvous
// coordinator for a cluster of the given size.
func StartCoordinator(nodes int) (*Coord, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	c := transport.NewCoordinator(nodes)
	go c.Serve(ln)
	go func() {
		<-c.Done()
		ln.Close()
	}()
	return &Coord{c: c, ln: ln}, nil
}

// Addr is the coordinator's dialable address.
func (c *Coord) Addr() string { return c.ln.Addr().String() }

// Generation is the coordinator's current membership generation.
func (c *Coord) Generation() uint32 { return c.c.Generation() }

// BeginEpoch starts the next membership epoch with the given worker
// count, freezing the newest complete checkpoint as the epoch's
// restore point, and returns the new generation.
func (c *Coord) BeginEpoch(nodes int) uint32 { return c.c.BeginEpoch(nodes) }

// Rescale asks the running epoch to unwind at its next step barrier so
// the cluster can re-form with the given worker count.
func (c *Coord) Rescale(nodes int) uint32 { return c.c.Rescale(nodes) }

// Stop closes the listener: no new connections.
func (c *Coord) Stop() { c.ln.Close() }

// Kill stops the listener and severs every established coordinator
// connection — the chaos harness's coordinator-failure injection.
func (c *Coord) Kill() {
	c.ln.Close()
	c.c.Kill()
}

// Hooks observe a launched cluster while it runs. The chaos harness
// and the retry tests use them to kill pieces mid-run.
type Hooks struct {
	// CoordStarted fires once the rendezvous coordinator is serving.
	CoordStarted func(c *Coord)
	// WorkerStarted fires per launched worker with a kill switch:
	// SIGKILL for FabricExec workers, a transport kill for FabricTCP
	// worker goroutines. In an elastic run it fires again for every
	// relaunch of the node in a later epoch.
	WorkerStarted func(node int, kill func())
	// EpochStarted fires as each elastic epoch's workers launch, with
	// the epoch's generation and node count plus a rescale trigger:
	// calling rescale(n) asks the cluster to unwind at the next step
	// barrier and re-form with n workers (a planned epoch change, not
	// charged against the recovery budget).
	EpochStarted func(gen uint32, nodes int, rescale func(newNodes int))
}

// Launcher runs cluster Specs. The zero value is ready to use: exec
// workers re-exec the current binary (which must call MaybeWorkerMain
// at the top of main).
type Launcher struct {
	// Exe is the worker binary for FabricExec (default: this
	// executable).
	Exe string
	// Stderr capped per worker in RunResult (default 4 KiB).
	StderrCap int
	Hooks     Hooks
}

// Runner is anything that can execute a cluster run; the job-queue
// worker pool schedules onto one.
type Runner interface {
	Run(ctx context.Context, spec Spec) (*RunResult, error)
}

// Run executes the spec to completion on its fabric. The RunResult is
// non-nil whenever the cluster launched, even if workers failed — the
// per-worker statuses carry the diagnosis; the returned error is then
// the first *WorkerError.
func (l *Launcher) Run(ctx context.Context, spec Spec) (*RunResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	spec = spec.Normalized()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Elastic {
		return l.runElastic(ctx, spec)
	}
	switch spec.Fabric {
	case FabricLocal:
		return RunLocal(spec)
	case FabricTCP:
		return l.runGoroutines(ctx, spec)
	default:
		return l.runExec(ctx, spec)
	}
}

// workerOutcome is the collection slot both fabrics fill per node.
type workerOutcome struct {
	res    WorkerResult
	err    error
	stderr string
}

// runExec forks one OS process per node, each re-execing the worker
// binary with the spec in WorkerEnv, and harvests their JSON result
// lines.
func (l *Launcher) runExec(ctx context.Context, spec Spec) (*RunResult, error) {
	exe, err := l.exe()
	if err != nil {
		return nil, err
	}
	coord, err := StartCoordinator(spec.Nodes)
	if err != nil {
		return nil, err
	}
	defer coord.Stop()
	if l.Hooks.CoordStarted != nil {
		l.Hooks.CoordStarted(coord)
	}
	start := time.Now()
	out, err := l.execEpoch(ctx, exe, spec, coord.Addr(), 0)
	if err != nil {
		return nil, err
	}
	return assemble(spec, out, time.Since(start))
}

// execEpoch launches one gang of OS-process workers (one per
// spec.Nodes, stamped with gen) and waits for all of them.
func (l *Launcher) execEpoch(ctx context.Context, exe string, spec Spec, coordAddr string, gen uint32) ([]workerOutcome, error) {
	out := make([]workerOutcome, spec.Nodes)
	var wg sync.WaitGroup
	for i := 0; i < spec.Nodes; i++ {
		env, err := json.Marshal(workerEnvDoc{Node: i, Coord: coordAddr, Spec: spec, Gen: gen})
		if err != nil {
			return nil, err
		}
		cmd := exec.CommandContext(ctx, exe)
		cmd.Env = append(os.Environ(), WorkerEnv+"="+string(env))
		var stdout, stderr bytes.Buffer
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		if err := cmd.Start(); err != nil {
			return nil, fmt.Errorf("noderun: worker %d: %w", i, err)
		}
		if l.Hooks.WorkerStarted != nil {
			proc := cmd.Process
			l.Hooks.WorkerStarted(i, func() { proc.Kill() })
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := cmd.Wait()
			out[i].stderr = tail(stderr.Bytes(), l.stderrCap())
			if err != nil {
				out[i].err = err
				return
			}
			if jerr := json.Unmarshal(stdout.Bytes(), &out[i].res); jerr != nil {
				out[i].err = fmt.Errorf("bad worker output %q: %w", stdout.String(), jerr)
			}
		}(i)
	}
	wg.Wait()
	return out, nil
}

// runGoroutines hosts every worker as a goroutine in this process,
// joined over the real TCP transport.
func (l *Launcher) runGoroutines(ctx context.Context, spec Spec) (*RunResult, error) {
	coord, err := StartCoordinator(spec.Nodes)
	if err != nil {
		return nil, err
	}
	defer coord.Stop()
	if l.Hooks.CoordStarted != nil {
		l.Hooks.CoordStarted(coord)
	}
	start := time.Now()
	out := l.tcpEpoch(ctx, spec, coord.Addr(), 0)
	return assemble(spec, out, time.Since(start))
}

// tcpEpoch launches one gang of worker goroutines (one per spec.Nodes,
// stamped with gen) over the real TCP transport and waits for all of
// them. A context cancellation kills every worker's transport,
// unwinding their Step goroutines with typed errors within the
// detector bound.
func (l *Launcher) tcpEpoch(ctx context.Context, spec Spec, coordAddr string, gen uint32) []workerOutcome {
	out := make([]workerOutcome, spec.Nodes)
	killers := make([]*killer, spec.Nodes)
	var wg sync.WaitGroup
	for i := 0; i < spec.Nodes; i++ {
		k := &killer{}
		killers[i] = k
		if l.Hooks.WorkerStarted != nil {
			l.Hooks.WorkerStarted(i, k.kill)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var diag bytes.Buffer
			res, err := RunWorker(WorkerConfig{
				Node:  i,
				Coord: coordAddr,
				Spec:  spec,
				Gen:   gen,
				Diag:  &diag,
				OnSystem: func(_ gravel.System, tcp *transport.TCP) {
					k.bind(func() { tcp.Kill() })
				},
			})
			out[i] = workerOutcome{res: res, err: err, stderr: tail(diag.Bytes(), l.stderrCap())}
		}(i)
	}
	stop := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			for _, k := range killers {
				k.kill()
			}
		case <-stop:
		}
	}()
	wg.Wait()
	close(stop)
	return out
}

func (l *Launcher) exe() (string, error) {
	if l.Exe != "" {
		return l.Exe, nil
	}
	return os.Executable()
}

// runElastic executes an elastic run as a sequence of membership
// epochs. Each epoch launches a full gang of generation-stamped
// workers; within an epoch, workers checkpoint their shards to the
// coordinator at step barriers. When an epoch ends early — a worker
// died (the gang unwinds with typed transport errors) or a planned
// rescale was requested — the launcher begins a new epoch: the
// coordinator freezes the newest *complete* checkpoint as the restore
// point, bumps the generation (so stragglers of the dead epoch are
// rejected with typed StaleGenerationErrors rather than polluting the
// new one), and a fresh gang restores and continues. Determinism of
// the apps makes the healed run's reduced checksum bit-identical to an
// undisturbed run's.
func (l *Launcher) runElastic(ctx context.Context, spec Spec) (*RunResult, error) {
	var exe string
	if spec.Fabric == FabricExec {
		var err error
		if exe, err = l.exe(); err != nil {
			return nil, err
		}
	}
	coord, err := StartCoordinator(spec.Nodes)
	if err != nil {
		return nil, err
	}
	defer coord.Stop()
	if l.Hooks.CoordStarted != nil {
		l.Hooks.CoordStarted(coord)
	}

	maxRec := spec.MaxRecoveries
	if maxRec == 0 {
		maxRec = 3
	} else if maxRec < 0 {
		maxRec = 0
	}

	// The launcher owns rescale intent: when an epoch unwinds after
	// wantNodes was set, the unwind is the planned membership change,
	// not a failure — no error-sniffing of worker exits needed.
	var wantNodes atomic.Int64

	start := time.Now()
	var epochLog []EpochStat
	recovered := 0
	nodes := spec.Nodes
	for {
		gen := coord.Generation()
		espec := spec
		espec.Nodes = nodes
		if l.Hooks.EpochStarted != nil {
			l.Hooks.EpochStarted(gen, nodes, func(n int) {
				if n > 0 {
					wantNodes.Store(int64(n))
					coord.Rescale(n)
				}
			})
		}
		epochStart := time.Now()
		var out []workerOutcome
		if spec.Fabric == FabricExec {
			if out, err = l.execEpoch(ctx, exe, espec, coord.Addr(), gen); err != nil {
				return nil, err
			}
		} else {
			out = l.tcpEpoch(ctx, espec, coord.Addr(), gen)
		}
		stat := EpochStat{Gen: gen, Nodes: nodes, WallNs: time.Since(epochStart).Nanoseconds()}

		if !anyFailed(out) {
			stat.Outcome = "completed"
			epochLog = append(epochLog, stat)
			res, err := assemble(espec, out, time.Since(start))
			if res != nil {
				res.Spec = spec
				res.Epochs = len(epochLog)
				res.Recovered = recovered
				res.EpochLog = epochLog
			}
			if err == nil && recovered > 0 && obs.Enabled() {
				obs.Emit(obs.KRecover, -1, int64(gen), int64(len(epochLog)), "")
			}
			return res, err
		}
		if ctx.Err() != nil {
			res, _ := assemble(espec, out, time.Since(start))
			if res != nil {
				res.Spec = spec
				res.Epochs = len(epochLog) + 1
				res.Recovered = recovered
				res.EpochLog = epochLog
			}
			return res, ctx.Err()
		}

		if want := int(wantNodes.Swap(0)); want > 0 {
			// Planned rescale: the epoch unwound at a step barrier with
			// typed RescaleErrors. Re-form at the new size.
			nodes = want
			stat.Outcome = "rescaled"
			epochLog = append(epochLog, stat)
			newGen := coord.BeginEpoch(nodes)
			if obs.Enabled() {
				obs.Emit(obs.KEpoch, -1, int64(newGen), int64(nodes), "rescale")
			}
			continue
		}

		// Unplanned loss: a worker died mid-step and the surviving gang
		// unwound with typed errors. Heal from the latest complete
		// checkpoint unless the recovery budget is spent.
		recovered++
		if recovered > maxRec {
			res, aerr := assemble(espec, out, time.Since(start))
			if res != nil {
				res.Spec = spec
				res.Epochs = len(epochLog) + 1
				res.Recovered = recovered - 1
				res.EpochLog = append(epochLog, stat)
			}
			if aerr == nil {
				aerr = fmt.Errorf("noderun: elastic run failed after %d recoveries", recovered-1)
			}
			return res, fmt.Errorf("noderun: recovery budget exhausted (%d): %w", maxRec, aerr)
		}
		stat.Outcome = "recovered"
		epochLog = append(epochLog, stat)
		newGen := coord.BeginEpoch(nodes)
		if obs.Enabled() {
			obs.Emit(obs.KEpoch, -1, int64(newGen), int64(nodes), "recover")
		}
	}
}

// anyFailed reports whether any worker of an epoch failed.
func anyFailed(out []workerOutcome) bool {
	for i := range out {
		if out[i].err != nil {
			return true
		}
	}
	return false
}

func (l *Launcher) stderrCap() int {
	if l.StderrCap > 0 {
		return l.StderrCap
	}
	return 4096
}

func tail(b []byte, n int) string {
	if len(b) > n {
		b = b[len(b)-n:]
	}
	return string(b)
}

// killer is a kill switch that may be pulled before its target exists:
// binding a target after the switch was pulled fires immediately.
type killer struct {
	mu     sync.Mutex
	fn     func()
	killed bool
}

func (k *killer) kill() {
	k.mu.Lock()
	k.killed = true
	fn := k.fn
	k.mu.Unlock()
	if fn != nil {
		fn()
	}
}

func (k *killer) bind(fn func()) {
	k.mu.Lock()
	k.fn = fn
	killed := k.killed
	k.mu.Unlock()
	if killed {
		fn()
	}
}

// assemble cross-checks the collected worker outcomes and folds them
// into one RunResult: every finished worker must report the same
// reduced sum, and when all finished their local sums must add to it.
func assemble(spec Spec, out []workerOutcome, wall time.Duration) (*RunResult, error) {
	res := &RunResult{Spec: spec, WallNs: wall.Nanoseconds()}
	var firstErr error
	var localTotal uint64
	succeeded := 0
	for i := range out {
		o := &out[i]
		ws := WorkerStatus{Node: i}
		if o.err != nil {
			ws.Err = o.err.Error()
			ws.Stderr = o.stderr
			if firstErr == nil {
				firstErr = &WorkerError{Node: i, Stderr: o.stderr, Err: o.err}
			}
		} else {
			r := o.res
			ws.Result = &r
			localTotal += r.LocalSum
			res.WirePackets += r.Sent
			res.Reconnects += r.Recon
			if r.Ns > res.Ns {
				res.Ns = r.Ns
			}
			if succeeded == 0 {
				res.Check = r.TotalSum
				res.Summary = r.Summary
			} else if r.TotalSum != res.Check {
				return res, fmt.Errorf("noderun: workers disagree on the reduced sum: %d vs %d", r.TotalSum, res.Check)
			}
			succeeded++
		}
		res.Workers = append(res.Workers, ws)
	}
	if firstErr != nil {
		return res, firstErr
	}
	if succeeded == len(out) && localTotal != res.Check {
		return res, fmt.Errorf("noderun: local sums add to %d, reduced sum is %d", localTotal, res.Check)
	}
	return res, nil
}
