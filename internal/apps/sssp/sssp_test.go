package sssp_test

import (
	"testing"

	"gravel/internal/apps/sssp"
	"gravel/internal/core"
	"gravel/internal/graph"
)

func TestSSSPMatchesReference(t *testing.T) {
	g := graph.Random(500, 6, 11)
	want := sssp.ChecksumDists(sssp.Reference(g, 0))
	for _, nodes := range []int{1, 2, 4} {
		cl := core.New(core.Config{Nodes: nodes})
		res := sssp.Run(cl, sssp.Config{G: g, Source: 0})
		cl.Close()
		if res.Checksum != want {
			t.Errorf("nodes=%d: distance checksum mismatch", nodes)
		}
		if res.Reached < int64(g.N)/2 {
			t.Errorf("nodes=%d: only %d reached", nodes, res.Reached)
		}
	}
}

func TestSSSPPathGraph(t *testing.T) {
	// On an unweighted-ish path the distances are fully predictable.
	g := graph.Path(64)
	g.EnsureWeights()
	ref := sssp.Reference(g, 0)
	var want uint64
	for v := 1; v < 64; v++ {
		want += uint64(g.W[g.Off[v-1]+boolIdx(g.Adj[g.Off[v-1]] != uint32(v))])
		_ = want
	}
	cl := core.New(core.Config{Nodes: 2})
	defer cl.Close()
	res := sssp.Run(cl, sssp.Config{G: g, Source: 0})
	if res.Checksum != sssp.ChecksumDists(ref) {
		t.Fatal("path graph distances mismatch reference")
	}
	if res.Reached != 64 {
		t.Fatalf("reached %d of 64", res.Reached)
	}
	if res.Supersteps < 60 {
		t.Errorf("path graph should take ~63 supersteps, got %d", res.Supersteps)
	}
}

func boolIdx(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func TestSSSPMaxSteps(t *testing.T) {
	g := graph.Path(100)
	cl := core.New(core.Config{Nodes: 2})
	defer cl.Close()
	res := sssp.Run(cl, sssp.Config{G: g, Source: 0, MaxSteps: 5})
	if res.Supersteps != 5 {
		t.Fatalf("supersteps = %d, want 5", res.Supersteps)
	}
	if res.Reached > 11 {
		t.Fatalf("reached %d vertices in 5 steps on a path", res.Reached)
	}
}
