// Package sssp implements the paper's single-source shortest path
// workload (§6): level-synchronous Bellman-Ford relaxation over a
// block-partitioned weighted graph. Edge relaxations travel as active
// messages to the target vertex's owner (§7.1: SSSP uses atomic
// operations — active messages), whose network thread applies the
// min-update and enqueues newly improved vertices on the owner's next
// frontier.
package sssp

import (
	"fmt"
	"hash/fnv"

	"gravel/internal/graph"
	"gravel/internal/rt"
)

// Inf is the distance of unreached vertices.
const Inf = uint64(1) << 62

// Config parameterizes an SSSP run.
type Config struct {
	G *graph.Graph
	// Source is the source vertex; if it is isolated (degree 0, which
	// can happen in generated meshes with deleted edges), the next
	// vertex with edges is used — see EffectiveSource.
	Source int
	// MaxSteps bounds the superstep count (0 = unlimited).
	MaxSteps int
}

// EffectiveSource resolves the source vertex Run and Reference actually
// use: src itself if it has out-edges, else the first later vertex that
// does.
func EffectiveSource(g *graph.Graph, src int) int {
	for v := src; v < g.N; v++ {
		if g.Deg(v) > 0 {
			return v
		}
	}
	return src
}

// Result reports an SSSP run.
type Result struct {
	Ns         float64
	Reached    int64
	Supersteps int
	// Checksum is an FNV-1a hash over the final distance vector.
	Checksum uint64
	// DistSum is the sum of finite distances.
	DistSum uint64
}

// state is the per-run mutable frontier state shared between the AM
// handler (network threads) and the host loop. Each node's handler only
// touches its own entry, and the host only reads between supersteps.
type state struct {
	next    [][]uint32
	pending []map[uint32]bool
}

// Run executes SSSP on the given system.
func Run(sys rt.System, cfg Config) Result {
	return run(sys, cfg, -1, nil)
}

// RunShard executes only the given node's shard of a distributed run
// (one process per node): launches happen only on node, and the
// level-synchronous termination decision — "is the global frontier
// empty?" — goes through coll, so every process agrees on the superstep
// count. The per-shard Reached and DistSum sum across shards to the
// full-run values; Checksum covers only the shard's vertex range.
func RunShard(sys rt.System, cfg Config, node int, coll rt.Collectives) Result {
	return run(sys, cfg, node, coll)
}

func run(sys rt.System, cfg Config, only int, coll rt.Collectives) Result {
	g := cfg.G
	g.EnsureWeights()
	nodes := sys.Nodes()

	part := (g.N + nodes - 1) / nodes
	src := EffectiveSource(g, cfg.Source)
	dist := sys.Space().Alloc(g.N)
	dist.Fill(Inf)
	dist.Store(uint64(src), 0)

	st := &state{
		next:    make([][]uint32, nodes),
		pending: make([]map[uint32]bool, nodes),
	}
	for i := range st.pending {
		st.pending[i] = make(map[uint32]bool)
	}

	// relax handler: runs serialized on the owner's network thread.
	relax := sys.RegisterAM(func(node int, a, b uint64) {
		v, nd := a, b
		if nd < dist.Load(v) {
			dist.Store(v, nd)
			if !st.pending[node][uint32(v)] {
				st.pending[node][uint32(v)] = true
				st.next[node] = append(st.next[node], uint32(v))
			}
		}
	})

	frontier := make([][]uint32, nodes)
	frontier[src/part] = []uint32{uint32(src)}

	grid := make([]int, nodes)
	t0 := sys.VirtualTimeNs()
	steps := 0
	for {
		local := 0
		for i := range frontier {
			if only >= 0 && i != only {
				grid[i] = 0
				continue
			}
			grid[i] = len(frontier[i])
			local += grid[i]
		}
		total, err := rt.AllReduce(coll, fmt.Sprintf("sssp:front:%d", steps), rt.WorldTeam, rt.OpSum, uint64(local))
		if err != nil {
			panic(err)
		}
		if total == 0 || (cfg.MaxSteps > 0 && steps >= cfg.MaxSteps) {
			break
		}
		steps++

		sys.Step("sssp-relax", grid, 0, func(c rt.Ctx) {
			wg := c.Group()
			f := frontier[c.Node()]
			counts := make([]int, wg.Size)
			du := make([]uint64, wg.Size)
			dst := make([]int, wg.Size)
			a := make([]uint64, wg.Size)
			b := make([]uint64, wg.Size)
			wg.VectorN(2, func(l int) {
				u := f[wg.GlobalID(l)]
				counts[l] = g.Deg(int(u))
				du[l] = dist.Load(uint64(u))
			})
			wg.PredicatedLoop(counts, 4, func(i int, active []bool) {
				wg.VectorMasked(3, active, func(l int) {
					u := int(f[wg.GlobalID(l)])
					e := g.Off[u] + int64(i)
					v := g.Adj[e]
					dst[l] = int(v) / part
					a[l] = uint64(v)
					b[l] = du[l] + uint64(g.W[e])
				})
				// Each lane walks a different edge list: divergent loads.
				wg.ChargeMemDivergence(wg.ActiveLaneCount())
				c.AM(relax, dst, a, b, active)
			})
		})

		// Host: swap frontiers (charged as host serial time).
		sys.ChargeHost(2000)
		for i := 0; i < nodes; i++ {
			frontier[i] = st.next[i]
			st.next[i] = nil
			clear(st.pending[i])
		}
	}
	ns := sys.VirtualTimeNs() - t0

	// Scan the final distances: the full range in a single-process run,
	// only the owned shard in a distributed one (other shards' replica
	// entries are stale — their owners hold the real values).
	lo, hi := uint64(0), uint64(g.N)
	if only >= 0 {
		lo = uint64(only * part)
		hi = lo + uint64(part)
		if hi > uint64(g.N) {
			hi = uint64(g.N)
		}
		if lo > hi {
			lo = hi
		}
	}
	h := fnv.New64a()
	var buf [8]byte
	var reached int64
	var sum uint64
	for v := lo; v < hi; v++ {
		d := dist.Load(v)
		if d != Inf {
			reached++
			sum += d
		}
		putU64(buf[:], d)
		h.Write(buf[:])
	}
	return Result{
		Ns:         ns,
		Reached:    reached,
		Supersteps: steps,
		Checksum:   h.Sum64(),
		DistSum:    sum,
	}
}

// Reference computes shortest-path distances sequentially (Dijkstra-free
// Bellman-Ford over levels) for verification.
func Reference(g *graph.Graph, source int) []uint64 {
	g.EnsureWeights()
	source = EffectiveSource(g, source)
	dist := make([]uint64, g.N)
	for i := range dist {
		dist[i] = Inf
	}
	dist[source] = 0
	frontier := []uint32{uint32(source)}
	inNext := make(map[uint32]bool)
	for len(frontier) > 0 {
		var next []uint32
		for _, u := range frontier {
			du := dist[u]
			for i := g.Off[u]; i < g.Off[u+1]; i++ {
				v := g.Adj[i]
				nd := du + uint64(g.W[i])
				if nd < dist[v] {
					dist[v] = nd
					if !inNext[v] {
						inNext[v] = true
						next = append(next, v)
					}
				}
			}
		}
		frontier = next
		clear(inNext)
	}
	return dist
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// ChecksumDists hashes a distance vector the same way Run does, so
// Reference output can be compared to Result.Checksum.
func ChecksumDists(dist []uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, d := range dist {
		putU64(buf[:], d)
		h.Write(buf[:])
	}
	return h.Sum64()
}
