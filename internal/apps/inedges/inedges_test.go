package inedges_test

import (
	"testing"

	"gravel/internal/apps/inedges"
	"gravel/internal/core"
	"gravel/internal/graph"
)

// asymmetric returns a directed graph with skewed out-degrees (the
// Figure 9 situation: lanes retire at different loop iterations).
func asymmetric(n int, seed int64) *graph.Graph {
	// Random symmetric graphs have varying degree already.
	return graph.Random(n, 6, seed)
}

func TestAllStylesMatchReference(t *testing.T) {
	g := asymmetric(600, 3)
	want := inedges.Reference(g)
	for _, style := range []inedges.Style{inedges.StylePredicated, inedges.StyleWGControlFlow, inedges.StyleFBar} {
		cl := core.New(core.Config{Nodes: 3, DivMode: style.Mode()})
		res, snap := inedges.Run(cl, g, style)
		cl.Close()
		if res.Edges != int64(g.E()) {
			t.Errorf("%v: edges = %d", style, res.Edges)
		}
		for v := 0; v < g.N; v++ {
			if snap.At(v) != want[v] {
				t.Fatalf("%v: vertex %d count %d, want %d", style, v, snap.At(v), want[v])
			}
		}
	}
}

// TestStyleCostOrdering: with highly skewed edge lists, WG-granularity
// control flow must beat software predication on GPU time (§8.2), and
// every style agrees functionally.
func TestStyleCostOrdering(t *testing.T) {
	// A star-heavy graph: most vertices have degree ~2, a few have huge
	// degree, so most lanes retire early.
	g := graph.Bubbles(4000, 1)
	gpuFor := func(style inedges.Style) float64 {
		cl := core.New(core.Config{Nodes: 2, DivMode: style.Mode()})
		defer cl.Close()
		inedges.Run(cl, g, style)
		var gpu float64
		for i := 0; i < 2; i++ {
			gpu += cl.Node(i).Clocks.Snapshot().GPU
		}
		return gpu
	}
	pred := gpuFor(inedges.StylePredicated)
	wgcf := gpuFor(inedges.StyleWGControlFlow)
	if wgcf >= pred {
		t.Errorf("WG control flow GPU time (%v) should beat software predication (%v)", wgcf, pred)
	}
}
