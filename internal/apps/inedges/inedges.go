// Package inedges implements the paper's §5 running example (Figures
// 9-11): counting each vertex's incoming edges in a directed graph by
// having every work-item traverse one vertex's out-edge list and send
// shmem_inc to the owner of a distributed counter array. Edge lists
// have different lengths, so the loop diverges — the situation diverged
// WG-level operations exist for.
//
// Three kernel styles are provided, mirroring Figure 10:
//
//   - StylePredicated (Figure 10b): the explicit software-predication
//     transform — reduce-max loop bound, per-iteration active mask,
//     network API extended with the mask. This is what Gravel requires
//     on current GPUs and what Group.PredicatedLoop encapsulates.
//   - StyleWGControlFlow: the same kernel executed on a device with
//     WG-granularity control flow (§5.3, thread block compaction);
//     functionally identical, cheaper per iteration.
//   - StyleFBar (Figure 10c): lanes register with a fine-grain barrier
//     and leave as their edge lists end, so fully retired wavefronts
//     stop executing.
//
// All styles produce identical counters; only the charged GPU time
// differs (§8.2 quantifies this on GUPS-mod).
package inedges

import (
	"gravel/internal/graph"
	"gravel/internal/rt"
	"gravel/internal/simt"
)

// Style selects the diverged-control-flow mechanism.
type Style int

const (
	// StylePredicated is Figure 10b on a software-predication device.
	StylePredicated Style = iota
	// StyleWGControlFlow is Figure 10b cost-modeled with WG-granularity
	// control flow.
	StyleWGControlFlow
	// StyleFBar is Figure 10c: explicit fine-grain barrier membership.
	StyleFBar
)

// Mode returns the simt divergence mode a style needs.
func (s Style) Mode() simt.DivergenceMode {
	switch s {
	case StyleWGControlFlow:
		return simt.WGReconvergence
	case StyleFBar:
		return simt.FineGrainBarrier
	default:
		return simt.SoftwarePredication
	}
}

// String implements fmt.Stringer.
func (s Style) String() string {
	switch s {
	case StylePredicated:
		return "sw-predication"
	case StyleWGControlFlow:
		return "wg-control-flow"
	case StyleFBar:
		return "fbar"
	default:
		return "unknown"
	}
}

// Result reports one run.
type Result struct {
	// Ns is the virtual time consumed; the styles differ in their GPU
	// component (read per-node clocks from the concrete system to
	// compare).
	Ns float64
	// Edges is the number of increments sent (the directed edge count).
	Edges int64
}

// Run counts in-edges of g on sys using the given style, returning the
// timing result and a snapshot of the counter array for verification.
// The caller must have built sys with the matching divergence mode
// (Style.Mode).
func Run(sys rt.System, g *graph.Graph, style Style) (Result, *CountSnapshot) {
	nodes := sys.Nodes()
	part := (g.N + nodes - 1) / nodes
	visitors := sys.Space().Alloc(g.N)

	grid := make([]int, nodes)
	for i := 0; i < nodes; i++ {
		lo, hi := i*part, (i+1)*part
		if hi > g.N {
			hi = g.N
		}
		if lo > g.N {
			lo = g.N
		}
		grid[i] = hi - lo
	}

	t0 := sys.VirtualTimeNs()
	sys.Step("count-in-edges", grid, 0, func(c rt.Ctx) {
		wg := c.Group()
		lo := c.Node() * part
		counts := make([]int, wg.Size)
		idx := make([]uint64, wg.Size)
		one := make([]uint64, wg.Size)
		wg.VectorN(1, func(l int) {
			v := lo + wg.GlobalID(l)
			counts[l] = g.Deg(v)
			one[l] = 1
		})

		if style == StyleFBar {
			// Figure 10c: all lanes join the fbar; each leaves when its
			// edge list ends. The engine's predicated loop already
			// charges fbar costs under the FineGrainBarrier mode; the
			// explicit object demonstrates the programming model.
			fb := wg.InitFBar()
			wg.PredicatedLoop(counts, 3, func(i int, active []bool) {
				wg.VectorMasked(2, active, func(l int) {
					v := lo + wg.GlobalID(l)
					e := g.Off[v] + int64(i)
					idx[l] = uint64(g.Adj[e])
				})
				c.Inc(visitors, idx, one, active)
				for l := 0; l < wg.Size; l++ {
					if i+1 == counts[l] {
						fb.Leave(l)
					}
				}
				fb.Sync()
			})
			return
		}

		// Figure 10b: software predication (the device mode decides what
		// each predicated iteration costs).
		wg.PredicatedLoop(counts, 3, func(i int, active []bool) {
			wg.VectorMasked(2, active, func(l int) {
				v := lo + wg.GlobalID(l)
				e := g.Off[v] + int64(i)
				idx[l] = uint64(g.Adj[e])
			})
			c.Inc(visitors, idx, one, active)
		})
	})
	ns := sys.VirtualTimeNs() - t0

	snap := &CountSnapshot{counts: make([]uint64, g.N)}
	for v := 0; v < g.N; v++ {
		snap.counts[v] = visitors.Load(uint64(v))
	}
	return Result{Ns: ns, Edges: int64(g.E())}, snap
}

// CountSnapshot is the counter array captured at quiescence.
type CountSnapshot struct{ counts []uint64 }

// At returns vertex v's in-edge count.
func (s *CountSnapshot) At(v int) uint64 { return s.counts[v] }

// Reference computes in-degrees sequentially.
func Reference(g *graph.Graph) []uint64 {
	in := make([]uint64, g.N)
	for u := 0; u < g.N; u++ {
		for _, v := range g.Out(u) {
			in[v]++
		}
	}
	return in
}
