// Package bfs implements direction-optimizing breadth-first search
// over a block-partitioned graph — the registry's showcase for the
// PGAS signal verbs. Sparse frontiers run top-down: each frontier
// vertex relaxes its out-edges with active messages to the target's
// owner, exactly like SSSP. Dense frontiers flip to bottom-up: every
// owner broadcasts its frontier membership into per-node replica
// arrays with signalled puts (rt.Ctx.PutSignal), and the scanning
// work-groups wait on their node's cumulative arrival counter
// (rt.Ctx.WaitUntil) before probing the replicas — sender and scanner
// work-groups share one kernel launch, so the flip needs no extra
// global quiescence round.
//
// The direction decision (frontier larger than N/8 goes bottom-up)
// depends only on the globally agreed frontier size, so every process
// of a distributed run takes the same branch and the level assignment
// is bit-identical to the single-process run.
package bfs

import (
	"fmt"
	"hash/fnv"

	"gravel/internal/ckpt"
	"gravel/internal/graph"
	"gravel/internal/pgas"
	"gravel/internal/rt"
)

// Inf is the level of unreached vertices.
const Inf = uint64(1) << 62

// Config parameterizes a BFS run.
type Config struct {
	G *graph.Graph
	// Source is the search root; an isolated source falls forward to
	// the next vertex with edges (same rule as sssp.EffectiveSource).
	Source int
	// DenseFrac flips to bottom-up when frontier > N*DenseFrac
	// (0 = the default 1/8).
	DenseFrac float64
	// MaxLevels bounds the level count (0 = unlimited).
	MaxLevels int
}

func (c Config) denseFrac() float64 {
	if c.DenseFrac <= 0 {
		return 1.0 / 8.0
	}
	return c.DenseFrac
}

// Result reports a BFS run.
type Result struct {
	Ns      float64
	Reached int64
	// Levels is the number of level-synchronous rounds executed;
	// BottomUp counts how many of them ran in the bottom-up direction.
	Levels, BottomUp int
	// LevelSum is the sum of finite levels (additive across shards).
	LevelSum uint64
	// Checksum is an FNV-1a hash over the scanned level range.
	Checksum uint64
}

// Run executes BFS on the given system.
func Run(sys rt.System, cfg Config) Result {
	return run(sys, cfg, -1, nil)
}

// RunShard executes only the given node's shard of a distributed run.
// The level-synchronous direction/termination decision — the global
// frontier size — goes through coll, so every process agrees on both
// the round count and the traversal direction of every round. LevelSum
// and Reached sum across shards to the full-run values; Checksum
// covers only the shard's vertex range.
func RunShard(sys rt.System, cfg Config, node int, coll rt.Collectives) Result {
	return run(sys, cfg, node, coll)
}

// ElasticOpts configures a checkpoint-aware shard run (RunElastic).
type ElasticOpts struct {
	// Resume holds every shard's payload from the restore point, in
	// shard order. Nil means a cold start. Frontier and level payloads
	// are keyed by the saving epoch's block partition, so a restore
	// point is only valid at the node count that saved it.
	Resume [][]byte
	// Every is the checkpoint cadence in level rounds (<= 0 = every
	// round).
	Every int
	// Save, when non-nil, persists this shard's payload at a level-round
	// boundary: the round's quiescent barrier has passed and the
	// frontiers have been swapped, so the union of all shards' payloads
	// is a consistent cut of the traversal.
	Save func(round uint64, data []byte) error
}

// RunElastic executes the given node's shard with checkpoint/restore:
// each shard saves its owned level range plus its next frontier after a
// round's frontier swap, and a restored run resumes at the saved round.
// The bottom-up arrival counters are NOT part of the payload — a fresh
// epoch's cumulative counters restart at zero, and the level-tagged
// replica arrays make zeroed replicas indistinguishable from
// never-broadcast ones. Final results are bit-identical to an
// undisturbed RunShard of the same Config.
func RunElastic(sys rt.System, cfg Config, only int, coll rt.Collectives, opt ElasticOpts) (Result, error) {
	return runElastic(sys, cfg, only, coll, opt)
}

// state is the per-run frontier state shared between the visit handler
// (network threads) and the host loop; each node's handler only touches
// its own entry and the host only reads between rounds.
type state struct {
	next    [][]uint32
	pending []map[uint32]bool
}

func run(sys rt.System, cfg Config, only int, coll rt.Collectives) Result {
	r, err := runElastic(sys, cfg, only, coll, ElasticOpts{})
	if err != nil {
		// Impossible without a resume payload or a Save hook.
		panic(err)
	}
	return r
}

func runElastic(sys rt.System, cfg Config, only int, coll rt.Collectives, opt ElasticOpts) (Result, error) {
	g := cfg.G
	nodes := sys.Nodes()
	part := (g.N + nodes - 1) / nodes
	src := effectiveSource(g, cfg.Source)

	// Symmetric state must be allocated in the same order by every
	// process (IDs and offsets are positional); the distributed entry
	// point verifies the invariant before the first signal flies.
	level := sys.Space().Alloc(g.N)
	rep := sys.Space().SymAlloc(g.N)    // level-tagged frontier replicas, one set per node
	arrivals := sys.Space().SymAlloc(1) // cumulative broadcast counter, one cell per node
	if err := rt.VerifySymmetric(coll, sys.Space(), "bfs"); err != nil {
		panic(err)
	}
	level.Fill(Inf)
	level.Store(uint64(src), 0)

	st := &state{
		next:    make([][]uint32, nodes),
		pending: make([]map[uint32]bool, nodes),
	}
	for i := range st.pending {
		st.pending[i] = make(map[uint32]bool)
	}

	// visit handler: first writer of a vertex's level enqueues it on the
	// owner's next frontier. Runs serialized on the owner's network
	// thread; levels only decrease (and each vertex is discovered at one
	// level), so application order cannot change the result.
	visit := sys.RegisterAM(func(node int, a, b uint64) {
		v, lv := a, b
		if lv < level.Load(v) {
			level.Store(v, lv)
			if !st.pending[node][uint32(v)] {
				st.pending[node][uint32(v)] = true
				st.next[node] = append(st.next[node], uint32(v))
			}
		}
	})

	frontier := make([][]uint32, nodes)
	frontier[src/part] = []uint32{uint32(src)}

	dense := int(float64(g.N) * cfg.denseFrac())
	levels, bottomUps := 0, 0
	elastic := opt.Save != nil || len(opt.Resume) > 0
	if elastic && only < 0 {
		return Result{}, fmt.Errorf("bfs: elastic runs are per-shard (full runs have nothing to restore)")
	}
	if len(opt.Resume) > 0 {
		fr, lvl, bu, err := decodeShard(level, only, opt.Resume)
		if err != nil {
			return Result{}, err
		}
		levels, bottomUps = lvl, bu
		for i := range frontier {
			frontier[i] = nil
		}
		frontier[only] = fr
	}
	if elastic {
		// Zero-work sync step: its barrier guarantees every worker has
		// allocated (and restored) before any worker's first visit AM
		// can arrive — a fast peer's wire writes would otherwise race a
		// slow peer's allocation or restore.
		sys.Step("bfs-start-sync", make([]int, nodes), 0, func(rt.Ctx) {})
	}
	every := opt.Every
	if every <= 0 {
		every = 1
	}

	t0 := sys.VirtualTimeNs()
	cumSignals := uint64(0) // signals every node has been promised THIS EPOCH
	for {
		local := 0
		for i := range frontier {
			if only >= 0 && i != only {
				continue
			}
			local += len(frontier[i])
		}
		total, err := rt.AllReduce(coll, fmt.Sprintf("bfs:front:%d", levels), rt.WorldTeam, rt.OpSum, uint64(local))
		if err != nil {
			panic(err)
		}
		if total == 0 || (cfg.MaxLevels > 0 && levels >= cfg.MaxLevels) {
			break
		}
		lv := uint64(levels + 1) // level being assigned, and this round's replica tag
		levels++

		if int(total) > dense {
			// Bottom-up: every owner broadcasts its frontier into all
			// nodes' replica sets; every node then scans its unvisited
			// vertices against its local replicas. Each broadcast is one
			// PUT_SIGNAL per (frontier vertex, destination node), so after
			// this round each node's cumulative counter must have received
			// exactly total more signals.
			bottomUps++
			cumSignals += total
			runBottomUp(sys, g, only, part, frontier, level, rep, arrivals, visit, lv, cumSignals)
		} else {
			runTopDown(sys, g, only, part, frontier, level, visit, lv)
		}

		// Host: swap frontiers (charged as host serial time).
		sys.ChargeHost(2000)
		for i := 0; i < nodes; i++ {
			frontier[i] = st.next[i]
			st.next[i] = nil
			clear(st.pending[i])
		}

		// Round boundary: the step barrier above proved quiescence, so
		// levels and frontiers form a consistent cut. The round count is
		// globally agreed (it is driven by the all-reduced frontier
		// size), so every shard saves the same rounds.
		if opt.Save != nil && levels%every == 0 {
			if err := opt.Save(uint64(levels), encodeShard(level, only, levels, bottomUps, frontier[only])); err != nil {
				return Result{}, err
			}
			// Quiet save window: no worker may start the next round
			// (whose visit AMs land in peers' level ranges) until every
			// worker has encoded its payload.
			sys.Step("bfs-ckpt-sync", make([]int, nodes), 0, func(rt.Ctx) {})
		}
	}
	ns := sys.VirtualTimeNs() - t0

	lo, hi := uint64(0), uint64(g.N)
	if only >= 0 {
		lo = uint64(only * part)
		hi = lo + uint64(part)
		if hi > uint64(g.N) {
			hi = uint64(g.N)
		}
		if lo > hi {
			lo = hi
		}
	}
	h := fnv.New64a()
	var buf [8]byte
	var reached int64
	var sum uint64
	for v := lo; v < hi; v++ {
		d := level.Load(v)
		if d != Inf {
			reached++
			sum += d
		}
		putU64(buf[:], d)
		h.Write(buf[:])
	}
	return Result{
		Ns:       ns,
		Reached:  reached,
		Levels:   levels,
		BottomUp: bottomUps,
		LevelSum: sum,
		Checksum: h.Sum64(),
	}, nil
}

// encodeShard builds node's checkpoint payload: the completed round and
// bottom-up counts, the owned level range and its values, and the
// node's next frontier.
func encodeShard(level *pgas.Array, node, levels, bottomUps int, frontier []uint32) []byte {
	lo, hi := level.LocalRange(node)
	p := ckpt.EncodeU64s(
		[]uint64{uint64(levels), uint64(bottomUps), uint64(lo), uint64(hi - lo), uint64(len(frontier))},
		(hi-lo)+len(frontier))
	for _, v := range level.Local(node) {
		p = ckpt.AppendU64(p, v)
	}
	for _, u := range frontier {
		p = ckpt.AppendU64(p, uint64(u))
	}
	return p
}

// decodeShard replays the node's own payload into its level range and
// returns the saved frontier and round counts. Only the owned range is
// restored: visit AMs route to the vertex owner, so each shard's
// replica holds exactly its own range's discoveries. Same node count
// only — shard `node` must cover exactly this node's range.
func decodeShard(level *pgas.Array, node int, shards [][]byte) ([]uint32, int, int, error) {
	if node >= len(shards) {
		return nil, 0, 0, fmt.Errorf("bfs: restore has %d shards, node %d needs its own", len(shards), node)
	}
	w, err := ckpt.DecodeU64s(shards[node])
	if err != nil {
		return nil, 0, 0, fmt.Errorf("bfs: shard %d: %w", node, err)
	}
	if len(w) < 5 || uint64(len(w)-5) != w[3]+w[4] {
		return nil, 0, 0, fmt.Errorf("bfs: shard %d: malformed payload (%d words, counts %d+%d)", node, len(w), w[3], w[4])
	}
	lo, hi := level.LocalRange(node)
	if int(w[2]) != lo || int(w[3]) != hi-lo {
		return nil, 0, 0, fmt.Errorf("bfs: shard %d saved range [%d,+%d), own range is [%d,+%d) — node count changed?",
			node, w[2], w[3], lo, hi-lo)
	}
	for j, v := range w[5 : 5+int(w[3])] {
		level.Store(uint64(lo+j), v)
	}
	frontier := make([]uint32, w[4])
	for j, v := range w[5+int(w[3]):] {
		frontier[j] = uint32(v)
	}
	return frontier, int(w[0]), int(w[1]), nil
}

// runTopDown relaxes the frontier's out-edges with active messages —
// the classic sparse direction (identical in structure to sssp).
func runTopDown(sys rt.System, g *graph.Graph, only, part int, frontier [][]uint32,
	level *pgas.Array, visit uint8, lv uint64) {
	nodes := sys.Nodes()
	grid := make([]int, nodes)
	for i := range frontier {
		if only >= 0 && i != only {
			continue
		}
		grid[i] = len(frontier[i])
	}
	sys.Step("bfs-topdown", grid, 0, func(c rt.Ctx) {
		wg := c.Group()
		f := frontier[c.Node()]
		counts := make([]int, wg.Size)
		dst := make([]int, wg.Size)
		a := make([]uint64, wg.Size)
		b := make([]uint64, wg.Size)
		wg.VectorN(2, func(l int) {
			counts[l] = g.Deg(int(f[wg.GlobalID(l)]))
		})
		wg.PredicatedLoop(counts, 4, func(i int, active []bool) {
			wg.VectorMasked(3, active, func(l int) {
				u := int(f[wg.GlobalID(l)])
				v := g.Adj[g.Off[u]+int64(i)]
				dst[l] = int(v) / part
				a[l] = uint64(v)
				b[l] = lv
			})
			wg.ChargeMemDivergence(wg.ActiveLaneCount())
			c.AM(visit, dst, a, b, active)
		})
	})
}

// runBottomUp is the dense direction, one kernel launch per node:
// the first len(frontier) work-items broadcast frontier membership with
// signalled puts (lower work-group IDs, so no wait depends on a later
// work-group of the same grid), the remaining part-sized range of
// work-items waits for the cluster-wide broadcast to complete and then
// probes its unvisited vertices' neighbors against the local replicas.
func runBottomUp(sys rt.System, g *graph.Graph, only, part int, frontier [][]uint32,
	level, rep, arrivals *pgas.Array, visit uint8, lv, cumSignals uint64) {
	nodes := sys.Nodes()
	grid := make([]int, nodes)
	sendN := make([]int, nodes)
	lof := make([]int, nodes)
	for i := 0; i < nodes; i++ {
		if only >= 0 && i != only {
			continue
		}
		sendN[i] = len(frontier[i])
		lof[i] = i * part
		span := g.N - lof[i]
		if span > part {
			span = part
		}
		if span < 0 {
			span = 0
		}
		grid[i] = sendN[i] + span
	}
	sys.Step("bfs-bottomup", grid, 0, func(c rt.Ctx) {
		wg := c.Group()
		me := c.Node()
		f := frontier[me]
		send := sendN[me]
		lo := lof[me]

		idx := make([]uint64, wg.Size)
		val := make([]uint64, wg.Size)
		sig := make([]uint64, wg.Size)
		mask := make([]bool, wg.Size)

		// Broadcast lanes: one signalled put per destination node, all
		// sender lanes of the WG advancing together.
		anySend := false
		for l := 0; l < wg.Size; l++ {
			mask[l] = wg.GlobalID(l) < send
			anySend = anySend || mask[l]
		}
		if anySend {
			for d := 0; d < nodes; d++ {
				wg.VectorMasked(2, mask, func(l int) {
					u := uint64(f[wg.GlobalID(l)])
					idx[l] = rep.SymIndex(d, int(u))
					val[l] = lv
					sig[l] = arrivals.SymIndex(d, 0)
				})
				c.PutSignal(rep, idx, val, arrivals, sig, mask)
			}
		}

		// Scan lanes: vertices lo+off for off = gid-send. Wait until the
		// whole cluster's broadcast has landed (the counter is cumulative
		// across bottom-up rounds), then probe neighbors for the tag.
		counts := make([]int, wg.Size)
		vtx := make([]uint64, wg.Size)
		found := make([]bool, wg.Size)
		anyScan := false
		for l := 0; l < wg.Size; l++ {
			counts[l] = 0
			gid := wg.GlobalID(l)
			mask[l] = gid >= send && gid-send < grid[me]-send
			if !mask[l] {
				continue
			}
			anyScan = true
			vtx[l] = uint64(lo + gid - send)
		}
		if !anyScan {
			return
		}
		for l := 0; l < wg.Size; l++ {
			sig[l] = arrivals.SymIndex(me, 0)
			val[l] = cumSignals
		}
		c.WaitUntil(arrivals, sig, val, mask)

		wg.VectorMasked(2, mask, func(l int) {
			if level.Load(vtx[l]) == Inf {
				counts[l] = g.Deg(int(vtx[l]))
			}
			found[l] = false
		})
		wg.PredicatedLoop(counts, 3, func(i int, active []bool) {
			wg.VectorMasked(2, active, func(l int) {
				if found[l] {
					return
				}
				u := g.Adj[g.Off[int64(vtx[l])]+int64(i)]
				if rep.Load(rep.SymIndex(me, int(u))) == lv {
					found[l] = true
				}
			})
			wg.ChargeMemDivergence(wg.ActiveLaneCount())
		})

		// Claim discovered vertices through the owner's network thread —
		// the same serialized visit path the top-down direction uses, so
		// frontier construction is identical either way.
		any := false
		dst := make([]int, wg.Size)
		b := make([]uint64, wg.Size)
		for l := 0; l < wg.Size; l++ {
			mask[l] = mask[l] && found[l]
			any = any || mask[l]
			dst[l] = me
			idx[l] = vtx[l]
			b[l] = lv
		}
		if any {
			c.AM(visit, dst, idx, b, mask)
		}
	})
}

// effectiveSource resolves the root Run actually uses: src itself if it
// has out-edges, else the first later vertex that does.
func effectiveSource(g *graph.Graph, src int) int {
	for v := src; v < g.N; v++ {
		if g.Deg(v) > 0 {
			return v
		}
	}
	return src
}

// Reference computes BFS levels sequentially for verification.
func Reference(g *graph.Graph, source int) []uint64 {
	source = effectiveSource(g, source)
	level := make([]uint64, g.N)
	for i := range level {
		level[i] = Inf
	}
	level[source] = 0
	frontier := []uint32{uint32(source)}
	lv := uint64(0)
	for len(frontier) > 0 {
		lv++
		var next []uint32
		for _, u := range frontier {
			for _, v := range g.Out(int(u)) {
				if level[v] == Inf {
					level[v] = lv
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return level
}

// ReferenceSum is the sum of finite reference levels — what the
// distributed shards' LevelSum values must add up to.
func ReferenceSum(g *graph.Graph, source int) uint64 {
	var sum uint64
	for _, d := range Reference(g, source) {
		if d != Inf {
			sum += d
		}
	}
	return sum
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
