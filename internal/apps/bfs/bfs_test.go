package bfs_test

import (
	"testing"

	"gravel/internal/apps/bfs"
	"gravel/internal/graph"
	"gravel/internal/models"
)

// TestElasticRestoreBitIdentical pins the checkpoint codec and restore
// path: a run saving a cut at every level round, and a fresh run
// resumed from each of those cuts, must all reproduce the undisturbed
// run's results bit for bit — including the bottom-up rounds, whose
// cumulative arrival counters restart at zero in the resumed epoch.
func TestElasticRestoreBitIdentical(t *testing.T) {
	g := graph.Random(1024, 8, 42)
	cfg := bfs.Config{G: g}

	refSys := models.New("gravel", 1, nil)
	ref := bfs.RunShard(refSys, cfg, 0, nil)
	refSys.Close()
	if ref.BottomUp == 0 {
		t.Fatalf("reference ran no bottom-up rounds (levels=%d) — input too sparse to cover the signal path", ref.Levels)
	}

	var cuts [][]byte
	var rounds []uint64
	saveSys := models.New("gravel", 1, nil)
	r, err := bfs.RunElastic(saveSys, cfg, 0, nil, bfs.ElasticOpts{
		Save: func(round uint64, data []byte) error {
			rounds = append(rounds, round)
			cuts = append(cuts, append([]byte(nil), data...))
			return nil
		},
	})
	saveSys.Close()
	if err != nil {
		t.Fatal(err)
	}
	if r.Checksum != ref.Checksum || r.LevelSum != ref.LevelSum {
		t.Fatalf("saving run diverged from plain run: %+v vs %+v", r, ref)
	}
	if len(cuts) == 0 {
		t.Fatal("no checkpoints saved")
	}

	for i, cut := range cuts {
		sys := models.New("gravel", 1, nil)
		got, err := bfs.RunElastic(sys, cfg, 0, nil, bfs.ElasticOpts{Resume: [][]byte{cut}})
		sys.Close()
		if err != nil {
			t.Fatalf("resume from round %d: %v", rounds[i], err)
		}
		if got.Checksum != ref.Checksum || got.LevelSum != ref.LevelSum || got.Reached != ref.Reached ||
			got.Levels != ref.Levels || got.BottomUp != ref.BottomUp {
			t.Fatalf("resume from round %d diverged: %+v vs %+v", rounds[i], got, ref)
		}
	}
}
