package pagerank_test

import (
	"testing"

	"gravel/internal/apps/pagerank"
	"gravel/internal/core"
	"gravel/internal/graph"
)

func TestPageRankMatchesReference(t *testing.T) {
	g := graph.Random(600, 6, 3)
	want := pagerank.Reference(g, 5)
	wantSum := uint64(0)
	for _, r := range want {
		wantSum += r
	}
	for _, nodes := range []int{1, 3, 4} {
		cl := core.New(core.Config{Nodes: nodes})
		res := pagerank.Run(cl, pagerank.Config{G: g, Iters: 5})
		cl.Close()
		if res.RankSum != float64(wantSum)/pagerank.Scale {
			t.Errorf("nodes=%d: rank sum %v != reference %v", nodes, res.RankSum, float64(wantSum)/pagerank.Scale)
		}
	}
}

func TestPageRankDeterministicAcrossNodeCounts(t *testing.T) {
	g := graph.Bubbles(900, 5)
	var sums []uint64
	for _, nodes := range []int{1, 2, 4} {
		cl := core.New(core.Config{Nodes: nodes})
		res := pagerank.Run(cl, pagerank.Config{G: g, Iters: 3})
		cl.Close()
		sums = append(sums, res.Checksum)
	}
	if sums[0] != sums[1] || sums[1] != sums[2] {
		t.Errorf("checksums differ across node counts: %v", sums)
	}
}

func TestReferenceRankMass(t *testing.T) {
	// On a graph with no dangling vertices, total rank stays ≈ N.
	g := graph.Path(50)
	r := pagerank.Reference(g, 20)
	var sum uint64
	for _, v := range r {
		sum += v
	}
	got := float64(sum) / pagerank.Scale
	if got < 49.5 || got > 50.5 {
		t.Errorf("rank mass = %.3f, want ≈ 50", got)
	}
}
