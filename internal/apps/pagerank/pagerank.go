// Package pagerank implements the paper's PR workload (§6, derived from
// GasCL): push-style PageRank over a block-partitioned graph. Each
// iteration, every vertex PUTs rank/out-degree into a dedicated
// per-edge slot at each out-neighbor (so only non-atomic PUT operations
// are needed, matching §7.1: "PR and color use non-atomic operations
// exclusively"), then every vertex locally sums its in-edge slots.
//
// Ranks use Q24.32 fixed-point arithmetic so that results are exactly
// deterministic across node counts and networking models.
package pagerank

import (
	"fmt"
	"hash/fnv"

	"gravel/internal/ckpt"
	"gravel/internal/graph"
	"gravel/internal/pgas"
	"gravel/internal/rt"
)

// Scale is the fixed-point scale of rank values (1.0 == 1<<32).
const Scale = 1 << 32

// Damping is the damping factor in fixed-point (0.85).
const Damping = (Scale * 85) / 100

// Config parameterizes a PageRank run.
type Config struct {
	G     *graph.Graph
	Iters int
}

// Result reports a PageRank run.
type Result struct {
	Ns float64
	// RankSum is the sum of final ranks in units of 1.0; it stays ≈ N
	// when the graph has no dangling vertices.
	RankSum float64
	// FixedSum is the same sum in raw fixed-point units — exact, so
	// distributed per-shard sums can be reduced and compared.
	FixedSum uint64
	// Checksum is an FNV-1a hash of the final fixed-point rank vector.
	Checksum uint64
	Iters    int
}

// vertexBounds returns the block-partition boundaries of the vertex set.
func vertexBounds(n, nodes int) []int {
	part := (n + nodes - 1) / nodes
	b := make([]int, nodes+1)
	for i := 1; i <= nodes; i++ {
		v := i * part
		if v > n {
			v = n
		}
		b[i] = v
	}
	return b
}

// slotBounds maps vertex bounds through inOff so per-edge slots live
// with their target vertex.
func slotBounds(inOff []int64, vb []int) []int {
	b := make([]int, len(vb))
	for i, v := range vb {
		b[i] = int(inOff[v])
	}
	return b
}

// Run executes PageRank on the given system, launching on every node.
func Run(sys rt.System, cfg Config) Result {
	return run(sys, cfg, -1)
}

// RunOn executes only the given node's share of the PageRank pushes —
// the per-process entry point of a distributed run. RankSum, FixedSum
// and Checksum then cover only that node's vertex shard (rank.Fill
// seeds every shard identically, and phases only read vertices the
// launching node owns), so reducing FixedSum across processes yields
// the single-process total.
func RunOn(sys rt.System, cfg Config, node int) Result {
	return run(sys, cfg, node)
}

func run(sys rt.System, cfg Config, only int) Result {
	r, err := RunElastic(sys, cfg, only, ElasticOpts{})
	if err != nil {
		// Impossible without a resume payload or a Save hook.
		panic(err)
	}
	return r
}

// ElasticOpts configures a checkpoint-aware shard run (RunElastic).
type ElasticOpts struct {
	// Resume holds every shard's payload from the restore point, in
	// shard order. Nil means a cold start. Rank payloads carry their
	// global vertex range, and every in-slot is rewritten by the first
	// pr-push after a restore, so PageRank is reshardable: a checkpoint
	// saved by N workers restores correctly under any node count.
	Resume [][]byte
	// Every is the checkpoint cadence in iterations (<= 0 means every
	// iteration).
	Every int
	// Save, when non-nil, persists this shard's rank slice at the
	// iteration boundary just crossed (the pr-gather step barrier — a
	// proven-quiescent instant).
	Save func(iter uint64, data []byte) error
}

// RunElastic executes the given node's shard with checkpoint/restore.
// A restored run's FixedSum, RankSum and Checksum are bit-identical to
// an undisturbed run over the shard's vertex range; because the rank
// vector is the complete state at an iteration boundary, the reduced
// FixedSum is also identical across *different* node counts.
func RunElastic(sys rt.System, cfg Config, only int, opt ElasticOpts) (Result, error) {
	g := cfg.G
	nodes := sys.Nodes()
	vb := vertexBounds(g.N, nodes)
	inOff, slotOf := g.InSlots()

	rank := sys.Space().AllocRanges(vb)
	in := sys.Space().AllocRanges(slotBounds(inOff, vb))

	rank.Fill(Scale) // every vertex starts at rank 1.0

	start := 0
	if len(opt.Resume) > 0 {
		if only < 0 {
			return Result{}, fmt.Errorf("pagerank: restore requires a shard run")
		}
		iter, err := restoreRanks(rank, vb[only], vb[only+1], opt.Resume)
		if err != nil {
			return Result{}, err
		}
		start = int(iter)
	}
	if opt.Save != nil || len(opt.Resume) > 0 {
		// Zero-work sync step: its barrier guarantees every worker has
		// allocated (and restored) before any worker's first push can
		// arrive — a fast peer's wire writes would otherwise race a slow
		// peer's array allocation.
		sys.Step("pr-start-sync", make([]int, nodes), 0, func(rt.Ctx) {})
	}
	every := opt.Every
	if every <= 0 {
		every = 1
	}

	grid := make([]int, nodes)
	for i := 0; i < nodes; i++ {
		if only < 0 || i == only {
			grid[i] = vb[i+1] - vb[i]
		}
	}

	t0 := sys.VirtualTimeNs()
	for it := start; it < cfg.Iters; it++ {
		// Phase 1: every vertex pushes rank*damping/deg to each
		// out-neighbor's in-slot.
		sys.Step("pr-push", grid, 0, func(c rt.Ctx) {
			wg := c.Group()
			lo := uint64(vb[c.Node()])
			counts := make([]int, wg.Size)
			contrib := make([]uint64, wg.Size)
			idx := make([]uint64, wg.Size)
			val := make([]uint64, wg.Size)
			wg.VectorN(3, func(l int) {
				v := lo + uint64(wg.GlobalID(l))
				d := g.Deg(int(v))
				counts[l] = d
				if d > 0 {
					r := rank.Load(v)
					contrib[l] = mulScale(r, Damping) / uint64(d)
				}
			})
			wg.PredicatedLoop(counts, 3, func(i int, active []bool) {
				wg.VectorMasked(2, active, func(l int) {
					v := int(lo) + wg.GlobalID(l)
					e := g.Off[v] + int64(i)
					idx[l] = uint64(slotOf[e])
					val[l] = contrib[l]
				})
				// Scattered slot writes: one cache line per active lane
				// (memory divergence, §2.2).
				wg.ChargeMemDivergence(wg.ActiveLaneCount())
				c.Put(in, idx, val, active)
			})
		})

		// Phase 2: every vertex sums its in-slots locally (no network
		// traffic; divergent local reads).
		sys.Step("pr-gather", grid, 0, func(c rt.Ctx) {
			wg := c.Group()
			lo := uint64(vb[c.Node()])
			counts := make([]int, wg.Size)
			acc := make([]uint64, wg.Size)
			wg.VectorN(1, func(l int) {
				v := int(lo) + wg.GlobalID(l)
				counts[l] = int(inOff[v+1] - inOff[v])
				acc[l] = Scale - Damping // (1-d) * 1.0
			})
			wg.PredicatedLoop(counts, 2, func(i int, active []bool) {
				wg.VectorMasked(1, active, func(l int) {
					v := int(lo) + wg.GlobalID(l)
					acc[l] += in.Load(uint64(inOff[v] + int64(i)))
				})
				// Each lane reads a different slot range: divergent loads.
				wg.ChargeMemDivergence(wg.ActiveLaneCount())
			})
			wg.VectorN(1, func(l int) {
				v := lo + uint64(wg.GlobalID(l))
				rank.Store(v, acc[l])
			})
		})

		if opt.Save != nil && (it+1)%every == 0 && it+1 < cfg.Iters {
			if err := opt.Save(uint64(it+1), EncodeShard(rank, vb, only, uint64(it+1))); err != nil {
				return Result{}, err
			}
		}
	}
	ns := sys.VirtualTimeNs() - t0

	vlo, vhi := 0, g.N
	if only >= 0 {
		vlo, vhi = vb[only], vb[only+1]
	}
	h := fnv.New64a()
	var buf [8]byte
	var sum uint64
	for v := uint64(vlo); v < uint64(vhi); v++ {
		r := rank.Load(v)
		sum += r
		putU64(buf[:], r)
		h.Write(buf[:])
	}
	return Result{
		Ns:       ns,
		RankSum:  float64(sum) / Scale,
		FixedSum: sum,
		Checksum: h.Sum64(),
		Iters:    cfg.Iters,
	}, nil
}

// EncodeShard builds node's checkpoint payload: the iteration the
// shard has completed, the global vertex range it owns, and the owned
// rank values. Per-edge in-slots are deliberately excluded — every
// in-slot is fully rewritten by the next pr-push (each in-edge's
// source vertex pushes into it every iteration), so the rank vector at
// an iteration boundary is the complete state.
func EncodeShard(rank *pgas.Array, vb []int, node int, iter uint64) []byte {
	lo, hi := vb[node], vb[node+1]
	p := ckpt.EncodeU64s([]uint64{iter, uint64(lo), uint64(hi - lo)}, hi-lo)
	for v := lo; v < hi; v++ {
		p = ckpt.AppendU64(p, rank.Load(uint64(v)))
	}
	return p
}

// restoreRanks replays saved rank values falling in this node's vertex
// range [vlo, vhi) and returns the iteration the checkpoint was taken
// at. Only the owned range is restored (a process only ever reads and
// checksums its own vertices' ranks, and restoring more would break
// the additive per-shard FixedSum). The shards may come from an epoch
// with a *different* node count: payloads carry explicit global vertex
// ranges, so this node gathers its range from whichever old shards
// overlap it — the resharding path of a live scale-out.
func restoreRanks(rank *pgas.Array, vlo, vhi int, shards [][]byte) (uint64, error) {
	var iter uint64
	covered := 0
	for i, p := range shards {
		w, err := ckpt.DecodeU64s(p)
		if err != nil {
			return 0, fmt.Errorf("pagerank: shard %d: %w", i, err)
		}
		if len(w) < 3 || uint64(len(w)-3) != w[2] {
			return 0, fmt.Errorf("pagerank: shard %d: malformed payload (%d words, count %d)", i, len(w), w[2])
		}
		if i == 0 {
			iter = w[0]
		} else if w[0] != iter {
			return 0, fmt.Errorf("pagerank: shard %d saved iter %d, shard 0 saved iter %d (inconsistent cut)", i, w[0], iter)
		}
		lo := int(w[1])
		for j, v := range w[3:] {
			if g := lo + j; g >= vlo && g < vhi {
				rank.Store(uint64(g), v)
				covered++
			}
		}
	}
	if covered != vhi-vlo {
		return 0, fmt.Errorf("pagerank: restore covers %d of %d owned vertices", covered, vhi-vlo)
	}
	return iter, nil
}

// Reference computes the same fixed-point PageRank sequentially; Run
// must match it bit-for-bit.
func Reference(g *graph.Graph, iters int) []uint64 {
	inOff, slotOf := g.InSlots()
	rank := make([]uint64, g.N)
	in := make([]uint64, g.E())
	for v := range rank {
		rank[v] = Scale
	}
	for it := 0; it < iters; it++ {
		for u := 0; u < g.N; u++ {
			d := g.Deg(u)
			if d == 0 {
				continue
			}
			contrib := mulScale(rank[u], Damping) / uint64(d)
			for e := g.Off[u]; e < g.Off[u+1]; e++ {
				in[slotOf[e]] = contrib
			}
		}
		for v := 0; v < g.N; v++ {
			acc := uint64(Scale - Damping)
			for s := inOff[v]; s < inOff[v+1]; s++ {
				acc += in[s]
			}
			rank[v] = acc
		}
	}
	return rank
}

// mulScale multiplies two Q.32 fixed-point numbers.
func mulScale(a, b uint64) uint64 {
	hiA, loA := a>>32, a&0xffffffff
	hiB, loB := b>>32, b&0xffffffff
	return hiA*hiB<<32 + hiA*loB + loA*hiB + loA*loB>>32
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
