package histogram_test

import (
	"testing"

	"gravel/internal/apps/histogram"
	"gravel/internal/models"
)

// TestElasticRestoreBitIdentical pins the single-cut checkpoint: a run
// saving after the counting phase, and a fresh run resumed from that
// cut (which must skip the counting phase entirely), both reproduce the
// undisturbed run's results bit for bit.
func TestElasticRestoreBitIdentical(t *testing.T) {
	cfg := histogram.Config{SamplesPerNode: 5000, Buckets: 512, Seed: 9}

	refSys := models.New("gravel", 1, nil)
	ref := histogram.RunShard(refSys, cfg, 0, nil)
	refSys.Close()
	if ref.Err != nil {
		t.Fatal(ref.Err)
	}

	var cut []byte
	saves := 0
	saveSys := models.New("gravel", 1, nil)
	r, err := histogram.RunElastic(saveSys, cfg, 0, nil, histogram.ElasticOpts{
		Save: func(step uint64, data []byte) error {
			saves++
			cut = append([]byte(nil), data...)
			return nil
		},
	})
	saveSys.Close()
	if err != nil {
		t.Fatal(err)
	}
	if saves != 1 {
		t.Fatalf("saved %d cuts, want exactly 1", saves)
	}
	if r.Err != nil || r.Check != ref.Check {
		t.Fatalf("saving run diverged from plain run: %+v vs %+v", r, ref)
	}

	sys := models.New("gravel", 1, nil)
	got, err := histogram.RunElastic(sys, cfg, 0, nil, histogram.ElasticOpts{Resume: [][]byte{cut}})
	sys.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got.Err != nil || got.Check != ref.Check || got.Samples != ref.Samples ||
		got.MinBucket != ref.MinBucket || got.MaxBucket != ref.MaxBucket {
		t.Fatalf("resumed run diverged: %+v vs %+v", got, ref)
	}
}
