// Package histogram implements a distributed histogram — the
// registry's collectives showcase. Phase one is classic Gravel:
// every node hashes its deterministic sample stream into a
// block-partitioned bucket table with fine-grain remote increments.
// Phase two summarizes the table two ways at once: on the device with
// rt.DeviceColl (barrier, then sum/min/max all-reduces built from
// PutSignal/WaitUntil — no host round trip), and on the host with
// rt.Collectives team reductions (the low and high halves of the
// cluster each fold their bucket extremes over the coordinator).
// Both answers are derived from the same table, so they cross-check
// each other and the run self-verifies.
package histogram

import (
	"fmt"

	"gravel/internal/ckpt"
	"gravel/internal/graph"
	"gravel/internal/pgas"
	"gravel/internal/rt"
)

// Config parameterizes a histogram run.
type Config struct {
	// SamplesPerNode is each node's sample count.
	SamplesPerNode int
	// Buckets is the table size (block-partitioned across nodes).
	Buckets int
	// Seed drives the deterministic sample stream.
	Seed uint64
}

// Result reports a histogram run.
type Result struct {
	Ns float64
	// Samples is the cluster-wide sample count as computed by the
	// device all-reduce (must equal nodes*SamplesPerNode).
	Samples uint64
	// MinBucket and MaxBucket are the cluster-wide bucket-count
	// extremes, computed on the device.
	MinBucket, MaxBucket uint64
	// Check is the additive shard checksum.
	Check uint64
	// Err reports a failed self-verification.
	Err error
}

// Run executes the histogram on every node of the system.
func Run(sys rt.System, cfg Config) Result {
	return run(sys, cfg, -1, nil)
}

// RunShard executes one node's shard of a distributed run; the host
// team reductions go through coll.
func RunShard(sys rt.System, cfg Config, node int, coll rt.Collectives) Result {
	return run(sys, cfg, node, coll)
}

// ElasticOpts configures a checkpoint-aware shard run (RunElastic).
type ElasticOpts struct {
	// Resume holds every shard's payload from the restore point. Nil
	// means a cold start. Payloads are keyed by the saving epoch's
	// bucket partition, so a restore point is only valid at the node
	// count that saved it.
	Resume [][]byte
	// Every is accepted for CkptRun symmetry but unused: the histogram
	// has exactly one cut, after the counting phase.
	Every int
	// Save, when non-nil, persists this shard's payload at the single
	// checkpoint — the quiescent barrier after "hist-count", when every
	// increment has been applied and the summary phase has not started.
	Save func(step uint64, data []byte) error
}

// RunElastic executes the given node's shard with checkpoint/restore.
// The app's only mutable distributed state is the bucket table, fully
// built by phase one, so the single cut saves each shard's owned bucket
// range; a restored run skips the counting phase and goes straight to
// the collective summaries (whose symmetric scratch restarts cleanly in
// a fresh epoch). Results are bit-identical to an undisturbed RunShard.
func RunElastic(sys rt.System, cfg Config, only int, coll rt.Collectives, opt ElasticOpts) (Result, error) {
	return runElastic(sys, cfg, only, coll, opt)
}

// bucketOf is the deterministic sample stream: sample s of node n.
func bucketOf(cfg Config, node, s int) uint64 {
	return graph.Hash64(cfg.Seed ^ uint64(node)<<40 ^ uint64(s)) % uint64(cfg.Buckets)
}

// teams splits the cluster into a low and a high half for the host
// team reductions; a cluster too small to split uses the world team
// for both (team collectives degrade gracefully to world ones).
func teams(nodes int) (low, high rt.Team) {
	if nodes < 2 {
		return rt.WorldTeam, rt.WorldTeam
	}
	half := nodes / 2
	lo := make([]int, half)
	hi := make([]int, nodes-half)
	for i := 0; i < half; i++ {
		lo[i] = i
	}
	for i := half; i < nodes; i++ {
		hi[i-half] = i
	}
	return rt.TeamOf(lo...), rt.TeamOf(hi...)
}

func run(sys rt.System, cfg Config, only int, coll rt.Collectives) Result {
	r, err := runElastic(sys, cfg, only, coll, ElasticOpts{})
	if err != nil {
		// Impossible without a resume payload or a Save hook.
		panic(err)
	}
	return r
}

func runElastic(sys rt.System, cfg Config, only int, coll rt.Collectives, opt ElasticOpts) (Result, error) {
	nodes := sys.Nodes()

	counts := sys.Space().Alloc(cfg.Buckets)
	dres := sys.Space().SymAlloc(3) // device results: samples, min, max (one copy per node)
	dc := rt.NewDeviceColl(sys.Space(), nodes, rt.WorldTeam)
	if err := rt.VerifySymmetric(coll, sys.Space(), "hist"); err != nil {
		panic(err)
	}

	elastic := opt.Save != nil || len(opt.Resume) > 0
	if elastic && only < 0 {
		return Result{}, fmt.Errorf("histogram: elastic runs are per-shard (full runs have nothing to restore)")
	}
	restored := false
	if len(opt.Resume) > 0 {
		if err := restoreCounts(counts, only, opt.Resume); err != nil {
			return Result{}, err
		}
		restored = true
	}
	if elastic {
		// Zero-work sync step: its barrier guarantees every worker has
		// allocated (and restored) before any worker's first increment
		// or collective signal can arrive.
		sys.Step("hist-start-sync", make([]int, nodes), 0, func(rt.Ctx) {})
	}

	grid := make([]int, nodes)
	for i := 0; i < nodes; i++ {
		if only >= 0 && i != only {
			continue
		}
		grid[i] = cfg.SamplesPerNode
	}

	t0 := sys.VirtualTimeNs()

	// Phase 1: fine-grain remote increments into the bucket table. A
	// restored run's table was rebuilt from the cut; re-counting would
	// double every bucket.
	if !restored {
		sys.Step("hist-count", grid, 0, func(c rt.Ctx) {
			wg := c.Group()
			me := c.Node()
			idx := make([]uint64, wg.Size)
			one := make([]uint64, wg.Size)
			wg.VectorN(3, func(l int) {
				idx[l] = bucketOf(cfg, me, wg.GlobalID(l))
				one[l] = 1
			})
			c.Inc(counts, idx, one, nil)
		})
		if opt.Save != nil {
			if err := opt.Save(1, encodeCounts(counts, only)); err != nil {
				return Result{}, err
			}
			// Quiet save window: no worker may enter the summary phase
			// until every worker has encoded its payload.
			sys.Step("hist-ckpt-sync", make([]int, nodes), 0, func(rt.Ctx) {})
		}
	}

	// Phase 2: device collectives — one work-group per node. Each node
	// folds its owned bucket range locally, then the team barrier and
	// three all-reduces (sum of samples, min and max bucket count) run
	// entirely on the fabric; every node stores the agreed results in
	// its own symmetric result cells.
	for i := range grid {
		grid[i] = 0
		if only < 0 || i == only {
			grid[i] = 1
		}
	}
	sys.Step("hist-coll", grid, 0, func(c rt.Ctx) {
		me := c.Node()
		lo, hi := counts.LocalRange(me)
		localSum, localMin, localMax := uint64(0), rt.OpMin.Identity(), rt.OpMax.Identity()
		for b := lo; b < hi; b++ {
			v := counts.Load(uint64(b))
			localSum += v
			localMin = rt.OpMin.Combine(localMin, v)
			localMax = rt.OpMax.Combine(localMax, v)
		}
		c.Group().ChargeInstr(hi - lo)

		dc.Barrier(c)
		total := dc.AllReduce(c, rt.OpSum, localSum)
		mn := dc.AllReduce(c, rt.OpMin, localMin)
		mx := dc.AllReduce(c, rt.OpMax, localMax)
		dres.Store(dres.SymIndex(me, 0), total)
		dres.Store(dres.SymIndex(me, 1), mn)
		dres.Store(dres.SymIndex(me, 2), mx)
	})
	ns := sys.VirtualTimeNs() - t0

	// Host team reductions: each half of the cluster folds its members'
	// bucket extremes over the coordinator. The single-process run owns
	// every member, so it folds the members' values itself and the nil
	// Collectives identity returns them unchanged — bit-identical to
	// the distributed fold.
	lowT, highT := teams(nodes)
	perNodeMin := func(n int) uint64 {
		lo, hi := counts.LocalRange(n)
		m := rt.OpMin.Identity()
		for b := lo; b < hi; b++ {
			m = rt.OpMin.Combine(m, counts.Load(uint64(b)))
		}
		return m
	}
	teamMin := func(key string, team rt.Team) uint64 {
		contrib := rt.OpMin.Identity()
		if only < 0 {
			for _, m := range team.Members(nodes) {
				contrib = rt.OpMin.Combine(contrib, perNodeMin(m))
			}
		} else {
			contrib = perNodeMin(only)
		}
		v, err := rt.AllReduce(coll, key, team, rt.OpMin, contrib)
		if err != nil {
			panic(err)
		}
		return v
	}
	var lowMin, highMin uint64
	handled := func(team rt.Team) bool { return only < 0 || team.Contains(only) }
	if handled(lowT) {
		lowMin = teamMin("hist:low:min", lowT)
	}
	if handled(highT) {
		highMin = teamMin("hist:high:min", highT)
	}

	// Every node holds the same device results; read back this shard's.
	probe := 0
	if only >= 0 {
		probe = only
	}
	res := Result{
		Ns:        ns,
		Samples:   dres.Load(dres.SymIndex(probe, 0)),
		MinBucket: dres.Load(dres.SymIndex(probe, 1)),
		MaxBucket: dres.Load(dres.SymIndex(probe, 2)),
	}

	// Additive checksum: each shard contributes its owned bucket range
	// plus a per-node mix of the (cluster-agreed) device results; the
	// lowest-ranked member of each team additionally folds in its
	// team's host-reduced minimum. Shard checks therefore sum to the
	// full-run check.
	check := uint64(0)
	addNode := func(n int) {
		lo, hi := counts.LocalRange(n)
		for b := lo; b < hi; b++ {
			check += counts.Load(uint64(b))
		}
		check += mix(dres.Load(dres.SymIndex(n, 0))^dres.Load(dres.SymIndex(n, 1))^dres.Load(dres.SymIndex(n, 2))^uint64(n))
		if lowT.Members(nodes)[0] == n {
			check += mix(lowMin ^ 0x10)
		}
		if highT.Members(nodes)[0] == n {
			check += mix(highMin ^ 0x20)
		}
	}
	if only < 0 {
		for n := 0; n < nodes; n++ {
			addNode(n)
		}
	} else {
		addNode(only)
	}
	res.Check = check

	// Self-verification: the device sum must equal the sample count,
	// and min <= max with min matching the host team folds' floor.
	want := uint64(nodes) * uint64(cfg.SamplesPerNode)
	if res.Samples != want {
		res.Err = fmt.Errorf("histogram: device all-reduce sum %d != samples %d", res.Samples, want)
	} else if res.MinBucket > res.MaxBucket {
		res.Err = fmt.Errorf("histogram: device min %d > max %d", res.MinBucket, res.MaxBucket)
	}
	return res, nil
}

// encodeCounts builds node's checkpoint payload: the cut step, the
// owned bucket range, and its counts.
func encodeCounts(counts *pgas.Array, node int) []byte {
	lo, hi := counts.LocalRange(node)
	p := ckpt.EncodeU64s([]uint64{1, uint64(lo), uint64(hi - lo)}, hi-lo)
	for _, v := range counts.Local(node) {
		p = ckpt.AppendU64(p, v)
	}
	return p
}

// restoreCounts replays the node's own saved bucket range. Remote
// increments route to the bucket owner, so each shard's replica holds
// exactly its owned range's counts. Same node count only.
func restoreCounts(counts *pgas.Array, node int, shards [][]byte) error {
	if node >= len(shards) {
		return fmt.Errorf("histogram: restore has %d shards, node %d needs its own", len(shards), node)
	}
	w, err := ckpt.DecodeU64s(shards[node])
	if err != nil {
		return fmt.Errorf("histogram: shard %d: %w", node, err)
	}
	if len(w) < 3 || uint64(len(w)-3) != w[2] {
		return fmt.Errorf("histogram: shard %d: malformed payload (%d words, count %d)", node, len(w), w[2])
	}
	lo, hi := counts.LocalRange(node)
	if int(w[1]) != lo || int(w[2]) != hi-lo {
		return fmt.Errorf("histogram: shard %d saved range [%d,+%d), own range is [%d,+%d) — node count changed?",
			node, w[1], w[2], lo, hi-lo)
	}
	for j, v := range w[3:] {
		if v != 0 {
			counts.Store(uint64(lo+j), v)
		}
	}
	return nil
}

// mix decorrelates checksum contributions (splitmix-style finalizer).
func mix(x uint64) uint64 { return graph.Hash64(x) }

// ExpectedCheck computes the full-run Check from a host-side reference
// histogram, for distributed total verification.
func ExpectedCheck(cfg Config, nodes int) uint64 {
	ref := make([]uint64, cfg.Buckets)
	for n := 0; n < nodes; n++ {
		for s := 0; s < cfg.SamplesPerNode; s++ {
			ref[bucketOf(cfg, n, s)]++
		}
	}
	part := (cfg.Buckets + nodes - 1) / nodes
	rangeOf := func(n int) (int, int) {
		lo := n * part
		hi := lo + part
		if hi > cfg.Buckets {
			hi = cfg.Buckets
		}
		if lo > hi {
			lo = hi
		}
		return lo, hi
	}
	nodeMin := func(n int) uint64 {
		lo, hi := rangeOf(n)
		m := rt.OpMin.Identity()
		for b := lo; b < hi; b++ {
			m = rt.OpMin.Combine(m, ref[b])
		}
		return m
	}
	total := uint64(nodes) * uint64(cfg.SamplesPerNode)
	mn, mx := rt.OpMin.Identity(), rt.OpMax.Identity()
	for n := 0; n < nodes; n++ {
		lo, hi := rangeOf(n)
		for b := lo; b < hi; b++ {
			mn = rt.OpMin.Combine(mn, ref[b])
			mx = rt.OpMax.Combine(mx, ref[b])
		}
	}
	lowT, highT := teams(nodes)
	fold := func(team rt.Team) uint64 {
		m := rt.OpMin.Identity()
		for _, mem := range team.Members(nodes) {
			m = rt.OpMin.Combine(m, nodeMin(mem))
		}
		return m
	}
	lowMin, highMin := fold(lowT), fold(highT)

	check := uint64(0)
	for n := 0; n < nodes; n++ {
		lo, hi := rangeOf(n)
		for b := lo; b < hi; b++ {
			check += ref[b]
		}
		check += mix(total ^ mn ^ mx ^ uint64(n))
		if lowT.Members(nodes)[0] == n {
			check += mix(lowMin ^ 0x10)
		}
		if highT.Members(nodes)[0] == n {
			check += mix(highMin ^ 0x20)
		}
	}
	return check
}
