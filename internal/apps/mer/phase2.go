// Phase 2 of Meraculous [33]: traverse the distributed k-mer hash table
// built by phase 1, stitching uniquely-extendable (UU) k-mers into
// contigs. The paper leaves this phase as future work because of its
// branch divergence (§6); here it is built on the runtime's active
// message request/reply capability (rt.System.HostAM): the GPU seeds
// one walker per contig start, and each walker advances through the
// distributed table as a chain of active messages — lookup request to
// the next k-mer's owner, reply to the walker's home node — all
// resolved within one Step's quiescence cascade, exactly the
// communication structure of the UPC implementation the paper cites.
package mer

import "gravel/internal/rt"

// Phase2Result reports the traversal.
type Phase2Result struct {
	Ns float64
	// Contigs is the number of maximal UU chains found.
	Contigs int64
	// TotalLen is the summed length (in k-mers) of all contigs.
	TotalLen int64
	// MaxLen is the longest contig.
	MaxLen int64
	// UU is the number of uniquely-extendable k-mers in the table.
	UU int64
}

// walker is one in-flight contig traversal, owned by the node that
// found its seed; only that node's network thread mutates it.
type walker struct {
	cur     uint64 // last confirmed k-mer of the contig
	pending uint64 // k-mer we are waiting on
	length  int64
}

// phase2State is shared across the AM handlers; element i is only
// touched by node i's network thread (or, for seeding, node i's GPU
// during the seed kernel, which cannot overlap the handlers that read
// it because walkers are registered before any request is offloaded).
type phase2State struct {
	notStart [][]bool // per node, per table slot
	walkers  [][]walker
	contigs  []int64
	totalLen []int64
	maxLen   []int64
}

// successor returns the k-mer reached by extending right with base rb.
func successor(kmer uint64, rb uint64, mask uint64) uint64 {
	return (kmer<<2 | rb) & mask
}

// firstBase returns kmer's leftmost base.
func firstBase(kmer uint64, k int) uint64 {
	return kmer >> (2 * (k - 1))
}

// RunPhase2 traverses the tables built by a prior Run on the same
// system. The AM handlers used here must be registered before the
// first Step of the run, so callers use RunFull; this function is
// internal glue exposed for tests via RunFull.
func runPhase2(sys rt.System, cfg Config, tables []*Table, mark, walkReq, walkRep uint8, st *phase2State, only int) Phase2Result {
	nodes := sys.Nodes()
	kmerMask := uint64(1)<<(2*cfg.K) - 1
	k := cfg.K

	grid := make([]int, nodes)
	for i := range grid {
		if only < 0 || i == only {
			grid[i] = tables[i].Slots()
		}
	}

	t0 := sys.VirtualTimeNs()

	// Step 1: every UU k-mer marks its successor as not-a-start (the
	// successor's chain continues from here, so it cannot begin one).
	sys.Step("mer-mark", grid, 0, func(c rt.Ctx) {
		wg := c.Group()
		node := c.Node()
		t := tables[node]
		dst := make([]int, wg.Size)
		a := make([]uint64, wg.Size)
		b := make([]uint64, wg.Size)
		active := make([]bool, wg.Size)
		wg.VectorN(4, func(l int) {
			slot := wg.GlobalID(l)
			kmer, _, ext, present := t.At(slot)
			active[l] = false
			if !present || !IsUU(ext) {
				return
			}
			next := successor(kmer, baseOf(ext&0xf), kmerMask)
			active[l] = true
			dst[l] = Owner(next, nodes)
			a[l] = next
			b[l] = firstBase(kmer, k)
		})
		wg.ChargeMemDivergence(wg.ActiveLaneCount())
		c.AM(mark, dst, a, b, active)
	})

	// Step 2: seed one walker per remaining start and chase the chain
	// via request/reply active messages; the Step's quiescence cascade
	// runs every walk to completion.
	sys.Step("mer-walk", grid, 0, func(c rt.Ctx) {
		wg := c.Group()
		node := c.Node()
		t := tables[node]
		dst := make([]int, wg.Size)
		a := make([]uint64, wg.Size)
		b := make([]uint64, wg.Size)
		active := make([]bool, wg.Size)
		wg.VectorN(6, func(l int) {
			slot := wg.GlobalID(l)
			kmer, _, ext, present := t.At(slot)
			active[l] = false
			if !present || !IsUU(ext) || st.notStart[node][slot] {
				return
			}
			next := successor(kmer, baseOf(ext&0xf), kmerMask)
			st.walkers[node][slot] = walker{cur: kmer, pending: next, length: 1}
			active[l] = true
			dst[l] = Owner(next, nodes)
			a[l] = next
			// walker reference: home node and slot, plus the current
			// k-mer's first base for the continuity check.
			b[l] = uint64(node)<<40 | uint64(slot)<<2 | firstBase(kmer, k)
		})
		wg.ChargeMemDivergence(wg.ActiveLaneCount())
		c.AM(walkReq, dst, a, b, active)
	})

	ns := sys.VirtualTimeNs() - t0

	var res Phase2Result
	res.Ns = ns
	// In a distributed run only the hosted node's state is populated in
	// this process (walkers complete on their home node; tables hold only
	// owned k-mers), so Contigs, TotalLen, and UU sum across shards to
	// the full-run values. MaxLen is the shard-local maximum.
	for i := 0; i < nodes; i++ {
		if only >= 0 && i != only {
			continue
		}
		res.Contigs += st.contigs[i]
		res.TotalLen += st.totalLen[i]
		if st.maxLen[i] > res.MaxLen {
			res.MaxLen = st.maxLen[i]
		}
		for s := 0; s < tables[i].Slots(); s++ {
			if _, _, ext, ok := tables[i].At(s); ok && IsUU(ext) {
				res.UU++
			}
		}
	}
	return res
}

// RunFull executes phase 1 (table construction) and phase 2 (contig
// traversal) on the given system.
func RunFull(sys rt.System, cfg Config) (Result, Phase2Result) {
	return runFull(sys, cfg, -1)
}

// RunFullShard executes both phases for one node of a distributed run.
// The walk's request/reply active messages travel the fabric between
// processes and each walker completes on its home node, so the shard
// results sum across processes to the full-run values.
func RunFullShard(sys rt.System, cfg Config, node int) (Result, Phase2Result) {
	return runFull(sys, cfg, node)
}

func runFull(sys rt.System, cfg Config, only int) (Result, Phase2Result) {
	nodes := sys.Nodes()
	kmerMask := uint64(1)<<(2*cfg.K) - 1
	k := cfg.K

	// Tables and the phase-2 state are fully allocated before phase 1
	// launches. The AM handlers below close over them and, in a
	// multi-process run, a faster peer's mark/walk messages can arrive
	// the moment that peer clears the preceding step's global barrier —
	// while this process is still in host code. Allocating before our
	// own first Step puts every allocation on the safe side of that
	// barrier.
	tables := buildTables(&cfg, nodes)
	st := &phase2State{
		notStart: make([][]bool, nodes),
		walkers:  make([][]walker, nodes),
		contigs:  make([]int64, nodes),
		totalLen: make([]int64, nodes),
		maxLen:   make([]int64, nodes),
	}
	for i := range tables {
		st.notStart[i] = make([]bool, tables[i].Slots())
		// One walker slot per table slot: fixed addresses, so the seed
		// kernel's writes and later reply-handler updates never race on
		// a growing slice.
		st.walkers[i] = make([]walker, tables[i].Slots())
	}

	// mark: a=successor k-mer, b=predecessor's first base. If the
	// successor is present, UU, and agrees that its unique left
	// extension is the predecessor's first base, it is not a chain
	// start.
	mark := sys.RegisterAM(func(node int, a, b uint64) {
		t := tables[node]
		s := t.slotFor(a, false)
		if s < 0 {
			return
		}
		_, _, ext, _ := t.At(s)
		if IsUU(ext) && baseOf(ext>>4) == b {
			st.notStart[node][s] = true
		}
	})

	// walkRep: a=walker index (home node implicit), b=0 for "chain
	// ends", else 1<<3 | next right base.
	var walkReq uint8
	walkRep := sys.RegisterAM(func(node int, a, b uint64) {
		w := &st.walkers[node][a]
		if b == 0 {
			st.contigs[node]++
			st.totalLen[node] += w.length
			if w.length > st.maxLen[node] {
				st.maxLen[node] = w.length
			}
			return
		}
		w.cur = w.pending
		w.length++
		next := successor(w.cur, b&3, kmerMask)
		w.pending = next
		sys.HostAM(node, walkReq, Owner(next, sys.Nodes()), next,
			uint64(node)<<40|a<<2|firstBase(w.cur, k))
	})

	// walkReq: a=k-mer to look up, b=walkerNode<<40|walkerIdx<<2|prevFirstBase.
	walkReq = sys.RegisterAM(func(node int, a, b uint64) {
		home := int(b >> 40)
		idx := (b >> 2) & ((1 << 38) - 1)
		prevBase := b & 3
		t := tables[node]
		s := t.slotFor(a, false)
		reply := uint64(0)
		if s >= 0 {
			_, _, ext, _ := t.At(s)
			// Continue only if the looked-up k-mer is UU and its unique
			// left extension matches the requester (mutual agreement).
			if IsUU(ext) && baseOf(ext>>4) == prevBase {
				reply = 1<<3 | baseOf(ext&0xf)
			}
		}
		sys.HostAM(node, walkRep, home, idx, reply)
	})

	res1 := runWithTables(sys, cfg, only, tables)
	res2 := runPhase2(sys, cfg, tables, mark, walkReq, walkRep, st, only)
	return res1, res2
}

// ReferencePhase2 computes the same contig statistics sequentially from
// the union of all reads.
func ReferencePhase2(cfg Config, nodes int) Phase2Result {
	genome := Genome(cfg.GenomeLen, cfg.Seed)
	kmersPerRead := cfg.ReadLen - cfg.K + 1
	kmerMask := uint64(1)<<(2*cfg.K) - 1
	k := cfg.K

	// Build the k-mer -> extension-mask map exactly as phase 1 does.
	ext := make(map[uint64]uint8)
	for node := 0; node < nodes; node++ {
		for r := 0; r < cfg.ReadsPerNode; r++ {
			start := readStart(&cfg, node, r)
			var km uint64
			for j := 0; j < cfg.K-1; j++ {
				km = km<<2 | uint64(readBase(&cfg, genome, node, r, start, j))
			}
			for i := 0; i < kmersPerRead; i++ {
				km = (km<<2 | uint64(readBase(&cfg, genome, node, r, start, cfg.K-1+i))) & kmerMask
				var e uint8
				if i > 0 {
					e |= 1 << (4 + readBase(&cfg, genome, node, r, start, i-1))
				}
				if i < kmersPerRead-1 {
					e |= 1 << readBase(&cfg, genome, node, r, start, cfg.K+i)
				}
				ext[km] |= e
			}
		}
	}

	var res Phase2Result
	notStart := make(map[uint64]bool)
	for km, e := range ext {
		if !IsUU(e) {
			continue
		}
		res.UU++
		next := successor(km, baseOf(e&0xf), kmerMask)
		if ne, ok := ext[next]; ok && IsUU(ne) && baseOf(ne>>4) == firstBase(km, k) {
			notStart[next] = true
		}
	}
	for km, e := range ext {
		if !IsUU(e) || notStart[km] {
			continue
		}
		// Walk the chain.
		length := int64(1)
		cur := km
		ce := e
		for {
			next := successor(cur, baseOf(ce&0xf), kmerMask)
			ne, ok := ext[next]
			if !ok || !IsUU(ne) || baseOf(ne>>4) != firstBase(cur, k) {
				break
			}
			cur = next
			ce = ne
			length++
		}
		res.Contigs++
		res.TotalLen += length
		if length > res.MaxLen {
			res.MaxLen = length
		}
	}
	return res
}
