package mer_test

import (
	"testing"

	"gravel/internal/apps/mer"
	"gravel/internal/core"
)

func TestPhase2MatchesReference(t *testing.T) {
	cfg := mer.Config{GenomeLen: 20000, ReadsPerNode: 400, ReadLen: 80, K: 19, Seed: 4}
	t.Run("clean", func(t *testing.T) { testPhase2(t, cfg) })
	cfg.ErrorPerMille = 10
	t.Run("errors", func(t *testing.T) { testPhase2(t, cfg) })
}

func testPhase2(t *testing.T, cfg mer.Config) {
	for _, nodes := range []int{1, 2, 4} {
		want := mer.ReferencePhase2(cfg, nodes)
		cl := core.New(core.Config{Nodes: nodes})
		r1, r2 := mer.RunFull(cl, cfg)
		cl.Close()
		if r1.Inserted != r1.Expected {
			t.Fatalf("nodes=%d: phase 1 broken", nodes)
		}
		if r2.UU != want.UU || r2.Contigs != want.Contigs || r2.TotalLen != want.TotalLen || r2.MaxLen != want.MaxLen {
			t.Errorf("nodes=%d: got {UU:%d contigs:%d total:%d max:%d}, want {UU:%d contigs:%d total:%d max:%d}",
				nodes, r2.UU, r2.Contigs, r2.TotalLen, r2.MaxLen,
				want.UU, want.Contigs, want.TotalLen, want.MaxLen)
		}
		if r2.Contigs == 0 || r2.TotalLen < r2.Contigs {
			t.Errorf("nodes=%d: degenerate traversal %+v", nodes, r2)
		}
		if cfg.ErrorPerMille > 0 && r2.Contigs < 10 {
			t.Errorf("nodes=%d: errors should fragment the assembly, got %d contigs", nodes, r2.Contigs)
		}
	}
}
