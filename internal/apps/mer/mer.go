// Package mer implements phase 1 of the paper's Meraculous genome
// assembly workload (§6 [33]): constructing a distributed k-mer hash
// table. Every k-mer extracted from a read is sent as an active message
// to the node that owns its hash bucket, whose network thread inserts it
// into a node-local open-addressing table. At 8 nodes, 7/8 of k-mers
// hash to a remote node (Table 5: 87.5 % remote).
//
// The paper uses the 3.6 GB human-chr14 read set; this reproduction
// generates deterministic synthetic reads from a random reference genome
// (DESIGN.md §2), which preserves the communication pattern exactly.
package mer

import (
	"gravel/internal/graph"
	"gravel/internal/rt"
)

// Config parameterizes a mer run.
type Config struct {
	// GenomeLen is the reference genome length in bases.
	GenomeLen int
	// ReadsPerNode and ReadLen shape the synthetic read set.
	ReadsPerNode int
	ReadLen      int
	// K is the k-mer length (≤ 31).
	K    int
	Seed uint64
	// TableSlotsPerNode sizes each node's open-addressing table; 0 means
	// 4x the expected unique k-mer load.
	TableSlotsPerNode int
	// ErrorPerMille injects deterministic per-base substitution errors
	// into reads (real read sets have them; they break UU chains into
	// realistic contig-length distributions in phase 2).
	ErrorPerMille int
}

// Result reports a mer run.
type Result struct {
	Ns float64
	// Inserted is the total number of k-mer insertions (table count sum).
	Inserted int64
	// Distinct is the number of distinct k-mers stored.
	Distinct int64
	// Expected is the number of k-mers the read set contains.
	Expected int64
	// Tables exposes the per-node hash tables for verification.
	Tables []*Table
}

// Table is one node's open-addressing k-mer table: keys hold kmer+1
// (0 = empty), counts hold multiplicities, exts holds the merged
// neighbor-base masks (left bases in the high nibble, right bases in
// the low nibble — phase 2 traverses k-mers whose masks are UU: exactly
// one bit per nibble). Only the owning node's network thread writes it.
type Table struct {
	keys   []uint64
	counts []int64
	exts   []uint8
	used   int
}

// NewTable creates a table with the given slot count (rounded up to a
// power of two).
func NewTable(slots int) *Table {
	n := 1
	for n < slots {
		n <<= 1
	}
	return &Table{keys: make([]uint64, n), counts: make([]int64, n), exts: make([]uint8, n)}
}

// Insert adds one occurrence of kmer with the given neighbor-base mask,
// linear-probing from its hash. It panics if the table is full (sizing
// bug, not input condition).
func (t *Table) Insert(kmer uint64, ext uint8) {
	s := t.slotFor(kmer, true)
	if t.keys[s] == 0 {
		t.keys[s] = kmer + 1
		t.used++
	}
	t.counts[s]++
	t.exts[s] |= ext
}

// slotFor probes for kmer; with insert set it returns the first empty
// slot when the key is absent, otherwise -1 for absent keys.
func (t *Table) slotFor(kmer uint64, insert bool) int {
	mask := uint64(len(t.keys) - 1)
	h := graph.Hash64(kmer) & mask
	for i := 0; i <= int(mask); i++ {
		s := (h + uint64(i)) & mask
		switch t.keys[s] {
		case 0:
			if insert {
				return int(s)
			}
			return -1
		case kmer + 1:
			return int(s)
		}
	}
	if insert {
		panic("mer: table full")
	}
	return -1
}

// Lookup returns the multiplicity of kmer.
func (t *Table) Lookup(kmer uint64) int64 {
	s := t.slotFor(kmer, false)
	if s < 0 {
		return 0
	}
	return t.counts[s]
}

// Ext returns kmer's merged neighbor-base mask, 0 if absent.
func (t *Table) Ext(kmer uint64) uint8 {
	s := t.slotFor(kmer, false)
	if s < 0 {
		return 0
	}
	return t.exts[s]
}

// Slots returns the table's slot count.
func (t *Table) Slots() int { return len(t.keys) }

// At returns the slot's contents (kmer valid only when present).
func (t *Table) At(slot int) (kmer uint64, count int64, ext uint8, present bool) {
	if t.keys[slot] == 0 {
		return 0, 0, 0, false
	}
	return t.keys[slot] - 1, t.counts[slot], t.exts[slot], true
}

// IsUU reports whether a neighbor mask has exactly one left and one
// right base — the "uniquely extendable" k-mers phase 2 traverses.
func IsUU(ext uint8) bool {
	l, r := ext>>4, ext&0xf
	return l != 0 && l&(l-1) == 0 && r != 0 && r&(r-1) == 0
}

// baseOf returns the base index of a one-hot nibble.
func baseOf(nib uint8) uint64 {
	switch nib {
	case 1:
		return 0
	case 2:
		return 1
	case 4:
		return 2
	default:
		return 3
	}
}

// Genome returns the deterministic reference genome as 2-bit base codes.
func Genome(n int, seed uint64) []byte {
	g := make([]byte, n)
	for i := range g {
		g[i] = byte(graph.Hash64(seed^0xbeef^uint64(i)) & 3)
	}
	return g
}

// readStart returns the genome offset of read (node, r).
func readStart(cfg *Config, node, r int) int {
	span := cfg.GenomeLen - cfg.ReadLen
	return int(graph.Hash64(cfg.Seed^uint64(node)<<32^uint64(r)) % uint64(span))
}

// readBase returns base j of read (node, r) whose genome offset is
// start, with deterministic substitution errors applied.
func readBase(cfg *Config, genome []byte, node, r, start, j int) byte {
	b := genome[start+j]
	if cfg.ErrorPerMille > 0 {
		h := graph.Hash64(cfg.Seed ^ 0xe44 ^ uint64(node)<<40 ^ uint64(r)<<16 ^ uint64(j))
		if int(h%1000) < cfg.ErrorPerMille {
			b = byte((uint64(b) + 1 + (h>>10)%3) & 3)
		}
	}
	return b
}

// Owner returns the node owning a k-mer's bucket.
func Owner(kmer uint64, nodes int) int {
	return int(graph.Hash64(kmer^0x5eed) % uint64(nodes))
}

// Run executes the distributed hash-table construction.
func Run(sys rt.System, cfg Config) Result {
	return run(sys, cfg, -1)
}

// RunShard executes only the given node's reads in a distributed run
// (one process per node). Insertions land on the k-mer owner's process,
// so Inserted and Distinct are counted from the shard's own table and
// sum across shards to the full-run values; Expected is the global
// k-mer count, identical in every process.
func RunShard(sys rt.System, cfg Config, node int) Result {
	return run(sys, cfg, node)
}

// buildTables allocates the per-node tables for a run. RunFull calls
// it before phase 1 so that phase 2's AM handlers can never observe
// unallocated state: in a multi-process run a faster peer's phase 2
// messages may arrive while this process is still in host code, and
// the only safe ordering is allocation before the previous step's
// global barrier.
func buildTables(cfg *Config, nodes int) []*Table {
	kmersPerRead := cfg.ReadLen - cfg.K + 1
	if kmersPerRead <= 0 {
		panic("mer: ReadLen must exceed K")
	}
	slots := cfg.TableSlotsPerNode
	if slots == 0 {
		slots = 4 * cfg.ReadsPerNode * kmersPerRead / nodes
		if slots < 1024 {
			slots = 1024
		}
	}
	tables := make([]*Table, nodes)
	for i := range tables {
		tables[i] = NewTable(slots)
	}
	return tables
}

func run(sys rt.System, cfg Config, only int) Result {
	return runWithTables(sys, cfg, only, buildTables(&cfg, sys.Nodes()))
}

func runWithTables(sys rt.System, cfg Config, only int, tables []*Table) Result {
	nodes := sys.Nodes()
	genome := Genome(cfg.GenomeLen, cfg.Seed)
	kmersPerRead := cfg.ReadLen - cfg.K + 1

	insert := sys.RegisterAM(func(node int, a, b uint64) {
		tables[node].Insert(a, uint8(b))
	})

	grid := make([]int, nodes)
	for i := range grid {
		if only >= 0 && i != only {
			continue
		}
		grid[i] = cfg.ReadsPerNode
	}

	kmerMask := uint64(1)<<(2*cfg.K) - 1

	t0 := sys.VirtualTimeNs()
	// mer uses more scratchpad than the other benchmarks (§7.2): every
	// lane stages its read in LDS while k-mers are extracted, so a
	// 256-WI work-group consumes ReadLen*256 bytes.
	scratch := cfg.ReadLen*256 + 64
	sys.Step("mer-build", grid, scratch, func(c rt.Ctx) {
		wg := c.Group()
		counts := make([]int, wg.Size)
		cur := make([]uint64, wg.Size) // rolling k-mer per lane
		dst := make([]int, wg.Size)
		a := make([]uint64, wg.Size)
		b := make([]uint64, wg.Size)
		node := c.Node()

		// Prime each lane's rolling k-mer with the first K-1 bases.
		wg.VectorN(cfg.K, func(l int) {
			r := wg.GlobalID(l)
			start := readStart(&cfg, node, r)
			var km uint64
			for j := 0; j < cfg.K-1; j++ {
				km = km<<2 | uint64(readBase(&cfg, genome, node, r, start, j))
			}
			cur[l] = km
			counts[l] = kmersPerRead
		})
		wg.PredicatedLoop(counts, 6, func(i int, active []bool) {
			wg.VectorMasked(3, active, func(l int) {
				r := wg.GlobalID(l)
				start := readStart(&cfg, node, r)
				cur[l] = (cur[l]<<2 | uint64(readBase(&cfg, genome, node, r, start, cfg.K-1+i))) & kmerMask
				dst[l] = Owner(cur[l], nodes)
				a[l] = cur[l]
				// Neighbor-base mask: left neighbor exists unless this
				// is the read's first k-mer; right neighbor unless last.
				var ext uint8
				if i > 0 {
					ext |= 1 << (4 + readBase(&cfg, genome, node, r, start, i-1))
				}
				if i < kmersPerRead-1 {
					ext |= 1 << readBase(&cfg, genome, node, r, start, cfg.K+i)
				}
				b[l] = uint64(ext)
			})
			c.AM(insert, dst, a, b, active)
		})
	})
	ns := sys.VirtualTimeNs() - t0

	var inserted, distinct int64
	for i, t := range tables {
		// In a distributed run only the hosted node's table is populated
		// in this process; count just it, so shard results sum cleanly.
		if only >= 0 && i != only {
			continue
		}
		for s, k := range t.keys {
			if k != 0 {
				distinct++
				inserted += t.counts[s]
			}
		}
	}
	return Result{
		Ns:       ns,
		Inserted: inserted,
		Distinct: distinct,
		Expected: int64(nodes) * int64(cfg.ReadsPerNode) * int64(kmersPerRead),
		Tables:   tables,
	}
}

// ReferenceCounts builds the same k-mer multiset sequentially for
// verification.
func ReferenceCounts(cfg Config, nodes int) map[uint64]int64 {
	genome := Genome(cfg.GenomeLen, cfg.Seed)
	kmersPerRead := cfg.ReadLen - cfg.K + 1
	kmerMask := uint64(1)<<(2*cfg.K) - 1
	out := make(map[uint64]int64)
	for node := 0; node < nodes; node++ {
		for r := 0; r < cfg.ReadsPerNode; r++ {
			start := readStart(&cfg, node, r)
			var km uint64
			for j := 0; j < cfg.K-1; j++ {
				km = km<<2 | uint64(readBase(&cfg, genome, node, r, start, j))
			}
			for i := 0; i < kmersPerRead; i++ {
				km = (km<<2 | uint64(readBase(&cfg, genome, node, r, start, cfg.K-1+i))) & kmerMask
				out[km]++
			}
		}
	}
	return out
}
