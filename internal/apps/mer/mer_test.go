package mer_test

import (
	"testing"

	"gravel/internal/apps/mer"
	"gravel/internal/core"
)

func TestMerMatchesReference(t *testing.T) {
	cfg := mer.Config{GenomeLen: 20000, ReadsPerNode: 300, ReadLen: 80, K: 19, Seed: 4}
	for _, nodes := range []int{1, 2, 4} {
		ref := mer.ReferenceCounts(cfg, nodes)
		cl := core.New(core.Config{Nodes: nodes})
		res := mer.Run(cl, cfg)
		cl.Close()
		if res.Inserted != res.Expected {
			t.Errorf("nodes=%d: inserted %d, expected %d", nodes, res.Inserted, res.Expected)
		}
		if res.Distinct != int64(len(ref)) {
			t.Errorf("nodes=%d: distinct %d, reference %d", nodes, res.Distinct, len(ref))
		}
		// Every reference k-mer must be found at its owner with the
		// right multiplicity.
		for km, n := range ref {
			owner := mer.Owner(km, nodes)
			if got := res.Tables[owner].Lookup(km); got != n {
				t.Errorf("nodes=%d: kmer %x count %d, want %d", nodes, km, got, n)
				break
			}
		}
	}
}

func TestTableProbing(t *testing.T) {
	tb := mer.NewTable(16)
	for i := uint64(0); i < 10; i++ {
		tb.Insert(i*1024, 0x12)
		tb.Insert(i*1024, 0x21)
	}
	for i := uint64(0); i < 10; i++ {
		if got := tb.Lookup(i * 1024); got != 2 {
			t.Fatalf("Lookup(%d) = %d, want 2", i*1024, got)
		}
	}
	if tb.Lookup(999999) != 0 {
		t.Fatalf("lookup of absent k-mer should be 0")
	}
	if got := tb.Ext(1024); got != 0x33 {
		t.Fatalf("extension masks not merged: %#x", got)
	}
	if tb.Ext(999999) != 0 {
		t.Fatalf("absent k-mer should have empty mask")
	}
}

func TestMerRemoteFraction(t *testing.T) {
	cl := core.New(core.Config{Nodes: 8})
	defer cl.Close()
	mer.Run(cl, mer.Config{GenomeLen: 20000, ReadsPerNode: 200, ReadLen: 60, K: 15, Seed: 8})
	f := cl.NetStats().RemoteFrac()
	if f < 0.82 || f > 0.93 {
		t.Errorf("remote frac = %.3f, want ≈ 0.875", f)
	}
}
