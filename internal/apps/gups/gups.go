// Package gups implements the GUPS (giga-updates per second)
// micro-benchmark of §3 [24]: a distributed table A is atomically
// incremented at random offsets. Every update is an 8-byte fine-grain
// atomic routed through the owner's network thread, making GUPS the
// paper's purest stress test of message aggregation.
//
// The package also provides GUPS-mod (§8.2): a variant where each
// work-item performs a random number of updates and 95 % of work-items
// perform none, used to evaluate diverged WG-level operations.
package gups

import (
	"gravel/internal/graph"
	"gravel/internal/rt"
)

// Config parameterizes a GUPS run.
type Config struct {
	// TableSize is the global element count of the distributed table A.
	TableSize int
	// UpdatesPerNode is the number of updates each node initiates.
	UpdatesPerNode int
	// Seed makes the update stream deterministic.
	Seed uint64
	// Steps splits the updates into this many kernel launches
	// (default 1).
	Steps int
}

// Result reports a GUPS run.
type Result struct {
	// Ns is the virtual time consumed.
	Ns float64
	// Updates is the total update count across nodes.
	Updates int64
	// GUPS is giga-updates per second of virtual time.
	GUPS float64
	// Sum is the table sum after the run (must equal Updates).
	Sum uint64
}

// Run executes GUPS on the given system, launching on every node.
func Run(sys rt.System, cfg Config) Result {
	return run(sys, cfg, -1)
}

// RunOn executes only the given node's share of the GUPS update
// stream. This is the per-process entry point of a distributed run
// (cmd/gravel-node): each process launches its own node's updates, and
// because the stream is derived from the initiating node's ID, the
// union over all processes is exactly the single-process run — the
// per-process table sums add up to Run's Sum.
func RunOn(sys rt.System, cfg Config, node int) Result {
	return run(sys, cfg, node)
}

func run(sys rt.System, cfg Config, only int) Result {
	if cfg.Steps <= 0 {
		cfg.Steps = 1
	}
	n := sys.Nodes()
	A := sys.Space().Alloc(cfg.TableSize)
	perStep := cfg.UpdatesPerNode / cfg.Steps

	t0 := sys.VirtualTimeNs()
	grid := make([]int, n)
	for s := 0; s < cfg.Steps; s++ {
		for i := range grid {
			if only < 0 || i == only {
				grid[i] = perStep
			} else {
				grid[i] = 0
			}
		}
		step := s
		sys.Step("gups", grid, 0, func(c rt.Ctx) {
			g := c.Group()
			idx := make([]uint64, g.Size)
			one := make([]uint64, g.Size)
			node := uint64(c.Node())
			// Each lane draws one random offset (B[GRID_ID] in Figure 4b)
			// and increments A there.
			g.VectorN(2, func(l int) {
				gid := uint64(g.GlobalID(l)) + uint64(step)*uint64(perStep)
				idx[l] = graph.Hash64(cfg.Seed^node<<40^gid) % uint64(cfg.TableSize)
				one[l] = 1
			})
			c.Inc(A, idx, one, nil)
		})
	}

	ns := sys.VirtualTimeNs() - t0
	launched := int64(n)
	if only >= 0 {
		launched = 1
	}
	updates := int64(perStep) * int64(cfg.Steps) * launched
	return Result{
		Ns:      ns,
		Updates: updates,
		GUPS:    float64(updates) / ns,
		Sum:     A.Sum(),
	}
}

// ModConfig parameterizes GUPS-mod (§8.2).
type ModConfig struct {
	TableSize int
	// WIsPerNode is the number of work-items launched per node; ~5 % of
	// them perform 1-8 updates, the rest perform none.
	WIsPerNode int
	Seed       uint64
}

// ModResult reports a GUPS-mod run.
type ModResult struct {
	Ns      float64
	Updates int64
	Sum     uint64
}

// RunMod executes GUPS-mod: a predicated loop in which lane l performs
// counts[l] updates, exercising diverged WG-level message offload.
func RunMod(sys rt.System, cfg ModConfig) ModResult {
	return runMod(sys, cfg, -1)
}

// RunModShard executes only the given node's work-items of a
// distributed GUPS-mod run; the per-shard table Sum adds up across
// shards to RunMod's Sum, while Updates is the global expected count
// (identical in every process).
func RunModShard(sys rt.System, cfg ModConfig, node int) ModResult {
	return runMod(sys, cfg, node)
}

func runMod(sys rt.System, cfg ModConfig, only int) ModResult {
	n := sys.Nodes()
	A := sys.Space().Alloc(cfg.TableSize)

	t0 := sys.VirtualTimeNs()
	grid := make([]int, n)
	for i := range grid {
		if only >= 0 && i != only {
			continue
		}
		grid[i] = cfg.WIsPerNode
	}
	sys.Step("gups-mod", grid, 0, func(c rt.Ctx) {
		g := c.Group()
		counts := make([]int, g.Size)
		idx := make([]uint64, g.Size)
		one := make([]uint64, g.Size)
		node := uint64(c.Node())
		g.VectorN(2, func(l int) {
			gid := uint64(g.GlobalID(l))
			h := graph.Hash64(cfg.Seed ^ node<<40 ^ gid)
			if h%33 == 0 { // ~3% of WIs are active (§8.2: most WIs idle)
				counts[l] = 1 + int((h>>8)%8)
			}
			one[l] = 1
		})
		g.PredicatedLoop(counts, 4, func(i int, active []bool) {
			g.VectorMasked(1, active, func(l int) {
				gid := uint64(g.GlobalID(l))
				idx[l] = graph.Hash64(cfg.Seed^node<<40^gid<<8^uint64(i)) % uint64(cfg.TableSize)
			})
			c.Inc(A, idx, one, active)
		})
	})

	var updates int64
	for i := 0; i < n; i++ {
		for w := 0; w < cfg.WIsPerNode; w++ {
			h := graph.Hash64(cfg.Seed ^ uint64(i)<<40 ^ uint64(w))
			if h%33 == 0 {
				updates += int64(1 + int((h>>8)%8))
			}
		}
	}
	return ModResult{Ns: sys.VirtualTimeNs() - t0, Updates: updates, Sum: A.Sum()}
}
