// Package gups implements the GUPS (giga-updates per second)
// micro-benchmark of §3 [24]: a distributed table A is atomically
// incremented at random offsets. Every update is an 8-byte fine-grain
// atomic routed through the owner's network thread, making GUPS the
// paper's purest stress test of message aggregation.
//
// The package also provides GUPS-mod (§8.2): a variant where each
// work-item performs a random number of updates and 95 % of work-items
// perform none, used to evaluate diverged WG-level operations.
package gups

import (
	"fmt"

	"gravel/internal/ckpt"
	"gravel/internal/graph"
	"gravel/internal/pgas"
	"gravel/internal/rt"
)

// Config parameterizes a GUPS run.
type Config struct {
	// TableSize is the global element count of the distributed table A.
	TableSize int
	// UpdatesPerNode is the number of updates each node initiates.
	UpdatesPerNode int
	// Seed makes the update stream deterministic.
	Seed uint64
	// Steps splits the updates into this many kernel launches
	// (default 1).
	Steps int
}

// Result reports a GUPS run.
type Result struct {
	// Ns is the virtual time consumed.
	Ns float64
	// Updates is the total update count across nodes.
	Updates int64
	// GUPS is giga-updates per second of virtual time.
	GUPS float64
	// Sum is the table sum after the run (must equal Updates).
	Sum uint64
}

// Run executes GUPS on the given system, launching on every node.
func Run(sys rt.System, cfg Config) Result {
	return run(sys, cfg, -1)
}

// RunOn executes only the given node's share of the GUPS update
// stream. This is the per-process entry point of a distributed run
// (cmd/gravel-node): each process launches its own node's updates, and
// because the stream is derived from the initiating node's ID, the
// union over all processes is exactly the single-process run — the
// per-process table sums add up to Run's Sum.
func RunOn(sys rt.System, cfg Config, node int) Result {
	return run(sys, cfg, node)
}

func run(sys rt.System, cfg Config, only int) Result {
	r, err := RunElastic(sys, cfg, only, ElasticOpts{})
	if err != nil {
		// Impossible without a resume payload or a Save hook.
		panic(err)
	}
	return r
}

// ElasticOpts configures a checkpoint-aware shard run (RunElastic).
type ElasticOpts struct {
	// Resume holds every shard's payload from the restore point, in
	// shard order. Nil means a cold start. GUPS derives its update
	// stream from per-node counts, so a restore point is only valid at
	// the node count that saved it (the app is not reshardable); the
	// payloads must cover the whole table.
	Resume [][]byte
	// Every is the checkpoint cadence in steps (<= 0 means every step).
	Every int
	// Save, when non-nil, persists this shard's payload at the step
	// barrier just crossed. The barrier is a proven-quiescent instant —
	// no update of steps <= step is still in flight — so the union of
	// all shards' payloads for the same step is a consistent cut.
	Save func(step uint64, data []byte) error
}

// RunElastic executes the given node's shard with checkpoint/restore:
// it restores the table and resumes at the first unfinished step when
// opt.Resume is set, and saves this shard's slice of the table every
// opt.Every step barriers when opt.Save is set. The final Sum is
// bit-identical to an undisturbed RunOn of the same Config.
func RunElastic(sys rt.System, cfg Config, only int, opt ElasticOpts) (Result, error) {
	if cfg.Steps <= 0 {
		cfg.Steps = 1
	}
	n := sys.Nodes()
	A := sys.Space().Alloc(cfg.TableSize)
	perStep := cfg.UpdatesPerNode / cfg.Steps

	elastic := opt.Save != nil || len(opt.Resume) > 0
	start := 0
	if len(opt.Resume) > 0 {
		if only < 0 {
			return Result{}, fmt.Errorf("gups: restore requires a shard run")
		}
		step, err := restoreTable(A, only, opt.Resume)
		if err != nil {
			return Result{}, err
		}
		start = int(step)
	}
	if elastic {
		// Zero-work sync step: its barrier guarantees every worker has
		// allocated (and restored) before any worker's first increment
		// can arrive — a fast peer's wire writes would otherwise race a
		// slow peer's array allocation.
		sys.Step("gups-start-sync", make([]int, n), 0, func(rt.Ctx) {})
	}
	every := opt.Every
	if every <= 0 {
		every = 1
	}

	t0 := sys.VirtualTimeNs()
	grid := make([]int, n)
	for s := start; s < cfg.Steps; s++ {
		for i := range grid {
			if only < 0 || i == only {
				grid[i] = perStep
			} else {
				grid[i] = 0
			}
		}
		step := s
		sys.Step("gups", grid, 0, func(c rt.Ctx) {
			g := c.Group()
			idx := make([]uint64, g.Size)
			one := make([]uint64, g.Size)
			node := uint64(c.Node())
			// Each lane draws one random offset (B[GRID_ID] in Figure 4b)
			// and increments A there.
			g.VectorN(2, func(l int) {
				gid := uint64(g.GlobalID(l)) + uint64(step)*uint64(perStep)
				idx[l] = graph.Hash64(cfg.Seed^node<<40^gid) % uint64(cfg.TableSize)
				one[l] = 1
			})
			c.Inc(A, idx, one, nil)
		})
		if opt.Save != nil && (s+1)%every == 0 && s+1 < cfg.Steps {
			if err := opt.Save(uint64(s+1), EncodeShard(A, only, uint64(s+1))); err != nil {
				return Result{}, err
			}
			// Quiet save window: no worker may start step s+1 (whose
			// increments land in peers' replicas) until every worker has
			// encoded its payload — otherwise the cut is polluted and a
			// restore double-applies the in-flight updates.
			sys.Step("gups-ckpt-sync", make([]int, n), 0, func(rt.Ctx) {})
		}
	}

	ns := sys.VirtualTimeNs() - t0
	launched := int64(n)
	if only >= 0 {
		launched = 1
	}
	updates := int64(perStep) * int64(cfg.Steps) * launched
	return Result{
		Ns:      ns,
		Updates: updates,
		GUPS:    float64(updates) / ns,
		Sum:     A.Sum(),
	}, nil
}

// EncodeShard builds node's checkpoint payload: the step the shard has
// completed, the global range it owns, and the owned table values.
func EncodeShard(A *pgas.Array, node int, step uint64) []byte {
	lo, hi := A.LocalRange(node)
	p := ckpt.EncodeU64s([]uint64{step, uint64(lo), uint64(hi - lo)}, hi-lo)
	for _, v := range A.Local(node) {
		p = ckpt.AppendU64(p, v)
	}
	return p
}

// restoreTable replays the node's own saved values into A and returns
// the step the checkpoint was taken at. Only the owned range is
// restored: in a distributed run each process's replica holds exactly
// the updates that landed on elements it owns (remote increments route
// to the owner), and the per-shard Sum checksums must keep adding up
// to the cluster total after a restore. Same node count only — shard
// `node` of the checkpoint must cover exactly this node's range.
func restoreTable(A *pgas.Array, node int, shards [][]byte) (uint64, error) {
	if node >= len(shards) {
		return 0, fmt.Errorf("gups: restore has %d shards, node %d needs its own", len(shards), node)
	}
	w, err := ckpt.DecodeU64s(shards[node])
	if err != nil {
		return 0, fmt.Errorf("gups: shard %d: %w", node, err)
	}
	if len(w) < 3 || uint64(len(w)-3) != w[2] {
		return 0, fmt.Errorf("gups: shard %d: malformed payload (%d words, count %d)", node, len(w), w[2])
	}
	lo, hi := A.LocalRange(node)
	if int(w[1]) != lo || int(w[2]) != hi-lo {
		return 0, fmt.Errorf("gups: shard %d saved range [%d,+%d), own range is [%d,+%d) — node count changed?",
			node, w[1], w[2], lo, hi-lo)
	}
	for j, v := range w[3:] {
		if v != 0 {
			A.Store(uint64(lo+j), v)
		}
	}
	return w[0], nil
}

// ModConfig parameterizes GUPS-mod (§8.2).
type ModConfig struct {
	TableSize int
	// WIsPerNode is the number of work-items launched per node; ~5 % of
	// them perform 1-8 updates, the rest perform none.
	WIsPerNode int
	Seed       uint64
}

// ModResult reports a GUPS-mod run.
type ModResult struct {
	Ns      float64
	Updates int64
	Sum     uint64
}

// RunMod executes GUPS-mod: a predicated loop in which lane l performs
// counts[l] updates, exercising diverged WG-level message offload.
func RunMod(sys rt.System, cfg ModConfig) ModResult {
	return runMod(sys, cfg, -1)
}

// RunModShard executes only the given node's work-items of a
// distributed GUPS-mod run; the per-shard table Sum adds up across
// shards to RunMod's Sum, while Updates is the global expected count
// (identical in every process).
func RunModShard(sys rt.System, cfg ModConfig, node int) ModResult {
	return runMod(sys, cfg, node)
}

func runMod(sys rt.System, cfg ModConfig, only int) ModResult {
	n := sys.Nodes()
	A := sys.Space().Alloc(cfg.TableSize)

	t0 := sys.VirtualTimeNs()
	grid := make([]int, n)
	for i := range grid {
		if only >= 0 && i != only {
			continue
		}
		grid[i] = cfg.WIsPerNode
	}
	sys.Step("gups-mod", grid, 0, func(c rt.Ctx) {
		g := c.Group()
		counts := make([]int, g.Size)
		idx := make([]uint64, g.Size)
		one := make([]uint64, g.Size)
		node := uint64(c.Node())
		g.VectorN(2, func(l int) {
			gid := uint64(g.GlobalID(l))
			h := graph.Hash64(cfg.Seed ^ node<<40 ^ gid)
			if h%33 == 0 { // ~3% of WIs are active (§8.2: most WIs idle)
				counts[l] = 1 + int((h>>8)%8)
			}
			one[l] = 1
		})
		g.PredicatedLoop(counts, 4, func(i int, active []bool) {
			g.VectorMasked(1, active, func(l int) {
				gid := uint64(g.GlobalID(l))
				idx[l] = graph.Hash64(cfg.Seed^node<<40^gid<<8^uint64(i)) % uint64(cfg.TableSize)
			})
			c.Inc(A, idx, one, active)
		})
	})

	var updates int64
	for i := 0; i < n; i++ {
		for w := 0; w < cfg.WIsPerNode; w++ {
			h := graph.Hash64(cfg.Seed ^ uint64(i)<<40 ^ uint64(w))
			if h%33 == 0 {
				updates += int64(1 + int((h>>8)%8))
			}
		}
	}
	return ModResult{Ns: sys.VirtualTimeNs() - t0, Updates: updates, Sum: A.Sum()}
}
