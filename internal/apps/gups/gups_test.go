package gups_test

import (
	"testing"

	"gravel/internal/apps/gups"
	"gravel/internal/core"
	"gravel/internal/simt"
)

func TestGUPSCorrect(t *testing.T) {
	for _, nodes := range []int{1, 2, 4} {
		cl := core.New(core.Config{Nodes: nodes})
		res := gups.Run(cl, gups.Config{TableSize: 1 << 14, UpdatesPerNode: 1 << 13, Seed: 42})
		cl.Close()
		if res.Sum != uint64(res.Updates) {
			t.Errorf("nodes=%d: sum=%d updates=%d", nodes, res.Sum, res.Updates)
		}
		if res.Ns <= 0 || res.GUPS <= 0 {
			t.Errorf("nodes=%d: no virtual time", nodes)
		}
	}
}

func TestGUPSMultiStep(t *testing.T) {
	cl := core.New(core.Config{Nodes: 2})
	defer cl.Close()
	res := gups.Run(cl, gups.Config{TableSize: 1 << 12, UpdatesPerNode: 1 << 12, Seed: 7, Steps: 4})
	if res.Sum != uint64(res.Updates) {
		t.Fatalf("sum=%d updates=%d", res.Sum, res.Updates)
	}
}

func TestGUPSRemoteFraction(t *testing.T) {
	// Random updates across 4 nodes must be ~75% remote (Table 5 logic).
	cl := core.New(core.Config{Nodes: 4})
	defer cl.Close()
	gups.Run(cl, gups.Config{TableSize: 1 << 14, UpdatesPerNode: 1 << 13, Seed: 1})
	f := cl.NetStats().RemoteFrac()
	if f < 0.72 || f > 0.78 {
		t.Errorf("remote frac = %.3f, want ≈ 0.75", f)
	}
}

func TestGUPSModAllModes(t *testing.T) {
	cfg := gups.ModConfig{TableSize: 1 << 12, WIsPerNode: 1 << 12, Seed: 99}
	var sums []uint64
	for _, mode := range []simt.DivergenceMode{simt.SoftwarePredication, simt.WGReconvergence, simt.FineGrainBarrier} {
		cl := core.New(core.Config{Nodes: 2, DivMode: mode})
		res := gups.RunMod(cl, cfg)
		cl.Close()
		if res.Sum != uint64(res.Updates) {
			t.Errorf("mode=%v: sum=%d updates=%d", mode, res.Sum, res.Updates)
		}
		sums = append(sums, res.Sum)
	}
	if sums[0] != sums[1] || sums[1] != sums[2] {
		t.Errorf("divergence modes disagree: %v", sums)
	}
}
