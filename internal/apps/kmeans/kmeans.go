// Package kmeans implements the paper's k-means clustering workload
// (§6): Lloyd iterations over node-local Cartesian points, with cluster
// accumulators held in the global address space and updated exclusively
// by atomic increments (§7.1: kmeans uses atomics exclusively). With
// k = 8 clusters on 8 nodes, each node owns one cluster's accumulators,
// so 7/8 of all updates are remote — the Table 5 87.5 %.
//
// Coordinates are Q.20 fixed point so accumulation is exactly
// commutative and results match the sequential reference bit-for-bit
// under any node count or networking model.
package kmeans

import (
	"fmt"

	"gravel/internal/ckpt"
	"gravel/internal/graph"
	"gravel/internal/rt"
)

// CoordScale converts [0,1) coordinates to fixed point.
const CoordScale = 1 << 20

// Config parameterizes a k-means run.
type Config struct {
	PointsPerNode int
	K             int
	Dims          int
	Iters         int
	Seed          uint64
}

// Result reports a k-means run.
type Result struct {
	Ns float64
	// Centroids holds the final centroids in fixed point, k*Dims values.
	Centroids []uint64
	// Counts holds the final per-cluster point counts.
	Counts []int64
	Iters  int
}

// pointCoord deterministically generates coordinate d of point (node, i):
// a planted center plus noise, so clustering is meaningful.
func pointCoord(seed uint64, node, i, d, k int) uint64 {
	h := graph.Hash64(seed ^ uint64(node)<<40 ^ uint64(i))
	c := int(h % uint64(k))
	center := (uint64(c)*2 + 1) * CoordScale / uint64(2*k)
	noise := graph.Hash64(h^uint64(d)<<32) % (CoordScale / uint64(2*k))
	return center + noise - CoordScale/uint64(4*k)
}

// assign returns the nearest centroid for a point.
func assign(pt []uint64, cent []uint64, k, dims int) int {
	best, bestD := 0, ^uint64(0)
	for c := 0; c < k; c++ {
		var dist uint64
		for d := 0; d < dims; d++ {
			diff := int64(pt[d]) - int64(cent[c*dims+d])
			dist += uint64(diff * diff)
		}
		if dist < bestD {
			bestD = dist
			best = c
		}
	}
	return best
}

// Run executes k-means on the given system.
func Run(sys rt.System, cfg Config) Result {
	return run(sys, cfg, -1, nil)
}

// RunShard executes only the given node's points in a distributed run.
// Each process's accumulator replicas hold exactly the contributions
// that landed on its owned clusters, so reducing each accumulator
// through coll yields the global sums, every process recomputes
// identical centroids, and the final Centroids/Counts match the
// single-process run bit-for-bit in every process.
func RunShard(sys rt.System, cfg Config, node int, coll rt.Collectives) Result {
	return run(sys, cfg, node, coll)
}

func run(sys rt.System, cfg Config, only int, coll rt.Collectives) Result {
	r, err := RunElastic(sys, cfg, only, coll, ElasticOpts{})
	if err != nil {
		// Impossible without a resume payload or a Save hook.
		panic(err)
	}
	return r
}

// ElasticOpts configures a checkpoint-aware shard run (RunElastic).
type ElasticOpts struct {
	// Resume holds every shard's payload from the restore point. Nil
	// means a cold start. The payload is the centroid vector — identical
	// in every shard — so restoring reads shard 0. Points are generated
	// per (node, index), so a restore point is only valid at the node
	// count that saved it (not reshardable).
	Resume [][]byte
	// Every is the checkpoint cadence in iterations (<= 0 = every one).
	Every int
	// Save, when non-nil, persists this shard's payload after the
	// iteration's reduces complete. The accumulators are deliberately
	// excluded: they are zero at the cut (reset before the reduces), and
	// the next iteration regenerates every increment from cent alone.
	Save func(iter uint64, data []byte) error
}

// RunElastic executes the given node's shard with checkpoint/restore;
// final Centroids and Counts are bit-identical to an undisturbed
// RunShard of the same Config.
func RunElastic(sys rt.System, cfg Config, only int, coll rt.Collectives, opt ElasticOpts) (Result, error) {
	if cfg.Dims == 0 {
		cfg.Dims = 2
	}
	nodes := sys.Nodes()
	k, dims := cfg.K, cfg.Dims

	// Accumulators: SUM[c*dims+d] and CNT[c]. Partition SUM so cluster c
	// lives on node c*nodes/k (even spread for any k, nodes).
	sumBounds := make([]int, nodes+1)
	cntBounds := make([]int, nodes+1)
	for i := 1; i <= nodes; i++ {
		c := i * k / nodes
		cntBounds[i] = c
		sumBounds[i] = c * dims
	}
	sum := sys.Space().AllocRanges(sumBounds)
	cnt := sys.Space().AllocRanges(cntBounds)

	// Initial centroids: planted centers, identical on every node.
	cent := make([]uint64, k*dims)
	for c := 0; c < k; c++ {
		for d := 0; d < dims; d++ {
			cent[c*dims+d] = (uint64(c)*2 + 1) * CoordScale / uint64(2*k)
		}
	}

	start := 0
	if len(opt.Resume) > 0 {
		iter, err := restoreCentroids(cent, opt.Resume)
		if err != nil {
			return Result{}, err
		}
		start = int(iter)
	}
	if opt.Save != nil || len(opt.Resume) > 0 {
		// Zero-work sync step: its barrier guarantees every worker has
		// allocated (and restored) before any worker's first increment
		// can arrive — a fast peer's wire writes would otherwise race a
		// slow peer's array allocation.
		sys.Step("kmeans-start-sync", make([]int, nodes), 0, func(rt.Ctx) {})
	}
	every := opt.Every
	if every <= 0 {
		every = 1
	}

	grid := make([]int, nodes)
	for i := range grid {
		if only >= 0 && i != only {
			continue
		}
		grid[i] = cfg.PointsPerNode
	}

	t0 := sys.VirtualTimeNs()
	for it := start; it < cfg.Iters; it++ {
		centSnap := append([]uint64(nil), cent...) // read-only during kernel
		sys.Step("kmeans-assign", grid, 0, func(c rt.Ctx) {
			wg := c.Group()
			pt := make([]uint64, dims)
			cl := make([]uint64, wg.Size)
			cntIdx := make([]uint64, wg.Size)
			one := make([]uint64, wg.Size)
			sumIdx := make([]uint64, wg.Size)
			coord := make([]uint64, wg.Size)
			node := c.Node()

			// Distance computation: k*dims multiply-adds per point.
			wg.VectorN(2*k*dims, func(l int) {
				i := wg.GlobalID(l)
				for d := 0; d < dims; d++ {
					pt[d] = pointCoord(cfg.Seed, node, i, d, k)
				}
				cl[l] = uint64(assign(pt, centSnap, k, dims))
				cntIdx[l] = cl[l]
				one[l] = 1
			})
			// One atomic increment per dimension plus the count.
			for d := 0; d < dims; d++ {
				dd := d
				wg.VectorN(1, func(l int) {
					i := wg.GlobalID(l)
					sumIdx[l] = cl[l]*uint64(dims) + uint64(dd)
					coord[l] = pointCoord(cfg.Seed, node, i, dd, k)
				})
				c.Inc(sum, sumIdx, coord, nil)
			}
			c.Inc(cnt, cntIdx, one, nil)
		})

		// Host: recompute centroids from the accumulators and reset them.
		// In a distributed run each process's replica holds only its owned
		// clusters' accumulators (the rest are zero), so the collective sum
		// of the replicas is the global accumulator; the reduced values —
		// and therefore the centroids — are identical in every process.
		//
		// Snapshot and reset BEFORE contributing to the reduces: a peer
		// that collects the last reduction may launch the next iteration's
		// kernel immediately, and its increments land on our replica the
		// moment they arrive — a reset after the reduces would wipe them.
		// Every peer is blocked in the reduces until this process has
		// contributed, i.e. until after this reset.
		sys.ChargeHost(5000)
		cntSnap := make([]uint64, k)
		sumSnap := make([]uint64, k*dims)
		for c := 0; c < k; c++ {
			cntSnap[c] = cnt.Load(uint64(c))
			for d := 0; d < dims; d++ {
				sumSnap[c*dims+d] = sum.Load(uint64(c*dims + d))
			}
		}
		sum.Fill(0)
		cnt.Fill(0)
		for c := 0; c < k; c++ {
			n, err := rt.AllReduce(coll, fmt.Sprintf("km:%d:c:%d", it, c), rt.WorldTeam, rt.OpSum, cntSnap[c])
			if err != nil {
				panic(err)
			}
			if n == 0 {
				continue
			}
			for d := 0; d < dims; d++ {
				s, err := rt.AllReduce(coll, fmt.Sprintf("km:%d:s:%d", it, c*dims+d), rt.WorldTeam, rt.OpSum, sumSnap[c*dims+d])
				if err != nil {
					panic(err)
				}
				cent[c*dims+d] = s / n
			}
		}

		if opt.Save != nil && (it+1)%every == 0 && it+1 < cfg.Iters {
			if err := opt.Save(uint64(it+1), EncodeShard(cent, uint64(it+1))); err != nil {
				return Result{}, err
			}
		}
	}
	ns := sys.VirtualTimeNs() - t0

	counts := make([]int64, k)
	// Reproduce the final counts with one more assignment pass (host).
	pt := make([]uint64, dims)
	for node := 0; node < nodes; node++ {
		for i := 0; i < cfg.PointsPerNode; i++ {
			for d := 0; d < dims; d++ {
				pt[d] = pointCoord(cfg.Seed, node, i, d, k)
			}
			counts[assign(pt, cent, k, dims)]++
		}
	}
	return Result{Ns: ns, Centroids: cent, Counts: counts, Iters: cfg.Iters}, nil
}

// EncodeShard builds a checkpoint payload: the iteration the run has
// completed followed by the centroid vector. Every shard saves the
// same payload (centroids are identical in every process after the
// iteration's reduces), which doubles as a cross-shard consistency
// check at restore.
func EncodeShard(cent []uint64, iter uint64) []byte {
	p := ckpt.EncodeU64s([]uint64{iter, uint64(len(cent))}, len(cent))
	for _, v := range cent {
		p = ckpt.AppendU64(p, v)
	}
	return p
}

// restoreCentroids loads the centroid vector from a restore point and
// returns the iteration it was taken at, verifying that every shard
// saved an identical payload.
func restoreCentroids(cent []uint64, shards [][]byte) (uint64, error) {
	var iter uint64
	for i, p := range shards {
		w, err := ckpt.DecodeU64s(p)
		if err != nil {
			return 0, fmt.Errorf("kmeans: shard %d: %w", i, err)
		}
		if len(w) < 2 || uint64(len(w)-2) != w[1] {
			return 0, fmt.Errorf("kmeans: shard %d: malformed payload (%d words, count %d)", i, len(w), w[1])
		}
		if len(w)-2 != len(cent) {
			return 0, fmt.Errorf("kmeans: shard %d saved %d centroid words, want %d", i, len(w)-2, len(cent))
		}
		if i == 0 {
			iter = w[0]
			copy(cent, w[2:])
			continue
		}
		if w[0] != iter {
			return 0, fmt.Errorf("kmeans: shard %d saved iter %d, shard 0 saved iter %d (inconsistent cut)", i, w[0], iter)
		}
		for j, v := range w[2:] {
			if v != cent[j] {
				return 0, fmt.Errorf("kmeans: shard %d centroid word %d diverges from shard 0", i, j)
			}
		}
	}
	return iter, nil
}

// Reference runs the same fixed-point Lloyd iterations sequentially over
// the union of all nodes' points; Run must match it exactly.
func Reference(cfg Config, nodes int) []uint64 {
	if cfg.Dims == 0 {
		cfg.Dims = 2
	}
	k, dims := cfg.K, cfg.Dims
	cent := make([]uint64, k*dims)
	for c := 0; c < k; c++ {
		for d := 0; d < dims; d++ {
			cent[c*dims+d] = (uint64(c)*2 + 1) * CoordScale / uint64(2*k)
		}
	}
	pt := make([]uint64, dims)
	sum := make([]uint64, k*dims)
	cnt := make([]uint64, k)
	for it := 0; it < cfg.Iters; it++ {
		for i := range sum {
			sum[i] = 0
		}
		for i := range cnt {
			cnt[i] = 0
		}
		for node := 0; node < nodes; node++ {
			for i := 0; i < cfg.PointsPerNode; i++ {
				for d := 0; d < dims; d++ {
					pt[d] = pointCoord(cfg.Seed, node, i, d, k)
				}
				c := assign(pt, cent, k, dims)
				cnt[c]++
				for d := 0; d < dims; d++ {
					sum[c*dims+d] += pt[d]
				}
			}
		}
		for c := 0; c < k; c++ {
			if cnt[c] == 0 {
				continue
			}
			for d := 0; d < dims; d++ {
				cent[c*dims+d] = sum[c*dims+d] / cnt[c]
			}
		}
	}
	return cent
}
