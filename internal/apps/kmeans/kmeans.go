// Package kmeans implements the paper's k-means clustering workload
// (§6): Lloyd iterations over node-local Cartesian points, with cluster
// accumulators held in the global address space and updated exclusively
// by atomic increments (§7.1: kmeans uses atomics exclusively). With
// k = 8 clusters on 8 nodes, each node owns one cluster's accumulators,
// so 7/8 of all updates are remote — the Table 5 87.5 %.
//
// Coordinates are Q.20 fixed point so accumulation is exactly
// commutative and results match the sequential reference bit-for-bit
// under any node count or networking model.
package kmeans

import (
	"fmt"

	"gravel/internal/graph"
	"gravel/internal/rt"
)

// CoordScale converts [0,1) coordinates to fixed point.
const CoordScale = 1 << 20

// Config parameterizes a k-means run.
type Config struct {
	PointsPerNode int
	K             int
	Dims          int
	Iters         int
	Seed          uint64
}

// Result reports a k-means run.
type Result struct {
	Ns float64
	// Centroids holds the final centroids in fixed point, k*Dims values.
	Centroids []uint64
	// Counts holds the final per-cluster point counts.
	Counts []int64
	Iters  int
}

// pointCoord deterministically generates coordinate d of point (node, i):
// a planted center plus noise, so clustering is meaningful.
func pointCoord(seed uint64, node, i, d, k int) uint64 {
	h := graph.Hash64(seed ^ uint64(node)<<40 ^ uint64(i))
	c := int(h % uint64(k))
	center := (uint64(c)*2 + 1) * CoordScale / uint64(2*k)
	noise := graph.Hash64(h^uint64(d)<<32) % (CoordScale / uint64(2*k))
	return center + noise - CoordScale/uint64(4*k)
}

// assign returns the nearest centroid for a point.
func assign(pt []uint64, cent []uint64, k, dims int) int {
	best, bestD := 0, ^uint64(0)
	for c := 0; c < k; c++ {
		var dist uint64
		for d := 0; d < dims; d++ {
			diff := int64(pt[d]) - int64(cent[c*dims+d])
			dist += uint64(diff * diff)
		}
		if dist < bestD {
			bestD = dist
			best = c
		}
	}
	return best
}

// Run executes k-means on the given system.
func Run(sys rt.System, cfg Config) Result {
	return run(sys, cfg, -1, nil)
}

// RunShard executes only the given node's points in a distributed run.
// Each process's accumulator replicas hold exactly the contributions
// that landed on its owned clusters, so reducing each accumulator
// through coll yields the global sums, every process recomputes
// identical centroids, and the final Centroids/Counts match the
// single-process run bit-for-bit in every process.
func RunShard(sys rt.System, cfg Config, node int, coll rt.Collective) Result {
	return run(sys, cfg, node, coll)
}

func run(sys rt.System, cfg Config, only int, coll rt.Collective) Result {
	if cfg.Dims == 0 {
		cfg.Dims = 2
	}
	nodes := sys.Nodes()
	k, dims := cfg.K, cfg.Dims

	// Accumulators: SUM[c*dims+d] and CNT[c]. Partition SUM so cluster c
	// lives on node c*nodes/k (even spread for any k, nodes).
	sumBounds := make([]int, nodes+1)
	cntBounds := make([]int, nodes+1)
	for i := 1; i <= nodes; i++ {
		c := i * k / nodes
		cntBounds[i] = c
		sumBounds[i] = c * dims
	}
	sum := sys.Space().AllocRanges(sumBounds)
	cnt := sys.Space().AllocRanges(cntBounds)

	// Initial centroids: planted centers, identical on every node.
	cent := make([]uint64, k*dims)
	for c := 0; c < k; c++ {
		for d := 0; d < dims; d++ {
			cent[c*dims+d] = (uint64(c)*2 + 1) * CoordScale / uint64(2*k)
		}
	}

	grid := make([]int, nodes)
	for i := range grid {
		if only >= 0 && i != only {
			continue
		}
		grid[i] = cfg.PointsPerNode
	}

	t0 := sys.VirtualTimeNs()
	for it := 0; it < cfg.Iters; it++ {
		centSnap := append([]uint64(nil), cent...) // read-only during kernel
		sys.Step("kmeans-assign", grid, 0, func(c rt.Ctx) {
			wg := c.Group()
			pt := make([]uint64, dims)
			cl := make([]uint64, wg.Size)
			cntIdx := make([]uint64, wg.Size)
			one := make([]uint64, wg.Size)
			sumIdx := make([]uint64, wg.Size)
			coord := make([]uint64, wg.Size)
			node := c.Node()

			// Distance computation: k*dims multiply-adds per point.
			wg.VectorN(2*k*dims, func(l int) {
				i := wg.GlobalID(l)
				for d := 0; d < dims; d++ {
					pt[d] = pointCoord(cfg.Seed, node, i, d, k)
				}
				cl[l] = uint64(assign(pt, centSnap, k, dims))
				cntIdx[l] = cl[l]
				one[l] = 1
			})
			// One atomic increment per dimension plus the count.
			for d := 0; d < dims; d++ {
				dd := d
				wg.VectorN(1, func(l int) {
					i := wg.GlobalID(l)
					sumIdx[l] = cl[l]*uint64(dims) + uint64(dd)
					coord[l] = pointCoord(cfg.Seed, node, i, dd, k)
				})
				c.Inc(sum, sumIdx, coord, nil)
			}
			c.Inc(cnt, cntIdx, one, nil)
		})

		// Host: recompute centroids from the accumulators and reset them.
		// In a distributed run each process's replica holds only its owned
		// clusters' accumulators (the rest are zero), so the collective sum
		// of the replicas is the global accumulator; the reduced values —
		// and therefore the centroids — are identical in every process.
		//
		// Snapshot and reset BEFORE contributing to the reduces: a peer
		// that collects the last reduction may launch the next iteration's
		// kernel immediately, and its increments land on our replica the
		// moment they arrive — a reset after the reduces would wipe them.
		// Every peer is blocked in the reduces until this process has
		// contributed, i.e. until after this reset.
		sys.ChargeHost(5000)
		cntSnap := make([]uint64, k)
		sumSnap := make([]uint64, k*dims)
		for c := 0; c < k; c++ {
			cntSnap[c] = cnt.Load(uint64(c))
			for d := 0; d < dims; d++ {
				sumSnap[c*dims+d] = sum.Load(uint64(c*dims + d))
			}
		}
		sum.Fill(0)
		cnt.Fill(0)
		for c := 0; c < k; c++ {
			n, err := coll.Reduce(fmt.Sprintf("km:%d:c:%d", it, c), cntSnap[c])
			if err != nil {
				panic(err)
			}
			if n == 0 {
				continue
			}
			for d := 0; d < dims; d++ {
				s, err := coll.Reduce(fmt.Sprintf("km:%d:s:%d", it, c*dims+d), sumSnap[c*dims+d])
				if err != nil {
					panic(err)
				}
				cent[c*dims+d] = s / n
			}
		}
	}
	ns := sys.VirtualTimeNs() - t0

	counts := make([]int64, k)
	// Reproduce the final counts with one more assignment pass (host).
	pt := make([]uint64, dims)
	for node := 0; node < nodes; node++ {
		for i := 0; i < cfg.PointsPerNode; i++ {
			for d := 0; d < dims; d++ {
				pt[d] = pointCoord(cfg.Seed, node, i, d, k)
			}
			counts[assign(pt, cent, k, dims)]++
		}
	}
	return Result{Ns: ns, Centroids: cent, Counts: counts, Iters: cfg.Iters}
}

// Reference runs the same fixed-point Lloyd iterations sequentially over
// the union of all nodes' points; Run must match it exactly.
func Reference(cfg Config, nodes int) []uint64 {
	if cfg.Dims == 0 {
		cfg.Dims = 2
	}
	k, dims := cfg.K, cfg.Dims
	cent := make([]uint64, k*dims)
	for c := 0; c < k; c++ {
		for d := 0; d < dims; d++ {
			cent[c*dims+d] = (uint64(c)*2 + 1) * CoordScale / uint64(2*k)
		}
	}
	pt := make([]uint64, dims)
	sum := make([]uint64, k*dims)
	cnt := make([]uint64, k)
	for it := 0; it < cfg.Iters; it++ {
		for i := range sum {
			sum[i] = 0
		}
		for i := range cnt {
			cnt[i] = 0
		}
		for node := 0; node < nodes; node++ {
			for i := 0; i < cfg.PointsPerNode; i++ {
				for d := 0; d < dims; d++ {
					pt[d] = pointCoord(cfg.Seed, node, i, d, k)
				}
				c := assign(pt, cent, k, dims)
				cnt[c]++
				for d := 0; d < dims; d++ {
					sum[c*dims+d] += pt[d]
				}
			}
		}
		for c := 0; c < k; c++ {
			if cnt[c] == 0 {
				continue
			}
			for d := 0; d < dims; d++ {
				cent[c*dims+d] = sum[c*dims+d] / cnt[c]
			}
		}
	}
	return cent
}
