package kmeans_test

import (
	"testing"

	"gravel/internal/apps/kmeans"
	"gravel/internal/core"
)

func TestKmeansMatchesReference(t *testing.T) {
	cfg := kmeans.Config{PointsPerNode: 2000, K: 8, Dims: 2, Iters: 4, Seed: 17}
	for _, nodes := range []int{1, 2, 4} {
		want := kmeans.Reference(cfg, nodes)
		cl := core.New(core.Config{Nodes: nodes})
		res := kmeans.Run(cl, cfg)
		cl.Close()
		if len(res.Centroids) != len(want) {
			t.Fatalf("centroid count mismatch")
		}
		for i := range want {
			if res.Centroids[i] != want[i] {
				t.Errorf("nodes=%d: centroid[%d] = %d, want %d", nodes, i, res.Centroids[i], want[i])
				break
			}
		}
	}
}

func TestKmeansCountsCoverAllPoints(t *testing.T) {
	cfg := kmeans.Config{PointsPerNode: 1500, K: 4, Dims: 3, Iters: 2, Seed: 5}
	cl := core.New(core.Config{Nodes: 3})
	defer cl.Close()
	res := kmeans.Run(cl, cfg)
	var total int64
	for _, c := range res.Counts {
		total += c
	}
	if total != int64(3*cfg.PointsPerNode) {
		t.Fatalf("counts total %d, want %d", total, 3*cfg.PointsPerNode)
	}
	// Planted clusters: every cluster should get a reasonable share.
	for c, n := range res.Counts {
		if n == 0 {
			t.Errorf("cluster %d empty", c)
		}
	}
}

func TestKmeansRemoteFraction(t *testing.T) {
	// K=8 on 8 nodes: each node owns one cluster's accumulators, so
	// ~87.5% of updates are remote (Table 5).
	cl := core.New(core.Config{Nodes: 8})
	defer cl.Close()
	kmeans.Run(cl, kmeans.Config{PointsPerNode: 1000, K: 8, Iters: 2, Seed: 3})
	f := cl.NetStats().RemoteFrac()
	if f < 0.82 || f > 0.93 {
		t.Errorf("remote frac = %.3f, want ≈ 0.875", f)
	}
}
