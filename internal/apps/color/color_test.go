package color_test

import (
	"testing"

	"gravel/internal/apps/color"
	"gravel/internal/core"
	"gravel/internal/graph"
)

func TestColoringProper(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"random", graph.Random(400, 8, 21)},
		{"bubbles", graph.Bubbles(400, 4)},
		{"path", graph.Path(100)},
	} {
		for _, nodes := range []int{1, 2, 4} {
			cl := core.New(core.Config{Nodes: nodes})
			res := color.Run(cl, color.Config{G: tc.g, Seed: 5})
			cl.Close()
			if res.Colored != int64(tc.g.N) {
				t.Errorf("%s nodes=%d: colored %d of %d", tc.name, nodes, res.Colored, tc.g.N)
				continue
			}
			if err := color.Validate(tc.g, res.ColorAt); err != nil {
				t.Errorf("%s nodes=%d: %v", tc.name, nodes, err)
			}
		}
	}
}

func TestColoringUsesFewColors(t *testing.T) {
	// A path graph is 2-colorable; JP with random priorities should use
	// at most 3 colors.
	g := graph.Path(200)
	cl := core.New(core.Config{Nodes: 2})
	defer cl.Close()
	res := color.Run(cl, color.Config{G: g, Seed: 9})
	if res.Colors > 3 {
		t.Errorf("path graph used %d colors", res.Colors)
	}
}

func TestColoringDeterministic(t *testing.T) {
	g := graph.Random(300, 6, 33)
	var rounds, colors []int
	for _, nodes := range []int{1, 4} {
		cl := core.New(core.Config{Nodes: nodes})
		res := color.Run(cl, color.Config{G: g, Seed: 5})
		cl.Close()
		rounds = append(rounds, res.Rounds)
		colors = append(colors, res.Colors)
	}
	if rounds[0] != rounds[1] || colors[0] != colors[1] {
		t.Errorf("coloring not deterministic across node counts: rounds=%v colors=%v", rounds, colors)
	}
}

// TestColoringBoundProperty: Jones-Plassmann never needs more than
// maxDegree+1 colors; check across random graphs.
func TestColoringBoundProperty(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		g := graph.Random(250, 8, seed)
		maxDeg := 0
		for v := 0; v < g.N; v++ {
			if d := g.Deg(v); d > maxDeg {
				maxDeg = d
			}
		}
		cl := core.New(core.Config{Nodes: 3})
		res := color.Run(cl, color.Config{G: g, Seed: uint64(seed)})
		cl.Close()
		if res.Colors > maxDeg+1 {
			t.Errorf("seed %d: %d colors > maxDeg+1 = %d", seed, res.Colors, maxDeg+1)
		}
		if err := color.Validate(g, res.ColorAt); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}
