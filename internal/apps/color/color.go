// Package color implements the paper's graph-coloring workload (§6,
// derived from GasCL): Jones–Plassmann coloring with random priorities.
// Each round, every uncolored vertex whose priority beats all of its
// uncolored neighbors picks the smallest free color and PUTs it into a
// dedicated per-edge slot at every neighbor (§7.1: color uses non-atomic
// PUT operations exclusively).
//
// For symmetric graphs with sorted adjacency lists, vertex v's k-th
// in-edge slot corresponds to its k-th out-neighbor, so neighbor colors
// can be read locally without extra index structures.
package color

import (
	"fmt"

	"gravel/internal/graph"
	"gravel/internal/rt"
)

// Config parameterizes a coloring run.
type Config struct {
	G *graph.Graph
	// Seed perturbs the random priorities.
	Seed uint64
	// MaxRounds bounds the rounds (0 = unlimited).
	MaxRounds int
}

// Result reports a coloring run.
type Result struct {
	Ns     float64
	Rounds int
	Colors int
	// Colored is the number of vertices colored (must equal N).
	Colored int64
	// ColorSum is the sum of the stored color values (color+1) over the
	// scanned vertex range; per-shard sums add up to the full-run sum,
	// making it the distributed-run equivalence check.
	ColorSum uint64
	// ColorAt reads the final coloring (color+1; 0 = uncolored).
	ColorAt func(v uint64) uint64
}

// prio returns vertex v's random priority; ties are impossible because
// the vertex ID breaks them.
func prio(seed, v uint64) uint64 {
	return graph.Hash64(seed^v)<<20 | v&0xfffff
}

// Run executes Jones–Plassmann coloring on the given system.
func Run(sys rt.System, cfg Config) Result {
	return run(sys, cfg, -1, nil)
}

// RunShard executes only the given node's shard of a distributed run:
// launches happen only on node, and the per-round "is everything
// colored?" decision reduces each shard's colored count through coll so
// every process runs the same number of rounds. Colored and ColorSum
// cover only the shard's vertex range and sum across shards to the
// full-run values.
func RunShard(sys rt.System, cfg Config, node int, coll rt.Collectives) Result {
	return run(sys, cfg, node, coll)
}

func run(sys rt.System, cfg Config, only int, coll rt.Collectives) Result {
	g := cfg.G
	nodes := sys.Nodes()
	part := (g.N + nodes - 1) / nodes
	inOff, slotOf := g.InSlots()

	vb := make([]int, nodes+1)
	sb := make([]int, nodes+1)
	for i := 1; i <= nodes; i++ {
		v := i * part
		if v > g.N {
			v = g.N
		}
		vb[i] = v
		sb[i] = int(inOff[v])
	}

	// colorOf[v]: 0 = uncolored, else color+1. nbr[slot]: neighbor's
	// colorOf value as PUT by the neighbor.
	colorOf := sys.Space().AllocRanges(vb)
	nbr := sys.Space().AllocRanges(sb)

	grid := make([]int, nodes)
	for i := 0; i < nodes; i++ {
		if only >= 0 && i != only {
			continue
		}
		grid[i] = vb[i+1] - vb[i]
	}
	// The vertex range this process scans for termination and results:
	// everything in a single-process run, the owned shard otherwise.
	scanLo, scanHi := uint64(0), uint64(g.N)
	if only >= 0 {
		scanLo, scanHi = uint64(vb[only]), uint64(vb[only+1])
	}

	// notified[v] marks vertices whose color has already been pushed to
	// their neighbors; each vertex is only ever touched by its own lane.
	notified := make([]bool, g.N)

	t0 := sys.VirtualTimeNs()
	rounds := 0
	for {
		rounds++
		// Decide: highest-priority uncolored vertex among uncolored
		// neighbors picks the smallest free color. Reads are local (own
		// color, own in-slots) and see only last round's notifications,
		// so rounds are deterministic under any node count.
		sys.Step("color-decide", grid, 0, func(c rt.Ctx) {
			wg := c.Group()
			lo := vb[c.Node()]
			wg.VectorN(4, func(l int) {
				v := lo + wg.GlobalID(l)
				if colorOf.Load(uint64(v)) != 0 {
					return
				}
				myPrio := prio(cfg.Seed, uint64(v))
				adj := g.Out(v)
				var used uint64 // bitmask of small neighbor colors
				var overflow []uint64
				win := true
				for k, u := range adj {
					nc := nbr.Load(uint64(inOff[v] + int64(k)))
					if nc == 0 {
						if prio(cfg.Seed, uint64(u)) > myPrio {
							win = false
							break
						}
					} else if nc-1 < 64 {
						used |= 1 << (nc - 1)
					} else {
						overflow = append(overflow, nc-1)
					}
				}
				wg.ChargeMemDivergence(len(adj))
				if !win {
					return
				}
				colorOf.Store(uint64(v), smallestFree(used, overflow)+1)
			})
		})

		// Notify: newly colored vertices PUT their color into every
		// neighbor's slot for the reverse edge.
		sys.Step("color-notify", grid, 0, func(c rt.Ctx) {
			wg := c.Group()
			lo := vb[c.Node()]
			counts := make([]int, wg.Size)
			chosen := make([]uint64, wg.Size)
			idx := make([]uint64, wg.Size)
			val := make([]uint64, wg.Size)
			wg.VectorN(2, func(l int) {
				v := lo + wg.GlobalID(l)
				cv := colorOf.Load(uint64(v))
				if cv != 0 && !notified[v] {
					notified[v] = true
					chosen[l] = cv
					counts[l] = g.Deg(v)
				}
			})
			wg.PredicatedLoop(counts, 2, func(i int, active []bool) {
				wg.VectorMasked(2, active, func(l int) {
					v := lo + wg.GlobalID(l)
					e := g.Off[v] + int64(i)
					idx[l] = uint64(slotOf[e])
					val[l] = chosen[l]
				})
				// Scattered slot writes (memory divergence).
				wg.ChargeMemDivergence(wg.ActiveLaneCount())
				c.Put(nbr, idx, val, active)
			})
		})
		sys.ChargeHost(1000)

		colored := uint64(0)
		for v := scanLo; v < scanHi; v++ {
			if colorOf.Load(v) != 0 {
				colored++
			}
		}
		total, err := rt.AllReduce(coll, fmt.Sprintf("color:done:%d", rounds), rt.WorldTeam, rt.OpSum, colored)
		if err != nil {
			panic(err)
		}
		if total == uint64(g.N) {
			break
		}
		if cfg.MaxRounds > 0 && rounds >= cfg.MaxRounds {
			break
		}
	}
	ns := sys.VirtualTimeNs() - t0

	maxColor := uint64(0)
	colored := int64(0)
	colorSum := uint64(0)
	for v := scanLo; v < scanHi; v++ {
		cv := colorOf.Load(v)
		if cv != 0 {
			colored++
		}
		colorSum += cv
		if cv > maxColor {
			maxColor = cv
		}
	}
	return Result{Ns: ns, Rounds: rounds, Colors: int(maxColor), Colored: colored, ColorSum: colorSum, ColorAt: colorOf.Load}
}

// smallestFree returns the smallest color (0-based) not in the used
// bitmask or the overflow list.
func smallestFree(used uint64, overflow []uint64) uint64 {
	for c := uint64(0); ; c++ {
		var taken bool
		if c < 64 {
			taken = used&(1<<c) != 0
		}
		if !taken {
			for _, o := range overflow {
				if o == c {
					taken = true
					break
				}
			}
		}
		if !taken {
			return c
		}
	}
}

// Validate checks that the coloring stored in colors (as written by Run:
// color+1 per vertex) is proper; it returns an error naming the first
// conflict.
func Validate(g *graph.Graph, colorAt func(v uint64) uint64) error {
	for u := 0; u < g.N; u++ {
		cu := colorAt(uint64(u))
		if cu == 0 {
			return fmt.Errorf("vertex %d uncolored", u)
		}
		for _, v := range g.Out(u) {
			if cv := colorAt(uint64(v)); cv == cu {
				return fmt.Errorf("conflict: vertices %d and %d share color %d", u, v, cu)
			}
		}
	}
	return nil
}
