package cliflags

import (
	"encoding/json"
	"flag"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gravel/internal/rt"
)

func TestRegisterBindsSharedFlags(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var c Common
	c.Register(fs, true)
	err := fs.Parse([]string{
		"-json", "out.json",
		"-trace", "trace.jsonl",
		"-obs-addr", ":0",
		"-cpuprofile", "cpu.pprof",
		"-memprofile", "mem.pprof",
	})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	want := Common{
		JSONPath:   "out.json",
		Trace:      "trace.jsonl",
		ObsAddr:    ":0",
		CPUProfile: "cpu.pprof",
		MemProfile: "mem.pprof",
	}
	if c != want {
		t.Fatalf("parsed %+v, want %+v", c, want)
	}
}

func TestRegisterWithoutJSON(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(&strings.Builder{}) // silence usage on the expected error
	var c Common
	c.Register(fs, false)
	if err := fs.Parse([]string{"-json", "x"}); err == nil {
		t.Fatal("-json parsed on a binary registered without it")
	}
}

// TestSessionIdle: a session with nothing enabled begins and ends
// cleanly — the common path for binaries run without observability
// flags.
func TestSessionIdle(t *testing.T) {
	var c Common
	sess, err := c.Begin()
	if err != nil {
		t.Fatalf("begin: %v", err)
	}
	if addr := sess.ObsAddr(); addr != "" {
		t.Fatalf("idle session has obs addr %q", addr)
	}
	if err := sess.End(); err != nil {
		t.Fatalf("end: %v", err)
	}
}

// TestSessionProfilesAndTrace drives the full lifecycle: CPU and heap
// profiles plus a trace land on disk, non-empty, after End.
func TestSessionProfilesAndTrace(t *testing.T) {
	dir := t.TempDir()
	c := Common{
		Trace:      filepath.Join(dir, "trace.jsonl"),
		CPUProfile: filepath.Join(dir, "cpu.pprof"),
		MemProfile: filepath.Join(dir, "mem.pprof"),
	}
	sess, err := c.Begin()
	if err != nil {
		t.Fatalf("begin: %v", err)
	}
	if err := sess.End(); err != nil {
		t.Fatalf("end: %v", err)
	}
	for _, p := range []string{c.Trace, c.CPUProfile, c.MemProfile} {
		st, err := os.Stat(p)
		if err != nil {
			t.Errorf("%s: %v", p, err)
			continue
		}
		// The trace of an idle recorder may legitimately be empty; the
		// profiles must not be.
		if p != c.Trace && st.Size() == 0 {
			t.Errorf("%s: empty", p)
		}
	}
}

// TestSessionObsServer: -obs-addr :0 binds a real port whose /healthz
// follows the wired health function.
func TestSessionObsServer(t *testing.T) {
	c := Common{ObsAddr: "127.0.0.1:0"}
	sess, err := c.Begin()
	if err != nil {
		t.Fatalf("begin: %v", err)
	}
	defer sess.End()

	addr := sess.ObsAddr()
	if addr == "" {
		t.Fatal("no obs addr with -obs-addr set")
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d, want 200", resp.StatusCode)
	}

	sess.SetStats(func() *rt.Stats { return &rt.Stats{} })
	mresp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d, want 200", mresp.StatusCode)
	}
}

func TestWriteJSON(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	doc := map[string]int{"a": 1, "b": 2}
	if err := WriteJSON(path, doc); err != nil {
		t.Fatalf("write: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	var got map[string]int
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got["a"] != 1 || got["b"] != 2 {
		t.Fatalf("round trip: %v", got)
	}
	if !strings.Contains(string(raw), "\n  ") {
		t.Fatalf("not indented: %q", raw)
	}
}

// TestWriteJSONAtomic: a failed write must leave the previous document
// intact and no temp droppings behind.
func TestWriteJSONAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteJSON(path, map[string]string{"v": "old"}); err != nil {
		t.Fatalf("seed write: %v", err)
	}
	// json.Encoder cannot marshal a channel: the encode fails after the
	// temp file exists.
	if err := WriteJSON(path, map[string]any{"bad": make(chan int)}); err == nil {
		t.Fatal("encoding a channel succeeded")
	}
	var got map[string]string
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	if err := json.Unmarshal(raw, &got); err != nil || got["v"] != "old" {
		t.Fatalf("previous document damaged: %q (err %v)", raw, err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Fatalf("temp droppings left behind: %v", names)
	}
}

func TestWriteJSONBadDir(t *testing.T) {
	if err := WriteJSON(filepath.Join(t.TempDir(), "missing", "out.json"), 1); err == nil {
		t.Fatal("write into a missing directory succeeded")
	}
}
