// Package cliflags is the shared observability and profiling flag
// surface of the gravel binaries. Before it existed, gravel-node,
// gravel-bench, and gravel-apps each declared their own drifting subset
// of -json/-cpuprofile/-memprofile; this package gives all three the
// same flags with the same semantics:
//
//	-json       write machine-readable results to this path
//	-trace      record a flight-recorder trace and write it as JSONL
//	-obs-addr   serve /metrics and /healthz on this address
//	-cpuprofile write a CPU profile
//	-memprofile write a heap profile on exit
//
// Usage: call Register before flag.Parse, then Begin after it; End the
// returned session (normally deferred) to stop profiles, drain the
// trace, and shut the observability server down.
package cliflags

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"gravel/internal/obs"
	"gravel/internal/rt"
)

// WriteJSON writes v to path as one indented JSON document,
// atomically: the document lands under a temporary name in path's
// directory and is renamed into place. A process that crashes mid-write
// (a SIGKILLed worker, a chaos iteration) can therefore never leave a
// truncated document at path for a reader — such as the job server's
// retry logic parsing worker result files — to misparse: the path
// either holds the previous complete document or the new one.
func WriteJSON(path string, v any) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	cleanup := func() {
		f.Close()
		os.Remove(f.Name())
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		cleanup()
		return err
	}
	if err := f.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return err
	}
	if err := os.Rename(f.Name(), path); err != nil {
		os.Remove(f.Name())
		return err
	}
	return nil
}

// Common is the shared flag set. Fields are populated by flag.Parse
// after Register binds them.
type Common struct {
	JSONPath   string
	Trace      string
	ObsAddr    string
	CPUProfile string
	MemProfile string

	// ResolverShards is the per-node receive-side resolver bank count
	// (-resolver-shards; 0 or 1 = the paper's serial network thread).
	ResolverShards int
}

// Register binds the shared flags onto fs (flag.CommandLine via
// RegisterDefault). withJSON controls whether the binary takes -json
// (gravel-node's workers report JSON on stdout instead).
func (c *Common) Register(fs *flag.FlagSet, withJSON bool) {
	if withJSON {
		fs.StringVar(&c.JSONPath, "json", "", "also write machine-readable results to this path")
	}
	fs.StringVar(&c.Trace, "trace", "", "record a flight-recorder trace and write it to this path as JSONL")
	fs.StringVar(&c.ObsAddr, "obs-addr", "", "serve Prometheus-style /metrics and /healthz on this address (e.g. :9090 or :0)")
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", "write a CPU profile of this process to this path")
	fs.StringVar(&c.MemProfile, "memprofile", "", "write a heap profile of this process to this path on exit")
	fs.IntVar(&c.ResolverShards, "resolver-shards", 0,
		"receive-side resolver banks per node (power of two, max 64; 0 or 1 = the serial network thread)")
}

// RegisterDefault is Register on the process-wide flag.CommandLine.
func (c *Common) RegisterDefault(withJSON bool) { c.Register(flag.CommandLine, withJSON) }

// Session is the running state behind the shared flags: an installed
// flight recorder, a live observability server, an active CPU profile.
// End releases all of it.
type Session struct {
	c        *Common
	recorder *obs.Recorder
	server   *obs.Server
	cpuFile  *os.File

	health func() error
	stats  func() *rt.Stats
}

// Begin starts whatever the parsed flags ask for: the CPU profile, the
// global flight recorder (-trace), and the observability server
// (-obs-addr). It returns an error instead of exiting so callers keep
// control of their exit paths; the session is safe to End even when
// nothing was enabled.
func (c *Common) Begin() (*Session, error) {
	s := &Session{c: c}
	if c.CPUProfile != "" {
		f, err := os.Create(c.CPUProfile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		s.cpuFile = f
	}
	// -obs-addr alone also installs the recorder: /metrics serves the
	// event counts and latency histograms either way; the JSONL file is
	// only written when -trace asked for it.
	if c.Trace != "" || c.ObsAddr != "" {
		s.recorder = obs.Start(obs.Options{})
	}
	if c.ObsAddr != "" {
		srv, err := obs.NewServer(c.ObsAddr,
			func() error {
				if s.health != nil {
					return s.health()
				}
				return nil
			},
			func() *rt.Stats {
				if s.stats != nil {
					return s.stats()
				}
				return nil
			})
		if err != nil {
			s.End()
			return nil, err
		}
		s.server = srv
	}
	return s, nil
}

// SetHealth wires the /healthz probe to fn (e.g. the transport's
// failure detector). Callable any time; until then /healthz reports ok.
func (s *Session) SetHealth(fn func() error) { s.health = fn }

// SetStats wires live runtime statistics into /metrics. Until set, the
// endpoint serves the recorder's own counters only.
func (s *Session) SetStats(fn func() *rt.Stats) { s.stats = fn }

// ObsAddr returns the bound observability address ("" when -obs-addr
// was not given). With ":0" this is how callers learn the port.
func (s *Session) ObsAddr() string {
	if s.server == nil {
		return ""
	}
	return s.server.Addr()
}

// End stops the CPU profile, writes the heap profile and the trace if
// requested, and shuts the observability server down. It returns the
// first error; partial shutdown still completes.
func (s *Session) End() error {
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	if s.cpuFile != nil {
		pprof.StopCPUProfile()
		keep(s.cpuFile.Close())
		s.cpuFile = nil
	}
	if s.recorder != nil {
		obs.Stop()
		if s.c.Trace != "" {
			keep(s.recorder.WriteJSONLFile(s.c.Trace))
		}
		s.recorder = nil
	}
	if s.server != nil {
		keep(s.server.Close())
		s.server = nil
	}
	if s.c.MemProfile != "" {
		f, err := os.Create(s.c.MemProfile)
		if err != nil {
			keep(err)
		} else {
			runtime.GC()
			keep(pprof.WriteHeapProfile(f))
			keep(f.Close())
		}
	}
	return first
}
