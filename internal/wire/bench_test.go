package wire

import "testing"

// BenchmarkBuilderAppend measures the per-message staging cost.
func BenchmarkBuilderAppend(b *testing.B) {
	bl := NewBuilder(1, 64<<10)
	cmd := PackCmd(OpInc, 0, 3)
	b.SetBytes(MsgWireBytes)
	for i := 0; i < b.N; i++ {
		if bl.Full() {
			bl.Take()
		}
		bl.Append(cmd, uint64(i), 1)
	}
}

// BenchmarkDecode measures per-message decode of a full 64 kB queue.
func BenchmarkDecode(b *testing.B) {
	bl := NewBuilder(1, 64<<10)
	cmd := PackCmd(OpInc, 0, 3)
	for !bl.Full() {
		bl.Append(cmd, 7, 1)
	}
	buf, msgs := bl.Take()
	b.SetBytes(int64(len(buf)))
	var sink uint64
	for i := 0; i < b.N; i++ {
		Decode(buf, func(c, a, v uint64) { sink += a + v })
	}
	_ = sink
	_ = msgs
}

// BenchmarkDecodeRouted measures the hierarchical record format.
func BenchmarkDecodeRouted(b *testing.B) {
	bl := NewRoutedBuilder(1, 64<<10)
	cmd := PackCmd(OpInc, 0, 3)
	for !bl.Full() {
		bl.AppendRouted(cmd, 7, 1, 5)
	}
	buf, _ := bl.Take()
	b.SetBytes(int64(len(buf)))
	var sink uint64
	for i := 0; i < b.N; i++ {
		DecodeRouted(buf, func(c, a, v uint64, d int) { sink += a + uint64(d) })
	}
	_ = sink
}
