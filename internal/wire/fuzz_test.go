package wire

import (
	"encoding/binary"
	"testing"
)

// FuzzDecode feeds arbitrary byte strings to the direct-queue decoder:
// frames arriving from the network must never panic it, whatever their
// contents.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, MsgWireBytes))
	f.Add(make([]byte, MsgWireBytes-1))
	b := wireBuf(OpInc, 7, 42, 1)
	f.Add(b)
	f.Add(b[:len(b)-3])
	f.Fuzz(func(t *testing.T, data []byte) {
		calls := 0
		err := Decode(data, func(cmd, a, v uint64) { calls++ })
		if err != nil && calls != 0 {
			t.Fatalf("Decode called fn %d times and still errored: %v", calls, err)
		}
		if err == nil && calls != len(data)/MsgWireBytes {
			t.Fatalf("Decode visited %d records of %d", calls, len(data)/MsgWireBytes)
		}
	})
}

// FuzzDecodeRouted does the same for routed (per-group) buffers, whose
// records carry final destinations that must be bounds-checked before
// they reach the gateway's re-aggregation path.
func FuzzDecodeRouted(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, RoutedMsgBytes))
	f.Add(make([]byte, RoutedMsgBytes+1))
	huge := make([]byte, RoutedMsgBytes)
	binary.LittleEndian.PutUint64(huge[24:32], 1<<40) // destination overflows int32
	f.Add(huge)
	f.Fuzz(func(t *testing.T, data []byte) {
		err := DecodeRouted(data, func(cmd, a, v uint64, dest int) {
			if dest < 0 {
				t.Fatalf("DecodeRouted surfaced negative destination %d", dest)
			}
		})
		_ = err
	})
}

// FuzzCheckBuf: the transport-boundary validator must never panic and
// must accept exactly what Decode/DecodeRouted accept structurally.
func FuzzCheckBuf(f *testing.F) {
	f.Add([]byte{}, false)
	f.Add(wireBuf(OpPut, 1, 2, 0), false)
	f.Add(make([]byte, RoutedMsgBytes), true)
	f.Fuzz(func(t *testing.T, data []byte, routed bool) {
		if err := CheckBuf(data, routed, 8); err != nil {
			return
		}
		// A buffer CheckBuf accepts must decode cleanly.
		var derr error
		if routed {
			derr = DecodeRouted(data, func(_, _, _ uint64, dest int) {
				if dest < 0 || dest >= 8 {
					t.Fatalf("checked routed buffer yielded dest %d", dest)
				}
			})
		} else {
			derr = Decode(data, func(_, _, _ uint64) {})
		}
		if derr != nil {
			t.Fatalf("CheckBuf accepted a buffer Decode rejects: %v", derr)
		}
	})
}

// wireBuf builds a one-message direct buffer.
func wireBuf(op Op, handler uint8, a, v uint64) []byte {
	b := NewBuilder(0, MsgWireBytes)
	b.Append(PackCmd(op, handler, 0), a, v)
	buf, _ := b.Take()
	return buf
}
