// Package wire defines Gravel's message encoding: the row layout used in
// producer/consumer queue slots (§4.2: first row command, second row
// destination, subsequent rows arguments) and the byte encoding used in
// per-node queues sent over the network.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Op is a network operation code (§6: Gravel supports PUT, atomic
// increment, and a primitive active message API).
type Op uint8

const (
	// OpPut stores a value into the partitioned global address space.
	OpPut Op = iota + 1
	// OpInc atomically adds a value in the PGAS; like every atomic it is
	// serialized through the destination's network thread.
	OpInc
	// OpAM invokes a registered active-message handler at the
	// destination.
	OpAM
	// OpPutSignal stores a value into the PGAS and then atomically
	// increments a signal word co-located at the same destination, as
	// one ordered wire command (NVSHMEM-style signalled put). The
	// signal array and cell travel packed in the command word's high
	// bits (PackSigCmd); a waiter that observes the incremented signal
	// is guaranteed to observe the data store.
	OpPutSignal
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpPut:
		return "PUT"
	case OpInc:
		return "INC"
	case OpAM:
		return "AM"
	case OpPutSignal:
		return "PUT_SIGNAL"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Queue-slot row layout: each message occupies one column of a 4-row
// slot, 32 bytes per message (§4.2).
const (
	// RowCmd packs op, handler and array ID.
	RowCmd = 0
	// RowDest holds the destination node.
	RowDest = 1
	// RowA holds the first argument (PGAS index, or AM argument 0).
	RowA = 2
	// RowB holds the second argument (value, or AM argument 1).
	RowB = 3
	// SlotRows is the number of rows per queue slot.
	SlotRows = 4
)

// PackCmd builds the RowCmd word.
func PackCmd(op Op, handler uint8, arr uint16) uint64 {
	return uint64(op) | uint64(handler)<<8 | uint64(arr)<<16
}

// UnpackCmd splits a RowCmd word.
func UnpackCmd(w uint64) (op Op, handler uint8, arr uint16) {
	return Op(w), uint8(w >> 8), uint16(w >> 16)
}

// MaxSigIdx bounds the signal-cell index a PUT_SIGNAL can address: the
// index shares the command word with the op, data-array and signal-array
// IDs, leaving 24 bits. Signal arrays are small flag/counter regions, so
// 16M cells is far beyond any realistic use.
const MaxSigIdx = 1 << 24

// PackSigCmd builds the RowCmd word of a PUT_SIGNAL: the data array in
// the usual position, the signal array in bits 32-47, and the signal
// cell index split across the handler byte (low 8 bits) and bits 48-63.
// The record's a/b words stay free for the data index and value, so a
// signalled put is a normal 24-byte wire record.
func PackSigCmd(dataArr, sigArr uint16, sigIdx uint32) uint64 {
	if sigIdx >= MaxSigIdx {
		panic(fmt.Sprintf("wire: signal index %d exceeds %d", sigIdx, MaxSigIdx))
	}
	return uint64(OpPutSignal) | uint64(sigIdx&0xff)<<8 | uint64(dataArr)<<16 |
		uint64(sigArr)<<32 | uint64(sigIdx>>8)<<48
}

// UnpackSigCmd splits a PUT_SIGNAL RowCmd word.
func UnpackSigCmd(w uint64) (dataArr, sigArr uint16, sigIdx uint32) {
	return uint16(w >> 16), uint16(w >> 32), uint32(w>>8)&0xff | uint32(w>>48)<<8
}

// MsgWireBytes is the encoded size of one message inside a per-node
// queue. The destination is implicit (the whole queue targets one
// node), so only the command word and two arguments travel.
const MsgWireBytes = 24

// RoutedMsgBytes is the encoded size of one message inside a per-GROUP
// queue (§10 hierarchical aggregation): the final destination travels
// with the message so the receiving group's gateway can re-aggregate.
const RoutedMsgBytes = 32

// Builder accumulates messages bound for a single destination into a
// per-node queue buffer of fixed capacity (§6: 64 kB by default). A
// routed builder targets a *gateway* and each record carries its final
// destination (hierarchical aggregation, §10).
type Builder struct {
	dest   int
	cap    int
	rec    int // bytes per record
	routed bool
	buf    []byte
	msgs   int
}

// NewBuilder creates a builder for the given destination with the given
// byte capacity (rounded down to a whole number of messages, minimum
// one).
func NewBuilder(dest, capBytes int) *Builder {
	n := capBytes / MsgWireBytes
	if n < 1 {
		n = 1
	}
	return &Builder{dest: dest, cap: n * MsgWireBytes, rec: MsgWireBytes, buf: GetBuf(n * MsgWireBytes)}
}

// NewRoutedBuilder creates a builder whose records carry final
// destinations (sent to a group gateway for re-aggregation).
func NewRoutedBuilder(gateway, capBytes int) *Builder {
	n := capBytes / RoutedMsgBytes
	if n < 1 {
		n = 1
	}
	return &Builder{dest: gateway, cap: n * RoutedMsgBytes, rec: RoutedMsgBytes, routed: true, buf: GetBuf(n * RoutedMsgBytes)}
}

// Routed reports whether records carry final destinations.
func (b *Builder) Routed() bool { return b.routed }

// AppendRouted adds one message with an explicit final destination; the
// builder must be routed.
func (b *Builder) AppendRouted(cmd, a, v uint64, finalDest int) {
	if !b.routed {
		panic("wire: AppendRouted on direct builder")
	}
	if b.Full() {
		panic("wire: Append on full builder")
	}
	var rec [RoutedMsgBytes]byte
	binary.LittleEndian.PutUint64(rec[0:8], cmd)
	binary.LittleEndian.PutUint64(rec[8:16], a)
	binary.LittleEndian.PutUint64(rec[16:24], v)
	binary.LittleEndian.PutUint64(rec[24:32], uint64(finalDest))
	b.buf = append(b.buf, rec[:]...)
	b.msgs++
}

// DecodeRouted iterates over a routed buffer's (cmd, a, v, dest)
// records. A destination that cannot be a node index (it overflows
// int32) is rejected before the callback runs, so a malformed network
// frame cannot smuggle a negative or absurd destination into the
// gateway's re-aggregation path.
func DecodeRouted(buf []byte, fn func(cmd, a, v uint64, dest int)) error {
	if len(buf)%RoutedMsgBytes != 0 {
		return fmt.Errorf("wire: routed buffer length %d not a multiple of %d", len(buf), RoutedMsgBytes)
	}
	for off := 0; off < len(buf); off += RoutedMsgBytes {
		cmd := binary.LittleEndian.Uint64(buf[off : off+8])
		a := binary.LittleEndian.Uint64(buf[off+8 : off+16])
		v := binary.LittleEndian.Uint64(buf[off+16 : off+24])
		d := binary.LittleEndian.Uint64(buf[off+24 : off+32])
		if d > math.MaxInt32 {
			return fmt.Errorf("wire: routed record at offset %d has invalid destination %d", off, d)
		}
		fn(cmd, a, v, int(d))
	}
	return nil
}

// CheckBuf validates a per-node (or routed) queue buffer received from
// an untrusted byte stream without applying it: the length must be a
// whole number of records, every op must be known, and routed
// destinations must name a node in [0, nodes). Transports call this
// before handing a payload to the network thread, whose decode path
// treats violations as programming errors.
func CheckBuf(buf []byte, routed bool, nodes int) error {
	rec := MsgWireBytes
	if routed {
		rec = RoutedMsgBytes
	}
	if len(buf)%rec != 0 {
		return fmt.Errorf("wire: buffer length %d not a multiple of %d", len(buf), rec)
	}
	for off := 0; off < len(buf); off += rec {
		op, _, _ := UnpackCmd(binary.LittleEndian.Uint64(buf[off : off+8]))
		switch op {
		case OpPut, OpInc, OpAM, OpPutSignal:
		default:
			return fmt.Errorf("wire: record at offset %d has unknown op %d", off, uint8(op))
		}
		if routed {
			d := binary.LittleEndian.Uint64(buf[off+24 : off+32])
			if d >= uint64(nodes) {
				return fmt.Errorf("wire: record at offset %d targets node %d of %d", off, d, nodes)
			}
		}
	}
	return nil
}

// Dest returns the builder's destination node.
func (b *Builder) Dest() int { return b.dest }

// Msgs returns the number of buffered messages.
func (b *Builder) Msgs() int { return b.msgs }

// Bytes returns the buffered byte count.
func (b *Builder) Bytes() int { return len(b.buf) }

// Empty reports whether no messages are buffered.
func (b *Builder) Empty() bool { return b.msgs == 0 }

// Full reports whether the next Append would overflow.
func (b *Builder) Full() bool { return len(b.buf)+b.rec > b.cap }

// Append adds one message. The caller must flush when Full; the builder
// must be direct (see AppendRouted for routed builders).
func (b *Builder) Append(cmd, a, v uint64) {
	if b.routed {
		panic("wire: Append on routed builder")
	}
	if b.Full() {
		panic("wire: Append on full builder")
	}
	var rec [MsgWireBytes]byte
	binary.LittleEndian.PutUint64(rec[0:8], cmd)
	binary.LittleEndian.PutUint64(rec[8:16], a)
	binary.LittleEndian.PutUint64(rec[16:24], v)
	b.buf = append(b.buf, rec[:]...)
	b.msgs++
}

// AppendRecord appends one encoded direct-queue message record to buf
// and returns the extended slice. It is the raw encoding behind
// Builder.Append for callers that manage their own buffers (the archive
// aggregation strategy grows per-destination segments instead of using
// fixed-capacity builders); the caller is responsible for capacity.
func AppendRecord(buf []byte, cmd, a, v uint64) []byte {
	var rec [MsgWireBytes]byte
	binary.LittleEndian.PutUint64(rec[0:8], cmd)
	binary.LittleEndian.PutUint64(rec[8:16], a)
	binary.LittleEndian.PutUint64(rec[16:24], v)
	return append(buf, rec[:]...)
}

// Take returns the current buffer and message count and resets the
// builder with a fresh buffer from the packet pool. The returned slice
// is owned by the caller; handing it to a fabric transfers ownership to
// the packet lifecycle, whose Done recycles it (see GetBuf/PutBuf).
func (b *Builder) Take() (buf []byte, msgs int) {
	buf = b.buf
	msgs = b.msgs
	b.buf = GetBuf(b.cap)
	b.msgs = 0
	return buf, msgs
}

// Decode iterates over the messages in an encoded per-node queue buffer.
// It returns an error if the buffer is not a whole number of messages.
func Decode(buf []byte, fn func(cmd, a, v uint64)) error {
	if len(buf)%MsgWireBytes != 0 {
		return fmt.Errorf("wire: buffer length %d not a multiple of %d", len(buf), MsgWireBytes)
	}
	for off := 0; off < len(buf); off += MsgWireBytes {
		cmd := binary.LittleEndian.Uint64(buf[off : off+8])
		a := binary.LittleEndian.Uint64(buf[off+8 : off+16])
		v := binary.LittleEndian.Uint64(buf[off+16 : off+24])
		fn(cmd, a, v)
	}
	return nil
}
