package wire

import "sync"

// Packet-buffer pool: the hot path flushes one per-node queue every
// 64 kB of traffic, and before pooling each flush allocated a fresh
// buffer that died as soon as the receiver applied it — per-packet
// garbage exactly like the per-message synchronization the paper's §4.1
// WG-level reservation amortizes away. Builders draw flush buffers from
// here, ownership travels with the packet through Send/Inbox/Done, and
// Done returns the buffer for the next flush.
//
// Two sync.Pools cooperate so the steady state allocates nothing: bufs
// holds recycled buffers boxed in *[]byte holders, and holders keeps the
// empty boxes circulating (putting a raw []byte into a sync.Pool would
// heap-allocate its interface box on every Put).
var (
	bufs    sync.Pool // *[]byte carrying a recycled buffer
	holders sync.Pool // *[]byte with a nil slice, ready to carry one
)

// minPooledBytes keeps tiny buffers (per-message-mode packets, test
// scraps) out of the pool: pooling them would let a 24-byte buffer
// bounce a 64 kB request into a fresh allocation. Small buffers are
// cheap enough for the GC.
const minPooledBytes = 1 << 10

// poolRound rounds a capacity request up to a power of two so buffers
// from builders, routed builders, and transport receive paths — whose
// exact record-aligned capacities differ by a few bytes — land in one
// size class and recycle into each other.
func poolRound(n int) int {
	p := minPooledBytes
	for p < n {
		p <<= 1
	}
	return p
}

// GetBuf returns an empty buffer with capacity at least capBytes, reusing
// a recycled one when possible. The caller owns it until it is handed to
// a fabric via Send; the fabric's Done (or the transport's ack-trim)
// returns it with PutBuf.
func GetBuf(capBytes int) []byte {
	if capBytes < minPooledBytes {
		return make([]byte, 0, capBytes)
	}
	if v := bufs.Get(); v != nil {
		h := v.(*[]byte)
		b := *h
		*h = nil
		holders.Put(h)
		if cap(b) >= capBytes {
			return b[:0]
		}
		// Wrong size class (a run with different queue capacities left
		// it behind): drop it and let the pool re-fill at this class.
	}
	return make([]byte, 0, poolRound(capBytes))
}

// PutBuf recycles a buffer previously returned by GetBuf (or any buffer
// whose owner is done with it). The caller must not touch b afterwards:
// the next GetBuf may hand it to another goroutine.
func PutBuf(b []byte) {
	if cap(b) < minPooledBytes {
		return
	}
	var h *[]byte
	if v := holders.Get(); v != nil {
		h = v.(*[]byte)
	} else {
		h = new([]byte)
	}
	*h = b[:0]
	bufs.Put(h)
}
