package wire

import (
	"encoding/binary"
	"math"
	"testing"
	"testing/quick"
)

func TestPackUnpackCmd(t *testing.T) {
	f := func(op uint8, handler uint8, arr uint16) bool {
		if op == 0 {
			op = 1
		}
		o, h, a := UnpackCmd(PackCmd(Op(op), handler, arr))
		return o == Op(op) && h == handler && a == arr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{OpPut: "PUT", OpInc: "INC", OpAM: "AM", Op(99): "Op(99)"} {
		if got := op.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", op, got, want)
		}
	}
}

func TestBuilderRoundTrip(t *testing.T) {
	b := NewBuilder(3, 10*MsgWireBytes)
	if b.Dest() != 3 || !b.Empty() {
		t.Fatal("fresh builder state wrong")
	}
	type msg struct{ cmd, a, v uint64 }
	var want []msg
	for i := 0; i < 10; i++ {
		m := msg{PackCmd(OpInc, 0, 7), uint64(i), uint64(i * i)}
		b.Append(m.cmd, m.a, m.v)
		want = append(want, m)
	}
	if !b.Full() {
		t.Fatal("builder should be full after 10 messages")
	}
	if b.Msgs() != 10 || b.Bytes() != 10*MsgWireBytes {
		t.Fatalf("Msgs=%d Bytes=%d", b.Msgs(), b.Bytes())
	}
	buf, n := b.Take()
	if n != 10 || !b.Empty() {
		t.Fatalf("Take: n=%d empty=%v", n, b.Empty())
	}
	var got []msg
	if err := Decode(buf, func(cmd, a, v uint64) {
		got = append(got, msg{cmd, a, v})
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d messages, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("message %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestBuilderOverflowPanics(t *testing.T) {
	b := NewBuilder(0, MsgWireBytes)
	b.Append(1, 2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("Append on full builder did not panic")
		}
	}()
	b.Append(4, 5, 6)
}

func TestBuilderMinimumCapacity(t *testing.T) {
	b := NewBuilder(0, 1) // less than one message: rounds up to one
	b.Append(1, 2, 3)
	if !b.Full() {
		t.Fatal("one-message builder should be full")
	}
}

func TestDecodeBadLength(t *testing.T) {
	if err := Decode(make([]byte, MsgWireBytes+1), func(_, _, _ uint64) {}); err == nil {
		t.Fatal("Decode accepted ragged buffer")
	}
}

func TestQuickBuilderDecode(t *testing.T) {
	f := func(msgs []uint64) bool {
		b := NewBuilder(0, (len(msgs)+1)*MsgWireBytes)
		for i, m := range msgs {
			b.Append(PackCmd(OpPut, 0, uint16(i)), m, m^0xff)
		}
		buf, n := b.Take()
		if n != len(msgs) {
			return false
		}
		i := 0
		err := Decode(buf, func(cmd, a, v uint64) {
			_, _, arr := UnpackCmd(cmd)
			if arr != uint16(i) || a != msgs[i] || v != msgs[i]^0xff {
				n = -1
			}
			i++
		})
		return err == nil && n != -1 && i == len(msgs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDecodeRejectsRagged: Decode and DecodeRouted must reject any
// buffer that is not a whole number of records — and DecodeRouted any
// destination that overflows int32 — and never panic.
func TestQuickDecodeRejectsRagged(t *testing.T) {
	f := func(raw []byte) bool {
		errPlain := Decode(raw, func(_, _, _ uint64) {})
		errRouted := DecodeRouted(raw, func(_, _, _ uint64, _ int) {})
		okPlain := (len(raw)%MsgWireBytes == 0) == (errPlain == nil)
		wantRoutedOK := len(raw)%RoutedMsgBytes == 0
		for off := 0; wantRoutedOK && off < len(raw); off += RoutedMsgBytes {
			if binary.LittleEndian.Uint64(raw[off+24:off+32]) > math.MaxInt32 {
				wantRoutedOK = false
			}
		}
		okRouted := wantRoutedOK == (errRouted == nil)
		return okPlain && okRouted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestRoutedBuilderMisuse: the direct/routed APIs must not cross.
func TestRoutedBuilderMisuse(t *testing.T) {
	direct := NewBuilder(0, 1024)
	routed := NewRoutedBuilder(0, 1024)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("AppendRouted on direct", func() { direct.AppendRouted(1, 2, 3, 4) })
	mustPanic("Append on routed", func() { routed.Append(1, 2, 3) })
}

// TestRoutedRoundTrip covers the hierarchical record format end to end.
func TestRoutedRoundTrip(t *testing.T) {
	b := NewRoutedBuilder(9, 10*RoutedMsgBytes)
	if b.Dest() != 9 || !b.Routed() {
		t.Fatal("routed builder state wrong")
	}
	for i := 0; i < 10; i++ {
		b.AppendRouted(PackCmd(OpAM, 3, 0), uint64(i), uint64(i*i), i%5)
	}
	if !b.Full() {
		t.Fatal("should be full")
	}
	buf, n := b.Take()
	if n != 10 {
		t.Fatalf("Take msgs = %d", n)
	}
	i := 0
	if err := DecodeRouted(buf, func(cmd, a, v uint64, dest int) {
		op, h, _ := UnpackCmd(cmd)
		if op != OpAM || h != 3 || a != uint64(i) || v != uint64(i*i) || dest != i%5 {
			t.Fatalf("record %d mismatch", i)
		}
		i++
	}); err != nil {
		t.Fatal(err)
	}
}
