package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"gravel/internal/buildinfo"
	"gravel/internal/rt"
	"gravel/internal/stats"
)

// Server is the live observability endpoint: Prometheus-style text
// metrics on /metrics and a liveness probe on /healthz wired to the
// transport failure detectors. Other subsystems share it — Handle
// mounts additional routes on the same listener, which is how
// gravel-server serves its job API alongside /metrics and /healthz.
type Server struct {
	ln     net.Listener
	srv    *http.Server
	mux    *http.ServeMux
	health func() error
	stats  func() *rt.Stats

	extraMu sync.Mutex
	extra   []func(io.Writer)

	mu   sync.Mutex
	done chan struct{}
}

// NewServer starts an HTTP server on addr (":0" picks a free port).
// health, if non-nil, backs /healthz: nil error → 200 "ok", otherwise
// 503 with the error text. stats, if non-nil, is sampled on every
// /metrics scrape and rendered alongside the recorder's own counters
// and histograms.
func NewServer(addr string, health func() error, statsFn func() *rt.Stats) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{ln: sndbufListener{ln}, health: health, stats: statsFn, done: make(chan struct{})}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux = mux
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		s.srv.Serve(s.ln)
		close(s.done)
	}()
	return s, nil
}

// sndbufListener caps each accepted connection's kernel send buffer.
// Without the cap, TCP autotuning lets a client that stops reading (a
// hung /events stream, a stalled scraper) absorb megabytes of buffered
// writes before the server's write deadline can ever trip; bounding the
// buffer bounds both that memory and the time to evict the client.
type sndbufListener struct{ net.Listener }

func (l sndbufListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetWriteBuffer(32 << 10)
	}
	return c, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Handle mounts an additional route on the server's mux. Register
// everything before traffic arrives (ServeMux registration is not
// synchronized with serving).
func (s *Server) Handle(pattern string, h http.Handler) { s.mux.Handle(pattern, h) }

// AppendMetrics registers fn to run on every /metrics scrape, after
// the recorder and runtime-stats sections. Subsystems sharing the
// listener (gravel-server's job queue, for one) export their own
// Prometheus-style counters this way.
func (s *Server) AppendMetrics(fn func(w io.Writer)) {
	s.extraMu.Lock()
	defer s.extraMu.Unlock()
	s.extra = append(s.extra, fn)
}

// Close shuts the server down.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.srv.Close()
	<-s.done
	return err
}

// healthzDoc is the /healthz payload. Build lets an operator verify
// what a long-lived server is actually running.
type healthzDoc struct {
	Status string `json:"status"`
	Err    string `json:"err,omitempty"`
	Build  string `json:"build"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	doc := healthzDoc{Status: "ok", Build: buildinfo.String()}
	code := http.StatusOK
	if s.health != nil {
		if err := s.health(); err != nil {
			doc.Status = "unhealthy"
			doc.Err = err.Error()
			code = http.StatusServiceUnavailable
		}
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(doc)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var b strings.Builder
	if r := Active(); r != nil {
		writeRecorderMetrics(&b, r)
	}
	if s.stats != nil {
		if st := s.stats(); st != nil {
			writeStatsMetrics(&b, st)
		}
	}
	s.extraMu.Lock()
	extra := append([]func(io.Writer){}, s.extra...)
	s.extraMu.Unlock()
	for _, fn := range extra {
		fn(&b)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, b.String())
}

func writeRecorderMetrics(b *strings.Builder, r *Recorder) {
	fmt.Fprintf(b, "# HELP gravel_trace_events_total Trace events emitted, by kind.\n")
	fmt.Fprintf(b, "# TYPE gravel_trace_events_total counter\n")
	for k := Kind(1); int(k) < len(kindNames); k++ {
		fmt.Fprintf(b, "gravel_trace_events_total{kind=%q} %d\n", k.String(), r.Count(k))
	}
	writeHist(b, "gravel_queue_reserve_wait_ns", "Producer reserve wait (ns).", r.QueueWait())
	writeHist(b, "gravel_flush_rtt_ns", "Transport flush to ack round trip (ns).", r.FlushRTT())
	writeHist(b, "gravel_step_wall_ns", "Kernel step wall time (ns).", r.StepWall())
}

// writeHist renders a stats.SizeHist (power-of-two buckets, per-bucket
// counts) as a Prometheus cumulative histogram.
func writeHist(b *strings.Builder, name, help string, h *stats.SizeHist) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	buckets := h.Buckets()
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].Lo < buckets[j].Lo })
	cum := int64(0)
	for _, bc := range buckets {
		cum += bc.N
		// Bucket Lo=1<<i holds values in [Lo, 2*Lo) (the first also
		// holds 0), so 2*Lo is the inclusive Prometheus "le" edge.
		fmt.Fprintf(b, "%s_bucket{le=\"%d\"} %d\n", name, bc.Lo*2, cum)
	}
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count())
	fmt.Fprintf(b, "%s_sum %d\n", name, h.Sum())
	fmt.Fprintf(b, "%s_count %d\n", name, h.Count())
}

func writeStatsMetrics(b *strings.Builder, st *rt.Stats) {
	g := func(name, help string, v float64) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	c := func(name, help string, v int64) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	g("gravel_virtual_time_ns", "Total virtual time across steps (ns).", st.VirtualNs)
	c("gravel_steps_total", "Recorded kernel steps.", int64(len(st.Steps)))
	c("gravel_queue_local_ops_total", "Fine-grain accesses to local memory.", st.Queue.LocalOps)
	c("gravel_queue_remote_ops_total", "Fine-grain accesses offloaded to the queue.", st.Queue.RemoteOps)
	c("gravel_queue_slots_drained_total", "Queue slots drained by the aggregator.", st.Queue.SlotsDrained)
	c("gravel_queue_msgs_drained_total", "Messages drained from the queue.", st.Queue.MsgsDrained)
	g("gravel_agg_busy_frac", "Capacity-weighted aggregator busy fraction.", st.Agg.BusyFrac)
	c("gravel_agg_flushes_full_total", "Per-node queue flushes triggered by a full buffer.", st.Agg.FlushesFull)
	c("gravel_agg_flushes_timeout_total", "Per-node queue flushes forced at end of step.", st.Agg.FlushesTimeout)
	g("gravel_resolver_shards", "Resolver banks per node (1 = the serial network thread).", float64(st.Resolver.Shards))
	c("gravel_resolver_packets_total", "Packets applied by resolver banks.", st.Resolver.Packets)
	c("gravel_resolver_msgs_total", "Messages applied by resolver banks.", st.Resolver.Msgs)
	c("gravel_resolver_ams_total", "Active messages executed by resolver banks.", st.Resolver.AMs)
	c("gravel_resolver_bypass_packets_total", "Node-local packets resolved on the sending goroutine.", st.Resolver.BypassPackets)
	c("gravel_resolver_bypass_msgs_total", "Messages resolved via the node-local bypass.", st.Resolver.BypassMsgs)
	if len(st.Resolver.PerBank) > 1 {
		fmt.Fprintf(b, "# HELP gravel_resolver_bank_msgs_total Messages applied, by resolver bank.\n")
		fmt.Fprintf(b, "# TYPE gravel_resolver_bank_msgs_total counter\n")
		for bank, bc := range st.Resolver.PerBank {
			fmt.Fprintf(b, "gravel_resolver_bank_msgs_total{bank=\"%d\"} %d\n", bank, bc.Msgs)
		}
	}
	c("gravel_wire_packets_total", "Aggregated packets sent on the wire.", st.Transport.WirePackets)
	c("gravel_wire_bytes_total", "Bytes sent on the wire.", st.Transport.WireBytes)
	c("gravel_self_packets_total", "Node-local packets (never on the wire).", st.Transport.SelfPackets)
	c("gravel_transport_reconnects_total", "Transport reconnects.", st.Transport.Reconnects)
	c("gravel_transport_retries_total", "Transport dial retries.", st.Transport.Retries)
	c("gravel_transport_malformed_total", "Malformed frames dropped.", st.Transport.Malformed)
	c("gravel_transport_corrupt_frames_total", "Corrupt frames recovered by retransmission.", st.Transport.CorruptFrames)
	if st.Faults.Enabled {
		c("gravel_faults_injected_total", "Injected faults, all kinds.", st.Faults.Total())
	}
}
