// Package obs is Gravel's flight recorder: a structured tracing and
// metrics layer threaded through the whole message path — kernel steps,
// work-group slot reservations, queue stall waits, aggregator flushes,
// transport send/ack/retransmit/reconnect, and injected faults.
//
// The recorder is process-global and off by default. Disabled, every
// instrumentation site costs exactly one atomic flag load (Enabled);
// the hot paths guarded by the PR3 AllocsPerRun tests stay at zero
// allocations per operation. Enabled, events are appended to pooled
// per-thread ring buffers (a sync.Pool keeps one ring per P in steady
// state, so appends do not contend on a global lock) and the most
// recent RingCap events per ring survive — flight-recorder semantics:
// when something goes wrong, the tail of the trace is what you want.
//
// Alongside the event rings the recorder maintains latency histograms
// (queue reserve wait, flush→ack RTT, step wall time) that complement
// the packet-size histograms in fabric.Metrics. Traces drain to JSONL
// (WriteJSONL, one event per line, timestamps monotonic) and the
// histograms export through the Prometheus-style /metrics endpoint in
// server.go.
package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"gravel/internal/stats"
)

// Kind identifies one trace event type. The JSONL schema (and
// ValidateJSONL) accepts exactly these kinds.
type Kind uint8

// Event kinds, covering the full message path.
const (
	// KStepBegin marks a kernel launch (tag = step name).
	KStepBegin Kind = iota + 1
	// KStepEnd marks a recorded phase: A = wall ns, B = virtual phase ns.
	KStepEnd
	// KSlotReserve is one work-group slot reservation: A = messages
	// reserved, B = slot sequence number.
	KSlotReserve
	// KQueueStallFull is a producer blocked on a full queue: A = ns waited.
	KQueueStallFull
	// KQueueStallEmpty is a consumer blocked behind an uncommitted
	// reservation: A = ns waited.
	KQueueStallEmpty
	// KAggFlushFull is a per-node queue flushed because it filled:
	// A = bytes, B = messages.
	KAggFlushFull
	// KAggFlushTimeout is a flush forced by the end-of-step timeout
	// flush: A = bytes, B = messages.
	KAggFlushTimeout
	// KSend is a wire packet staged on a transport: A = destination,
	// B = payload bytes.
	KSend
	// KAck is a cumulative acknowledgment trimming one frame:
	// A = sequence number, B = flush→ack RTT ns.
	KAck
	// KRetransmit is a window replay after a reconnect: A = destination,
	// B = frames replayed.
	KRetransmit
	// KReconnect is a re-established outbound connection: A = destination.
	KReconnect
	// KFault is one injected fault (tag = fault kind): A = peer,
	// B = per-link frame index.
	KFault
	// KEpoch is a membership epoch transition (tag = "recover" or
	// "rescale"): A = new generation, B = new node count.
	KEpoch
	// KCheckpoint is one shard checkpoint saved at a step barrier:
	// A = step, B = payload bytes.
	KCheckpoint
	// KRestore is one shard restored from a checkpoint: A = restored
	// step, B = saving epoch's node count.
	KRestore
	// KRecover is a completed recovery: the run healed from a worker
	// loss instead of aborting. A = generation that recovered,
	// B = epochs consumed so far.
	KRecover
	// KResolve is one packet applied by a resolver bank: A = bank,
	// B = messages applied.
	KResolve
	// KResolveBypass is one node-local packet resolved synchronously on
	// the sending goroutine (the from == to fast path): A = messages
	// applied, B = active messages among them.
	KResolveBypass
	// KWait is one WaitUntil verb call by a work-group: A = work-group
	// ID, B = active lanes waited on.
	KWait
	// KSignal is a batch of PUT_SIGNAL resolutions: A = resolver bank
	// (-1 on the bypass path), B = signals applied.
	KSignal
	// KCollective is one host collective (tag = "allreduce:<op>",
	// "broadcast" or "barrier"): A = team size (0 = world),
	// B = contributed value.
	KCollective
	// KAggArchive is one archive-strategy segment sealed onto a
	// destination's chain (the grape-style aggregator): A = segment
	// bytes, B = segment messages.
	KAggArchive
)

var kindNames = [...]string{
	KStepBegin:       "step-begin",
	KStepEnd:         "step-end",
	KSlotReserve:     "slot-reserve",
	KQueueStallFull:  "queue-stall-full",
	KQueueStallEmpty: "queue-stall-empty",
	KAggFlushFull:    "agg-flush-full",
	KAggFlushTimeout: "agg-flush-timeout",
	KSend:            "send",
	KAck:             "ack",
	KRetransmit:      "retransmit",
	KReconnect:       "reconnect",
	KFault:           "fault",
	KEpoch:           "epoch",
	KCheckpoint:      "checkpoint",
	KRestore:         "restore",
	KRecover:         "recover",
	KResolve:         "resolve",
	KResolveBypass:   "resolve-bypass",
	KWait:            "wait",
	KSignal:          "signal",
	KCollective:      "collective",
	KAggArchive:      "agg-archive",
}

// String returns the JSONL name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "unknown"
}

// KindFromString inverts String; ok is false for unknown names.
func KindFromString(s string) (Kind, bool) {
	for k, n := range kindNames {
		if n == s && n != "" {
			return Kind(k), true
		}
	}
	return 0, false
}

// Event is one trace record. TS is nanoseconds since the recorder
// started (monotonic). Node is the node the event happened on (-1 when
// the event is not node-specific). A and B are kind-specific arguments
// (see the Kind constants); Tag carries the step name or fault kind and
// is empty for hot-path events.
type Event struct {
	TS   int64
	Kind Kind
	Node int32
	A, B int64
	Tag  string
}

// ring is one pooled event buffer. A ring is owned by at most one
// goroutine at a time (between pool Get and Put), so appends need no
// lock; draining snapshots under the recorder's registry lock after
// tracing has been stopped or between appends.
type ring struct {
	buf  []Event
	next uint64 // events ever appended; buf[next%len(buf)] is the write slot
}

func (r *ring) append(e Event) {
	r.buf[r.next%uint64(len(r.buf))] = e
	r.next++
}

// events returns the ring's live events, oldest first.
func (r *ring) events() []Event {
	n := uint64(len(r.buf))
	if r.next <= n {
		return r.buf[:r.next]
	}
	out := make([]Event, 0, n)
	start := r.next % n
	out = append(out, r.buf[start:]...)
	out = append(out, r.buf[:start]...)
	return out
}

// Options configures a Recorder.
type Options struct {
	// RingCap is the event capacity of each per-thread ring buffer
	// (default 1 << 14). Once a ring wraps, its oldest events are
	// overwritten — the flight-recorder window.
	RingCap int
}

// Recorder collects trace events and latency histograms.
type Recorder struct {
	start   time.Time
	ringCap int

	pool sync.Pool

	mu    sync.Mutex
	rings []*ring // every ring ever created, for draining

	// Latency histograms (ns, power-of-two buckets), complementing the
	// wire packet-size histograms in fabric.Metrics.
	queueWait stats.SizeHist // producer reserve wait
	flushRTT  stats.SizeHist // transport flush→ack round trip
	stepWall  stats.SizeHist // step wall time

	// Per-kind event counts, maintained even after a ring overwrites
	// its oldest events (the /metrics totals must be monotonic).
	counts [len(kindNames)]atomic.Int64
}

// NewRecorder builds a recorder; it records nothing until installed
// with Install (or used directly via its methods).
func NewRecorder(opt Options) *Recorder {
	if opt.RingCap <= 0 {
		opt.RingCap = 1 << 14
	}
	r := &Recorder{start: time.Now(), ringCap: opt.RingCap}
	r.pool.New = func() any {
		rg := &ring{buf: make([]Event, r.ringCap)}
		r.mu.Lock()
		r.rings = append(r.rings, rg)
		r.mu.Unlock()
		return rg
	}
	return r
}

// Now returns the recorder timebase: nanoseconds since Start, monotonic.
func (r *Recorder) Now() int64 { return int64(time.Since(r.start)) }

// Emit appends one event.
func (r *Recorder) Emit(k Kind, node int, a, b int64, tag string) {
	e := Event{TS: r.Now(), Kind: k, Node: int32(node), A: a, B: b, Tag: tag}
	rg := r.pool.Get().(*ring)
	rg.append(e)
	r.pool.Put(rg)
	r.counts[k].Add(1)
}

// Events returns every recorded event, merged across rings and sorted
// by timestamp.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	var out []Event
	for _, rg := range r.rings {
		out = append(out, rg.events()...)
	}
	r.mu.Unlock()
	sortEvents(out)
	return out
}

// sortEvents orders events by TS (stable insertion; traces are mostly
// sorted already because each ring is time-ordered).
func sortEvents(ev []Event) {
	for i := 1; i < len(ev); i++ {
		for j := i; j > 0 && ev[j].TS < ev[j-1].TS; j-- {
			ev[j], ev[j-1] = ev[j-1], ev[j]
		}
	}
}

// Count returns how many events of kind k were ever emitted (including
// events a wrapped ring has since overwritten).
func (r *Recorder) Count(k Kind) int64 { return r.counts[k].Load() }

// QueueWait returns the producer reserve-wait histogram (ns).
func (r *Recorder) QueueWait() *stats.SizeHist { return &r.queueWait }

// FlushRTT returns the flush→ack round-trip histogram (ns).
func (r *Recorder) FlushRTT() *stats.SizeHist { return &r.flushRTT }

// StepWall returns the step wall-time histogram (ns).
func (r *Recorder) StepWall() *stats.SizeHist { return &r.stepWall }

// Kinds returns every defined event kind in declaration order.
func Kinds() []Kind {
	out := make([]Kind, 0, len(kindNames)-1)
	for k := 1; k < len(kindNames); k++ {
		out = append(out, Kind(k))
	}
	return out
}

// Counts snapshots every kind's exact counter, keyed by kind name —
// the progress-stream view of the recorder (gravel-server diffs two
// snapshots to stream per-interval deltas).
func (r *Recorder) Counts() map[string]int64 {
	out := make(map[string]int64, len(kindNames)-1)
	for k := 1; k < len(kindNames); k++ {
		if n := r.counts[k].Load(); n != 0 {
			out[Kind(k).String()] = n
		}
	}
	return out
}

// ---- process-global recorder ----

var (
	enabled atomic.Bool
	active  atomic.Pointer[Recorder]
)

// Enabled reports whether the global recorder is on. This is the whole
// cost of a disabled instrumentation site: one atomic load, no calls,
// no allocations.
func Enabled() bool { return enabled.Load() }

// Install makes r the global recorder and turns instrumentation on.
// A nil r disables tracing (equivalent to Stop).
func Install(r *Recorder) {
	if r == nil {
		Stop()
		return
	}
	active.Store(r)
	enabled.Store(true)
}

// Start creates, installs, and returns a fresh global recorder.
func Start(opt Options) *Recorder {
	r := NewRecorder(opt)
	Install(r)
	return r
}

// Stop turns instrumentation off and returns the recorder that was
// active (nil if none). The recorder stays drainable after Stop.
func Stop() *Recorder {
	enabled.Store(false)
	r := active.Load()
	active.Store(nil)
	return r
}

// Active returns the installed recorder, or nil.
func Active() *Recorder { return active.Load() }

// Now returns the global recorder's timebase (0 when disabled). Use it
// to bracket a wait before reporting it with one of the Observe
// helpers, so both ends read the same clock.
func Now() int64 {
	if r := active.Load(); r != nil {
		return r.Now()
	}
	return 0
}

// Emit appends one event to the global recorder; a no-op when tracing
// is off. Callers on hot paths must guard with Enabled() so the
// disabled cost stays a single flag check rather than a call.
func Emit(k Kind, node int, a, b int64, tag string) {
	if r := active.Load(); r != nil {
		r.Emit(k, node, a, b, tag)
	}
}

// ObserveQueueWait records one producer reserve wait (and its stall
// event) on the global recorder.
func ObserveQueueWait(node int, ns int64) {
	if r := active.Load(); r != nil {
		r.queueWait.Observe(ns)
		r.Emit(KQueueStallFull, node, ns, 0, "")
	}
}

// ObserveConsumeWait records one consumer stall behind an uncommitted
// reservation on the global recorder.
func ObserveConsumeWait(node int, ns int64) {
	if r := active.Load(); r != nil {
		r.Emit(KQueueStallEmpty, node, ns, 0, "")
	}
}

// ObserveFlushRTT records one flush→ack round trip on the global
// recorder.
func ObserveFlushRTT(ns int64) {
	if r := active.Load(); r != nil {
		r.flushRTT.Observe(ns)
	}
}

// ObserveStepWall records one step's wall time on the global recorder.
func ObserveStepWall(ns int64) {
	if r := active.Load(); r != nil {
		r.stepWall.Observe(ns)
	}
}
