package obs

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"gravel/internal/rt"
)

func TestKindStringRoundTrip(t *testing.T) {
	for k := Kind(1); int(k) < len(kindNames); k++ {
		s := k.String()
		if s == "unknown" || s == "" {
			t.Fatalf("kind %d has no name", k)
		}
		got, ok := KindFromString(s)
		if !ok || got != k {
			t.Fatalf("KindFromString(%q) = %v, %v; want %v, true", s, got, ok, k)
		}
	}
	if _, ok := KindFromString("no-such-kind"); ok {
		t.Fatal("KindFromString accepted an unknown name")
	}
	if Kind(0).String() != "unknown" || Kind(200).String() != "unknown" {
		t.Fatal("out-of-range kinds should stringify as unknown")
	}
}

func TestRecorderEmitAndCount(t *testing.T) {
	r := NewRecorder(Options{RingCap: 64})
	for i := 0; i < 10; i++ {
		r.Emit(KSend, 1, int64(i), 128, "")
	}
	r.Emit(KStepBegin, -1, 0, 0, "phase0")
	if got := r.Count(KSend); got != 10 {
		t.Fatalf("Count(KSend) = %d, want 10", got)
	}
	ev := r.Events()
	if len(ev) != 11 {
		t.Fatalf("Events() returned %d events, want 11", len(ev))
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].TS < ev[i-1].TS {
			t.Fatalf("events not sorted: ts[%d]=%d < ts[%d]=%d", i, ev[i].TS, i-1, ev[i-1].TS)
		}
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	r := NewRecorder(Options{RingCap: 8})
	for i := 0; i < 20; i++ {
		r.Emit(KAck, 0, int64(i), 0, "")
	}
	if got := r.Count(KAck); got != 20 {
		t.Fatalf("Count survived wrap wrong: got %d, want 20", got)
	}
	ev := r.Events()
	if len(ev) != 8 {
		t.Fatalf("ring should keep RingCap events, got %d", len(ev))
	}
	// Most recent 8 events are A=12..19.
	for i, e := range ev {
		if want := int64(12 + i); e.A != want {
			t.Fatalf("event %d: A=%d, want %d (oldest overwritten first)", i, e.A, want)
		}
	}
}

func TestConcurrentEmit(t *testing.T) {
	r := NewRecorder(Options{RingCap: 1 << 12})
	const goroutines, per = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Emit(KSlotReserve, g, int64(i), 0, "")
			}
		}(g)
	}
	wg.Wait()
	if got := r.Count(KSlotReserve); got != goroutines*per {
		t.Fatalf("Count = %d, want %d", got, goroutines*per)
	}
	ev := r.Events()
	if len(ev) != goroutines*per {
		t.Fatalf("Events lost records under concurrency: %d, want %d", len(ev), goroutines*per)
	}
}

func TestGlobalInstallStop(t *testing.T) {
	if Enabled() {
		t.Fatal("recorder enabled at test start")
	}
	Emit(KSend, 0, 1, 2, "") // must be a safe no-op while disabled
	r := Start(Options{RingCap: 32})
	defer Stop()
	if !Enabled() || Active() != r {
		t.Fatal("Start did not install the recorder")
	}
	Emit(KSend, 3, 1, 2, "")
	ObserveQueueWait(3, 1000)
	ObserveConsumeWait(3, 2000)
	ObserveFlushRTT(5000)
	ObserveStepWall(7000)
	if r.Count(KSend) != 1 || r.Count(KQueueStallFull) != 1 || r.Count(KQueueStallEmpty) != 1 {
		t.Fatalf("global emit miscounted: send=%d full=%d empty=%d",
			r.Count(KSend), r.Count(KQueueStallFull), r.Count(KQueueStallEmpty))
	}
	if r.QueueWait().Count() != 1 || r.FlushRTT().Count() != 1 || r.StepWall().Count() != 1 {
		t.Fatal("latency histograms not updated")
	}
	got := Stop()
	if got != r || Enabled() || Active() != nil {
		t.Fatal("Stop did not uninstall the recorder")
	}
	if len(r.Events()) == 0 {
		t.Fatal("recorder should stay drainable after Stop")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	r := NewRecorder(Options{RingCap: 64})
	r.Emit(KStepBegin, -1, 0, 0, "phase0")
	r.Emit(KSlotReserve, 2, 7, 3, "")
	r.Emit(KAggFlushTimeout, 2, 4096, 100, "")
	r.Emit(KStepEnd, -1, 123456, 789, "phase0")

	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	ev, err := ValidateJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("round-trip validation failed: %v\ntrace:\n%s", err, buf.String())
	}
	if len(ev) != 4 {
		t.Fatalf("got %d events, want 4", len(ev))
	}
	if ev[0].Kind != KStepBegin || ev[0].Tag != "phase0" || ev[0].Node != -1 {
		t.Fatalf("first event mangled: %+v", ev[0])
	}
	if ev[1].A != 7 || ev[1].B != 3 {
		t.Fatalf("args mangled: %+v", ev[1])
	}
}

func TestValidateJSONLRejects(t *testing.T) {
	cases := map[string]string{
		"bad json":      "{not json}\n",
		"bad version":   `{"v":99,"ts":1,"kind":"send","node":0}` + "\n",
		"unknown kind":  `{"v":1,"ts":1,"kind":"warp-drive","node":0}` + "\n",
		"bad node":      `{"v":1,"ts":1,"kind":"send","node":-2}` + "\n",
		"negative ts":   `{"v":1,"ts":-5,"kind":"send","node":0}` + "\n",
		"non-monotonic": `{"v":1,"ts":10,"kind":"send","node":0}` + "\n" + `{"v":1,"ts":4,"kind":"ack","node":0}` + "\n",
	}
	for name, in := range cases {
		if _, err := ValidateJSONL(strings.NewReader(in)); err == nil {
			t.Errorf("%s: validation accepted invalid trace", name)
		}
	}
}

func TestServerEndpoints(t *testing.T) {
	r := Start(Options{RingCap: 64})
	defer Stop()
	r.Emit(KSend, 0, 1, 512, "")
	ObserveFlushRTT(250_000)

	healthErr := error(nil)
	st := &rt.Stats{Version: rt.StatsVersion, Model: "gravel", Nodes: 2, VirtualNs: 1e6}
	st.Transport.WirePackets = 42
	srv, err := NewServer("127.0.0.1:0", func() error { return healthErr }, func() *rt.Stats { return st })
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q, want 200 ok", code, body)
	}
	healthErr = fmt.Errorf("node 1 suspected down")
	code, body = get("/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "suspected down") {
		t.Fatalf("unhealthy /healthz = %d %q, want 503", code, body)
	}

	code, body = get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		`gravel_trace_events_total{kind="send"} 1`,
		"gravel_flush_rtt_ns_count 1",
		"gravel_flush_rtt_ns_bucket{le=\"+Inf\"} 1",
		"gravel_wire_packets_total 42",
		"gravel_virtual_time_ns 1e+06",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}
}
