package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// SchemaVersion is the JSONL trace schema version; every line carries
// it as "v". Bump it when a field changes meaning.
const SchemaVersion = 1

// jsonEvent is the JSONL wire form of an Event.
type jsonEvent struct {
	V    int    `json:"v"`
	TS   int64  `json:"ts"`
	Kind string `json:"kind"`
	Node int32  `json:"node"`
	A    int64  `json:"a,omitempty"`
	B    int64  `json:"b,omitempty"`
	Tag  string `json:"tag,omitempty"`
}

// WriteJSONL drains the recorder's events (merged across rings, sorted
// by timestamp) as one JSON object per line.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range r.Events() {
		if err := enc.Encode(jsonEvent{
			V: SchemaVersion, TS: e.TS, Kind: e.Kind.String(),
			Node: e.Node, A: e.A, B: e.B, Tag: e.Tag,
		}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteJSONLFile writes the trace to path (0644, truncating).
func (r *Recorder) WriteJSONLFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ValidateJSONL replays a JSONL trace, checking every line against the
// schema: parseable JSON, schema version, a known kind, node >= -1,
// and non-decreasing timestamps. It returns the number of events and
// the parsed events themselves (for further assertions in tests).
func ValidateJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []Event
	line := 0
	lastTS := int64(-1)
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var je jsonEvent
		if err := json.Unmarshal(raw, &je); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		if je.V != SchemaVersion {
			return nil, fmt.Errorf("obs: trace line %d: schema version %d, want %d", line, je.V, SchemaVersion)
		}
		k, ok := KindFromString(je.Kind)
		if !ok {
			return nil, fmt.Errorf("obs: trace line %d: unknown kind %q", line, je.Kind)
		}
		if je.Node < -1 {
			return nil, fmt.Errorf("obs: trace line %d: invalid node %d", line, je.Node)
		}
		if je.TS < 0 {
			return nil, fmt.Errorf("obs: trace line %d: negative timestamp %d", line, je.TS)
		}
		if je.TS < lastTS {
			return nil, fmt.Errorf("obs: trace line %d: timestamp %d before predecessor %d (not monotonic)", line, je.TS, lastTS)
		}
		lastTS = je.TS
		out = append(out, Event{TS: je.TS, Kind: k, Node: je.Node, A: je.A, B: je.B, Tag: je.Tag})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ValidateJSONLFile is ValidateJSONL over a file.
func ValidateJSONLFile(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ValidateJSONL(f)
}
