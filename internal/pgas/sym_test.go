package pgas

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// symOp is one allocation for the signature property tests: kind 0 is
// Alloc(n), kind 1 is SymAlloc(n), kind 2 is AllocRanges over n split
// points.
type symOp struct {
	kind int
	n    int
}

func (op symOp) apply(s *Space) *Array {
	switch op.kind {
	case 1:
		return s.SymAlloc(op.n)
	case 2:
		bounds := make([]int, s.Nodes()+1)
		for i := 1; i <= s.Nodes(); i++ {
			bounds[i] = bounds[i-1] + op.n + i
		}
		return s.AllocRanges(bounds)
	default:
		return s.Alloc(op.n)
	}
}

// TestSymAllocShape: every node owns exactly perNode cells and SymIndex
// addresses land on the named owner.
func TestSymAllocShape(t *testing.T) {
	s := NewSpace(5)
	a := s.SymAlloc(7)
	if !a.Sym() || a.PerNode() != 7 || a.Len() != 35 {
		t.Fatalf("SymAlloc(7) over 5 nodes: sym=%v perNode=%d len=%d", a.Sym(), a.PerNode(), a.Len())
	}
	for node := 0; node < 5; node++ {
		if got := len(a.Local(node)); got != 7 {
			t.Fatalf("node %d owns %d cells, want 7", node, got)
		}
		for off := 0; off < 7; off++ {
			idx := a.SymIndex(node, off)
			if owner := a.Owner(idx); owner != node {
				t.Fatalf("SymIndex(%d,%d)=%d owned by %d", node, off, idx, owner)
			}
		}
	}
	// A ragged Alloc is not symmetric and must say so.
	b := s.Alloc(12)
	if b.Sym() || b.PerNode() != 0 {
		t.Fatalf("Alloc(12) reports sym=%v perNode=%d", b.Sym(), b.PerNode())
	}
}

// TestSymIndexErrors: SymIndex panics with the package's typed errors
// on a non-symmetric array and on an out-of-range offset.
func TestSymIndexErrors(t *testing.T) {
	s := NewSpace(2)
	plain := s.Alloc(8)
	sym := s.SymAlloc(4)

	func() {
		defer func() {
			if _, ok := recover().(*AllocError); !ok {
				t.Error("SymIndex on non-symmetric array did not panic with *AllocError")
			}
		}()
		plain.SymIndex(0, 0)
	}()
	func() {
		defer func() {
			if _, ok := recover().(*RangeError); !ok {
				t.Error("SymIndex out-of-range offset did not panic with *RangeError")
			}
		}()
		sym.SymIndex(1, 4)
	}()
}

// TestAllocSigAgreement: two spaces performing the same allocation
// sequence end with the same signature and assign the same ID and
// owner map to every array — the property that makes symmetric IDs
// valid cluster-wide.
func TestAllocSigAgreement(t *testing.T) {
	ops := []symOp{{0, 100}, {1, 8}, {2, 3}, {1, 1}, {0, 17}}
	a, b := NewSpace(4), NewSpace(4)
	for _, op := range ops {
		x, y := op.apply(a), op.apply(b)
		if x.ID() != y.ID() || x.Len() != y.Len() || x.Sym() != y.Sym() {
			t.Fatalf("same sequence diverged: id %d/%d len %d/%d", x.ID(), y.ID(), x.Len(), y.Len())
		}
	}
	if a.AllocSig() != b.AllocSig() {
		t.Fatalf("same allocation sequence, different signatures: %016x vs %016x", a.AllocSig(), b.AllocSig())
	}
}

// TestAllocSigEmptyStable: an empty space has a stable nonzero
// signature (so "no allocations yet" still verifies symmetric).
func TestAllocSigEmptyStable(t *testing.T) {
	if s := NewSpace(3).AllocSig(); s == 0 || s != NewSpace(3).AllocSig() {
		t.Fatalf("empty-space signature unstable or zero: %016x", s)
	}
}

// TestQuickAllocSigDetectsPermutation is the symmetric-heap property
// test: for a random allocation sequence, replaying it verbatim on a
// second space reproduces the signature, while swapping any two
// distinct allocations changes it — which is exactly what lets
// rt.VerifySymmetric reject a permuted allocation order
// deterministically instead of letting nodes silently address each
// other's wrong arrays.
func TestQuickAllocSigDetectsPermutation(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%6 + 2 // 2..7 allocations
		ops := make([]symOp, n)
		for i := range ops {
			ops[i] = symOp{kind: rng.Intn(3), n: rng.Intn(40) + 1}
		}

		build := func(seq []symOp) uint64 {
			s := NewSpace(3)
			for _, op := range seq {
				op.apply(s)
			}
			return s.AllocSig()
		}

		want := build(ops)
		if build(ops) != want { // replay agrees
			return false
		}

		// Swap two random positions; if the swapped ops differ, the
		// signature must differ (order is part of the contract).
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j || ops[i] == ops[j] {
			return true
		}
		perm := append([]symOp(nil), ops...)
		perm[i], perm[j] = perm[j], perm[i]
		return build(perm) != want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestAllocSigShapeSensitivity: the signature distinguishes same-kind
// allocations of different shapes and different kinds of the same
// shape.
func TestAllocSigShapeSensitivity(t *testing.T) {
	sig := func(f func(*Space)) uint64 {
		s := NewSpace(2)
		f(s)
		return s.AllocSig()
	}
	a := sig(func(s *Space) { s.Alloc(8) })
	b := sig(func(s *Space) { s.Alloc(9) })
	c := sig(func(s *Space) { s.SymAlloc(8) })
	d := sig(func(s *Space) { s.SymAlloc(4) })
	if a == b || a == c || c == d {
		t.Fatalf("signature collisions: Alloc8=%x Alloc9=%x Sym8=%x Sym4=%x", a, b, c, d)
	}
}
