package pgas

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestBlockPartition(t *testing.T) {
	s := NewSpace(4)
	a := s.Alloc(10) // part = 3: [0,3) [3,6) [6,9) [9,10)
	if a.PartSize() != 3 {
		t.Fatalf("part = %d", a.PartSize())
	}
	wantOwner := []int{0, 0, 0, 1, 1, 1, 2, 2, 2, 3}
	for i, w := range wantOwner {
		if got := a.Owner(uint64(i)); got != w {
			t.Errorf("Owner(%d) = %d, want %d", i, got, w)
		}
	}
	lo, hi := a.LocalRange(3)
	if lo != 9 || hi != 10 {
		t.Errorf("LocalRange(3) = [%d,%d)", lo, hi)
	}
	if len(a.Local(1)) != 3 || len(a.Local(3)) != 1 {
		t.Errorf("local sizes wrong")
	}
}

func TestRangePartition(t *testing.T) {
	s := NewSpace(3)
	a := s.AllocRanges([]int{0, 5, 5, 12})
	if a.Len() != 12 {
		t.Fatalf("Len = %d", a.Len())
	}
	for i := 0; i < 5; i++ {
		if a.Owner(uint64(i)) != 0 {
			t.Errorf("Owner(%d) != 0", i)
		}
	}
	for i := 5; i < 12; i++ {
		if a.Owner(uint64(i)) != 2 {
			t.Errorf("Owner(%d) = %d, want 2", i, a.Owner(uint64(i)))
		}
	}
	if n := len(a.Local(1)); n != 0 {
		t.Errorf("node 1 owns %d elements, want 0", n)
	}
}

func TestAllocRangesValidation(t *testing.T) {
	s := NewSpace(2)
	for _, bad := range [][]int{
		{0, 1},    // wrong length
		{1, 2, 3}, // doesn't start at 0
		{0, 5, 3}, // descending
		{0, 0, 0}, // zero length
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AllocRanges(%v) did not panic", bad)
				}
			}()
			s.AllocRanges(bad)
		}()
	}
}

func TestAtomicOps(t *testing.T) {
	s := NewSpace(2)
	a := s.Alloc(8)
	a.Store(5, 10)
	if a.Load(5) != 10 {
		t.Fatal("store/load")
	}
	if a.Add(5, 3) != 13 {
		t.Fatal("add")
	}
	if !a.CompareAndSwap(5, 13, 20) || a.CompareAndSwap(5, 13, 1) {
		t.Fatal("cas")
	}
	if !a.MinU64(5, 7) || a.Load(5) != 7 {
		t.Fatal("min store")
	}
	if a.MinU64(5, 9) {
		t.Fatal("min should not raise")
	}
}

func TestSumFill(t *testing.T) {
	s := NewSpace(3)
	a := s.Alloc(100)
	a.Fill(2)
	if a.Sum() != 200 {
		t.Fatalf("Sum = %d", a.Sum())
	}
	a.Fill(0)
	if a.Sum() != 0 {
		t.Fatalf("Sum after clear = %d", a.Sum())
	}
}

func TestArrayRegistry(t *testing.T) {
	s := NewSpace(2)
	a := s.Alloc(4)
	b := s.Alloc(4)
	if a.ID() == b.ID() {
		t.Fatal("duplicate IDs")
	}
	if s.Array(a.ID()) != a || s.Array(b.ID()) != b {
		t.Fatal("registry lookup broken")
	}
}

func TestConcurrentAdds(t *testing.T) {
	s := NewSpace(4)
	a := s.Alloc(16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				a.Add(uint64(i%16), 1)
			}
		}()
	}
	wg.Wait()
	if a.Sum() != 8000 {
		t.Fatalf("Sum = %d, want 8000", a.Sum())
	}
}

// TestQuickOwnerConsistency: for any array size and node count, every
// index has exactly one owner and owners partition the index space in
// order.
func TestQuickOwnerConsistency(t *testing.T) {
	f := func(szRaw uint16, nodesRaw uint8) bool {
		sz := int(szRaw)%5000 + 1
		nodes := int(nodesRaw)%16 + 1
		s := NewSpace(nodes)
		a := s.Alloc(sz)
		prev := 0
		count := 0
		for i := 0; i < sz; i++ {
			o := a.Owner(uint64(i))
			if o < prev || o >= nodes {
				return false
			}
			lo, hi := a.LocalRange(o)
			if i < lo || i >= hi {
				return false
			}
			prev = o
			count++
		}
		total := 0
		for n := 0; n < nodes; n++ {
			total += len(a.Local(n))
		}
		return total == sz
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestOwnerOutOfRangePanics(t *testing.T) {
	s := NewSpace(2)
	a := s.Alloc(4)
	defer func() {
		if recover() == nil {
			t.Fatal("Owner out of range did not panic")
		}
	}()
	a.Owner(4)
}
