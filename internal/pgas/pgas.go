// Package pgas implements the partitioned global address space Gravel's
// PUT and atomic-increment operations act on (§6): symmetric distributed
// arrays, block-partitioned across nodes, with a local slice per node.
//
// In the paper, a slice of each distributed array lives at the same
// virtual address on every node; here each array has a small integer ID
// that travels in the message command word, and owner/offset computation
// is explicit.
package pgas

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// AllocError reports an invalid allocation request. Alloc, AllocRanges
// and SymAlloc panic with it (a bad size is a programming error, like a
// bad gravel.Config field), mirroring Config.Validate's *ConfigError
// funnel: callers that recover see one typed value with the offending
// parameters instead of a raw string.
type AllocError struct {
	// Kind names the allocator ("Alloc", "AllocRanges", "SymAlloc").
	Kind string
	// Detail describes the invalid request.
	Detail string
}

func (e *AllocError) Error() string {
	return fmt.Sprintf("pgas: %s: %s", e.Kind, e.Detail)
}

// RangeError reports an out-of-range index on a specific array. Owner
// and the atomic cell accessors panic with it, so the diagnostic carries
// which array was misaddressed, not just the bad index.
type RangeError struct {
	// Array is the misaddressed array's ID.
	Array uint16
	// Index is the out-of-range global index.
	Index uint64
	// Len is the array's global length.
	Len int
}

func (e *RangeError) Error() string {
	return fmt.Sprintf("pgas: array %d: index %d out of range [0,%d)", e.Array, e.Index, e.Len)
}

// Space is one cluster-wide address space.
type Space struct {
	nodes  int
	mu     sync.Mutex
	arrays []*Array
	// sig is the running allocation-order signature: a chained FNV-1a
	// hash over every allocation's (kind, shape). Two processes of a
	// distributed run perform the same allocation sequence iff their
	// signatures match — which is what makes symmetric array IDs and
	// offsets valid cluster-wide (see SymAlloc / AllocSig).
	sig uint64
}

// fnvOffset/fnvPrime are the FNV-1a constants used for the allocation
// signature chain.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func (s *Space) mixSig(vs ...uint64) {
	h := s.sig
	if h == 0 {
		h = fnvOffset
	}
	for _, v := range vs {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= fnvPrime
			v >>= 8
		}
	}
	s.sig = h
}

// NewSpace creates an address space spanning the given number of nodes.
func NewSpace(nodes int) *Space {
	if nodes <= 0 {
		panic("pgas: non-positive node count")
	}
	return &Space{nodes: nodes}
}

// Nodes returns the number of nodes in the space.
func (s *Space) Nodes() int { return s.nodes }

// Array is a symmetric distributed array of 64-bit words. By default it
// is block-partitioned (element i lives on node i/part); AllocRanges
// creates arrays with explicit per-node ranges instead (used to
// co-locate per-edge slots with the owning vertex).
type Array struct {
	id     uint16
	space  *Space
	len    int
	part   int
	sym    bool  // allocated by SymAlloc: every node owns exactly part cells
	bounds []int // nil for block partition; else len nodes+1, ascending
	local  [][]uint64
}

// Alloc creates a distributed array of n elements, zero-initialized.
func (s *Space) Alloc(n int) *Array {
	if n <= 0 {
		panic(&AllocError{Kind: "Alloc", Detail: fmt.Sprintf("non-positive array length %d", n)})
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	part := (n + s.nodes - 1) / s.nodes
	a := s.allocLocked(n, part, false)
	s.mixSig(1, uint64(n))
	return a
}

// SymAlloc creates a symmetric-heap array: every node owns exactly
// perNode cells, and — because array IDs are assigned in allocation
// order — the same (array ID, offset) pair names the same remote cell
// on every process of a distributed run, provided every process
// performs the same allocation sequence (verify with AllocSig). Global
// index node*perNode + off addresses node's cell off; see SymIndex.
func (s *Space) SymAlloc(perNode int) *Array {
	if perNode <= 0 {
		panic(&AllocError{Kind: "SymAlloc", Detail: fmt.Sprintf("non-positive per-node length %d", perNode)})
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	a := s.allocLocked(perNode*s.nodes, perNode, true)
	s.mixSig(3, uint64(perNode))
	return a
}

// allocLocked builds a block-partitioned array of n cells with stride
// part; s.mu must be held.
func (s *Space) allocLocked(n, part int, sym bool) *Array {
	if len(s.arrays) > math.MaxUint16 {
		panic(&AllocError{Kind: "Alloc", Detail: "too many arrays"})
	}
	a := &Array{
		id:    uint16(len(s.arrays)),
		space: s,
		len:   n,
		part:  part,
		sym:   sym,
		local: make([][]uint64, s.nodes),
	}
	for node := 0; node < s.nodes; node++ {
		lo := node * part
		hi := lo + part
		if hi > n {
			hi = n
		}
		if lo > n {
			lo = n
		}
		a.local[node] = make([]uint64, hi-lo)
	}
	s.arrays = append(s.arrays, a)
	return a
}

// AllocSig returns the space's allocation-order signature: a hash
// chained over every allocation performed so far, in order. Distributed
// runs compare signatures across processes (rt.VerifySymmetric) to
// reject permuted allocation orders deterministically — two spaces with
// the same signature assign the same ID, shape and owner map to every
// array, so symmetric IDs and offsets agree cluster-wide.
func (s *Space) AllocSig() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sig == 0 {
		return fnvOffset // empty space: stable nonzero signature
	}
	return s.sig
}

// AllocRanges creates a distributed array where node i owns global
// indexes [bounds[i], bounds[i+1]). bounds must have Nodes()+1 ascending
// entries starting at 0; bounds[Nodes()] is the array length.
func (s *Space) AllocRanges(bounds []int) *Array {
	if len(bounds) != s.nodes+1 {
		panic(&AllocError{Kind: "AllocRanges", Detail: fmt.Sprintf("got %d bounds for %d nodes", len(bounds), s.nodes)})
	}
	if bounds[0] != 0 {
		panic(&AllocError{Kind: "AllocRanges", Detail: "bounds must start at 0"})
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] < bounds[i-1] {
			panic(&AllocError{Kind: "AllocRanges", Detail: fmt.Sprintf("bounds must be ascending (bounds[%d]=%d < bounds[%d]=%d)", i, bounds[i], i-1, bounds[i-1])})
		}
	}
	n := bounds[s.nodes]
	if n <= 0 {
		panic(&AllocError{Kind: "AllocRanges", Detail: fmt.Sprintf("non-positive array length %d", n)})
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.arrays) > math.MaxUint16 {
		panic(&AllocError{Kind: "AllocRanges", Detail: "too many arrays"})
	}
	a := &Array{
		id:     uint16(len(s.arrays)),
		space:  s,
		len:    n,
		bounds: append([]int(nil), bounds...),
		local:  make([][]uint64, s.nodes),
	}
	for node := 0; node < s.nodes; node++ {
		a.local[node] = make([]uint64, bounds[node+1]-bounds[node])
	}
	s.arrays = append(s.arrays, a)
	s.mixSig(2, uint64(len(bounds)))
	for _, b := range bounds {
		s.mixSig(uint64(b))
	}
	return a
}

// Array returns the array with the given ID.
func (s *Space) Array(id uint16) *Array {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(id) >= len(s.arrays) {
		panic(fmt.Sprintf("pgas: unknown array id %d", id))
	}
	return s.arrays[id]
}

// ID returns the array's identifier (used in message command words).
func (a *Array) ID() uint16 { return a.id }

// Len returns the global length.
func (a *Array) Len() int { return a.len }

// PartSize returns the block-partition stride (elements per node); it
// is 0 for arrays created with AllocRanges, whose partition is the
// bounds slice.
func (a *Array) PartSize() int { return a.part }

// Sym reports whether the array came from SymAlloc.
func (a *Array) Sym() bool { return a.sym }

// PerNode returns a symmetric array's per-node cell count (0 for
// non-symmetric arrays).
func (a *Array) PerNode() int {
	if !a.sym {
		return 0
	}
	return a.part
}

// SymIndex returns the global index of symmetric cell off on node —
// the address every process uses to name that node's copy. The array
// must be symmetric and off within [0, PerNode()).
func (a *Array) SymIndex(node int, off int) uint64 {
	if !a.sym {
		panic(&AllocError{Kind: "SymIndex", Detail: fmt.Sprintf("array %d is not symmetric", a.id)})
	}
	if off < 0 || off >= a.part {
		panic(&RangeError{Array: a.id, Index: uint64(off), Len: a.part})
	}
	return uint64(node*a.part + off)
}

// Owner returns the node owning global index idx.
func (a *Array) Owner(idx uint64) int {
	i := int(idx)
	if i < 0 || i >= a.len {
		panic(&RangeError{Array: a.id, Index: idx, Len: a.len})
	}
	if a.bounds == nil {
		return i / a.part
	}
	// Binary search for the owning range.
	lo, hi := 0, len(a.bounds)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if a.bounds[mid] <= i {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// LocalRange returns the [lo,hi) global index range owned by node.
func (a *Array) LocalRange(node int) (lo, hi int) {
	if a.bounds != nil {
		return a.bounds[node], a.bounds[node+1]
	}
	lo = node * a.part
	hi = lo + len(a.local[node])
	return lo, hi
}

// Local returns node's local slice. Elements must be accessed with the
// atomic helpers below when the cluster is running.
func (a *Array) Local(node int) []uint64 { return a.local[node] }

func (a *Array) cell(idx uint64) *uint64 {
	node := a.Owner(idx)
	lo, _ := a.LocalRange(node)
	return &a.local[node][int(idx)-lo]
}

// Load atomically reads element idx.
func (a *Array) Load(idx uint64) uint64 { return atomic.LoadUint64(a.cell(idx)) }

// Store atomically writes element idx.
func (a *Array) Store(idx, val uint64) { atomic.StoreUint64(a.cell(idx), val) }

// Add atomically adds delta to element idx and returns the new value.
func (a *Array) Add(idx, delta uint64) uint64 { return atomic.AddUint64(a.cell(idx), delta) }

// CompareAndSwap atomically replaces element idx if it equals old.
func (a *Array) CompareAndSwap(idx, old, new uint64) bool {
	return atomic.CompareAndSwapUint64(a.cell(idx), old, new)
}

// MinU64 atomically lowers element idx to val if val is smaller,
// returning true if it stored.
func (a *Array) MinU64(idx, val uint64) bool {
	c := a.cell(idx)
	for {
		cur := atomic.LoadUint64(c)
		if val >= cur {
			return false
		}
		if atomic.CompareAndSwapUint64(c, cur, val) {
			return true
		}
	}
}

// Sum returns the sum of all elements (not atomic with respect to
// concurrent writers; call at quiescence).
func (a *Array) Sum() uint64 {
	var s uint64
	for _, l := range a.local {
		for _, v := range l {
			s += v
		}
	}
	return s
}

// Fill sets every element to v (call at quiescence).
func (a *Array) Fill(v uint64) {
	for _, l := range a.local {
		for i := range l {
			l[i] = v
		}
	}
}
