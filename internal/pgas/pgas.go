// Package pgas implements the partitioned global address space Gravel's
// PUT and atomic-increment operations act on (§6): symmetric distributed
// arrays, block-partitioned across nodes, with a local slice per node.
//
// In the paper, a slice of each distributed array lives at the same
// virtual address on every node; here each array has a small integer ID
// that travels in the message command word, and owner/offset computation
// is explicit.
package pgas

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Space is one cluster-wide address space.
type Space struct {
	nodes  int
	mu     sync.Mutex
	arrays []*Array
}

// NewSpace creates an address space spanning the given number of nodes.
func NewSpace(nodes int) *Space {
	if nodes <= 0 {
		panic("pgas: non-positive node count")
	}
	return &Space{nodes: nodes}
}

// Nodes returns the number of nodes in the space.
func (s *Space) Nodes() int { return s.nodes }

// Array is a symmetric distributed array of 64-bit words. By default it
// is block-partitioned (element i lives on node i/part); AllocRanges
// creates arrays with explicit per-node ranges instead (used to
// co-locate per-edge slots with the owning vertex).
type Array struct {
	id     uint16
	space  *Space
	len    int
	part   int
	bounds []int // nil for block partition; else len nodes+1, ascending
	local  [][]uint64
}

// Alloc creates a distributed array of n elements, zero-initialized.
func (s *Space) Alloc(n int) *Array {
	if n <= 0 {
		panic("pgas: non-positive array length")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.arrays) > math.MaxUint16 {
		panic("pgas: too many arrays")
	}
	part := (n + s.nodes - 1) / s.nodes
	a := &Array{
		id:    uint16(len(s.arrays)),
		space: s,
		len:   n,
		part:  part,
		local: make([][]uint64, s.nodes),
	}
	for node := 0; node < s.nodes; node++ {
		lo := node * part
		hi := lo + part
		if hi > n {
			hi = n
		}
		if lo > n {
			lo = n
		}
		a.local[node] = make([]uint64, hi-lo)
	}
	s.arrays = append(s.arrays, a)
	return a
}

// AllocRanges creates a distributed array where node i owns global
// indexes [bounds[i], bounds[i+1]). bounds must have Nodes()+1 ascending
// entries starting at 0; bounds[Nodes()] is the array length.
func (s *Space) AllocRanges(bounds []int) *Array {
	if len(bounds) != s.nodes+1 {
		panic(fmt.Sprintf("pgas: AllocRanges got %d bounds for %d nodes", len(bounds), s.nodes))
	}
	if bounds[0] != 0 {
		panic("pgas: bounds must start at 0")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] < bounds[i-1] {
			panic("pgas: bounds must be ascending")
		}
	}
	n := bounds[s.nodes]
	if n <= 0 {
		panic("pgas: non-positive array length")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.arrays) > math.MaxUint16 {
		panic("pgas: too many arrays")
	}
	a := &Array{
		id:     uint16(len(s.arrays)),
		space:  s,
		len:    n,
		bounds: append([]int(nil), bounds...),
		local:  make([][]uint64, s.nodes),
	}
	for node := 0; node < s.nodes; node++ {
		a.local[node] = make([]uint64, bounds[node+1]-bounds[node])
	}
	s.arrays = append(s.arrays, a)
	return a
}

// Array returns the array with the given ID.
func (s *Space) Array(id uint16) *Array {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(id) >= len(s.arrays) {
		panic(fmt.Sprintf("pgas: unknown array id %d", id))
	}
	return s.arrays[id]
}

// ID returns the array's identifier (used in message command words).
func (a *Array) ID() uint16 { return a.id }

// Len returns the global length.
func (a *Array) Len() int { return a.len }

// PartSize returns the block-partition stride (elements per node); it
// is 0 for arrays created with AllocRanges, whose partition is the
// bounds slice.
func (a *Array) PartSize() int { return a.part }

// Owner returns the node owning global index idx.
func (a *Array) Owner(idx uint64) int {
	i := int(idx)
	if i >= a.len {
		panic(fmt.Sprintf("pgas: index %d out of range [0,%d)", idx, a.len))
	}
	if a.bounds == nil {
		return i / a.part
	}
	// Binary search for the owning range.
	lo, hi := 0, len(a.bounds)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if a.bounds[mid] <= i {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// LocalRange returns the [lo,hi) global index range owned by node.
func (a *Array) LocalRange(node int) (lo, hi int) {
	if a.bounds != nil {
		return a.bounds[node], a.bounds[node+1]
	}
	lo = node * a.part
	hi = lo + len(a.local[node])
	return lo, hi
}

// Local returns node's local slice. Elements must be accessed with the
// atomic helpers below when the cluster is running.
func (a *Array) Local(node int) []uint64 { return a.local[node] }

func (a *Array) cell(idx uint64) *uint64 {
	node := a.Owner(idx)
	lo, _ := a.LocalRange(node)
	return &a.local[node][int(idx)-lo]
}

// Load atomically reads element idx.
func (a *Array) Load(idx uint64) uint64 { return atomic.LoadUint64(a.cell(idx)) }

// Store atomically writes element idx.
func (a *Array) Store(idx, val uint64) { atomic.StoreUint64(a.cell(idx), val) }

// Add atomically adds delta to element idx and returns the new value.
func (a *Array) Add(idx, delta uint64) uint64 { return atomic.AddUint64(a.cell(idx), delta) }

// CompareAndSwap atomically replaces element idx if it equals old.
func (a *Array) CompareAndSwap(idx, old, new uint64) bool {
	return atomic.CompareAndSwapUint64(a.cell(idx), old, new)
}

// MinU64 atomically lowers element idx to val if val is smaller,
// returning true if it stored.
func (a *Array) MinU64(idx, val uint64) bool {
	c := a.cell(idx)
	for {
		cur := atomic.LoadUint64(c)
		if val >= cur {
			return false
		}
		if atomic.CompareAndSwapUint64(c, cur, val) {
			return true
		}
	}
}

// Sum returns the sum of all elements (not atomic with respect to
// concurrent writers; call at quiescence).
func (a *Array) Sum() uint64 {
	var s uint64
	for _, l := range a.local {
		for _, v := range l {
			s += v
		}
	}
	return s
}

// Fill sets every element to v (call at quiescence).
func (a *Array) Fill(v uint64) {
	for _, l := range a.local {
		for i := range l {
			l[i] = v
		}
	}
}
