package timemodel

// Energy accounting for the §8.1 discussion: the paper argues a
// dedicated hardware aggregator would be more energy-efficient than
// burning an out-of-order multi-GHz core that polls 65 % of the time.
// Power draws are rough public figures for the Table 3 APU
// (A10-7850K: 95 W TDP shared between 2 CPU modules and the GPU) and a
// FDR InfiniBand NIC; the comparison between configurations is the
// point, not the absolute joules.

// Power draw constants in watts.
const (
	// PowerGPUW is the GPU's share of the APU package when busy.
	PowerGPUW = 45.0
	// PowerCPUCoreW is one busy CPU hardware thread (aggregator or
	// network thread).
	PowerCPUCoreW = 12.0
	// PowerCPUPollW is a polling CPU thread (§8.1: still burning an
	// out-of-order multi-GHz core even when no work arrives).
	PowerCPUPollW = 10.0
	// PowerHWAggW is the paper's proposed small programmable
	// aggregation core.
	PowerHWAggW = 1.5
	// PowerNICW is the NIC's active transfer draw.
	PowerNICW = 8.0
)

// EnergyJ estimates the energy in joules consumed by one node's
// activity snapshot, given whether aggregation ran on a CPU thread or
// on the proposed dedicated hardware (§8.1). Poll time is charged to
// the CPU aggregator only — a hardware aggregator idles cheaply enough
// to ignore.
func EnergyJ(s Snapshot, hwAggregator bool) float64 {
	const nsToS = 1e-9
	e := s.GPU * nsToS * PowerGPUW
	e += s.Net * nsToS * PowerCPUCoreW
	e += (s.WireSend + s.WireRecv) * nsToS * PowerNICW
	if hwAggregator {
		e += s.Agg * nsToS * PowerHWAggW
	} else {
		e += s.Agg*nsToS*PowerCPUCoreW + s.AggIdle*nsToS*PowerCPUPollW
	}
	return e
}
