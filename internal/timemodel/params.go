// Package timemodel defines the virtual-time cost model used to convert
// event counts produced by the functional simulation into the timings the
// paper reports.
//
// The model is LogGP-flavored: every network message is charged a fixed
// per-message overhead (Alpha) plus a size-proportional term (size/Beta),
// and every on-node activity (GPU cycles, aggregator repacking, network
// thread message resolution) is charged to a per-node clock. Phase times
// are composed from those clocks according to each networking model's
// overlap semantics (see package core and package models).
//
// Parameters are calibrated against Table 3 of the paper (AMD A10-7850K
// APU: 8 CUs at 720 MHz, 2 CPU cores / 4 threads at 3.7 GHz, 56 Gb/s
// InfiniBand) so that the *shape* of every figure is reproduced.
// Absolute numbers are explicitly not a goal.
package timemodel

// Params holds every knob of the virtual-time cost model. The zero value
// is not useful; start from Default.
type Params struct {
	// --- GPU (Table 3: 8 CUs, 720 MHz, 64-wide wavefronts) ---

	// GPUClockHz is the GPU core clock.
	GPUClockHz float64
	// CUs is the number of compute units.
	CUs int
	// WFWidth is the number of lanes in a wavefront.
	WFWidth int
	// MaxWGsPerCU bounds occupancy when scratchpad is not the limit.
	MaxWGsPerCU int
	// ScratchpadPerCU is the scratchpad (LDS) capacity per CU in bytes.
	ScratchpadPerCU int
	// CyclesVectorIssue is the cost, in cycles, of issuing one vector
	// instruction for one wavefront (includes average memory latency as
	// hidden by multithreading at full occupancy).
	CyclesVectorIssue int64
	// CyclesMemCacheLine is the additional cost of a divergent memory
	// access (one extra cache line) in cycles.
	CyclesMemCacheLine int64
	// CyclesAtomic is the cost of one global atomic RMW issued by a lane.
	CyclesAtomic int64
	// CyclesBarrier is the cost of a WG-level barrier.
	CyclesBarrier int64
	// OccupancyForFullThroughput is the number of resident WGs per CU
	// needed to fully hide memory latency; below it, GPU time scales by
	// needed/actual.
	OccupancyForFullThroughput int

	// --- CPU (Table 3: 2 cores / 4 threads, 3.7 GHz) ---

	// CPUClockHz is the CPU core clock.
	CPUClockHz float64
	// CPUThreads is the number of hardware threads per node.
	CPUThreads int
	// CPUOpNs is the average cost of one work-item's worth of application
	// work when executed by a CPU thread (Fig. 13 CPU-only baseline).
	CPUOpNs float64

	// --- Aggregator (one CPU thread, §6) ---

	// AggPerMsgNs is the cost to repack one message from the
	// producer/consumer queue into a per-node queue.
	AggPerMsgNs float64
	// AggPerSlotNs is the fixed cost to acquire and release one
	// producer/consumer queue slot.
	AggPerSlotNs float64
	// AggPerFlushNs is the fixed cost to hand one per-node queue to the
	// NIC (MPI_Isend bookkeeping).
	AggPerFlushNs float64

	// --- Network thread (one CPU thread, §6) ---

	// NetThreadPerMsgNs is the cost to decode one received message and
	// resolve it as a local memory operation.
	NetThreadPerMsgNs float64
	// NetThreadPerByteNs is the size-proportional receive cost.
	NetThreadPerByteNs float64
	// NetThreadPerPacketNs is the per-received-queue dispatch cost
	// (MPI receive completion and progress).
	NetThreadPerPacketNs float64
	// NetThreadAMExtraNs is the additional cost of dispatching an active
	// message handler.
	NetThreadAMExtraNs float64
	// NetThreadSignalExtraNs is the additional cost of resolving the
	// signal-word increment of a PUT_SIGNAL (the data store is already
	// covered by NetThreadPerMsgNs).
	NetThreadSignalExtraNs float64

	// --- Device waits (PGAS verbs) ---

	// WaitUntilNs is the fixed virtual-time cost charged for one
	// WaitUntil verb call. The wall-clock time a waiting work-group
	// spins is scheduler-dependent and therefore nondeterministic, so
	// the model charges this deterministic constant instead — the cost
	// of issuing the monitored load loop, not of the latency being
	// waited out (which other clocks already account for).
	WaitUntilNs float64

	// --- Wire (Table 3: 56 Gb/s InfiniBand) ---

	// AlphaNs is the per-message wire overhead (NIC + MPI + propagation).
	AlphaNs float64
	// BetaBytesPerNs is the link bandwidth in bytes per nanosecond
	// (7 bytes/ns = 56 Gb/s).
	BetaBytesPerNs float64

	// --- Runtime fixed costs ---

	// KernelLaunchNs is the per-kernel-launch overhead.
	KernelLaunchNs float64
	// BarrierNs is the cost of one cluster-wide barrier (quiescence
	// round), charged once per superstep per round.
	BarrierNs float64

	// --- Gravel configuration (Table 3 bottom row) ---

	// PerNodeQueueBytes is the capacity of one per-node (per-destination)
	// aggregation queue.
	PerNodeQueueBytes int
	// QueuesPerDest is how many per-node queues are allocated per
	// destination (over-allocation hides latency).
	QueuesPerDest int
	// FlushTimeout is the aggregation timeout in nanoseconds (125 µs).
	FlushTimeoutNs int64
	// PCQBytes is the producer/consumer queue capacity.
	PCQBytes int
	// AggregatorThreads is the number of aggregator CPU threads.
	AggregatorThreads int
}

// Default returns parameters calibrated to the paper's Table 3 node
// architecture. See EXPERIMENTS.md for the calibration procedure.
func Default() *Params {
	return &Params{
		GPUClockHz:                 720e6,
		CUs:                        8,
		WFWidth:                    64,
		MaxWGsPerCU:                8,
		ScratchpadPerCU:            64 << 10,
		CyclesVectorIssue:          4,
		CyclesMemCacheLine:         24,
		CyclesAtomic:               200,
		CyclesBarrier:              32,
		OccupancyForFullThroughput: 4,

		CPUClockHz: 3.7e9,
		CPUThreads: 4,
		CPUOpNs:    25.0,

		AggPerMsgNs:   8,
		AggPerSlotNs:  80,
		AggPerFlushNs: 400,

		NetThreadPerMsgNs:    22,
		NetThreadPerByteNs:   0.04,
		NetThreadPerPacketNs: 2000,
		NetThreadAMExtraNs:   10,

		NetThreadSignalExtraNs: 6,
		WaitUntilNs:            120,

		AlphaNs:        3000,
		BetaBytesPerNs: 7.0,

		KernelLaunchNs: 8000,
		BarrierNs:      4000,

		PerNodeQueueBytes: 64 << 10,
		QueuesPerDest:     3,
		FlushTimeoutNs:    125_000,
		PCQBytes:          1 << 20,
		AggregatorThreads: 1,
	}
}

// GPUCyclesToNs converts accumulated per-device GPU cycles (already
// normalized to a single CU's cycle stream) to nanoseconds.
func (p *Params) GPUCyclesToNs(cycles int64) float64 {
	return float64(cycles) / p.GPUClockHz * 1e9
}

// WireNs returns the wire time charged for one packet of the given size.
func (p *Params) WireNs(bytes int) float64 {
	return p.AlphaNs + float64(bytes)/p.BetaBytesPerNs
}

// Occupancy returns the number of work-groups resident per CU given the
// per-WG scratchpad demand, and the resulting GPU slowdown factor
// (>= 1) from reduced latency hiding.
func (p *Params) Occupancy(scratchPerWG int) (wgsPerCU int, slowdown float64) {
	wgsPerCU = p.MaxWGsPerCU
	if scratchPerWG > 0 {
		byScratch := p.ScratchpadPerCU / scratchPerWG
		if byScratch < 1 {
			byScratch = 1
		}
		if byScratch < wgsPerCU {
			wgsPerCU = byScratch
		}
	}
	slowdown = 1
	if wgsPerCU < p.OccupancyForFullThroughput {
		slowdown = float64(p.OccupancyForFullThroughput) / float64(wgsPerCU)
	}
	return wgsPerCU, slowdown
}
