package timemodel

import "sync/atomic"

// Clocks accumulates per-node virtual time on independent resources.
// All fields are in nanoseconds scaled by ClockScale to allow atomic
// integer accumulation of fractional costs.
//
// The functional simulation runs concurrently, so every accumulator is
// atomic. Reads during a quiescent phase boundary are exact.
type Clocks struct {
	gpu       atomic.Int64 // GPU busy time
	agg       atomic.Int64 // aggregator CPU busy time
	net       atomic.Int64 // network thread CPU busy time
	wireSend  atomic.Int64 // NIC send-side wire occupancy
	wireRecv  atomic.Int64 // NIC receive-side wire occupancy
	host      atomic.Int64 // host-side serial time (launches, chunk waits)
	aggIdle   atomic.Int64 // aggregator poll (idle) time, for §8.1
	aggSlots  atomic.Int64
	aggMsgs   atomic.Int64
	netMsgs   atomic.Int64
	pktsSent  atomic.Int64
	bytesSent atomic.Int64
}

// ClockScale converts nanoseconds to internal fixed-point ticks.
const ClockScale = 16

func toTicks(ns float64) int64 { return int64(ns * ClockScale) }

// AddGPU charges ns to the GPU clock.
func (c *Clocks) AddGPU(ns float64) { c.gpu.Add(toTicks(ns)) }

// AddAgg charges ns of useful work to the aggregator clock.
func (c *Clocks) AddAgg(ns float64) { c.agg.Add(toTicks(ns)) }

// AddAggIdle charges ns of polling to the aggregator idle clock.
func (c *Clocks) AddAggIdle(ns float64) { c.aggIdle.Add(toTicks(ns)) }

// AddNet charges ns to the network thread clock.
func (c *Clocks) AddNet(ns float64) { c.net.Add(toTicks(ns)) }

// AddWireSend charges ns of send-side wire occupancy.
func (c *Clocks) AddWireSend(ns float64) { c.wireSend.Add(toTicks(ns)) }

// AddWireRecv charges ns of receive-side wire occupancy.
func (c *Clocks) AddWireRecv(ns float64) { c.wireRecv.Add(toTicks(ns)) }

// AddHost charges ns of non-overlappable host time.
func (c *Clocks) AddHost(ns float64) { c.host.Add(toTicks(ns)) }

// CountAggSlot records one consumed producer/consumer queue slot holding
// msgs messages.
func (c *Clocks) CountAggSlot(msgs int) {
	c.aggSlots.Add(1)
	c.aggMsgs.Add(int64(msgs))
}

// CountNetMsgs records messages resolved by the network thread.
func (c *Clocks) CountNetMsgs(n int) { c.netMsgs.Add(int64(n)) }

// CountPacket records one packet put on the wire.
func (c *Clocks) CountPacket(bytes int) {
	c.pktsSent.Add(1)
	c.bytesSent.Add(int64(bytes))
}

// Snapshot is a point-in-time copy of a node's clocks, in nanoseconds.
type Snapshot struct {
	GPU, Agg, AggIdle, Net, WireSend, WireRecv, Host float64
	AggSlots, AggMsgs, NetMsgs, PktsSent, BytesSent  int64
}

// Snapshot returns the current clock values. It is only exact when the
// node is quiescent.
func (c *Clocks) Snapshot() Snapshot {
	return Snapshot{
		GPU:       float64(c.gpu.Load()) / ClockScale,
		Agg:       float64(c.agg.Load()) / ClockScale,
		AggIdle:   float64(c.aggIdle.Load()) / ClockScale,
		Net:       float64(c.net.Load()) / ClockScale,
		WireSend:  float64(c.wireSend.Load()) / ClockScale,
		WireRecv:  float64(c.wireRecv.Load()) / ClockScale,
		Host:      float64(c.host.Load()) / ClockScale,
		AggSlots:  c.aggSlots.Load(),
		AggMsgs:   c.aggMsgs.Load(),
		NetMsgs:   c.netMsgs.Load(),
		PktsSent:  c.pktsSent.Load(),
		BytesSent: c.bytesSent.Load(),
	}
}

// Sub returns s - prev, field by field.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	return Snapshot{
		GPU:       s.GPU - prev.GPU,
		Agg:       s.Agg - prev.Agg,
		AggIdle:   s.AggIdle - prev.AggIdle,
		Net:       s.Net - prev.Net,
		WireSend:  s.WireSend - prev.WireSend,
		WireRecv:  s.WireRecv - prev.WireRecv,
		Host:      s.Host - prev.Host,
		AggSlots:  s.AggSlots - prev.AggSlots,
		AggMsgs:   s.AggMsgs - prev.AggMsgs,
		NetMsgs:   s.NetMsgs - prev.NetMsgs,
		PktsSent:  s.PktsSent - prev.PktsSent,
		BytesSent: s.BytesSent - prev.BytesSent,
	}
}

// Overlapped composes the phase time for networking models that overlap
// communication with computation (Gravel, message-per-lane, coalesced
// APIs): the phase is bounded by the busiest resource, plus any host
// serial time.
func (s Snapshot) Overlapped() float64 {
	m := s.GPU
	for _, v := range []float64{s.Agg, s.Net, s.WireSend, s.WireRecv} {
		if v > m {
			m = v
		}
	}
	return m + s.Host
}

// Sequential composes the phase time for the bulk-synchronous coprocessor
// model: nothing overlaps.
func (s Snapshot) Sequential() float64 {
	return s.GPU + s.Agg + s.Net + s.WireSend + s.WireRecv + s.Host
}

// PhaseRecord describes one superstep of a run: the per-node phase times
// and the cluster-level phase time (max over nodes plus barrier cost).
type PhaseRecord struct {
	Name    string
	NodeNs  []float64
	PhaseNs float64
}

// Total sums phase times.
func Total(phases []PhaseRecord) float64 {
	var t float64
	for _, p := range phases {
		t += p.PhaseNs
	}
	return t
}
