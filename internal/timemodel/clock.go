package timemodel

import "sync/atomic"

// Clocks accumulates per-node virtual time on independent resources.
// All fields are in nanoseconds scaled by ClockScale to allow atomic
// integer accumulation of fractional costs.
//
// The functional simulation runs concurrently, so every accumulator is
// atomic. Reads during a quiescent phase boundary are exact.
type Clocks struct {
	gpu       atomic.Int64 // GPU busy time
	agg       atomic.Int64 // aggregator CPU busy time
	net       atomic.Int64 // network thread CPU busy time
	wireSend  atomic.Int64 // NIC send-side wire occupancy
	wireRecv  atomic.Int64 // NIC receive-side wire occupancy
	host      atomic.Int64 // host-side serial time (launches, chunk waits)
	aggIdle   atomic.Int64 // aggregator poll (idle) time, for §8.1
	aggSlots  atomic.Int64
	aggMsgs   atomic.Int64
	netMsgs   atomic.Int64
	pktsSent  atomic.Int64
	bytesSent atomic.Int64

	// netBanks, when non-nil, splits the net accumulator by resolver
	// bank: banked resolution runs the bank goroutines concurrently, so
	// the phase bound is the busiest bank, not the serial sum. Nil (the
	// single-bank default) leaves every composition bit-identical to
	// the serial network thread.
	netBanks []atomic.Int64
}

// ClockScale converts nanoseconds to internal fixed-point ticks.
const ClockScale = 16

func toTicks(ns float64) int64 { return int64(ns * ClockScale) }

// AddGPU charges ns to the GPU clock.
func (c *Clocks) AddGPU(ns float64) { c.gpu.Add(toTicks(ns)) }

// AddAgg charges ns of useful work to the aggregator clock.
func (c *Clocks) AddAgg(ns float64) { c.agg.Add(toTicks(ns)) }

// AddAggIdle charges ns of polling to the aggregator idle clock.
func (c *Clocks) AddAggIdle(ns float64) { c.aggIdle.Add(toTicks(ns)) }

// AddNet charges ns to the network thread clock.
func (c *Clocks) AddNet(ns float64) { c.net.Add(toTicks(ns)) }

// ConfigureNetBanks enables per-bank net accounting with the given
// bank count. It must be called before any concurrent clock use;
// banks <= 1 leaves the serial single-accumulator behaviour.
func (c *Clocks) ConfigureNetBanks(banks int) {
	if banks > 1 {
		c.netBanks = make([]atomic.Int64, banks)
	}
}

// AddNetBank charges ns of resolver work to one bank. Without
// ConfigureNetBanks it is exactly AddNet — same single accumulator,
// same one-call tick rounding — so a single-bank run stays
// bit-identical to the serial network thread.
func (c *Clocks) AddNetBank(bank int, ns float64) {
	t := toTicks(ns)
	c.net.Add(t)
	if c.netBanks != nil {
		c.netBanks[bank].Add(t)
	}
}

// AddWireSend charges ns of send-side wire occupancy.
func (c *Clocks) AddWireSend(ns float64) { c.wireSend.Add(toTicks(ns)) }

// AddWireRecv charges ns of receive-side wire occupancy.
func (c *Clocks) AddWireRecv(ns float64) { c.wireRecv.Add(toTicks(ns)) }

// AddHost charges ns of non-overlappable host time.
func (c *Clocks) AddHost(ns float64) { c.host.Add(toTicks(ns)) }

// CountAggSlot records one consumed producer/consumer queue slot holding
// msgs messages.
func (c *Clocks) CountAggSlot(msgs int) {
	c.aggSlots.Add(1)
	c.aggMsgs.Add(int64(msgs))
}

// CountNetMsgs records messages resolved by the network thread.
func (c *Clocks) CountNetMsgs(n int) { c.netMsgs.Add(int64(n)) }

// CountPacket records one packet put on the wire.
func (c *Clocks) CountPacket(bytes int) {
	c.pktsSent.Add(1)
	c.bytesSent.Add(int64(bytes))
}

// Snapshot is a point-in-time copy of a node's clocks, in nanoseconds.
type Snapshot struct {
	GPU, Agg, AggIdle, Net, WireSend, WireRecv, Host float64
	AggSlots, AggMsgs, NetMsgs, PktsSent, BytesSent  int64
	// NetBanks is the per-bank split of Net, nil unless the node runs
	// banked resolution (ConfigureNetBanks).
	NetBanks []float64
}

// Snapshot returns the current clock values. It is only exact when the
// node is quiescent.
func (c *Clocks) Snapshot() Snapshot {
	s := Snapshot{
		GPU:       float64(c.gpu.Load()) / ClockScale,
		Agg:       float64(c.agg.Load()) / ClockScale,
		AggIdle:   float64(c.aggIdle.Load()) / ClockScale,
		Net:       float64(c.net.Load()) / ClockScale,
		WireSend:  float64(c.wireSend.Load()) / ClockScale,
		WireRecv:  float64(c.wireRecv.Load()) / ClockScale,
		Host:      float64(c.host.Load()) / ClockScale,
		AggSlots:  c.aggSlots.Load(),
		AggMsgs:   c.aggMsgs.Load(),
		NetMsgs:   c.netMsgs.Load(),
		PktsSent:  c.pktsSent.Load(),
		BytesSent: c.bytesSent.Load(),
	}
	c.snapshotBanks(&s)
	return s
}

// snapshotBanks fills s.NetBanks when banked accounting is on.
func (c *Clocks) snapshotBanks(s *Snapshot) {
	if c.netBanks == nil {
		return
	}
	s.NetBanks = make([]float64, len(c.netBanks))
	for i := range c.netBanks {
		s.NetBanks[i] = float64(c.netBanks[i].Load()) / ClockScale
	}
}

// Sub returns s - prev, field by field. NetBanks subtracts
// element-wise (prev may be shorter, e.g. the zero Snapshot before the
// first phase).
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	var banks []float64
	if s.NetBanks != nil {
		banks = make([]float64, len(s.NetBanks))
		for i, v := range s.NetBanks {
			if i < len(prev.NetBanks) {
				v -= prev.NetBanks[i]
			}
			banks[i] = v
		}
	}
	return Snapshot{
		NetBanks:  banks,
		GPU:       s.GPU - prev.GPU,
		Agg:       s.Agg - prev.Agg,
		AggIdle:   s.AggIdle - prev.AggIdle,
		Net:       s.Net - prev.Net,
		WireSend:  s.WireSend - prev.WireSend,
		WireRecv:  s.WireRecv - prev.WireRecv,
		Host:      s.Host - prev.Host,
		AggSlots:  s.AggSlots - prev.AggSlots,
		AggMsgs:   s.AggMsgs - prev.AggMsgs,
		NetMsgs:   s.NetMsgs - prev.NetMsgs,
		PktsSent:  s.PktsSent - prev.PktsSent,
		BytesSent: s.BytesSent - prev.BytesSent,
	}
}

// NetBound is the network-thread contribution to a phase: the serial
// net time, or — under banked resolution, where the bank goroutines
// run concurrently — the busiest bank.
func (s Snapshot) NetBound() float64 {
	if s.NetBanks == nil {
		return s.Net
	}
	m := 0.0
	for _, v := range s.NetBanks {
		if v > m {
			m = v
		}
	}
	return m
}

// Overlapped composes the phase time for networking models that overlap
// communication with computation (Gravel, message-per-lane, coalesced
// APIs): the phase is bounded by the busiest resource, plus any host
// serial time.
func (s Snapshot) Overlapped() float64 {
	m := s.GPU
	for _, v := range []float64{s.Agg, s.NetBound(), s.WireSend, s.WireRecv} {
		if v > m {
			m = v
		}
	}
	return m + s.Host
}

// Sequential composes the phase time for the bulk-synchronous coprocessor
// model: nothing overlaps between resources, but the resolver banks
// within the net resource still run concurrently with each other.
func (s Snapshot) Sequential() float64 {
	return s.GPU + s.Agg + s.NetBound() + s.WireSend + s.WireRecv + s.Host
}

// PhaseRecord describes one superstep of a run: the per-node phase times
// and the cluster-level phase time (max over nodes plus barrier cost).
type PhaseRecord struct {
	Name    string
	NodeNs  []float64
	PhaseNs float64
}

// Total sums phase times.
func Total(phases []PhaseRecord) float64 {
	var t float64
	for _, p := range phases {
		t += p.PhaseNs
	}
	return t
}
