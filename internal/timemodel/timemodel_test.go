package timemodel

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestDefaultsSane(t *testing.T) {
	p := Default()
	if p.CUs != 8 || p.WFWidth != 64 {
		t.Fatal("Table 3 GPU shape wrong")
	}
	if p.BetaBytesPerNs != 7.0 {
		t.Fatal("56 Gb/s is 7 bytes/ns")
	}
	if p.PerNodeQueueBytes != 64<<10 || p.FlushTimeoutNs != 125_000 {
		t.Fatal("Gravel configuration row wrong")
	}
}

func TestWireNs(t *testing.T) {
	p := Default()
	small := p.WireNs(24)
	big := p.WireNs(64 << 10)
	if small <= p.AlphaNs || big <= small {
		t.Fatalf("WireNs not monotone: %v %v", small, big)
	}
	// A 64 kB packet at 7 GB/s takes ~9.4 us plus alpha.
	want := p.AlphaNs + float64(64<<10)/7.0
	if big != want {
		t.Fatalf("WireNs(64kB) = %v, want %v", big, want)
	}
}

func TestOccupancy(t *testing.T) {
	p := Default()
	if wgs, slow := p.Occupancy(0); wgs != p.MaxWGsPerCU || slow != 1 {
		t.Fatal("zero-scratch occupancy")
	}
	if wgs, slow := p.Occupancy(p.ScratchpadPerCU); wgs != 1 || slow != float64(p.OccupancyForFullThroughput) {
		t.Fatal("full-scratch occupancy")
	}
}

func TestClocksAccumulateAndSnapshot(t *testing.T) {
	var c Clocks
	c.AddGPU(10)
	c.AddAgg(5)
	c.AddAggIdle(1)
	c.AddNet(3)
	c.AddWireSend(2)
	c.AddWireRecv(4)
	c.AddHost(6)
	c.CountAggSlot(7)
	c.CountNetMsgs(9)
	c.CountPacket(100)
	s := c.Snapshot()
	if s.GPU != 10 || s.Agg != 5 || s.AggIdle != 1 || s.Net != 3 ||
		s.WireSend != 2 || s.WireRecv != 4 || s.Host != 6 {
		t.Fatalf("snapshot wrong: %+v", s)
	}
	if s.AggSlots != 1 || s.AggMsgs != 7 || s.NetMsgs != 9 || s.PktsSent != 1 || s.BytesSent != 100 {
		t.Fatalf("counters wrong: %+v", s)
	}
}

func TestSnapshotSub(t *testing.T) {
	var c Clocks
	c.AddGPU(10)
	a := c.Snapshot()
	c.AddGPU(5)
	c.AddNet(2)
	d := c.Snapshot().Sub(a)
	if d.GPU != 5 || d.Net != 2 {
		t.Fatalf("delta wrong: %+v", d)
	}
}

func TestOverlappedVsSequential(t *testing.T) {
	s := Snapshot{GPU: 10, Agg: 3, Net: 7, WireSend: 2, WireRecv: 1, Host: 4}
	if got := s.Overlapped(); got != 14 { // max(10,3,7,2,1) + 4
		t.Fatalf("Overlapped = %v, want 14", got)
	}
	if got := s.Sequential(); got != 27 {
		t.Fatalf("Sequential = %v, want 27", got)
	}
}

// TestQuickCompositionBounds: Overlapped <= Sequential always, and both
// are at least Host.
func TestQuickCompositionBounds(t *testing.T) {
	f := func(g, a, n, ws, wr, h uint16) bool {
		s := Snapshot{
			GPU: float64(g), Agg: float64(a), Net: float64(n),
			WireSend: float64(ws), WireRecv: float64(wr), Host: float64(h),
		}
		o, q := s.Overlapped(), s.Sequential()
		return o <= q+1e-9 && o >= s.Host && q >= s.Host
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClocksConcurrent(t *testing.T) {
	var c Clocks
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.AddGPU(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Snapshot().GPU; got != 8000 {
		t.Fatalf("concurrent GPU sum = %v", got)
	}
}

func TestPhaseTotal(t *testing.T) {
	phases := []PhaseRecord{{PhaseNs: 5}, {PhaseNs: 7}}
	if Total(phases) != 12 {
		t.Fatal("Total wrong")
	}
}

func TestEnergyModel(t *testing.T) {
	s := Snapshot{GPU: 1e9, Agg: 0.35e9, AggIdle: 0.65e9, Net: 1e9, WireSend: 0.1e9, WireRecv: 0.1e9}
	cpu := EnergyJ(s, false)
	hw := EnergyJ(s, true)
	if hw >= cpu {
		t.Fatalf("hardware aggregator (%v J) should save energy vs CPU (%v J)", hw, cpu)
	}
	// The saving must be at least the polling power for the idle window.
	if cpu-hw < 0.65*PowerCPUPollW*0.9 {
		t.Fatalf("saving %v J too small", cpu-hw)
	}
}
