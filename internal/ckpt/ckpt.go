// Package ckpt is the tiny codec shared by app checkpoint payloads: a
// shard's state is a vector of uint64 words (a table slice, a rank
// vector, a centroid set, plus a short header) encoded little-endian.
// Keeping the codec in one place means every app's payload is
// byte-stable across epochs — the restore side of a checkpoint must
// decode exactly what a possibly differently-sharded epoch encoded.
package ckpt

import (
	"encoding/binary"
	"fmt"
)

// AppendU64 appends one word to a payload being built.
func AppendU64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

// EncodeU64s encodes a word vector, with cap reserved for extra words
// the caller will append.
func EncodeU64s(words []uint64, extra int) []byte {
	dst := make([]byte, 0, 8*(len(words)+extra))
	for _, v := range words {
		dst = AppendU64(dst, v)
	}
	return dst
}

// DecodeU64s decodes a whole payload back into words.
func DecodeU64s(p []byte) ([]uint64, error) {
	if len(p)%8 != 0 {
		return nil, fmt.Errorf("ckpt: %d-byte payload is not a whole number of words", len(p))
	}
	out := make([]uint64, len(p)/8)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(p[i*8:])
	}
	return out, nil
}
