// Package buildinfo identifies what a gravel binary was built from.
// Every binary exposes it through -version, and the observability
// server reports it in the /healthz payload so an operator can check
// what a long-lived gravel-server deployment is actually running
// without shelling into the box.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Version is the release identifier, overridable at link time:
//
//	go build -ldflags "-X gravel/internal/buildinfo.Version=v1.2.3"
var Version = "dev"

// String is the one-line build description: version, Go toolchain, and
// — when built from a version-controlled checkout — the VCS revision
// and commit time stamped by the Go toolchain.
func String() string {
	s := Version + " " + runtime.Version()
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return s
	}
	var rev, at, dirty string
	for _, kv := range bi.Settings {
		switch kv.Key {
		case "vcs.revision":
			rev = kv.Value
		case "vcs.time":
			at = kv.Value
		case "vcs.modified":
			if kv.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		s += " " + rev + dirty
		if at != "" {
			s += " " + at
		}
	}
	return s
}

// Full is the -version output of the named binary.
func Full(binary string) string { return fmt.Sprintf("%s %s", binary, String()) }
