package jobqueue

import (
	"container/list"

	"gravel/internal/noderun"
)

// lru is the result cache: spec key -> completed RunResult, evicting
// the least recently used entry at capacity. A capacity of 0 disables
// it (every get misses, adds are dropped).
type lru struct {
	cap     int
	order   *list.List // front = most recent; values are *lruEntry
	entries map[string]*list.Element
}

type lruEntry struct {
	key string
	res *noderun.RunResult
}

func newLRU(capacity int) *lru {
	return &lru{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

func (c *lru) get(key string) (*noderun.RunResult, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).res, true
}

func (c *lru) add(key string, res *noderun.RunResult) {
	if c.cap <= 0 {
		return
	}
	if el, ok := c.entries[key]; ok {
		el.Value.(*lruEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&lruEntry{key: key, res: res})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*lruEntry).key)
	}
}

func (c *lru) len() int { return c.order.Len() }
