// Package jobqueue is the scheduling core of gravel-server: a priority
// queue of cluster-run jobs with three properties a long-lived
// multi-tenant service needs that a one-shot binary does not:
//
//   - dedup: identical in-flight requests — same (app, model, scale,
//     seed, fabric, ...) tuple, i.e. the same noderun Spec.Key() —
//     collapse onto one execution, and every submitter polls the same
//     job;
//   - bounded retries: a job whose workers die (a SIGKILLed process, a
//     tripped failure detector) is re-queued with exponential backoff
//     up to a retry budget before it is declared failed;
//   - result cache: completed results are kept in an LRU keyed by the
//     same tuple, so a repeated request is answered without launching
//     anything.
//
// The queue knows nothing about HTTP or worker pools: internal/server
// pulls jobs with Claim and settles them with Complete/Fail.
package jobqueue

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"gravel/internal/noderun"
)

// State is a job's lifecycle position.
type State string

const (
	StateQueued   State = "queued" // in the heap, or waiting out a retry backoff
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether no further transitions can happen.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Transition is one step of a job's history, streamed to progress
// watchers.
type Transition struct {
	At      time.Time `json:"at"`
	State   State     `json:"state"`
	Attempt int       `json:"attempt"`
	Note    string    `json:"note,omitempty"`
}

// Job is one submitted cluster run. All fields are guarded by the
// owning queue's lock; callers outside the package see snapshots
// (View).
type Job struct {
	id       string
	key      string
	spec     noderun.Spec
	priority int
	seq      uint64 // FIFO tiebreak within a priority
	index    int    // heap position, -1 when not in the heap

	state     State
	attempts  int // executions started
	dedup     int // extra submissions folded onto this job
	cached    bool
	canceled  bool // cancel requested (may still be running)
	result    *noderun.RunResult
	errMsg    string
	history   []Transition
	submitted time.Time
	started   time.Time
	finished  time.Time

	done      chan struct{}      // closed on any terminal state
	cancelRun context.CancelFunc // live while running
	timer     *time.Timer        // live while waiting out a retry backoff
}

// View is a Job snapshot, safe to serialize.
type View struct {
	ID       string             `json:"id"`
	Key      string             `json:"key"`
	Spec     noderun.Spec       `json:"spec"`
	Priority int                `json:"priority"`
	State    State              `json:"state"`
	Attempts int                `json:"attempts"`
	Dedup    int                `json:"dedup"`
	Cached   bool               `json:"cached"`
	Err      string             `json:"err,omitempty"`
	Result   *noderun.RunResult `json:"result,omitempty"`
	History  []Transition       `json:"history"`

	SubmittedAt time.Time `json:"submitted_at"`
	WaitNs      int64     `json:"wait_ns"` // submit -> first execution (or now)
	RunNs       int64     `json:"run_ns"`  // first execution -> terminal (or now)
}

// Outcome tells a submitter how its request was absorbed.
type Outcome string

const (
	OutcomeQueued  Outcome = "queued"  // a new execution was scheduled
	OutcomeDeduped Outcome = "deduped" // folded onto an identical in-flight job
	OutcomeCached  Outcome = "cached"  // served from the result cache, nothing launched
)

// Options tune a Queue. The zero value is usable.
type Options struct {
	// MaxRetries is how many times a failed job is re-executed before
	// being declared failed (default 2; <0 disables retries).
	MaxRetries int
	// RetryBackoff is the delay before the first re-execution, doubling
	// each retry up to RetryBackoffMax (defaults 100ms, 5s). The actual
	// delay is jittered uniformly over [delay/2, delay] so a burst of
	// jobs failed by one event does not re-launch in lockstep.
	RetryBackoff    time.Duration
	RetryBackoffMax time.Duration
	// RetryDeadline caps the total time from a job's first execution to
	// its last scheduled retry: when the next backoff would end past
	// the deadline, the job fails instead of retrying. Zero means no
	// deadline (only MaxRetries bounds retrying).
	RetryDeadline time.Duration
	// CacheSize is the LRU result-cache capacity in entries (default
	// 256; <0 disables caching).
	CacheSize int
}

func (o Options) withDefaults() Options {
	if o.MaxRetries == 0 {
		o.MaxRetries = 2
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 100 * time.Millisecond
	}
	if o.RetryBackoffMax <= 0 {
		o.RetryBackoffMax = 5 * time.Second
	}
	if o.CacheSize == 0 {
		o.CacheSize = 256
	}
	if o.CacheSize < 0 {
		o.CacheSize = 0
	}
	return o
}

// Stats is the queue's admin snapshot.
type Stats struct {
	Depth   int `json:"depth"`   // jobs in the heap, runnable now
	Backoff int `json:"backoff"` // jobs waiting out a retry backoff
	Running int `json:"running"`

	Submitted int64 `json:"submitted"`
	Deduped   int64 `json:"deduped"`
	CacheHits int64 `json:"cache_hits"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Retries   int64 `json:"retries"`
	Canceled  int64 `json:"canceled"`
	// Recovered counts in-run recoveries reported by completed jobs
	// (elastic runs that healed from a checkpoint instead of failing
	// the attempt — they never burn a retry, so Retries stays flat).
	Recovered int64 `json:"recovered"`

	CacheLen int `json:"cache_len"`
	CacheCap int `json:"cache_cap"`
}

// ErrClosed is returned by Claim and Submit after Close.
var ErrClosed = errors.New("jobqueue: closed")

// Queue is the job queue. Create with New.
type Queue struct {
	opt Options

	mu       sync.Mutex
	heap     jobHeap
	inflight map[string]*Job // key -> queued or running job
	jobs     map[string]*Job // id -> every job ever submitted
	order    []*Job          // submission order, for listing
	cache    *lru
	wake     chan struct{} // closed and replaced whenever work arrives
	closed   bool
	seq      uint64
	running  int
	backoff  int

	submitted, deduped, cacheHits         int64
	completed, failed, retries, canceledN int64
	recovered                             int64
}

// New builds an empty queue.
func New(opt Options) *Queue {
	opt = opt.withDefaults()
	return &Queue{
		opt:      opt,
		inflight: make(map[string]*Job),
		jobs:     make(map[string]*Job),
		cache:    newLRU(opt.CacheSize),
		wake:     make(chan struct{}),
	}
}

// Submit absorbs one request: served from cache, folded onto an
// identical in-flight job, or queued as a new one. priority orders the
// heap (higher first; FIFO within a priority). The returned view names
// the job to poll.
func (q *Queue) Submit(spec noderun.Spec, priority int) (View, Outcome, error) {
	spec = spec.Normalized()
	if err := spec.Validate(); err != nil {
		return View{}, "", err
	}
	key := spec.Key()
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return View{}, "", ErrClosed
	}
	q.submitted++
	now := time.Now()

	if res, ok := q.cache.get(key); ok {
		q.cacheHits++
		j := q.newJobLocked(spec, key, priority, now)
		j.state = StateDone
		j.cached = true
		j.result = res
		j.finished = now
		j.transitionLocked(now, StateDone, "served from cache")
		close(j.done)
		return j.viewLocked(), OutcomeCached, nil
	}

	if j, ok := q.inflight[key]; ok {
		q.deduped++
		j.dedup++
		// A higher-priority duplicate drags the shared job up the heap.
		if priority > j.priority {
			j.priority = priority
			if j.index >= 0 {
				heap.Fix(&q.heap, j.index)
			}
		}
		return j.viewLocked(), OutcomeDeduped, nil
	}

	j := q.newJobLocked(spec, key, priority, now)
	j.transitionLocked(now, StateQueued, "")
	q.inflight[key] = j
	heap.Push(&q.heap, j)
	q.wakeLocked()
	return j.viewLocked(), OutcomeQueued, nil
}

func (q *Queue) newJobLocked(spec noderun.Spec, key string, priority int, now time.Time) *Job {
	q.seq++
	j := &Job{
		id:        fmt.Sprintf("j%06d", q.seq),
		key:       key,
		spec:      spec,
		priority:  priority,
		seq:       q.seq,
		index:     -1,
		state:     StateQueued,
		submitted: now,
		done:      make(chan struct{}),
	}
	q.jobs[j.id] = j
	q.order = append(q.order, j)
	return j
}

// wakeLocked signals every Claim waiter that the heap changed.
func (q *Queue) wakeLocked() {
	close(q.wake)
	q.wake = make(chan struct{})
}

// Claim blocks until a job is runnable, marks it running, and hands it
// to the caller together with the job's cancellation context (canceled
// by Cancel or Close). The caller must settle the job with Complete or
// Fail.
func (q *Queue) Claim(ctx context.Context) (*Job, context.Context, error) {
	for {
		q.mu.Lock()
		if q.closed {
			q.mu.Unlock()
			return nil, nil, ErrClosed
		}
		if q.heap.Len() > 0 {
			j := heap.Pop(&q.heap).(*Job)
			now := time.Now()
			j.attempts++
			j.state = StateRunning
			if j.started.IsZero() {
				j.started = now
			}
			runCtx, cancel := context.WithCancel(context.Background())
			j.cancelRun = cancel
			j.transitionLocked(now, StateRunning, fmt.Sprintf("attempt %d", j.attempts))
			q.running++
			q.mu.Unlock()
			return j, runCtx, nil
		}
		wake := q.wake
		q.mu.Unlock()
		select {
		case <-wake:
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
	}
}

// Complete settles a claimed job as done and publishes its result to
// the cache.
func (q *Queue) Complete(j *Job, res *noderun.RunResult) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if j.state != StateRunning {
		return
	}
	now := time.Now()
	q.running--
	j.cancelRun = nil
	j.result = res
	j.finished = now
	j.state = StateDone
	note := ""
	if res != nil && res.Recovered > 0 {
		// The run healed itself from a checkpoint (elastic recovery):
		// surface it in the history and the stats, but do not charge the
		// retry budget — no attempt failed.
		q.recovered += int64(res.Recovered)
		note = fmt.Sprintf("healed in-run: %d recoveries across %d epochs", res.Recovered, res.Epochs)
	}
	j.transitionLocked(now, StateDone, note)
	q.completed++
	delete(q.inflight, j.key)
	q.cache.add(j.key, res)
	close(j.done)
}

// Fail settles a claimed job's failed attempt: re-queued with backoff
// while the retry budget lasts (and the job was not canceled),
// terminally failed otherwise.
func (q *Queue) Fail(j *Job, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if j.state != StateRunning {
		return
	}
	now := time.Now()
	q.running--
	j.cancelRun = nil
	j.errMsg = err.Error()

	if j.canceled || q.closed {
		q.finalizeLocked(j, StateCanceled, now, "canceled")
		return
	}
	if j.attempts > q.opt.MaxRetries {
		q.finalizeLocked(j, StateFailed, now, fmt.Sprintf("failed after %d attempts", j.attempts))
		return
	}
	// Exponential backoff: RetryBackoff << (attempt-1), capped, then
	// jittered over [delay/2, delay] to decorrelate retry bursts.
	delay := q.opt.RetryBackoff << (j.attempts - 1)
	if delay > q.opt.RetryBackoffMax || delay <= 0 {
		delay = q.opt.RetryBackoffMax
	}
	delay = delay/2 + time.Duration(rand.Int63n(int64(delay/2)+1))
	if q.opt.RetryDeadline > 0 && now.Sub(j.started)+delay > q.opt.RetryDeadline {
		q.finalizeLocked(j, StateFailed,
			now, fmt.Sprintf("retry deadline %v exceeded after %d attempts", q.opt.RetryDeadline, j.attempts))
		return
	}
	q.retries++
	q.backoff++
	j.state = StateQueued
	j.transitionLocked(now, StateQueued, fmt.Sprintf("retry %d in %v: %v", j.attempts, delay, err))
	j.timer = time.AfterFunc(delay, func() { q.requeue(j) })
}

// requeue moves a backoff job back into the heap (or finalizes it if
// it was canceled or the queue closed meanwhile).
func (q *Queue) requeue(j *Job) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if j.timer == nil || j.state != StateQueued {
		return
	}
	j.timer = nil
	q.backoff--
	now := time.Now()
	if j.canceled || q.closed {
		q.finalizeLocked(j, StateCanceled, now, "canceled during backoff")
		return
	}
	heap.Push(&q.heap, j)
	q.wakeLocked()
}

// finalizeLocked moves a job to a terminal state.
func (q *Queue) finalizeLocked(j *Job, s State, now time.Time, note string) {
	j.state = s
	j.finished = now
	j.transitionLocked(now, s, note)
	switch s {
	case StateFailed:
		q.failed++
	case StateCanceled:
		q.canceledN++
	}
	delete(q.inflight, j.key)
	close(j.done)
}

// Cancel requests cancellation: a queued job is canceled immediately
// (removed from the heap or its backoff timer stopped); a running
// job's context is canceled and it finalizes when its runner returns.
// Canceling a terminal job is a no-op. The returned view reflects the
// state after the request; ok is false for unknown ids.
func (q *Queue) Cancel(id string) (View, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return View{}, false
	}
	if j.state.Terminal() {
		return j.viewLocked(), true
	}
	j.canceled = true
	now := time.Now()
	switch j.state {
	case StateQueued:
		if j.index >= 0 {
			heap.Remove(&q.heap, j.index)
		} else if j.timer != nil {
			j.timer.Stop()
			j.timer = nil
			q.backoff--
		}
		q.finalizeLocked(j, StateCanceled, now, "canceled while queued")
	case StateRunning:
		if j.cancelRun != nil {
			j.cancelRun()
		}
		j.transitionLocked(now, StateRunning, "cancel requested")
	}
	return j.viewLocked(), true
}

// Get snapshots a job by id.
func (q *Queue) Get(id string) (View, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return View{}, false
	}
	return j.viewLocked(), true
}

// Wait blocks until the job reaches a terminal state or ctx expires,
// returning the final (or latest) view.
func (q *Queue) Wait(ctx context.Context, id string) (View, bool) {
	q.mu.Lock()
	j, ok := q.jobs[id]
	if !ok {
		q.mu.Unlock()
		return View{}, false
	}
	done := j.done
	q.mu.Unlock()
	select {
	case <-done:
	case <-ctx.Done():
	}
	return q.Get(id)
}

// Done exposes the job's terminal-state channel (closed when the job
// finishes); nil for unknown ids.
func (q *Queue) Done(id string) <-chan struct{} {
	q.mu.Lock()
	defer q.mu.Unlock()
	if j, ok := q.jobs[id]; ok {
		return j.done
	}
	return nil
}

// List snapshots every job in submission order.
func (q *Queue) List() []View {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]View, len(q.order))
	for i, j := range q.order {
		out[i] = j.viewLocked()
	}
	return out
}

// Stats snapshots the queue counters.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return Stats{
		Depth:     q.heap.Len(),
		Backoff:   q.backoff,
		Running:   q.running,
		Submitted: q.submitted,
		Deduped:   q.deduped,
		CacheHits: q.cacheHits,
		Completed: q.completed,
		Failed:    q.failed,
		Retries:   q.retries,
		Canceled:  q.canceledN,
		Recovered: q.recovered,
		CacheLen:  q.cache.len(),
		CacheCap:  q.cache.cap,
	}
}

// Close shuts the queue down: queued jobs cancel immediately, running
// jobs get their contexts canceled, and every Claim returns ErrClosed.
func (q *Queue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	now := time.Now()
	for q.heap.Len() > 0 {
		j := heap.Pop(&q.heap).(*Job)
		q.finalizeLocked(j, StateCanceled, now, "queue closed")
	}
	for _, j := range q.jobs {
		switch j.state {
		case StateRunning:
			if j.cancelRun != nil {
				j.cancelRun()
			}
		case StateQueued: // backoff jobs; their timers observe closed
			if j.timer != nil {
				j.timer.Stop()
				j.timer = nil
				q.backoff--
				q.finalizeLocked(j, StateCanceled, now, "queue closed")
			}
		}
	}
	q.wakeLocked()
}

// ID returns the claimed job's id (stable, lock-free).
func (j *Job) ID() string { return j.id }

// Spec returns the claimed job's spec (immutable after submit).
func (j *Job) Spec() noderun.Spec { return j.spec }

func (j *Job) transitionLocked(at time.Time, s State, note string) {
	j.history = append(j.history, Transition{At: at, State: s, Attempt: j.attempts, Note: note})
}

func (j *Job) viewLocked() View {
	v := View{
		ID:          j.id,
		Key:         j.key,
		Spec:        j.spec,
		Priority:    j.priority,
		State:       j.state,
		Attempts:    j.attempts,
		Dedup:       j.dedup,
		Cached:      j.cached,
		Err:         j.errMsg,
		Result:      j.result,
		History:     append([]Transition(nil), j.history...),
		SubmittedAt: j.submitted,
	}
	now := time.Now()
	switch {
	case !j.started.IsZero():
		v.WaitNs = j.started.Sub(j.submitted).Nanoseconds()
		end := now
		if !j.finished.IsZero() {
			end = j.finished
		}
		v.RunNs = end.Sub(j.started).Nanoseconds()
	case !j.finished.IsZero(): // cached or canceled before running
		v.WaitNs = j.finished.Sub(j.submitted).Nanoseconds()
	default:
		v.WaitNs = now.Sub(j.submitted).Nanoseconds()
	}
	return v
}

// jobHeap orders by priority (higher first), then submission order.
type jobHeap []*Job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, k int) bool {
	if h[i].priority != h[k].priority {
		return h[i].priority > h[k].priority
	}
	return h[i].seq < h[k].seq
}
func (h jobHeap) Swap(i, k int) {
	h[i], h[k] = h[k], h[i]
	h[i].index = i
	h[k].index = k
}
func (h *jobHeap) Push(x any) {
	j := x.(*Job)
	j.index = len(*h)
	*h = append(*h, j)
}
func (h *jobHeap) Pop() any {
	old := *h
	j := old[len(old)-1]
	old[len(old)-1] = nil
	j.index = -1
	*h = old[:len(old)-1]
	return j
}
