package jobqueue

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"gravel/internal/noderun"
)

// spec returns a valid, cheap spec; seed varies the dedup/cache key.
func spec(seed uint64) noderun.Spec {
	s := noderun.Spec{App: "gups", Model: "gravel", Nodes: 2, Fabric: noderun.FabricLocal}
	s.Params.Scale = 0.02
	s.Params.Seed = seed
	return s
}

func result(s noderun.Spec) *noderun.RunResult {
	return &noderun.RunResult{Spec: s.Normalized(), Check: 42, Summary: "test"}
}

func mustClaim(t *testing.T, q *Queue) (*Job, context.Context) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	j, runCtx, err := q.Claim(ctx)
	if err != nil {
		t.Fatalf("Claim: %v", err)
	}
	return j, runCtx
}

func TestSubmitClaimComplete(t *testing.T) {
	q := New(Options{})
	defer q.Close()
	v, out, err := q.Submit(spec(1), 0)
	if err != nil || out != OutcomeQueued {
		t.Fatalf("Submit = %v, %v; want queued", out, err)
	}
	if v.State != StateQueued {
		t.Fatalf("state = %s", v.State)
	}
	j, _ := mustClaim(t, q)
	if j.ID() != v.ID {
		t.Fatalf("claimed %s, submitted %s", j.ID(), v.ID)
	}
	q.Complete(j, result(j.Spec()))
	got, ok := q.Wait(context.Background(), v.ID)
	if !ok || got.State != StateDone || got.Result == nil || got.Result.Check != 42 {
		t.Fatalf("after complete: %+v", got)
	}
	st := q.Stats()
	if st.Submitted != 1 || st.Completed != 1 || st.Depth != 0 || st.Running != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestInvalidSpecRejected(t *testing.T) {
	q := New(Options{})
	defer q.Close()
	s := spec(1)
	s.App = "no-such-app"
	if _, _, err := q.Submit(s, 0); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestDedupInflight(t *testing.T) {
	q := New(Options{})
	defer q.Close()
	a, out, _ := q.Submit(spec(7), 0)
	if out != OutcomeQueued {
		t.Fatalf("first submit: %v", out)
	}
	b, out, _ := q.Submit(spec(7), 0)
	if out != OutcomeDeduped || b.ID != a.ID {
		t.Fatalf("identical submit = %v id %s, want deduped onto %s", out, b.ID, a.ID)
	}
	// Dedup holds while the job is running, too.
	j, _ := mustClaim(t, q)
	c, out, _ := q.Submit(spec(7), 0)
	if out != OutcomeDeduped || c.ID != a.ID {
		t.Fatalf("submit while running = %v id %s", out, c.ID)
	}
	if c.Dedup != 2 {
		t.Fatalf("dedup count = %d, want 2", c.Dedup)
	}
	q.Complete(j, result(j.Spec()))
	if st := q.Stats(); st.Deduped != 2 || st.Completed != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestCacheHit(t *testing.T) {
	q := New(Options{})
	defer q.Close()
	a, _, _ := q.Submit(spec(9), 0)
	j, _ := mustClaim(t, q)
	q.Complete(j, result(j.Spec()))

	b, out, _ := q.Submit(spec(9), 0)
	if out != OutcomeCached {
		t.Fatalf("repeat submit = %v, want cached", out)
	}
	if b.ID == a.ID {
		t.Fatal("cached submission reused the original job id")
	}
	if b.State != StateDone || !b.Cached || b.Result == nil || b.Result.Check != 42 {
		t.Fatalf("cached view: %+v", b)
	}
	// The cached job is already terminal: Wait returns immediately.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if got, ok := q.Wait(ctx, b.ID); !ok || got.State != StateDone {
		t.Fatalf("wait on cached job: %+v ok=%v", got, ok)
	}
	if st := q.Stats(); st.CacheHits != 1 || st.CacheLen != 1 {
		t.Fatalf("stats: %+v", st)
	}
	// A different seed misses.
	if _, out, _ := q.Submit(spec(10), 0); out != OutcomeQueued {
		t.Fatalf("different seed = %v, want queued", out)
	}
}

func TestPriorityOrder(t *testing.T) {
	q := New(Options{})
	defer q.Close()
	lo1, _, _ := q.Submit(spec(1), 0)
	lo2, _, _ := q.Submit(spec(2), 0)
	hi, _, _ := q.Submit(spec(3), 5)
	want := []string{hi.ID, lo1.ID, lo2.ID}
	for i, w := range want {
		j, _ := mustClaim(t, q)
		if j.ID() != w {
			t.Fatalf("claim %d = %s, want %s", i, j.ID(), w)
		}
		q.Complete(j, result(j.Spec()))
	}
}

func TestDedupPriorityBump(t *testing.T) {
	q := New(Options{})
	defer q.Close()
	a, _, _ := q.Submit(spec(1), 0)
	b, _, _ := q.Submit(spec(2), 0)
	// A high-priority duplicate of b drags it above a.
	if _, out, _ := q.Submit(spec(2), 9); out != OutcomeDeduped {
		t.Fatal("expected dedup")
	}
	j, _ := mustClaim(t, q)
	if j.ID() != b.ID {
		t.Fatalf("first claim = %s, want bumped %s", j.ID(), b.ID)
	}
	q.Complete(j, result(j.Spec()))
	j, _ = mustClaim(t, q)
	if j.ID() != a.ID {
		t.Fatalf("second claim = %s, want %s", j.ID(), a.ID)
	}
	q.Complete(j, result(j.Spec()))
}

func TestRetryThenSucceed(t *testing.T) {
	q := New(Options{MaxRetries: 2, RetryBackoff: 10 * time.Millisecond})
	defer q.Close()
	v, _, _ := q.Submit(spec(1), 0)
	j, _ := mustClaim(t, q)
	q.Fail(j, errors.New("worker killed"))

	if got, _ := q.Get(v.ID); got.State != StateQueued {
		t.Fatalf("after first failure state = %s, want queued (backoff)", got.State)
	}
	if st := q.Stats(); st.Backoff != 1 || st.Retries != 1 {
		t.Fatalf("stats: %+v", st)
	}
	// The same job comes back after the backoff.
	j2, _ := mustClaim(t, q)
	if j2.ID() != v.ID {
		t.Fatalf("retried claim = %s, want %s", j2.ID(), v.ID)
	}
	q.Complete(j2, result(j2.Spec()))
	got, _ := q.Get(v.ID)
	if got.State != StateDone || got.Attempts != 2 {
		t.Fatalf("final: state=%s attempts=%d", got.State, got.Attempts)
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	q := New(Options{MaxRetries: 1, RetryBackoff: time.Millisecond})
	defer q.Close()
	v, _, _ := q.Submit(spec(1), 0)
	for i := 0; i < 2; i++ {
		j, _ := mustClaim(t, q)
		q.Fail(j, errors.New("boom"))
	}
	got, _ := q.Wait(context.Background(), v.ID)
	if got.State != StateFailed || got.Attempts != 2 || got.Err == "" {
		t.Fatalf("final: %+v", got)
	}
	if st := q.Stats(); st.Failed != 1 || st.Retries != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestCancelQueued(t *testing.T) {
	q := New(Options{})
	defer q.Close()
	v, _, _ := q.Submit(spec(1), 0)
	got, ok := q.Cancel(v.ID)
	if !ok || got.State != StateCanceled {
		t.Fatalf("cancel: %+v ok=%v", got, ok)
	}
	// The slot is free again: an identical submit is a fresh job, not a
	// dedup onto a corpse.
	if _, out, _ := q.Submit(spec(1), 0); out != OutcomeQueued {
		t.Fatalf("submit after cancel = %v, want queued", out)
	}
}

func TestCancelRunning(t *testing.T) {
	q := New(Options{MaxRetries: 5})
	defer q.Close()
	v, _, _ := q.Submit(spec(1), 0)
	j, runCtx := mustClaim(t, q)
	if _, ok := q.Cancel(v.ID); !ok {
		t.Fatal("cancel failed")
	}
	select {
	case <-runCtx.Done():
	case <-time.After(time.Second):
		t.Fatal("cancel did not cancel the run context")
	}
	// The runner observes the canceled context and reports failure; the
	// job must finalize canceled, not enter the retry loop.
	q.Fail(j, runCtx.Err())
	got, _ := q.Get(v.ID)
	if got.State != StateCanceled {
		t.Fatalf("state = %s, want canceled", got.State)
	}
}

func TestCancelDuringBackoff(t *testing.T) {
	q := New(Options{MaxRetries: 3, RetryBackoff: time.Hour})
	defer q.Close()
	v, _, _ := q.Submit(spec(1), 0)
	j, _ := mustClaim(t, q)
	q.Fail(j, errors.New("boom"))
	got, ok := q.Cancel(v.ID)
	if !ok || got.State != StateCanceled {
		t.Fatalf("cancel during backoff: %+v", got)
	}
}

func TestCloseUnblocksClaim(t *testing.T) {
	q := New(Options{})
	errc := make(chan error, 1)
	go func() {
		_, _, err := q.Claim(context.Background())
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	q.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("claim after close: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Claim did not unblock on Close")
	}
	if _, _, err := q.Submit(spec(1), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v", err)
	}
}

func TestLRUEviction(t *testing.T) {
	c := newLRU(2)
	r := &noderun.RunResult{Check: 1}
	c.add("a", r)
	c.add("b", r)
	if _, ok := c.get("a"); !ok { // refresh a
		t.Fatal("a missing")
	}
	c.add("c", r) // evicts b (LRU), not a
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a should have survived")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d", c.len())
	}
}

// TestRetryDeadlineCapsRetrying pins the total-retry-deadline: a job
// whose next backoff would end past the deadline fails instead of
// retrying, even with retry budget left.
func TestRetryDeadlineCapsRetrying(t *testing.T) {
	q := New(Options{MaxRetries: 100, RetryBackoff: 40 * time.Millisecond, RetryDeadline: 60 * time.Millisecond})
	defer q.Close()
	if _, _, err := q.Submit(spec(1), 0); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		j, _ := mustClaim(t, q)
		q.Fail(j, errors.New("boom"))
		if v, _ := q.Get(j.ID()); v.State == StateFailed {
			if note := v.History[len(v.History)-1].Note; !strings.Contains(note, "retry deadline") {
				t.Fatalf("failed without the deadline note: %q", note)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("job kept retrying past the retry deadline")
		}
	}
}

// TestRetryBackoffJitterBounded pins the jitter window: the scheduled
// delay must stay within [delay/2, delay] of the exponential schedule,
// so retries decorrelate without ballooning the backoff.
func TestRetryBackoffJitterBounded(t *testing.T) {
	q := New(Options{MaxRetries: 1, RetryBackoff: 80 * time.Millisecond})
	defer q.Close()
	if _, _, err := q.Submit(spec(1), 0); err != nil {
		t.Fatal(err)
	}
	j, _ := mustClaim(t, q)
	start := time.Now()
	q.Fail(j, errors.New("boom"))
	if st := q.Stats(); st.Backoff != 1 {
		t.Fatalf("backoff gauge = %d, want 1", st.Backoff)
	}
	j2, _ := mustClaim(t, q) // blocks until the jittered timer requeues
	if j2.ID() != j.ID() {
		t.Fatalf("claimed %s, want the retried %s", j2.ID(), j.ID())
	}
	if waited := time.Since(start); waited < 40*time.Millisecond {
		t.Fatalf("retry fired after %v, want >= half the 80ms backoff", waited)
	}
	q.Complete(j2, result(j2.Spec()))
}

// TestRecoveredJobsCounted pins the elastic-recovery accounting: a job
// whose run healed in-flight completes normally, reports the recovery
// count in Stats and its history, and burns no retries.
func TestRecoveredJobsCounted(t *testing.T) {
	q := New(Options{})
	defer q.Close()
	v, _, err := q.Submit(spec(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	j, _ := mustClaim(t, q)
	res := result(j.Spec())
	res.Recovered = 2
	res.Epochs = 3
	q.Complete(j, res)
	st := q.Stats()
	if st.Recovered != 2 || st.Retries != 0 || st.Completed != 1 {
		t.Fatalf("stats = %+v, want recovered=2 retries=0 completed=1", st)
	}
	got, _ := q.Get(v.ID)
	if note := got.History[len(got.History)-1].Note; !strings.Contains(note, "healed in-run") {
		t.Fatalf("done transition note = %q, want a healed in-run note", note)
	}
}
