package queue

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
)

// BenchmarkReserveCommit measures the producer path for one WG-level
// reservation (256 messages of 32 B) with a background consumer.
func BenchmarkReserveCommit(b *testing.B) {
	for _, cols := range []int{64, 128, 256} {
		b.Run(fmt.Sprintf("wg%d", cols), func(b *testing.B) {
			q := NewGravel(64, 4, cols)
			done := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					if !q.TryConsume(func([]uint64, int, int, int) {}) {
						select {
						case <-done:
							if q.Empty() {
								return
							}
						default:
						}
						runtime.Gosched()
					}
				}
			}()
			b.SetBytes(int64(4 * cols * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := q.Reserve(cols)
				for r := 0; r < 4; r++ {
					row := s.Row(r)
					for m := range row {
						row[m] = uint64(m)
					}
				}
				s.Commit()
			}
			b.StopTimer()
			close(done)
			wg.Wait()
		})
	}
}

// BenchmarkWILevel measures the per-message cost when every message
// pays its own reservation (the §4.1 WI-level comparison).
func BenchmarkWILevel(b *testing.B) {
	q := NewGravel(1024, 4, 1)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			if !q.TryConsume(func([]uint64, int, int, int) {}) {
				select {
				case <-done:
					if q.Empty() {
						return
					}
				default:
				}
				runtime.Gosched()
			}
		}
	}()
	b.SetBytes(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := q.Reserve(1)
		for r := 0; r < 4; r++ {
			s.Row(r)[0] = uint64(i)
		}
		s.Commit()
	}
	b.StopTimer()
	close(done)
	wg.Wait()
}

// BenchmarkSPSC measures the padded ring's round trip.
func BenchmarkSPSC(b *testing.B) {
	q := NewSPSC(1024, 32)
	msg := []uint64{1, 2, 3, 4}
	b.SetBytes(32)
	for i := 0; i < b.N; i++ {
		q.Produce(msg)
		q.TryConsume(func([]uint64) {})
	}
}
