package queue

import (
	"testing"

	"gravel/internal/obs"
)

// discard is the no-op consumer for the alloc guard, bound once so the
// measured loop does not pay a closure allocation that the real
// aggregator (whose consumer is prebuilt per shard) would not.
var discard = func(payload []uint64, rows, cols, count int) {}

// TestAllocsPerRunReserveCommitConsume pins the queue's slot protocol to
// zero steady-state heap allocations: Reserve, the lane fills, Commit,
// and TryConsume are the per-message hot path (§4.2) and must never
// produce garbage.
func TestAllocsPerRunReserveCommitConsume(t *testing.T) {
	if obs.Enabled() {
		t.Fatal("flight recorder is enabled; this guard pins the disabled path")
	}
	const cols = 8
	q := NewGravel(64, 4, cols)
	allocs := testing.AllocsPerRun(1000, func() {
		s := q.Reserve(cols)
		for r := 0; r < 4; r++ {
			row := s.Row(r)
			for i := range row {
				row[i] = uint64(i)
			}
		}
		s.Commit()
		for q.TryConsume(discard) {
		}
	})
	if allocs != 0 {
		t.Fatalf("Reserve/Commit/TryConsume allocated %.2f times per op, want 0", allocs)
	}
}
