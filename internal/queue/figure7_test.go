package queue

import "testing"

// TestFigure7Walkthrough replays the paper's Figure 7 scenario against
// the real implementation, checking the protocol state (write ticket,
// current ticket N, full bit F) at each numbered time step:
//
//	t1: queue empty, all state zero
//	t2: wi3 (the leader of wg0) takes write ticket 0; the WG owns slot 0
//	t3: the WG's four messages are written and F is set
//	t4: aggregator thread t0 takes read ticket 0 and owns the slot
//	t5: the consumer releases: F cleared, N incremented
func TestFigure7Walkthrough(t *testing.T) {
	// Three slots, four lanes per WG, one row of payload (the figure
	// shows destinations n1 n3 n1 n2 in one row).
	q := NewGravel(3, 1, 4)
	hdr0 := &q.headers[0]

	// t1: empty queue.
	if hdr0.writeTick.Load() != 0 || hdr0.n.Load() != 0 || hdr0.full.Load() != 0 {
		t.Fatal("t1: queue not pristine")
	}

	// t2: the leader reserves on behalf of wg0.
	s := q.Reserve(4)
	if got := hdr0.writeTick.Load(); got != 1 {
		t.Fatalf("t2: WriteTick = %d, want 1 (ticket 0 taken)", got)
	}
	if hdr0.full.Load() != 0 {
		t.Fatal("t2: F must still be clear while the WG writes")
	}

	// t3: all four WIs deposit their messages; the leader sets F.
	dests := []uint64{1, 3, 1, 2} // n1 n3 n1 n2
	copy(s.Row(0), dests)
	s.Commit()
	if hdr0.full.Load() != 1 {
		t.Fatal("t3: F not set after commit")
	}
	if hdr0.n.Load() != 0 {
		t.Fatal("t3: N must not change on commit")
	}

	// t4: aggregator thread t0 takes the read ticket and owns the slot.
	ok := q.TryConsume(func(p []uint64, rows, cols, count int) {
		if count != 4 {
			t.Fatalf("t4: count = %d", count)
		}
		for i, want := range dests {
			if p[i] != want {
				t.Fatalf("t4: message %d = n%d, want n%d", i, p[i], want)
			}
		}
		if hdr0.readTick.Load() != 1 {
			t.Fatal("t4: read ticket not taken")
		}
		if hdr0.full.Load() != 1 {
			t.Fatal("t4: F must be set while consuming")
		}
	})
	if !ok {
		t.Fatal("t4: consumer did not take ownership")
	}

	// t5: released — F clear, N incremented; the slot is ready for the
	// next generation's write ticket 1.
	if hdr0.full.Load() != 0 {
		t.Fatal("t5: F not cleared on release")
	}
	if hdr0.n.Load() != 1 {
		t.Fatalf("t5: N = %d, want 1", hdr0.n.Load())
	}
}
