package queue

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestReserveCommitConsumeSingle(t *testing.T) {
	q := NewGravel(4, 4, 8)
	s := q.Reserve(3)
	if s.Count() != 3 {
		t.Fatalf("Count = %d, want 3", s.Count())
	}
	for r := 0; r < 4; r++ {
		row := s.Row(r)
		if len(row) != 3 {
			t.Fatalf("Row len = %d, want 3", len(row))
		}
		for m := range row {
			row[m] = uint64(r*10 + m)
		}
	}
	if q.TryConsume(func([]uint64, int, int, int) {}) {
		t.Fatal("consumed before commit")
	}
	s.Commit()
	ok := q.TryConsume(func(p []uint64, rows, cols, count int) {
		if rows != 4 || cols != 8 || count != 3 {
			t.Fatalf("shape %dx%d count %d", rows, cols, count)
		}
		for r := 0; r < rows; r++ {
			for m := 0; m < count; m++ {
				if p[r*cols+m] != uint64(r*10+m) {
					t.Fatalf("payload[%d][%d] = %d", r, m, p[r*cols+m])
				}
			}
		}
	})
	if !ok {
		t.Fatal("TryConsume failed after commit")
	}
	if !q.Empty() {
		t.Fatal("queue should be empty")
	}
}

func TestReserveBounds(t *testing.T) {
	q := NewGravel(4, 2, 4)
	for _, bad := range []int{0, -1, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Reserve(%d) did not panic", bad)
				}
			}()
			q.Reserve(bad)
		}()
	}
}

func TestNumSlotsPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{1, 1}, {3, 4}, {4, 4}, {100, 128}} {
		if got := NewGravel(tc.in, 1, 1).NumSlots(); got != tc.want {
			t.Errorf("NumSlots(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestWraparound exercises ticket reuse: far more reservations than
// slots, single threaded.
func TestWraparound(t *testing.T) {
	q := NewGravel(2, 1, 2)
	for i := 0; i < 100; i++ {
		s := q.Reserve(2)
		s.Row(0)[0] = uint64(2 * i)
		s.Row(0)[1] = uint64(2*i + 1)
		s.Commit()
		got := []uint64{}
		q.TryConsume(func(p []uint64, rows, cols, count int) {
			got = append(got, p[0:count]...)
		})
		if len(got) != 2 || got[0] != uint64(2*i) || got[1] != uint64(2*i+1) {
			t.Fatalf("iteration %d: got %v", i, got)
		}
	}
}

// TestConcurrentMPMC hammers the queue with many producers and consumers
// and checks no message is lost or duplicated.
func TestConcurrentMPMC(t *testing.T) {
	const (
		producers = 4
		consumers = 3
		perProd   = 2000
		cols      = 16
	)
	q := NewGravel(8, 2, cols)
	seen := make([]atomic.Int32, producers*perProd)

	var cwg sync.WaitGroup
	done := make(chan struct{})
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				if !q.TryConsume(func(p []uint64, rows, cols, count int) {
					for m := 0; m < count; m++ {
						seen[p[m]].Add(1)
					}
				}) {
					select {
					case <-done:
						if q.Empty() {
							return
						}
					default:
					}
					runtime.Gosched()
				}
			}
		}()
	}

	var pwg sync.WaitGroup
	for p := 0; p < producers; p++ {
		pwg.Add(1)
		go func(p int) {
			defer pwg.Done()
			for i := 0; i < perProd; i += cols {
				n := cols
				if perProd-i < n {
					n = perProd - i
				}
				s := q.Reserve(n)
				row := s.Row(0)
				for m := 0; m < n; m++ {
					row[m] = uint64(p*perProd + i + m)
				}
				s.Commit()
			}
		}(p)
	}
	pwg.Wait()
	close(done)
	cwg.Wait()

	for i := range seen {
		if got := seen[i].Load(); got != 1 {
			t.Fatalf("message %d seen %d times", i, got)
		}
	}
}

// TestQuickVariableCounts is a property test: any sequence of reserve
// counts in [1,cols] round-trips exactly.
func TestQuickVariableCounts(t *testing.T) {
	f := func(counts []uint8) bool {
		const cols = 8
		q := NewGravel(4, 1, cols)
		var want, got []uint64
		next := uint64(0)
		for _, c := range counts {
			n := int(c)%cols + 1
			s := q.Reserve(n)
			row := s.Row(0)
			for m := 0; m < n; m++ {
				row[m] = next
				want = append(want, next)
				next++
			}
			s.Commit()
			for q.TryConsume(func(p []uint64, rows, cols, count int) {
				got = append(got, p[0:count]...)
			}) {
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSPSCRoundTrip(t *testing.T) {
	q := NewSPSC(8, 24)
	msg := []uint64{1, 2, 3}
	var out []uint64
	for i := 0; i < 50; i++ {
		msg[0] = uint64(i)
		q.Produce(msg)
		if !q.TryConsume(func(m []uint64) {
			out = append(out, m[0])
		}) {
			t.Fatal("consume failed")
		}
	}
	for i, v := range out {
		if v != uint64(i) {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	if q.TryConsume(func([]uint64) {}) {
		t.Fatal("consume on empty ring succeeded")
	}
}

func TestSPSCConcurrent(t *testing.T) {
	q := NewSPSC(16, 8)
	const total = 20000
	var sum atomic.Uint64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		msg := make([]uint64, 1)
		for i := 1; i <= total; i++ {
			msg[0] = uint64(i)
			q.Produce(msg)
		}
	}()
	got := 0
	for got < total {
		if q.TryConsume(func(m []uint64) { sum.Add(m[0]) }) {
			got++
		} else {
			runtime.Gosched()
		}
	}
	wg.Wait()
	if want := uint64(total) * (total + 1) / 2; sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
}

func TestPaddedMPMCStride(t *testing.T) {
	q := NewPaddedMPMC(4, 8)
	if q.Cols != 1 {
		t.Fatalf("Cols = %d, want 1", q.Cols)
	}
	if q.Rows%8 != 0 {
		t.Fatalf("padded rows = %d, want multiple of 8 (64 B)", q.Rows)
	}
	s := q.Reserve(1)
	s.Row(0)[0] = 42
	s.Commit()
	var got uint64
	q.TryConsume(func(p []uint64, rows, cols, count int) { got = p[0] })
	if got != 42 {
		t.Fatalf("round trip = %d", got)
	}
}

func TestCloseSemantics(t *testing.T) {
	q := NewGravel(4, 1, 2)
	s := q.Reserve(1)
	s.Row(0)[0] = 7
	s.Commit()
	q.Close()
	if q.Closed() {
		t.Fatal("Closed() true with unconsumed slot")
	}
	q.TryConsume(func([]uint64, int, int, int) {})
	if !q.Closed() {
		t.Fatal("Closed() false after drain")
	}
}
