package queue

import (
	"runtime"
	"sync/atomic"
)

// SPSC is the single-producer/single-consumer bounded ring the paper
// uses as its first CPU-only baseline in Figure 8 ([27]). Indices and
// slots are padded to cache-line size, so sending an 8-byte message
// moves three cache lines (padded read index, padded write index,
// padded payload) — the overhead §4.3 calls out.
type SPSC struct {
	slotWords int // padded stride in 64-bit words
	msgWords  int
	mask      uint64
	buf       []uint64

	_    pad64
	head atomic.Uint64 // next slot to consume
	_    pad64
	tail atomic.Uint64 // next slot to produce
	_    pad64
}

// NewSPSC creates a ring with numSlots slots (rounded up to a power of
// two) holding msgBytes-sized messages, each padded to a cache-line
// multiple.
func NewSPSC(numSlots, msgBytes int) *SPSC {
	n := 1
	for n < numSlots {
		n <<= 1
	}
	mw := (msgBytes + 7) / 8
	if mw < 1 {
		mw = 1
	}
	sw := (mw + 7) / 8 * 8 // pad to 64 bytes
	return &SPSC{
		slotWords: sw,
		msgWords:  mw,
		mask:      uint64(n - 1),
		buf:       make([]uint64, n*sw),
	}
}

// MsgWords returns the unpadded message size in 64-bit words.
func (q *SPSC) MsgWords() int { return q.msgWords }

// Produce blocks until space is available, then copies msg into the
// ring. Only one goroutine may call Produce.
func (q *SPSC) Produce(msg []uint64) {
	t := q.tail.Load()
	spin := 0
	for t-q.head.Load() > q.mask {
		spin++
		if spin%16 == 0 {
			runtime.Gosched()
		}
	}
	base := int(t&q.mask) * q.slotWords
	copy(q.buf[base:base+q.msgWords], msg)
	q.tail.Store(t + 1)
}

// TryConsume invokes fn on the oldest message and returns true, or
// returns false if the ring is empty. Only one goroutine may call
// TryConsume.
func (q *SPSC) TryConsume(fn func(msg []uint64)) bool {
	h := q.head.Load()
	if h == q.tail.Load() {
		return false
	}
	base := int(h&q.mask) * q.slotWords
	fn(q.buf[base : base+q.msgWords])
	q.head.Store(h + 1)
	return true
}

// NewPaddedMPMC returns the paper's second CPU-only baseline: a queue
// with exactly Gravel's slot synchronization protocol, but with each
// slot organized to be written by a single CPU thread (one message per
// slot) and padded to avoid false sharing (§4.3).
func NewPaddedMPMC(numSlots, msgBytes int) *Gravel {
	rows := (msgBytes + 7) / 8
	if rows < 1 {
		rows = 1
	}
	padded := (rows + 7) / 8 * 8
	return NewGravel(numSlots, padded, 1)
}
