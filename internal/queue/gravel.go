// Package queue implements Gravel's GPU-efficient producer/consumer
// queue (§4) plus the two CPU-only baselines the paper compares against
// in Figure 8 (a single-producer/single-consumer ring and a padded
// multi-producer/multi-consumer ticket queue).
//
// The Gravel queue is a genuine concurrent data structure: producers and
// consumers may be any goroutines. Each queue slot is a two-dimensional
// array — one column per work-item of a work-group — so that an entire
// WG deposits its messages with a single reservation (one fetch-add by a
// leader lane), and lanes writing row r of the slot touch adjacent words
// (the memory-coalescing-friendly layout of Figure 7).
//
// Slot protocol (§4.2, Figure 7):
//
//	producer:  si   = fetch_add(WriteIdx) mod slots
//	           tick = fetch_add(slot.WriteTick)
//	           wait until slot.N == tick && slot.F == 0   // own the slot
//	           write payload columns; slot.F = 1          // commit
//	consumer:  si   = claim(ReadIdx) mod slots
//	           tick = fetch_add(slot.ReadTick)
//	           wait until slot.N == tick && slot.F == 1   // own the slot
//	           read payload; slot.F = 0; slot.N++         // release
//
// The one deviation from the paper is that consumers claim ReadIdx with
// a compare-and-swap bounded by the count of committed slots instead of
// an unconditional fetch-add, so that a consumer never commits to a slot
// generation that has not been published. This makes TryConsume
// non-blocking (needed for clean drain/shutdown) and costs the same
// single atomic on success.
package queue

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"gravel/internal/obs"
)

type pad64 struct{ _ [64]byte }

// slotHeader holds the per-slot synchronization state of §4.2. It is
// padded so headers of adjacent slots do not share a cache line.
type slotHeader struct {
	writeTick atomic.Uint64
	readTick  atomic.Uint64
	n         atomic.Uint64 // current ticket
	full      atomic.Uint32 // F: full/empty bit
	count     uint32        // messages in the slot; guarded by the protocol
	_         [32]byte
}

// Gravel is the producer/consumer queue of §4. Rows is the number of
// 64-bit words per message; Cols is the number of messages (columns) a
// slot can hold — normally the work-group size.
type Gravel struct {
	Rows, Cols int

	// Owner is the node the queue belongs to, used to attribute trace
	// events; it is not part of the queue protocol.
	Owner int

	mask    uint64
	headers []slotHeader
	payload []uint64 // numSlots * Rows * Cols, slot-major then row-major

	_         pad64
	writeIdx  atomic.Uint64
	_         pad64
	readIdx   atomic.Uint64
	_         pad64
	reserved  atomic.Uint64 // reservations started (quiescence bound)
	_         pad64
	committed atomic.Uint64 // slots committed; bounds consumer claims
	_         pad64
	closed    atomic.Bool
}

// NewGravel creates a queue with numSlots slots (rounded up to a power
// of two) of rows x cols 64-bit words each.
func NewGravel(numSlots, rows, cols int) *Gravel {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("queue: invalid slot shape %dx%d", rows, cols))
	}
	n := 1
	for n < numSlots {
		n <<= 1
	}
	q := &Gravel{
		Rows:    rows,
		Cols:    cols,
		mask:    uint64(n - 1),
		headers: make([]slotHeader, n),
		payload: make([]uint64, n*rows*cols),
	}
	return q
}

// NumSlots returns the slot count.
func (q *Gravel) NumSlots() int { return len(q.headers) }

// BytesPerMessage returns the wire size of one message.
func (q *Gravel) BytesPerMessage() int { return q.Rows * 8 }

// Close marks the queue closed. Producers must have finished; consumers
// observe Closed once the queue is drained.
func (q *Gravel) Close() { q.closed.Store(true) }

// Closed reports whether Close was called and all reserved slots were
// consumed.
func (q *Gravel) Closed() bool {
	return q.closed.Load() && q.readIdx.Load() >= q.reserved.Load()
}

// Slot is a reserved queue slot being filled by a producer.
type Slot struct {
	q   *Gravel
	hdr *slotHeader
	buf []uint64
}

// Row returns the words of row r for the reserved message count; lane i
// of the producing work-group writes Row(r)[i].
func (s *Slot) Row(r int) []uint64 {
	c := s.q.Cols
	return s.buf[r*c : r*c+int(s.hdr.count)]
}

// Count returns the number of messages reserved in the slot.
func (s *Slot) Count() int { return int(s.hdr.count) }

// Reserve claims one slot on behalf of a work-group that will deposit
// count messages (1 <= count <= Cols). It blocks while the queue is
// full. Atomics performed: one fetch-add on WriteIdx, one fetch-add on
// the slot's WriteTick (2 total, regardless of count — this is the
// WG-level synchronization amortization of §4.1).
func (q *Gravel) Reserve(count int) Slot {
	if count <= 0 || count > q.Cols {
		panic(fmt.Sprintf("queue: Reserve(%d) outside [1,%d]", count, q.Cols))
	}
	q.reserved.Add(1)
	si := q.writeIdx.Add(1) - 1
	hdr := &q.headers[si&q.mask]
	tick := hdr.writeTick.Add(1) - 1
	if hdr.n.Load() != tick || hdr.full.Load() != 0 {
		q.waitProduce(hdr, tick)
	}
	if obs.Enabled() {
		obs.Emit(obs.KSlotReserve, q.Owner, int64(count), int64(si), "")
	}
	hdr.count = uint32(count)
	base := int(si&q.mask) * q.Rows * q.Cols
	return Slot{q: q, hdr: hdr, buf: q.payload[base : base+q.Rows*q.Cols]}
}

// Commit publishes the slot to consumers (sets the full bit F).
func (s Slot) Commit() {
	s.hdr.full.Store(1)
	s.q.committed.Add(1)
}

// TryConsume attempts to claim one full slot; if successful it invokes
// fn with the slot's payload (row-major, Cols stride) and message count,
// releases the slot, and returns true. It returns false when no
// committed or in-flight reservation is available.
func (q *Gravel) TryConsume(fn func(payload []uint64, rows, cols, count int)) bool {
	var si uint64
	for {
		r := q.readIdx.Load()
		if r >= q.committed.Load() {
			// Nothing is committed beyond what has been claimed. (A
			// reservation may still be being filled; its Commit will
			// raise the bound.)
			return false
		}
		if q.readIdx.CompareAndSwap(r, r+1) {
			si = r
			break
		}
	}
	hdr := &q.headers[si&q.mask]
	tick := hdr.readTick.Add(1) - 1
	if hdr.n.Load() != tick || hdr.full.Load() != 1 {
		q.waitConsume(hdr, tick)
	}
	base := int(si&q.mask) * q.Rows * q.Cols
	fn(q.payload[base:base+q.Rows*q.Cols], q.Rows, q.Cols, int(hdr.count))
	hdr.full.Store(0)
	hdr.n.Add(1)
	return true
}

// waitProduce is the producer slow path: the slot is still owned by a
// previous generation (queue effectively full for this slot). Keeping
// the wait out of Reserve keeps the uncontended fast path branch-only;
// the flight recorder only times waits that actually happened.
func (q *Gravel) waitProduce(hdr *slotHeader, tick uint64) {
	var t0 int64
	if traced := obs.Enabled(); traced {
		t0 = obs.Now()
	}
	for spin := 0; hdr.n.Load() != tick || hdr.full.Load() != 0; spin++ {
		backoff(spin)
	}
	if obs.Enabled() {
		obs.ObserveQueueWait(q.Owner, obs.Now()-t0)
	}
}

// waitConsume is the consumer slow path: the claimed slot's reservation
// has not been committed yet (queue momentarily empty behind a producer
// mid-fill).
func (q *Gravel) waitConsume(hdr *slotHeader, tick uint64) {
	var t0 int64
	if traced := obs.Enabled(); traced {
		t0 = obs.Now()
	}
	for spin := 0; hdr.n.Load() != tick || hdr.full.Load() != 1; spin++ {
		backoff(spin)
	}
	if obs.Enabled() {
		obs.ObserveConsumeWait(q.Owner, obs.Now()-t0)
	}
}

// spinBudget is how many iterations a slot wait burns as a pure spin
// before escalating to the scheduler. The common wait — the consumer
// one tick behind a producer mid-fill — resolves within nanoseconds, so
// a short spin wins; past the budget the waiter is almost certainly
// behind a descheduled peer and yielding beats burning the core (the
// fixed spin%16 cadence previously yielded even on the shortest waits).
const spinBudget = 64

// backoff is the slot-wait strategy: spin flat-out within the budget,
// then yield to the scheduler on every iteration.
func backoff(spin int) {
	if spin >= spinBudget {
		runtime.Gosched()
	}
}

// Empty reports whether every reservation has been consumed.
func (q *Gravel) Empty() bool {
	return q.readIdx.Load() >= q.reserved.Load()
}

// ProducerAtomicsPerReserve is the number of global atomic RMW
// operations one WG-level reservation performs (WriteIdx and WriteTick
// fetch-adds). The commit is a plain release store.
const ProducerAtomicsPerReserve = 2

// ConsumerAtomicsPerClaim is the number of atomic RMW operations one
// consumer claim performs (ReadIdx claim and ReadTick fetch-add).
const ConsumerAtomicsPerClaim = 2
