package agg

import (
	"testing"

	"gravel/internal/fabric"
	"gravel/internal/queue"
	"gravel/internal/timemodel"
	"gravel/internal/wire"
)

// BenchmarkFlushRoundTrip measures the full host hot path: messages are
// staged into per-node builders, flushed as 64 kB packets onto the
// fabric, applied by a draining consumer, and released with Done. With
// the pooled buffer lifecycle this loop is allocation-free in steady
// state; -benchmem makes any per-packet garbage visible.
func BenchmarkFlushRoundTrip(b *testing.B) {
	p := timemodel.Default()
	clocks := []*timemodel.Clocks{{}, {}}
	fab := fabric.New(p, clocks)
	q := queue.NewGravel(64, wire.SlotRows, 4)
	a := New(0, p, q, fab, clocks[0], false)

	// One op = one full per-node queue staged, flushed, applied, and
	// recycled.
	msgsPerPacket := p.PerNodeQueueBytes / wire.MsgWireBytes
	cmd := wire.PackCmd(wire.OpInc, 0, 1)
	drain := func() {
		for {
			select {
			case pkt := <-fab.Inbox(1):
				fab.Done(pkt)
			default:
				return
			}
		}
	}
	b.SetBytes(int64(msgsPerPacket * wire.MsgWireBytes))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for m := 0; m < msgsPerPacket; m++ {
			a.AppendDirect(1, cmd, uint64(m), 1, 0)
		}
		a.Flush()
		drain()
	}
}

// BenchmarkRepackDrain measures the aggregator's queue-drain path: one
// op reserves, commits, and drains one full WG slot (256 messages) into
// per-node builders, flushing and recycling whatever fills.
func BenchmarkRepackDrain(b *testing.B) {
	p := timemodel.Default()
	clocks := []*timemodel.Clocks{{}, {}}
	fab := fabric.New(p, clocks)
	const cols = 256
	q := queue.NewGravel(64, wire.SlotRows, cols)
	a := New(0, p, q, fab, clocks[0], false)

	cmd := wire.PackCmd(wire.OpInc, 0, 1)
	drain := func() {
		for {
			select {
			case pkt := <-fab.Inbox(1):
				fab.Done(pkt)
			default:
				return
			}
		}
	}
	b.SetBytes(int64(cols * wire.MsgWireBytes))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := q.Reserve(cols)
		for m := 0; m < cols; m++ {
			s.Row(wire.RowCmd)[m] = cmd
			s.Row(wire.RowDest)[m] = 1
			s.Row(wire.RowA)[m] = uint64(m)
			s.Row(wire.RowB)[m] = 1
		}
		s.Commit()
		for q.TryConsume(a.shards[0].repackFn) {
		}
		a.Flush()
		drain()
	}
}
