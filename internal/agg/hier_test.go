package agg

import (
	"testing"

	"gravel/internal/fabric"
	"gravel/internal/queue"
	"gravel/internal/timemodel"
	"gravel/internal/wire"
)

// setupHier builds a hierarchical aggregator for node over n nodes.
func setupHier(t *testing.T, node, n, group int) (*Aggregator, *queue.Gravel, *fabric.Chan) {
	t.Helper()
	p := timemodel.Default()
	clocks := make([]*timemodel.Clocks, n)
	for i := range clocks {
		clocks[i] = &timemodel.Clocks{}
	}
	fab := fabric.New(p, clocks)
	q := queue.NewGravel(64, wire.SlotRows, 4)
	a := NewHierarchical(node, p, q, fab, clocks[node], false, group)
	return a, q, fab
}

func TestGroupSizeNormalization(t *testing.T) {
	// group <= 1 or >= nodes degenerates to flat.
	for _, g := range []int{0, 1, 8, 100} {
		a, _, _ := setupHier(t, 0, 8, g)
		if g > 1 && g < 8 {
			if a.GroupSize() != g {
				t.Errorf("GroupSize(%d) = %d", g, a.GroupSize())
			}
		} else if a.GroupSize() != 0 {
			t.Errorf("GroupSize(%d) should normalize to flat, got %d", g, a.GroupSize())
		}
	}
}

// TestHierRouting: in-group messages go direct; cross-group messages
// become routed packets targeting a gateway in the destination's group.
func TestHierRouting(t *testing.T) {
	// Node 1 of 8, groups of 4: group 0 = {0..3}, group 1 = {4..7}.
	a, q, fab := setupHier(t, 1, 8, 4)
	c0 := collect(fab, 0) // in-group dest
	// Gateway for group 1 as seen from node 1: 1*4 + 1%4 = 5.
	c5 := collect(fab, 5)

	// 4 messages to node 0 (in-group), 4 to node 6 (cross-group).
	for _, dest := range []int{0, 6} {
		s := q.Reserve(4)
		for m := 0; m < 4; m++ {
			s.Row(wire.RowCmd)[m] = wire.PackCmd(wire.OpInc, 0, 1)
			s.Row(wire.RowDest)[m] = uint64(dest)
			s.Row(wire.RowA)[m] = uint64(m)
			s.Row(wire.RowB)[m] = 1
		}
		s.Commit()
	}
	a.Flush()
	fab.Close()

	pkts0, msgs0 := c0.wait()
	pkts5, msgs5 := c5.wait()
	if pkts0 != 1 || msgs0 != 4 {
		t.Fatalf("in-group: %d pkts / %d msgs, want 1/4", pkts0, msgs0)
	}
	if pkts5 != 1 || msgs5 != 4 {
		t.Fatalf("gateway: %d pkts / %d msgs, want 1/4", pkts5, msgs5)
	}
}

// TestHierRoutedRecordsCarryDest: the gateway packet's records must
// decode with their final destinations.
func TestHierRoutedRecordsCarryDest(t *testing.T) {
	a, q, fab := setupHier(t, 0, 8, 4)
	s := q.Reserve(2)
	for m, dest := range []int{5, 7} {
		s.Row(wire.RowCmd)[m] = wire.PackCmd(wire.OpPut, 0, 2)
		s.Row(wire.RowDest)[m] = uint64(dest)
		s.Row(wire.RowA)[m] = uint64(100 + m)
		s.Row(wire.RowB)[m] = uint64(m)
	}
	s.Commit()

	// Gateway for group 1 as seen from node 0 is node 4.
	done := make(chan struct{})
	var got []int
	go func() {
		defer close(done)
		pkt := <-fab.Inbox(4)
		if !pkt.Routed {
			t.Error("expected routed packet")
		}
		wire.DecodeRouted(pkt.Buf, func(cmd, a, v uint64, dest int) {
			got = append(got, dest)
		})
		fab.Done(pkt)
	}()
	a.Flush()
	<-done
	if len(got) != 2 || got[0] != 5 || got[1] != 7 {
		t.Fatalf("decoded dests = %v, want [5 7]", got)
	}
}

// TestAppendDirect: host-context messages stage into the right queues.
func TestAppendDirect(t *testing.T) {
	a, _, fab := setupHier(t, 0, 4, 0)
	c2 := collect(fab, 2)
	for i := 0; i < 5; i++ {
		a.AppendDirect(2, wire.PackCmd(wire.OpAM, 1, 0), uint64(i), 9, 10)
	}
	if !a.Pending() {
		t.Fatal("AppendDirect left nothing pending")
	}
	a.Flush()
	fab.Close()
	pkts, msgs := c2.wait()
	if pkts != 1 || msgs != 5 {
		t.Fatalf("%d pkts / %d msgs, want 1/5", pkts, msgs)
	}
}
