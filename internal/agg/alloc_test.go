package agg

import (
	"runtime/debug"
	"testing"

	"gravel/internal/fabric"
	"gravel/internal/obs"
	"gravel/internal/queue"
	"gravel/internal/timemodel"
	"gravel/internal/wire"
)

// TestAllocsPerRunFlushRoundTrip pins the pooled packet lifecycle to zero
// steady-state heap allocations: staging a full per-node queue, flushing
// it onto the fabric, applying it, and recycling with Done must reuse
// the same pooled buffer every cycle. GC is disabled for the
// measurement so a collection cannot clear the pool's victim cache and
// masquerade as a hot-path allocation.
func TestAllocsPerRunFlushRoundTrip(t *testing.T) {
	if obs.Enabled() {
		t.Fatal("flight recorder is enabled; this guard pins the disabled path")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	p := timemodel.Default()
	clocks := []*timemodel.Clocks{{}, {}}
	fab := fabric.New(p, clocks)
	q := queue.NewGravel(64, wire.SlotRows, 4)
	a := New(0, p, q, fab, clocks[0], false)

	msgsPerPacket := p.PerNodeQueueBytes / wire.MsgWireBytes
	cmd := wire.PackCmd(wire.OpInc, 0, 1)
	drain := func() {
		for {
			select {
			case pkt := <-fab.Inbox(1):
				fab.Done(pkt)
			default:
				return
			}
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		for m := 0; m < msgsPerPacket; m++ {
			a.AppendDirect(1, cmd, uint64(m), 1, 0)
		}
		a.Flush()
		drain()
	})
	if allocs != 0 {
		t.Fatalf("aggregator flush round trip allocated %.2f times per op, want 0", allocs)
	}
}

// TestAllocsPerRunRepackDrain is the same guard over the queue-drain path:
// one committed slot repacked into builders, flushed, applied, and
// recycled.
func TestAllocsPerRunRepackDrain(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	p := timemodel.Default()
	clocks := []*timemodel.Clocks{{}, {}}
	fab := fabric.New(p, clocks)
	const cols = 256
	q := queue.NewGravel(64, wire.SlotRows, cols)
	a := New(0, p, q, fab, clocks[0], false)

	cmd := wire.PackCmd(wire.OpInc, 0, 1)
	drain := func() {
		for {
			select {
			case pkt := <-fab.Inbox(1):
				fab.Done(pkt)
			default:
				return
			}
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		s := q.Reserve(cols)
		for m := 0; m < cols; m++ {
			s.Row(wire.RowCmd)[m] = cmd
			s.Row(wire.RowDest)[m] = 1
			s.Row(wire.RowA)[m] = uint64(m)
			s.Row(wire.RowB)[m] = 1
		}
		s.Commit()
		for q.TryConsume(a.shards[0].repackFn) {
		}
		a.Flush()
		drain()
	})
	if allocs != 0 {
		t.Fatalf("repack/drain round trip allocated %.2f times per op, want 0", allocs)
	}
}
