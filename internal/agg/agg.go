// Package agg implements Gravel's aggregator (§3.4, §6): CPU threads
// that drain the GPU's producer/consumer queue and repack messages into
// per-node queues, which are handed to the NIC when full or at a flush
// point.
//
// The paper flushes on a 125 µs timeout as well; in this bulk-
// synchronous reproduction the end-of-superstep flush subsumes the
// timeout (see DESIGN.md). Poll time is accounted separately so the
// §8.1 observation (the aggregator core spends most of its time
// polling) can be reproduced.
package agg

import (
	"runtime"
	"sync"
	"sync/atomic"

	"gravel/internal/fabric"
	"gravel/internal/obs"
	"gravel/internal/queue"
	"gravel/internal/stats"
	"gravel/internal/timemodel"
	"gravel/internal/wire"
)

// readyPkt is a flushed per-node (or per-group) queue waiting to be put
// on the wire. Flush decisions happen under a shard mutex, but
// transmission — which can block on receiver backpressure — happens
// outside it (see pump), so network threads can always stage follow-up
// messages without risking a send/receive deadlock.
type readyPkt struct {
	dest   int
	buf    []byte
	msgs   int
	routed bool
}

// shard is one drain thread's private aggregation state: its own
// builder set and ready list under its own mutex. With one aggregator
// thread (the paper's best configuration, and the default) there is a
// single shard and behavior is identical to a global lock; with more,
// threads repack without contending on one mutex and packet streams
// merge at pump/flush boundaries.
type shard struct {
	mu       sync.Mutex      // guards builders, grouped, ready; never held across Send
	builders []*wire.Builder // per in-group destination (or all, when flat)
	grouped  []*wire.Builder // per remote group, routed records
	ready    []readyPkt      // flushed queues awaiting transmission
	spare    []readyPkt      // drained batch recycled for the next swap

	// Destinations that took a PUT_SIGNAL during the batch being
	// repacked. Signals must not sit in a part-filled builder until the
	// end-of-step flush (a remote waiter spinning on the signal cell
	// keeps its step from ending), but they need not go out one packet
	// per signal either: flushing once at the end of the drained batch
	// preserves liveness and lets a batch's worth of signalled puts to
	// one destination share a packet.
	sigNodes     []int
	sigGroups    []int
	sigNodeMark  []bool
	sigGroupMark []bool

	// repackFn is the shard-bound queue consumer, built once so the hot
	// TryConsume path passes a preallocated closure.
	repackFn func(payload []uint64, rows, cols, count int)
}

// Aggregator drains one node's producer/consumer queue.
type Aggregator struct {
	node   int
	params *timemodel.Params
	q      *queue.Gravel
	fab    fabric.Fabric
	clock  *timemodel.Clocks

	// PerMessage, when set before Start, disables message combining:
	// every message becomes its own wire packet (the message-per-lane
	// baseline, §3.2). Set at construction time only.
	PerMessage bool

	// groupSize > 1 enables two-level hierarchical aggregation (§10):
	// messages to a node outside the sender's group travel in per-GROUP
	// queues to a gateway member of the destination group, which
	// re-aggregates them into per-node queues for its group.
	groupSize int

	// shards holds one aggregation shard per drain thread
	// (params.AggregatorThreads, minimum one). Host-context staging
	// (AppendDirect, Flush's final drain) uses shard 0.
	shards   []*shard
	inFlight atomic.Int64 // drain attempts in progress (quiescence)

	// Flush-reason counters (§3.4): full-queue flushes go immediately,
	// stragglers are forced out by the end-of-step timeout flush. One
	// atomic add per flush (~thousands of messages), so always on.
	flushFull    stats.Counter
	flushTimeout stats.Counter

	stop chan struct{}
	done chan struct{}
}

// New creates an aggregator for the given node. The thread count is
// taken from params.AggregatorThreads (the paper found one thread
// performs best on its 4-thread CPU). With perMessage set, combining is
// disabled and every message becomes its own packet (the
// message-per-lane baseline).
func New(node int, params *timemodel.Params, q *queue.Gravel, fab fabric.Fabric, clock *timemodel.Clocks, perMessage bool) *Aggregator {
	return NewHierarchical(node, params, q, fab, clock, perMessage, 0)
}

// NewHierarchical is New with two-level aggregation over groups of
// groupSize nodes (§10); groupSize <= 1 means flat.
func NewHierarchical(node int, params *timemodel.Params, q *queue.Gravel, fab fabric.Fabric, clock *timemodel.Clocks, perMessage bool, groupSize int) *Aggregator {
	n := fab.Nodes()
	if groupSize <= 1 || groupSize >= n {
		groupSize = 0
	}
	a := &Aggregator{
		node:       node,
		params:     params,
		q:          q,
		fab:        fab,
		clock:      clock,
		PerMessage: perMessage,
		groupSize:  groupSize,
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	capBytes := params.PerNodeQueueBytes
	if perMessage {
		capBytes = wire.MsgWireBytes
	}
	threads := params.AggregatorThreads
	if threads < 1 {
		threads = 1
	}
	a.shards = make([]*shard, threads)
	for i := range a.shards {
		sh := &shard{builders: make([]*wire.Builder, n), sigNodeMark: make([]bool, n)}
		for d := 0; d < n; d++ {
			sh.builders[d] = wire.NewBuilder(d, capBytes)
		}
		if groupSize > 0 {
			groups := (n + groupSize - 1) / groupSize
			sh.grouped = make([]*wire.Builder, groups)
			sh.sigGroupMark = make([]bool, groups)
			for g := 0; g < groups; g++ {
				gw := a.gatewayOf(g)
				sh.grouped[g] = wire.NewRoutedBuilder(gw, capBytes)
			}
		}
		sh.repackFn = func(payload []uint64, rows, cols, count int) {
			a.repack(sh, payload, rows, cols, count)
		}
		a.shards[i] = sh
	}
	return a
}

// gatewayOf picks this node's gateway member within remote group g,
// spreading gateway load across the group's members.
func (a *Aggregator) gatewayOf(g int) int {
	n := a.fab.Nodes()
	gw := g*a.groupSize + a.node%a.groupSize
	if gw >= n {
		gw = g * a.groupSize
	}
	return gw
}

// GroupSize returns the hierarchical group size (0 = flat).
func (a *Aggregator) GroupSize() int { return a.groupSize }

// Start launches the aggregator thread(s), one per shard.
func (a *Aggregator) Start() {
	var wg sync.WaitGroup
	wg.Add(len(a.shards))
	for _, sh := range a.shards {
		go func(sh *shard) {
			defer wg.Done()
			a.run(sh)
		}(sh)
	}
	go func() {
		wg.Wait()
		close(a.done)
	}()
}

// Stop terminates the aggregator after the queue is fully drained.
func (a *Aggregator) Stop() {
	close(a.stop)
	<-a.done
}

func (a *Aggregator) run(sh *shard) {
	idlePollNs := 40.0 // cost of one empty poll of the queue head
	for {
		worked := a.drainSome(sh, 64)
		if a.pump() {
			worked = true
		}
		if !worked {
			a.clock.AddAggIdle(idlePollNs)
			select {
			case <-a.stop:
				// Final drain: the queue must already be quiescent when
				// Stop is called, but be safe.
				for a.drainSome(sh, 64) {
				}
				a.pump()
				return
			default:
				runtime.Gosched()
			}
		}
	}
}

// pump transmits every staged queue on every shard; it reports whether
// any were sent. Send can block on receiver backpressure, so pump must
// only be called from an aggregator thread or a host thread — never a
// network thread.
func (a *Aggregator) pump() bool {
	// The inFlight guard keeps quiescence from declaring the node idle
	// while a popped packet is between the ready list and fab.Send.
	a.inFlight.Add(1)
	defer a.inFlight.Add(-1)
	any := false
	for _, sh := range a.shards {
		if a.pumpShard(sh) {
			any = true
		}
	}
	return any
}

// pumpShard drains one shard's ready list. It swaps the whole list out
// under the lock (ping-ponging between two reusable backing arrays, so
// the steady state stages and drains without allocating) and sends
// outside it.
func (a *Aggregator) pumpShard(sh *shard) bool {
	any := false
	for {
		sh.mu.Lock()
		if len(sh.ready) == 0 {
			sh.mu.Unlock()
			return any
		}
		batch := sh.ready
		sh.ready = sh.spare[:0]
		sh.spare = nil
		sh.mu.Unlock()
		for i := range batch {
			pkt := &batch[i]
			if pkt.routed {
				a.fab.SendRouted(a.node, pkt.dest, pkt.buf, pkt.msgs)
			} else {
				a.fab.Send(a.node, pkt.dest, pkt.buf, pkt.msgs)
			}
			batch[i] = readyPkt{} // the fabric owns the buffer now
		}
		sh.mu.Lock()
		if sh.spare == nil {
			sh.spare = batch[:0]
		}
		sh.mu.Unlock()
		any = true
	}
}

// drainSome consumes up to max slots into sh; reports whether any were
// consumed.
func (a *Aggregator) drainSome(sh *shard, max int) bool {
	a.inFlight.Add(1)
	defer a.inFlight.Add(-1)
	any := false
	for i := 0; i < max; i++ {
		if !a.q.TryConsume(sh.repackFn) {
			break
		}
		any = true
	}
	return any
}

// Busy reports whether a drain attempt is in progress; quiescence
// detection needs this to close the window between a slot being claimed
// and its messages reaching a builder.
func (a *Aggregator) Busy() bool { return a.inFlight.Load() != 0 }

// repack moves one slot's messages into sh's per-destination builders,
// flushing any builder that fills (§3.4: per-node queues are sent as
// soon as they become full).
func (a *Aggregator) repack(sh *shard, payload []uint64, rows, cols, count int) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	a.clock.AddAgg(a.params.AggPerSlotNs + float64(count)*a.params.AggPerMsgNs)
	a.clock.CountAggSlot(count)
	cmdRow := payload[wire.RowCmd*cols:]
	destRow := payload[wire.RowDest*cols:]
	aRow := payload[wire.RowA*cols:]
	bRow := payload[wire.RowB*cols:]
	for m := 0; m < count; m++ {
		a.appendLocked(sh, int(destRow[m]), cmdRow[m], aRow[m], bRow[m])
	}
	a.flushSignalsLocked(sh)
}

// flushSignalsLocked sends every builder that took a PUT_SIGNAL during
// the batch just staged; sh.mu must be held. See the shard fields for
// why signals flush at batch boundaries rather than per message or at
// end of step.
func (a *Aggregator) flushSignalsLocked(sh *shard) {
	for _, g := range sh.sigGroups {
		sh.sigGroupMark[g] = false
		a.flushGroupLocked(sh, g, false)
	}
	sh.sigGroups = sh.sigGroups[:0]
	for _, d := range sh.sigNodes {
		sh.sigNodeMark[d] = false
		a.flushLocked(sh, d, false)
	}
	sh.sigNodes = sh.sigNodes[:0]
}

// appendLocked stages one message toward dest, choosing a per-node or
// per-group queue; sh.mu must be held.
func (a *Aggregator) appendLocked(sh *shard, dest int, cmd, av, vv uint64) {
	if a.groupSize > 0 && dest/a.groupSize != a.node/a.groupSize {
		g := dest / a.groupSize
		b := sh.grouped[g]
		if b.Full() {
			a.flushGroupLocked(sh, g, false)
		}
		b.AppendRouted(cmd, av, vv, dest)
		if wire.Op(cmd&0xff) == wire.OpPutSignal && !sh.sigGroupMark[g] {
			sh.sigGroupMark[g] = true
			sh.sigGroups = append(sh.sigGroups, g)
		}
		return
	}
	b := sh.builders[dest]
	if b.Full() {
		a.flushLocked(sh, dest, false)
	}
	b.Append(cmd, av, vv)
	if a.PerMessage {
		// Message-per-lane: no combining; one packet per message.
		a.flushLocked(sh, dest, false)
	} else if wire.Op(cmd&0xff) == wire.OpPutSignal && !sh.sigNodeMark[dest] {
		sh.sigNodeMark[dest] = true
		sh.sigNodes = append(sh.sigNodes, dest)
	}
}

func (a *Aggregator) flushGroupLocked(sh *shard, g int, timeout bool) {
	b := sh.grouped[g]
	if b.Empty() {
		return
	}
	buf, msgs := b.Take()
	a.clock.AddAgg(a.params.AggPerFlushNs)
	a.recordFlush(len(buf), msgs, timeout)
	sh.ready = append(sh.ready, readyPkt{dest: b.Dest(), buf: buf, msgs: msgs, routed: true})
}

// AppendDirect stages one message from host context (an AM handler
// issuing a follow-up message, or a gateway relaying a routed record),
// charging chargeNs of CPU time to the given adder. It may flush a full
// queue. Host-context staging always lands on shard 0.
func (a *Aggregator) AppendDirect(dest int, cmd, av, vv uint64, chargeNs float64) {
	sh := a.shards[0]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	a.clock.AddAgg(chargeNs)
	a.appendLocked(sh, dest, cmd, av, vv)
	a.flushSignalsLocked(sh)
}

func (a *Aggregator) flushLocked(sh *shard, dest int, timeout bool) {
	b := sh.builders[dest]
	if b.Empty() {
		return
	}
	buf, msgs := b.Take()
	a.clock.AddAgg(a.params.AggPerFlushNs)
	a.recordFlush(len(buf), msgs, timeout)
	sh.ready = append(sh.ready, readyPkt{dest: dest, buf: buf, msgs: msgs})
}

// recordFlush attributes one flush to its reason — the per-node queue
// filled, or the end-of-step timeout flush forced it out — and emits
// the matching trace event when the flight recorder is on.
func (a *Aggregator) recordFlush(bytes, msgs int, timeout bool) {
	if timeout {
		a.flushTimeout.Inc()
	} else {
		a.flushFull.Inc()
	}
	if obs.Enabled() {
		k := obs.KAggFlushFull
		if timeout {
			k = obs.KAggFlushTimeout
		}
		obs.Emit(k, a.node, int64(bytes), int64(msgs), "")
	}
}

// FlushCounts returns how many flushes were triggered by a full
// per-node queue and how many by the end-of-step timeout flush.
func (a *Aggregator) FlushCounts() (full, timeout int64) {
	return a.flushFull.Load(), a.flushTimeout.Load()
}

// Flush sends every non-empty per-node queue (end-of-superstep /
// timeout flush). The caller must ensure the producer/consumer queue is
// empty first, or freshly repacked messages may miss the flush. Flush
// must be called from a host thread (it transmits, which can block).
func (a *Aggregator) Flush() {
	// Drain anything still in the queue on the caller's thread first.
	for a.q.TryConsume(a.shards[0].repackFn) {
	}
	for _, sh := range a.shards {
		sh.mu.Lock()
		for d := range sh.builders {
			a.flushLocked(sh, d, true)
		}
		for g := range sh.grouped {
			a.flushGroupLocked(sh, g, true)
		}
		sh.mu.Unlock()
	}
	a.pump()
}

// Pending reports whether any shard holds unflushed or unsent messages.
func (a *Aggregator) Pending() bool {
	for _, sh := range a.shards {
		sh.mu.Lock()
		pending := len(sh.ready) > 0
		for _, b := range sh.builders {
			if !b.Empty() {
				pending = true
				break
			}
		}
		if !pending {
			for _, b := range sh.grouped {
				if !b.Empty() {
					pending = true
					break
				}
			}
		}
		sh.mu.Unlock()
		if pending {
			return true
		}
	}
	return false
}
