package agg

import (
	"runtime"
	"sync"
	"sync/atomic"

	"gravel/internal/fabric"
	"gravel/internal/obs"
	"gravel/internal/queue"
	"gravel/internal/stats"
	"gravel/internal/timemodel"
	"gravel/internal/wire"
)

// Archive is the grape-style aggregation strategy (libgrape-lite's GPU
// MessageManager, ROADMAP item 2): instead of drain threads repacking
// producer/consumer queue slots into fixed-capacity builders, the
// device appends directly into per-destination growable archives at
// wavefront granularity (one leader reservation for the WF's active
// mask — see simt.Group.WFAggregate), and sealed archive segments are
// bulk-handed to the fabric.
//
// An archive grows by chaining segments: when the open segment fills it
// is sealed and a new one opens at double the capacity, up to the
// per-node queue bound — so lightly-used destinations stay small while
// hot ones converge on full-size packets without per-message repack
// work. With fuse enabled (the grape default), a destination's sealed
// segments merge into one contiguous packet at flush time; without it,
// each segment becomes its own packet.
//
// Flush discipline mirrors the ticket strategy's §3.4 rules: a
// destination whose staged bytes reach the per-node queue bound flushes
// immediately (counted as a full flush), stragglers go out on the
// end-of-step timeout flush, and a PUT_SIGNAL stages its destination's
// whole archive at once so a remote waiter cannot spin on a signal
// parked in a half-filled buffer. Appends and flush decisions only
// stage; transmission always happens on the pump goroutine or a host
// thread, so network threads staging follow-ups can never deadlock
// against receiver backpressure.
type Archive struct {
	node   int
	params *timemodel.Params
	q      *queue.Gravel
	fab    fabric.Fabric
	clock  *timemodel.Clocks
	fuse   bool

	maxBytes int // per-destination staged-byte bound (flush when reached)

	dests []*destArchive

	mu    sync.Mutex // guards ready/spare; never held across Send
	ready []readyPkt
	spare []readyPkt

	inFlight atomic.Int64 // drain attempts in progress (quiescence)

	flushFull    stats.Counter
	flushTimeout stats.Counter

	// repackFn drains producer/consumer queue slots staged by host
	// paths that do not know the strategy (plain core contexts); the
	// archive model's device path bypasses the queue entirely.
	repackFn func(payload []uint64, rows, cols, count int)

	stop chan struct{}
	done chan struct{}
}

// seg is one sealed archive segment: an encoded run of wire records.
type seg struct {
	buf  []byte
	msgs int
}

// destArchive is one destination's growable archive. Its mutex orders
// strictly before Archive.mu (stageLocked acquires the latter while
// holding the former; nothing acquires them in the other order).
type destArchive struct {
	mu     sync.Mutex
	dest   int
	segCap int // next segment's byte capacity; doubles up to maxBytes
	open   []byte
	openMs int
	sealed []seg
	bytes  int // staged bytes, open + sealed
	msgs   int
}

// NewArchive builds the archive strategy for one node. Initial
// per-destination segment capacity is scaled by cluster size (an even
// split of the per-node queue budget, floor 1 kB), so small clusters
// open big segments and large ones start small and grow on demand.
func NewArchive(node int, params *timemodel.Params, q *queue.Gravel, fab fabric.Fabric, clock *timemodel.Clocks, fuse bool) *Archive {
	n := fab.Nodes()
	initCap := params.PerNodeQueueBytes / n
	if initCap < 1<<10 {
		initCap = 1 << 10
	}
	if initCap > params.PerNodeQueueBytes {
		initCap = params.PerNodeQueueBytes
	}
	ar := &Archive{
		node:     node,
		params:   params,
		q:        q,
		fab:      fab,
		clock:    clock,
		fuse:     fuse,
		maxBytes: params.PerNodeQueueBytes,
		dests:    make([]*destArchive, n),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for d := 0; d < n; d++ {
		ar.dests[d] = &destArchive{dest: d, segCap: initCap}
	}
	ar.repackFn = ar.repack
	return ar
}

// Fused reports whether same-destination segments merge at flush time.
func (ar *Archive) Fused() bool { return ar.fuse }

// Name implements Strategy.
func (ar *Archive) Name() string { return "archive" }

// GroupSize implements Strategy: archives are flat (hierarchical
// aggregation is a ticket-strategy feature).
func (ar *Archive) GroupSize() int { return 0 }

// Start implements Strategy: one background goroutine drains the
// producer/consumer queue safety net and pumps staged packets.
func (ar *Archive) Start() {
	go func() {
		defer close(ar.done)
		ar.run()
	}()
}

// Stop implements Strategy.
func (ar *Archive) Stop() {
	close(ar.stop)
	<-ar.done
}

func (ar *Archive) run() {
	idlePollNs := 40.0 // cost of one empty poll, same as the ticket strategy
	for {
		worked := ar.drainSome(64)
		if ar.pump() {
			worked = true
		}
		if !worked {
			ar.clock.AddAggIdle(idlePollNs)
			select {
			case <-ar.stop:
				for ar.drainSome(64) {
				}
				ar.pump()
				return
			default:
				runtime.Gosched()
			}
		}
	}
}

// drainSome consumes up to max producer/consumer queue slots; the
// archive model's device path appends directly, so this is a safety net
// for host paths that enqueue through the queue.
func (ar *Archive) drainSome(max int) bool {
	ar.inFlight.Add(1)
	defer ar.inFlight.Add(-1)
	any := false
	for i := 0; i < max; i++ {
		if !ar.q.TryConsume(ar.repackFn) {
			break
		}
		any = true
	}
	return any
}

// repack moves one queue slot's messages into the archives, charged
// like the ticket strategy's repack so queue-staged traffic costs the
// same under either strategy.
func (ar *Archive) repack(payload []uint64, rows, cols, count int) {
	ar.clock.AddAgg(ar.params.AggPerSlotNs + float64(count)*ar.params.AggPerMsgNs)
	ar.clock.CountAggSlot(count)
	cmdRow := payload[wire.RowCmd*cols:]
	destRow := payload[wire.RowDest*cols:]
	aRow := payload[wire.RowA*cols:]
	bRow := payload[wire.RowB*cols:]
	for m := 0; m < count; m++ {
		ar.append(int(destRow[m]), cmdRow[m], aRow[m], bRow[m])
	}
}

// Busy implements Strategy.
func (ar *Archive) Busy() bool { return ar.inFlight.Load() != 0 }

// AppendDirect implements Strategy: host-context staging (AM handler
// follow-ups). It stages only — the pump goroutine transmits.
func (ar *Archive) AppendDirect(dest int, cmd, av, vv uint64, chargeNs float64) {
	ar.clock.AddAgg(chargeNs)
	ar.append(dest, cmd, av, vv)
}

// append stages one record, sealing/staging per the flush discipline.
func (ar *Archive) append(dest int, cmd, av, vv uint64) {
	da := ar.dests[dest]
	da.mu.Lock()
	ar.appendLocked(da, cmd, av, vv)
	if wire.Op(cmd&0xff) == wire.OpPutSignal || da.bytes >= ar.maxBytes {
		ar.stageLocked(da, false)
	}
	da.mu.Unlock()
}

// AppendWF stages the given lanes' records for a single destination in
// one warp-aggregated reservation (the device-side ballot/prefix and
// leader atomic are charged by simt.Group.WFAggregate; the archive
// itself does no per-message CPU repack work — that is the strategy's
// whole point). cmdOf must be cheap and pure. Stages only.
func (ar *Archive) AppendWF(dest int, lanes []int, cmdOf func(lane int) uint64, a, v []uint64) {
	da := ar.dests[dest]
	da.mu.Lock()
	sig := false
	for _, l := range lanes {
		cmd := cmdOf(l)
		ar.appendLocked(da, cmd, a[l], v[l])
		if wire.Op(cmd&0xff) == wire.OpPutSignal {
			sig = true
		}
	}
	if sig || da.bytes >= ar.maxBytes {
		ar.stageLocked(da, false)
	}
	da.mu.Unlock()
}

// appendLocked writes one record into da's open segment, sealing and
// growing when it fills; da.mu must be held.
func (ar *Archive) appendLocked(da *destArchive, cmd, av, vv uint64) {
	if da.open == nil {
		da.open = wire.GetBuf(da.segCap)
	} else if len(da.open)+wire.MsgWireBytes > da.segCap {
		ar.sealLocked(da)
		da.open = wire.GetBuf(da.segCap)
	}
	da.open = wire.AppendRecord(da.open, cmd, av, vv)
	da.openMs++
	da.bytes += wire.MsgWireBytes
	da.msgs++
}

// sealLocked closes da's open segment onto the sealed chain and doubles
// the next segment's capacity (up to the per-node bound); da.mu must be
// held. The open segment must be non-empty.
func (ar *Archive) sealLocked(da *destArchive) {
	da.sealed = append(da.sealed, seg{buf: da.open, msgs: da.openMs})
	if obs.Enabled() {
		obs.Emit(obs.KAggArchive, ar.node, int64(len(da.open)), int64(da.openMs), "")
	}
	da.open = nil
	da.openMs = 0
	if da.segCap < ar.maxBytes {
		da.segCap *= 2
		if da.segCap > ar.maxBytes {
			da.segCap = ar.maxBytes
		}
	}
}

// stageLocked seals da's open segment and moves the whole archive to
// the ready list (fused into one contiguous packet per destination, or
// one packet per segment). da.mu must be held; it acquires Archive.mu.
func (ar *Archive) stageLocked(da *destArchive, timeout bool) {
	if da.open != nil && da.openMs > 0 {
		ar.sealLocked(da)
	}
	if len(da.sealed) == 0 {
		return
	}
	var pkts []readyPkt
	if ar.fuse && len(da.sealed) > 1 {
		merged := wire.GetBuf(da.bytes)
		msgs := 0
		for _, s := range da.sealed {
			merged = append(merged, s.buf...)
			msgs += s.msgs
			wire.PutBuf(s.buf)
		}
		pkts = []readyPkt{{dest: da.dest, buf: merged, msgs: msgs}}
	} else {
		pkts = make([]readyPkt, len(da.sealed))
		for i, s := range da.sealed {
			pkts[i] = readyPkt{dest: da.dest, buf: s.buf, msgs: s.msgs}
		}
	}
	da.sealed = da.sealed[:0]
	da.bytes = 0
	da.msgs = 0
	for _, p := range pkts {
		ar.recordFlush(len(p.buf), p.msgs, timeout)
	}
	ar.mu.Lock()
	ar.ready = append(ar.ready, pkts...)
	ar.mu.Unlock()
}

// recordFlush mirrors the ticket strategy's flush accounting: one
// AggPerFlushNs charge and a reason-attributed counter + trace event
// per packet handed to the wire.
func (ar *Archive) recordFlush(bytes, msgs int, timeout bool) {
	ar.clock.AddAgg(ar.params.AggPerFlushNs)
	if timeout {
		ar.flushTimeout.Inc()
	} else {
		ar.flushFull.Inc()
	}
	if obs.Enabled() {
		k := obs.KAggFlushFull
		if timeout {
			k = obs.KAggFlushTimeout
		}
		obs.Emit(k, ar.node, int64(bytes), int64(msgs), "")
	}
}

// FlushCounts implements Strategy.
func (ar *Archive) FlushCounts() (full, timeout int64) {
	return ar.flushFull.Load(), ar.flushTimeout.Load()
}

// pump transmits every staged packet; host/aggregator threads only.
func (ar *Archive) pump() bool {
	ar.inFlight.Add(1)
	defer ar.inFlight.Add(-1)
	any := false
	for {
		ar.mu.Lock()
		if len(ar.ready) == 0 {
			ar.mu.Unlock()
			return any
		}
		batch := ar.ready
		ar.ready = ar.spare[:0]
		ar.spare = nil
		ar.mu.Unlock()
		for i := range batch {
			pkt := &batch[i]
			ar.fab.Send(ar.node, pkt.dest, pkt.buf, pkt.msgs)
			batch[i] = readyPkt{} // the fabric owns the buffer now
		}
		ar.mu.Lock()
		if ar.spare == nil {
			ar.spare = batch[:0]
		}
		ar.mu.Unlock()
		any = true
	}
}

// Flush implements Strategy: the end-of-step timeout flush. It drains
// the queue safety net on the caller's thread, stages every archive in
// destination order, and transmits.
func (ar *Archive) Flush() {
	for ar.q.TryConsume(ar.repackFn) {
	}
	for _, da := range ar.dests {
		da.mu.Lock()
		ar.stageLocked(da, true)
		da.mu.Unlock()
	}
	ar.pump()
}

// Pending implements Strategy.
func (ar *Archive) Pending() bool {
	ar.mu.Lock()
	pending := len(ar.ready) > 0
	ar.mu.Unlock()
	if pending {
		return true
	}
	for _, da := range ar.dests {
		da.mu.Lock()
		if da.msgs > 0 {
			pending = true
		}
		da.mu.Unlock()
		if pending {
			return true
		}
	}
	return false
}

var _ Strategy = (*Archive)(nil)
