package agg

import (
	"runtime"
	"testing"

	"gravel/internal/fabric"
	"gravel/internal/queue"
	"gravel/internal/timemodel"
	"gravel/internal/wire"
)

func setup(t *testing.T, perMessage bool, queueBytes int) (*Aggregator, *queue.Gravel, *fabric.Chan) {
	t.Helper()
	p := timemodel.Default()
	if queueBytes > 0 {
		p.PerNodeQueueBytes = queueBytes
	}
	clocks := []*timemodel.Clocks{{}, {}}
	fab := fabric.New(p, clocks)
	q := queue.NewGravel(64, wire.SlotRows, 4)
	a := New(0, p, q, fab, clocks[0], perMessage)
	return a, q, fab
}

// produce enqueues count messages to dest through the PCQ.
func produce(q *queue.Gravel, dest, count int) {
	for sent := 0; sent < count; {
		n := 4
		if count-sent < n {
			n = count - sent
		}
		s := q.Reserve(n)
		for m := 0; m < n; m++ {
			s.Row(wire.RowCmd)[m] = wire.PackCmd(wire.OpInc, 0, 1)
			s.Row(wire.RowDest)[m] = uint64(dest)
			s.Row(wire.RowA)[m] = uint64(sent + m)
			s.Row(wire.RowB)[m] = 1
		}
		s.Commit()
		sent += n
	}
}

// collector drains a node's inbox concurrently (the inbox is bounded,
// so synchronous flushes of many packets need a live consumer).
type collector struct {
	ch chan [2]int
}

func collect(fab *fabric.Chan, node int) *collector {
	c := &collector{ch: make(chan [2]int, 1)}
	go func() {
		pkts, msgs := 0, 0
		for pkt := range fab.Inbox(node) {
			pkts++
			msgs += pkt.Msgs
			fab.Done(pkt)
		}
		c.ch <- [2]int{pkts, msgs}
	}()
	return c
}

// wait closes the fabric and returns (pkts, msgs).
func (c *collector) wait() (int, int) {
	r := <-c.ch
	return r[0], r[1]
}

func TestCombiningFlush(t *testing.T) {
	a, q, fab := setup(t, false, 0)
	c := collect(fab, 1)
	produce(q, 1, 100)
	a.Flush() // drains the queue on the caller's thread and sends
	if a.Pending() {
		t.Fatal("pending after flush")
	}
	fab.Close()
	pkts, msgs := c.wait()
	if msgs != 100 {
		t.Fatalf("msgs = %d, want 100", msgs)
	}
	if pkts != 1 {
		t.Fatalf("pkts = %d, want 1 (combined)", pkts)
	}
}

func TestFullQueueAutoFlush(t *testing.T) {
	// Tiny per-node queues force flush-on-full during repack. The inbox
	// is bounded, so collect packets concurrently while flushing.
	a, q, fab := setup(t, false, 10*wire.MsgWireBytes)
	c := collect(fab, 1)
	produce(q, 1, 95)
	a.Flush()
	fab.Close()
	pkts, msgs := c.wait()
	if msgs != 95 {
		t.Fatalf("msgs = %d", msgs)
	}
	if pkts != 10 { // 9 full flushes of 10 + final 5
		t.Fatalf("pkts = %d, want 10", pkts)
	}
}

func TestPerMessageMode(t *testing.T) {
	a, q, fab := setup(t, true, 0)
	c := collect(fab, 1)
	produce(q, 1, 12)
	a.Flush()
	fab.Close()
	pkts, msgs := c.wait()
	if pkts != 12 || msgs != 12 {
		t.Fatalf("per-message mode: pkts=%d msgs=%d, want 12/12", pkts, msgs)
	}
}

func TestBackgroundDrain(t *testing.T) {
	a, q, fab := setup(t, false, 0)
	c := collect(fab, 0)
	a.Start()
	produce(q, 0, 200) // self-destined
	// The background thread must eventually drain the queue.
	for !q.Empty() {
		runtime.Gosched()
	}
	a.Stop()
	a.Flush()
	fab.Close()
	_, msgs := c.wait()
	if msgs != 200 {
		t.Fatalf("msgs = %d, want 200", msgs)
	}
}

func TestRouteByDestination(t *testing.T) {
	a, q, fab := setup(t, false, 0)
	c0 := collect(fab, 0)
	c1 := collect(fab, 1)
	produce(q, 0, 7)
	produce(q, 1, 9)
	a.Flush()
	fab.Close()
	_, m0 := c0.wait()
	_, m1 := c1.wait()
	if m0 != 7 || m1 != 9 {
		t.Fatalf("routed %d/%d, want 7/9", m0, m1)
	}
}
