package agg

// Strategy is the send-path aggregation seam: everything the runtime
// needs from the component that turns fine-grain messages into wire
// packets. Two implementations exist:
//
//   - *Aggregator ("ticket"): the paper's design — drain threads repack
//     producer/consumer queue slots into fixed-capacity per-destination
//     builders, flushed when full or at the end-of-step timeout flush.
//   - *Archive ("archive"): a grape-style rival — per-destination
//     growable archives appended directly by the device at WF
//     granularity, sealed into segments and bulk-handed to the fabric
//     (optionally fused per destination).
//
// The contract every implementation must honor:
//
//   - Start/Stop bracket the background drain/pump goroutines; Stop may
//     only be called once the producer/consumer queue is quiescent.
//   - AppendDirect stages one message from host context (AM handler
//     follow-ups, gateway relays) and must never transmit on the
//     calling goroutine — network threads stage through it, and a
//     blocking Send there can deadlock against receiver backpressure.
//   - Flush forces every staged message toward the wire and transmits;
//     it must only be called from a host thread.
//   - Signal liveness: a staged PUT_SIGNAL must reach the wire without
//     waiting for the end-of-step flush (a remote waiter spins on it).
//   - Busy reports an in-progress drain attempt and Pending any staged
//     or unsent messages; quiescence detection needs both.
type Strategy interface {
	// Start launches the background drain/pump goroutines.
	Start()
	// Stop terminates them after a final drain; the queue must already
	// be quiescent.
	Stop()
	// Flush stages and transmits every buffered message (end-of-step /
	// timeout flush). Host threads only.
	Flush()
	// Pending reports whether any staged or unsent messages remain.
	Pending() bool
	// Busy reports whether a drain attempt is in progress.
	Busy() bool
	// AppendDirect stages one message from host context, charging
	// chargeNs of CPU time. It must not transmit.
	AppendDirect(dest int, cmd, av, vv uint64, chargeNs float64)
	// FlushCounts returns the full-queue and timeout flush totals.
	FlushCounts() (full, timeout int64)
	// GroupSize returns the hierarchical group size (0 = flat; only the
	// ticket strategy supports groups).
	GroupSize() int
	// Name identifies the strategy ("ticket", "archive") for Stats.
	Name() string
}

// Name implements Strategy.
func (a *Aggregator) Name() string { return "ticket" }

var _ Strategy = (*Aggregator)(nil)
