package harness_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"gravel"
	"gravel/internal/harness"
)

// TestRegistryNames pins the registered app set: the union of what the
// three binaries used to accept, in Table 4 order for the bench subset.
func TestRegistryNames(t *testing.T) {
	want := []string{
		"gups", "gups-mod", "pagerank",
		"pagerank-1", "pagerank-2", "sssp-1", "sssp-2",
		"color-1", "color-2", "kmeans", "mer", "mer-full",
		"bfs-dir", "histogram",
	}
	got := harness.AppNames()
	if len(got) != len(want) {
		t.Fatalf("registry has %d apps %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestBenchOrder(t *testing.T) {
	want := []string{"GUPS", "PR-1", "PR-2", "SSSP-1", "SSSP-2", "color-1", "color-2", "kmeans", "mer"}
	apps := harness.BenchApps()
	if len(apps) != len(want) {
		t.Fatalf("got %d bench apps, want %d", len(apps), len(want))
	}
	for i, a := range apps {
		if a.Bench != want[i] {
			t.Fatalf("bench[%d] = %q, want %q", i, a.Bench, want[i])
		}
	}
}

func TestLookupUnknownListsNames(t *testing.T) {
	_, err := harness.LookupApp("nope")
	if err == nil {
		t.Fatal("expected error for unknown app")
	}
	for _, name := range []string{"gups", "mer-full", "color-2"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list %q", err, name)
		}
	}
}

// TestModelsMatchPublicAPI keeps the harness model list in lockstep
// with what gravel.Config.Model accepts.
func TestModelsMatchPublicAPI(t *testing.T) {
	pub := gravel.Models()
	har := harness.Models()
	if len(pub) != len(har) {
		t.Fatalf("harness lists %d models, gravel.Models() has %d", len(har), len(pub))
	}
	for i := range pub {
		if har[i].Name != pub[i] {
			t.Errorf("model[%d] = %q, want %q", i, har[i].Name, pub[i])
		}
		if har[i].Desc == "" {
			t.Errorf("model %q has no description", har[i].Name)
		}
	}
}

// TestEveryAppRuns executes every registered app's full path on a small
// input and checks self-verification passes and the checksum is
// populated.
func TestEveryAppRuns(t *testing.T) {
	for _, app := range harness.Apps() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			t.Parallel()
			sys, err := gravel.NewChecked(gravel.Config{Nodes: 3})
			if err != nil {
				t.Fatal(err)
			}
			defer sys.Close()
			res := app.Run(sys, harness.Params{Scale: 0.02})
			if res.Err != nil {
				t.Fatalf("self-verification failed: %v", res.Err)
			}
			if res.Check == 0 {
				t.Fatalf("Check is zero (summary: %s)", res.Summary)
			}
			if res.Summary == "" {
				t.Fatal("empty summary")
			}
		})
	}
}

func TestListJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := harness.WriteListJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc harness.ListDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Apps) != len(harness.AppNames()) || len(doc.Models) != len(gravel.Models()) {
		t.Fatalf("list doc has %d apps, %d models", len(doc.Apps), len(doc.Models))
	}
	found := false
	for _, tr := range doc.Transports {
		if tr == "tcp" {
			found = true
		}
	}
	if !found {
		t.Fatalf("transports %v missing tcp", doc.Transports)
	}
}
