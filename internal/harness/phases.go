package harness

import (
	"fmt"
	"io"

	"gravel/internal/rt"
)

// PhaseReport renders a system's superstep timeline, merging
// consecutive phases with the same name into (count, total, avg, max)
// rows. It is the -phases output of gravel-apps and gravel-node.
func PhaseReport(w io.Writer, sys rt.System) {
	type agg struct {
		count   int
		totalNs float64
		maxNs   float64
	}
	order := []string{}
	byName := map[string]*agg{}
	for _, ph := range sys.Phases() {
		a, ok := byName[ph.Name]
		if !ok {
			a = &agg{}
			byName[ph.Name] = a
			order = append(order, ph.Name)
		}
		a.count++
		a.totalNs += ph.PhaseNs
		if ph.PhaseNs > a.maxNs {
			a.maxNs = ph.PhaseNs
		}
	}
	fmt.Fprintf(w, "  %-14s %8s %12s %12s %12s\n", "phase", "count", "total ms", "avg us", "max us")
	for _, name := range order {
		a := byName[name]
		fmt.Fprintf(w, "  %-14s %8d %12.3f %12.1f %12.1f\n",
			name, a.count, a.totalNs/1e6, a.totalNs/float64(a.count)/1e3, a.maxNs/1e3)
	}
}
