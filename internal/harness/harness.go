// Package harness is the single application and model registry behind
// the gravel binaries. Before it existed, cmd/gravel-apps,
// cmd/gravel-node, and internal/bench each kept their own dispatch
// table of application names and workload configurations — three copies
// that had already drifted (gravel-node accepted two apps, the other
// two eleven; the graph-input floors differed). This package owns the
// one table: every app's builder (full run), shard entry point
// (per-process distributed run), total verifier, and Table 4 identity
// live here, and all three binaries consume it.
//
// An App runs on any rt.System, and every model builds over any
// registered fabric transport (gravel.Config.Model × Transport), so the
// registry spans the full app × model × fabric matrix.
package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"gravel/internal/fabric"
	"gravel/internal/models"
	"gravel/internal/rt"
)

// Params is the shared workload-parameter surface. The zero value of
// every field means "the app's registered default at Scale" — the same
// defaults the Table 4 bench workloads use — so gravel-apps can drive
// the registry with just -scale while gravel-node passes its explicit
// -table/-updates/-steps/-seed/-verts/-iters values through.
type Params struct {
	// Scale multiplies the app's default input sizes (0 = 1.0).
	Scale float64
	// Seed overrides the app's deterministic seed (0 = app default).
	Seed uint64
	// Table and Updates override the GUPS table size and per-node
	// update count; Steps the kernel-launch count.
	Table, Updates, Steps int
	// Verts and Iters override the random-graph pagerank vertex count
	// and the iteration count of iterative apps.
	Verts, Iters int
}

func (p Params) scale() float64 {
	if p.Scale <= 0 {
		return 1.0
	}
	return p.Scale
}

// s scales a default input size with the historical floor of 64.
func (p Params) s(base int) int {
	v := int(float64(base) * p.scale())
	if v < 64 {
		v = 64
	}
	return v
}

func (p Params) seedOr(def uint64) uint64 {
	if p.Seed != 0 {
		return p.Seed
	}
	return def
}

func (p Params) itersOr(def int) int {
	if p.Iters > 0 {
		return p.Iters
	}
	return def
}

// Result is one app execution's outcome.
type Result struct {
	// Summary is the human-readable one-liner the binaries print.
	Summary string
	// Ns is the virtual time the run consumed.
	Ns float64
	// Check is the run's functional checksum. It is additive across
	// shards: the per-process Check values of a distributed run sum to
	// the single-process run's Check, which is how gravel-node's smoke
	// mode and the distributed tests verify bit-identical execution.
	Check uint64
	// Err reports a failed self-verification (full runs only; e.g. an
	// invalid coloring or a GUPS sum that does not match the update
	// count). The run's numbers are still reported.
	Err error
}

// Checkpoint is one consistent cut of a distributed run: every shard's
// payload saved at the same step barrier by the same epoch.
type Checkpoint struct {
	// Step is the step/iteration count the run had completed.
	Step uint64
	// Nodes is the node count of the epoch that saved the checkpoint.
	Nodes int
	// Shards holds one payload per node of the saving epoch, in node
	// order. Payload layout is app-private (see the apps' EncodeShard).
	Shards [][]byte
}

// CkptRun wires an elastic shard run to the cluster's checkpoint
// store. The zero value is a cold start that never saves.
type CkptRun struct {
	// Resume, when non-nil, is the restore point the run continues
	// from. For non-Reshardable apps the launcher guarantees
	// Resume.Nodes equals the current node count.
	Resume *Checkpoint
	// Every is the checkpoint cadence in steps (<= 0 = every step).
	Every int
	// Save persists one shard payload for the step barrier just
	// crossed (nil = don't checkpoint).
	Save func(step uint64, data []byte) error
}

// App is one registered application.
type App struct {
	// Name is the registry key (-app value).
	Name string
	// Desc is the one-line description -list prints.
	Desc string
	// Bench is the app's Table 4 display name ("" = not one of the
	// nine bench workloads).
	Bench string
	// Run executes the full app on sys (every node launches).
	Run func(sys rt.System, p Params) Result
	// Shard executes only one node's share — the per-process entry
	// point of a multi-process run. Apps that coordinate between
	// supersteps (sssp, color, kmeans, bfs-dir, histogram) go through
	// coll (nil = single process, see the rt.AllReduce helpers); the
	// rest ignore it. Shard Check values sum to the full-run Check.
	Shard func(sys rt.System, node int, p Params, coll rt.Collectives) Result
	// Elastic, when non-nil, is the checkpoint-aware variant of Shard:
	// it restores from ck.Resume, saves through ck.Save at step
	// barriers, and otherwise behaves exactly like Shard (a zero
	// CkptRun makes them identical). Elastic runs must be bit-identical
	// to undisturbed runs.
	Elastic func(sys rt.System, node int, p Params, coll rt.Collectives, ck CkptRun) Result
	// Reshardable marks an Elastic app whose checkpoints restore
	// correctly under a *different* node count than the one that saved
	// them (its payloads are keyed by global index and its per-shard
	// work derives from global IDs, not per-node counts). Required for
	// live rescaling; same-count recovery only needs Elastic.
	Reshardable bool
	// VerifyTotal, when non-nil, checks a distributed run's reduced
	// Check total without needing a reference run (nil: callers
	// compare against an in-process reference instead).
	VerifyTotal func(total uint64, p Params, nodes int) error
}

// registry holds the Apps in registration order (Table 4 order for the
// bench subset).
var registry []*App

func register(a *App) {
	for _, b := range registry {
		if b.Name == a.Name {
			panic("harness: duplicate app " + a.Name)
		}
	}
	registry = append(registry, a)
}

// Apps returns every registered app in registration order.
func Apps() []*App {
	return append([]*App(nil), registry...)
}

// AppNames returns the registered app names in registration order.
func AppNames() []string {
	names := make([]string, len(registry))
	for i, a := range registry {
		names[i] = a.Name
	}
	return names
}

// LookupApp resolves an app by name; unknown names get an error that
// lists the valid ones.
func LookupApp(name string) (*App, error) {
	for _, a := range registry {
		if a.Name == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("unknown app %q (have %s)", name, strings.Join(AppNames(), ", "))
}

// MustApp is LookupApp for registered-by-construction names.
func MustApp(name string) *App {
	a, err := LookupApp(name)
	if err != nil {
		panic(err)
	}
	return a
}

// BenchApps returns the nine Table 4 workloads in the paper's order.
func BenchApps() []*App {
	var out []*App
	for _, a := range registry {
		if a.Bench != "" {
			out = append(out, a)
		}
	}
	return out
}

// ModelInfo describes one networking model for -list.
type ModelInfo struct {
	Name string `json:"name"`
	Desc string `json:"desc"`
}

var modelDesc = map[string]string{
	"coprocessor":     "§3.1 bulk-synchronous per-node queues exchanged between kernel chunks",
	"coprocessor+buf": "coprocessor with 1 MB per-node queues (Figure 15 second bar)",
	"msg-per-lane":    "§3.2 Gravel queue, no aggregation: one wire packet per message",
	"coalesced":       "§3.3 per-WG counting sort + synchronous coalesced sends (GPUnet style)",
	"coalesced+agg":   "coalesced APIs + Gravel-style GPU-wide aggregation",
	"gravel":          "the paper's system: WG-granularity offload + CPU aggregation",
	"gravel-archive":  "gravel with grape-style per-destination archive aggregation (WF appends, fused bulk handoff)",
	"cpu-only":        "Figure 13 CPU baseline: 4 host threads, Grappa/UPC-style aggregation",
}

// Models lists every networking model (Figure 15 order plus cpu-only),
// sourced from the models package so names cannot drift from what
// gravel.Config.Model accepts.
func Models() []ModelInfo {
	names := append(models.Names(), "cpu-only")
	out := make([]ModelInfo, len(names))
	for i, n := range names {
		out[i] = ModelInfo{Name: n, Desc: modelDesc[n]}
	}
	return out
}

// AppInfo is the -list view of an App.
type AppInfo struct {
	Name  string `json:"name"`
	Desc  string `json:"desc"`
	Bench string `json:"bench,omitempty"`
}

// ListDoc is the machine-readable -list document.
type ListDoc struct {
	Apps       []AppInfo   `json:"apps"`
	Models     []ModelInfo `json:"models"`
	Transports []string    `json:"transports"`
}

// List builds the registry listing. Transports reflect what is
// registered in the running binary.
func List() ListDoc {
	doc := ListDoc{Models: Models(), Transports: fabric.Names()}
	sort.Strings(doc.Transports)
	for _, a := range registry {
		doc.Apps = append(doc.Apps, AppInfo{Name: a.Name, Desc: a.Desc, Bench: a.Bench})
	}
	return doc
}

// WriteList renders the listing as aligned text.
func WriteList(w io.Writer) {
	doc := List()
	fmt.Fprintln(w, "apps:")
	for _, a := range doc.Apps {
		tag := ""
		if a.Bench != "" {
			tag = "  [Table 4: " + a.Bench + "]"
		}
		fmt.Fprintf(w, "  %-12s %s%s\n", a.Name, a.Desc, tag)
	}
	fmt.Fprintln(w, "models:")
	for _, m := range doc.Models {
		fmt.Fprintf(w, "  %-16s %s\n", m.Name, m.Desc)
	}
	fmt.Fprintf(w, "transports: %s\n", strings.Join(doc.Transports, ", "))
}

// WriteListJSON renders the listing as indented JSON.
func WriteListJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(List())
}

// PrintList implements the binaries' -list flag: aligned text on stdout
// when jsonPath is empty, JSON to stdout when jsonPath is "-", JSON to
// the named file otherwise.
func PrintList(jsonPath string) error {
	switch jsonPath {
	case "":
		WriteList(os.Stdout)
		return nil
	case "-":
		return WriteListJSON(os.Stdout)
	default:
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		if err := WriteListJSON(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
}
