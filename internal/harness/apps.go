package harness

import (
	"fmt"
	"hash/fnv"
	"sync"

	"gravel/internal/apps/bfs"
	"gravel/internal/apps/color"
	"gravel/internal/apps/gups"
	"gravel/internal/apps/histogram"
	"gravel/internal/apps/kmeans"
	"gravel/internal/apps/mer"
	"gravel/internal/apps/pagerank"
	"gravel/internal/apps/sssp"
	"gravel/internal/graph"
	"gravel/internal/rt"
)

// Graph-input cache: the Table 4 graphs are reused across node counts,
// models, and repetitions, so each (family, size) pair is built once per
// process. Weights are materialized up front so cached graphs are
// identical no matter which app touches them first.
var (
	graphMu    sync.Mutex
	graphCache = map[string]*graph.Graph{}
)

func cachedGraph(key string, build func() *graph.Graph) *graph.Graph {
	graphMu.Lock()
	defer graphMu.Unlock()
	if g, ok := graphCache[key]; ok {
		return g
	}
	g := build()
	g.EnsureWeights()
	graphCache[key] = g
	return g
}

// graphSize scales a graph's default vertex count with a floor of 256
// (the historical bench floor; gravel-apps used 64, and the registry
// unifies on the larger one so tiny -scale values still produce
// connected inputs).
func graphSize(base int, scale float64) int {
	n := int(float64(base) * scale)
	if n < 256 {
		n = 256
	}
	return n
}

// BubblesInput is the hugebubbles-00020 stand-in (PR-1, SSSP-1, color-1).
func BubblesInput(scale float64) *graph.Graph {
	n := graphSize(42000, scale)
	return cachedGraph(fmt.Sprintf("bubbles:%d", n), func() *graph.Graph { return graph.Bubbles(n, 1) })
}

// CageInput is the cage15 stand-in (PR-2, SSSP-2, color-2).
func CageInput(scale float64) *graph.Graph {
	n := graphSize(40000, scale)
	return cachedGraph(fmt.Sprintf("cage:%d", n), func() *graph.Graph { return graph.Cage(n, 1) })
}

// randomInput is the legacy gravel-node pagerank graph: uniform random
// with out-degree 8.
func randomInput(p Params) *graph.Graph {
	verts := p.Verts
	if verts <= 0 {
		verts = 2048
	}
	g := graph.Random(verts, 8, int64(p.seedOr(42)))
	g.EnsureWeights()
	return g
}

func (p Params) gupsConfig(nodes int) gups.Config {
	table := p.Table
	if table <= 0 {
		table = p.s(1 << 20)
	}
	updates := p.Updates
	if updates <= 0 {
		updates = p.s(1_440_000) / nodes
	}
	steps := p.Steps
	if steps <= 0 {
		steps = 1
	}
	return gups.Config{TableSize: table, UpdatesPerNode: updates, Seed: p.seedOr(13), Steps: steps}
}

func (p Params) gupsModConfig() gups.ModConfig {
	table := p.Table
	if table <= 0 {
		table = p.s(1 << 18)
	}
	wis := p.Updates
	if wis <= 0 {
		wis = p.s(1 << 19)
	}
	return gups.ModConfig{TableSize: table, WIsPerNode: wis, Seed: p.seedOr(1)}
}

func (p Params) kmeansConfig(nodes int) kmeans.Config {
	return kmeans.Config{
		PointsPerNode: p.s(160_000) / nodes,
		K:             8,
		Dims:          2,
		Iters:         p.itersOr(8),
		Seed:          p.seedOr(3),
	}
}

func (p Params) merConfig(nodes int, errors bool) mer.Config {
	cfg := mer.Config{
		GenomeLen:    p.s(100_000),
		ReadsPerNode: p.s(16_000) / nodes,
		ReadLen:      80,
		K:            19,
		Seed:         p.seedOr(9),
	}
	if errors {
		cfg.ErrorPerMille = 3
	}
	return cfg
}

func (p Params) histogramConfig(nodes int) histogram.Config {
	return histogram.Config{
		SamplesPerNode: p.s(200_000) / nodes,
		Buckets:        p.s(1 << 16),
		Seed:           p.seedOr(11),
	}
}

// resumeShards unwraps a CkptRun's restore payloads (nil on cold start).
func resumeShards(ck CkptRun) [][]byte {
	if ck.Resume == nil {
		return nil
	}
	return ck.Resume.Shards
}

// centroidCheck hashes a k-means centroid vector; in shard mode only
// node 0 contributes it so the shard Checks still sum to the full-run
// value.
func centroidCheck(cent []uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, c := range cent {
		for i := 0; i < 8; i++ {
			buf[i] = byte(c >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// mer2Check packs the three summable phase-2 statistics into one
// additive checksum; each field sum must stay below 2^21, comfortably
// true at smoke and bench scales.
func mer2Check(r mer.Phase2Result) uint64 {
	return uint64(r.Contigs)<<42 + uint64(r.TotalLen)<<21 + uint64(r.UU)
}

func init() {
	register(&App{
		Name:  "gups",
		Desc:  "random atomic increments over a distributed table (§3)",
		Bench: "GUPS",
		Run: func(sys rt.System, p Params) Result {
			cfg := p.gupsConfig(sys.Nodes())
			r := gups.Run(sys, cfg)
			res := Result{
				Summary: fmt.Sprintf("updates=%d sum=%d virtual GUPS=%.4f", r.Updates, r.Sum, r.GUPS),
				Ns:      r.Ns,
				Check:   r.Sum,
			}
			if r.Sum != uint64(r.Updates) {
				res.Err = fmt.Errorf("gups: sum %d != updates %d", r.Sum, r.Updates)
			}
			return res
		},
		Shard: func(sys rt.System, node int, p Params, _ rt.Collectives) Result {
			r := gups.RunOn(sys, p.gupsConfig(sys.Nodes()), node)
			return Result{
				Summary: fmt.Sprintf("shard updates=%d localSum=%d", r.Updates, r.Sum),
				Ns:      r.Ns,
				Check:   r.Sum,
			}
		},
		Elastic: func(sys rt.System, node int, p Params, _ rt.Collectives, ck CkptRun) Result {
			r, err := gups.RunElastic(sys, p.gupsConfig(sys.Nodes()), node, gups.ElasticOpts{
				Resume: resumeShards(ck),
				Every:  ck.Every,
				Save:   ck.Save,
			})
			if err != nil {
				return Result{Summary: "elastic shard failed", Err: err}
			}
			return Result{
				Summary: fmt.Sprintf("shard updates=%d localSum=%d", r.Updates, r.Sum),
				Ns:      r.Ns,
				Check:   r.Sum,
			}
		},
		VerifyTotal: func(total uint64, p Params, nodes int) error {
			cfg := p.gupsConfig(nodes)
			want := uint64(cfg.UpdatesPerNode/cfg.Steps) * uint64(cfg.Steps) * uint64(nodes)
			if total != want {
				return fmt.Errorf("gups: reduced sum %d != expected updates %d", total, want)
			}
			return nil
		},
	})

	register(&App{
		Name: "gups-mod",
		Desc: "GUPS with 95% idle work-items: diverged WG offload (§8.2)",
		Run: func(sys rt.System, p Params) Result {
			r := gups.RunMod(sys, p.gupsModConfig())
			res := Result{
				Summary: fmt.Sprintf("updates=%d sum=%d", r.Updates, r.Sum),
				Ns:      r.Ns,
				Check:   r.Sum,
			}
			if r.Sum != uint64(r.Updates) {
				res.Err = fmt.Errorf("gups-mod: sum %d != updates %d", r.Sum, r.Updates)
			}
			return res
		},
		Shard: func(sys rt.System, node int, p Params, _ rt.Collectives) Result {
			r := gups.RunModShard(sys, p.gupsModConfig(), node)
			return Result{
				Summary: fmt.Sprintf("shard localSum=%d (global expected %d)", r.Sum, r.Updates),
				Ns:      r.Ns,
				Check:   r.Sum,
			}
		},
		VerifyTotal: func(total uint64, p Params, nodes int) error {
			cfg := p.gupsModConfig()
			var want uint64
			for i := 0; i < nodes; i++ {
				for w := 0; w < cfg.WIsPerNode; w++ {
					h := graph.Hash64(cfg.Seed ^ uint64(i)<<40 ^ uint64(w))
					if h%33 == 0 {
						want += 1 + (h>>8)%8
					}
				}
			}
			if total != want {
				return fmt.Errorf("gups-mod: reduced sum %d != expected updates %d", total, want)
			}
			return nil
		},
	})

	register(&App{
		Name: "pagerank",
		Desc: "push-style PageRank over a uniform random graph (-verts/-iters)",
		Run: func(sys rt.System, p Params) Result {
			g := randomInput(p)
			r := pagerank.Run(sys, pagerank.Config{G: g, Iters: p.itersOr(3)})
			return Result{
				Summary: fmt.Sprintf("%v rankSum=%.1f checksum=%016x", g, r.RankSum, r.Checksum),
				Ns:      r.Ns,
				Check:   r.FixedSum,
			}
		},
		Shard: func(sys rt.System, node int, p Params, _ rt.Collectives) Result {
			g := randomInput(p)
			r := pagerank.RunOn(sys, pagerank.Config{G: g, Iters: p.itersOr(3)}, node)
			return Result{
				Summary: fmt.Sprintf("%v shard rankSum=%.1f checksum=%016x", g, r.RankSum, r.Checksum),
				Ns:      r.Ns,
				Check:   r.FixedSum,
			}
		},
		Elastic: func(sys rt.System, node int, p Params, _ rt.Collectives, ck CkptRun) Result {
			g := randomInput(p)
			r, err := pagerank.RunElastic(sys, pagerank.Config{G: g, Iters: p.itersOr(3)}, node, pagerank.ElasticOpts{
				Resume: resumeShards(ck),
				Every:  ck.Every,
				Save:   ck.Save,
			})
			if err != nil {
				return Result{Summary: "elastic shard failed", Err: err}
			}
			return Result{
				Summary: fmt.Sprintf("%v shard rankSum=%.1f checksum=%016x", g, r.RankSum, r.Checksum),
				Ns:      r.Ns,
				Check:   r.FixedSum,
			}
		},
		// Rank payloads carry global vertex ranges and per-shard work
		// derives from global vertex IDs, so a checkpoint saved by N
		// workers restores under any node count.
		Reshardable: true,
	})

	registerGraphApp("pagerank-1", "PR-1", "push-style PageRank, hugebubbles stand-in (Table 4)", BubblesInput, pagerankRuns())
	registerGraphApp("pagerank-2", "PR-2", "push-style PageRank, cage15 stand-in (Table 4)", CageInput, pagerankRuns())
	registerGraphApp("sssp-1", "SSSP-1", "level-synchronous Bellman-Ford, hugebubbles stand-in (Table 4)", BubblesInput, ssspRuns())
	registerGraphApp("sssp-2", "SSSP-2", "level-synchronous Bellman-Ford, cage15 stand-in (Table 4)", CageInput, ssspRuns())
	registerGraphApp("color-1", "color-1", "Jones-Plassmann coloring, hugebubbles stand-in (Table 4)", BubblesInput, colorRuns())
	registerGraphApp("color-2", "color-2", "Jones-Plassmann coloring, cage15 stand-in (Table 4)", CageInput, colorRuns())

	register(&App{
		Name:  "kmeans",
		Desc:  "fixed-point Lloyd iterations, atomic accumulators (§6)",
		Bench: "kmeans",
		Run: func(sys rt.System, p Params) Result {
			r := kmeans.Run(sys, p.kmeansConfig(sys.Nodes()))
			return Result{
				Summary: fmt.Sprintf("clusters=%d iters=%d counts=%v", len(r.Counts), r.Iters, r.Counts),
				Ns:      r.Ns,
				Check:   centroidCheck(r.Centroids),
			}
		},
		Shard: func(sys rt.System, node int, p Params, coll rt.Collectives) Result {
			r := kmeans.RunShard(sys, p.kmeansConfig(sys.Nodes()), node, coll)
			check := uint64(0)
			if node == 0 {
				check = centroidCheck(r.Centroids)
			}
			return Result{
				Summary: fmt.Sprintf("clusters=%d iters=%d counts=%v", len(r.Counts), r.Iters, r.Counts),
				Ns:      r.Ns,
				Check:   check,
			}
		},
		Elastic: func(sys rt.System, node int, p Params, coll rt.Collectives, ck CkptRun) Result {
			r, err := kmeans.RunElastic(sys, p.kmeansConfig(sys.Nodes()), node, coll, kmeans.ElasticOpts{
				Resume: resumeShards(ck),
				Every:  ck.Every,
				Save:   ck.Save,
			})
			if err != nil {
				return Result{Summary: "elastic shard failed", Err: err}
			}
			check := uint64(0)
			if node == 0 {
				check = centroidCheck(r.Centroids)
			}
			return Result{
				Summary: fmt.Sprintf("clusters=%d iters=%d counts=%v", len(r.Counts), r.Iters, r.Counts),
				Ns:      r.Ns,
				Check:   check,
			}
		},
	})

	register(&App{
		Name:  "mer",
		Desc:  "Meraculous phase 1: distributed k-mer table build (§6)",
		Bench: "mer",
		Run: func(sys rt.System, p Params) Result {
			r := mer.Run(sys, p.merConfig(sys.Nodes(), false))
			res := Result{
				Summary: fmt.Sprintf("kmers inserted=%d distinct=%d (expected %d)", r.Inserted, r.Distinct, r.Expected),
				Ns:      r.Ns,
				Check:   uint64(r.Inserted),
			}
			if r.Inserted != r.Expected {
				res.Err = fmt.Errorf("mer: inserted %d != expected %d", r.Inserted, r.Expected)
			}
			return res
		},
		Shard: func(sys rt.System, node int, p Params, _ rt.Collectives) Result {
			r := mer.RunShard(sys, p.merConfig(sys.Nodes(), false), node)
			return Result{
				Summary: fmt.Sprintf("shard kmers inserted=%d distinct=%d (global expected %d)", r.Inserted, r.Distinct, r.Expected),
				Ns:      r.Ns,
				Check:   uint64(r.Inserted),
			}
		},
		VerifyTotal: func(total uint64, p Params, nodes int) error {
			cfg := p.merConfig(nodes, false)
			want := uint64(nodes) * uint64(cfg.ReadsPerNode) * uint64(cfg.ReadLen-cfg.K+1)
			if total != want {
				return fmt.Errorf("mer: reduced insert count %d != expected k-mers %d", total, want)
			}
			return nil
		},
	})

	register(&App{
		Name: "mer-full",
		Desc: "Meraculous phases 1+2: table build then AM-driven contig walk",
		Run: func(sys rt.System, p Params) Result {
			r1, r2 := mer.RunFull(sys, p.merConfig(sys.Nodes(), true))
			res := Result{
				Summary: fmt.Sprintf("phase1: %d kmers (%d distinct); phase2: %d contigs, total len %d, max %d, UU %d",
					r1.Inserted, r1.Distinct, r2.Contigs, r2.TotalLen, r2.MaxLen, r2.UU),
				Ns:    r1.Ns + r2.Ns,
				Check: mer2Check(r2),
			}
			if r1.Inserted != r1.Expected {
				res.Err = fmt.Errorf("mer-full: inserted %d != expected %d", r1.Inserted, r1.Expected)
			}
			return res
		},
		Shard: func(sys rt.System, node int, p Params, _ rt.Collectives) Result {
			r1, r2 := mer.RunFullShard(sys, p.merConfig(sys.Nodes(), true), node)
			return Result{
				Summary: fmt.Sprintf("shard phase1: %d kmers; phase2: %d contigs, total len %d, UU %d",
					r1.Inserted, r2.Contigs, r2.TotalLen, r2.UU),
				Ns:    r1.Ns + r2.Ns,
				Check: mer2Check(r2),
			}
		},
	})

	// The two PGAS-verb apps register after the pre-existing twelve so
	// registration order — and with it every pinned registry listing and
	// checksum — is unchanged for the old set.
	register(&App{
		Name: "bfs-dir",
		Desc: "direction-optimizing BFS: dense rounds broadcast the frontier with put_signal, scanners wait_until",
		Run: func(sys rt.System, p Params) Result {
			g := randomInput(p)
			return bfsResult(bfs.Run(sys, bfs.Config{G: g}), g)
		},
		Shard: func(sys rt.System, node int, p Params, coll rt.Collectives) Result {
			g := randomInput(p)
			return bfsResult(bfs.RunShard(sys, bfs.Config{G: g}, node, coll), g)
		},
		Elastic: func(sys rt.System, node int, p Params, coll rt.Collectives, ck CkptRun) Result {
			g := randomInput(p)
			r, err := bfs.RunElastic(sys, bfs.Config{G: g}, node, coll, bfs.ElasticOpts{
				Resume: resumeShards(ck),
				Every:  ck.Every,
				Save:   ck.Save,
			})
			if err != nil {
				return Result{Summary: "elastic shard failed", Err: err}
			}
			return bfsResult(r, g)
		},
		VerifyTotal: func(total uint64, p Params, nodes int) error {
			want := bfs.ReferenceSum(randomInput(p), 0)
			if total != want {
				return fmt.Errorf("bfs-dir: reduced level sum %d != reference %d", total, want)
			}
			return nil
		},
	})

	register(&App{
		Name: "histogram",
		Desc: "distributed histogram summarized by device collectives and host team all-reduces",
		Run: func(sys rt.System, p Params) Result {
			r := histogram.Run(sys, p.histogramConfig(sys.Nodes()))
			return Result{
				Summary: fmt.Sprintf("samples=%d bucketMin=%d bucketMax=%d", r.Samples, r.MinBucket, r.MaxBucket),
				Ns:      r.Ns,
				Check:   r.Check,
				Err:     r.Err,
			}
		},
		Shard: func(sys rt.System, node int, p Params, coll rt.Collectives) Result {
			r := histogram.RunShard(sys, p.histogramConfig(sys.Nodes()), node, coll)
			return Result{
				Summary: fmt.Sprintf("shard samples=%d bucketMin=%d bucketMax=%d", r.Samples, r.MinBucket, r.MaxBucket),
				Ns:      r.Ns,
				Check:   r.Check,
				Err:     r.Err,
			}
		},
		Elastic: func(sys rt.System, node int, p Params, coll rt.Collectives, ck CkptRun) Result {
			r, err := histogram.RunElastic(sys, p.histogramConfig(sys.Nodes()), node, coll, histogram.ElasticOpts{
				Resume: resumeShards(ck),
				Every:  ck.Every,
				Save:   ck.Save,
			})
			if err != nil {
				return Result{Summary: "elastic shard failed", Err: err}
			}
			return Result{
				Summary: fmt.Sprintf("shard samples=%d bucketMin=%d bucketMax=%d", r.Samples, r.MinBucket, r.MaxBucket),
				Ns:      r.Ns,
				Check:   r.Check,
				Err:     r.Err,
			}
		},
		VerifyTotal: func(total uint64, p Params, nodes int) error {
			want := histogram.ExpectedCheck(p.histogramConfig(nodes), nodes)
			if total != want {
				return fmt.Errorf("histogram: reduced check %d != reference %d", total, want)
			}
			return nil
		},
	})
}

// bfsResult shapes a bfs.Result for the registry; LevelSum is the
// additive check (shards sum to the full-run value).
func bfsResult(r bfs.Result, g *graph.Graph) Result {
	return Result{
		Summary: fmt.Sprintf("%v reached=%d levels=%d (bottom-up %d) levelSum=%d", g, r.Reached, r.Levels, r.BottomUp, r.LevelSum),
		Ns:      r.Ns,
		Check:   r.LevelSum,
	}
}

// graphRuns bundles a graph app's full and shard entry points so the
// six Table 4 graph workloads share one registration path.
type graphRuns struct {
	run   func(sys rt.System, g *graph.Graph, p Params) Result
	shard func(sys rt.System, g *graph.Graph, node int, p Params, coll rt.Collectives) Result
}

func registerGraphApp(name, bench, desc string, input func(scale float64) *graph.Graph, runs graphRuns) {
	register(&App{
		Name:  name,
		Desc:  desc,
		Bench: bench,
		Run: func(sys rt.System, p Params) Result {
			return runs.run(sys, input(p.scale()), p)
		},
		Shard: func(sys rt.System, node int, p Params, coll rt.Collectives) Result {
			return runs.shard(sys, input(p.scale()), node, p, coll)
		},
	})
}

func pagerankRuns() graphRuns {
	return graphRuns{
		run: func(sys rt.System, g *graph.Graph, p Params) Result {
			r := pagerank.Run(sys, pagerank.Config{G: g, Iters: p.itersOr(10)})
			return Result{
				Summary: fmt.Sprintf("%v rankSum=%.1f checksum=%016x", g, r.RankSum, r.Checksum),
				Ns:      r.Ns,
				Check:   r.FixedSum,
			}
		},
		shard: func(sys rt.System, g *graph.Graph, node int, p Params, _ rt.Collectives) Result {
			r := pagerank.RunOn(sys, pagerank.Config{G: g, Iters: p.itersOr(10)}, node)
			return Result{
				Summary: fmt.Sprintf("%v shard rankSum=%.1f checksum=%016x", g, r.RankSum, r.Checksum),
				Ns:      r.Ns,
				Check:   r.FixedSum,
			}
		},
	}
}

func ssspRuns() graphRuns {
	return graphRuns{
		run: func(sys rt.System, g *graph.Graph, p Params) Result {
			r := sssp.Run(sys, sssp.Config{G: g, Source: 0})
			return Result{
				Summary: fmt.Sprintf("%v reached=%d supersteps=%d distSum=%d", g, r.Reached, r.Supersteps, r.DistSum),
				Ns:      r.Ns,
				Check:   r.DistSum,
			}
		},
		shard: func(sys rt.System, g *graph.Graph, node int, p Params, coll rt.Collectives) Result {
			r := sssp.RunShard(sys, sssp.Config{G: g, Source: 0}, node, coll)
			return Result{
				Summary: fmt.Sprintf("%v shard reached=%d supersteps=%d distSum=%d", g, r.Reached, r.Supersteps, r.DistSum),
				Ns:      r.Ns,
				Check:   r.DistSum,
			}
		},
	}
}

func colorRuns() graphRuns {
	return graphRuns{
		run: func(sys rt.System, g *graph.Graph, p Params) Result {
			r := color.Run(sys, color.Config{G: g, Seed: p.seedOr(7)})
			res := Result{
				Summary: fmt.Sprintf("%v colors=%d rounds=%d (validated)", g, r.Colors, r.Rounds),
				Ns:      r.Ns,
				Check:   r.ColorSum,
			}
			if err := color.Validate(g, r.ColorAt); err != nil {
				res.Summary = fmt.Sprintf("INVALID COLORING: %v", err)
				res.Err = err
			}
			return res
		},
		shard: func(sys rt.System, g *graph.Graph, node int, p Params, coll rt.Collectives) Result {
			r := color.RunShard(sys, color.Config{G: g, Seed: p.seedOr(7)}, node, coll)
			return Result{
				Summary: fmt.Sprintf("%v shard colors=%d rounds=%d colorSum=%d", g, r.Colors, r.Rounds, r.ColorSum),
				Ns:      r.Ns,
				Check:   r.ColorSum,
			}
		},
	}
}
