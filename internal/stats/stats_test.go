package stats

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Fatalf("Load = %d", c.Load())
	}
	c.Reset()
	if c.Load() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Load() != 8000 {
		t.Fatalf("Load = %d", c.Load())
	}
}

func TestSizeHist(t *testing.T) {
	var h SizeHist
	for _, v := range []int64{1, 2, 3, 64, 65536} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Sum() != 65606 {
		t.Fatalf("Sum = %d", h.Sum())
	}
	if got := h.Mean(); math.Abs(got-65606.0/5) > 1e-9 {
		t.Fatalf("Mean = %v", got)
	}
	b := h.Buckets()
	if len(b) == 0 || b[0].Lo != 1 {
		t.Fatalf("Buckets = %v", b)
	}
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestSizeHistNegativeClamped(t *testing.T) {
	var h SizeHist
	h.Observe(-5)
	if h.Sum() != 0 || h.Count() != 1 {
		t.Fatalf("negative observation mishandled: sum=%d count=%d", h.Sum(), h.Count())
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Fatalf("GeoMean(2,8) = %v", got)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("GeoMean(nil) != 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("GeoMean of non-positive did not panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

// TestGeoMeanProperty: geomean lies between min and max.
func TestGeoMeanProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), 0.0
		for i, r := range raw {
			xs[i] = float64(r) + 1
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		g := GeoMean(xs)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMedian(t *testing.T) {
	if Median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median")
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Fatal("even median")
	}
	if Median(nil) != 0 {
		t.Fatal("empty median")
	}
}

func TestHumanBytes(t *testing.T) {
	for in, want := range map[int64]string{
		8:        "8 B",
		64 << 10: "64 kB",
		1 << 20:  "1 MB",
	} {
		if got := HumanBytes(in); got != want {
			t.Errorf("HumanBytes(%d) = %q, want %q", in, got, want)
		}
	}
}
