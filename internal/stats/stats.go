// Package stats provides the counters, histograms and small numeric
// helpers used by the experiment harness (Table 5, Figures 12-15).
package stats

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Counter is a concurrent monotonically increasing counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.v.Store(0) }

// SizeHist is a concurrent histogram of packet sizes bucketed by power of
// two, plus exact sums for computing means.
type SizeHist struct {
	buckets [32]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one value.
func (h *SizeHist) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	b := 0
	for x := v; x > 1 && b < len(h.buckets)-1; x >>= 1 {
		b++
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *SizeHist) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *SizeHist) Sum() int64 { return h.sum.Load() }

// Mean returns the average observation, or 0 with no observations.
func (h *SizeHist) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Buckets returns the non-empty (lowerBound, count) pairs in ascending
// order.
func (h *SizeHist) Buckets() []BucketCount {
	var out []BucketCount
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			out = append(out, BucketCount{Lo: 1 << i, N: n})
		}
	}
	return out
}

// BucketCount is one histogram bucket.
type BucketCount struct {
	Lo int64
	N  int64
}

// Reset zeroes the histogram.
func (h *SizeHist) Reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
}

// PerDest tracks wire packet and byte counts by destination node. All
// methods are safe for concurrent use.
type PerDest struct {
	pkts  []atomic.Int64
	bytes []atomic.Int64
}

// NewPerDest creates a per-destination tracker for n nodes.
func NewPerDest(n int) *PerDest {
	return &PerDest{pkts: make([]atomic.Int64, n), bytes: make([]atomic.Int64, n)}
}

// Len returns the number of destinations tracked.
func (d *PerDest) Len() int { return len(d.pkts) }

// Observe records one packet of the given size bound for dest.
func (d *PerDest) Observe(dest int, bytes int64) {
	d.pkts[dest].Add(1)
	d.bytes[dest].Add(bytes)
}

// Packets returns the packet count for dest.
func (d *PerDest) Packets(dest int) int64 { return d.pkts[dest].Load() }

// Bytes returns the byte count for dest.
func (d *PerDest) Bytes(dest int) int64 { return d.bytes[dest].Load() }

// Totals returns the packet and byte counts summed over destinations.
func (d *PerDest) Totals() (pkts, bytes int64) {
	for i := range d.pkts {
		pkts += d.pkts[i].Load()
		bytes += d.bytes[i].Load()
	}
	return pkts, bytes
}

// GeoMean returns the geometric mean of xs. It panics if any value is
// non-positive, matching how the paper's geo-mean bars are computed.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: GeoMean of non-positive value %v", x))
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Median returns the median of xs (xs is not modified).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// HumanBytes formats a byte count like "64 kB".
func HumanBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.4g MB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.4g kB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}
