package rt

// StatsVersion is the version of the Stats snapshot schema. Consumers
// that persist or diff snapshots should check it; it bumps when a
// field changes meaning, never for additions.
const StatsVersion = 1

// Stats is a versioned snapshot of a system's communication behaviour,
// organized by subsystem: the producer/consumer queue, the aggregator,
// the transport, and the fault injector. It replaces the flat NetStats
// grab-bag; NetStats remains as a thin adapter (see Stats.NetStats).
//
// Cumulative totals and the per-step deltas in Steps are drawn from
// the same counters at the same phase boundaries, so summing any
// StepStats field over Steps reproduces the corresponding cumulative
// total for runs whose traffic happens inside steps (all of them:
// every message is initiated by a kernel or an AM handler running
// within a Step).
type Stats struct {
	// Version is StatsVersion at snapshot time.
	Version int
	// Model is the networking model ("gravel", "coprocessor", ...).
	Model string
	// Nodes is the cluster size.
	Nodes int
	// VirtualNs is the total virtual time across all steps.
	VirtualNs float64

	Queue     QueueStats
	Agg       AggStats
	Resolver  ResolverStats
	Transport TransportStats
	Faults    FaultStats
	PGAS      PGASStats

	// Steps holds one delta record per recorded phase (kernel step),
	// in launch order.
	Steps []StepStats
}

// QueueStats describes the fine-grain access stream entering the
// producer/consumer queue.
type QueueStats struct {
	// LocalOps and RemoteOps count fine-grain data accesses by
	// destination locality (Table 5 remote-access frequency).
	LocalOps, RemoteOps int64
	// SlotsDrained counts consumed queue slots; MsgsDrained the
	// messages they carried.
	SlotsDrained, MsgsDrained int64
}

// RemoteFrac returns the fraction of accesses that were remote.
func (q QueueStats) RemoteFrac() float64 {
	t := q.LocalOps + q.RemoteOps
	if t == 0 {
		return 0
	}
	return float64(q.RemoteOps) / float64(t)
}

// AggStats describes the aggregator: the CPU threads repacking queue
// slots into per-node queues.
type AggStats struct {
	// Strategy names the send-path aggregation strategy in effect:
	// "ticket" (the paper's fixed-slot ticket-queue builders) or
	// "archive" (grape-style per-destination growable archives).
	Strategy string
	// BusyNs and IdleNs split the aggregator cores' virtual time into
	// useful work and polling (§8.1), summed across nodes and threads.
	BusyNs, IdleNs float64
	// BusyFrac is the capacity-weighted busy fraction: busy time over
	// the run's virtual time times the aggregate drain capacity
	// (nodes × Threads). With one drain thread per node it reduces to
	// the paper's §8.1 single-core metric.
	BusyFrac float64
	// Threads is the number of drain threads (shards) per node the
	// capacity weighting used.
	Threads int
	// FlushesFull counts per-node queues sent because they filled;
	// FlushesTimeout counts flushes forced by the end-of-step timeout
	// flush (§3.4: full queues go immediately, stragglers on timeout).
	FlushesFull, FlushesTimeout int64
}

// ResolverStats describes the receive side: the per-node resolvers
// that apply received messages as local memory operations. With one
// shard this is the paper's serial network thread; with more, each
// node's stream is split by destination address into Shards concurrent
// banks, and node-local packets bypass the inbox entirely.
type ResolverStats struct {
	// Shards is the per-node resolver bank count (1 = the paper's
	// serial network thread).
	Shards int
	// Packets and Msgs count packets (sub-packets, when sharded) and
	// messages applied by resolver banks; AMs the active messages among
	// them. Relayed gateway records count at the gateway they are
	// re-aggregated on, not here.
	Packets, Msgs, AMs int64
	// BypassPackets and BypassMsgs count node-local packets resolved
	// synchronously on the sending goroutine (the from == to fast
	// path), never entering an inbox.
	BypassPackets, BypassMsgs int64
	// PerBank breaks the resolver totals down by bank, summed across
	// nodes; len(PerBank) == Shards. Bypass work is not per-bank (one
	// packet may span banks).
	PerBank []BankCount
}

// BankCount is one resolver bank's applied totals.
type BankCount struct {
	Packets, Msgs, AMs int64
}

// PGASStats counts the symmetric-heap verb traffic: signalled puts and
// device-side waits. Both are zero for apps using only put/inc/AM.
type PGASStats struct {
	// Signals counts PUT_SIGNAL messages resolved, summing the resolver
	// banks and the node-local bypass path.
	Signals int64
	// Waits counts WaitUntil verb calls issued by work-groups.
	Waits int64
}

// TransportStats describes the wire.
type TransportStats struct {
	// WirePackets and WireBytes count aggregated per-node queues that
	// crossed the wire; AvgPacketBytes is the Table 5 "average message
	// size".
	WirePackets, WireBytes int64
	AvgPacketBytes         float64
	// SelfPackets counts node-local packets (atomics routed through
	// the local network thread, never reaching the wire).
	SelfPackets int64
	// PerDest, indexed by destination node, breaks the wire totals
	// down by destination. In a multi-process cluster each process
	// reports the traffic its hosted node originated.
	PerDest []DestCount
	// Reconnects counts transport connections re-established after a
	// drop; Retries counts failed dial attempts.
	Reconnects, Retries int64
	// Malformed counts received frames dropped as invalid;
	// CorruptFrames counts frames whose payload failed the CRC and
	// were recovered by retransmission.
	Malformed, CorruptFrames int64
}

// FaultStats summarizes injected faults (all zero without an injector).
type FaultStats struct {
	// Enabled reports whether a fault injector was active.
	Enabled bool
	// Seed names the injected schedule for replay.
	Seed uint64
	// Per-kind injected fault counts (see internal/transport/fault).
	Drop, Dup, Reorder, Corrupt, Delay, Stall, Sever, Blocked int64
}

// Total returns the total number of injected faults.
func (f FaultStats) Total() int64 {
	return f.Drop + f.Dup + f.Reorder + f.Corrupt + f.Delay + f.Stall + f.Sever + f.Blocked
}

// StepStats is the per-step delta of the cumulative counters: what one
// recorded phase contributed. Fields mirror their cumulative
// counterparts in Stats.
type StepStats struct {
	// Index is the step's position in launch order; Name its label.
	Index int
	Name  string
	// VirtualNs is the phase's cluster virtual time (max over nodes
	// plus barrier).
	VirtualNs float64
	// WallNs is the measured wall-clock duration of the step in this
	// process, 0 when not measured.
	WallNs int64

	LocalOps, RemoteOps       int64
	SlotsDrained, MsgsDrained int64
	WirePackets, WireBytes    int64
	SelfPackets               int64
	AggBusyNs, AggIdleNs      float64

	// ResolvedPackets/Msgs/AMs are the resolver-bank deltas this step;
	// BypassPackets/Msgs the node-local fast-path deltas. They mirror
	// the cumulative ResolverStats fields.
	ResolvedPackets, ResolvedMsgs, ResolvedAMs int64
	BypassPackets, BypassMsgs                  int64

	// Signals and Waits mirror the cumulative PGASStats fields.
	Signals, Waits int64
}

// NetStats converts the snapshot to the deprecated flat form. Values
// are copied bit-for-bit from the section fields they moved to, so
// code migrating from NetStats sees identical numbers either way.
func (s Stats) NetStats() NetStats {
	return NetStats{
		LocalOps:       s.Queue.LocalOps,
		RemoteOps:      s.Queue.RemoteOps,
		WirePackets:    s.Transport.WirePackets,
		WireBytes:      s.Transport.WireBytes,
		AvgPacketBytes: s.Transport.AvgPacketBytes,
		AggBusyFrac:    s.Agg.BusyFrac,
		PerDest:        s.Transport.PerDest,
		Reconnects:     s.Transport.Reconnects,
		Retries:        s.Transport.Retries,
		Malformed:      s.Transport.Malformed,
		CorruptFrames:  s.Transport.CorruptFrames,
	}
}
