package rt

import (
	"fmt"

	"gravel/internal/pgas"
)

// DeviceColl is a device-side (in-kernel) collective over a node team,
// built entirely from the PutSignal/WaitUntil verbs: every member puts
// its contribution into each member's symmetric slot with a signalled
// put, waits until its own arrival counter shows the whole team has
// delivered, and folds the slots locally. No host round trip — the
// collective completes inside the kernel, on the fabric.
//
// State is double-buffered by round parity: round r uses slot bank
// r%2, and the cumulative arrival counter for that parity must reach
// (r/2+1)*size before the fold. A member is safe to overwrite a parity
// bank because reaching round r+2 proves every member completed round
// r+1, which in turn proves every member has folded (read) the round-r
// bank.
//
// Discipline: exactly one work-group per member node may call into a
// DeviceColl per round, every member must make the same sequence of
// calls, and — as with all waits — signals a round depends on must not
// be produced by later work-groups of the same grid (launch the
// calling WG per node, e.g. a one-WG grid or WG 0 only).
type DeviceColl struct {
	team     Team
	vals     *pgas.Array // linear: 2*size slots; rec-double: 2*stages slots
	arrivals *pgas.Array // linear: 2 counters; rec-double: 2*stages counters
	size     int
	members  []int
	rounds   []int // per-node round counter (one calling WG per node)

	sched  DCSchedule
	stages int // log2(size) when sched is DCRecDouble

	scratch []*dcScratch // per-node lane buffers (one calling WG per node)
}

// DCSchedule selects the communication schedule a DeviceColl's
// all-reduce uses. Both schedules produce bit-identical results for the
// uint64 reduce ops (all commutative and associative); they differ only
// in message count and critical-path depth.
type DCSchedule int

const (
	// DCLinear is the all-to-all fan-out: every member signals every
	// member each round — O(size²) wire messages, one wait deep. The
	// default, and the only schedule for non-power-of-two teams.
	DCLinear DCSchedule = iota
	// DCRecDouble is recursive doubling: log2(size) exchange stages of
	// one signalled put each — O(size·log size) messages, log-depth.
	// Requires a power-of-two team size; NewDeviceCollSched falls back
	// to DCLinear otherwise.
	DCRecDouble
)

func (s DCSchedule) String() string {
	if s == DCRecDouble {
		return "recdouble"
	}
	return "linear"
}

// dcScratch is one node's lane-sized verb argument buffers, reused
// across rounds so steady-state collectives do not allocate.
type dcScratch struct {
	idx, v, sig, until []uint64
	mask               []bool
}

// NewDeviceColl allocates the collective's symmetric state on sp for a
// cluster of the given node count. Like every symmetric allocation it
// must happen in the same program order on every process of a
// distributed run (verify with VerifySymmetric). All team members —
// and only they — may call the collective's methods.
func NewDeviceColl(sp *pgas.Space, nodes int, team Team) *DeviceColl {
	return NewDeviceCollSched(sp, nodes, team, DCLinear)
}

// NewDeviceCollSched is NewDeviceColl with an explicit communication
// schedule. DCRecDouble needs a power-of-two team of at least two
// members; anything else silently gets DCLinear (same results, so the
// fallback only costs messages). Symmetric allocation sizes depend on
// the effective schedule, so — as always — every process of a
// distributed run must construct with the same arguments.
func NewDeviceCollSched(sp *pgas.Space, nodes int, team Team, sched DCSchedule) *DeviceColl {
	members := team.Members(nodes)
	size := len(members)
	if sched == DCRecDouble && (size < 2 || size&(size-1) != 0) {
		sched = DCLinear
	}
	dc := &DeviceColl{
		team:    team,
		size:    size,
		members: members,
		sched:   sched,
		rounds:  make([]int, nodes),
		scratch: make([]*dcScratch, nodes),
	}
	if sched == DCRecDouble {
		for 1<<dc.stages < size {
			dc.stages++
		}
		dc.vals = sp.SymAlloc(2 * dc.stages)
		dc.arrivals = sp.SymAlloc(2 * dc.stages)
	} else {
		dc.vals = sp.SymAlloc(2 * size)
		dc.arrivals = sp.SymAlloc(2)
	}
	return dc
}

// Team returns the node team the collective spans.
func (dc *DeviceColl) Team() Team { return dc.team }

// Schedule returns the effective communication schedule (after any
// non-power-of-two fallback).
func (dc *DeviceColl) Schedule() DCSchedule { return dc.sched }

func (dc *DeviceColl) scratchFor(node, wgSize int) *dcScratch {
	s := dc.scratch[node]
	if s == nil || len(s.mask) < wgSize {
		s = &dcScratch{
			idx:   make([]uint64, wgSize),
			v:     make([]uint64, wgSize),
			sig:   make([]uint64, wgSize),
			until: make([]uint64, wgSize),
			mask:  make([]bool, wgSize),
		}
		dc.scratch[node] = s
	}
	return s
}

// AllReduce folds every member's val under op and returns the result,
// entirely on the device. Lanes fan the signalled puts out across the
// team (chunked when the team outnumbers the work-group).
func (dc *DeviceColl) AllReduce(c Ctx, op ReduceOp, val uint64) uint64 {
	me := c.Node()
	if dc.team.Rank(me) < 0 {
		panic(&CollectiveError{Op: "device-allreduce",
			Detail: fmt.Sprintf("node %d is not a member of team %s", me, dc.team.Tag())})
	}
	if dc.sched == DCRecDouble {
		return dc.allReduceRecDouble(c, op, val)
	}
	g := c.Group()
	s := dc.scratchFor(me, g.Size)
	rank := dc.team.Rank(me)
	r := dc.rounds[me]
	dc.rounds[me] = r + 1
	q := r % 2

	// Signalled put of this member's contribution into every member's
	// parity-q slot for our rank; the signal increments the peer's
	// parity-q arrival counter, co-owned by SymAlloc construction.
	for base := 0; base < dc.size; base += g.Size {
		n := dc.size - base
		if n > g.Size {
			n = g.Size
		}
		for l := 0; l < g.Size; l++ {
			s.mask[l] = l < n
			if l >= n {
				continue
			}
			peer := dc.members[base+l]
			s.idx[l] = dc.vals.SymIndex(peer, q*dc.size+rank)
			s.v[l] = val
			s.sig[l] = dc.arrivals.SymIndex(peer, q)
		}
		c.PutSignal(dc.vals, s.idx, s.v, dc.arrivals, s.sig, s.mask)
	}

	// Wait until every member of every parity-q round so far — this one
	// included — has delivered: the counter is cumulative, so round r
	// needs (r/2+1)*size signals.
	for l := 0; l < g.Size; l++ {
		s.mask[l] = l == 0
	}
	s.sig[0] = dc.arrivals.SymIndex(me, q)
	s.until[0] = uint64(r/2+1) * uint64(dc.size)
	c.WaitUntil(dc.arrivals, s.sig, s.until, s.mask)

	// Fold the local parity-q bank in rank order (deterministic for
	// non-commutative floating folds layered above; moot for uint64).
	acc := op.Identity()
	for j := 0; j < dc.size; j++ {
		acc = op.Combine(acc, dc.vals.Load(dc.vals.SymIndex(me, q*dc.size+j)))
	}
	return acc
}

// allReduceRecDouble is the DCRecDouble schedule: log2(size) exchange
// stages, each a single signalled put to the rank differing in bit t
// followed by a wait on this member's own (parity, stage) counter. The
// counters are cumulative — each same-parity round adds exactly one
// signal per stage — so round r waits for r/2+1. Overwrite safety is
// transitive: the butterfly spans the whole team, so a partner cannot
// complete round r+1 (let alone write round r+2's value into my
// (parity, stage) slot) until every member — me included — has returned
// from round r and therefore folded that slot.
func (dc *DeviceColl) allReduceRecDouble(c Ctx, op ReduceOp, val uint64) uint64 {
	me := c.Node()
	g := c.Group()
	s := dc.scratchFor(me, g.Size)
	rank := dc.team.Rank(me)
	r := dc.rounds[me]
	dc.rounds[me] = r + 1
	q := r % 2
	need := uint64(r/2 + 1)

	for l := 0; l < g.Size; l++ {
		s.mask[l] = l == 0
	}
	acc := op.Combine(op.Identity(), val)
	for t := 0; t < dc.stages; t++ {
		peer := dc.members[rank^(1<<t)]
		slot := q*dc.stages + t

		s.idx[0] = dc.vals.SymIndex(peer, slot)
		s.v[0] = acc
		s.sig[0] = dc.arrivals.SymIndex(peer, slot)
		c.PutSignal(dc.vals, s.idx, s.v, dc.arrivals, s.sig, s.mask)

		s.sig[0] = dc.arrivals.SymIndex(me, slot)
		s.until[0] = need
		c.WaitUntil(dc.arrivals, s.sig, s.until, s.mask)

		acc = op.Combine(acc, dc.vals.Load(dc.vals.SymIndex(me, slot)))
	}
	return acc
}

// Broadcast returns root's val to every member (val is ignored on
// non-root members). root is a node ID and must be a member.
func (dc *DeviceColl) Broadcast(c Ctx, root int, val uint64) uint64 {
	if dc.team.Rank(root) < 0 {
		panic(&CollectiveError{Op: "device-broadcast",
			Detail: fmt.Sprintf("root %d is not a member of team %s", root, dc.team.Tag())})
	}
	if c.Node() != root {
		val = 0
	}
	return dc.AllReduce(c, OpSum, val)
}

// Barrier returns once every member has entered it (a sum of zeros).
func (dc *DeviceColl) Barrier(c Ctx) {
	dc.AllReduce(c, OpSum, 0)
}
