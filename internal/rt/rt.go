// Package rt defines the runtime interface every GPU networking model
// implements (Gravel in package core; the coprocessor, message-per-lane,
// coalesced-APIs and CPU-only baselines in package models).
//
// Applications are written once against this interface (the
// message-per-lane / Gravel style of Figure 4b) and can then be executed
// under any model — this is how the paper's Figure 15 style comparison
// is produced.
package rt

import (
	"gravel/internal/pgas"
	"gravel/internal/simt"
	"gravel/internal/timemodel"
)

// AMHandler is an active-message handler executed by the destination
// node's network thread (§6). Handlers run serialized per node and must
// be commutative. A handler may initiate follow-up messages with
// System.HostAM (request/reply protocols); cascades must be finite.
type AMHandler func(node int, a, b uint64)

// Ctx is the per-work-group view a kernel gets of the networking model.
// The slice arguments of Inc/Put/AM are indexed by lane; exactly the
// lanes with active[lane] participate (diverged WG-level semantics, §5).
type Ctx interface {
	// Node returns the node executing this work-group.
	Node() int
	// Nodes returns the cluster size.
	Nodes() int
	// Group returns the SIMT work-group for vector operations.
	Group() *simt.Group

	// Inc atomically adds delta[l] to arr[idx[l]] for each active lane.
	// Like all atomics it is routed through the owner's network thread
	// even when local (§6).
	Inc(arr *pgas.Array, idx, delta []uint64, active []bool)
	// Put stores val[l] to arr[idx[l]] for each active lane. Local PUTs
	// execute directly as GPU stores; remote PUTs travel the network.
	Put(arr *pgas.Array, idx, val []uint64, active []bool)
	// AM invokes handler h at dest[l] with arguments (a[l], b[l]) for
	// each active lane.
	AM(h uint8, dest []int, a, b []uint64, active []bool)
}

// Kernel is GPU code launched across a grid of work-items; it is invoked
// once per work-group.
type Kernel func(c Ctx)

// Collective is a cluster-wide sum reduction available to host code
// between steps: every participating process contributes val under the
// same key (keys must be issued in the same order everywhere — the
// deterministic app structure guarantees this) and receives the global
// sum. Shard-mode application entry points use it for termination
// detection and cross-shard accumulator exchange. In a single-process
// run there is nothing to reduce across, so a nil Collective means
// "identity": the local value already is the global value.
type Collective func(key string, val uint64) (uint64, error)

// Reduce applies the collective, treating nil as the identity
// reduction of a single-process run.
func (c Collective) Reduce(key string, val uint64) (uint64, error) {
	if c == nil {
		return val, nil
	}
	return c(key, val)
}

// NetStats summarizes a system's communication behaviour (Table 5).
//
// Deprecated: NetStats is the flat, pre-observability snapshot. Use
// Stats, which organizes the same counters into Queue/Agg/Transport/
// Faults sections and adds per-step deltas; Stats.NetStats converts
// back, matching these fields bit-for-bit.
type NetStats struct {
	// LocalOps and RemoteOps count fine-grain data accesses by
	// destination locality; RemoteFrac is their ratio.
	LocalOps, RemoteOps int64
	// WirePackets and WireBytes count aggregated per-node queues that
	// crossed the wire; AvgPacketBytes is the Table 5 "average message
	// size".
	WirePackets, WireBytes int64
	AvgPacketBytes         float64
	// AggBusyFrac is the fraction of aggregator CPU time spent doing
	// useful work (1 - poll fraction, §8.1).
	AggBusyFrac float64
	// PerDest, indexed by destination node, breaks the wire totals down
	// by destination. In a multi-process cluster each process reports
	// the traffic its hosted node originated.
	PerDest []DestCount
	// Reconnects counts transport connections re-established after a
	// drop; Retries counts failed dial attempts. Both are 0 for
	// in-process fabrics.
	Reconnects, Retries int64
	// Malformed counts received frames dropped as invalid;
	// CorruptFrames counts frames whose payload failed the CRC (wire
	// corruption) and were recovered by retransmission.
	Malformed, CorruptFrames int64
}

// DestCount is one destination's share of the wire traffic.
type DestCount struct {
	Packets, Bytes int64
}

// RemoteFrac returns the fraction of accesses that were remote.
func (s NetStats) RemoteFrac() float64 {
	t := s.LocalOps + s.RemoteOps
	if t == 0 {
		return 0
	}
	return float64(s.RemoteOps) / float64(t)
}

// System is one networking model instantiated over a simulated cluster.
type System interface {
	// Name identifies the model ("gravel", "coprocessor", ...).
	Name() string
	// Nodes returns the cluster size.
	Nodes() int
	// Space returns the cluster's global address space.
	Space() *pgas.Space
	// RegisterAM registers an active-message handler, returning its ID.
	RegisterAM(h AMHandler) uint8

	// Step launches kernel k with grid[i] work-items on node i and
	// returns after cluster-wide quiescence (every initiated message
	// applied). scratchPerWG is the kernel's scratchpad demand in bytes.
	Step(name string, grid []int, scratchPerWG int, k Kernel)

	// ChargeHost adds ns of non-overlappable host time to every node
	// (host-side serial sections between kernels).
	ChargeHost(ns float64)

	// HostAM initiates an active message from host context on node
	// from. Its primary use is inside AM handlers, building
	// request/reply protocols (e.g. remote hash-table lookups); the
	// message is applied before the enclosing Step returns.
	HostAM(from int, h uint8, dest int, a, b uint64)

	// VirtualTimeNs returns total virtual time elapsed across all steps.
	VirtualTimeNs() float64
	// Phases returns the per-step time breakdown.
	Phases() []timemodel.PhaseRecord
	// Stats returns the versioned statistics snapshot: cumulative
	// totals by subsystem plus per-step deltas.
	Stats() Stats
	// NetStats returns cumulative communication statistics.
	//
	// Deprecated: use Stats; this is Stats().NetStats().
	NetStats() NetStats

	// Close releases background goroutines. The system is unusable
	// afterwards.
	Close()
}
