// Package rt defines the runtime interface every GPU networking model
// implements (Gravel in package core; the coprocessor, message-per-lane,
// coalesced-APIs and CPU-only baselines in package models).
//
// Applications are written once against this interface (the
// message-per-lane / Gravel style of Figure 4b) and can then be executed
// under any model — this is how the paper's Figure 15 style comparison
// is produced.
package rt

import (
	"fmt"

	"gravel/internal/pgas"
	"gravel/internal/simt"
	"gravel/internal/timemodel"
)

// AMHandler is an active-message handler executed by the destination
// node's network thread (§6). Handlers run serialized per node and must
// be commutative. A handler may initiate follow-up messages with
// System.HostAM (request/reply protocols); cascades must be finite.
type AMHandler func(node int, a, b uint64)

// Ctx is the per-work-group view a kernel gets of the networking model.
//
// Every verb follows one lane-mask convention: slice arguments are
// indexed by lane, and exactly the lanes with active[lane] true
// participate (diverged WG-level semantics, §5). A nil active mask
// means "all lanes participate"; a non-nil mask must be exactly
// Group().Size entries long — implementations funnel violations through
// a single typed *core.MaskError panic rather than per-verb ad-hoc
// checks. Lane-indexed value slices (idx, val, delta, a, b, dest,
// sigIdx) need only cover the active lanes but are conventionally
// WG-sized.
type Ctx interface {
	// Node returns the node executing this work-group.
	Node() int
	// Nodes returns the cluster size.
	Nodes() int
	// Group returns the SIMT work-group for vector operations.
	Group() *simt.Group

	// Inc atomically adds delta[l] to arr[idx[l]] for each active lane.
	// Like all atomics it is routed through the owner's network thread
	// even when local (§6).
	Inc(arr *pgas.Array, idx, delta []uint64, active []bool)
	// Put stores val[l] to arr[idx[l]] for each active lane. Local PUTs
	// execute directly as GPU stores; remote PUTs travel the network.
	Put(arr *pgas.Array, idx, val []uint64, active []bool)
	// AM invokes handler h at dest[l] with arguments (a[l], b[l]) for
	// each active lane.
	AM(h uint8, dest []int, a, b []uint64, active []bool)

	// PutSignal stores val[l] to arr[idx[l]] and then atomically adds 1
	// to sig[sigIdx[l]], as one ordered wire command resolved at the
	// owner of arr[idx[l]] (NVSHMEM-style signalled put): any observer
	// that sees the signal increment also sees the data store. The
	// signal cell must be owned by the same node as the data cell
	// (co-locate them with pgas.Space.SymAlloc), and sigIdx must be
	// below wire.MaxSigIdx. PutSignal transmits eagerly — the staged
	// per-destination queue is flushed — so a remote waiter is never
	// left spinning on a signal parked in an aggregation buffer.
	PutSignal(arr *pgas.Array, idx, val []uint64, sig *pgas.Array, sigIdx []uint64, active []bool)
	// WaitUntil blocks the work-group until sig[sigIdx[l]] >= until[l]
	// for every active lane. Every addressed cell must be local to the
	// executing node (signals are delivered to the waiter's symmetric
	// cell; see PutSignal). The wait parks cooperatively: other
	// work-groups — including ones not yet scheduled — keep executing,
	// message delivery keeps progressing, and quiescence detection does
	// not observe a false idle, so a waiting WG cannot deadlock
	// termination detection. Signals a wait depends on must not be
	// issued by later work-groups of the same node's grid. The wait is
	// charged a fixed virtual-time cost per call (deterministic, unlike
	// wall-clock spin time).
	WaitUntil(sig *pgas.Array, sigIdx, until []uint64, active []bool)
}

// Kernel is GPU code launched across a grid of work-items; it is invoked
// once per work-group.
type Kernel func(c Ctx)

// Collective is a cluster-wide sum reduction available to host code
// between steps: every participating process contributes val under the
// same key and receives the global sum.
//
// Deprecated: Collective is the single-op precursor of the Collectives
// interface, which adds min/max reductions, broadcast, barrier and node
// teams. Use Collectives (and the AllReduce/Broadcast/Barrier package
// helpers, which treat a nil Collectives as the single-process
// identity); Collective.Collectives converts, bit-for-bit compatible
// for the world-team sum reductions this type could express.
type Collective func(key string, val uint64) (uint64, error)

// Reduce applies the collective, treating nil as the identity
// reduction of a single-process run.
//
// Deprecated: see Collective.
func (c Collective) Reduce(key string, val uint64) (uint64, error) {
	if c == nil {
		return val, nil
	}
	return c(key, val)
}

// Collectives converts the bare sum-reduce func into the Collectives
// interface: world-team sum reductions call the func with the same key
// and value (bit-for-bit the old wire exchange), Barrier and Broadcast
// use the same derived-key encodings as the transport implementation,
// and min/max or team-scoped operations — which a bare sum func cannot
// express — report a typed error. A nil Collective converts to a nil
// Collectives (the single-process identity).
//
// Deprecated: producers should hand out a real Collectives (e.g.
// transport.TCP.Collectives); this adapter exists so legacy holders of
// a Collective keep working during migration, mirroring the NetStats
// compatibility adapter.
func (c Collective) Collectives() Collectives {
	if c == nil {
		return nil
	}
	return legacyCollectives{c}
}

// legacyCollectives adapts a bare sum-reduce func; see
// Collective.Collectives.
type legacyCollectives struct {
	fn Collective
}

func (l legacyCollectives) AllReduce(key string, t Team, op ReduceOp, val uint64) (uint64, error) {
	if !t.World() {
		return 0, &CollectiveError{Op: "allreduce", Key: key, Detail: "team reductions need a full Collectives implementation"}
	}
	if op != OpSum {
		return 0, &CollectiveError{Op: "allreduce", Key: key, Detail: fmt.Sprintf("%v reduction needs a full Collectives implementation", op)}
	}
	return l.fn(key, val)
}

func (l legacyCollectives) Broadcast(key string, t Team, root int, val uint64) (uint64, error) {
	// A bare sum func is not node-bound, so it cannot tell whether the
	// caller is the root; broadcast needs a real implementation.
	return 0, &CollectiveError{Op: "broadcast", Key: key, Detail: "broadcast needs a full Collectives implementation"}
}

func (l legacyCollectives) Barrier(key string, t Team) error {
	if !t.World() {
		return &CollectiveError{Op: "barrier", Key: key, Detail: "team barriers need a full Collectives implementation"}
	}
	_, err := l.fn("barrier:"+key, 0)
	return err
}

// NetStats summarizes a system's communication behaviour (Table 5).
//
// Deprecated: NetStats is the flat, pre-observability snapshot. Use
// Stats, which organizes the same counters into Queue/Agg/Transport/
// Faults sections and adds per-step deltas; Stats.NetStats converts
// back, matching these fields bit-for-bit.
type NetStats struct {
	// LocalOps and RemoteOps count fine-grain data accesses by
	// destination locality; RemoteFrac is their ratio.
	LocalOps, RemoteOps int64
	// WirePackets and WireBytes count aggregated per-node queues that
	// crossed the wire; AvgPacketBytes is the Table 5 "average message
	// size".
	WirePackets, WireBytes int64
	AvgPacketBytes         float64
	// AggBusyFrac is the fraction of aggregator CPU time spent doing
	// useful work (1 - poll fraction, §8.1).
	AggBusyFrac float64
	// PerDest, indexed by destination node, breaks the wire totals down
	// by destination. In a multi-process cluster each process reports
	// the traffic its hosted node originated.
	PerDest []DestCount
	// Reconnects counts transport connections re-established after a
	// drop; Retries counts failed dial attempts. Both are 0 for
	// in-process fabrics.
	Reconnects, Retries int64
	// Malformed counts received frames dropped as invalid;
	// CorruptFrames counts frames whose payload failed the CRC (wire
	// corruption) and were recovered by retransmission.
	Malformed, CorruptFrames int64
}

// DestCount is one destination's share of the wire traffic.
type DestCount struct {
	Packets, Bytes int64
}

// RemoteFrac returns the fraction of accesses that were remote.
func (s NetStats) RemoteFrac() float64 {
	t := s.LocalOps + s.RemoteOps
	if t == 0 {
		return 0
	}
	return float64(s.RemoteOps) / float64(t)
}

// System is one networking model instantiated over a simulated cluster.
type System interface {
	// Name identifies the model ("gravel", "coprocessor", ...).
	Name() string
	// Nodes returns the cluster size.
	Nodes() int
	// Space returns the cluster's global address space.
	Space() *pgas.Space
	// RegisterAM registers an active-message handler, returning its ID.
	RegisterAM(h AMHandler) uint8

	// Step launches kernel k with grid[i] work-items on node i and
	// returns after cluster-wide quiescence (every initiated message
	// applied). scratchPerWG is the kernel's scratchpad demand in bytes.
	Step(name string, grid []int, scratchPerWG int, k Kernel)

	// ChargeHost adds ns of non-overlappable host time to every node
	// (host-side serial sections between kernels).
	ChargeHost(ns float64)

	// HostAM initiates an active message from host context on node
	// from. Its primary use is inside AM handlers, building
	// request/reply protocols (e.g. remote hash-table lookups); the
	// message is applied before the enclosing Step returns.
	HostAM(from int, h uint8, dest int, a, b uint64)

	// VirtualTimeNs returns total virtual time elapsed across all steps.
	VirtualTimeNs() float64
	// Phases returns the per-step time breakdown.
	Phases() []timemodel.PhaseRecord
	// Stats returns the versioned statistics snapshot: cumulative
	// totals by subsystem plus per-step deltas.
	Stats() Stats
	// NetStats returns cumulative communication statistics.
	//
	// Deprecated: use Stats; this is Stats().NetStats().
	NetStats() NetStats

	// Close releases background goroutines. The system is unusable
	// afterwards.
	Close()
}
