package rt

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"gravel/internal/pgas"
)

// ReduceOp selects the fold of an AllReduce.
type ReduceOp uint8

const (
	// OpSum adds contributions (the identity is 0).
	OpSum ReduceOp = iota
	// OpMin takes the minimum contribution (the identity is MaxUint64).
	OpMin
	// OpMax takes the maximum contribution (the identity is 0).
	OpMax
)

// String implements fmt.Stringer.
func (o ReduceOp) String() string {
	switch o {
	case OpSum:
		return "sum"
	case OpMin:
		return "min"
	case OpMax:
		return "max"
	default:
		return fmt.Sprintf("ReduceOp(%d)", uint8(o))
	}
}

// Identity returns the op's fold identity.
func (o ReduceOp) Identity() uint64 {
	if o == OpMin {
		return math.MaxUint64
	}
	return 0
}

// Combine folds two values under the op.
func (o ReduceOp) Combine(a, b uint64) uint64 {
	switch o {
	case OpMin:
		if b < a {
			return b
		}
		return a
	case OpMax:
		if b > a {
			return b
		}
		return a
	default:
		return a + b
	}
}

// Team names the subset of nodes participating in a collective. The
// zero Team is the world team: every node of the cluster. Non-world
// teams carry an explicit sorted member list; all members must issue
// the same collectives in the same order, and non-members must not
// participate at all.
type Team struct {
	members []int // nil = world
}

// WorldTeam is the all-nodes team (the zero value, named for clarity).
var WorldTeam = Team{}

// TeamOf builds a team from an explicit member list. Members are
// sorted and must be distinct and non-negative.
func TeamOf(members ...int) Team {
	if len(members) == 0 {
		panic(&CollectiveError{Op: "team", Detail: "empty member list"})
	}
	ms := append([]int(nil), members...)
	sort.Ints(ms)
	for i, m := range ms {
		if m < 0 {
			panic(&CollectiveError{Op: "team", Detail: fmt.Sprintf("negative member %d", m)})
		}
		if i > 0 && ms[i-1] == m {
			panic(&CollectiveError{Op: "team", Detail: fmt.Sprintf("duplicate member %d", m)})
		}
	}
	return Team{members: ms}
}

// World reports whether the team is the all-nodes team.
func (t Team) World() bool { return t.members == nil }

// Members returns the member list, materializing the world team over a
// cluster of the given size. The returned slice must not be mutated.
func (t Team) Members(nodes int) []int {
	if t.members != nil {
		return t.members
	}
	ms := make([]int, nodes)
	for i := range ms {
		ms[i] = i
	}
	return ms
}

// Size returns the member count (nodes for the world team).
func (t Team) Size(nodes int) int {
	if t.members == nil {
		return nodes
	}
	return len(t.members)
}

// Contains reports whether node is a member.
func (t Team) Contains(node int) bool {
	if t.members == nil {
		return true
	}
	i := sort.SearchInts(t.members, node)
	return i < len(t.members) && t.members[i] == node
}

// Rank returns node's index within the sorted member list, or -1.
func (t Team) Rank(node int) int {
	if t.members == nil {
		return node
	}
	i := sort.SearchInts(t.members, node)
	if i < len(t.members) && t.members[i] == node {
		return i
	}
	return -1
}

// Tag returns the team's key tag: empty for the world team (so
// world-team collectives produce exactly the key the pre-team runtime
// produced), else a canonical member-list suffix.
func (t Team) Tag() string {
	if t.members == nil {
		return ""
	}
	var b strings.Builder
	b.WriteString("@t")
	for i, m := range t.members {
		if i > 0 {
			b.WriteByte('.')
		}
		fmt.Fprintf(&b, "%d", m)
	}
	return b.String()
}

// CollectiveError reports a misused or unsupported collective.
type CollectiveError struct {
	// Op is the collective kind ("allreduce", "broadcast", "barrier",
	// "team").
	Op string
	// Key is the collective's key, when one was in play.
	Key string
	// Detail describes the problem.
	Detail string
}

func (e *CollectiveError) Error() string {
	if e.Key == "" {
		return fmt.Sprintf("rt: %s: %s", e.Op, e.Detail)
	}
	return fmt.Sprintf("rt: %s %q: %s", e.Op, e.Key, e.Detail)
}

// Collectives is the host-side collective surface of a distributed
// run, replacing the single-op Collective func type. Implementations
// are node-bound: the value a process holds knows which node it speaks
// for. Keys must be unique per collective and issued in the same order
// by every member (tag them with a step or phase counter — the
// deterministic app structure guarantees agreement). In a
// single-process run there is nothing to coordinate across, so a nil
// Collectives means "identity"; use the AllReduce/Broadcast/Barrier
// package helpers, which encode that convention.
type Collectives interface {
	// AllReduce folds every member's val under op and returns the
	// result to all members.
	AllReduce(key string, t Team, op ReduceOp, val uint64) (uint64, error)
	// Broadcast returns root's val to every member; val is ignored on
	// non-root callers. root is a node ID and must be a member.
	Broadcast(key string, t Team, root int, val uint64) (uint64, error)
	// Barrier returns once every member has entered it.
	Barrier(key string, t Team) error
}

// AllReduce applies c.AllReduce, treating a nil Collectives as the
// single-process identity: the local value already is the global fold.
func AllReduce(c Collectives, key string, t Team, op ReduceOp, val uint64) (uint64, error) {
	if c == nil {
		return val, nil
	}
	return c.AllReduce(key, t, op, val)
}

// Broadcast applies c.Broadcast, treating a nil Collectives as the
// single-process identity (the caller is the root).
func Broadcast(c Collectives, key string, t Team, root int, val uint64) (uint64, error) {
	if c == nil {
		return val, nil
	}
	return c.Broadcast(key, t, root, val)
}

// Barrier applies c.Barrier; a nil Collectives is already alone.
func Barrier(c Collectives, key string, t Team) error {
	if c == nil {
		return nil
	}
	return c.Barrier(key, t)
}

// SymmetryError reports symmetric-heap disagreement between the
// processes of a distributed run: their spaces performed different
// allocation sequences, so array IDs and offsets would name different
// cells on different nodes.
type SymmetryError struct {
	// Key is the verification key.
	Key string
	// Have is this process's allocation signature.
	Have uint64
	// Min and Max are the cluster-wide signature extremes (they differ).
	Min, Max uint64
}

func (e *SymmetryError) Error() string {
	return fmt.Sprintf("rt: symmetric heap disagreement at %q: local allocation signature %016x, cluster range [%016x, %016x] — processes allocated in different orders",
		e.Key, e.Have, e.Min, e.Max)
}

// VerifySymmetric checks that every process of a distributed run has
// performed the same allocation sequence on its space, which is the
// precondition for symmetric array IDs/offsets (SymAlloc) to agree
// cluster-wide. A permuted allocation order is rejected
// deterministically with a *SymmetryError on every member. With a nil
// Collectives (single process) there is nothing to disagree with.
func VerifySymmetric(c Collectives, sp *pgas.Space, key string) error {
	if c == nil {
		return nil
	}
	sig := sp.AllocSig()
	lo, err := c.AllReduce(key+":symsig:min", WorldTeam, OpMin, sig)
	if err != nil {
		return err
	}
	hi, err := c.AllReduce(key+":symsig:max", WorldTeam, OpMax, sig)
	if err != nil {
		return err
	}
	if lo != hi {
		return &SymmetryError{Key: key, Have: sig, Min: lo, Max: hi}
	}
	return nil
}
