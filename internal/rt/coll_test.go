package rt_test

import (
	"errors"
	"math"
	"testing"

	"gravel/internal/rt"
)

func TestReduceOpSemantics(t *testing.T) {
	for _, tc := range []struct {
		op       rt.ReduceOp
		name     string
		identity uint64
		a, b     uint64
		want     uint64
	}{
		{rt.OpSum, "sum", 0, 3, 4, 7},
		{rt.OpMin, "min", math.MaxUint64, 3, 4, 3},
		{rt.OpMax, "max", 0, 3, 4, 4},
	} {
		if tc.op.String() != tc.name {
			t.Errorf("%v.String() = %q, want %q", tc.op, tc.op.String(), tc.name)
		}
		if tc.op.Identity() != tc.identity {
			t.Errorf("%s identity = %d, want %d", tc.name, tc.op.Identity(), tc.identity)
		}
		if got := tc.op.Combine(tc.a, tc.b); got != tc.want {
			t.Errorf("%s.Combine(%d,%d) = %d, want %d", tc.name, tc.a, tc.b, got, tc.want)
		}
		// The identity must be absorbed from either side.
		if tc.op.Combine(tc.identity, tc.a) != tc.a || tc.op.Combine(tc.a, tc.identity) != tc.a {
			t.Errorf("%s identity not neutral", tc.name)
		}
	}
}

func TestTeamSemantics(t *testing.T) {
	w := rt.WorldTeam
	if !w.World() || w.Tag() != "" || w.Size(5) != 5 || !w.Contains(4) || w.Rank(3) != 3 {
		t.Fatalf("world team misbehaves: tag=%q size=%d", w.Tag(), w.Size(5))
	}
	if m := w.Members(3); len(m) != 3 || m[0] != 0 || m[2] != 2 {
		t.Fatalf("world members = %v", m)
	}

	// Members are sorted regardless of construction order, and the tag
	// is canonical.
	tm := rt.TeamOf(4, 1, 2)
	if tm.World() {
		t.Fatal("explicit team reports world")
	}
	if m := tm.Members(8); len(m) != 3 || m[0] != 1 || m[1] != 2 || m[2] != 4 {
		t.Fatalf("members = %v, want [1 2 4]", m)
	}
	if tm.Tag() != "@t1.2.4" || tm.Tag() != rt.TeamOf(2, 4, 1).Tag() {
		t.Fatalf("tag = %q, want canonical @t1.2.4", tm.Tag())
	}
	if tm.Size(8) != 3 || !tm.Contains(2) || tm.Contains(3) {
		t.Fatal("membership wrong")
	}
	if tm.Rank(1) != 0 || tm.Rank(4) != 2 || tm.Rank(0) != -1 {
		t.Fatalf("ranks: %d %d %d", tm.Rank(1), tm.Rank(4), tm.Rank(0))
	}

	for name, f := range map[string]func(){
		"empty":     func() { rt.TeamOf() },
		"duplicate": func() { rt.TeamOf(1, 1) },
		"negative":  func() { rt.TeamOf(-1) },
	} {
		func() {
			defer func() {
				if _, ok := recover().(*rt.CollectiveError); !ok {
					t.Errorf("TeamOf %s did not panic with *CollectiveError", name)
				}
			}()
			f()
		}()
	}
}

// TestNilCollectivesIdentity: the package helpers treat a nil
// Collectives as the single-process identity — the local value already
// is the global fold.
func TestNilCollectivesIdentity(t *testing.T) {
	if v, err := rt.AllReduce(nil, "k", rt.WorldTeam, rt.OpMin, 9); v != 9 || err != nil {
		t.Fatalf("nil AllReduce = %d, %v", v, err)
	}
	if v, err := rt.Broadcast(nil, "k", rt.WorldTeam, 0, 5); v != 5 || err != nil {
		t.Fatalf("nil Broadcast = %d, %v", v, err)
	}
	if err := rt.Barrier(nil, "k", rt.WorldTeam); err != nil {
		t.Fatalf("nil Barrier = %v", err)
	}
}

// TestLegacyCollectiveAdapter pins the migration contract: a bare
// sum-reduce func adapted through Collective.Collectives must produce
// exactly the legacy key/value exchange for what the old type could
// express, and typed errors for what it could not.
func TestLegacyCollectiveAdapter(t *testing.T) {
	type call struct {
		key string
		val uint64
	}
	var calls []call
	legacy := rt.Collective(func(key string, val uint64) (uint64, error) {
		calls = append(calls, call{key, val})
		return val + 100, nil
	})
	c := legacy.Collectives()

	// World-team sum: same key, same value, bit-for-bit the old wire
	// exchange.
	v, err := c.AllReduce("sssp:front:3", rt.WorldTeam, rt.OpSum, 7)
	if err != nil || v != 107 {
		t.Fatalf("world sum = %d, %v", v, err)
	}
	if len(calls) != 1 || calls[0] != (call{"sssp:front:3", 7}) {
		t.Fatalf("legacy func saw %v", calls)
	}

	// Barrier uses the transport's derived-key encoding.
	if err := c.Barrier("step9", rt.WorldTeam); err != nil {
		t.Fatalf("barrier: %v", err)
	}
	if calls[1] != (call{"barrier:step9", 0}) {
		t.Fatalf("barrier exchanged %v", calls[1])
	}

	// Everything a bare sum func cannot express is a typed error, not a
	// silent wrong answer.
	var ce *rt.CollectiveError
	if _, err := c.AllReduce("k", rt.WorldTeam, rt.OpMin, 1); !errors.As(err, &ce) {
		t.Fatalf("min via legacy adapter: err = %v, want *CollectiveError", err)
	}
	if _, err := c.AllReduce("k", rt.TeamOf(0, 1), rt.OpSum, 1); !errors.As(err, &ce) {
		t.Fatalf("team via legacy adapter: err = %v, want *CollectiveError", err)
	}
	if _, err := c.Broadcast("k", rt.WorldTeam, 0, 1); !errors.As(err, &ce) {
		t.Fatalf("broadcast via legacy adapter: err = %v, want *CollectiveError", err)
	}
	if err := c.Barrier("k", rt.TeamOf(0, 1)); !errors.As(err, &ce) {
		t.Fatalf("team barrier via legacy adapter: err = %v, want *CollectiveError", err)
	}
	if len(calls) != 2 {
		t.Fatalf("unsupported ops reached the legacy func: %v", calls)
	}

	// Deprecated entry points keep their nil-identity conventions.
	if v, err := rt.Collective(nil).Reduce("k", 4); v != 4 || err != nil {
		t.Fatalf("nil Collective.Reduce = %d, %v", v, err)
	}
	if rt.Collective(nil).Collectives() != nil {
		t.Fatal("nil Collective converted to non-nil Collectives")
	}
}
