package models

import (
	"gravel/internal/agg"
	"gravel/internal/core"
	"gravel/internal/pgas"
	"gravel/internal/rt"
	"gravel/internal/simt"
	"gravel/internal/wire"
)

// GravelArchive is the grape-style rival aggregation design run as a
// full Figure-15 model (ROADMAP item 2): the same cluster runtime as
// gravel — producer/consumer queue hardware, resolvers, fabrics — but
// the send path uses the archive aggregation strategy (agg.Archive)
// instead of the ticket-slot builders. The device appends messages
// directly into per-destination growable archives at wavefront
// granularity (simt.Group.WFAggregate: one leader reservation per
// distinct destination per WF), so there is no CPU-side repack of queue
// slots; archives seal into segments, fuse per destination, and ship
// as bulk packets.
//
// The contrast with gravel is the aggstrategy experiment's subject:
// gravel pays two reservation atomics per work-group plus per-message
// CPU repack time regardless of the destination distribution, while
// the archive pays one device atomic per distinct destination per
// wavefront — cheaper under skew, more expensive under uniform spray.
type GravelArchive struct {
	*core.Cluster
}

// NewArchive builds the archive-aggregation model over cfg's fabric
// with fuse enabled (the grape default).
func NewArchive(cfg Config) *GravelArchive {
	c := cfg.coreConfig("gravel-archive")
	c.AggStrategy = core.AggArchive
	c.ArchiveFuse = true
	return &GravelArchive{Cluster: core.New(c)}
}

// Step implements rt.System: like gravel's Step, but with the archive
// offload context.
func (m *GravelArchive) Step(name string, grid []int, scratchPerWG int, k rt.Kernel) {
	m.LaunchAll(grid, scratchPerWG, func(n *core.Node, g *simt.Group) rt.Ctx {
		return &archCtx{n: n, g: g, m: m, ar: n.Agg.(*agg.Archive)}
	}, k)
	m.Quiesce()
	m.StepBarrier()
	m.EndPhaseOverlapped(name)
}

// archCtx is the per-work-group kernel context for the archive model:
// lane-level PGAS operations become WF-aggregated appends straight into
// the node's per-destination archives, bypassing the producer/consumer
// queue and the CPU repack entirely.
type archCtx struct {
	n  *core.Node
	g  *simt.Group
	m  *GravelArchive
	ar *agg.Archive

	// scratch, lazily sized to the WG
	allOn []bool
	rem   []bool
}

// Node implements rt.Ctx.
func (c *archCtx) Node() int { return c.n.ID }

// Nodes implements rt.Ctx.
func (c *archCtx) Nodes() int { return c.m.Nodes() }

// Group implements rt.Ctx.
func (c *archCtx) Group() *simt.Group { return c.g }

func (c *archCtx) mask(verb string, active []bool) []bool {
	if len(c.allOn) < c.g.Size {
		c.allOn = make([]bool, c.g.Size)
		for i := range c.allOn {
			c.allOn[i] = true
		}
		c.rem = make([]bool, c.g.Size)
	}
	if active == nil {
		return c.allOn[:c.g.Size]
	}
	core.CheckMask(verb, active, c.g.Size)
	return active
}

// offload appends the active lanes' messages into the archives, one
// WF-aggregated reservation per (wavefront, distinct destination).
// cmdOf and destOf must be cheap and pure.
func (c *archCtx) offload(cmdOf func(lane int) uint64, destOf func(lane int) int, a, v []uint64, active []bool) {
	local, rem, count := 0, 0, 0
	me := c.n.ID
	c.g.WFAggregate(active, destOf, func(dest int, lanes []int) {
		c.ar.AppendWF(dest, lanes, cmdOf, a, v)
		if dest == me {
			local += len(lanes)
		} else {
			rem += len(lanes)
		}
		count += len(lanes)
	})
	if count == 0 {
		return
	}
	c.g.ChargeMessages(count)
	c.n.LocalOps.Add(int64(local))
	c.n.RemoteOps.Add(int64(rem))
}

// Inc implements rt.Ctx: atomics route through the owner's network
// thread even when local (§6), as in gravel.
func (c *archCtx) Inc(arr *pgas.Array, idx, delta []uint64, active []bool) {
	active = c.mask("Inc", active)
	cmd := wire.PackCmd(wire.OpInc, 0, arr.ID())
	c.offload(func(int) uint64 { return cmd }, func(l int) int { return arr.Owner(idx[l]) }, idx, delta, active)
}

// Put implements rt.Ctx: local PUTs execute directly as GPU stores;
// remote PUTs append into the archives.
func (c *archCtx) Put(arr *pgas.Array, idx, val []uint64, active []bool) {
	active = c.mask("Put", active)
	g := c.g
	remote := c.rem[:g.Size]
	me := c.n.ID
	anyRemote := false
	local := 0
	g.VectorMasked(2, active, func(l int) {
		if arr.Owner(idx[l]) == me {
			arr.Store(idx[l], val[l])
			remote[l] = false
			local++
		} else {
			remote[l] = true
			anyRemote = true
		}
	})
	c.n.LocalOps.Add(int64(local))
	if anyRemote {
		cmd := wire.PackCmd(wire.OpPut, 0, arr.ID())
		c.offload(func(int) uint64 { return cmd }, func(l int) int { return arr.Owner(idx[l]) }, idx, val, remote)
	}
	for l := 0; l < g.Size; l++ {
		remote[l] = false
	}
}

// AM implements rt.Ctx.
func (c *archCtx) AM(h uint8, dest []int, a, b []uint64, active []bool) {
	active = c.mask("AM", active)
	cmd := wire.PackCmd(wire.OpAM, h, 0)
	c.offload(func(int) uint64 { return cmd }, func(l int) int { return dest[l] }, a, b, active)
}

// PutSignal implements rt.Ctx: each lane's PUT_SIGNAL command stages
// its destination's whole archive immediately (agg.Archive's signal
// liveness rule), so a remote waiter never spins on a parked signal.
func (c *archCtx) PutSignal(arr *pgas.Array, idx, val []uint64, sig *pgas.Array, sigIdx []uint64, active []bool) {
	active = c.mask("PutSignal", active)
	core.CheckSignalPairs(c.n.ID, arr, idx, sig, sigIdx, active)
	dataID, sigID := arr.ID(), sig.ID()
	c.offload(func(l int) uint64 {
		return wire.PackSigCmd(dataID, sigID, uint32(sigIdx[l]))
	}, func(l int) int { return arr.Owner(idx[l]) }, idx, val, active)
}

// WaitUntil implements rt.Ctx. Progress flushes this node's archives:
// a waiter may depend transitively on plain puts still parked in a
// half-filled open segment (only signals stage eagerly), so each spin
// pushes staged work toward the wire, like the coalesced model's
// buffer-flushing progress hook.
func (c *archCtx) WaitUntil(sig *pgas.Array, sigIdx, until []uint64, active []bool) {
	active = c.mask("WaitUntil", active)
	core.WaitUntilOn(c.m.Params(), c.n, c.g, sig, sigIdx, until, active, c.ar.Flush)
}

var (
	_ rt.System = (*GravelArchive)(nil)
	_ rt.Ctx    = (*archCtx)(nil)
)
