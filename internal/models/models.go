// Package models implements the GPU networking models the paper
// compares Gravel against (§3, §7.2, Figure 15):
//
//   - coprocessor (§3.1): the GPU fills per-node queues directly; the
//     host exchanges them bulk-synchronously between kernel chunks. The
//     chunk size is bounded so that the worst case (every WI targeting
//     one destination) cannot overflow a queue. A variant allocates an
//     order of magnitude more buffering ("coprocessor + extra
//     buffering").
//   - message-per-lane (§3.2): Gravel's queue but no aggregation —
//     every message crosses the wire as its own packet.
//   - coalesced APIs (§3.3): work-groups counting-sort their messages by
//     destination in scratchpad and synchronously send one list per
//     destination. A variant adds Gravel-style GPU-wide aggregation of
//     those lists ("coalesced APIs + Gravel aggregation").
//   - CPU-only (Figure 13): the same applications executed by the host
//     CPU's four threads with Grappa/UPC-style per-thread aggregation —
//     no GPU involved.
//
// All models implement rt.System, so every application runs unmodified
// under every model.
package models

import (
	"fmt"

	"gravel/internal/core"
	"gravel/internal/fabric"
	"gravel/internal/rt"
	"gravel/internal/simt"
	"gravel/internal/timemodel"
)

// Config configures a model system. It carries the transport-relevant
// subset of core.Config so every model — not just gravel — is
// fabric-pluggable: the same coprocessor or coalesced baseline runs
// over the in-process "chan" fabric, the framing "loopback" fabric, or
// real "tcp" sockets spanning OS processes.
type Config struct {
	// Nodes is the cluster size.
	Nodes int
	// Params is the virtual-time cost model; nil means timemodel.Default.
	Params *timemodel.Params
	// WGSize is the work-group size in lanes (0 = the model's default).
	WGSize int
	// DivMode selects diverged WG-level operation behaviour.
	DivMode simt.DivergenceMode
	// GroupSize > 1 enables two-level hierarchical aggregation
	// (gravel model only).
	GroupSize int
	// ResolverShards splits each node's receive-side resolution into
	// per-bank resolvers (0 or 1 = the serial network thread).
	ResolverShards int
	// Transport names a registered fabric transport ("" = "chan").
	Transport string
	// TransportOpts configures non-default transports.
	TransportOpts fabric.Options
}

// coreConfig translates cfg into the shared core.Config fields.
func (cfg Config) coreConfig(name string) core.Config {
	return core.Config{
		Name:           name,
		Nodes:          cfg.Nodes,
		Params:         cfg.Params,
		WGSize:         cfg.WGSize,
		DivMode:        cfg.DivMode,
		GroupSize:      cfg.GroupSize,
		ResolverShards: cfg.ResolverShards,
		Transport:      cfg.Transport,
		TransportOpts:  cfg.TransportOpts,
	}
}

// Gravel returns the paper's system itself (package core), for use with
// the New factory.
func Gravel(nodes int, p *timemodel.Params) rt.System {
	return NewSystem("gravel", Config{Nodes: nodes, Params: p})
}

// MsgPerLane returns the message-per-lane baseline: Gravel's
// producer/consumer queue (which hides SIMT issues, as the paper assumes
// for this model) but no message combining.
func MsgPerLane(nodes int, p *timemodel.Params) rt.System {
	return NewSystem("msg-per-lane", Config{Nodes: nodes, Params: p})
}

// CPUOnly returns the Figure 13 baseline: a CPU-based distributed system
// in the style of Grappa/UPC. The "device" is the node's 4 hardware
// threads (one lane each); offload batches model per-thread aggregation
// buffers.
func CPUOnly(nodes int, p *timemodel.Params) rt.System {
	return NewSystem("cpu-only", Config{Nodes: nodes, Params: p})
}

// Names lists the systems Figure 15 compares, in the paper's bar order.
func Names() []string {
	return []string{
		"coprocessor",
		"coprocessor+buf",
		"msg-per-lane",
		"coalesced",
		"coalesced+agg",
		"gravel",
		"gravel-archive",
	}
}

// New builds a system by Figure 15 name over the default in-process
// fabric. A nil p means timemodel.Default.
func New(name string, nodes int, p *timemodel.Params) rt.System {
	return NewSystem(name, Config{Nodes: nodes, Params: p})
}

// NewSystem builds a system by name over the configured fabric. It is
// the single construction funnel behind gravel.New/NewModel: every
// model accepts every registered transport, so the Figure 15 sweep runs
// in-process or as a real multi-process cluster.
func NewSystem(name string, cfg Config) rt.System {
	if cfg.Params == nil {
		cfg.Params = timemodel.Default()
	}
	if cfg.GroupSize > 1 && name != "gravel" {
		panic(fmt.Sprintf("models: hierarchical aggregation (GroupSize %d) requires the gravel model, not %q", cfg.GroupSize, name))
	}
	switch name {
	case "gravel":
		return core.New(cfg.coreConfig("gravel"))
	case "gravel-archive":
		return NewArchive(cfg)
	case "msg-per-lane":
		c := cfg.coreConfig("msg-per-lane")
		c.AggMode = core.AggPerMessage
		return core.New(c)
	case "coprocessor":
		return NewCoprocessor(cfg, false)
	case "coprocessor+buf":
		return NewCoprocessor(cfg, true)
	case "coalesced":
		return NewCoalesced(cfg, false)
	case "coalesced+agg":
		return NewCoalesced(cfg, true)
	case "cpu-only":
		arch := simt.CPUArch(cfg.Params)
		c := cfg.coreConfig("cpu-only")
		c.Arch = &arch
		if c.WGSize == 0 {
			c.WGSize = 256
		}
		return core.New(c)
	default:
		panic(fmt.Sprintf("models: unknown system %q", name))
	}
}
