// Package models implements the GPU networking models the paper
// compares Gravel against (§3, §7.2, Figure 15):
//
//   - coprocessor (§3.1): the GPU fills per-node queues directly; the
//     host exchanges them bulk-synchronously between kernel chunks. The
//     chunk size is bounded so that the worst case (every WI targeting
//     one destination) cannot overflow a queue. A variant allocates an
//     order of magnitude more buffering ("coprocessor + extra
//     buffering").
//   - message-per-lane (§3.2): Gravel's queue but no aggregation —
//     every message crosses the wire as its own packet.
//   - coalesced APIs (§3.3): work-groups counting-sort their messages by
//     destination in scratchpad and synchronously send one list per
//     destination. A variant adds Gravel-style GPU-wide aggregation of
//     those lists ("coalesced APIs + Gravel aggregation").
//   - CPU-only (Figure 13): the same applications executed by the host
//     CPU's four threads with Grappa/UPC-style per-thread aggregation —
//     no GPU involved.
//
// All models implement rt.System, so every application runs unmodified
// under every model.
package models

import (
	"fmt"

	"gravel/internal/core"
	"gravel/internal/rt"
	"gravel/internal/simt"
	"gravel/internal/timemodel"
)

// Gravel returns the paper's system itself (package core), for use with
// the New factory.
func Gravel(nodes int, p *timemodel.Params) rt.System {
	return core.New(core.Config{Name: "gravel", Nodes: nodes, Params: p})
}

// MsgPerLane returns the message-per-lane baseline: Gravel's
// producer/consumer queue (which hides SIMT issues, as the paper assumes
// for this model) but no message combining.
func MsgPerLane(nodes int, p *timemodel.Params) rt.System {
	return core.New(core.Config{Name: "msg-per-lane", Nodes: nodes, Params: p, AggMode: core.AggPerMessage})
}

// CPUOnly returns the Figure 13 baseline: a CPU-based distributed system
// in the style of Grappa/UPC. The "device" is the node's 4 hardware
// threads (one lane each); offload batches model per-thread aggregation
// buffers.
func CPUOnly(nodes int, p *timemodel.Params) rt.System {
	arch := simt.CPUArch(p)
	return core.New(core.Config{Name: "cpu-only", Nodes: nodes, Params: p, WGSize: 256, Arch: &arch})
}

// Names lists the systems Figure 15 compares, in the paper's bar order.
func Names() []string {
	return []string{
		"coprocessor",
		"coprocessor+buf",
		"msg-per-lane",
		"coalesced",
		"coalesced+agg",
		"gravel",
	}
}

// New builds a system by Figure 15 name. A nil p means
// timemodel.Default.
func New(name string, nodes int, p *timemodel.Params) rt.System {
	if p == nil {
		p = timemodel.Default()
	}
	switch name {
	case "gravel":
		return Gravel(nodes, p)
	case "msg-per-lane":
		return MsgPerLane(nodes, p)
	case "coprocessor":
		return NewCoprocessor(nodes, p, false)
	case "coprocessor+buf":
		return NewCoprocessor(nodes, p, true)
	case "coalesced":
		return NewCoalesced(nodes, p, false)
	case "coalesced+agg":
		return NewCoalesced(nodes, p, true)
	case "cpu-only":
		return CPUOnly(nodes, p)
	default:
		panic(fmt.Sprintf("models: unknown system %q", name))
	}
}
