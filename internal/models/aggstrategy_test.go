package models_test

import (
	"testing"

	"gravel/internal/models"
	"gravel/internal/rt"
)

// splitmix64 is the seeded generator behind the property-test streams:
// cheap, deterministic, and identical on the precompute and verify
// sides.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// TestAggStrategiesPreserveOrderAndChecksum is the aggregation-strategy
// property test: for any strategy (ticket-slot builders in "gravel",
// per-destination archives in "gravel-archive") and any seeded
// destination distribution (uniform spray or zipfian skew), messages
// from one source to one destination must arrive in issue order, and
// the additive payload checksums must survive aggregation exactly.
// Each node runs a single work-group (so issue order is well defined)
// that sends several rounds of active messages; the handler records the
// per-source sequence numbers it observes at each destination.
func TestAggStrategiesPreserveOrderAndChecksum(t *testing.T) {
	const (
		nodes  = 4
		wgSize = 64
		rounds = 6
	)

	// zipfThresh maps a 16-bit draw to a zipf(s=1) rank over the node
	// count: weights 1/(k+1), so rank 0 (node 0) absorbs ~48% of the
	// traffic — the skew the archive strategy is built for.
	var zipfThresh [nodes]uint64
	{
		var total float64
		for k := 0; k < nodes; k++ {
			total += 1 / float64(k+1)
		}
		var cum float64
		for k := 0; k < nodes; k++ {
			cum += 1 / float64(k+1)
			zipfThresh[k] = uint64(cum / total * (1 << 16))
		}
		zipfThresh[nodes-1] = 1 << 16 // exact upper bound
	}
	dists := []struct {
		name string
		pick func(r uint64) int
	}{
		{"uniform", func(r uint64) int { return int(r % nodes) }},
		{"zipfian", func(r uint64) int {
			d := r % (1 << 16)
			for k := 0; k < nodes; k++ {
				if d < zipfThresh[k] {
					return k
				}
			}
			return nodes - 1
		}},
	}

	for _, model := range []string{"gravel", "gravel-archive"} {
		for _, dist := range dists {
			t.Run(model+"/"+dist.name, func(t *testing.T) {
				// Precompute every node's message stream: destination,
				// per-(src,dest) sequence number, and a random payload
				// whose per-destination sums are the checksum oracle.
				var (
					destTab [nodes][rounds][]int
					aTab    [nodes][rounds][]uint64
					bTab    [nodes][rounds][]uint64
					wantSum [nodes]uint64
					wantCnt [nodes]int
				)
				rng := uint64(0x5eed<<4) + uint64(len(dist.name))
				var seq [nodes][nodes]uint64
				for src := 0; src < nodes; src++ {
					for r := 0; r < rounds; r++ {
						destTab[src][r] = make([]int, wgSize)
						aTab[src][r] = make([]uint64, wgSize)
						bTab[src][r] = make([]uint64, wgSize)
						for l := 0; l < wgSize; l++ {
							d := dist.pick(splitmix64(&rng))
							payload := splitmix64(&rng)
							destTab[src][r][l] = d
							aTab[src][r][l] = uint64(src)<<32 | seq[src][d]
							bTab[src][r][l] = payload
							seq[src][d]++
							wantSum[d] += payload
							wantCnt[d]++
						}
					}
				}

				sys := models.NewSystem(model, models.Config{Nodes: nodes, WGSize: wgSize})
				defer sys.Close()

				// got[dest].seqs[src] is the arrival-ordered sequence
				// list; handlers run serialized per destination node, so
				// per-index mutation is race-free.
				type recNode struct {
					seqs [nodes][]uint64
					sum  uint64
				}
				got := make([]recNode, nodes)
				h := sys.RegisterAM(func(node int, a, b uint64) {
					src := int(a >> 32)
					got[node].seqs[src] = append(got[node].seqs[src], a&0xffffffff)
					got[node].sum += b
				})

				grid := make([]int, nodes)
				for i := range grid {
					grid[i] = wgSize
				}
				sys.Step("aggprop", grid, 0, func(c rt.Ctx) {
					src := c.Node()
					for r := 0; r < rounds; r++ {
						c.AM(h, destTab[src][r], aTab[src][r], bTab[src][r], nil)
					}
				})

				for d := 0; d < nodes; d++ {
					cnt := 0
					for src := 0; src < nodes; src++ {
						for i, s := range got[d].seqs[src] {
							if s != uint64(i) {
								t.Fatalf("%s/%s: dest %d reordered stream from src %d: seq %d at position %d",
									model, dist.name, d, src, s, i)
							}
						}
						if g, w := len(got[d].seqs[src]), int(seq[src][d]); g != w {
							t.Fatalf("%s/%s: dest %d got %d messages from src %d, want %d",
								model, dist.name, d, g, src, w)
						}
						cnt += len(got[d].seqs[src])
					}
					if cnt != wantCnt[d] {
						t.Fatalf("%s/%s: dest %d received %d messages, want %d", model, dist.name, d, cnt, wantCnt[d])
					}
					if got[d].sum != wantSum[d] {
						t.Fatalf("%s/%s: dest %d checksum %d, want %d", model, dist.name, d, got[d].sum, wantSum[d])
					}
				}
				// The distributions must actually differ: zipfian should
				// send node 0 well over its uniform share.
				if dist.name == "zipfian" && wantCnt[0] <= wantCnt[nodes-1] {
					t.Fatalf("zipfian stream not skewed: node 0 got %d, node %d got %d", wantCnt[0], nodes-1, wantCnt[nodes-1])
				}
			})
		}
	}
}
