package models

import (
	"sync"

	"gravel/internal/core"
	"gravel/internal/timemodel"
	"gravel/internal/wire"
)

// sendBuffers is a node's set of GPU-side per-destination queues, shared
// by all of the node's work-groups. The coprocessor model fills them
// from the GPU and exchanges them at chunk boundaries; the
// coalesced+aggregation model fills them from repacked per-WG lists.
type sendBuffers struct {
	node *core.Node
	cl   *core.Cluster
	p    *timemodel.Params

	// chargeAgg adds CPU aggregator cost per message (coalesced+agg).
	chargeAgg bool

	mu        sync.Mutex
	b         []*wire.Builder
	overflows int // mid-chunk full-queue flushes since the last take
}

func newSendBuffers(cl *core.Cluster, node *core.Node, capBytes int, chargeAgg bool) *sendBuffers {
	nb := &sendBuffers{node: node, cl: cl, p: cl.Params(), chargeAgg: chargeAgg}
	nb.b = make([]*wire.Builder, cl.Nodes())
	for d := range nb.b {
		nb.b[d] = wire.NewBuilder(d, capBytes)
	}
	return nb
}

// appendList adds msgs messages bound for dest, flushing whenever a
// queue fills. Arguments are parallel slices of length count.
func (s *sendBuffers) appendList(dest int, cmd uint64, a, v []uint64, count int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.b[dest]
	for m := 0; m < count; m++ {
		if b.Full() {
			s.overflows++
			s.flushLocked(dest)
		}
		b.Append(cmd, a[m], v[m])
	}
	if s.chargeAgg {
		s.node.Clocks.AddAgg(s.p.AggPerSlotNs + float64(count)*s.p.AggPerMsgNs)
		s.node.Clocks.CountAggSlot(count)
	}
}

// appendListCmds is appendList with a per-record command word
// (PUT_SIGNAL carries the lane's signal cell in its command). Signal
// records flush their queue eagerly: a remote waiter spins on the
// signal until it arrives, and the coprocessor/coalesced staging
// buffers would otherwise hold it to the next chunk or step boundary —
// which the waiter's spin prevents from ever coming. One flush per
// signal keeps flush counts deterministic.
func (s *sendBuffers) appendListCmds(dest int, cmds, a, v []uint64, count int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.b[dest]
	for m := 0; m < count; m++ {
		if b.Full() {
			s.overflows++
			s.flushLocked(dest)
		}
		b.Append(cmds[m], a[m], v[m])
		if wire.Op(cmds[m]&0xff) == wire.OpPutSignal {
			s.flushLocked(dest)
		}
	}
	if s.chargeAgg {
		s.node.Clocks.AddAgg(s.p.AggPerSlotNs + float64(count)*s.p.AggPerMsgNs)
		s.node.Clocks.CountAggSlot(count)
	}
}

func (s *sendBuffers) flushLocked(dest int) {
	b := s.b[dest]
	if b.Empty() {
		return
	}
	buf, msgs := b.Take()
	if s.chargeAgg {
		s.node.Clocks.AddAgg(s.p.AggPerFlushNs)
	}
	s.cl.Fabric().Send(s.node.ID, dest, buf, msgs)
}

// flushAll sends every non-empty queue (chunk boundary or quiescence).
func (s *sendBuffers) flushAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for d := range s.b {
		s.flushLocked(d)
	}
}

// takeOverflows returns and resets the mid-chunk overflow count.
func (s *sendBuffers) takeOverflows() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.overflows
	s.overflows = 0
	return n
}
