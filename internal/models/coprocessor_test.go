package models

import (
	"testing"

	"gravel/internal/rt"
)

// TestCoprocessorChunking: the coprocessor model must launch in chunks
// bounded by its per-node queue capacity — visible as many more kernel
// launches (host time) than Gravel needs for the same grid.
func TestCoprocessorChunking(t *testing.T) {
	cp := NewCoprocessor(Config{Nodes: 2}, false)
	defer cp.Close()
	arr := cp.Space().Alloc(256)
	const grid = 60000 // >> 64kB/24B ≈ 2730-WI chunks
	kernel := func(c rt.Ctx) {
		g := c.Group()
		idx := make([]uint64, g.Size)
		one := make([]uint64, g.Size)
		g.Vector(func(l int) {
			idx[l] = uint64(g.GlobalID(l) % 256)
			one[l] = 1
		})
		c.Inc(arr, idx, one, nil)
	}
	cp.Step("inc", []int{grid, 0}, 0, kernel)
	if got := arr.Sum(); got != uint64(grid) {
		t.Fatalf("sum = %d, want %d", got, grid)
	}
	host := cp.Node(0).Clocks.Snapshot().Host
	launch := cp.Params().KernelLaunchNs
	// ~22 chunks of ~2688 WIs each, plus per-chunk exchange overhead.
	if host < 15*launch {
		t.Fatalf("host time %v suggests no chunking (launch=%v)", host, launch)
	}
}

// TestCoprocessorReactiveShrink: a kernel whose WIs send many messages
// each overflows queues mid-chunk; the model must shrink its chunk in
// response (more launches than the one-message-per-WI case).
func TestCoprocessorReactiveShrink(t *testing.T) {
	hostFor := func(msgsPerWI int) float64 {
		cp := NewCoprocessor(Config{Nodes: 2}, false)
		defer cp.Close()
		arr := cp.Space().Alloc(256)
		const grid = 16384
		cp.Step("inc", []int{grid, 0}, 0, func(c rt.Ctx) {
			g := c.Group()
			idx := make([]uint64, g.Size)
			one := make([]uint64, g.Size)
			counts := make([]int, g.Size)
			g.Vector(func(l int) {
				counts[l] = msgsPerWI
				one[l] = 1
			})
			g.PredicatedLoop(counts, 1, func(i int, active []bool) {
				g.VectorMasked(1, active, func(l int) {
					idx[l] = uint64((g.GlobalID(l)*7 + i) % 256)
				})
				c.Inc(arr, idx, one, active)
			})
		})
		if got := arr.Sum(); got != uint64(grid*msgsPerWI) {
			t.Fatalf("sum = %d, want %d", got, grid*msgsPerWI)
		}
		return cp.Node(0).Clocks.Snapshot().Host
	}
	light := hostFor(1)
	heavy := hostFor(8)
	if heavy <= light*1.5 {
		t.Fatalf("heavy kernel host time (%v) should exceed light (%v): chunk did not shrink", heavy, light)
	}
}

// TestCoalescedScratchpadPenalty: the coalesced model's counting sort
// consumes scratchpad (16 B per lane), lowering occupancy and slowing
// scratch-hungry kernels (§7.2's mer observation).
func TestCoalescedScratchpadPenalty(t *testing.T) {
	gpuTime := func(scratch int) float64 {
		c := NewCoalesced(Config{Nodes: 2}, false)
		defer c.Close()
		arr := c.Space().Alloc(64)
		c.Step("inc", []int{8192, 0}, scratch, func(ctx rt.Ctx) {
			g := ctx.Group()
			idx := make([]uint64, g.Size)
			one := make([]uint64, g.Size)
			g.VectorN(16, func(l int) { idx[l] = 0; one[l] = 1 })
			ctx.Inc(arr, idx, one, nil)
		})
		return c.Node(0).Clocks.Snapshot().GPU
	}
	small := gpuTime(0)
	// 28 kB app scratch + 4 kB counting sort = 2 resident WGs per CU:
	// below the full-throughput occupancy, so the device slows down.
	big := gpuTime(28 << 10)
	if big <= small {
		t.Fatalf("scratch-hungry coalesced kernel (%v) not slower than light one (%v)", big, small)
	}
}
