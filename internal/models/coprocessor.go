package models

import (
	"fmt"
	"sync"

	"gravel/internal/core"
	"gravel/internal/pgas"
	"gravel/internal/rt"
	"gravel/internal/simt"
	"gravel/internal/timemodel"
	"gravel/internal/wire"
)

// Coprocessor is the §3.1 model: the GPU inserts messages into per-node
// queues in memory; the host exchanges the queues between kernel chunks.
// Nothing overlaps — phase time composes sequentially (Figure 4a).
//
// The number of concurrently executing work-items is limited so a
// per-node queue cannot overflow even if every WI targets the same
// destination; this is the chunking of Figure 4a lines 6-7 and is what
// starves the GPU when queues are small (§7.2). Applications whose WIs
// send many messages (PR, color) overflow mid-chunk anyway and pay a
// synchronous flush stall.
type Coprocessor struct {
	*core.Cluster
	name       string
	queueBytes int
	sb         []*sendBuffers
}

// NewCoprocessor builds the model over cfg's fabric. With
// extraBuffering, each per-node queue gets 1 MB instead of Gravel's
// 64 kB (the second bar of Figure 15). The per-node queues are filled
// by the GPU and exchanged through the cluster's fabric, so the model
// runs over in-process channels or real sockets alike; on a
// multi-process fabric only the hosted node gets queues — the other
// nodes exist for address-space symmetry and stay idle.
func NewCoprocessor(cfg Config, extraBuffering bool) *Coprocessor {
	if cfg.Params == nil {
		cfg.Params = timemodel.Default()
	}
	name := "coprocessor"
	qb := cfg.Params.PerNodeQueueBytes
	if extraBuffering {
		name = "coprocessor+buf"
		qb = 1 << 20
	}
	cl := core.New(cfg.coreConfig(name))
	cp := &Coprocessor{Cluster: cl, name: name, queueBytes: qb}
	cp.sb = make([]*sendBuffers, cfg.Nodes)
	for i := range cp.sb {
		if !cl.Fabric().Hosts(i) {
			continue
		}
		cp.sb[i] = newSendBuffers(cl, cl.Node(i), qb, false)
	}
	return cp
}

// Step implements rt.System with chunked bulk-synchronous execution.
//
// The initial chunk assumes one message per WI (the GUPS-style worst
// case of Figure 4a). Kernels whose WIs send many messages (PR, color)
// overflow a per-node queue mid-chunk; the host reacts the way the
// paper's programmer does — by shrinking the chunk — which starves the
// GPU further. Chunks smaller than the device's full-throughput width
// additionally pay an occupancy penalty (the §7.2 "small per-node
// queues limit the amount of parallelism on the GPU").
func (cp *Coprocessor) Step(name string, grid []int, scratchPerWG int, k rt.Kernel) {
	wgSize := cp.WGSize()
	p := cp.Params()
	maxChunk := cp.queueBytes / wire.MsgWireBytes / wgSize * wgSize
	if maxChunk < wgSize {
		maxChunk = wgSize
	}
	// Full-throughput width: enough WIs to populate every CU at the
	// occupancy that hides memory latency.
	fullWIs := p.CUs * p.OccupancyForFullThroughput * wgSize

	var wg sync.WaitGroup
	for i := 0; i < cp.Nodes(); i++ {
		if grid[i] <= 0 {
			continue
		}
		if !cp.Fabric().Hosts(i) {
			panic(fmt.Sprintf("models: coprocessor launch on node %d, which this process does not host", i))
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n := cp.Node(i)
			sb := cp.sb[i]
			chunk := maxChunk
			for start := 0; start < grid[i]; {
				sz := grid[i] - start
				if sz > chunk {
					sz = chunk
				}
				n.Clocks.AddHost(p.KernelLaunchNs)
				ns := n.GPU.LaunchAt(sz, start, wgSize, scratchPerWG, func(grp *simt.Group) {
					k(&copCtx{n: n, g: grp, sb: sb, nodes: cp.Nodes(), p: p})
				})
				// GPU starvation: a chunk below the full-throughput
				// width leaves the device idle while queues round-trip.
				if sz < fullWIs {
					factor := float64(fullWIs) / float64(sz)
					if factor > 16 {
						factor = 16
					}
					n.Clocks.AddGPU(ns * (factor - 1))
				}
				// Synchronous exchange at the chunk boundary.
				sb.flushAll()
				n.Clocks.AddHost(p.AlphaNs) // MPI exchange round trip
				start += sz
				// React to mid-chunk overflows: the safe chunk is
				// smaller than assumed.
				if sb.takeOverflows() > 0 && chunk > wgSize {
					chunk = chunk / 2 / wgSize * wgSize
					if chunk < wgSize {
						chunk = wgSize
					}
				}
			}
		}(i)
	}
	wg.Wait()
	cp.Quiesce()
	cp.StepBarrier()
	cp.EndPhaseSequential(name)
}

// copCtx routes kernel network operations into the node's GPU-side
// per-node queues. WG-level synchronization happens once per distinct
// destination (§3.1), costing divergence.
type copCtx struct {
	n     *core.Node
	g     *simt.Group
	sb    *sendBuffers
	nodes int
	p     *timemodel.Params

	allOn  []bool
	mask   []bool
	dests  []int
	remote []bool
	aBuf   []uint64
	vBuf   []uint64
	cBuf   []uint64
}

// Node implements rt.Ctx.
func (c *copCtx) Node() int { return c.n.ID }

// Nodes implements rt.Ctx.
func (c *copCtx) Nodes() int { return c.nodes }

// Group implements rt.Ctx.
func (c *copCtx) Group() *simt.Group { return c.g }

func (c *copCtx) ensure() {
	if len(c.mask) < c.g.Size {
		c.mask = make([]bool, c.g.Size)
		c.dests = make([]int, c.g.Size)
		c.remote = make([]bool, c.g.Size)
		c.aBuf = make([]uint64, c.g.Size)
		c.vBuf = make([]uint64, c.g.Size)
		c.cBuf = make([]uint64, c.g.Size)
		c.allOn = make([]bool, c.g.Size)
		for i := range c.allOn {
			c.allOn[i] = true
		}
	}
}

// maskOf applies the rt.Ctx lane-mask convention (nil = all lanes,
// else exactly WG-sized), funneling violations through core.CheckMask.
func (c *copCtx) maskOf(verb string, active []bool) []bool {
	c.ensure()
	if active == nil {
		return c.allOn[:c.g.Size]
	}
	core.CheckMask(verb, active, c.g.Size)
	return active
}

// offload groups the active lanes' messages by destination and appends
// each group to the matching per-node queue.
func (c *copCtx) offload(cmd uint64, destOf func(lane int) int, a, v []uint64, active []bool) {
	g := c.g
	c.ensure()
	any := false
	local, rem := 0, 0
	g.VectorMasked(1, active, func(l int) {
		c.dests[l] = destOf(l)
		any = true
		if c.dests[l] == c.n.ID {
			local++
		} else {
			rem++
		}
	})
	if !any {
		return
	}
	c.n.LocalOps.Add(int64(local))
	c.n.RemoteOps.Add(int64(rem))
	// One WG-level reservation per destination present in the WG
	// (Figure 4a lines 2-4): branch and memory divergence.
	for d := 0; d < c.nodes; d++ {
		count := 0
		for l := 0; l < g.Size; l++ {
			if active[l] && c.dests[l] == d {
				c.mask[l] = true
				c.aBuf[count] = a[l]
				c.vBuf[count] = v[l]
				count++
			} else {
				c.mask[l] = false
			}
		}
		if count == 0 {
			continue
		}
		_, _ = g.PrefixSumMask(c.mask) // WG-level reserve for this queue
		g.ChargeAtomics(1)
		g.VectorMasked(wire.SlotRows, c.mask, func(int) {})
		g.ChargeMemDivergence(count) // different queue per destination
		g.ChargeMessages(count)
		c.sb.appendList(d, cmd, c.aBuf, c.vBuf, count)
	}
}

// offloadCmds is offload with a per-lane command word (PUT_SIGNAL
// carries the lane's signal cell in its command).
func (c *copCtx) offloadCmds(cmdOf func(lane int) uint64, destOf func(lane int) int, a, v []uint64, active []bool) {
	g := c.g
	c.ensure()
	any := false
	local, rem := 0, 0
	g.VectorMasked(1, active, func(l int) {
		c.dests[l] = destOf(l)
		any = true
		if c.dests[l] == c.n.ID {
			local++
		} else {
			rem++
		}
	})
	if !any {
		return
	}
	c.n.LocalOps.Add(int64(local))
	c.n.RemoteOps.Add(int64(rem))
	for d := 0; d < c.nodes; d++ {
		count := 0
		for l := 0; l < g.Size; l++ {
			if active[l] && c.dests[l] == d {
				c.mask[l] = true
				c.cBuf[count] = cmdOf(l)
				c.aBuf[count] = a[l]
				c.vBuf[count] = v[l]
				count++
			} else {
				c.mask[l] = false
			}
		}
		if count == 0 {
			continue
		}
		_, _ = g.PrefixSumMask(c.mask)
		g.ChargeAtomics(1)
		g.VectorMasked(wire.SlotRows, c.mask, func(int) {})
		g.ChargeMemDivergence(count)
		g.ChargeMessages(count)
		c.sb.appendListCmds(d, c.cBuf, c.aBuf, c.vBuf, count)
	}
}

// Inc implements rt.Ctx.
func (c *copCtx) Inc(arr *pgas.Array, idx, delta []uint64, active []bool) {
	active = c.maskOf("Inc", active)
	cmd := wire.PackCmd(wire.OpInc, 0, arr.ID())
	c.offload(cmd, func(l int) int { return arr.Owner(idx[l]) }, idx, delta, active)
}

// Put implements rt.Ctx: local PUTs store directly, as in Gravel.
func (c *copCtx) Put(arr *pgas.Array, idx, val []uint64, active []bool) {
	active = c.maskOf("Put", active)
	g := c.g
	me := c.n.ID
	local := 0
	anyRemote := false
	g.VectorMasked(2, active, func(l int) {
		if arr.Owner(idx[l]) == me {
			arr.Store(idx[l], val[l])
			c.remote[l] = false
			local++
		} else {
			c.remote[l] = true
			anyRemote = true
		}
	})
	c.n.LocalOps.Add(int64(local))
	if anyRemote {
		cmd := wire.PackCmd(wire.OpPut, 0, arr.ID())
		c.offload(cmd, func(l int) int { return arr.Owner(idx[l]) }, idx, val, c.remote)
	}
	// Restore the all-false invariant on the scratch mask.
	for l := 0; l < g.Size; l++ {
		c.remote[l] = false
	}
}

// AM implements rt.Ctx.
func (c *copCtx) AM(h uint8, dest []int, a, b []uint64, active []bool) {
	active = c.maskOf("AM", active)
	cmd := wire.PackCmd(wire.OpAM, h, 0)
	c.offload(cmd, func(l int) int { return dest[l] }, a, b, active)
}

// PutSignal implements rt.Ctx: like Gravel's, the data put and signal
// increment travel as one PUT_SIGNAL command resolved at the data
// cell's owner; the staging queue is flushed eagerly per signal (see
// sendBuffers.appendListCmds).
func (c *copCtx) PutSignal(arr *pgas.Array, idx, val []uint64, sig *pgas.Array, sigIdx []uint64, active []bool) {
	active = c.maskOf("PutSignal", active)
	core.CheckSignalPairs(c.n.ID, arr, idx, sig, sigIdx, active)
	dataID, sigID := arr.ID(), sig.ID()
	c.offloadCmds(func(l int) uint64 {
		return wire.PackSigCmd(dataID, sigID, uint32(sigIdx[l]))
	}, func(l int) int { return arr.Owner(idx[l]) }, idx, val, active)
}

// WaitUntil implements rt.Ctx. The spin's progress hook flushes this
// node's staged queues so messages the waiter's chunk already produced
// keep moving while it blocks.
func (c *copCtx) WaitUntil(sig *pgas.Array, sigIdx, until []uint64, active []bool) {
	active = c.maskOf("WaitUntil", active)
	core.WaitUntilOn(c.p, c.n, c.g, sig, sigIdx, until, active, c.sb.flushAll)
}

var (
	_ rt.System = (*Coprocessor)(nil)
	_ rt.Ctx    = (*copCtx)(nil)
)
