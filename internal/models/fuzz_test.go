package models_test

import (
	"testing"
	"testing/quick"

	"gravel/internal/graph"
	"gravel/internal/models"
	"gravel/internal/pgas"
	"gravel/internal/rt"
)

// program is a deterministic random workload: each work-item performs a
// hash-chosen mix of Inc, Put (to its own write-slot) and AM operations
// against two distributed arrays, with data-dependent activity in a
// predicated loop. It exercises the full Ctx surface.
type program struct {
	seed    uint64
	nodes   int
	perNode int
	arrLen  int
}

// run executes the program and returns (incSum, putChecksum, amSum).
func (p program) run(sys rt.System) (uint64, uint64, uint64) {
	acc := sys.Space().Alloc(p.arrLen)
	slots := sys.Space().Alloc(p.nodes * p.perNode) // unique slot per WI
	var amTotal [64]struct {
		v uint64
		_ [56]byte
	}
	h := sys.RegisterAM(func(node int, a, b uint64) {
		amTotal[node].v += a ^ b
	})

	grid := make([]int, p.nodes)
	for i := range grid {
		grid[i] = p.perNode
	}
	sys.Step("fuzz", grid, 0, func(c rt.Ctx) {
		g := c.Group()
		counts := make([]int, g.Size)
		idx := make([]uint64, g.Size)
		val := make([]uint64, g.Size)
		dst := make([]int, g.Size)
		node := uint64(c.Node())
		g.Vector(func(l int) {
			gid := uint64(g.GlobalID(l))
			counts[l] = int(graph.Hash64(p.seed^node<<32^gid) % 4)
		})
		g.PredicatedLoop(counts, 2, func(i int, active []bool) {
			// Mixed op per (lane, iter): 0 => Inc, 1 => Put, 2 => AM.
			op := graph.Hash64(p.seed^uint64(i)) % 3
			g.VectorMasked(2, active, func(l int) {
				gid := uint64(g.GlobalID(l))
				hv := graph.Hash64(p.seed ^ node<<40 ^ gid<<8 ^ uint64(i))
				switch op {
				case 0:
					idx[l] = hv % uint64(p.arrLen)
					val[l] = 1 + hv%7
				case 1:
					idx[l] = node*uint64(p.perNode) + gid // private slot
					val[l] = hv | 1
				case 2:
					dst[l] = int(hv % uint64(p.nodes))
					idx[l] = hv
					val[l] = hv >> 7
				}
			})
			switch op {
			case 0:
				c.Inc(acc, idx, val, active)
			case 1:
				c.Put(slots, idx, val, active)
			case 2:
				c.AM(h, dst, idx, val, active)
			}
		})
	})

	var am uint64
	for i := 0; i < p.nodes; i++ {
		am += amTotal[i].v
	}
	return acc.Sum(), checksum(slots), am
}

func checksum(a *pgas.Array) uint64 {
	var s uint64
	for i := uint64(0); i < uint64(a.Len()); i++ {
		s = s*1099511628211 + a.Load(i)
	}
	return s
}

// TestQuickAllModelsEquivalent: for random programs, every networking
// model produces the identical final global state.
func TestQuickAllModelsEquivalent(t *testing.T) {
	systems := append(models.Names(), "cpu-only")
	f := func(seed uint64) bool {
		p := program{seed: seed, nodes: 3, perNode: 512, arrLen: 1 << 10}
		var ref [3]uint64
		for i, name := range systems {
			sys := models.New(name, p.nodes, nil)
			inc, put, am := p.run(sys)
			sys.Close()
			if i == 0 {
				ref = [3]uint64{inc, put, am}
				continue
			}
			if inc != ref[0] || put != ref[1] || am != ref[2] {
				t.Logf("seed %d: %s disagrees with %s: inc %d/%d put %x/%x am %d/%d",
					seed, name, systems[0], inc, ref[0], put, ref[1], am, ref[2])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
