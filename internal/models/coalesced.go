package models

import (
	"gravel/internal/core"
	"gravel/internal/pgas"
	"gravel/internal/rt"
	"gravel/internal/simt"
	"gravel/internal/timemodel"
	"gravel/internal/wire"
)

// scratchPerLane is the scratchpad the coalesced-APIs counting sort
// consumes per work-item (§3.3: a 256-WI WG uses 4 kB — 16 bytes/WI).
const scratchPerLane = 16

// Coalesced is the §3.3 model (GPUnet/GPUrdma style): work-groups
// counting-sort their messages by destination in scratchpad, then invoke
// one synchronous coalesced send per destination. Without GPU-wide
// aggregation, each send becomes its own (small) wire packet; with it
// (the "coalesced APIs + Gravel aggregation" bar of Figure 15), the
// per-WG lists are repacked into 64 kB per-node queues by the CPU.
type Coalesced struct {
	*core.Cluster
	gpuWide bool
	sb      []*sendBuffers
}

// NewCoalesced builds the model over cfg's fabric; gpuWide enables
// GPU-wide aggregation. Sends (per-WG packets, or repacked per-node
// queues with gpuWide) travel through the cluster's fabric, so the
// model runs in-process or multi-process alike; on a multi-process
// fabric only the hosted node gets aggregation buffers.
func NewCoalesced(cfg Config, gpuWide bool) *Coalesced {
	if cfg.Params == nil {
		cfg.Params = timemodel.Default()
	}
	name := "coalesced"
	if gpuWide {
		name = "coalesced+agg"
	}
	cl := core.New(cfg.coreConfig(name))
	co := &Coalesced{Cluster: cl, gpuWide: gpuWide}
	if gpuWide {
		co.sb = make([]*sendBuffers, cfg.Nodes)
		for i := range co.sb {
			if !cl.Fabric().Hosts(i) {
				continue
			}
			co.sb[i] = newSendBuffers(cl, cl.Node(i), cfg.Params.PerNodeQueueBytes, true)
		}
	}
	return co
}

// Step implements rt.System. Communication overlaps with computation
// (sends are initiated during the kernel), but each WG's sends are
// synchronous. The counting sort's scratchpad demand lowers occupancy.
func (co *Coalesced) Step(name string, grid []int, scratchPerWG int, k rt.Kernel) {
	scratch := scratchPerWG + scratchPerLane*co.WGSize()
	co.LaunchAll(grid, scratch, func(n *core.Node, g *simt.Group) rt.Ctx {
		cc := &coalCtx{n: n, g: g, co: co}
		return cc
	}, k)
	if co.gpuWide {
		for _, sb := range co.sb {
			if sb != nil {
				sb.flushAll()
			}
		}
	}
	co.Quiesce()
	co.StepBarrier()
	co.EndPhaseOverlapped(name)
}

// Close implements rt.System; it also flushes any straggling buffers.
func (co *Coalesced) Close() {
	co.Cluster.Close()
}

// coalCtx implements the coalesced send path for one work-group.
type coalCtx struct {
	n  *core.Node
	g  *simt.Group
	co *Coalesced

	allOn []bool
	mask  []bool
	dests []int
	rem   []bool
	aBuf  []uint64
	vBuf  []uint64
	cBuf  []uint64
}

// Node implements rt.Ctx.
func (c *coalCtx) Node() int { return c.n.ID }

// Nodes implements rt.Ctx.
func (c *coalCtx) Nodes() int { return c.co.Nodes() }

// Group implements rt.Ctx.
func (c *coalCtx) Group() *simt.Group { return c.g }

func (c *coalCtx) ensure() {
	if len(c.mask) < c.g.Size {
		c.mask = make([]bool, c.g.Size)
		c.dests = make([]int, c.g.Size)
		c.rem = make([]bool, c.g.Size)
		c.aBuf = make([]uint64, c.g.Size)
		c.vBuf = make([]uint64, c.g.Size)
		c.cBuf = make([]uint64, c.g.Size)
		c.allOn = make([]bool, c.g.Size)
		for i := range c.allOn {
			c.allOn[i] = true
		}
	}
}

// maskOf applies the rt.Ctx lane-mask convention (nil = all lanes,
// else exactly WG-sized), funneling violations through core.CheckMask.
func (c *coalCtx) maskOf(verb string, active []bool) []bool {
	c.ensure()
	if active == nil {
		return c.allOn[:c.g.Size]
	}
	core.CheckMask(verb, active, c.g.Size)
	return active
}

// offload counting-sorts the WG's messages by destination (Figure 4c
// lines 18-25) and issues one coalesced send per destination.
func (c *coalCtx) offload(cmd uint64, destOf func(lane int) int, a, v []uint64, active []bool) {
	g := c.g
	c.ensure()
	nodes := c.co.Nodes()
	p := c.co.Params()

	any := false
	local, rem := 0, 0
	g.VectorMasked(1, active, func(l int) {
		c.dests[l] = destOf(l)
		any = true
		if c.dests[l] == c.n.ID {
			local++
		} else {
			rem++
		}
	})
	if !any {
		return
	}
	c.n.LocalOps.Add(int64(local))
	c.n.RemoteOps.Add(int64(rem))

	// Counting sort in scratchpad: a handful of WG-wide passes.
	g.ChargeInstr(6)
	g.Barrier()
	g.Barrier()

	// One sync_inc_list per destination (Figure 4c lines 27-29): SIMT
	// utilization degrades with the destination count.
	for d := 0; d < nodes; d++ {
		count := 0
		for l := 0; l < g.Size; l++ {
			if active[l] && c.dests[l] == d {
				c.aBuf[count] = a[l]
				c.vBuf[count] = v[l]
				count++
			}
		}
		if count == 0 {
			continue
		}
		g.ChargeAtomics(1)
		g.ChargeInstr(2)
		g.ChargeMessages(count)
		if c.co.gpuWide {
			// Lists are handed to the CPU aggregator for repacking into
			// large per-node queues.
			c.co.sb[c.n.ID].appendList(d, cmd, c.aBuf, c.vBuf, count)
			continue
		}
		// Synchronous send of this WG's list as its own packet; the WG
		// blocks for the NIC round trip.
		b := wire.NewBuilder(d, count*wire.MsgWireBytes)
		for m := 0; m < count; m++ {
			b.Append(cmd, c.aBuf[m], c.vBuf[m])
		}
		buf, msgs := b.Take()
		c.co.Fabric().Send(c.n.ID, d, buf, msgs)
		g.ChargeCycles(c.n.GPU.NsToCycles(p.AlphaNs / 2))
	}
}

// offloadCmds is offload with a per-lane command word (PUT_SIGNAL
// carries the lane's signal cell in its command).
func (c *coalCtx) offloadCmds(cmdOf func(lane int) uint64, destOf func(lane int) int, a, v []uint64, active []bool) {
	g := c.g
	c.ensure()
	nodes := c.co.Nodes()
	p := c.co.Params()

	any := false
	local, rem := 0, 0
	g.VectorMasked(1, active, func(l int) {
		c.dests[l] = destOf(l)
		any = true
		if c.dests[l] == c.n.ID {
			local++
		} else {
			rem++
		}
	})
	if !any {
		return
	}
	c.n.LocalOps.Add(int64(local))
	c.n.RemoteOps.Add(int64(rem))

	g.ChargeInstr(6)
	g.Barrier()
	g.Barrier()

	for d := 0; d < nodes; d++ {
		count := 0
		for l := 0; l < g.Size; l++ {
			if active[l] && c.dests[l] == d {
				c.cBuf[count] = cmdOf(l)
				c.aBuf[count] = a[l]
				c.vBuf[count] = v[l]
				count++
			}
		}
		if count == 0 {
			continue
		}
		g.ChargeAtomics(1)
		g.ChargeInstr(2)
		g.ChargeMessages(count)
		if c.co.gpuWide {
			c.co.sb[c.n.ID].appendListCmds(d, c.cBuf, c.aBuf, c.vBuf, count)
			continue
		}
		// Per-WG synchronous send — already eager, signals included.
		b := wire.NewBuilder(d, count*wire.MsgWireBytes)
		for m := 0; m < count; m++ {
			b.Append(c.cBuf[m], c.aBuf[m], c.vBuf[m])
		}
		buf, msgs := b.Take()
		c.co.Fabric().Send(c.n.ID, d, buf, msgs)
		g.ChargeCycles(c.n.GPU.NsToCycles(p.AlphaNs / 2))
	}
}

// Inc implements rt.Ctx.
func (c *coalCtx) Inc(arr *pgas.Array, idx, delta []uint64, active []bool) {
	active = c.maskOf("Inc", active)
	cmd := wire.PackCmd(wire.OpInc, 0, arr.ID())
	c.offload(cmd, func(l int) int { return arr.Owner(idx[l]) }, idx, delta, active)
}

// Put implements rt.Ctx: local PUTs store directly, as in Gravel.
func (c *coalCtx) Put(arr *pgas.Array, idx, val []uint64, active []bool) {
	active = c.maskOf("Put", active)
	g := c.g
	me := c.n.ID
	local := 0
	anyRemote := false
	g.VectorMasked(2, active, func(l int) {
		if arr.Owner(idx[l]) == me {
			arr.Store(idx[l], val[l])
			c.rem[l] = false
			local++
		} else {
			c.rem[l] = true
			anyRemote = true
		}
	})
	c.n.LocalOps.Add(int64(local))
	if anyRemote {
		cmd := wire.PackCmd(wire.OpPut, 0, arr.ID())
		c.offload(cmd, func(l int) int { return arr.Owner(idx[l]) }, idx, val, c.rem)
	}
	for l := 0; l < g.Size; l++ {
		c.rem[l] = false
	}
}

// AM implements rt.Ctx.
func (c *coalCtx) AM(h uint8, dest []int, a, b []uint64, active []bool) {
	active = c.maskOf("AM", active)
	cmd := wire.PackCmd(wire.OpAM, h, 0)
	c.offload(cmd, func(l int) int { return dest[l] }, a, b, active)
}

// PutSignal implements rt.Ctx: one ordered PUT_SIGNAL command per
// lane, resolved at the data cell's owner. Without GPU-wide
// aggregation the per-WG synchronous send is already eager; with it,
// the staging queue flushes per signal (sendBuffers.appendListCmds).
func (c *coalCtx) PutSignal(arr *pgas.Array, idx, val []uint64, sig *pgas.Array, sigIdx []uint64, active []bool) {
	active = c.maskOf("PutSignal", active)
	core.CheckSignalPairs(c.n.ID, arr, idx, sig, sigIdx, active)
	dataID, sigID := arr.ID(), sig.ID()
	c.offloadCmds(func(l int) uint64 {
		return wire.PackSigCmd(dataID, sigID, uint32(sigIdx[l]))
	}, func(l int) int { return arr.Owner(idx[l]) }, idx, val, active)
}

// WaitUntil implements rt.Ctx.
func (c *coalCtx) WaitUntil(sig *pgas.Array, sigIdx, until []uint64, active []bool) {
	active = c.maskOf("WaitUntil", active)
	var progress func()
	if c.co.gpuWide {
		progress = c.co.sb[c.n.ID].flushAll
	}
	core.WaitUntilOn(c.co.Params(), c.n, c.g, sig, sigIdx, until, active, progress)
}

var (
	_ rt.System = (*Coalesced)(nil)
	_ rt.Ctx    = (*coalCtx)(nil)
)
