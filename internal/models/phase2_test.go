package models_test

import (
	"testing"

	"gravel/internal/apps/mer"
	"gravel/internal/models"
)

// TestMerPhase2AcrossModels: the AM request/reply traversal must work
// (and agree) under every networking model, since HostAM cascades ride
// the shared quiescence protocol.
func TestMerPhase2AcrossModels(t *testing.T) {
	cfg := mer.Config{GenomeLen: 8000, ReadsPerNode: 120, ReadLen: 60, K: 15, Seed: 6, ErrorPerMille: 8}
	want := mer.ReferencePhase2(cfg, 3)
	for _, name := range allSystems() {
		sys := models.New(name, 3, nil)
		_, r2 := mer.RunFull(sys, cfg)
		sys.Close()
		if r2.Contigs != want.Contigs || r2.TotalLen != want.TotalLen || r2.UU != want.UU {
			t.Errorf("%s: got {%d contigs, %d len, %d UU}, want {%d, %d, %d}",
				name, r2.Contigs, r2.TotalLen, r2.UU, want.Contigs, want.TotalLen, want.UU)
		}
	}
}
