package models_test

import (
	"testing"

	"gravel/internal/apps/color"
	"gravel/internal/apps/gups"
	"gravel/internal/apps/kmeans"
	"gravel/internal/apps/mer"
	"gravel/internal/apps/pagerank"
	"gravel/internal/apps/sssp"
	"gravel/internal/graph"
	"gravel/internal/models"
	"gravel/internal/rt"
)

// allSystems includes the six Figure 15 systems plus the Figure 13
// CPU-only baseline.
func allSystems() []string {
	return append(models.Names(), "cpu-only")
}

// TestAllModelsAgreeOnGUPS checks functional equivalence of every
// networking model: same inputs, same final table.
func TestAllModelsAgreeOnGUPS(t *testing.T) {
	const nodes = 4
	cfg := gups.Config{TableSize: 1 << 13, UpdatesPerNode: 1 << 12, Seed: 5}
	for _, name := range allSystems() {
		sys := models.New(name, nodes, nil)
		res := gups.Run(sys, cfg)
		ns := sys.NetStats()
		sys.Close()
		if res.Sum != uint64(res.Updates) {
			t.Errorf("%s: sum=%d updates=%d", name, res.Sum, res.Updates)
		}
		if res.Ns <= 0 {
			t.Errorf("%s: no virtual time", name)
		}
		if ns.LocalOps+ns.RemoteOps != res.Updates {
			t.Errorf("%s: ops=%d, want %d", name, ns.LocalOps+ns.RemoteOps, res.Updates)
		}
	}
}

func TestAllModelsAgreeOnPageRank(t *testing.T) {
	const nodes = 4
	g := graph.Random(500, 6, 9)
	want := pagerank.Reference(g, 3)
	var wantSum uint64
	for _, r := range want {
		wantSum += r
	}
	for _, name := range allSystems() {
		sys := models.New(name, nodes, nil)
		res := pagerank.Run(sys, pagerank.Config{G: g, Iters: 3})
		sys.Close()
		if got := res.RankSum; got != float64(wantSum)/pagerank.Scale {
			t.Errorf("%s: rank sum %v, want %v", name, got, float64(wantSum)/pagerank.Scale)
		}
	}
}

func TestAllModelsAgreeOnSSSP(t *testing.T) {
	const nodes = 4
	g := graph.Random(400, 6, 12)
	want := sssp.ChecksumDists(sssp.Reference(g, 0))
	for _, name := range allSystems() {
		sys := models.New(name, nodes, nil)
		res := sssp.Run(sys, sssp.Config{G: g, Source: 0})
		sys.Close()
		if res.Checksum != want {
			t.Errorf("%s: distance checksum mismatch", name)
		}
	}
}

func TestAllModelsAgreeOnColor(t *testing.T) {
	const nodes = 4
	g := graph.Random(300, 6, 15)
	for _, name := range allSystems() {
		sys := models.New(name, nodes, nil)
		res := color.Run(sys, color.Config{G: g, Seed: 3})
		if res.Colored != int64(g.N) {
			t.Errorf("%s: colored %d of %d", name, res.Colored, g.N)
		} else if err := color.Validate(g, res.ColorAt); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		sys.Close()
	}
}

func TestAllModelsAgreeOnKmeans(t *testing.T) {
	const nodes = 4
	cfg := kmeans.Config{PointsPerNode: 1000, K: 8, Iters: 3, Seed: 11}
	want := kmeans.Reference(cfg, nodes)
	for _, name := range allSystems() {
		sys := models.New(name, nodes, nil)
		res := kmeans.Run(sys, cfg)
		sys.Close()
		for i := range want {
			if res.Centroids[i] != want[i] {
				t.Errorf("%s: centroid[%d] mismatch", name, i)
				break
			}
		}
	}
}

func TestAllModelsAgreeOnMer(t *testing.T) {
	const nodes = 4
	cfg := mer.Config{GenomeLen: 10000, ReadsPerNode: 150, ReadLen: 60, K: 15, Seed: 2}
	ref := mer.ReferenceCounts(cfg, nodes)
	for _, name := range allSystems() {
		sys := models.New(name, nodes, nil)
		res := mer.Run(sys, cfg)
		sys.Close()
		if res.Inserted != res.Expected {
			t.Errorf("%s: inserted %d, want %d", name, res.Inserted, res.Expected)
		}
		if res.Distinct != int64(len(ref)) {
			t.Errorf("%s: distinct %d, want %d", name, res.Distinct, len(ref))
		}
	}
}

// TestModelOrderingGUPS sanity-checks the Figure 15 shape on GUPS at
// 4 nodes: gravel beats msg-per-lane by a wide margin, and coalesced+agg
// lands close to gravel.
func TestModelOrderingGUPS(t *testing.T) {
	const nodes = 4
	cfg := gups.Config{TableSize: 1 << 14, UpdatesPerNode: 1 << 14, Seed: 5}
	ns := map[string]float64{}
	for _, name := range allSystems() {
		sys := models.New(name, nodes, nil)
		res := gups.Run(sys, cfg)
		sys.Close()
		ns[name] = res.Ns
	}
	if ns["msg-per-lane"] < 4*ns["gravel"] {
		t.Errorf("msg-per-lane (%.0f) should be far slower than gravel (%.0f)", ns["msg-per-lane"], ns["gravel"])
	}
	if ns["coprocessor"] < ns["gravel"] {
		t.Errorf("coprocessor (%.0f) should be slower than gravel (%.0f)", ns["coprocessor"], ns["gravel"])
	}
}

// TestSystemsReportStats ensures every model fills in NetStats.
func TestSystemsReportStats(t *testing.T) {
	for _, name := range allSystems() {
		sys := models.New(name, 2, nil)
		gups.Run(sys, gups.Config{TableSize: 1 << 10, UpdatesPerNode: 1 << 10, Seed: 1})
		st := sys.NetStats()
		if st.WirePackets == 0 && name != "cpu-only" {
			t.Errorf("%s: no wire packets recorded", name)
		}
		if sys.Name() != name && !(name == "cpu-only" && sys.Name() == "cpu-only") {
			t.Errorf("Name() = %q, want %q", sys.Name(), name)
		}
		var _ rt.System = sys
		sys.Close()
	}
}
