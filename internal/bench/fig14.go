package bench

import (
	"gravel/internal/apps/gups"
	"gravel/internal/models"
	"gravel/internal/stats"
	"gravel/internal/timemodel"
)

// Fig14QueueSizes are the per-node queue capacities swept in Figure 14.
var Fig14QueueSizes = []int{64, 512, 4096, 32768, 262144}

// Fig14 reproduces Figure 14 (aggregation sensitivity): GUPS throughput
// versus per-node queue size at 1/2/4/8 nodes. Larger queues amortize
// per-message wire overhead until ~32-64 kB, after which returns
// diminish.
func Fig14(scale float64, params *timemodel.Params) *Table {
	t := &Table{
		Title:  "Figure 14: GUPS vs per-node queue size (giga-updates/s of virtual time)",
		Header: append([]string{"queue size"}, nodeHeaders()...),
	}
	s := func(base int) int {
		v := int(float64(base) * scale)
		if v < 64 {
			v = 64
		}
		return v
	}
	cfg := gups.Config{TableSize: s(1 << 20), UpdatesPerNode: s(180_000), Seed: 13}
	for _, qb := range Fig14QueueSizes {
		row := []string{stats.HumanBytes(int64(qb))}
		for _, n := range Fig12NodeCounts {
			p := cloneParams(params)
			p.PerNodeQueueBytes = qb
			sys := models.Gravel(n, p)
			res := gups.Run(sys, cfg)
			sys.Close()
			row = append(row, F(res.GUPS))
		}
		t.AddRow(row...)
	}
	t.Note("paper: multi-node rates improve with queue size and plateau past 32 kB; 64 kB chosen as the default")
	return t
}
