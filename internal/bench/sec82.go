package bench

import (
	"gravel/internal/apps/gups"
	"gravel/internal/core"
	"gravel/internal/simt"
	"gravel/internal/timemodel"
)

// Sec82 reproduces §8.2 (diverged WG-level operation analysis): GUPS-mod
// — where each WI performs a random number of updates and 95 % perform
// none — under software predication, WG-granularity control flow
// (emulated in the paper with WF-sized WGs) and software fine-grain
// barriers. Reported as speedup over software predication.
func Sec82(scale float64, params *timemodel.Params) *Table {
	t := &Table{
		Title:  "§8.2: diverged WG-level operations on GUPS-mod (speedup vs software predication)",
		Header: []string{"mechanism", "virtual ms", "speedup"},
	}
	s := func(base int) int {
		v := int(float64(base) * scale)
		if v < 1024 {
			v = 1024
		}
		return v
	}
	cfg := gups.ModConfig{TableSize: s(1 << 18), WIsPerNode: s(1 << 19), Seed: 1}
	modes := []struct {
		name string
		mode simt.DivergenceMode
	}{
		{"software predication", simt.SoftwarePredication},
		{"WG-granularity control flow", simt.WGReconvergence},
		{"fine-grain barrier (sw emulated)", simt.FineGrainBarrier},
	}
	var base float64
	for i, m := range modes {
		sys := core.New(core.Config{Nodes: 8, Params: cloneParams(params), DivMode: m.mode})
		res := gups.RunMod(sys, cfg)
		sys.Close()
		if i == 0 {
			base = res.Ns
		}
		t.AddRow(m.name, F(res.Ns/1e6), F(base/res.Ns))
	}
	t.Note("paper: WG-granularity control flow 1.28x, software fbar 1.06x (a lower bound — hardware fbars would do better)")
	return t
}
