package bench

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
)

// Table2 reproduces Table 2 (GUPS lines of code per model) in the form
// this reproduction admits: the paper counts per-model application code;
// here applications are written once against rt.System, so the burden a
// model imposes shows up as the size of its runtime/offload path
// instead. Both our measured counts and the paper's are printed.
func Table2() *Table {
	t := &Table{
		Title:  "Table 2: GUPS code size per model (lines)",
		Header: []string{"model", "this repo (runtime+ctx)", "paper (host+GPU app code)"},
	}
	rows := []struct {
		model string
		files []string
		paper string
	}{
		{"msg-per-lane & Gravel", []string{"internal/core/ctx.go", "internal/apps/gups/gups.go"}, "193"},
		{"coprocessor", []string{"internal/models/coprocessor.go", "internal/models/sendbuf.go", "internal/apps/gups/gups.go"}, "342"},
		{"coalesced APIs", []string{"internal/models/coalesced.go", "internal/models/sendbuf.go", "internal/apps/gups/gups.go"}, "318"},
	}
	root := repoRoot()
	for _, r := range rows {
		total := 0
		for _, f := range r.files {
			total += countLines(filepath.Join(root, f))
		}
		t.AddRow(r.model, itoa(total), r.paper)
	}
	t.Note("paper's counts are GUPS application code; ours are the model's offload path plus the (shared) GUPS app — the ordering (coprocessor > coalesced > gravel) is the comparable signal")
	return t
}

// repoRoot locates the repository root relative to this source file.
func repoRoot() string {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		return "."
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

// countLines returns the number of non-blank lines in a file, 0 if
// unreadable (e.g. when the binary runs outside the repo).
func countLines(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	n := 0
	for _, ln := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(ln) != "" {
			n++
		}
	}
	return n
}
