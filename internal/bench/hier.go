package bench

import (
	"fmt"

	"gravel/internal/apps/gups"
	"gravel/internal/core"
	"gravel/internal/timemodel"
)

// Hier projects the paper's §10 scaling discussion: beyond the paper's
// eight nodes, flat aggregation keeps one per-node queue per
// destination, so per-queue fill rate — and therefore wire message size
// — shrinks as the cluster grows; a two-level hierarchy (16-node groups
// in the paper's example) aggregates across groups and keeps messages
// large at the price of one indirect hop.
//
// The experiment runs GUPS weak-scaled (fixed updates per node, split
// over several kernel launches so per-phase traffic per destination is
// realistic) on 8-128 nodes, flat vs hierarchical.
func Hier(scale float64, params *timemodel.Params) *Table {
	t := &Table{
		Title: "§10 projection: flat vs two-level hierarchical aggregation (GUPS, weak scaling)",
		Header: []string{"nodes", "flat GUPS", "flat avg pkt (B)", "hier GUPS",
			"hier avg pkt (B)", "hier/flat"},
	}
	s := func(base int) int {
		v := int(float64(base) * scale)
		if v < 64 {
			v = 64
		}
		return v
	}
	perNode := s(120_000)
	for _, nodes := range []int{8, 16, 32, 64, 128} {
		group := 4
		for group*group < nodes {
			group++
		}
		cfg := gups.Config{TableSize: s(1<<20) * nodes / 8, UpdatesPerNode: perNode, Seed: 13, Steps: 64}

		flat := core.New(core.Config{Nodes: nodes, Params: cloneParams(params)})
		rf := gups.Run(flat, cfg)
		fPkt := flat.NetStats().AvgPacketBytes
		flat.Close()

		hier := core.New(core.Config{Nodes: nodes, Params: cloneParams(params), GroupSize: group})
		rh := gups.Run(hier, cfg)
		hPkt := hier.NetStats().AvgPacketBytes
		if rh.Sum != uint64(rh.Updates) || rf.Sum != uint64(rf.Updates) {
			panic("hier: functional mismatch")
		}
		hier.Close()

		t.AddRow(fmt.Sprintf("%d (groups of %d)", nodes, group),
			F(rf.GUPS), F(fPkt), F(rh.GUPS), F(hPkt), F(rh.GUPS/rf.GUPS))
	}
	t.Note("paper §10: two 16-node aggregation levels would support 256 nodes with one indirect hop")
	t.Note("weak scaling: %d updates per node in 64 kernel launches (thin per-destination traffic, the §10 regime)", perNode)
	return t
}
