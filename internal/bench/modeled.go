package bench

import (
	"gravel/internal/timemodel"
)

// Modeled queue throughput, from the Table 3 cost model. The measured
// columns of Figures 6 and 8 exercise the real Go implementation on the
// host CPU; the modeled columns answer "what would this protocol cost on
// the paper's APU", which is where the paper's absolute numbers come
// from. Both are reported.

// modeledGravelGBs returns the modeled producer-side bandwidth of one
// work-group stream offloading cols messages of rows*8 bytes per
// reservation (§4.1-4.3).
func modeledGravelGBs(p *timemodel.Params, rows, cols int) float64 {
	wfs := (cols + p.WFWidth - 1) / p.WFWidth
	stages := 1
	for s := 1; s < cols; s <<= 1 {
		stages++
	}
	cycles := 2*p.CyclesAtomic + // WriteIdx + WriteTick fetch-adds
		int64(stages)*int64(wfs)*p.CyclesVectorIssue + // prefix-sum
		int64(rows)*int64(wfs)*p.CyclesVectorIssue + // payload writes
		2*p.CyclesBarrier
	ns := float64(cycles) / p.GPUClockHz * 1e9
	bytes := float64(cols * rows * 8)
	gbs := bytes / ns
	// The queue cannot beat the memory system; the paper's plateau is
	// the DDR3 system's effective copy bandwidth shared with consumers.
	const memGBs = 9.0
	if gbs > memGBs {
		gbs = memGBs
	}
	return gbs
}

// cpuLineNs is the modeled cost of moving one cache line on the host
// CPU (DDR3-1600, §4.3's currency for the CPU-only queues).
const cpuLineNs = 20.0

// modeledSPSCGBs returns the modeled bandwidth of the padded CPU SPSC
// ring: every message moves a padded read index, a padded write index
// and ceil(size/64) payload lines (§4.3: "three cache lines are
// read/written to send an eight-byte message").
func modeledSPSCGBs(size int) float64 {
	lines := 2 + (size+63)/64
	ns := float64(lines) * cpuLineNs
	return float64(size) / ns
}

// modeledMPMCGBs returns the modeled bandwidth of the padded CPU MPMC
// ticket queue with two producers and two consumers: per message, four
// atomic RMWs (~20 ns each under contention), a padded header line and
// the payload lines — but two consumer threads drain in parallel.
func modeledMPMCGBs(size int) float64 {
	lines := 2 + (size+63)/64 // padded header + ticket state + payload
	ns := 4*20.0 + float64(lines)*cpuLineNs
	return float64(size) / (ns / 2)
}
