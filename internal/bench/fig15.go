package bench

import (
	"gravel/internal/models"
	"gravel/internal/stats"
	"gravel/internal/timemodel"
)

// Fig15 reproduces Figure 15 (style comparison at eight nodes): every
// workload under every GPU networking model, reported as speedup over
// the plain coprocessor model, plus the geometric mean.
func Fig15(scale float64, params *timemodel.Params) *Table {
	names := models.Names()
	t := &Table{
		Title:  "Figure 15: style comparison at eight nodes (speedup vs coprocessor)",
		Header: append([]string{"workload"}, names...),
	}
	per := make(map[string][]float64)
	for _, wl := range Workloads(scale) {
		times := make(map[string]float64, len(names))
		for _, name := range names {
			sys := models.New(name, 8, cloneParams(params))
			times[name] = wl.Run(sys)
			sys.Close()
		}
		base := times["coprocessor"]
		row := []string{wl.Name}
		for _, name := range names {
			sp := base / times[name]
			per[name] = append(per[name], sp)
			row = append(row, F(sp))
		}
		t.AddRow(row...)
	}
	geo := []string{"geo. mean"}
	for _, name := range names {
		geo = append(geo, F(stats.GeoMean(per[name])))
	}
	t.AddRow(geo...)
	t.Note("paper: Gravel is equal-or-best everywhere; msg-per-lane collapses on GUPS (~0.01); coalesced+aggregation nearly matches Gravel")
	return t
}
