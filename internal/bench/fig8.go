package bench

import (
	"runtime"
	"sync"
	"time"

	"gravel/internal/queue"
	"gravel/internal/stats"
	"gravel/internal/timemodel"
)

// runSPSC measures the padded single-producer/single-consumer ring.
func runSPSC(totalMsgs, msgBytes int) float64 {
	q := queue.NewSPSC(1024, msgBytes)
	words := q.MsgWords()
	msg := make([]uint64, words)
	for i := range msg {
		msg[i] = uint64(i)
	}
	var sum uint64
	var wg sync.WaitGroup
	start := time.Now()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < totalMsgs; i++ {
			q.Produce(msg)
		}
	}()
	consumed := 0
	for consumed < totalMsgs {
		if q.TryConsume(func(m []uint64) {
			for _, w := range m {
				sum += w
			}
		}) {
			consumed++
		} else {
			runtime.Gosched()
		}
	}
	wg.Wait()
	_ = sum
	return float64(totalMsgs) * float64(msgBytes) / time.Since(start).Seconds() / 1e9
}

// runMPMC measures the padded CPU MPMC baseline with the paper's
// configuration: two producer threads and two consumer threads.
func runMPMC(totalMsgs, msgBytes int) float64 {
	q := queue.NewPaddedMPMC(1024, msgBytes)
	rows := q.Rows
	perProd := totalMsgs / 2

	var wg sync.WaitGroup
	start := time.Now()
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				s := q.Reserve(1)
				for r := 0; r < rows; r++ {
					s.Row(r)[0] = uint64(i)
				}
				s.Commit()
			}
		}(p)
	}
	var cwg sync.WaitGroup
	done := make(chan struct{})
	for c := 0; c < 2; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			var sum uint64
			for {
				if !q.TryConsume(func(payload []uint64, rows, cols, count int) {
					for r := 0; r < rows; r++ {
						sum += payload[r]
					}
				}) {
					select {
					case <-done:
						if q.Empty() {
							return
						}
					default:
					}
					runtime.Gosched()
				}
			}
		}()
	}
	wg.Wait()
	close(done)
	cwg.Wait()
	return float64(perProd*2) * float64(msgBytes) / time.Since(start).Seconds() / 1e9
}

// Fig8Sizes are the Figure 8 message sizes (8 B – 64 kB).
var Fig8Sizes = []int{8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536}

// Fig8 reproduces Figure 8: producer/consumer queue bandwidth versus
// message size for Gravel's queue, the CPU-only SPSC ring and the
// CPU-only padded MPMC queue, against the 7 GB/s network-bandwidth
// reference line.
func Fig8() *Table {
	t := &Table{
		Title:  "Figure 8: queue bandwidth vs message size (GB/s)",
		Header: []string{"msg size", "Gravel (model)", "SPSC (model)", "MPMC (model)", "Gravel (meas)", "SPSC (meas)", "MPMC (meas)", "network bw"},
	}
	p := timemodel.Default()
	for _, size := range Fig8Sizes {
		rows := size / 8
		if rows < 1 {
			rows = 1
		}
		// Bound each data point's byte volume so large sizes stay fast
		// (and the whole sweep finishes quickly even on small hosts).
		budgetBytes := 32 << 20
		msgs := budgetBytes / size
		cols := 256
		slots := 64
		if rows*cols*8 > 4<<20 {
			// Large messages: fewer columns keep slots within memory
			// reason; the WG still amortizes one reservation per slot.
			cols = (4 << 20) / (rows * 8)
			if cols < 1 {
				cols = 1
			}
			slots = 8
		}
		if msgs < cols*8 {
			msgs = cols * 8
		}
		prods, cons := benchWorkers()
		gravel := runGravelQueue(msgs, rows, cols, prods, cons, slots)
		spscMsgs := msgs
		if spscMsgs > 1<<19 {
			spscMsgs = 1 << 19
		}
		spsc := runSPSC(spscMsgs, size)
		mpmc := runMPMC(spscMsgs, size)
		mcols := 256
		if size > 2048 {
			mcols = 16
		}
		t.AddRow(stats.HumanBytes(int64(size)),
			F(modeledGravelGBs(p, rows, mcols)), F(modeledSPSCGBs(size)), F(modeledMPMCGBs(size)),
			F(gravel), F(spsc), F(mpmc), "7.00")
	}
	t.Note("paper: Gravel sustains ~7 GB/s at 32 B (network rate); CPU queues collapse below a cache line due to index+payload padding (3 cache lines per 8 B message)")
	t.Note("modeled columns use the Table 3 cost model (the paper's hardware); measured columns exercise the real Go queues on this host")
	return t
}
