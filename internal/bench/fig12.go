package bench

import (
	"gravel/internal/models"
	"gravel/internal/stats"
	"gravel/internal/timemodel"
)

// Fig12NodeCounts are the cluster sizes of Figure 12.
var Fig12NodeCounts = []int{1, 2, 4, 8}

// Fig12Models are the send-path aggregation strategies the scalability
// sweep covers: the paper's system and the archive-aggregation rival.
var Fig12Models = []string{"gravel", "gravel-archive"}

// Fig12 reproduces Figure 12 (Gravel's scalability): speedup of each
// workload at 1/2/4/8 nodes relative to one node, plus the geometric
// mean, for both aggregation strategies. The paper reports a 5.3x
// average speedup at eight nodes.
func Fig12(scale float64, params *timemodel.Params) *Table {
	t := &Table{
		Title:  "Figure 12: Gravel's scalability (speedup vs 1 node)",
		Header: append([]string{"workload", "strategy"}, nodeHeaders()...),
	}
	wls := Workloads(scale)
	for _, model := range Fig12Models {
		speedups := make(map[int][]float64) // nodes -> per-workload speedups
		for _, wl := range wls {
			base := 0.0
			row := []string{wl.Name, model}
			for _, n := range Fig12NodeCounts {
				sys := models.New(model, n, cloneParams(params))
				ns := wl.Run(sys)
				sys.Close()
				if n == 1 {
					base = ns
				}
				sp := base / ns
				speedups[n] = append(speedups[n], sp)
				row = append(row, F(sp))
			}
			t.AddRow(row...)
		}
		geo := []string{"geo. mean", model}
		for _, n := range Fig12NodeCounts {
			geo = append(geo, F(stats.GeoMean(speedups[n])))
		}
		t.AddRow(geo...)
	}
	t.Note("paper: geo. mean 5.3x at 8 nodes; GUPS/kmeans/mer near-linear, SSSP-1 worst")
	return t
}

func nodeHeaders() []string {
	h := make([]string, len(Fig12NodeCounts))
	for i, n := range Fig12NodeCounts {
		h[i] = itoa(n) + " node"
		if n > 1 {
			h[i] += "s"
		}
	}
	return h
}

// cloneParams copies params so per-run mutation (queue sweeps) cannot
// leak; nil yields defaults.
func cloneParams(p *timemodel.Params) *timemodel.Params {
	if p == nil {
		return timemodel.Default()
	}
	c := *p
	return &c
}
