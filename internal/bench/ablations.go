package bench

import (
	"fmt"

	"gravel/internal/apps/gups"
	"gravel/internal/core"
	"gravel/internal/queue"
	"gravel/internal/timemodel"
)

// Ablations exercises the design choices DESIGN.md calls out beyond the
// paper's own figures:
//
//  1. offload granularity — the GPU-side cost of offloading GUPS's
//     messages with 1/2/4-WF work-groups (the application-level view of
//     Figure 6's "WG-level offload is ~3x faster", §3.4). GUPS
//     end-to-end time is network-thread-bound, so the GPU clock and the
//     queue-protocol atomics per message are the quantities that move.
//  2. local-atomic routing — §6 serializes even node-local atomics
//     through the network thread; the ablation compares that against
//     executing local increments as concurrent GPU RMWs. The paper
//     reports its choice was faster on its system.
//  3. hardware aggregator — §8.1 proposes replacing the polling CPU
//     thread with dedicated logic; the ablation shows the end-to-end
//     effect is small (the network thread dominates) while the CPU core
//     is freed — the paper's energy/efficiency argument.
//  4. slot padding — measured throughput of the padded CPU MPMC vs the
//     same protocol without padding, isolating the false-sharing cost
//     §4.3 attributes to CPU queue layouts.
func Ablations(scale float64, params *timemodel.Params) *Table {
	t := &Table{
		Title:  "Ablations: Gravel design choices",
		Header: []string{"ablation", "setting", "result"},
	}
	s := func(base int) int {
		v := int(float64(base) * scale)
		if v < 64 {
			v = 64
		}
		return v
	}
	cfg := gups.Config{TableSize: s(1 << 20), UpdatesPerNode: s(1_440_000) / 8, Seed: 13}

	// 1. Offload granularity: GPU-side offload cost per WG width.
	for _, wfs := range []int{1, 2, 4} {
		p := cloneParams(params)
		cl := core.New(core.Config{Nodes: 8, Params: p, WGSize: 64 * wfs})
		gups.Run(cl, cfg)
		var gpuNs float64
		var atomics, msgs int64
		for i := 0; i < 8; i++ {
			n := cl.Node(i)
			gpuNs += n.Clocks.Snapshot().GPU
			atomics += n.GPU.Counters.Atomics.Load()
			msgs += n.GPU.Counters.Messages.Load()
		}
		cl.Close()
		t.AddRow("offload granularity", fmt.Sprintf("%d WF/WG", wfs),
			fmt.Sprintf("GPU offload time %s ms, %.4f atomics/msg", F(gpuNs/1e6), float64(atomics)/float64(msgs)))
	}

	// 2. Local-atomic routing (§6): via network thread vs direct GPU
	// RMWs, on one node (all-local) and eight nodes.
	for _, nodes := range []int{1, 8} {
		c2 := cfg
		c2.UpdatesPerNode = s(1_440_000) / nodes
		for _, direct := range []bool{false, true} {
			p := cloneParams(params)
			cl := core.New(core.Config{Nodes: nodes, Params: p, LocalAtomicsDirect: direct})
			res := gups.Run(cl, c2)
			cl.Close()
			mode := "via network thread (paper)"
			if direct {
				mode = "direct GPU RMWs"
			}
			t.AddRow("local atomics", fmt.Sprintf("%d node(s), %s", nodes, mode),
				fmt.Sprintf("GUPS time %s ms", F(res.Ns/1e6)))
		}
	}

	// 3. Hardware aggregator (§8.1): dedicated logic repacks messages at
	// a fraction of the CPU cost and frees the CPU core that otherwise
	// spends ~65% of its time polling.
	for _, hw := range []bool{false, true} {
		p := cloneParams(params)
		label := "CPU thread (paper prototype)"
		if hw {
			label = "dedicated hardware (§8.1 proposal)"
			p.AggPerMsgNs = 1
			p.AggPerSlotNs = 5
			p.AggPerFlushNs = 40
		}
		cl := core.New(core.Config{Nodes: 8, Params: p})
		res := gups.Run(cl, cfg)
		st := cl.NetStats()
		var joules float64
		for i := 0; i < 8; i++ {
			snap := cl.Node(i).Clocks.Snapshot()
			// Poll time spans the whole run on the dedicated core.
			snap.AggIdle = res.Ns - snap.Agg
			joules += timemodel.EnergyJ(snap, hw)
		}
		cl.Close()
		t.AddRow("aggregator", label,
			fmt.Sprintf("GUPS time %s ms, CPU busy aggregating %.0f%%, energy %.2g J", F(res.Ns/1e6), 100*st.AggBusyFrac, joules))
	}

	// 4. Padding (false sharing) on the CPU MPMC protocol, 8 B messages.
	padded := runMPMC(1<<18, 8)
	unpadded := runUnpaddedMPMC(1 << 18)
	t.AddRow("MPMC slot padding", "padded (paper layout)", fmt.Sprintf("%s GB/s measured", F(padded)))
	t.AddRow("MPMC slot padding", "unpadded (false sharing)", fmt.Sprintf("%s GB/s measured", F(unpadded)))
	t.Note("the network thread keeps GUPS end-to-end time net-bound, so offload granularity shows up in GPU time, not total time")
	t.Note("padding comparison is host-measured; on a single-core host the false-sharing penalty largely disappears")
	return t
}

// runUnpaddedMPMC measures the Gravel protocol with one 8-byte message
// per slot and no padding: adjacent slots share cache lines.
func runUnpaddedMPMC(totalMsgs int) float64 {
	return runGravelQueueRaw(totalMsgs, queue.NewGravel(1024, 1, 1), 2, 2)
}
