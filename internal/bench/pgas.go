package bench

import (
	"gravel/internal/models"
	"gravel/internal/rt"
	"gravel/internal/timemodel"
)

// PGAS sweeps the symmetric-heap verbs. The first half compares the
// two ways to hand a block of data to a remote consumer: a signalled
// put (one PUT_SIGNAL wire record per element, resolver-ordered, eager
// flush) against the pre-verb idiom of a data put followed by a
// separate flag increment (two records per element). The second half
// measures the in-kernel all-reduce built from those verbs
// (rt.DeviceColl) as the team grows.
func PGAS(scale float64, params *timemodel.Params) *Table {
	t := &Table{
		Title:  "PGAS verbs: signalled put vs put+flag, device all-reduce latency",
		Header: []string{"config", "model ms", "wire pkts", "wire KB", "ns/elem"},
	}

	bulk := int(16384 * scale)
	if bulk < 256 {
		bulk = 256
	}

	// transfer runs `steps` producer/consumer rounds of `elems` elements
	// from node 0 into node 1's symmetric bank and reports the consumer-
	// release latency (virtual) plus the wire cost.
	//
	// The signalled variant completes inside one step: PUT_SIGNAL
	// transmits eagerly, so the consumer's in-kernel WaitUntil is
	// released by the real arrivals. The put+flag variant CANNOT wait in
	// the producing step — flag increments may sit in a partially-filled
	// aggregation queue until the end-of-step flush, so an in-kernel
	// waiter would deadlock the launch. It therefore pays a step boundary
	// (quiescence + relaunch) before the consumer may proceed, which is
	// exactly the host round trip the verb pair removes.
	transfer := func(label string, signalled bool, elems, steps int) {
		sys := models.NewSystem("gravel", models.Config{Nodes: 2, Params: cloneParams(params)})
		defer sys.Close()
		sp := sys.Space()
		data := sp.SymAlloc(elems)
		flag := sp.SymAlloc(1)

		produce := func(c rt.Ctx) {
			g := c.Group()
			idx := make([]uint64, g.Size)
			val := make([]uint64, g.Size)
			si := make([]uint64, g.Size)
			one := make([]uint64, g.Size)
			g.Vector(func(l int) {
				idx[l] = data.SymIndex(1, g.GlobalID(l))
				val[l] = uint64(g.GlobalID(l)) + 1
				si[l] = flag.SymIndex(1, 0)
				one[l] = 1
			})
			if signalled {
				c.PutSignal(data, idx, val, flag, si, nil)
				return
			}
			c.Put(data, idx, val, nil)
			c.Inc(flag, si, one, nil)
		}
		consume := func(c rt.Ctx, want uint64) {
			g := c.Group()
			mask := make([]bool, g.Size)
			si := make([]uint64, g.Size)
			until := make([]uint64, g.Size)
			mask[0] = true
			si[0] = flag.SymIndex(1, 0)
			until[0] = want
			c.WaitUntil(flag, si, until, mask)
		}

		t0 := sys.VirtualTimeNs()
		for s := 0; s < steps; s++ {
			want := uint64(s+1) * uint64(elems)
			if signalled {
				sys.Step(label, []int{elems, 1}, 0, func(c rt.Ctx) {
					if c.Node() == 0 {
						produce(c)
					} else {
						consume(c, want)
					}
				})
				continue
			}
			sys.Step(label, []int{elems, 0}, 0, func(c rt.Ctx) { produce(c) })
			sys.Step(label+"-wait", []int{0, 1}, 0, func(c rt.Ctx) { consume(c, want) })
		}
		ns := sys.VirtualTimeNs() - t0
		st := sys.NetStats()
		t.AddRow(label,
			F(ns/1e6),
			itoa(int(st.WirePackets)),
			F(float64(st.WireBytes)/1024),
			F(ns/float64(steps*elems)))
	}
	// Fine-grain: 64-element messages, one consumer release per message.
	// Bulk: four big blocks. The verbs win the first regime (no host
	// round trip per release); aggregation wins the second (the signalled
	// put pays one wire record per element).
	transfer("put_signal 64x64", true, 64, 64)
	transfer("put+flag 64x64", false, 64, 64)
	transfer("put_signal bulk", true, bulk, 4)
	transfer("put+flag bulk", false, bulk, 4)

	// Device all-reduce: one work-group per member, `rounds` back-to-back
	// sum rounds; ns/elem is the per-round latency here. Both schedules
	// sweep the same team sizes: the linear fan-out's O(n²) messages make
	// its per-round cost climb with the team, while recursive doubling's
	// log-depth exchange flattens the curve.
	const rounds = 8
	for _, sched := range []rt.DCSchedule{rt.DCLinear, rt.DCRecDouble} {
		for _, nodes := range []int{2, 4, 8} {
			sys := models.NewSystem("gravel", models.Config{Nodes: nodes, Params: cloneParams(params)})
			dc := rt.NewDeviceCollSched(sys.Space(), nodes, rt.WorldTeam, sched)
			out := sys.Space().SymAlloc(1)
			grid := make([]int, nodes)
			for i := range grid {
				grid[i] = 1
			}
			t0 := sys.VirtualTimeNs()
			sys.Step("allreduce", grid, 0, func(c rt.Ctx) {
				acc := uint64(0)
				for r := 0; r < rounds; r++ {
					acc += dc.AllReduce(c, rt.OpSum, uint64(c.Node())+1)
				}
				out.Store(out.SymIndex(c.Node(), 0), acc)
			})
			ns := sys.VirtualTimeNs() - t0
			st := sys.NetStats()
			want := uint64(rounds) * uint64(nodes) * uint64(nodes+1) / 2
			if out.Load(out.SymIndex(0, 0)) != want {
				panic("bench: device all-reduce folded wrong")
			}
			sys.Close()
			t.AddRow("allreduce "+sched.String()+" nodes="+itoa(nodes),
				F(ns/1e6),
				itoa(int(st.WirePackets)),
				F(float64(st.WireBytes)/1024),
				F(ns/rounds))
		}
	}

	t.Note("put_signal carries data+signal in one ordered wire record; put+flag pays two records per element")
	t.Note("allreduce rows: ns/elem column is ns per all-reduce round (one WG per member, rt.DeviceColl)")
	t.Note("linear all-reduce sends O(n^2) signalled puts per round; recursive doubling sends n*log2(n), flattening the latency curve")
	return t
}
