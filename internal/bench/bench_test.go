package bench

import (
	"strconv"
	"strings"
	"testing"

	"gravel/internal/apps/gups"
	"gravel/internal/core"
	"gravel/internal/models"
	"gravel/internal/simt"
)

// scale for regression tests: small enough to be fast, large enough for
// the shapes to be stable.
const testScale = 0.2

func cell(t *Table, row, col int) float64 {
	v, err := strconv.ParseFloat(t.Rows[row][col], 64)
	if err != nil {
		panic(err)
	}
	return v
}

func rowByName(t *Table, name string) []string {
	for _, r := range t.Rows {
		if r[0] == name {
			return r
		}
	}
	return nil
}

// TestFig12Shape pins the paper's scalability shape: GUPS/kmeans/mer
// near-linear at 8 nodes, SSSP-1 the worst scaler, and a healthy
// geo-mean (the paper reports 5.3x at full scale; the reduced inputs
// land somewhat lower).
func TestFig12Shape(t *testing.T) {
	tb := Fig12(testScale, nil)
	col8 := len(tb.Header) - 1
	get := func(name string) float64 {
		r := rowByName(tb, name)
		if r == nil {
			t.Fatalf("row %q missing", name)
		}
		v, _ := strconv.ParseFloat(r[col8], 64)
		return v
	}
	for _, name := range []string{"GUPS", "kmeans", "mer"} {
		if v := get(name); v < 7.0 {
			t.Errorf("%s 8-node speedup = %.2f, want near-linear (>7)", name, v)
		}
	}
	sssp1 := get("SSSP-1")
	for _, name := range []string{"GUPS", "PR-1", "PR-2", "SSSP-2", "kmeans", "mer"} {
		if v := get(name); v < sssp1 {
			t.Errorf("%s (%.2f) scales worse than SSSP-1 (%.2f); paper has SSSP-1 worst", name, v, sssp1)
		}
	}
	if g := get("geo. mean"); g < 3.0 || g > 8.0 {
		t.Errorf("geo-mean 8-node speedup = %.2f, want in [3,8] (paper: 5.3)", g)
	}
}

// TestTable5Shape pins the remote-access frequencies against the paper.
func TestTable5Shape(t *testing.T) {
	tb := Table5(testScale, nil)
	want := map[string][2]float64{ // [lo, hi] percent
		"GUPS":    {86, 89},
		"kmeans":  {86, 89},
		"mer":     {86, 89},
		"PR-1":    {30, 46},
		"PR-2":    {12, 24},
		"SSSP-1":  {24, 40},
		"SSSP-2":  {12, 24},
		"color-1": {30, 46},
		"color-2": {12, 24},
	}
	for name, band := range want {
		r := rowByName(tb, name)
		if r == nil {
			t.Fatalf("row %q missing", name)
		}
		v, _ := strconv.ParseFloat(strings.TrimSuffix(r[1], "%"), 64)
		if v < band[0] || v > band[1] {
			t.Errorf("%s remote freq = %.1f%%, want in [%g,%g]", name, v, band[0], band[1])
		}
	}
}

// TestFig15Shape pins the style-comparison ordering: Gravel at least
// ties everywhere, message-per-lane collapses on GUPS, and GPU-wide
// aggregation brings coalesced APIs close to Gravel.
func TestFig15Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("fig15 sweep is slow")
	}
	tb := Fig15(testScale, nil)
	idx := map[string]int{}
	for i, h := range tb.Header {
		idx[h] = i
	}
	for _, row := range tb.Rows {
		name := row[0]
		gr, _ := strconv.ParseFloat(row[idx["gravel"]], 64)
		for _, m := range []string{"coprocessor", "coprocessor+buf", "msg-per-lane", "coalesced"} {
			v, _ := strconv.ParseFloat(row[idx[m]], 64)
			if v > gr*1.10 {
				t.Errorf("%s: %s (%.2f) beats gravel (%.2f)", name, m, v, gr)
			}
		}
		ca, _ := strconv.ParseFloat(row[idx["coalesced+agg"]], 64)
		if ca < gr*0.5 {
			t.Errorf("%s: coalesced+agg (%.2f) should be near gravel (%.2f)", name, ca, gr)
		}
		if name == "GUPS" {
			mpl, _ := strconv.ParseFloat(row[idx["msg-per-lane"]], 64)
			if mpl > 0.2 {
				t.Errorf("GUPS msg-per-lane = %.3f, want collapse (paper ~0.01)", mpl)
			}
		}
	}
}

// TestSec82Shape pins the diverged-operation speedups near the paper's
// 1.28x (WG control flow) and 1.06x (software fbar).
func TestSec82Shape(t *testing.T) {
	tb := Sec82(testScale, nil)
	wgcf := cell(tb, 1, 2)
	fbar := cell(tb, 2, 2)
	if wgcf < 1.1 || wgcf > 1.5 {
		t.Errorf("WG control flow speedup = %.2f, want ≈ 1.28", wgcf)
	}
	if fbar < 0.95 || fbar > 1.25 {
		t.Errorf("fbar speedup = %.2f, want ≈ 1.06", fbar)
	}
	if fbar >= wgcf {
		t.Errorf("fbar (%.2f) should trail WG control flow (%.2f)", fbar, wgcf)
	}
}

// TestFig14Shape: multi-node GUPS improves with queue size and
// plateaus; tiny queues are far below the plateau.
func TestFig14Shape(t *testing.T) {
	tb := Fig14(testScale, nil)
	col8 := len(tb.Header) - 1
	tiny := cell(tb, 0, col8)
	mid := cell(tb, 2, col8)  // 4 kB
	knee := cell(tb, 3, col8) // 32 kB
	top := cell(tb, len(tb.Rows)-1, col8)
	if tiny > 0.25*top {
		t.Errorf("64 B queues (%.4f) should be far below plateau (%.4f)", tiny, top)
	}
	if mid >= knee {
		t.Errorf("4 kB (%.4f) should trail 32 kB (%.4f)", mid, knee)
	}
	if knee < 0.85*top {
		t.Errorf("32 kB (%.4f) should be near plateau (%.4f)", knee, top)
	}
}

// TestFig13Shape: the GPU system beats the CPU system at both scales.
func TestFig13Shape(t *testing.T) {
	tb := Fig13(testScale, nil)
	for _, row := range tb.Rows {
		cpu8, _ := strconv.ParseFloat(row[2], 64)
		g1, _ := strconv.ParseFloat(row[3], 64)
		g8, _ := strconv.ParseFloat(row[4], 64)
		if g1 <= 1.0 {
			t.Errorf("%s: 1 Gravel node (%.2f) should beat 1 CPU node", row[0], g1)
		}
		if g8 <= cpu8 {
			t.Errorf("%s: 8 Gravel nodes (%.2f) should beat 8 CPU nodes (%.2f)", row[0], g8, cpu8)
		}
	}
}

// TestTable2Counts: the measured line counts must reproduce the paper's
// ordering (coprocessor > coalesced > gravel path).
func TestTable2Counts(t *testing.T) {
	tb := Table2()
	g := cell(tb, 0, 1)
	cop := cell(tb, 1, 1)
	coal := cell(tb, 2, 1)
	if g == 0 || cop == 0 || coal == 0 {
		t.Skip("source tree not available at runtime")
	}
	if !(cop > coal && coal > g) {
		t.Errorf("LoC ordering: coprocessor=%v coalesced=%v gravel=%v, want cop > coal > gravel", cop, coal, g)
	}
}

// TestWorkloadsRunEverywhere is a broad integration sweep: every
// workload must complete on a 2-node cluster of every model.
func TestWorkloadsRunEverywhere(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	for _, wl := range Workloads(0.05) {
		for _, m := range append(models.Names(), "cpu-only") {
			sys := models.New(m, 2, nil)
			if ns := wl.Run(sys); ns <= 0 {
				t.Errorf("%s on %s: no virtual time", wl.Name, m)
			}
			sys.Close()
		}
	}
}

// TestDivergenceModesPreserveResults: §8.2 modes change timing, never
// results.
func TestDivergenceModesPreserveResults(t *testing.T) {
	cfg := gups.ModConfig{TableSize: 1 << 12, WIsPerNode: 1 << 13, Seed: 3}
	var sums []uint64
	for _, mode := range []simt.DivergenceMode{simt.SoftwarePredication, simt.WGReconvergence, simt.FineGrainBarrier} {
		cl := core.New(core.Config{Nodes: 4, DivMode: mode})
		res := gups.RunMod(cl, cfg)
		cl.Close()
		if res.Sum != uint64(res.Updates) {
			t.Errorf("mode %v: sum %d != updates %d", mode, res.Sum, res.Updates)
		}
		sums = append(sums, res.Sum)
	}
	if sums[0] != sums[1] || sums[1] != sums[2] {
		t.Errorf("modes disagree: %v", sums)
	}
}

// TestHierShape pins the §10 projection: hierarchy roughly ties flat on
// small clusters and wins once per-destination traffic gets thin.
func TestHierShape(t *testing.T) {
	if testing.Short() {
		t.Skip("hier sweep is slow")
	}
	tb := Hier(0.1, nil)
	// rows: 8, 16, 32, 64, 128 nodes; last column is hier/flat.
	col := len(tb.Header) - 1
	at8 := cell(tb, 0, col)
	at64 := cell(tb, 3, col)
	at128 := cell(tb, 4, col)
	if at8 < 0.6 || at8 > 1.4 {
		t.Errorf("hier/flat at 8 nodes = %.2f, want rough parity", at8)
	}
	if at64 < 1.1 && at128 < 1.1 {
		t.Errorf("hierarchy never wins at scale: 64 nodes %.2f, 128 nodes %.2f", at64, at128)
	}
	// Hierarchical packets must be consistently larger at 128 nodes.
	fPkt := cell(tb, 4, 2)
	hPkt := cell(tb, 4, 4)
	if hPkt <= fPkt {
		t.Errorf("hier pkt %.0f not larger than flat %.0f at 128 nodes", hPkt, fPkt)
	}
}

// TestWorkloadsUnderHierarchy: every workload runs correctly on a
// hierarchical cluster (gateway relays in every message path).
func TestWorkloadsUnderHierarchy(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	for _, wl := range Workloads(0.05) {
		cl := core.New(core.Config{Nodes: 6, GroupSize: 3})
		if ns := wl.Run(cl); ns <= 0 {
			t.Errorf("%s under hierarchy: no virtual time", wl.Name)
		}
		cl.Close()
	}
}
