package bench

import (
	"fmt"

	"gravel/internal/models"
	"gravel/internal/timemodel"
)

// Table5 reproduces Table 5 (network statistics for Gravel at eight
// nodes): remote-access frequency and average wire message size per
// workload, plus the §8.1 aggregator-poll observation.
func Table5(scale float64, params *timemodel.Params) *Table {
	t := &Table{
		Title:  "Table 5: network statistics for Gravel at eight nodes",
		Header: []string{"workload", "remote freq", "avg msg size (B)", "agg busy"},
	}
	for _, wl := range Workloads(scale) {
		sys := models.Gravel(8, cloneParams(params))
		wl.Run(sys)
		st := sys.NetStats()
		sys.Close()
		t.AddRow(wl.Name,
			fmt.Sprintf("%.1f%%", 100*st.RemoteFrac()),
			F(st.AvgPacketBytes),
			fmt.Sprintf("%.0f%%", 100*st.AggBusyFrac))
	}
	t.Note("paper remote freq: GUPS/kmeans/mer 87.5%%, PR-1 37.7%%, PR-2 16.5%%, SSSP-1 30.0%%, SSSP-2 16.2%%, color-1 36.7%%, color-2 16.5%%")
	t.Note("paper avg msg size: GUPS 65440, PR-1 64611, PR-2 15700, SSSP-1 1563, SSSP-2 57916, color-1 27258, color-2 9463, kmeans 5656, mer 64822")
	t.Note("§8.1: the aggregator CPU spends ~65%% of its time polling at eight nodes (busy ≈ 35%%)")
	return t
}
