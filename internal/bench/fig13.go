package bench

import (
	"gravel/internal/models"
	"gravel/internal/timemodel"
)

// Fig13 reproduces Figure 13 (Gravel vs CPU-based distributed systems):
// GUPS, PR-1, PR-2 and mer on 1 and 8 CPU-only nodes (Grappa/UPC-style)
// and on 1 and 8 Gravel nodes, normalized to one CPU node.
func Fig13(scale float64, params *timemodel.Params) *Table {
	t := &Table{
		Title:  "Figure 13: Gravel vs CPU-based distributed systems (speedup vs 1 CPU node)",
		Header: []string{"workload", "1 CPU node", "8 CPU nodes", "1 Gravel node", "8 Gravel nodes"},
	}
	for _, wl := range Fig13Workloads(scale) {
		times := make([]float64, 4)
		for i, cfg := range []struct {
			name  string
			nodes int
		}{
			{"cpu-only", 1}, {"cpu-only", 8}, {"gravel", 1}, {"gravel", 8},
		} {
			sys := models.New(cfg.name, cfg.nodes, cloneParams(params))
			times[i] = wl.Run(sys)
			sys.Close()
		}
		base := times[0]
		t.AddRow(wl.Name, F(base/times[0]), F(base/times[1]), F(base/times[2]), F(base/times[3]))
	}
	t.Note("paper: Gravel is significantly faster even on one node (the GPU fits the data-parallel behaviour), and keeps the advantage at 8 nodes")
	return t
}
