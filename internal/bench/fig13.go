package bench

import (
	"gravel/internal/models"
	"gravel/internal/timemodel"
)

// Fig13 reproduces Figure 13 (Gravel vs CPU-based distributed systems):
// GUPS, PR-1, PR-2 and mer on 1 and 8 CPU-only nodes (Grappa/UPC-style)
// and on 1 and 8 Gravel nodes, normalized to one CPU node. The archive
// aggregation strategy rides along as two extra columns, so the
// CPU-baseline comparison covers both send paths.
func Fig13(scale float64, params *timemodel.Params) *Table {
	configs := []struct {
		name  string
		nodes int
	}{
		{"cpu-only", 1}, {"cpu-only", 8}, {"gravel", 1}, {"gravel", 8},
		{"gravel-archive", 1}, {"gravel-archive", 8},
	}
	t := &Table{
		Title: "Figure 13: Gravel vs CPU-based distributed systems (speedup vs 1 CPU node)",
		Header: []string{"workload", "1 CPU node", "8 CPU nodes", "1 Gravel node", "8 Gravel nodes",
			"1 archive node", "8 archive nodes"},
	}
	for _, wl := range Fig13Workloads(scale) {
		times := make([]float64, len(configs))
		for i, cfg := range configs {
			sys := models.New(cfg.name, cfg.nodes, cloneParams(params))
			times[i] = wl.Run(sys)
			sys.Close()
		}
		base := times[0]
		row := []string{wl.Name}
		for _, tm := range times {
			row = append(row, F(base/tm))
		}
		t.AddRow(row...)
	}
	t.Note("paper: Gravel is significantly faster even on one node (the GPU fits the data-parallel behaviour), and keeps the advantage at 8 nodes")
	return t
}
