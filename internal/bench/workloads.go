package bench

import (
	"gravel/internal/harness"
	"gravel/internal/rt"
)

// Workload is one of the nine Table 4 inputs, scaled down ~1000x from
// the paper (see DESIGN.md §6). Run executes it and returns the virtual
// nanoseconds consumed. The workload set and its configurations come
// from the harness registry — the same table gravel-apps and
// gravel-node dispatch through — so the experiments cannot drift from
// what the binaries run.
type Workload struct {
	Name string
	Run  func(sys rt.System) float64
}

// Workloads returns the nine Table 4 inputs at the given scale (1.0 =
// the default ~1000x-reduced sizes).
func Workloads(scale float64) []Workload {
	apps := harness.BenchApps()
	out := make([]Workload, len(apps))
	for i, a := range apps {
		app := a
		out[i] = Workload{Name: app.Bench, Run: func(sys rt.System) float64 {
			return app.Run(sys, harness.Params{Scale: scale}).Ns
		}}
	}
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// Fig13Workloads returns the Figure 13 subset (GUPS, PR-1, PR-2, mer).
func Fig13Workloads(scale float64) []Workload {
	want := map[string]bool{"GUPS": true, "PR-1": true, "PR-2": true, "mer": true}
	var out []Workload
	for _, w := range Workloads(scale) {
		if want[w.Name] {
			out = append(out, w)
		}
	}
	return out
}
