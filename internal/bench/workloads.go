package bench

import (
	"sync"

	"gravel/internal/apps/color"
	"gravel/internal/apps/gups"
	"gravel/internal/apps/kmeans"
	"gravel/internal/apps/mer"
	"gravel/internal/apps/pagerank"
	"gravel/internal/apps/sssp"
	"gravel/internal/graph"
	"gravel/internal/rt"
)

// Workload is one of the nine Table 4 inputs, scaled down ~1000x from
// the paper (see DESIGN.md §6). Run executes it and returns the virtual
// nanoseconds consumed.
type Workload struct {
	Name string
	Run  func(sys rt.System) float64
}

// graph cache: inputs are reused across node counts and systems.
var (
	graphMu    sync.Mutex
	graphCache = map[string]*graph.Graph{}
)

func cachedGraph(key string, build func() *graph.Graph) *graph.Graph {
	graphMu.Lock()
	defer graphMu.Unlock()
	if g, ok := graphCache[key]; ok {
		return g
	}
	g := build()
	g.EnsureWeights()
	graphCache[key] = g
	return g
}

// bubblesInput is the hugebubbles-00020 stand-in (PR-1, SSSP-1, color-1).
func bubblesInput(scale float64) *graph.Graph {
	n := int(42000 * scale)
	if n < 256 {
		n = 256
	}
	return cachedGraph(key("bubbles", n), func() *graph.Graph { return graph.Bubbles(n, 1) })
}

// cageInput is the cage15 stand-in (PR-2, SSSP-2, color-2).
func cageInput(scale float64) *graph.Graph {
	n := int(40000 * scale)
	if n < 256 {
		n = 256
	}
	return cachedGraph(key("cage", n), func() *graph.Graph { return graph.Cage(n, 1) })
}

func key(name string, n int) string {
	return name + ":" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// Workloads returns the nine Table 4 inputs at the given scale (1.0 =
// the default ~1000x-reduced sizes).
func Workloads(scale float64) []Workload {
	s := func(base int) int {
		v := int(float64(base) * scale)
		if v < 64 {
			v = 64
		}
		return v
	}
	return []Workload{
		{"GUPS", func(sys rt.System) float64 {
			return gups.Run(sys, gups.Config{
				TableSize: s(1 << 20), UpdatesPerNode: s(1_440_000) / sys.Nodes(), Seed: 13,
			}).Ns
		}},
		{"PR-1", func(sys rt.System) float64 {
			return pagerank.Run(sys, pagerank.Config{G: bubblesInput(scale), Iters: 10}).Ns
		}},
		{"PR-2", func(sys rt.System) float64 {
			return pagerank.Run(sys, pagerank.Config{G: cageInput(scale), Iters: 10}).Ns
		}},
		{"SSSP-1", func(sys rt.System) float64 {
			return sssp.Run(sys, sssp.Config{G: bubblesInput(scale), Source: 0}).Ns
		}},
		{"SSSP-2", func(sys rt.System) float64 {
			return sssp.Run(sys, sssp.Config{G: cageInput(scale), Source: 0}).Ns
		}},
		{"color-1", func(sys rt.System) float64 {
			return color.Run(sys, color.Config{G: bubblesInput(scale), Seed: 7}).Ns
		}},
		{"color-2", func(sys rt.System) float64 {
			return color.Run(sys, color.Config{G: cageInput(scale), Seed: 7}).Ns
		}},
		{"kmeans", func(sys rt.System) float64 {
			return kmeans.Run(sys, kmeans.Config{
				PointsPerNode: s(160_000) / sys.Nodes(), K: 8, Dims: 2, Iters: 8, Seed: 3,
			}).Ns
		}},
		{"mer", func(sys rt.System) float64 {
			return mer.Run(sys, mer.Config{
				GenomeLen: s(100_000), ReadsPerNode: s(16_000) / sys.Nodes(), ReadLen: 80, K: 19, Seed: 9,
			}).Ns
		}},
	}
}

// Fig13Workloads returns the Figure 13 subset (GUPS, PR-1, PR-2, mer).
func Fig13Workloads(scale float64) []Workload {
	all := Workloads(scale)
	return []Workload{all[0], all[1], all[2], all[8]}
}
