// Package bench is the experiment harness: one driver per table and
// figure of the paper's evaluation (§4.3, §7, §8), each regenerating the
// same rows or series the paper reports, plus ablations of Gravel's own
// design choices. cmd/gravel-bench is the CLI front end; the root
// bench_test.go exposes each driver as a testing.B benchmark.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is a formatted experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends a footnote.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// Fcsv renders the table as CSV (header row first, notes as comments).
func (t *Table) Fcsv(w io.Writer) {
	fmt.Fprintf(w, "# %s\n", t.Title)
	for _, n := range t.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}
	writeCSVRow(w, t.Header)
	for _, row := range t.Rows {
		writeCSVRow(w, row)
	}
}

func writeCSVRow(w io.Writer, cells []string) {
	out := make([]string, len(cells))
	for i, c := range cells {
		if strings.ContainsAny(c, ",\"\n") {
			c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
		}
		out[i] = c
	}
	fmt.Fprintln(w, strings.Join(out, ","))
}

// F formats a float compactly.
func F(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}
