package bench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"gravel/internal/queue"
	"gravel/internal/timemodel"
)

// benchWorkers picks producer/consumer counts that fit the machine: the
// paper's configuration (many WGs, 4 consumer threads) on multi-core
// hosts, a minimal 2P/1C pipeline on a single core where extra spinning
// goroutines would only thrash the scheduler.
func benchWorkers() (prods, cons int) {
	n := runtime.GOMAXPROCS(0)
	switch {
	case n >= 8:
		return 8, 4
	case n >= 4:
		return 4, 2
	case n >= 2:
		return 2, 2
	default:
		return 2, 1
	}
}

// runGravelQueue pumps totalMsgs messages of rows*8 bytes through a
// Gravel queue with the given WG width (cols), using prods producer
// goroutines (each acting as one work-group stream) and cons consumers.
// It returns the measured throughput in GB/s. Consumers checksum every
// word so payload reads are not optimized away.
func runGravelQueue(totalMsgs, rows, cols, prods, cons, numSlots int) float64 {
	return runGravelQueueRaw(totalMsgs, queue.NewGravel(numSlots, rows, cols), prods, cons)
}

// runGravelQueueRaw is runGravelQueue over a caller-built queue (used by
// the padding ablation).
func runGravelQueueRaw(totalMsgs int, q *queue.Gravel, prods, cons int) float64 {
	rows, cols := q.Rows, q.Cols
	perProd := totalMsgs / prods / cols * cols
	if perProd < cols {
		perProd = cols
	}

	var wg sync.WaitGroup
	start := time.Now()
	for p := 0; p < prods; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for sent := 0; sent < perProd; sent += cols {
				s := q.Reserve(cols)
				for r := 0; r < rows; r++ {
					row := s.Row(r)
					for m := range row {
						row[m] = uint64(p<<32 + sent + m)
					}
				}
				s.Commit()
			}
		}(p)
	}

	var sink [16]uint64
	var cwg sync.WaitGroup
	done := make(chan struct{})
	for c := 0; c < cons; c++ {
		cwg.Add(1)
		go func(c int) {
			defer cwg.Done()
			var sum uint64
			for {
				if !q.TryConsume(func(payload []uint64, rows, cols, count int) {
					for r := 0; r < rows; r++ {
						base := r * cols
						for m := 0; m < count; m++ {
							sum += payload[base+m]
						}
					}
				}) {
					select {
					case <-done:
						if q.Empty() {
							sink[c] = sum
							return
						}
					default:
					}
					runtime.Gosched()
				}
			}
		}(c)
	}
	wg.Wait()
	close(done)
	cwg.Wait()
	elapsed := time.Since(start)

	bytes := float64(perProd*prods) * float64(rows*8)
	return bytes / elapsed.Seconds() / 1e9
}

// Fig6 reproduces Figure 6: producer/consumer queue throughput for
// 32-byte messages versus work-group size (1, 2 and 4 wavefronts), with
// the dynamically-counted atomics per work-item, plus the §4.1
// observation that work-item-level synchronization is two orders of
// magnitude slower.
func Fig6() *Table {
	t := &Table{
		Title:  "Figure 6: queue throughput vs work-group size (32 B messages)",
		Header: []string{"WG size", "GB/s (modeled, Table 3 GPU)", "GB/s (measured, host)", "atomics/WI"},
	}
	p := timemodel.Default()
	const rows = 4 // 32-byte messages
	const total = 1 << 21
	prods, cons := benchWorkers()
	atomicsPerMsg := float64(queue.ProducerAtomicsPerReserve + queue.ConsumerAtomicsPerClaim)
	for _, wfs := range []int{1, 2, 4} {
		cols := 64 * wfs
		gbs := runGravelQueue(total, rows, cols, prods, cons, 128)
		t.AddRow(
			fmt.Sprintf("%d wavefront(s)", wfs),
			F(modeledGravelGBs(p, rows, cols)),
			F(gbs),
			F(atomicsPerMsg/float64(cols)),
		)
	}
	// Work-item-level synchronization: every message pays its own
	// reservation (cols=1).
	wiGbs := runGravelQueue(1<<18, rows, 1, prods, cons, 4096)
	t.AddRow("WI-level sync", F(modeledGravelGBs(p, rows, 1)), F(wiGbs), F(atomicsPerMsg))
	t.Note("paper: 4-WF WGs reach ~7 GB/s, ~3x the 1-WF rate; WI-level sync is ~0.06 GB/s (two orders slower)")
	t.Note("measured with %d producer / %d consumer goroutines on GOMAXPROCS=%d", prods, cons, runtime.GOMAXPROCS(0))
	t.Note("atomics/WI is the queue-protocol count (2 producer + 2 consumer RMWs amortized across the WG)")
	return t
}
