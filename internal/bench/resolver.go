package bench

import (
	"time"

	"gravel/internal/fabric"
	"gravel/internal/harness"
	"gravel/internal/models"
	"gravel/internal/rt"
	"gravel/internal/timemodel"
)

// ResolverShardCounts is the resolver-sweep bank axis.
var ResolverShardCounts = []int{1, 2, 4, 8}

// Resolver sweeps receive-side resolver sharding on the GUPS workload
// (the most network-bound Table 4 input): modeled and measured
// throughput at 1/2/4/8 banks per node, plus a saturation pair at 10x
// the sweep scale comparing serial resolution against the widest
// sharding. One shard is the paper's serial network thread (§6) —
// bit-identical to the unsharded runtime — so its row is the baseline
// every other row's speedup is relative to.
//
// extraShards, when a valid bank count not already on the axis, adds
// one more sweep point (the -resolver-shards flag value), so an
// operator can probe their own configuration.
func Resolver(scale float64, params *timemodel.Params, extraShards int) *Table {
	shardCounts := ResolverShardCounts
	if fabric.ValidBanks(extraShards) && extraShards > 1 {
		dup := false
		for _, s := range shardCounts {
			if s == extraShards {
				dup = true
				break
			}
		}
		if !dup {
			shardCounts = append(append([]int{}, shardCounts...), extraShards)
		}
	}
	t := &Table{
		Title:  "Resolver sweep: sharded receive-side resolution (GUPS, 4 nodes)",
		Header: []string{"config", "model ms", "model Mmsg/s", "wall ms", "wall Mmsg/s", "model speedup"},
	}
	gups, err := harness.LookupApp("gups")
	if err != nil {
		panic(err)
	}
	run := func(label string, shards int, scale float64, base float64) float64 {
		sys := models.NewSystem("gravel", models.Config{
			Nodes:          4,
			Params:         cloneParams(params),
			ResolverShards: shards,
		})
		start := time.Now()
		res := gups.Run(sys, harness.Params{Scale: scale})
		wallNs := float64(time.Since(start).Nanoseconds())
		st := sys.Stats()
		sys.Close()
		msgs := float64(resolvedMsgs(st))
		sp := ""
		if base > 0 {
			sp = F(base / res.Ns)
		}
		t.AddRow(label,
			F(res.Ns/1e6),
			F(msgs/res.Ns*1e3), // msgs/ns -> Mmsg/s
			F(wallNs/1e6),
			F(msgs/wallNs*1e3),
			sp)
		return res.Ns
	}
	base := 0.0
	for _, s := range shardCounts {
		ns := run("shards="+itoa(s), s, scale, base)
		if s == 1 {
			base = ns
		}
	}
	satBase := run("10x shards=1", 1, scale*10, 0)
	widest := shardCounts[len(shardCounts)-1]
	run("10x shards="+itoa(widest), widest, scale*10, satBase)
	t.Note("1 shard = the paper's serial network thread (bit-identical); NetBound is the busiest bank when sharded")
	t.Note("model Mmsg/s counts resolver-applied messages (bypassed node-local messages included) over virtual time")
	return t
}

// resolvedMsgs is the receive side's applied message count: resolver
// banks plus the node-local bypass.
func resolvedMsgs(st rt.Stats) int64 {
	return st.Resolver.Msgs + st.Resolver.BypassMsgs
}
