package bench

import (
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := &Table{Title: "T", Header: []string{"a", "b"}}
	t.AddRow("x", "1.5")
	t.AddRow("needs,quote", "2")
	t.Note("n%d", 1)
	return t
}

func TestTableFprint(t *testing.T) {
	var b strings.Builder
	sampleTable().Fprint(&b)
	out := b.String()
	for _, want := range []string{"== T ==", "a", "x", "1.5", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestTableFcsv(t *testing.T) {
	var b strings.Builder
	sampleTable().Fcsv(&b)
	out := b.String()
	if !strings.Contains(out, "# T\n") || !strings.Contains(out, "a,b\n") {
		t.Fatalf("csv header wrong:\n%s", out)
	}
	if !strings.Contains(out, "\"needs,quote\",2") {
		t.Fatalf("csv quoting wrong:\n%s", out)
	}
}

func TestF(t *testing.T) {
	for in, want := range map[float64]string{0: "0", 123.4: "123", 1.234: "1.23", 0.0123: "0.0123"} {
		if got := F(in); got != want {
			t.Errorf("F(%v) = %q, want %q", in, got, want)
		}
	}
}
