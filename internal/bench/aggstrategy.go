package bench

import (
	"gravel/internal/core"
	"gravel/internal/models"
	"gravel/internal/rt"
	"gravel/internal/timemodel"
)

// mix64 is a seeded splitmix64 step: cheap, deterministic, and the same
// stream generator the aggregation property test uses, so the bench and
// the test exercise comparable traffic.
func mix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// AggStrategy compares the two send-path aggregation strategies under
// seeded destination distributions: the paper's ticket-slot builders
// ("gravel") against the grape-style per-destination archives
// ("gravel-archive"), each driven by a uniform destination spray and by
// a zipf(s=1) skew where the hottest node absorbs roughly a third of
// the traffic. Both strategies see bit-identical message streams; the
// table reports where the time goes — device-side append cost, CPU
// repack work, and the wire packets each strategy produced.
func AggStrategy(scale float64, params *timemodel.Params) *Table {
	const (
		nodes      = 8
		wgSize     = 256
		wgsPerNode = 4
	)
	rounds := int(16 * scale)
	if rounds < 2 {
		rounds = 2
	}
	msgsPerNode := wgsPerNode * wgSize * rounds

	// zipfThresh maps a 16-bit draw to a zipf(s=1) rank over the node
	// count: weights 1/(k+1), so rank 0 takes ~37% of the traffic at 8
	// nodes.
	var zipfThresh [nodes]uint64
	{
		var total float64
		for k := 0; k < nodes; k++ {
			total += 1 / float64(k+1)
		}
		var cum float64
		for k := 0; k < nodes; k++ {
			cum += 1 / float64(k+1)
			zipfThresh[k] = uint64(cum / total * (1 << 16))
		}
		zipfThresh[nodes-1] = 1 << 16
	}
	dists := []struct {
		name string
		pick func(r uint64) int
	}{
		{"uniform", func(r uint64) int { return int(r % nodes) }},
		{"zipfian", func(r uint64) int {
			d := r % (1 << 16)
			for k := 0; k < nodes; k++ {
				if d < zipfThresh[k] {
					return k
				}
			}
			return nodes - 1
		}},
	}

	t := &Table{
		Title: "Aggregation strategies: ticket-slot builders vs per-destination archives",
		Header: []string{"dest dist", "strategy", "virtual ns/msg", "GPU offload ms",
			"dev atomics/msg", "agg busy ms", "wire pkts", "avg pkt B", "flushes full/timeout"},
	}

	for _, dist := range dists {
		// Precompute the per-(node, WG, round) destination and payload
		// tables once per distribution, so both strategies replay the
		// exact same stream.
		dest := make([][][][]int, nodes)
		pay := make([][][][]uint64, nodes)
		var wantSum uint64
		var hot int
		rng := uint64(0xa66_57a7) + uint64(len(dist.name))
		for n := 0; n < nodes; n++ {
			dest[n] = make([][][]int, wgsPerNode)
			pay[n] = make([][][]uint64, wgsPerNode)
			for w := 0; w < wgsPerNode; w++ {
				dest[n][w] = make([][]int, rounds)
				pay[n][w] = make([][]uint64, rounds)
				for r := 0; r < rounds; r++ {
					d := make([]int, wgSize)
					p := make([]uint64, wgSize)
					for l := 0; l < wgSize; l++ {
						d[l] = dist.pick(mix64(&rng))
						p[l] = mix64(&rng) >> 16 // headroom: sums cannot wrap
						if d[l] == 0 {
							hot++
						}
						wantSum += p[l]
					}
					dest[n][w][r] = d
					pay[n][w][r] = p
				}
			}
		}

		zeroA := make([]uint64, wgSize) // AM "a" argument; unused by the handler

		for _, model := range []string{"gravel", "gravel-archive"} {
			sys := models.NewSystem(model, models.Config{Nodes: nodes, WGSize: wgSize, Params: cloneParams(params)})
			sums := make([]uint64, nodes)
			h := sys.RegisterAM(func(node int, a, b uint64) {
				sums[node] += b // handlers are serialized per node
			})
			grid := make([]int, nodes)
			for i := range grid {
				grid[i] = wgsPerNode * wgSize
			}
			sys.Step("aggstrategy-"+dist.name, grid, 0, func(c rt.Ctx) {
				src, wg := c.Node(), c.Group().ID
				for r := 0; r < rounds; r++ {
					c.AM(h, dest[src][wg][r], zeroA, pay[src][wg][r], nil)
				}
			})
			st := sys.Stats()
			var gpuNs float64
			var atomics int64
			nodeOf := sys.(interface{ Node(int) *core.Node })
			for i := 0; i < nodes; i++ {
				n := nodeOf.Node(i)
				gpuNs += n.Clocks.Snapshot().GPU
				atomics += n.GPU.Counters.Atomics.Load()
			}
			var got uint64
			for _, s := range sums {
				got += s
			}
			sys.Close()
			if got != wantSum {
				t.Note("CHECKSUM MISMATCH under %s/%s: got %d, want %d", model, dist.name, got, wantSum)
			}
			msgs := float64(nodes * msgsPerNode)
			t.AddRow(dist.name, st.Agg.Strategy,
				F(st.VirtualNs/msgs),
				F(gpuNs/1e6),
				F(float64(atomics)/msgs),
				F(st.Agg.BusyNs/1e6),
				itoa(int(st.Transport.WirePackets)),
				F(st.Transport.AvgPacketBytes),
				itoa(int(st.Agg.FlushesFull))+"/"+itoa(int(st.Agg.FlushesTimeout)))
		}
		if dist.name == "zipfian" {
			t.Note("zipfian stream sends %.0f%% of messages to node 0 (uniform share: %.0f%%)",
				100*float64(hot)/float64(nodes*msgsPerNode), 100.0/nodes)
		}
	}
	t.Note("identical seeded streams per distribution; both strategies' per-destination sums are checked against the oracle")
	t.Note("the archive trades device atomics (one per distinct WF destination, vs the ticket builders' two amortized WG reservations) for eliminating the CPU repack entirely — aggregator busy time drops ~20x")
	t.Note("end-to-end ns/msg ties because the serialized network thread, identical under both strategies, dominates the critical path; skew slows both equally by serializing on the hot node")
	return t
}
