package fabric

import (
	"testing"

	"gravel/internal/timemodel"
	"gravel/internal/wire"
)

func TestValidBanks(t *testing.T) {
	for _, tc := range []struct {
		banks int
		ok    bool
	}{
		{0, false}, {1, true}, {2, true}, {3, false}, {4, true},
		{6, false}, {8, true}, {16, true}, {64, true}, {128, false}, {-4, false},
	} {
		if got := ValidBanks(tc.banks); got != tc.ok {
			t.Errorf("ValidBanks(%d) = %v, want %v", tc.banks, got, tc.ok)
		}
	}
}

func TestBankOf(t *testing.T) {
	for _, a := range []uint64{0, 1, 7, 1 << 20, ^uint64(0)} {
		if BankOf(a, 1) != 0 {
			t.Errorf("BankOf(%d, 1) = %d, want 0", a, BankOf(a, 1))
		}
	}
	// Power-of-two masking: the low bits select the bank, so
	// neighbouring addresses spread and same-address always repeats.
	for _, banks := range []int{2, 4, 64} {
		seen := map[int]bool{}
		for a := uint64(0); a < uint64(2*banks); a++ {
			b := BankOf(a, banks)
			if b < 0 || b >= banks {
				t.Fatalf("BankOf(%d, %d) = %d out of range", a, banks, b)
			}
			if b != BankOf(a, banks) {
				t.Fatalf("BankOf not deterministic")
			}
			seen[b] = true
		}
		if len(seen) != banks {
			t.Errorf("banks=%d: sequential addresses hit only %d banks", banks, len(seen))
		}
	}
}

// TestScatterBanksPartition pins the demux contract: every record lands
// on BankOf of its address, records keep their relative order within a
// bank, per-bank message counts are exact, banks are emitted in
// ascending order, and no record is lost or duplicated.
func TestScatterBanksPartition(t *testing.T) {
	const banks = 4
	b := wire.NewBuilder(1, 1<<16)
	type rec struct{ cmd, a, v uint64 }
	var want []rec
	for i := 0; i < 100; i++ {
		r := rec{
			cmd: wire.PackCmd(wire.OpInc, 0, 0),
			a:   uint64(i*2654435761) % 512,
			v:   uint64(i + 1),
		}
		want = append(want, r)
		b.Append(r.cmd, r.a, r.v)
	}
	buf, msgs := b.Take()
	defer wire.PutBuf(buf)
	if msgs != len(want) {
		t.Fatalf("builder msgs = %d, want %d", msgs, len(want))
	}

	var got [banks][]rec
	lastBank := -1
	total := 0
	ScatterBanks(buf, banks, func(bank int, sub []byte, m int) {
		if bank <= lastBank {
			t.Fatalf("banks emitted out of order: %d after %d", bank, lastBank)
		}
		lastBank = bank
		n := 0
		if err := wire.Decode(sub, func(cmd, a, v uint64) {
			got[bank] = append(got[bank], rec{cmd, a, v})
			n++
		}); err != nil {
			t.Fatalf("bank %d sub-buffer undecodable: %v", bank, err)
		}
		if n != m {
			t.Fatalf("bank %d reported %d msgs, decoded %d", bank, m, n)
		}
		total += m
		wire.PutBuf(sub)
	})
	if total != len(want) {
		t.Fatalf("scattered %d records, want %d", total, len(want))
	}

	// Replaying the input in order against per-bank cursors must match
	// exactly: partition by BankOf with per-bank order preserved.
	var cursor [banks]int
	for i, r := range want {
		bk := BankOf(r.a, banks)
		if cursor[bk] >= len(got[bk]) {
			t.Fatalf("record %d missing from bank %d", i, bk)
		}
		if got[bk][cursor[bk]] != r {
			t.Fatalf("bank %d record %d = %+v, want %+v (reordered?)", bk, cursor[bk], got[bk][cursor[bk]], r)
		}
		cursor[bk]++
	}
}

// TestChanBankedDemux: a banked channel fabric carves a multi-record
// packet into per-bank sub-packets, all counted in flight until each
// bank's Done.
func TestChanBankedDemux(t *testing.T) {
	clocks := []*timemodel.Clocks{{}, {}}
	f := NewBanked(timemodel.Default(), clocks, 4)
	b := wire.NewBuilder(1, 1<<12)
	// Addresses 1, 3, 5: banks 1, 3, 1.
	for _, a := range []uint64{1, 3, 5} {
		b.Append(wire.PackCmd(wire.OpInc, 0, 0), a, 1)
	}
	buf, msgs := b.Take()
	f.Send(0, 1, buf, msgs)

	p1 := <-f.BankInbox(1, 1)
	if !p1.Sub || p1.Bank != 1 || p1.Msgs != 2 {
		t.Fatalf("bank-1 sub-packet wrong: %+v", p1)
	}
	p3 := <-f.BankInbox(1, 3)
	if !p3.Sub || p3.Bank != 3 || p3.Msgs != 1 {
		t.Fatalf("bank-3 sub-packet wrong: %+v", p3)
	}
	if f.Quiet() {
		t.Fatal("Quiet with sub-packets still out")
	}
	f.Done(p1)
	if f.Quiet() {
		t.Fatal("Quiet after one of two sub-packets")
	}
	f.Done(p3)
	if !f.Quiet() {
		t.Fatal("not Quiet after all sub-packets Done")
	}
	select {
	case p := <-f.BankInbox(1, 0):
		t.Fatalf("unexpected bank-0 packet %+v", p)
	default:
	}
}

// TestChanSelfSendBypass pins the node-local fast path: with a local
// applier registered, a from == to Send resolves synchronously on the
// sending goroutine — applied before Send returns, never in flight,
// still counted as a self packet and never as a wire packet.
func TestChanSelfSendBypass(t *testing.T) {
	clocks := []*timemodel.Clocks{{}, {}}
	f := NewBanked(timemodel.Default(), clocks, 4)
	var applied []uint64
	f.SetLocalApply(func(p Packet) {
		if p.From != 1 || p.To != 1 {
			t.Fatalf("bypass packet endpoints wrong: %+v", p)
		}
		if err := wire.Decode(p.Buf, func(cmd, a, v uint64) {
			applied = append(applied, a)
		}); err != nil {
			t.Fatalf("bypass payload undecodable: %v", err)
		}
	})

	b := wire.NewBuilder(1, 1<<12)
	b.Append(wire.PackCmd(wire.OpInc, 0, 0), 7, 1)
	b.Append(wire.PackCmd(wire.OpInc, 0, 0), 9, 1)
	buf, msgs := b.Take()
	f.Send(1, 1, buf, msgs)

	// Synchronous: fully applied when Send returns, nothing in flight.
	if len(applied) != 2 || applied[0] != 7 || applied[1] != 9 {
		t.Fatalf("bypass applied %v, want [7 9] before Send returned", applied)
	}
	if !f.Quiet() {
		t.Fatal("self-send bypass left the fabric non-quiet")
	}
	for bank := 0; bank < 4; bank++ {
		select {
		case p := <-f.BankInbox(1, bank):
			t.Fatalf("bypassed packet reached bank %d inbox: %+v", bank, p)
		default:
		}
	}
	if f.SelfPkts[1].Load() != 1 {
		t.Fatalf("SelfPkts = %d, want 1", f.SelfPkts[1].Load())
	}
	if f.PktSizes[1].Count() != 0 {
		t.Fatal("self packet counted as a wire packet")
	}
	if clocks[1].Snapshot().WireSend != 0 {
		t.Fatal("self-send charged wire time")
	}
}
