// Package fabric defines the cluster interconnect abstraction: the
// Fabric interface every transport implements, the Packet unit of
// delivery, shared wire Metrics, and a registry that maps transport
// names ("chan", "loopback", "tcp") to factories.
//
// The default "chan" transport (this package) simulates the paper's
// interconnect (Table 3: 56 Gb/s InfiniBand, driven via MPI) with
// in-process channels and virtual LogGP-style timing. Package
// internal/transport contributes "loopback" (in-process, real framing)
// and "tcp" (real sockets, multi-process clusters).
package fabric

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"gravel/internal/obs"
	"gravel/internal/stats"
	"gravel/internal/timemodel"
	"gravel/internal/transport/fault"
)

// Packet is one per-node queue in flight. Routed packets hold
// wire.RoutedMsgBytes records (final destination per message) bound for
// a group gateway (§10 hierarchical aggregation); direct packets hold
// wire.MsgWireBytes records for the receiving node itself.
//
// Buffer ownership travels with the packet: Send transfers the buffer
// to the fabric, the receiver borrows it between Inbox and Done, and
// Done recycles it into the wire package's packet pool. After Done (or
// after Send, on the sending side) the buffer must not be touched.
type Packet struct {
	From, To int
	Buf      []byte
	Msgs     int
	Routed   bool
	// Bank is the resolver bank this packet resolves on (always 0 on an
	// unbanked fabric; routed packets always resolve on bank 0).
	Bank int
	// Sub marks a demuxed sub-packet: one of several carved out of a
	// single wire frame by a banked transport. Transports use it to
	// keep per-frame quiescence counters exact (the frame is counted
	// applied once, not once per bank).
	Sub bool
}

// Fabric is the interconnect interface the runtime depends on. A fabric
// connects n nodes; Send/SendRouted transmit one per-node (or
// per-group) queue, blocking when the receiver falls behind (finite
// in-flight queue credit, §6). Each hosted node's network thread ranges
// over Inbox and must call Done after fully applying a packet; Quiet
// reports cluster-wide quiescence — no packets staged, in flight, or
// being applied — which the runtime's Step barrier relies on.
type Fabric interface {
	// Nodes returns the cluster size.
	Nodes() int
	// Hosts reports whether this process runs node's threads. In-process
	// fabrics host every node; a multi-process transport hosts one.
	Hosts(node int) bool
	// Send transmits one per-node queue from node `from` to node `to`,
	// charging wire time to the sender. It blocks on backpressure.
	// Ownership of buf transfers to the fabric (see Packet).
	Send(from, to int, buf []byte, msgs int)
	// SendRouted transmits a per-group queue (records carry their final
	// destinations) to a group gateway for re-aggregation (§10).
	SendRouted(from, gateway int, buf []byte, msgs int)
	// Inbox returns node's receive channel.
	Inbox(node int) <-chan Packet
	// Done must be called after fully applying a packet; quiescence
	// detection depends on it, and it recycles the packet's buffer.
	Done(Packet)
	// Quiet reports whether no packets are staged, in flight, or being
	// applied anywhere in the cluster.
	Quiet() bool
	// Close tears the fabric down: all inboxes are closed after any
	// drain/close handshake completes. Network threads drain and exit.
	Close()
	// Metrics returns the fabric's wire counters.
	NetMetrics() *Metrics
}

// HostDrainer is implemented by multi-process transports that need the
// runtime's help to keep active-message cascades flowing while a
// process waits inside a collective. An AM handler's follow-up message
// (rt.System.HostAM) is staged in the receiving node's aggregator, not
// put on the wire — invisible to the transport's sent/applied counters.
// Once the host thread has left its own quiescence loop (which flushes
// the aggregator) and is polling the cluster-wide quiet or step
// barrier, nothing would flush such a staged message: the cluster's
// counters look balanced, the barrier releases early, and the cascade
// is cut off. The runtime registers a drain hook that the transport
// calls on every local-idleness check; the hook flushes host-side
// staged messages toward the wire and reports whether any host-side
// work remains.
type HostDrainer interface {
	// SetHostDrain registers the drain hook. The hook is called from
	// host threads only (it may transmit, which can block on
	// backpressure) and returns true when no host-side work remains.
	SetHostDrain(func() bool)
}

// Metrics holds the wire counters every transport maintains.
type Metrics struct {
	// PktSizes records the size of every packet put on the wire by each
	// node (Table 5 "average message size").
	PktSizes []stats.SizeHist
	// SelfPkts counts node-local packets (atomics routed through the
	// local network thread, which never reach the wire).
	SelfPkts []stats.Counter
	// PerDest counts wire packets and bytes by destination node.
	PerDest *stats.PerDest
	// Reconnects counts connections re-established after a drop;
	// Retries counts failed dial attempts. Both stay 0 for in-process
	// transports.
	Reconnects, Retries stats.Counter
	// Malformed counts received frames or payloads that failed
	// validation and were dropped instead of applied.
	Malformed stats.Counter
	// CorruptFrames counts received frames whose header parsed but
	// whose payload failed the CRC — in-flight corruption. Each one
	// forces a retransmit (the receiver poisons the stream after
	// re-acknowledging its resume point), so corruption costs latency,
	// never data.
	CorruptFrames stats.Counter
}

// NewMetrics creates zeroed metrics for an n-node fabric.
func NewMetrics(n int) *Metrics {
	return &Metrics{
		PktSizes: make([]stats.SizeHist, n),
		SelfPkts: make([]stats.Counter, n),
		PerDest:  stats.NewPerDest(n),
	}
}

// Metrics returns m, so embedding *Metrics satisfies the Fabric
// interface's accessor.
func (m *Metrics) NetMetrics() *Metrics { return m }

// ObserveWire records one wire packet from `from` to `to`.
func (m *Metrics) ObserveWire(from, to, bytes int) {
	m.PktSizes[from].Observe(int64(bytes))
	m.PerDest.Observe(to, int64(bytes))
	if obs.Enabled() {
		obs.Emit(obs.KSend, from, int64(to), int64(bytes), "")
	}
}

// AvgPacketBytes returns the mean wire packet size for a node, 0 if it
// sent none.
func (m *Metrics) AvgPacketBytes(node int) float64 { return m.PktSizes[node].Mean() }

// TotalAvgPacketBytes returns the mean wire packet size across all
// nodes.
func (m *Metrics) TotalAvgPacketBytes() float64 {
	var sum, n int64
	for i := range m.PktSizes {
		sum += m.PktSizes[i].Sum()
		n += m.PktSizes[i].Count()
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// Options configures a transport built through the registry. The
// in-process transports ("chan", "loopback") ignore every field except
// ResolverBanks.
type Options struct {
	// ResolverBanks splits each node's receive-side resolution into
	// this many per-bank inboxes (power of two, max MaxResolverBanks;
	// 0 or 1 = the paper's single serial network thread). All
	// registered transports implement Banked and honor it.
	ResolverBanks int

	// Self is the node this process hosts (multi-process transports).
	Self int
	// Listen is the address to accept peer connections on; an explicit
	// port 0 picks a free port, published through the coordinator.
	Listen string
	// Peers maps node ID to address when known up front. With a
	// coordinator it may be left nil; addresses are exchanged at join.
	// A peers list alone cannot provide cross-process quiescence, so
	// the TCP transport rejects multi-node clusters without Coord.
	Peers []string
	// Coord is the rendezvous coordinator address (join, quiescence,
	// reductions).
	Coord string
	// WallClock charges measured wall-clock time for wire transfers
	// instead of the virtual LogGP model.
	WallClock bool

	// Faults, when non-nil, enables deterministic fault injection on
	// socket transports (see internal/transport/fault). Nil is the
	// production configuration: a zero-allocation pass-through.
	Faults *fault.Config

	// SuspectTimeout is how long a peer (or the coordinator's view of a
	// worker) may be silent while traffic is pending before it is
	// declared down with a typed PeerDownError. Zero means the default
	// (30s); negative disables failure detection.
	SuspectTimeout time.Duration
	// HeartbeatInterval is the peer-ping and coordinator-heartbeat
	// period. Zero means SuspectTimeout/4.
	HeartbeatInterval time.Duration

	// CoordDialTimeout bounds the initial coordinator dial (workers
	// routinely start before the coordinator listens). Zero means 30s.
	CoordDialTimeout time.Duration
	// CoordDialBackoff / CoordDialBackoffMax shape the dial retry
	// backoff (exponential with jitter). Zero means 10ms / 1s.
	CoordDialBackoff    time.Duration
	CoordDialBackoffMax time.Duration
	// CoordRPCTimeout bounds every coordinator request/response
	// exchange; an expired deadline yields a typed CoordDownError.
	// Zero means 15s; negative disables the deadline.
	CoordRPCTimeout time.Duration

	// Generation is the membership generation this process belongs to
	// (elastic clusters stamp it on coordinator RPCs and peer stream
	// handshakes; a newer-generation receiver rejects the message with
	// a typed StaleGenerationError instead of misdelivering it). Zero
	// means unstamped — the fixed-membership default.
	Generation uint32
}

// Factory builds a fabric over the given per-node clocks.
type Factory func(p *timemodel.Params, clocks []*timemodel.Clocks, opt Options) (Fabric, error)

var (
	regMu    sync.Mutex
	registry = map[string]Factory{}
)

// Register makes a transport available by name. It panics on duplicate
// registration.
func Register(name string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("fabric: duplicate transport %q", name))
	}
	registry[name] = f
}

// NewByName builds a registered transport.
func NewByName(name string, p *timemodel.Params, clocks []*timemodel.Clocks, opt Options) (Fabric, error) {
	regMu.Lock()
	f, ok := registry[name]
	regMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("fabric: unknown transport %q (have %v)", name, Names())
	}
	return f(p, clocks, opt)
}

// Names lists the registered transports in sorted order.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func init() {
	Register("chan", func(p *timemodel.Params, clocks []*timemodel.Clocks, opt Options) (Fabric, error) {
		return NewBanked(p, clocks, opt.ResolverBanks), nil
	})
}
