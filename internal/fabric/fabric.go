// Package fabric simulates the cluster interconnect (Table 3: 56 Gb/s
// InfiniBand, driven via MPI). Delivery is real — packets move between
// in-process nodes through channels — while timing is virtual: every
// packet charges LogGP-style wire occupancy (Alpha + bytes/Beta) to the
// sender's and receiver's clocks.
//
// Backpressure mirrors the paper's configuration of a bounded number of
// in-flight per-node queues per destination: each node's inbox is a
// bounded channel, and senders block when a receiver falls behind.
// Network threads must never send while processing (true for all
// workloads here), so this cannot deadlock.
package fabric

import (
	"fmt"
	"sync/atomic"

	"gravel/internal/stats"
	"gravel/internal/timemodel"
)

// Packet is one per-node queue in flight. Routed packets hold
// wire.RoutedMsgBytes records (final destination per message) bound for
// a group gateway (§10 hierarchical aggregation); direct packets hold
// wire.MsgWireBytes records for the receiving node itself.
type Packet struct {
	From, To int
	Buf      []byte
	Msgs     int
	Routed   bool
}

// Fabric connects n simulated nodes.
type Fabric struct {
	params *timemodel.Params
	clocks []*timemodel.Clocks
	inbox  []chan Packet

	inflight atomic.Int64

	// PktSizes records the size of every packet put on the wire by each
	// node (Table 5 "average message size").
	PktSizes []stats.SizeHist
	// SelfPkts counts node-local packets (atomics routed through the
	// local network thread, which never reach the wire).
	SelfPkts []stats.Counter
}

// New creates a fabric over the given per-node clocks.
func New(params *timemodel.Params, clocks []*timemodel.Clocks) *Fabric {
	n := len(clocks)
	if n == 0 {
		panic("fabric: no nodes")
	}
	f := &Fabric{
		params:   params,
		clocks:   clocks,
		inbox:    make([]chan Packet, n),
		PktSizes: make([]stats.SizeHist, n),
		SelfPkts: make([]stats.Counter, n),
	}
	depth := params.QueuesPerDest * n
	if depth < 4 {
		depth = 4
	}
	for i := range f.inbox {
		f.inbox[i] = make(chan Packet, depth)
	}
	return f
}

// Nodes returns the node count.
func (f *Fabric) Nodes() int { return len(f.inbox) }

// Send transmits one per-node queue from node `from` to node `to`,
// charging wire time to both endpoints. It blocks if the receiver's
// inbox is full (finite in-flight queue credit, §6).
func (f *Fabric) Send(from, to int, buf []byte, msgs int) {
	f.send(from, to, buf, msgs, false)
}

// SendRouted transmits a per-group queue (records carry their final
// destinations) to a group gateway for re-aggregation (§10).
func (f *Fabric) SendRouted(from, gateway int, buf []byte, msgs int) {
	f.send(from, gateway, buf, msgs, true)
}

func (f *Fabric) send(from, to int, buf []byte, msgs int, routed bool) {
	if to < 0 || to >= len(f.inbox) {
		panic(fmt.Sprintf("fabric: send to invalid node %d", to))
	}
	if from == to {
		// Local atomics are routed through the local network thread but
		// never touch the wire (§6).
		f.SelfPkts[from].Inc()
	} else {
		ns := f.params.WireNs(len(buf))
		f.clocks[from].AddWireSend(ns)
		f.clocks[to].AddWireRecv(ns)
		f.clocks[from].CountPacket(len(buf))
		f.PktSizes[from].Observe(int64(len(buf)))
	}
	f.inflight.Add(1)
	f.inbox[to] <- Packet{From: from, To: to, Buf: buf, Msgs: msgs, Routed: routed}
}

// Inbox returns node's receive channel; the node's network thread ranges
// over it.
func (f *Fabric) Inbox(node int) <-chan Packet { return f.inbox[node] }

// Done must be called by the network thread after fully applying a
// packet; quiescence detection depends on it.
func (f *Fabric) Done(Packet) { f.inflight.Add(-1) }

// Quiet reports whether no packets are in flight or being applied.
func (f *Fabric) Quiet() bool { return f.inflight.Load() == 0 }

// Close closes all inboxes; network threads drain and exit.
func (f *Fabric) Close() {
	for _, ch := range f.inbox {
		close(ch)
	}
}

// AvgPacketBytes returns the mean wire packet size for a node, 0 if it
// sent none.
func (f *Fabric) AvgPacketBytes(node int) float64 { return f.PktSizes[node].Mean() }

// TotalAvgPacketBytes returns the mean wire packet size across all
// nodes.
func (f *Fabric) TotalAvgPacketBytes() float64 {
	var sum, n int64
	for i := range f.PktSizes {
		sum += f.PktSizes[i].Sum()
		n += f.PktSizes[i].Count()
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}
