package fabric

import (
	"math"
	"testing"

	"gravel/internal/timemodel"
)

// near allows for the fixed-point (1/16 ns) clock granularity.
func near(a, b float64) bool { return math.Abs(a-b) < 0.125 }

func newTestFabric(n int) (*Chan, []*timemodel.Clocks) {
	clocks := make([]*timemodel.Clocks, n)
	for i := range clocks {
		clocks[i] = &timemodel.Clocks{}
	}
	return New(timemodel.Default(), clocks), clocks
}

func TestSendDeliversAndCharges(t *testing.T) {
	f, clocks := newTestFabric(3)
	buf := make([]byte, 240)
	f.Send(0, 2, buf, 10)
	pkt := <-f.Inbox(2)
	if pkt.From != 0 || pkt.To != 2 || pkt.Msgs != 10 || len(pkt.Buf) != 240 {
		t.Fatalf("packet wrong: %+v", pkt)
	}
	if f.Quiet() {
		t.Fatal("Quiet before Done")
	}
	f.Done(pkt)
	if !f.Quiet() {
		t.Fatal("not Quiet after Done")
	}
	want := timemodel.Default().WireNs(240)
	if got := clocks[0].Snapshot().WireSend; !near(got, want) {
		t.Fatalf("sender wire = %v, want %v", got, want)
	}
	if got := clocks[2].Snapshot().WireRecv; !near(got, want) {
		t.Fatalf("receiver wire = %v, want %v", got, want)
	}
	if f.PktSizes[0].Count() != 1 || f.AvgPacketBytes(0) != 240 {
		t.Fatal("packet stats wrong")
	}
}

func TestSelfSendSkipsWire(t *testing.T) {
	f, clocks := newTestFabric(2)
	f.Send(1, 1, make([]byte, 48), 2)
	pkt := <-f.Inbox(1)
	f.Done(pkt)
	if clocks[1].Snapshot().WireSend != 0 {
		t.Fatal("self-send charged wire time")
	}
	if f.SelfPkts[1].Load() != 1 {
		t.Fatal("self packet not counted")
	}
	if f.PktSizes[1].Count() != 0 {
		t.Fatal("self packet counted as wire packet")
	}
}

func TestTotalAvgPacketBytes(t *testing.T) {
	f, _ := newTestFabric(2)
	f.Send(0, 1, make([]byte, 100), 1)
	f.Send(1, 0, make([]byte, 300), 1)
	f.Done(<-f.Inbox(1))
	f.Done(<-f.Inbox(0))
	if got := f.TotalAvgPacketBytes(); got != 200 {
		t.Fatalf("avg = %v, want 200", got)
	}
	empty, _ := newTestFabric(2)
	if empty.TotalAvgPacketBytes() != 0 {
		t.Fatal("empty fabric avg should be 0")
	}
}

func TestSendInvalidDestPanics(t *testing.T) {
	f, _ := newTestFabric(2)
	defer func() {
		if recover() == nil {
			t.Fatal("invalid destination did not panic")
		}
	}()
	f.Send(0, 5, nil, 0)
}

func TestPerDestReconcilesWithSizeHist(t *testing.T) {
	f, _ := newTestFabric(3)
	f.Send(0, 1, make([]byte, 100), 1)
	f.Send(0, 2, make([]byte, 300), 1)
	f.Send(1, 2, make([]byte, 50), 1)
	f.Send(2, 2, make([]byte, 50), 1) // self: never reaches the wire
	f.Done(<-f.Inbox(1))
	f.Done(<-f.Inbox(2))
	f.Done(<-f.Inbox(2))
	f.Done(<-f.Inbox(2))
	m := f.NetMetrics()
	pkts, bytes := m.PerDest.Totals()
	var histPkts, histBytes int64
	for i := range m.PktSizes {
		histPkts += m.PktSizes[i].Count()
		histBytes += m.PktSizes[i].Sum()
	}
	if pkts != histPkts || bytes != histBytes {
		t.Fatalf("per-dest (%d pkts, %d B) != size-hist (%d pkts, %d B)",
			pkts, bytes, histPkts, histBytes)
	}
	if m.PerDest.Packets(2) != 2 || m.PerDest.Bytes(2) != 350 {
		t.Fatalf("dest 2: got %d pkts %d B, want 2 pkts 350 B",
			m.PerDest.Packets(2), m.PerDest.Bytes(2))
	}
	if m.PerDest.Packets(0) != 0 {
		t.Fatal("dest 0 received no wire packets")
	}
}

func TestRegistryBuildsChan(t *testing.T) {
	clocks := []*timemodel.Clocks{{}, {}}
	f, err := NewByName("chan", timemodel.Default(), clocks, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if f.Nodes() != 2 || !f.Hosts(1) {
		t.Fatal("registry-built chan fabric wrong shape")
	}
	f.Close()
	if _, err := NewByName("no-such-transport", timemodel.Default(), clocks, Options{}); err == nil {
		t.Fatal("unknown transport did not error")
	}
}

func TestCloseEndsInboxes(t *testing.T) {
	f, _ := newTestFabric(2)
	f.Close()
	if _, ok := <-f.Inbox(0); ok {
		t.Fatal("inbox open after Close")
	}
}
