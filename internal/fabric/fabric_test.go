package fabric

import (
	"math"
	"testing"

	"gravel/internal/timemodel"
)

// near allows for the fixed-point (1/16 ns) clock granularity.
func near(a, b float64) bool { return math.Abs(a-b) < 0.125 }

func newTestFabric(n int) (*Fabric, []*timemodel.Clocks) {
	clocks := make([]*timemodel.Clocks, n)
	for i := range clocks {
		clocks[i] = &timemodel.Clocks{}
	}
	return New(timemodel.Default(), clocks), clocks
}

func TestSendDeliversAndCharges(t *testing.T) {
	f, clocks := newTestFabric(3)
	buf := make([]byte, 240)
	f.Send(0, 2, buf, 10)
	pkt := <-f.Inbox(2)
	if pkt.From != 0 || pkt.To != 2 || pkt.Msgs != 10 || len(pkt.Buf) != 240 {
		t.Fatalf("packet wrong: %+v", pkt)
	}
	if f.Quiet() {
		t.Fatal("Quiet before Done")
	}
	f.Done(pkt)
	if !f.Quiet() {
		t.Fatal("not Quiet after Done")
	}
	want := timemodel.Default().WireNs(240)
	if got := clocks[0].Snapshot().WireSend; !near(got, want) {
		t.Fatalf("sender wire = %v, want %v", got, want)
	}
	if got := clocks[2].Snapshot().WireRecv; !near(got, want) {
		t.Fatalf("receiver wire = %v, want %v", got, want)
	}
	if f.PktSizes[0].Count() != 1 || f.AvgPacketBytes(0) != 240 {
		t.Fatal("packet stats wrong")
	}
}

func TestSelfSendSkipsWire(t *testing.T) {
	f, clocks := newTestFabric(2)
	f.Send(1, 1, make([]byte, 48), 2)
	pkt := <-f.Inbox(1)
	f.Done(pkt)
	if clocks[1].Snapshot().WireSend != 0 {
		t.Fatal("self-send charged wire time")
	}
	if f.SelfPkts[1].Load() != 1 {
		t.Fatal("self packet not counted")
	}
	if f.PktSizes[1].Count() != 0 {
		t.Fatal("self packet counted as wire packet")
	}
}

func TestTotalAvgPacketBytes(t *testing.T) {
	f, _ := newTestFabric(2)
	f.Send(0, 1, make([]byte, 100), 1)
	f.Send(1, 0, make([]byte, 300), 1)
	f.Done(<-f.Inbox(1))
	f.Done(<-f.Inbox(0))
	if got := f.TotalAvgPacketBytes(); got != 200 {
		t.Fatalf("avg = %v, want 200", got)
	}
	empty, _ := newTestFabric(2)
	if empty.TotalAvgPacketBytes() != 0 {
		t.Fatal("empty fabric avg should be 0")
	}
}

func TestSendInvalidDestPanics(t *testing.T) {
	f, _ := newTestFabric(2)
	defer func() {
		if recover() == nil {
			t.Fatal("invalid destination did not panic")
		}
	}()
	f.Send(0, 5, nil, 0)
}

func TestCloseEndsInboxes(t *testing.T) {
	f, _ := newTestFabric(2)
	f.Close()
	if _, ok := <-f.Inbox(0); ok {
		t.Fatal("inbox open after Close")
	}
}
