package fabric

import (
	"fmt"
	"sync/atomic"

	"gravel/internal/timemodel"
	"gravel/internal/wire"
)

// Chan is the default in-process transport: delivery is real — packets
// move between in-process nodes through channels — while timing is
// virtual: every packet charges LogGP-style wire occupancy (Alpha +
// bytes/Beta) to the sender's and receiver's clocks.
//
// Backpressure mirrors the paper's configuration of a bounded number of
// in-flight per-node queues per destination: each node's inbox is a
// bounded channel, and senders block when a receiver falls behind.
// Network threads must never send while processing (true for all
// workloads here), so this cannot deadlock.
type Chan struct {
	*Metrics
	params *timemodel.Params
	clocks []*timemodel.Clocks
	inbox  []chan Packet

	inflight atomic.Int64
}

// New creates a channel fabric over the given per-node clocks.
func New(params *timemodel.Params, clocks []*timemodel.Clocks) *Chan {
	n := len(clocks)
	if n == 0 {
		panic("fabric: no nodes")
	}
	f := &Chan{
		Metrics: NewMetrics(n),
		params:  params,
		clocks:  clocks,
		inbox:   make([]chan Packet, n),
	}
	depth := params.QueuesPerDest * n
	if depth < 4 {
		depth = 4
	}
	for i := range f.inbox {
		f.inbox[i] = make(chan Packet, depth)
	}
	return f
}

// Nodes returns the node count.
func (f *Chan) Nodes() int { return len(f.inbox) }

// Hosts implements Fabric: every node lives in this process.
func (f *Chan) Hosts(int) bool { return true }

// Send transmits one per-node queue from node `from` to node `to`,
// charging wire time to both endpoints. It blocks if the receiver's
// inbox is full (finite in-flight queue credit, §6).
func (f *Chan) Send(from, to int, buf []byte, msgs int) {
	f.send(from, to, buf, msgs, false)
}

// SendRouted transmits a per-group queue (records carry their final
// destinations) to a group gateway for re-aggregation (§10).
func (f *Chan) SendRouted(from, gateway int, buf []byte, msgs int) {
	f.send(from, gateway, buf, msgs, true)
}

func (f *Chan) send(from, to int, buf []byte, msgs int, routed bool) {
	if to < 0 || to >= len(f.inbox) {
		panic(fmt.Sprintf("fabric: send to invalid node %d", to))
	}
	if from == to {
		// Local atomics are routed through the local network thread but
		// never touch the wire (§6).
		f.SelfPkts[from].Inc()
	} else {
		ns := f.params.WireNs(len(buf))
		f.clocks[from].AddWireSend(ns)
		f.clocks[to].AddWireRecv(ns)
		f.clocks[from].CountPacket(len(buf))
		f.ObserveWire(from, to, len(buf))
	}
	f.inflight.Add(1)
	f.inbox[to] <- Packet{From: from, To: to, Buf: buf, Msgs: msgs, Routed: routed}
}

// Inbox returns node's receive channel; the node's network thread ranges
// over it.
func (f *Chan) Inbox(node int) <-chan Packet { return f.inbox[node] }

// Done must be called by the network thread after fully applying a
// packet; quiescence detection depends on it. It recycles the packet's
// buffer into the wire pool — the packet travels zero-copy from the
// sender's builder, so this completes the pooled buffer lifecycle.
func (f *Chan) Done(p Packet) {
	f.inflight.Add(-1)
	wire.PutBuf(p.Buf)
}

// Quiet reports whether no packets are in flight or being applied.
func (f *Chan) Quiet() bool { return f.inflight.Load() == 0 }

// Close closes all inboxes; network threads drain and exit.
func (f *Chan) Close() {
	for _, ch := range f.inbox {
		close(ch)
	}
}

var _ Fabric = (*Chan)(nil)
