package fabric

import (
	"fmt"
	"sync/atomic"

	"gravel/internal/timemodel"
	"gravel/internal/wire"
)

// Chan is the default in-process transport: delivery is real — packets
// move between in-process nodes through channels — while timing is
// virtual: every packet charges LogGP-style wire occupancy (Alpha +
// bytes/Beta) to the sender's and receiver's clocks.
//
// Backpressure mirrors the paper's configuration of a bounded number of
// in-flight per-node queues per destination: each node's inbox is a
// bounded channel, and senders block when a receiver falls behind.
// Network threads must never send while processing (true for all
// workloads here), so this cannot deadlock.
//
// With more than one resolver bank the fabric scatters each direct
// packet's records into per-bank sub-packets at the send boundary
// (same address -> same bank, so per-word ordering survives); routed
// packets always land whole on bank 0. One bank is the paper's serial
// network thread, delivered through the identical single-channel path.
type Chan struct {
	*Metrics
	params *timemodel.Params
	clocks []*timemodel.Clocks
	banks  int
	inbox  [][]chan Packet // [node][bank]

	// localApply, when set (SetLocalApply, before the first Send),
	// resolves from == to packets synchronously instead of
	// round-tripping them through an inbox.
	localApply func(Packet)

	inflight atomic.Int64
}

// New creates a channel fabric over the given per-node clocks with a
// single resolver bank (the paper's serial network thread).
func New(params *timemodel.Params, clocks []*timemodel.Clocks) *Chan {
	return NewBanked(params, clocks, 1)
}

// NewBanked creates a channel fabric with the given number of resolver
// banks per node (0 means 1; must be a power of two, max
// MaxResolverBanks).
func NewBanked(params *timemodel.Params, clocks []*timemodel.Clocks, banks int) *Chan {
	n := len(clocks)
	if n == 0 {
		panic("fabric: no nodes")
	}
	if banks == 0 {
		banks = 1
	}
	if !ValidBanks(banks) {
		panic(fmt.Sprintf("fabric: resolver banks %d must be a power of two in [1, %d]", banks, MaxResolverBanks))
	}
	f := &Chan{
		Metrics: NewMetrics(n),
		params:  params,
		clocks:  clocks,
		banks:   banks,
		inbox:   make([][]chan Packet, n),
	}
	depth := params.QueuesPerDest * n
	if depth < 4 {
		depth = 4
	}
	for i := range f.inbox {
		f.inbox[i] = make([]chan Packet, banks)
		for b := range f.inbox[i] {
			f.inbox[i][b] = make(chan Packet, depth)
		}
	}
	return f
}

// Nodes returns the node count.
func (f *Chan) Nodes() int { return len(f.inbox) }

// Hosts implements Fabric: every node lives in this process.
func (f *Chan) Hosts(int) bool { return true }

// Banks implements Banked.
func (f *Chan) Banks() int { return f.banks }

// BankInbox implements Banked.
func (f *Chan) BankInbox(node, bank int) <-chan Packet { return f.inbox[node][bank] }

// SetLocalApply implements LocalApplier. It must be called before the
// first Send.
func (f *Chan) SetLocalApply(fn func(Packet)) { f.localApply = fn }

// Send transmits one per-node queue from node `from` to node `to`,
// charging wire time to both endpoints. It blocks if the receiver's
// inbox is full (finite in-flight queue credit, §6).
func (f *Chan) Send(from, to int, buf []byte, msgs int) {
	f.send(from, to, buf, msgs, false)
}

// SendRouted transmits a per-group queue (records carry their final
// destinations) to a group gateway for re-aggregation (§10).
func (f *Chan) SendRouted(from, gateway int, buf []byte, msgs int) {
	f.send(from, gateway, buf, msgs, true)
}

func (f *Chan) send(from, to int, buf []byte, msgs int, routed bool) {
	if to < 0 || to >= len(f.inbox) {
		panic(fmt.Sprintf("fabric: send to invalid node %d", to))
	}
	if from == to {
		// Local atomics are routed through the local network thread but
		// never touch the wire (§6).
		f.SelfPkts[from].Inc()
		if la := f.localApply; la != nil && !routed {
			// Bypass: resolve directly against the banks on this
			// goroutine. No inbox hop, no in-flight accounting — the
			// packet is fully applied when Send returns, which is
			// strictly earlier than the quiescence protocol could have
			// observed it.
			la(Packet{From: from, To: to, Buf: buf, Msgs: msgs})
			wire.PutBuf(buf)
			return
		}
	} else {
		ns := f.params.WireNs(len(buf))
		f.clocks[from].AddWireSend(ns)
		f.clocks[to].AddWireRecv(ns)
		f.clocks[from].CountPacket(len(buf))
		f.ObserveWire(from, to, len(buf))
	}
	if f.banks > 1 && !routed && len(buf)%wire.MsgWireBytes == 0 {
		// (A misaligned buffer skips the demux and lands whole on bank
		// 0, whose resolver reports it as a typed decode failure.)
		// Count every sub-packet in flight before pushing the first:
		// otherwise a fast bank could apply and Done its share while a
		// sibling is still unpushed, dipping the in-flight count to
		// zero mid-delivery.
		var subs [MaxResolverBanks]Packet
		nsub := 0
		ScatterBanks(buf, f.banks, func(bank int, sub []byte, m int) {
			subs[nsub] = Packet{From: from, To: to, Buf: sub, Msgs: m, Bank: bank, Sub: true}
			nsub++
		})
		wire.PutBuf(buf)
		f.inflight.Add(int64(nsub))
		for i := 0; i < nsub; i++ {
			f.inbox[to][subs[i].Bank] <- subs[i]
		}
		return
	}
	f.inflight.Add(1)
	f.inbox[to][0] <- Packet{From: from, To: to, Buf: buf, Msgs: msgs, Routed: routed}
}

// Inbox returns node's bank-0 receive channel; with one bank this is
// the node's whole traffic and the network thread ranges over it.
func (f *Chan) Inbox(node int) <-chan Packet { return f.inbox[node][0] }

// Done must be called by the network thread after fully applying a
// packet; quiescence detection depends on it. It recycles the packet's
// buffer into the wire pool — the packet travels zero-copy from the
// sender's builder, so this completes the pooled buffer lifecycle.
func (f *Chan) Done(p Packet) {
	f.inflight.Add(-1)
	wire.PutBuf(p.Buf)
}

// Quiet reports whether no packets are in flight or being applied.
func (f *Chan) Quiet() bool { return f.inflight.Load() == 0 }

// Close closes all inboxes; network threads drain and exit.
func (f *Chan) Close() {
	for _, node := range f.inbox {
		for _, ch := range node {
			close(ch)
		}
	}
}

var (
	_ Fabric       = (*Chan)(nil)
	_ Banked       = (*Chan)(nil)
	_ LocalApplier = (*Chan)(nil)
)
