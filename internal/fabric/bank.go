package fabric

import (
	"encoding/binary"

	"gravel/internal/wire"
)

// Receive-side resolver banks. The paper (§6) resolves every message —
// even node-local atomics — on one serial network thread per node; a
// banked fabric splits that stream by destination address so the
// runtime can run one resolver goroutine per bank. The bank of a
// record is a pure function of the record (BankOfRecord): data records
// bank by destination address, so two messages touching the same word
// always resolve on the same bank and per-word ordering survives the
// fan-out; active messages all resolve on bank 0, so handler execution
// stays serialized per node.

// MaxResolverBanks bounds the bank count: the demux scatter uses a
// fixed-size scratch table so the receive hot path stays off the heap.
const MaxResolverBanks = 64

// BankOf maps a PGAS address to a resolver bank. banks must be a power
// of two; the low bits are used so that neighbouring addresses spread
// across banks.
func BankOf(a uint64, banks int) int { return int(a & uint64(banks-1)) }

// BankOfRecord maps one wire record to its resolver bank. Data records
// (puts, atomics, signalled puts) bank by destination address; active
// messages always resolve on bank 0. AM handlers are host callbacks
// with arbitrary shared state whose contract is serialized per-node
// execution (the paper's network thread), and an AM's argument 0 is an
// opaque payload, not an address — banking on it would both break the
// contract and scatter unrelated handler calls.
func BankOfRecord(cmd, a uint64, banks int) int {
	if wire.Op(cmd&0xff) == wire.OpAM {
		return 0
	}
	return BankOf(a, banks)
}

// Banked is implemented by fabrics that deliver each node's traffic
// into per-bank inboxes. Fabric.Inbox(node) remains valid and is bank
// 0's inbox; routed packets (whose records carry mixed final
// destinations) always arrive whole on bank 0, preserving the §10
// gateway's relay order.
type Banked interface {
	// Banks returns the per-node bank count (>= 1).
	Banks() int
	// BankInbox returns the receive channel for one bank of a node.
	// BankInbox(node, 0) == Inbox(node).
	BankInbox(node, bank int) <-chan Packet
}

// LocalApplier is implemented by fabrics that can hand node-local
// (from == to) packets straight back to the runtime instead of
// round-tripping them through an inbox. The hook applies the packet
// synchronously on the calling goroutine and must not retain the
// buffer; the fabric recycles it when the hook returns and never
// counts the packet as in flight. SelfPkts metrics and the time-model
// charges are unchanged, so modeled figures do not drift.
type LocalApplier interface {
	SetLocalApply(func(Packet))
}

// ScatterBanks splits a direct per-node queue buffer into per-bank
// buffers by record address and calls emit for each non-empty bank in
// ascending order, with the bank's record count. Buffers handed to
// emit are drawn from the wire packet pool (ownership transfers to the
// callee); the input buffer is left untouched for the caller to
// recycle. banks must be in (1, MaxResolverBanks].
func ScatterBanks(buf []byte, banks int, emit func(bank int, buf []byte, msgs int)) {
	var out [MaxResolverBanks][]byte
	var msgs [MaxResolverBanks]int
	for off := 0; off < len(buf); off += wire.MsgWireBytes {
		cmd := binary.LittleEndian.Uint64(buf[off : off+8])
		a := binary.LittleEndian.Uint64(buf[off+8 : off+16])
		b := BankOfRecord(cmd, a, banks)
		if out[b] == nil {
			out[b] = wire.GetBuf(len(buf))
		}
		out[b] = append(out[b], buf[off:off+wire.MsgWireBytes]...)
		msgs[b]++
	}
	for b := 0; b < banks; b++ {
		if out[b] != nil {
			emit(b, out[b], msgs[b])
		}
	}
}

// ValidBanks reports whether a configured bank count is usable: a
// power of two in [1, MaxResolverBanks].
func ValidBanks(banks int) bool {
	return banks >= 1 && banks <= MaxResolverBanks && banks&(banks-1) == 0
}
