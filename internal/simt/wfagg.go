package simt

// WFAggregate performs a warp-aggregated offload (grape's AddBytesWarp
// pattern): for each wavefront, the active lanes ballot, a per-
// destination leader reserves space for the whole mask with one atomic,
// and every lane copies its record at its lane offset. f is invoked
// once per (wavefront, distinct destination) with the destination and
// the participating lanes in lane order; the slice is reused across
// invocations and must not be retained.
//
// Time model, per active wavefront:
//
//   - 5 vector instructions on that WF alone: 2 for the ballot +
//     intra-WF prefix sum that elects leaders and assigns lane offsets,
//     3 for each lane's 24-byte record copy into the reserved span.
//   - 1 global atomic per distinct destination (the leader's
//     reservation), charged via ChargeAtomics — so a skewed destination
//     distribution costs fewer reservations than a uniform one, which
//     is exactly the effect the aggstrategy experiment measures.
//   - a divergence event when the WF is partially active, as with
//     VectorMasked.
//
// destOf must be cheap and pure (it is evaluated more than once per
// lane while grouping).
func (g *Group) WFAggregate(active []bool, destOf func(lane int) int, f func(dest int, lanes []int)) {
	w := g.dev.Arch.WFWidth
	if cap(g.wfLanes) < w {
		g.wfLanes = make([]int, 0, w)
	}
	for base := 0; base < g.Size; base += w {
		end := base + w
		if end > g.Size {
			end = g.Size
		}
		count := 0
		for l := base; l < end; l++ {
			if active[l] {
				count++
			}
		}
		if count == 0 {
			continue
		}
		g.chargeVectorWFs(5, 1)
		if count < end-base {
			g.divergedOps++
		}
		// Group the WF's lanes by destination in first-seen lane order
		// (the leader is the first active lane per destination). The
		// O(width²) scan stands in for the ballot loop a real GPU runs.
		for l := base; l < end; l++ {
			if !active[l] {
				continue
			}
			d := destOf(l)
			leader := true
			for p := base; p < l; p++ {
				if active[p] && destOf(p) == d {
					leader = false
					break
				}
			}
			if !leader {
				continue
			}
			lanes := g.wfLanes[:0]
			for p := l; p < end; p++ {
				if active[p] && destOf(p) == d {
					lanes = append(lanes, p)
				}
			}
			g.ChargeAtomics(1)
			f(d, lanes)
		}
	}
}
