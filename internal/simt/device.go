// Package simt simulates the GPU execution model the paper targets
// (§2): work-items (WIs) grouped into 64-wide wavefronts (WFs) that
// execute in lockstep, wavefronts grouped into work-groups (WGs) that
// share a compute unit (CU), WG-level operations (barrier, reduce,
// prefix-sum, broadcast), branch divergence via active masks, and
// occupancy limited by scratchpad capacity.
//
// A work-group executes as one goroutine; lanes never run as independent
// goroutines, which both matches SIMT semantics (lanes advance in
// lockstep between explicit vector operations) and keeps the simulation
// fast. Every vector instruction, WG-level operation, atomic and barrier
// is charged to a cycle counter that package timemodel converts into
// virtual GPU time.
//
// The same machinery doubles as the CPU-execution substrate for the
// paper's Figure 13 baseline: a "CPU device" is simply an Arch with four
// single-lane compute units at 3.7 GHz.
package simt

import (
	"fmt"
	"sync"
	"sync/atomic"

	"gravel/internal/timemodel"
)

// Arch describes the data-parallel processor being simulated.
type Arch struct {
	// Name labels the architecture in stats output.
	Name string
	// CUs is the number of compute units (or CPU threads).
	CUs int
	// WFWidth is the lockstep width. 1 for a CPU.
	WFWidth int
	// ClockHz is the core clock.
	ClockHz float64
	// MaxWGsPerCU bounds occupancy.
	MaxWGsPerCU int
	// ScratchpadPerCU is LDS capacity in bytes (0 = no scratchpad limit).
	ScratchpadPerCU int
	// OccupancyForFullThroughput is the resident-WG count per CU below
	// which memory latency is no longer hidden.
	OccupancyForFullThroughput int
	// CyclesVectorIssue is the cycle cost of issuing one vector
	// instruction for one wavefront.
	CyclesVectorIssue int64
	// CyclesMemCacheLine is the extra cost of each additional cache line
	// touched by a divergent memory operation.
	CyclesMemCacheLine int64
	// CyclesAtomic is the cost of a global atomic RMW.
	CyclesAtomic int64
	// CyclesBarrier is the cost of a WG-level barrier.
	CyclesBarrier int64
	// PredOverheadInstr is the per-iteration instruction overhead of
	// software predication (§5.1).
	PredOverheadInstr int64
	// FBarOverheadInstr is the per-iteration instruction overhead of the
	// software-emulated fine-grain barrier (§8.2).
	FBarOverheadInstr int64
}

// GPUArch returns the paper's integrated GPU (Table 3) under the given
// cost parameters.
func GPUArch(p *timemodel.Params) Arch {
	return Arch{
		Name:                       "gpu",
		CUs:                        p.CUs,
		WFWidth:                    p.WFWidth,
		ClockHz:                    p.GPUClockHz,
		MaxWGsPerCU:                p.MaxWGsPerCU,
		ScratchpadPerCU:            p.ScratchpadPerCU,
		OccupancyForFullThroughput: p.OccupancyForFullThroughput,
		CyclesVectorIssue:          p.CyclesVectorIssue,
		CyclesMemCacheLine:         p.CyclesMemCacheLine,
		CyclesAtomic:               p.CyclesAtomic,
		CyclesBarrier:              p.CyclesBarrier,
		PredOverheadInstr:          14,
		FBarOverheadInstr:          18,
	}
}

// CPUArch returns the paper's host CPU (2 cores / 4 threads at 3.7 GHz)
// modeled as four single-lane compute units. It drives the Figure 13
// CPU-only distributed baseline.
func CPUArch(p *timemodel.Params) Arch {
	return Arch{
		Name:                       "cpu",
		CUs:                        p.CPUThreads,
		WFWidth:                    1,
		ClockHz:                    p.CPUClockHz,
		MaxWGsPerCU:                1,
		OccupancyForFullThroughput: 1,
		// A CPU core retires roughly one application "lane op" per
		// CPUOpNs; expressed in cycles of the 3.7 GHz clock.
		CyclesVectorIssue: int64(p.CPUOpNs * p.CPUClockHz / 1e9),
		// Memory stalls are already folded into CPUOpNs; charge only a
		// small extra per divergent line to avoid double counting.
		CyclesMemCacheLine: int64(5 * p.CPUClockHz / 1e9),
		CyclesAtomic:       int64(20 * p.CPUClockHz / 1e9),
		CyclesBarrier:      int64(50 * p.CPUClockHz / 1e9),
		PredOverheadInstr:  0,
		FBarOverheadInstr:  0,
	}
}

// DivergenceMode selects how WG-level operations behave in diverged
// control flow (§5, §8.2).
type DivergenceMode int

const (
	// SoftwarePredication keeps inactive WIs executing alongside their WG
	// and pays a per-iteration software overhead (current GPUs, §5.1).
	SoftwarePredication DivergenceMode = iota
	// WGReconvergence models a GPU that tracks control flow at WG
	// granularity (a WG-level reconvergence stack, §5.3): no software
	// overhead, but completely inactive WFs still execute.
	WGReconvergence
	// FineGrainBarrier models HSA-style fbars extended to arbitrary WI
	// sets (§5.3): retired WFs stop executing, but the (software
	// emulated) fbar operations themselves cost extra instructions.
	FineGrainBarrier
)

// String implements fmt.Stringer.
func (m DivergenceMode) String() string {
	switch m {
	case SoftwarePredication:
		return "sw-predication"
	case WGReconvergence:
		return "wg-reconvergence"
	case FineGrainBarrier:
		return "fbar"
	default:
		return fmt.Sprintf("DivergenceMode(%d)", int(m))
	}
}

// Counters aggregates dynamic execution statistics across all launches
// of a device.
type Counters struct {
	VectorOps   atomic.Int64 // vector instructions issued (per WF)
	Cycles      atomic.Int64 // total issue cycles across CUs
	Atomics     atomic.Int64 // global atomic operations
	Barriers    atomic.Int64 // WG barriers
	WGLaunches  atomic.Int64
	DivergedOps atomic.Int64 // vector ops issued with a partial mask
	Messages    atomic.Int64 // messages offloaded to the network queue
}

// Device is one simulated data-parallel processor.
type Device struct {
	Arch Arch
	// Mode selects diverged WG-level operation behaviour.
	Mode DivergenceMode
	// Clock, if non-nil, receives virtual GPU busy time at the end of
	// every Launch.
	Clock *timemodel.Clocks
	// Parallelism caps the number of WGs simulated concurrently. Zero
	// means min(GOMAXPROCS-ish default, resident WGs).
	Parallelism int

	Counters Counters
}

// NewDevice returns a device with the given architecture using software
// predication.
func NewDevice(a Arch) *Device {
	return &Device{Arch: a, Parallelism: a.CUs}
}

// Occupancy reports the number of resident WGs per CU for a kernel using
// scratchPerWG bytes of scratchpad, and the throughput slowdown factor
// (>=1) caused by insufficient latency hiding. This reproduces the
// paper's observation (§7.2) that scratchpad-hungry kernels (coalesced
// APIs, mer) lose concurrency.
func (d *Device) Occupancy(scratchPerWG int) (wgsPerCU int, slowdown float64) {
	wgsPerCU = d.Arch.MaxWGsPerCU
	if scratchPerWG > 0 && d.Arch.ScratchpadPerCU > 0 {
		byScratch := d.Arch.ScratchpadPerCU / scratchPerWG
		if byScratch < 1 {
			byScratch = 1
		}
		if byScratch < wgsPerCU {
			wgsPerCU = byScratch
		}
	}
	slowdown = 1
	if wgsPerCU < d.Arch.OccupancyForFullThroughput {
		slowdown = float64(d.Arch.OccupancyForFullThroughput) / float64(wgsPerCU)
	}
	return wgsPerCU, slowdown
}

// Launch executes a kernel over grid work-items in work-groups of wgSize
// lanes, using scratchPerWG bytes of scratchpad per WG. It blocks until
// every WG has finished, then charges the resulting virtual GPU time to
// d.Clock (if set) and returns it in nanoseconds.
//
// The kernel runs once per WG; lane-level work is expressed through the
// Group's vector operations.
func (d *Device) Launch(grid, wgSize, scratchPerWG int, kernel func(g *Group)) float64 {
	return d.LaunchAt(grid, 0, wgSize, scratchPerWG, kernel)
}

// launchState is the worker pool of one LaunchAt call: workers pull
// work-group indexes from next until the grid is exhausted. It is
// shared with the Groups it runs so Group.Park can spawn a replacement
// worker when a WG blocks on a condition that only not-yet-scheduled
// WGs (or background message delivery) can satisfy.
type launchState struct {
	d            *Device
	grid, base   int
	wgSize       int
	numWGs       int
	kernel       func(g *Group)
	next         atomic.Int64
	wg           sync.WaitGroup
	launchCycles *atomic.Int64
}

// runWorker is one worker goroutine's WG pull loop; ls.wg must have
// been incremented for it before it starts.
func (ls *launchState) runWorker() {
	defer ls.wg.Done()
	g := newGroup(ls.d, ls.wgSize)
	g.ls = ls
	for {
		i := int(ls.next.Add(1)) - 1
		if i >= ls.numWGs {
			return
		}
		size := ls.wgSize
		if rem := ls.grid - i*ls.wgSize; rem < size {
			size = rem
		}
		g.reset(i, ls.base+i*ls.wgSize, size)
		ls.kernel(g)
		ls.launchCycles.Add(g.cycles)
		g.flushCounters()
	}
}

// LaunchAt is Launch with the global work-item IDs offset by base; the
// coprocessor model uses it to run a grid in chunks (§3.1).
func (d *Device) LaunchAt(grid, base, wgSize, scratchPerWG int, kernel func(g *Group)) float64 {
	if wgSize <= 0 {
		panic("simt: non-positive work-group size")
	}
	if grid < 0 {
		panic("simt: negative grid size")
	}
	numWGs := (grid + wgSize - 1) / wgSize
	_, slowdown := d.Occupancy(scratchPerWG)

	workers := d.Parallelism
	if workers <= 0 {
		workers = d.Arch.CUs
	}
	if workers > numWGs {
		workers = numWGs
	}

	var launchCycles atomic.Int64
	if numWGs > 0 {
		ls := &launchState{
			d:            d,
			grid:         grid,
			base:         base,
			wgSize:       wgSize,
			numWGs:       numWGs,
			kernel:       kernel,
			launchCycles: &launchCycles,
		}
		ls.wg.Add(workers)
		for w := 0; w < workers; w++ {
			go ls.runWorker()
		}
		ls.wg.Wait()
	}

	d.Counters.WGLaunches.Add(int64(numWGs))
	d.Counters.Cycles.Add(launchCycles.Load())
	if numWGs == 0 {
		return 0
	}

	// Virtual busy time: total issue cycles spread across the CUs,
	// stretched by the scratchpad-occupancy slowdown. Grid-size
	// starvation is deliberately NOT modelled: the paper's inputs are
	// ~1000x larger than this reproduction's, so its GPU is never
	// grid-starved, and modelling starvation at reduced scale would
	// introduce an artifact the paper does not have (see DESIGN.md).
	ns := float64(launchCycles.Load()) / float64(d.Arch.CUs) / d.Arch.ClockHz * 1e9 * slowdown
	if d.Clock != nil {
		d.Clock.AddGPU(ns)
	}
	return ns
}
