package simt

import (
	"testing"

	"gravel/internal/timemodel"
)

// BenchmarkLaunch measures simulation overhead per work-item for a
// trivial kernel (the harness's fixed cost).
func BenchmarkLaunch(b *testing.B) {
	d := NewDevice(GPUArch(timemodel.Default()))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Launch(1<<14, 256, 0, func(g *Group) {
			g.Vector(func(int) {})
		})
	}
}

// BenchmarkPredicatedLoop measures the diverged-loop machinery.
func BenchmarkPredicatedLoop(b *testing.B) {
	d := NewDevice(GPUArch(timemodel.Default()))
	for i := 0; i < b.N; i++ {
		d.Launch(1<<12, 256, 0, func(g *Group) {
			counts := make([]int, g.Size)
			for l := range counts {
				counts[l] = l % 8
			}
			g.PredicatedLoop(counts, 2, func(int, []bool) {})
		})
	}
}

// BenchmarkWGOps measures reduce/prefix-sum per work-group.
func BenchmarkWGOps(b *testing.B) {
	d := NewDevice(GPUArch(timemodel.Default()))
	for i := 0; i < b.N; i++ {
		d.Launch(256, 256, 0, func(g *Group) {
			vals := make([]int, g.Size)
			mask := make([]bool, g.Size)
			for l := range vals {
				vals[l] = l
				mask[l] = l%3 == 0
			}
			g.ReduceMaxInt(vals)
			g.PrefixSumMask(mask)
		})
	}
}
