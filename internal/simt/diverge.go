package simt

// PredicatedLoop executes a data-dependent loop in which lane l performs
// counts[l] iterations, following the paper's diverged WG-level
// semantics (§5). The loop body runs once per iteration with the set of
// active lanes; WG-level operations inside the body (including message
// offload) operate across exactly the active lanes.
//
// The cost charged per iteration depends on the device's DivergenceMode:
//
//   - SoftwarePredication (Figure 10b): every wavefront executes every
//     iteration, plus PredOverheadInstr instructions of explicit
//     predication code per iteration.
//   - WGReconvergence (§5.3, thread block compaction): every wavefront
//     executes every iteration (execution granularity is widened to the
//     WG), but with no software overhead.
//   - FineGrainBarrier (§5.3, Figure 10c): wavefronts whose lanes have
//     all left the fbar stop executing, at the price of
//     FBarOverheadInstr instructions of (software-emulated) fbar
//     bookkeeping per iteration.
//
// bodyInstr is the instruction count of one loop body; active is reused
// across iterations and must not be retained.
func (g *Group) PredicatedLoop(counts []int, bodyInstr int, body func(iter int, active []bool)) {
	maxIter := g.ReduceMaxInt(counts)
	if maxIter == 0 {
		return
	}
	arch := &g.dev.Arch
	active := make([]bool, g.Size)
	wfw := arch.WFWidth

	for i := 0; i < maxIter; i++ {
		activeLanes := 0
		activeWFs := 0
		for wf := 0; wf*wfw < g.Size; wf++ {
			wfActive := false
			hi := (wf + 1) * wfw
			if hi > g.Size {
				hi = g.Size
			}
			for l := wf * wfw; l < hi; l++ {
				active[l] = i < counts[l]
				if active[l] {
					wfActive = true
					activeLanes++
				}
			}
			if wfActive {
				activeWFs++
			}
		}
		if activeLanes == 0 {
			break
		}

		switch g.dev.Mode {
		case SoftwarePredication:
			g.chargeVector(int64(bodyInstr) + arch.PredOverheadInstr)
		case WGReconvergence:
			g.chargeVector(int64(bodyInstr))
		case FineGrainBarrier:
			// Only WFs still registered with the fbar execute; emulating
			// the fbar costs extra instructions on those WFs.
			g.chargeVectorWFs(int64(bodyInstr)+arch.FBarOverheadInstr, int64(activeWFs))
			g.Barrier()
		}
		if activeLanes < g.Size {
			g.divergedOps++
		}

		g.activeLanes = activeLanes
		body(i, active)
		g.activeLanes = 0
	}
}

// FBar is a software emulation of HSA's fine-grain barrier extended to
// arbitrary work-item sets (§5.3). It tracks which lanes of a WG are
// registered; Sync synchronizes exactly the registered lanes. It exists
// so kernels can be written in the Figure 10c style; the cost model is
// applied by the owning Group.
type FBar struct {
	g      *Group
	member []bool
	n      int
}

// InitFBar creates a fine-grain barrier with all lanes registered
// (Figure 10c lines 15-16).
func (g *Group) InitFBar() *FBar {
	g.ChargeInstr(1)
	m := make([]bool, g.Size)
	for i := range m {
		m[i] = true
	}
	return &FBar{g: g, member: m, n: g.Size}
}

// Leave unregisters a lane (Figure 10c line 20).
func (f *FBar) Leave(lane int) {
	if f.member[lane] {
		f.member[lane] = false
		f.n--
	}
}

// Members returns the current membership mask.
func (f *FBar) Members() []bool { return f.member }

// Count returns the number of registered lanes.
func (f *FBar) Count() int { return f.n }

// Sync synchronizes the registered lanes, charging a barrier across only
// the wavefronts that still have members.
func (f *FBar) Sync() {
	g := f.g
	wfs := int64(0)
	wfw := g.dev.Arch.WFWidth
	for wf := 0; wf*wfw < g.Size; wf++ {
		hi := (wf + 1) * wfw
		if hi > g.Size {
			hi = g.Size
		}
		for l := wf * wfw; l < hi; l++ {
			if f.member[l] {
				wfs++
				break
			}
		}
	}
	g.chargeVectorWFs(g.dev.Arch.FBarOverheadInstr, wfs)
	g.Barrier()
}
