package simt

import (
	"sync/atomic"
	"testing"
	"testing/quick"

	"gravel/internal/timemodel"
)

func testDevice() *Device {
	return NewDevice(GPUArch(timemodel.Default()))
}

func TestLaunchCoversGrid(t *testing.T) {
	d := testDevice()
	const grid = 1000
	var hits [grid]atomic.Int32
	d.Launch(grid, 256, 0, func(g *Group) {
		g.Vector(func(l int) {
			hits[g.GlobalID(l)].Add(1)
		})
	})
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("work-item %d executed %d times", i, hits[i].Load())
		}
	}
	if got := d.Counters.WGLaunches.Load(); got != 4 {
		t.Fatalf("WGLaunches = %d, want 4", got)
	}
}

func TestLaunchAtOffsets(t *testing.T) {
	d := testDevice()
	var min, max atomic.Int64
	min.Store(1 << 60)
	d.LaunchAt(100, 5000, 64, 0, func(g *Group) {
		g.Vector(func(l int) {
			id := int64(g.GlobalID(l))
			for {
				m := min.Load()
				if id >= m || min.CompareAndSwap(m, id) {
					break
				}
			}
			for {
				m := max.Load()
				if id <= m || max.CompareAndSwap(m, id) {
					break
				}
			}
		})
	})
	if min.Load() != 5000 || max.Load() != 5099 {
		t.Fatalf("global ID range [%d,%d], want [5000,5099]", min.Load(), max.Load())
	}
}

func TestPartialLastWG(t *testing.T) {
	d := testDevice()
	var sizes []int
	var mu chan struct{} = make(chan struct{}, 1)
	mu <- struct{}{}
	d.Launch(300, 256, 0, func(g *Group) {
		<-mu
		sizes = append(sizes, g.Size)
		mu <- struct{}{}
	})
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != 300 || len(sizes) != 2 {
		t.Fatalf("sizes = %v", sizes)
	}
}

func TestWGOps(t *testing.T) {
	d := testDevice()
	d.Launch(256, 256, 0, func(g *Group) {
		vals := make([]int, g.Size)
		for l := range vals {
			vals[l] = l % 17
		}
		if got := g.ReduceMaxInt(vals); got != 16 {
			t.Errorf("ReduceMax = %d, want 16", got)
		}
		u := make([]uint64, g.Size)
		for l := range u {
			u[l] = 2
		}
		if got := g.ReduceSumU64(u); got != 512 {
			t.Errorf("ReduceSum = %d, want 512", got)
		}
		mask := make([]bool, g.Size)
		for l := 0; l < g.Size; l += 2 {
			mask[l] = true
		}
		offs, n := g.PrefixSumMask(mask)
		if n != 128 {
			t.Errorf("PrefixSumMask total = %d, want 128", n)
		}
		if offs[0] != 0 || offs[1] != 1 || offs[2] != 1 || offs[4] != 2 {
			t.Errorf("offsets wrong: %v", offs[:5])
		}
		if g.Broadcast(42) != 42 {
			t.Errorf("Broadcast")
		}
	})
}

// TestPrefixSumMaskProperty: offsets of active lanes are exactly
// 0..n-1 in lane order.
func TestPrefixSumMaskProperty(t *testing.T) {
	d := testDevice()
	f := func(raw []bool) bool {
		size := len(raw)
		if size == 0 {
			size = 1
			raw = []bool{true}
		}
		if size > 256 {
			size = 256
			raw = raw[:256]
		}
		ok := true
		d.Launch(size, size, 0, func(g *Group) {
			offs, n := g.PrefixSumMask(raw)
			next := 0
			for l := 0; l < g.Size; l++ {
				if raw[l] {
					if offs[l] != next {
						ok = false
					}
					next++
				}
			}
			if next != n {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPredicatedLoopActiveSets(t *testing.T) {
	d := testDevice()
	d.Launch(128, 128, 0, func(g *Group) {
		counts := make([]int, g.Size)
		for l := range counts {
			counts[l] = l % 5
		}
		executed := make([]int, g.Size)
		g.PredicatedLoop(counts, 1, func(i int, active []bool) {
			for l := 0; l < g.Size; l++ {
				if active[l] {
					if i >= counts[l] {
						t.Errorf("lane %d active at iter %d beyond count %d", l, i, counts[l])
					}
					executed[l]++
				}
			}
			if got, want := g.ActiveLaneCount(), countTrue(active); got != want {
				t.Errorf("ActiveLaneCount = %d, want %d", got, want)
			}
		})
		for l, c := range counts {
			if executed[l] != c {
				t.Errorf("lane %d executed %d iters, want %d", l, executed[l], c)
			}
		}
	})
}

func countTrue(b []bool) int {
	n := 0
	for _, v := range b {
		if v {
			n++
		}
	}
	return n
}

func TestPredicatedLoopZeroCounts(t *testing.T) {
	d := testDevice()
	ran := false
	d.Launch(64, 64, 0, func(g *Group) {
		counts := make([]int, g.Size)
		g.PredicatedLoop(counts, 1, func(int, []bool) { ran = true })
	})
	if ran {
		t.Fatal("body ran with all-zero counts")
	}
}

// TestDivergenceModeCosts: for a sparse predicated loop, software
// predication must cost the most and WG-reconvergence the least; fbar
// lands between (§8.2 ordering).
func TestDivergenceModeCosts(t *testing.T) {
	cost := func(mode DivergenceMode) int64 {
		d := testDevice()
		d.Mode = mode
		d.Launch(2048, 256, 0, func(g *Group) {
			counts := make([]int, g.Size)
			for l := range counts {
				if l%101 == 0 { // very sparse activity: whole WFs go idle
					counts[l] = 1 + l%8
				}
			}
			g.PredicatedLoop(counts, 4, func(int, []bool) {})
		})
		return d.Counters.Cycles.Load()
	}
	sw := cost(SoftwarePredication)
	wgcf := cost(WGReconvergence)
	fbar := cost(FineGrainBarrier)
	if !(sw > wgcf) {
		t.Errorf("sw-pred (%d) should cost more than wg-reconvergence (%d)", sw, wgcf)
	}
	if !(fbar < sw) {
		t.Errorf("fbar (%d) should cost less than sw-pred (%d)", fbar, sw)
	}
}

func TestOccupancy(t *testing.T) {
	d := testDevice()
	wgs, slow := d.Occupancy(0)
	if wgs != 8 || slow != 1 {
		t.Fatalf("no-scratch occupancy = %d/%v", wgs, slow)
	}
	wgs, slow = d.Occupancy(32 << 10) // half the scratchpad per WG
	if wgs != 2 || slow != 2 {
		t.Fatalf("32kB occupancy = %d/%v, want 2/2", wgs, slow)
	}
	wgs, slow = d.Occupancy(128 << 10) // more than the scratchpad
	if wgs != 1 || slow != 4 {
		t.Fatalf("oversized occupancy = %d/%v, want 1/4", wgs, slow)
	}
}

func TestScratchSlowdownChargesTime(t *testing.T) {
	run := func(scratch int) float64 {
		d := testDevice()
		return d.Launch(4096, 256, scratch, func(g *Group) {
			g.VectorN(16, func(int) {})
		})
	}
	base := run(0)
	starved := run(40 << 10) // 1 WG/CU
	if starved <= base*3 {
		t.Fatalf("scratch starvation %v not ~4x base %v", starved, base)
	}
}

func TestFBarMembership(t *testing.T) {
	d := testDevice()
	d.Launch(128, 128, 0, func(g *Group) {
		fb := g.InitFBar()
		if fb.Count() != 128 {
			t.Fatalf("initial members = %d", fb.Count())
		}
		for l := 0; l < 64; l++ {
			fb.Leave(l)
		}
		fb.Leave(0) // double leave is a no-op
		if fb.Count() != 64 {
			t.Fatalf("members after leave = %d", fb.Count())
		}
		fb.Sync()
		m := fb.Members()
		if m[0] || !m[64] {
			t.Fatal("membership mask wrong")
		}
	})
}

func TestCountersAccumulate(t *testing.T) {
	d := testDevice()
	d.Launch(512, 256, 0, func(g *Group) {
		g.Vector(func(int) {})
		g.ChargeAtomics(2)
		g.Barrier()
		g.ChargeMessages(g.Size)
	})
	c := &d.Counters
	if c.Atomics.Load() != 4 || c.Barriers.Load() != 2 || c.Messages.Load() != 512 {
		t.Fatalf("counters: atomics=%d barriers=%d msgs=%d",
			c.Atomics.Load(), c.Barriers.Load(), c.Messages.Load())
	}
	if c.VectorOps.Load() == 0 || c.Cycles.Load() == 0 {
		t.Fatal("vector ops / cycles not counted")
	}
}

func TestVectorMaskedDivergenceCounting(t *testing.T) {
	d := testDevice()
	d.Launch(256, 256, 0, func(g *Group) {
		full := make([]bool, g.Size)
		for i := range full {
			full[i] = true
		}
		g.VectorMasked(1, full, func(int) {})
		partial := make([]bool, g.Size)
		partial[0] = true
		g.VectorMasked(1, partial, func(int) {})
	})
	if got := d.Counters.DivergedOps.Load(); got != 4 { // 4 WFs, partial op only
		t.Fatalf("DivergedOps = %d, want 4", got)
	}
}

func TestCPUArchSingleLane(t *testing.T) {
	p := timemodel.Default()
	d := NewDevice(CPUArch(p))
	var n atomic.Int64
	d.Launch(100, 4, 0, func(g *Group) {
		if g.WFs() != g.Size { // width-1 wavefronts
			t.Errorf("WFs = %d, want %d", g.WFs(), g.Size)
		}
		g.Vector(func(int) { n.Add(1) })
	})
	if n.Load() != 100 {
		t.Fatalf("lanes run = %d", n.Load())
	}
}

func TestDivergenceModeString(t *testing.T) {
	if SoftwarePredication.String() != "sw-predication" ||
		WGReconvergence.String() != "wg-reconvergence" ||
		FineGrainBarrier.String() != "fbar" {
		t.Fatal("mode strings wrong")
	}
}
