package simt

import (
	"runtime"
	"sync/atomic"
)

// Group is one work-group executing a kernel. All lane-level state lives
// in slices indexed by lane ID; lanes advance in lockstep through the
// vector operations below. A Group is only ever used by the single
// goroutine executing its kernel.
type Group struct {
	dev *Device

	// ID is the work-group index within the launch grid.
	ID int
	// Global0 is the global work-item ID of lane 0.
	Global0 int
	// Size is the number of lanes in this WG (the last WG of a grid may
	// be partial).
	Size int

	cycles      int64
	vecOps      int64
	atomics     int64
	barriers    int64
	divergedOps int64
	messages    int64
	activeLanes int

	// scratch buffers reused across operations
	offs    []int
	wfLanes []int // WFAggregate's per-destination lane list

	// ls is the launch this group is running under (nil for groups
	// constructed outside a launch, e.g. in tests); see Park.
	ls *launchState
}

// ActiveLaneCount returns the number of active lanes in the current
// PredicatedLoop iteration (the full WG size outside one). Kernels use
// it to charge per-lane memory-divergence costs.
func (g *Group) ActiveLaneCount() int {
	if g.activeLanes > 0 {
		return g.activeLanes
	}
	return g.Size
}

func newGroup(d *Device, wgSize int) *Group {
	return &Group{dev: d, offs: make([]int, wgSize)}
}

func (g *Group) reset(id, global0, size int) {
	g.ID = id
	g.Global0 = global0
	g.Size = size
	g.cycles = 0
	g.vecOps = 0
	g.atomics = 0
	g.barriers = 0
	g.divergedOps = 0
	g.messages = 0
}

func (g *Group) flushCounters() {
	c := &g.dev.Counters
	c.VectorOps.Add(g.vecOps)
	c.Atomics.Add(g.atomics)
	c.Barriers.Add(g.barriers)
	c.DivergedOps.Add(g.divergedOps)
	c.Messages.Add(g.messages)
}

// Device returns the device executing this group.
func (g *Group) Device() *Device { return g.dev }

// WFs returns the number of wavefronts in this group.
func (g *Group) WFs() int {
	w := g.dev.Arch.WFWidth
	return (g.Size + w - 1) / w
}

// GlobalID returns the global work-item ID of a lane.
func (g *Group) GlobalID(lane int) int { return g.Global0 + lane }

// chargeVector charges n vector instructions executed by all WFs of the
// group.
func (g *Group) chargeVector(n int64) {
	wfs := int64(g.WFs())
	g.vecOps += n * wfs
	g.cycles += n * wfs * g.dev.Arch.CyclesVectorIssue
}

// chargeVectorWFs charges n vector instructions executed by only wfs
// wavefronts (used by fbar-style execution where retired WFs idle).
func (g *Group) chargeVectorWFs(n, wfs int64) {
	g.vecOps += n * wfs
	g.cycles += n * wfs * g.dev.Arch.CyclesVectorIssue
}

// ChargeInstr charges n scalar-equivalent vector instructions to the
// group; kernels use it to account for per-lane arithmetic not captured
// by an explicit Vector call.
func (g *Group) ChargeInstr(n int) { g.chargeVector(int64(n)) }

// ChargeCycles charges raw cycles to the group (e.g. a synchronous wait
// on an external resource, as in the coalesced-APIs model's blocking
// sends).
func (g *Group) ChargeCycles(n int64) { g.cycles += n }

// NsToCycles converts nanoseconds to this device's cycles.
func (d *Device) NsToCycles(ns float64) int64 {
	return int64(ns * d.Arch.ClockHz / 1e9)
}

// ChargeMemDivergence charges the cost of a divergent memory operation
// touching lines cache lines (§2.2, Figure 2b).
func (g *Group) ChargeMemDivergence(lines int) {
	g.cycles += int64(lines) * g.dev.Arch.CyclesMemCacheLine
}

// ChargeMessages counts messages offloaded to the network interface.
func (g *Group) ChargeMessages(n int) { g.messages += int64(n) }

// Vector executes one data-parallel instruction: f runs for every lane
// in lockstep order. One vector instruction is charged per wavefront.
func (g *Group) Vector(f func(lane int)) {
	g.chargeVector(1)
	for l := 0; l < g.Size; l++ {
		f(l)
	}
}

// VectorN executes f for every lane, charging n vector instructions;
// use it when the lane body represents several machine instructions.
func (g *Group) VectorN(n int, f func(lane int)) {
	g.chargeVector(int64(n))
	for l := 0; l < g.Size; l++ {
		f(l)
	}
}

// VectorMasked executes f only for lanes with active[lane], charging the
// full SIMT width (inactive lanes occupy execution slots — branch
// divergence, §2.2). n is the instruction count of the body.
func (g *Group) VectorMasked(n int, active []bool, f func(lane int)) {
	g.chargeVector(int64(n))
	partial := false
	for l := 0; l < g.Size; l++ {
		if active[l] {
			f(l)
		} else {
			partial = true
		}
	}
	if partial {
		g.divergedOps += int64(g.WFs())
	}
}

// Park blocks the calling work-group until cond reports true, while
// keeping the rest of the launch making progress: if the grid still has
// unscheduled work-groups, a replacement worker is spawned to run them,
// so a WG waiting on a condition satisfied by an earlier-indexed but
// not-yet-scheduled WG of the same grid (or by background message
// delivery) cannot wedge the launch, no matter how small the worker
// pool. The wait itself is cooperative (runtime.Gosched) and charges no
// cycles — wall-clock spin time is nondeterministic, so callers charge
// a fixed virtual-time cost instead (timemodel.Params.WaitUntilNs).
// progress, if non-nil, is invoked on every spin iteration so the
// caller can drive model-specific forward progress (e.g. flushing its
// own staged send buffers).
func (g *Group) Park(cond func() bool, progress func()) {
	if cond() {
		return
	}
	if ls := g.ls; ls != nil && int(ls.next.Load()) < ls.numWGs {
		ls.wg.Add(1)
		go ls.runWorker()
	}
	for !cond() {
		if progress != nil {
			progress()
		}
		runtime.Gosched()
	}
}

// Barrier synchronizes the group's wavefronts.
func (g *Group) Barrier() {
	g.barriers++
	g.cycles += g.dev.Arch.CyclesBarrier
}

// AtomicAdd performs (and charges) one global atomic fetch-add executed
// by a single lane on behalf of the group.
func (g *Group) AtomicAdd(v *atomic.Int64, delta int64) int64 {
	g.ChargeAtomics(1)
	return v.Add(delta) - delta
}

// ChargeAtomics charges n global atomic operations without performing
// them (the actual atomic may live inside another package, e.g. the
// producer/consumer queue).
func (g *Group) ChargeAtomics(n int) {
	g.atomics += int64(n)
	g.cycles += int64(n) * g.dev.Arch.CyclesAtomic
}

// chargeWGOp charges a log-depth WG-level data-parallel operation
// (reduce, prefix-sum): one vector instruction per stage plus two
// barriers (Figure 11a).
func (g *Group) chargeWGOp() {
	stages := int64(1)
	for s := 1; s < g.Size; s <<= 1 {
		stages++
	}
	g.chargeVector(stages)
	g.Barrier()
	g.Barrier()
}

// ReduceMaxInt returns the maximum of vals[0:Size] via a WG-level
// reduction (§2.1).
func (g *Group) ReduceMaxInt(vals []int) int {
	g.chargeWGOp()
	m := vals[0]
	for l := 1; l < g.Size; l++ {
		if vals[l] > m {
			m = vals[l]
		}
	}
	return m
}

// ReduceSumU64 returns the sum of vals[0:Size] via a WG-level reduction.
func (g *Group) ReduceSumU64(vals []uint64) uint64 {
	g.chargeWGOp()
	var s uint64
	for l := 0; l < g.Size; l++ {
		s += vals[l]
	}
	return s
}

// PrefixSumMask computes, for every lane, the number of active lanes
// before it, and returns (offsets, total). Inactive lanes contribute the
// non-interfering value 0 (§5.2). offsets is valid until the next
// PrefixSumMask call on this group.
func (g *Group) PrefixSumMask(active []bool) (offsets []int, total int) {
	g.chargeWGOp()
	offs := g.offs[:g.Size]
	n := 0
	for l := 0; l < g.Size; l++ {
		offs[l] = n
		if active[l] {
			n++
		}
	}
	return offs, n
}

// Broadcast returns v (computed by one leader lane) to all lanes,
// charged as a single WG-level operation.
func (g *Group) Broadcast(v uint64) uint64 {
	g.chargeVector(1)
	g.Barrier()
	return v
}
