package transport

import (
	"errors"
	"sync"
	"testing"

	"gravel/internal/fabric"
	"gravel/internal/rt"
	"gravel/internal/timemodel"
)

// TestCoordinatorTypedReductions drives reduceLocked directly: min and
// max folds, explicit contribution counts (teams), and legacy defaults
// (rop "" = sum, count 0 = all nodes) must all complete and reclaim
// their entries.
func TestCoordinatorTypedReductions(t *testing.T) {
	c := NewCoordinator(4)
	reduce := func(node int, key string, val uint64, rop string, count int) (uint64, bool) {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.reduceLocked(node, key, val, rop, count)
	}

	// Min over an explicit 2-contribution team: completes without the
	// other two nodes ever showing up.
	if _, ready := reduce(1, "m", 30, "min", 2); ready {
		t.Fatal("team reduce ready with one contribution")
	}
	if tot, ready := reduce(3, "m", 20, "min", 2); !ready || tot != 20 {
		t.Fatalf("team min = %d ready=%v, want 20 true", tot, ready)
	}
	if tot, ready := reduce(1, "m", 30, "min", 2); !ready || tot != 20 {
		t.Fatalf("poll after completion = %d ready=%v", tot, ready)
	}

	// Max over all nodes via the legacy default count.
	vals := []uint64{5, 40, 12, 7}
	for n := 0; n < 3; n++ {
		if _, ready := reduce(n, "x", vals[n], "max", 0); ready {
			t.Fatalf("world max ready after %d contributions", n+1)
		}
	}
	if tot, ready := reduce(3, "x", vals[3], "max", 0); !ready || tot != 40 {
		t.Fatalf("world max = %d ready=%v, want 40 true", tot, ready)
	}
	for n := 0; n < 3; n++ {
		if tot, ready := reduce(n, "x", vals[n], "max", 0); !ready || tot != 40 {
			t.Fatalf("node %d collect = %d ready=%v", n, tot, ready)
		}
	}

	// A count above the cluster size is clamped to the cluster (defensive
	// against a bad client), and all entries are reclaimed.
	if _, ready := reduce(0, "c", 1, "", 99); ready {
		t.Fatal("clamped count completed early")
	}
	for n := 1; n < 3; n++ {
		reduce(n, "c", 1, "", 99)
	}
	if tot, ready := reduce(3, "c", 1, "", 99); !ready || tot != 4 {
		t.Fatalf("clamped count: final contributor got %d ready=%v", tot, ready)
	}
	for n := 0; n < 3; n++ { // node 3 collected when it completed the fold
		if tot, ready := reduce(n, "c", 1, "", 99); !ready || tot != 4 {
			t.Fatalf("clamped count: node %d got %d ready=%v", n, tot, ready)
		}
	}
	c.mu.Lock()
	nr := len(c.reduces)
	c.mu.Unlock()
	if nr != 0 {
		t.Fatalf("%d reduce entries retained", nr)
	}
}

// collAll runs fn concurrently as every listed member's collective call
// and returns the per-member results.
func collAll(t *testing.T, fabs []*TCP, members []int, fn func(c rt.Collectives, self int) (uint64, error)) []uint64 {
	t.Helper()
	out := make([]uint64, len(members))
	errs := make([]error, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func(i, m int) {
			defer wg.Done()
			out[i], errs[i] = fn(fabs[m].Collectives(), m)
		}(i, m)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("member %d: %v", members[i], err)
		}
	}
	return out
}

// TestTCPCollectives runs the full Collectives surface over a real
// 4-process coordinator cluster: world and team all-reduces under every
// op, broadcast, and barrier, with non-members running a disjoint
// collective concurrently (teams must neither block nor be blocked).
func TestTCPCollectives(t *testing.T) {
	fabs := newTCPCluster(t, 4)
	defer closeAll(fabs)
	world := []int{0, 1, 2, 3}

	// World sum: must agree with the legacy Reduce path bit-for-bit —
	// same key, same coordinator entry — so issue it through the new
	// surface and check the value the old surface would have produced.
	vals := []uint64{10, 20, 30, 40}
	got := collAll(t, fabs, world, func(c rt.Collectives, self int) (uint64, error) {
		return c.AllReduce("s", rt.WorldTeam, rt.OpSum, vals[self])
	})
	for i, v := range got {
		if v != 100 {
			t.Fatalf("world sum at %d = %d, want 100", i, v)
		}
	}

	// Min and max.
	got = collAll(t, fabs, world, func(c rt.Collectives, self int) (uint64, error) {
		return c.AllReduce("mn", rt.WorldTeam, rt.OpMin, vals[self])
	})
	if got[2] != 10 {
		t.Fatalf("world min = %d, want 10", got[2])
	}
	got = collAll(t, fabs, world, func(c rt.Collectives, self int) (uint64, error) {
		return c.AllReduce("mx", rt.WorldTeam, rt.OpMax, vals[self])
	})
	if got[1] != 40 {
		t.Fatalf("world max = %d, want 40", got[1])
	}

	// Two disjoint teams run different collectives concurrently under
	// the same key: the team tag keeps their coordinator entries apart.
	low, high := rt.TeamOf(0, 1), rt.TeamOf(2, 3)
	var wg sync.WaitGroup
	var lowGot, highGot []uint64
	wg.Add(2)
	go func() {
		defer wg.Done()
		lowGot = collAll(t, fabs, []int{0, 1}, func(c rt.Collectives, self int) (uint64, error) {
			return c.AllReduce("t", low, rt.OpSum, vals[self])
		})
	}()
	go func() {
		defer wg.Done()
		highGot = collAll(t, fabs, []int{2, 3}, func(c rt.Collectives, self int) (uint64, error) {
			return c.AllReduce("t", high, rt.OpMin, vals[self])
		})
	}()
	wg.Wait()
	if lowGot[0] != 30 || lowGot[1] != 30 {
		t.Fatalf("low-team sum = %v, want 30", lowGot)
	}
	if highGot[0] != 30 || highGot[1] != 30 {
		t.Fatalf("high-team min = %v, want 30", highGot)
	}

	// Broadcast: root's value reaches every member, root's only.
	got = collAll(t, fabs, world, func(c rt.Collectives, self int) (uint64, error) {
		return c.Broadcast("b", rt.WorldTeam, 2, vals[self])
	})
	for i, v := range got {
		if v != 30 {
			t.Fatalf("broadcast at %d = %d, want root's 30", i, v)
		}
	}

	// Team barrier.
	collAll(t, fabs, []int{0, 1}, func(c rt.Collectives, self int) (uint64, error) {
		return 0, c.Barrier("bar", low)
	})

	// Non-members get a typed error and never touch the coordinator.
	var ce *rt.CollectiveError
	if _, err := fabs[3].Collectives().AllReduce("t2", low, rt.OpSum, 1); !errors.As(err, &ce) {
		t.Fatalf("non-member allreduce err = %v, want *CollectiveError", err)
	}
	if _, err := fabs[0].Collectives().Broadcast("b2", low, 3, 1); !errors.As(err, &ce) {
		t.Fatalf("non-member root err = %v, want *CollectiveError", err)
	}
	if err := fabs[2].Collectives().Barrier("bar2", low); !errors.As(err, &ce) {
		t.Fatalf("non-member barrier err = %v, want *CollectiveError", err)
	}
}

// TestTCPCollectivesLegacyInterop pins mixed-fleet compatibility: a
// world-team sum through the new surface and a legacy Reduce call under
// the same key must rendezvous on the same coordinator entry, as must a
// new-surface world Barrier and the legacy TCP.Barrier.
func TestTCPCollectivesLegacyInterop(t *testing.T) {
	fabs := newTCPCluster(t, 2)
	defer closeAll(fabs)

	var tot0, tot1 uint64
	var err0, err1 error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		tot0, err0 = fabs[0].Collectives().AllReduce("mix", rt.WorldTeam, rt.OpSum, 3)
	}()
	go func() {
		defer wg.Done()
		tot1, err1 = fabs[1].Reduce("mix", 4) // legacy caller, same key
	}()
	wg.Wait()
	if err0 != nil || err1 != nil {
		t.Fatalf("mixed reduce: %v / %v", err0, err1)
	}
	if tot0 != 7 || tot1 != 7 {
		t.Fatalf("mixed reduce totals %d / %d, want 7", tot0, tot1)
	}

	wg.Add(2)
	var berr0, berr1 error
	go func() {
		defer wg.Done()
		berr0 = fabs[0].Collectives().Barrier("gate", rt.WorldTeam)
	}()
	go func() {
		defer wg.Done()
		berr1 = fabs[1].Barrier("gate") // legacy barrier, same derived key
	}()
	wg.Wait()
	if berr0 != nil || berr1 != nil {
		t.Fatalf("mixed barrier: %v / %v", berr0, berr1)
	}
}

// TestStandaloneCollectivesIdentity: a coordinator-less single-process
// fabric degrades every collective to the identity, like TCP.Reduce.
func TestStandaloneCollectivesIdentity(t *testing.T) {
	f, err := NewTCP(timemodel.Default(), newClocks(1), fabric.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	c := f.Collectives()
	if v, err := c.AllReduce("k", rt.WorldTeam, rt.OpMin, 11); v != 11 || err != nil {
		t.Fatalf("standalone allreduce = %d, %v", v, err)
	}
	if v, err := c.Broadcast("k", rt.WorldTeam, 0, 6); v != 6 || err != nil {
		t.Fatalf("standalone broadcast = %d, %v", v, err)
	}
	if err := c.Barrier("k", rt.WorldTeam); err != nil {
		t.Fatalf("standalone barrier: %v", err)
	}
}
