// Package fault is a deterministic, seeded fault injector for the
// socket transports: net.Conn / net.Listener middleware that subjects
// every outbound frame to a configurable schedule of drops,
// duplications, delays, reorderings, byte corruption, connection
// stalls, severs, node blackouts, and asymmetric partitions.
//
// The paper assumes a reliable MPI-over-InfiniBand interconnect
// (§3.4, §6); this reproduction emulates that interconnect itself, so
// the transport's exactly-once and quiescence guarantees must be
// proven against hostile networks, not just a clean localhost. The
// injector makes hostility reproducible: every probabilistic decision
// is drawn from a named per-link rand.Source derived from Config.Seed,
// so a failing chaos run can be replayed from its seed — the per-link
// fault schedule is a pure function of (seed, link, frame index).
//
// A nil *Config (and the nil *Injector it yields) is the production
// configuration: every hook is a zero-allocation pass-through that
// returns its argument unchanged.
package fault

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"gravel/internal/obs"
)

// Config is a fault schedule. Probabilities are per frame written on a
// link (a directed sender→receiver pair); windows are relative to
// injector creation, which in a Gravel cluster is transport
// construction — effectively cluster start.
type Config struct {
	// Seed names the run. Identical seeds replay identical per-link
	// decision sequences.
	Seed uint64

	// Drop is the probability a frame is silently discarded. The
	// receiver sees a sequence gap on the next frame and poisons the
	// connection; the sender reconnects and retransmits.
	Drop float64
	// Dup is the probability a frame is written twice. The receiver's
	// dedup window re-acknowledges and discards the copy.
	Dup float64
	// Reorder is the probability a frame is held back and written
	// after its successor (a one-frame transposition).
	Reorder float64
	// Corrupt is the probability one payload byte is flipped. The
	// frame CRC must catch it: the receiver counts it in
	// NetStats.CorruptFrames and forces a retransmit.
	Corrupt float64
	// Delay is the probability a frame's write sleeps for a uniform
	// duration in (0, DelayMax].
	Delay    float64
	DelayMax time.Duration
	// Stall is the probability the connection stops making progress
	// for StallFor before the frame is written (a frozen-but-open
	// peer; heartbeat/suspect detection territory when StallFor
	// exceeds the suspect timeout).
	Stall    float64
	StallFor time.Duration
	// Sever is the probability the connection is closed immediately
	// after the frame is written; SeverMax caps severs per link
	// (0 = unlimited).
	Sever    float64
	SeverMax int

	// Blackouts cut every link touching a node for a window: dials
	// fail, established connections in both directions are severed.
	// A blackout longer than the suspect timeout is an unrecoverable
	// fault by design.
	Blackouts []Blackout
	// Partitions cut one direction of one link for a window
	// (asymmetric: From can still hear To).
	Partitions []Partition
}

// Blackout takes a node off the network for a window.
type Blackout struct {
	Node     int
	Start    time.Duration
	Duration time.Duration
}

// Partition blocks the directed link From→To for a window.
type Partition struct {
	From, To int
	Start    time.Duration
	Duration time.Duration
}

// Enabled reports whether the config injects anything at all.
func (c *Config) Enabled() bool {
	if c == nil {
		return false
	}
	return c.Drop > 0 || c.Dup > 0 || c.Reorder > 0 || c.Corrupt > 0 ||
		c.Delay > 0 || c.Stall > 0 || c.Sever > 0 ||
		len(c.Blackouts) > 0 || len(c.Partitions) > 0
}

// Entry is one injected fault, for the diagnostic log.
type Entry struct {
	Elapsed  time.Duration // since injector creation
	From, To int           // link (From < 0: inbound, peer unknown yet)
	Kind     string        // "drop", "dup", "delay", ...
	Frame    uint64        // per-link frame index the decision applied to
}

func (e Entry) String() string {
	return fmt.Sprintf("%8.3fs %d->%d #%d %s",
		e.Elapsed.Seconds(), e.From, e.To, e.Frame, e.Kind)
}

// Counts summarizes injected faults by kind.
type Counts struct {
	Drop, Dup, Reorder, Corrupt, Delay, Stall, Sever, Blocked int64
}

func (c Counts) String() string {
	return fmt.Sprintf("drop=%d dup=%d reorder=%d corrupt=%d delay=%d stall=%d sever=%d blocked=%d",
		c.Drop, c.Dup, c.Reorder, c.Corrupt, c.Delay, c.Stall, c.Sever, c.Blocked)
}

// Total returns the total number of injected faults.
func (c Counts) Total() int64 {
	return c.Drop + c.Dup + c.Reorder + c.Corrupt + c.Delay + c.Stall + c.Sever + c.Blocked
}

const logCap = 512 // most recent entries kept for the diagnostic dump

// Injector applies a Config to a transport's connections. All methods
// are safe on a nil receiver (pass-through), so the disabled path costs
// nothing.
type Injector struct {
	cfg   Config
	epoch time.Time

	mu     sync.Mutex
	links  map[linkKey]*linkState
	log    []Entry
	logAt  int
	full   bool
	counts Counts
}

type linkKey struct{ from, to int }

// linkState is the per-directed-link decision state. Decisions are
// drawn under the injector mutex from a rand.Rand seeded by
// (Config.Seed, from, to), so each link's schedule is independent of
// every other link's traffic and of wall-clock timing.
type linkState struct {
	rng    *rand.Rand
	frames uint64 // frames decided on this link
	severs int    // severs injected so far
	held   []byte // reorder: frame held back, written after its successor
}

// New builds an injector for an n-node cluster. A nil or disabled
// config yields a nil injector, whose methods all pass through.
func New(cfg *Config) *Injector {
	if !cfg.Enabled() {
		return nil
	}
	return &Injector{
		cfg:   *cfg,
		epoch: time.Now(),
		links: make(map[linkKey]*linkState),
	}
}

// Enabled reports whether this injector injects anything (nil-safe;
// New returns nil for disabled configs).
func (in *Injector) Enabled() bool { return in != nil }

// Config returns the schedule (nil receiver: nil).
func (in *Injector) Config() *Config {
	if in == nil {
		return nil
	}
	c := in.cfg
	return &c
}

// link returns the decision state for a directed link, creating it
// deterministically on first use. in.mu must be held.
func (in *Injector) link(from, to int) *linkState {
	k := linkKey{from, to}
	ls := in.links[k]
	if ls == nil {
		// SplitMix64-style mix of (seed, from, to) so each link gets an
		// independent, reproducible stream.
		z := in.cfg.Seed + 0x9e3779b97f4a7c15*uint64(from+1) + 0xbf58476d1ce4e5b9*uint64(to+1)
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		ls = &linkState{rng: rand.New(rand.NewSource(int64(z)))}
		in.links[k] = ls
	}
	return ls
}

// record appends one fault to the bounded log and its counter. in.mu
// must be held.
func (in *Injector) record(from, to int, kind string, frame uint64) {
	if obs.Enabled() {
		obs.Emit(obs.KFault, from, int64(to), int64(frame), kind)
	}
	e := Entry{Elapsed: time.Since(in.epoch), From: from, To: to, Kind: kind, Frame: frame}
	if len(in.log) < logCap {
		in.log = append(in.log, e)
	} else {
		in.log[in.logAt] = e
		in.full = true
	}
	in.logAt = (in.logAt + 1) % logCap
	switch kind {
	case "drop":
		in.counts.Drop++
	case "dup":
		in.counts.Dup++
	case "reorder":
		in.counts.Reorder++
	case "corrupt":
		in.counts.Corrupt++
	case "delay":
		in.counts.Delay++
	case "stall":
		in.counts.Stall++
	case "sever":
		in.counts.Sever++
	default:
		in.counts.Blocked++
	}
}

// Log returns the most recent injected faults, oldest first.
func (in *Injector) Log() []Entry {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.full {
		return append([]Entry(nil), in.log...)
	}
	out := make([]Entry, 0, logCap)
	out = append(out, in.log[in.logAt:]...)
	out = append(out, in.log[:in.logAt]...)
	return out
}

// Counters returns the per-kind fault totals.
func (in *Injector) Counters() Counts {
	if in == nil {
		return Counts{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts
}

// blackoutActive reports whether node is inside a blackout window at
// elapsed time el.
func (in *Injector) blackoutActive(node int, el time.Duration) bool {
	for _, b := range in.cfg.Blackouts {
		if b.Node == node && el >= b.Start && el < b.Start+b.Duration {
			return true
		}
	}
	return false
}

// partitionActive reports whether the directed link from→to is cut at
// elapsed time el.
func (in *Injector) partitionActive(from, to int, el time.Duration) bool {
	for _, p := range in.cfg.Partitions {
		if p.From == from && p.To == to && el >= p.Start && el < p.Start+p.Duration {
			return true
		}
	}
	return false
}

// LinkBlocked reports whether the directed link from→to is currently
// cut by a blackout or partition. The transports consult it before
// dialing, so a cut link fails fast into the reconnect backoff loop.
func (in *Injector) LinkBlocked(from, to int) bool {
	if in == nil {
		return false
	}
	el := time.Since(in.epoch)
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.blackoutActive(from, el) || in.blackoutActive(to, el) || in.partitionActive(from, to, el) {
		in.record(from, to, "blocked", 0)
		return true
	}
	return false
}

// errInjected is returned by faulted connection operations; the
// transport treats it like any other connection failure.
type injectedError struct{ kind string }

func (e *injectedError) Error() string { return "fault: injected " + e.kind }

// WrapConn wraps an outbound connection carrying frames from→to. Each
// Write must be one whole frame (the transports write frames with a
// single Write call), which is what makes frame-granular drop /
// duplicate / reorder / corrupt decisions possible at the conn layer.
func (in *Injector) WrapConn(c net.Conn, from, to int) net.Conn {
	if in == nil {
		return c
	}
	return &faultConn{Conn: c, in: in, from: from, to: to}
}

// WrapListener wraps a node's listener so inbound connections observe
// that node's blackout windows (refused while black, severed when a
// window opens mid-connection). Probabilistic frame faults stay on the
// outbound side, where the link identity is known before the first
// byte.
func (in *Injector) WrapListener(ln net.Listener, self int) net.Listener {
	if in == nil || (len(in.cfg.Blackouts) == 0 && len(in.cfg.Partitions) == 0) {
		return ln
	}
	return &faultListener{Listener: ln, in: in, self: self}
}

type faultListener struct {
	net.Listener
	in   *Injector
	self int
}

func (fl *faultListener) Accept() (net.Conn, error) {
	for {
		c, err := fl.Listener.Accept()
		if err != nil {
			return nil, err
		}
		el := time.Since(fl.in.epoch)
		fl.in.mu.Lock()
		black := fl.in.blackoutActive(fl.self, el)
		if black {
			fl.in.record(-1, fl.self, "blocked", 0)
		}
		fl.in.mu.Unlock()
		if black {
			c.Close()
			continue
		}
		return &blackoutConn{Conn: c, in: fl.in, node: fl.self}, nil
	}
}

// blackoutConn severs an established inbound connection when its
// node's blackout window opens.
type blackoutConn struct {
	net.Conn
	in   *Injector
	node int
}

func (bc *blackoutConn) check() error {
	el := time.Since(bc.in.epoch)
	bc.in.mu.Lock()
	black := bc.in.blackoutActive(bc.node, el)
	bc.in.mu.Unlock()
	if black {
		bc.Conn.Close()
		return &injectedError{kind: "blackout"}
	}
	return nil
}

func (bc *blackoutConn) Read(b []byte) (int, error) {
	if err := bc.check(); err != nil {
		return 0, err
	}
	return bc.Conn.Read(b)
}

func (bc *blackoutConn) Write(b []byte) (int, error) {
	if err := bc.check(); err != nil {
		return 0, err
	}
	return bc.Conn.Write(b)
}

// faultConn applies the probabilistic schedule to each outbound frame.
type faultConn struct {
	net.Conn
	in       *Injector
	from, to int
}

// decision is the outcome drawn for one frame.
type decision struct {
	drop, dup, corrupt, sever bool
	reorderHold               bool
	release                   []byte // previously held frame, written after this one
	delay                     time.Duration
	stall                     time.Duration
	corruptAt                 int // payload byte to flip
}

func (fc *faultConn) Write(b []byte) (int, error) {
	in := fc.in
	el := time.Since(in.epoch)

	in.mu.Lock()
	if in.blackoutActive(fc.from, el) || in.blackoutActive(fc.to, el) ||
		in.partitionActive(fc.from, fc.to, el) {
		in.record(fc.from, fc.to, "blocked", 0)
		in.mu.Unlock()
		fc.Conn.Close()
		return 0, &injectedError{kind: "partition"}
	}
	ls := in.link(fc.from, fc.to)
	idx := ls.frames
	ls.frames++
	cfg := &in.cfg
	r := ls.rng
	var d decision
	// One uniform draw per configured fault class keeps each link's
	// decision stream a pure function of its frame index.
	if cfg.Drop > 0 && r.Float64() < cfg.Drop {
		d.drop = true
		in.record(fc.from, fc.to, "drop", idx)
	}
	if cfg.Dup > 0 && r.Float64() < cfg.Dup {
		d.dup = true
	}
	if cfg.Reorder > 0 && r.Float64() < cfg.Reorder {
		d.reorderHold = true
	}
	if cfg.Corrupt > 0 && r.Float64() < cfg.Corrupt {
		d.corrupt = true
		d.corruptAt = r.Intn(1 << 16)
	}
	if cfg.Delay > 0 && r.Float64() < cfg.Delay {
		d.delay = time.Duration(1 + r.Int63n(int64(cfg.DelayMax)))
	}
	if cfg.Stall > 0 && r.Float64() < cfg.Stall {
		d.stall = cfg.StallFor
	}
	if cfg.Sever > 0 && r.Float64() < cfg.Sever &&
		(cfg.SeverMax == 0 || ls.severs < cfg.SeverMax) {
		d.sever = true
		ls.severs++
	}
	if d.drop {
		// Nothing else applies to a dropped frame, but a held reorder
		// frame must still be released or it would leak.
		d.release = ls.held
		ls.held = nil
		in.mu.Unlock()
		if len(d.release) > 0 {
			if _, err := fc.Conn.Write(d.release); err != nil {
				return 0, err
			}
		}
		return len(b), nil
	}
	if d.reorderHold && ls.held == nil {
		// Hold this frame; it is written after the next one.
		ls.held = append([]byte(nil), b...)
		in.record(fc.from, fc.to, "reorder", idx)
		in.mu.Unlock()
		return len(b), nil
	}
	d.release = ls.held
	ls.held = nil
	if d.dup {
		in.record(fc.from, fc.to, "dup", idx)
	}
	if d.corrupt {
		in.record(fc.from, fc.to, "corrupt", idx)
	}
	if d.delay > 0 {
		in.record(fc.from, fc.to, "delay", idx)
	}
	if d.stall > 0 {
		in.record(fc.from, fc.to, "stall", idx)
	}
	if d.sever {
		in.record(fc.from, fc.to, "sever", idx)
	}
	in.mu.Unlock()

	if d.stall > 0 {
		time.Sleep(d.stall)
	} else if d.delay > 0 {
		time.Sleep(d.delay)
	}
	out := b
	if d.corrupt && len(b) > headerBytes {
		// Flip one payload byte; the header stays valid so the receiver
		// exercises its CRC path rather than the magic check.
		out = append([]byte(nil), b...)
		out[headerBytes+d.corruptAt%(len(b)-headerBytes)] ^= 0x40
	}
	if _, err := fc.Conn.Write(out); err != nil {
		return 0, err
	}
	if d.dup {
		if _, err := fc.Conn.Write(out); err != nil {
			return 0, err
		}
	}
	// A frame held for reordering is released after its successor — the
	// one-place transposition that makes "reorder" mean something on an
	// ordered byte stream.
	if len(d.release) > 0 {
		if _, err := fc.Conn.Write(d.release); err != nil {
			return 0, err
		}
	}
	if d.sever {
		fc.Conn.Close()
		return len(b), &injectedError{kind: "sever"}
	}
	return len(b), nil
}

// headerBytes mirrors the transport frame header size so corruption
// targets the payload (CRC-protected), not the header (magic-protected).
// Kept in sync by a transport test.
const headerBytes = 36
