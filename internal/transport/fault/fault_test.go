package fault

import (
	"net"
	"testing"
	"time"
)

// sinkConn is a minimal net.Conn that records every Write, so tests
// can compare the exact byte stream a faulted link produced.
type sinkConn struct {
	net.Conn
	writes [][]byte
	closed bool
}

func (s *sinkConn) Write(b []byte) (int, error) {
	s.writes = append(s.writes, append([]byte(nil), b...))
	return len(b), nil
}
func (s *sinkConn) Close() error { s.closed = true; return nil }

// frame fabricates a write of the transport's shape: a 36-byte header
// plus payload.
func testFrame(i int) []byte {
	b := make([]byte, headerBytes+16)
	for j := range b {
		b[j] = byte(i + j)
	}
	return b
}

func runSchedule(t *testing.T, cfg *Config, frames int) ([][]byte, []Entry) {
	t.Helper()
	in := New(cfg)
	if in == nil {
		t.Fatal("enabled config produced a nil injector")
	}
	sink := &sinkConn{}
	c := in.WrapConn(sink, 0, 1)
	for i := 0; i < frames; i++ {
		c.Write(testFrame(i))
	}
	return sink.writes, in.Log()
}

// TestDeterministicReplay is the chaos contract: the same seed must
// reproduce the same per-link fault schedule — same decisions at the
// same frame indices, same bytes on the wire.
func TestDeterministicReplay(t *testing.T) {
	cfg := &Config{Seed: 42, Drop: 0.1, Dup: 0.1, Reorder: 0.1, Corrupt: 0.1, Sever: 0.05}
	w1, l1 := runSchedule(t, cfg, 200)
	w2, l2 := runSchedule(t, cfg, 200)
	if len(l1) == 0 {
		t.Fatal("schedule injected no faults at these probabilities")
	}
	if len(l1) != len(l2) {
		t.Fatalf("replay diverged: %d vs %d faults", len(l1), len(l2))
	}
	for i := range l1 {
		if l1[i].Kind != l2[i].Kind || l1[i].Frame != l2[i].Frame {
			t.Fatalf("fault %d diverged: %v vs %v", i, l1[i], l2[i])
		}
	}
	if len(w1) != len(w2) {
		t.Fatalf("replay wrote %d vs %d frames", len(w1), len(w2))
	}
	for i := range w1 {
		if string(w1[i]) != string(w2[i]) {
			t.Fatalf("write %d diverged", i)
		}
	}

	other, _ := runSchedule(t, &Config{Seed: 43, Drop: 0.1, Dup: 0.1, Reorder: 0.1, Corrupt: 0.1, Sever: 0.05}, 200)
	same := len(other) == len(w1)
	if same {
		for i := range w1 {
			if string(other[i]) != string(w1[i]) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestDisabledIsPassThrough pins the production path: a nil config
// yields a nil injector whose hooks return their arguments unchanged
// without allocating.
func TestDisabledIsPassThrough(t *testing.T) {
	in := New(nil)
	if in != nil {
		t.Fatal("nil config produced a non-nil injector")
	}
	if in.Enabled() {
		t.Fatal("nil injector claims to be enabled")
	}
	var c net.Conn = &sinkConn{}
	if allocs := testing.AllocsPerRun(100, func() {
		if in.WrapConn(c, 0, 1) != c {
			t.Fatal("WrapConn changed the conn")
		}
		if in.LinkBlocked(0, 1) {
			t.Fatal("nil injector blocked a link")
		}
	}); allocs != 0 {
		t.Fatalf("disabled pass-through allocates %.1f per op", allocs)
	}
	if New(&Config{Seed: 9}) != nil {
		t.Fatal("schedule with no faults produced a non-nil injector")
	}
}

// Enabled injector on a clean schedule must still pass frames through
// untouched.
func TestNoFaultFramesUntouched(t *testing.T) {
	cfg := &Config{Seed: 1, Blackouts: []Blackout{{Node: 3, Start: time.Hour, Duration: time.Second}}}
	in := New(cfg)
	sink := &sinkConn{}
	c := in.WrapConn(sink, 0, 1)
	f := testFrame(7)
	if _, err := c.Write(f); err != nil {
		t.Fatal(err)
	}
	if len(sink.writes) != 1 || string(sink.writes[0]) != string(f) {
		t.Fatalf("clean link altered the frame")
	}
	if got := in.Counters().Total(); got != 0 {
		t.Fatalf("clean link recorded %d faults", got)
	}
}

func TestCorruptFlipsExactlyOnePayloadByte(t *testing.T) {
	in := New(&Config{Seed: 5, Corrupt: 1})
	sink := &sinkConn{}
	c := in.WrapConn(sink, 0, 1)
	f := testFrame(3)
	c.Write(f)
	if len(sink.writes) != 1 {
		t.Fatalf("wrote %d frames, want 1", len(sink.writes))
	}
	diff := 0
	at := -1
	for i := range f {
		if sink.writes[0][i] != f[i] {
			diff++
			at = i
		}
	}
	if diff != 1 || at < headerBytes {
		t.Fatalf("corruption flipped %d bytes (last at %d); want exactly 1 in the payload", diff, at)
	}
}

func TestSeverMaxBoundsSeversPerLink(t *testing.T) {
	in := New(&Config{Seed: 8, Sever: 1, SeverMax: 2})
	sink := &sinkConn{}
	c := in.WrapConn(sink, 0, 1)
	for i := 0; i < 10; i++ {
		c.Write(testFrame(i))
	}
	if got := in.Counters().Sever; got != 2 {
		t.Fatalf("injected %d severs, want SeverMax=2", got)
	}
}

func TestBlackoutAndPartitionWindows(t *testing.T) {
	in := New(&Config{
		Seed:       1,
		Blackouts:  []Blackout{{Node: 2, Start: 0, Duration: 50 * time.Millisecond}},
		Partitions: []Partition{{From: 0, To: 1, Start: 0, Duration: 50 * time.Millisecond}},
	})
	if !in.LinkBlocked(2, 3) || !in.LinkBlocked(3, 2) {
		t.Fatal("blackout did not cut links touching the node")
	}
	if !in.LinkBlocked(0, 1) {
		t.Fatal("partition did not cut from->to")
	}
	if in.LinkBlocked(1, 0) {
		t.Fatal("asymmetric partition cut the reverse direction")
	}
	sink := &sinkConn{}
	c := in.WrapConn(sink, 0, 1)
	if _, err := c.Write(testFrame(0)); err == nil {
		t.Fatal("write over a partitioned link succeeded")
	}
	time.Sleep(60 * time.Millisecond)
	if in.LinkBlocked(2, 3) || in.LinkBlocked(0, 1) {
		t.Fatal("windows did not expire")
	}
}

func TestReorderSwapsAdjacentFrames(t *testing.T) {
	// With reorder=1 every frame is held and released by its successor:
	// frames come out one behind, pairwise swapped.
	in := New(&Config{Seed: 2, Reorder: 1})
	sink := &sinkConn{}
	c := in.WrapConn(sink, 0, 1)
	f0, f1 := testFrame(0), testFrame(1)
	c.Write(f0)
	if len(sink.writes) != 0 {
		t.Fatal("held frame was written immediately")
	}
	c.Write(f1)
	if len(sink.writes) != 2 || string(sink.writes[0]) != string(f1) || string(sink.writes[1]) != string(f0) {
		t.Fatalf("expected [f1, f0] after the transposition, got %d writes", len(sink.writes))
	}
}

func TestSpecRoundTrip(t *testing.T) {
	spec := "seed=7,drop=0.02,dup=0.01,reorder=0.015,corrupt=0.005," +
		"delay=0.2:5ms,stall=0.001:200ms,sever=0.002:1," +
		"blackout=2@1s+500ms,part=0>1@2s+1s"
	cfg, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 7 || cfg.Drop != 0.02 || cfg.DelayMax != 5*time.Millisecond ||
		cfg.SeverMax != 1 || len(cfg.Blackouts) != 1 || len(cfg.Partitions) != 1 {
		t.Fatalf("parsed %+v", cfg)
	}
	if cfg.Blackouts[0] != (Blackout{Node: 2, Start: time.Second, Duration: 500 * time.Millisecond}) {
		t.Fatalf("blackout parsed as %+v", cfg.Blackouts[0])
	}
	cfg2, err := Parse(cfg.String())
	if err != nil {
		t.Fatalf("re-parsing %q: %v", cfg.String(), err)
	}
	if cfg.String() != cfg2.String() {
		t.Fatalf("round trip diverged: %q vs %q", cfg.String(), cfg2.String())
	}

	if c, err := Parse(""); err != nil || c != nil {
		t.Fatalf("empty spec: %v %v", c, err)
	}
	if c, err := Parse("off"); err != nil || c != nil {
		t.Fatalf("off spec: %v %v", c, err)
	}
	for _, bad := range []string{"drop=2", "nope=1", "blackout=1", "delay=0.5:-1ms", "part=0-1@1s+1s"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}
