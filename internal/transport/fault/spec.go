package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Spec syntax: a comma-separated list of key=value terms, usable as a
// -faults flag or the GRAVEL_FAULTS environment variable.
//
//	seed=7,drop=0.02,dup=0.01,delay=0.2:5ms,reorder=0.01,
//	corrupt=0.005,stall=0.001:200ms,sever=0.002:1,
//	blackout=2@1s+500ms,part=0>1@2s+1s
//
//	seed=N          run seed (replays the schedule)
//	drop=P          per-frame drop probability
//	dup=P           per-frame duplicate probability
//	reorder=P       per-frame one-place reorder probability
//	corrupt=P       per-frame payload byte-flip probability
//	delay=P:D       with probability P sleep uniform (0, D]
//	stall=P:D       with probability P freeze the conn for D
//	sever=P[:MAX]   with probability P close the conn (≤ MAX per link)
//	blackout=N@S+D  node N off the network from S for D
//	part=A>B@S+D    directed link A→B cut from S for D
func Parse(spec string) (*Config, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "off" || spec == "none" {
		return nil, nil
	}
	cfg := &Config{}
	for _, term := range strings.Split(spec, ",") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		key, val, ok := strings.Cut(term, "=")
		if !ok {
			return nil, fmt.Errorf("fault: term %q is not key=value", term)
		}
		var err error
		switch key {
		case "seed":
			cfg.Seed, err = strconv.ParseUint(val, 10, 64)
		case "drop":
			cfg.Drop, err = parseProb(val)
		case "dup":
			cfg.Dup, err = parseProb(val)
		case "reorder":
			cfg.Reorder, err = parseProb(val)
		case "corrupt":
			cfg.Corrupt, err = parseProb(val)
		case "delay":
			cfg.Delay, cfg.DelayMax, err = parseProbDur(val, 5*time.Millisecond)
		case "stall":
			cfg.Stall, cfg.StallFor, err = parseProbDur(val, 100*time.Millisecond)
		case "sever":
			p, rest, cut := strings.Cut(val, ":")
			cfg.Sever, err = parseProb(p)
			if err == nil && cut {
				cfg.SeverMax, err = strconv.Atoi(rest)
			}
		case "blackout":
			var b Blackout
			b, err = parseBlackout(val)
			cfg.Blackouts = append(cfg.Blackouts, b)
		case "part", "partition":
			var p Partition
			p, err = parsePartition(val)
			cfg.Partitions = append(cfg.Partitions, p)
		default:
			return nil, fmt.Errorf("fault: unknown term %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("fault: term %q: %w", term, err)
		}
	}
	return cfg, nil
}

func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %v out of [0,1]", p)
	}
	return p, nil
}

func parseProbDur(s string, defDur time.Duration) (float64, time.Duration, error) {
	ps, ds, cut := strings.Cut(s, ":")
	p, err := parseProb(ps)
	if err != nil {
		return 0, 0, err
	}
	d := defDur
	if cut {
		d, err = time.ParseDuration(ds)
		if err != nil {
			return 0, 0, err
		}
	}
	if d <= 0 {
		return 0, 0, fmt.Errorf("non-positive duration %v", d)
	}
	return p, d, nil
}

// parseWindow parses "S+D" into start and duration.
func parseWindow(s string) (time.Duration, time.Duration, error) {
	ss, ds, ok := strings.Cut(s, "+")
	if !ok {
		return 0, 0, fmt.Errorf("window %q is not start+duration", s)
	}
	start, err := time.ParseDuration(ss)
	if err != nil {
		return 0, 0, err
	}
	dur, err := time.ParseDuration(ds)
	if err != nil {
		return 0, 0, err
	}
	if start < 0 || dur <= 0 {
		return 0, 0, fmt.Errorf("bad window %q", s)
	}
	return start, dur, nil
}

func parseBlackout(s string) (Blackout, error) {
	ns, ws, ok := strings.Cut(s, "@")
	if !ok {
		return Blackout{}, fmt.Errorf("blackout %q is not node@start+duration", s)
	}
	node, err := strconv.Atoi(ns)
	if err != nil {
		return Blackout{}, err
	}
	start, dur, err := parseWindow(ws)
	if err != nil {
		return Blackout{}, err
	}
	return Blackout{Node: node, Start: start, Duration: dur}, nil
}

func parsePartition(s string) (Partition, error) {
	ls, ws, ok := strings.Cut(s, "@")
	if !ok {
		return Partition{}, fmt.Errorf("partition %q is not from>to@start+duration", s)
	}
	fs, ts, ok := strings.Cut(ls, ">")
	if !ok {
		return Partition{}, fmt.Errorf("partition link %q is not from>to", ls)
	}
	from, err := strconv.Atoi(fs)
	if err != nil {
		return Partition{}, err
	}
	to, err := strconv.Atoi(ts)
	if err != nil {
		return Partition{}, err
	}
	start, dur, err := parseWindow(ws)
	if err != nil {
		return Partition{}, err
	}
	return Partition{From: from, To: to, Start: start, Duration: dur}, nil
}

// String renders the config back into Parse's syntax (a round-trip).
func (c *Config) String() string {
	if !c.Enabled() && (c == nil || c.Seed == 0) {
		return "off"
	}
	var terms []string
	add := func(s string) { terms = append(terms, s) }
	add("seed=" + strconv.FormatUint(c.Seed, 10))
	prob := func(k string, p float64) {
		if p > 0 {
			add(k + "=" + strconv.FormatFloat(p, 'g', -1, 64))
		}
	}
	prob("drop", c.Drop)
	prob("dup", c.Dup)
	prob("reorder", c.Reorder)
	prob("corrupt", c.Corrupt)
	if c.Delay > 0 {
		add(fmt.Sprintf("delay=%s:%s", strconv.FormatFloat(c.Delay, 'g', -1, 64), c.DelayMax))
	}
	if c.Stall > 0 {
		add(fmt.Sprintf("stall=%s:%s", strconv.FormatFloat(c.Stall, 'g', -1, 64), c.StallFor))
	}
	if c.Sever > 0 {
		s := "sever=" + strconv.FormatFloat(c.Sever, 'g', -1, 64)
		if c.SeverMax > 0 {
			s += ":" + strconv.Itoa(c.SeverMax)
		}
		add(s)
	}
	bl := append([]Blackout(nil), c.Blackouts...)
	sort.Slice(bl, func(i, j int) bool { return bl[i].Start < bl[j].Start })
	for _, b := range bl {
		add(fmt.Sprintf("blackout=%d@%s+%s", b.Node, b.Start, b.Duration))
	}
	pt := append([]Partition(nil), c.Partitions...)
	sort.Slice(pt, func(i, j int) bool { return pt[i].Start < pt[j].Start })
	for _, p := range pt {
		add(fmt.Sprintf("part=%d>%d@%s+%s", p.From, p.To, p.Start, p.Duration))
	}
	return strings.Join(terms, ",")
}
