package transport

import (
	"testing"
	"time"

	"gravel/internal/timemodel"
	"gravel/internal/wire"
)

func newClocks(n int) []*timemodel.Clocks {
	clocks := make([]*timemodel.Clocks, n)
	for i := range clocks {
		clocks[i] = &timemodel.Clocks{}
	}
	return clocks
}

// incBuf builds a valid per-node queue carrying one OpInc record.
func incBuf(a, v uint64) []byte {
	b := wire.NewBuilder(0, 1024)
	b.Append(wire.PackCmd(wire.OpInc, 0, 0), a, v)
	buf, _ := b.Take()
	return buf
}

func waitQuiet(t *testing.T, name string, quiet func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !quiet() {
		if time.Now().After(deadline) {
			t.Fatalf("%s did not quiesce", name)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestLoopbackDeliversThroughFraming(t *testing.T) {
	l := NewLoopback(timemodel.Default(), newClocks(3))
	defer l.Close()

	buf := incBuf(7, 1)
	l.Send(0, 1, buf, 1)
	p := <-l.Inbox(1)
	if p.From != 0 || p.To != 1 || p.Msgs != 1 || p.Routed {
		t.Fatalf("bad packet %+v", p)
	}
	if string(p.Buf) != string(buf) {
		t.Fatalf("payload mangled by framing")
	}
	l.Done(p)

	l.Send(2, 2, incBuf(1, 1), 1) // self: skips the wire
	l.Done(<-l.Inbox(2))
	waitQuiet(t, "loopback", l.Quiet)

	m := l.NetMetrics()
	if got := m.PerDest.Packets(1); got != 1 {
		t.Fatalf("PerDest.Packets(1) = %d, want 1", got)
	}
	if got := m.SelfPkts[2].Load(); got != 1 {
		t.Fatalf("SelfPkts[2] = %d, want 1", got)
	}
}

func TestLoopbackDropsMalformedPayloads(t *testing.T) {
	l := NewLoopback(timemodel.Default(), newClocks(2))
	defer l.Close()

	// Not a whole number of wire records: the decoder must count it,
	// drop it, and still quiesce — never panic or deliver.
	l.Send(0, 1, []byte{1, 2, 3}, 1)
	waitQuiet(t, "loopback", l.Quiet)
	if got := l.Malformed.Load(); got != 1 {
		t.Fatalf("Malformed = %d, want 1", got)
	}
	select {
	case p := <-l.Inbox(1):
		t.Fatalf("malformed payload delivered: %+v", p)
	default:
	}
}
