package transport

import (
	"bufio"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gravel/internal/fabric"
	"gravel/internal/obs"
	"gravel/internal/timemodel"
	"gravel/internal/transport/fault"
	"gravel/internal/wire"
)

// Tunables of the TCP transport. Frames are whole per-node queues
// (64 kB by default), so modest queue depths already buffer megabytes.
const (
	sendQueueFrames  = 64  // staged frames per destination before Send blocks
	sendWindowFrames = 256 // written-but-unacked frames before the writer stalls
	recvQueueFrames  = 256 // received packets before the reader stalls (backpressure)

	dialTimeout      = 2 * time.Second
	backoffInitial   = 10 * time.Millisecond
	backoffMax       = time.Second
	handshakeTimeout = 5 * time.Second
	drainTimeout     = 8 * time.Second
	finAckTimeout    = 2 * time.Second

	// rexmitInterval bounds how long the oldest unacknowledged frame may
	// sit without ack progress before the writer reconnects and replays
	// the window. A receiver detects mid-stream loss as a sequence gap
	// and poisons the connection, but a frame lost at the *tail* of the
	// stream has no successor to expose the gap — only this timer
	// recovers it.
	rexmitInterval = 100 * time.Millisecond

	// Write coalescing: the writer drains its staged-frame queue in
	// bursts into one buffered writer and flushes either when the batch
	// stops growing past the flush deadline or when the buffer fills.
	// The deadline mirrors the aggregator's 125µs flush timeout (§6), so
	// batching never adds more latency than aggregation already budgets.
	coalesceFlushInterval = 125 * time.Microsecond
	coalesceBufBytes      = 256 << 10

	// defaultSuspectTimeout is how long a peer may be silent (no acks,
	// no successful dials, no coordinator heartbeats) before it is
	// declared down. Options.SuspectTimeout overrides; negative disables.
	defaultSuspectTimeout = 30 * time.Second

	finAckMark = math.MaxUint64 // in-band marker on the ack channel
)

// TCP is the real-socket transport: the cluster runs as one OS process
// per node, and per-node queues travel as CRC-framed, sequence-numbered
// messages over per-destination TCP connections.
//
// Reliability: each sender→destination stream numbers its data frames;
// the receiver acknowledges cumulatively and deduplicates, and the
// sender keeps a bounded window of unacknowledged frames that it
// retransmits after reconnecting (exponential backoff with jitter), so
// a dropped connection delays but never loses or duplicates messages.
//
// Quiescence: Quiet extends the runtime's Step barrier across
// processes through the rendezvous coordinator (see Coordinator) using
// monotonic sent/applied frame counters.
//
// Timing: with Options.WallClock the clocks charge measured wall time
// for wire activity; otherwise the virtual LogGP model is charged
// sender-side and receiver-side as in the in-process fabrics.
type TCP struct {
	*fabric.Metrics
	params *timemodel.Params
	clocks []*timemodel.Clocks
	n      int
	self   int
	wall   bool
	gen    uint32 // membership generation (0 = fixed-membership, unstamped)

	ln      net.Listener
	coord   *coordClient
	senders []*sender

	// inj is the fault injector (nil in production: every hook passes
	// through).
	inj *fault.Injector

	// suspect/heartbeat drive failure detection; zero suspect disables
	// it entirely (the hand-built transports in tests stay inert).
	suspect   time.Duration
	heartbeat time.Duration

	// failedCh is closed by fail() on the first fatal transport error
	// (peer or coordinator declared down). After that, Send discards so
	// aggregator goroutines drain instead of blocking, and the
	// collective entry points (Quiet, StepBarrier, Reduce) surface
	// failErr — Quiet and StepBarrier by panicking it on the Step
	// goroutine, which the node runtime recovers into a nonzero exit.
	failOnce sync.Once
	failedCh chan struct{}
	failErr  error

	// killed is closed by Kill(), the chaos hook simulating abrupt
	// process death: senders and reconnect loops exit immediately, no
	// FIN, no bye.
	killOnce sync.Once
	killed   chan struct{}

	hbStop chan struct{} // stops the coordinator heartbeat loop
	hbDone chan struct{}

	banks         int
	inbox         [][]chan fabric.Packet // [node][bank]
	localInflight atomic.Int64           // self→self packets between Send and Done
	recvInflight  atomic.Int64           // wire packets between inbox enqueue and Done
	sentWire      atomic.Int64           // data frames originated (monotonic)
	appliedWire   atomic.Int64           // data frames fully applied (monotonic)
	epoch         atomic.Int64           // step barriers passed

	recv []*peerRecv // per-peer receive state (dedup seq + active conn)

	connsMu sync.Mutex
	conns   map[net.Conn]struct{} // live inbound connections

	quietMu      sync.Mutex
	quietCached  bool
	quietSent    int64
	quietApplied int64

	// hostDrain holds the runtime's fabric.HostDrainer hook (a
	// func() bool): it flushes host-side staged messages — AM handler
	// follow-ups parked in the aggregator — toward the wire and reports
	// whether host-side work remains. localIdle consults it so a
	// process polling the quiet protocol or the step barrier keeps
	// cascades flowing instead of letting them stall invisibly.
	hostDrain atomic.Value

	// localApply, when set (fabric.LocalApplier, before the first
	// Send), resolves self→self packets synchronously instead of
	// round-tripping them through the inbox.
	localApply func(fabric.Packet)

	closed    atomic.Bool
	closeOnce sync.Once
	handlers  sync.WaitGroup
}

// NewTCP builds the transport: it binds opt.Listen (default
// "127.0.0.1:0"), discovers peers through the coordinator rendezvous
// (blocking until the whole cluster has joined), and starts the
// per-destination connection pools. Multi-node clusters require
// opt.Coord: the Quiet() quiescence guarantee the runtime's Step
// barrier relies on cannot be established from a static peers list
// alone, so a peers-only configuration is rejected rather than
// silently weakening the contract.
func NewTCP(params *timemodel.Params, clocks []*timemodel.Clocks, opt fabric.Options) (*TCP, error) {
	n := len(clocks)
	if n == 0 {
		return nil, fmt.Errorf("transport: no nodes")
	}
	if opt.Self < 0 || opt.Self >= n {
		return nil, fmt.Errorf("transport: self %d out of range [0,%d)", opt.Self, n)
	}
	if n > 1 && opt.Coord == "" {
		return nil, fmt.Errorf("transport: %d nodes but no coordinator: cross-process quiescence requires Options.Coord", n)
	}
	banks := opt.ResolverBanks
	if banks == 0 {
		banks = 1
	}
	if !fabric.ValidBanks(banks) {
		return nil, fmt.Errorf("transport: resolver banks %d must be a power of two in [1, %d]", banks, fabric.MaxResolverBanks)
	}
	listen := opt.Listen
	if listen == "" {
		listen = "127.0.0.1:0"
	}
	rawLn, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", listen, err)
	}
	inj := fault.New(opt.Faults)
	var ln net.Listener = rawLn
	if inj.Enabled() {
		// Only the hosted node's blackout windows apply inbound; all
		// probabilistic faults ride outbound conns, where the link
		// identity is known before the first byte.
		ln = inj.WrapListener(rawLn, opt.Self)
	}
	suspect := opt.SuspectTimeout
	switch {
	case suspect < 0:
		suspect = 0 // detection disabled
	case suspect == 0:
		suspect = defaultSuspectTimeout
	}
	heartbeat := opt.HeartbeatInterval
	if heartbeat <= 0 {
		heartbeat = suspect / 4
	}
	t := &TCP{
		Metrics:   fabric.NewMetrics(n),
		params:    params,
		clocks:    clocks,
		n:         n,
		self:      opt.Self,
		wall:      opt.WallClock,
		gen:       opt.Generation,
		ln:        ln,
		inj:       inj,
		suspect:   suspect,
		heartbeat: heartbeat,
		banks:     banks,
		inbox:     make([][]chan fabric.Packet, n),
		recv:      make([]*peerRecv, n),
		conns:     make(map[net.Conn]struct{}),
		failedCh:  make(chan struct{}),
		killed:    make(chan struct{}),
	}
	for i := range t.inbox {
		t.inbox[i] = make([]chan fabric.Packet, banks)
		for b := range t.inbox[i] {
			t.inbox[i][b] = make(chan fabric.Packet, recvQueueFrames)
		}
		t.recv[i] = &peerRecv{}
	}

	peers := opt.Peers
	if opt.Coord != "" {
		coord, err := dialCoord(opt.Coord, coordDialOpts{
			timeout:    opt.CoordDialTimeout,
			backoff:    opt.CoordDialBackoff,
			backoffMax: opt.CoordDialBackoffMax,
			rpcTimeout: opt.CoordRPCTimeout,
		})
		if err != nil {
			ln.Close()
			return nil, err
		}
		coord.gen = opt.Generation
		t.coord = coord
		peers, err = coord.join(t.self, ln.Addr().String(), suspect)
		if err != nil {
			coord.close()
			ln.Close()
			return nil, err
		}
	}
	if n > 1 && len(peers) != n {
		if t.coord != nil {
			t.coord.close()
		}
		ln.Close()
		return nil, fmt.Errorf("transport: have %d peer addresses for %d nodes", len(peers), n)
	}

	t.senders = make([]*sender, n)
	for d := 0; d < n; d++ {
		if d == t.self {
			continue
		}
		s := &sender{
			t:     t,
			dest:  d,
			addr:  peers[d],
			queue: make(chan *frame, sendQueueFrames),
			stop:  make(chan struct{}),
			done:  make(chan struct{}),
		}
		s.lastAck.Store(time.Now().UnixNano())
		t.senders[d] = s
		go s.run()
	}
	go t.acceptLoop()
	if t.coord != nil && t.suspect > 0 {
		t.hbStop = make(chan struct{})
		t.hbDone = make(chan struct{})
		go t.heartbeatLoop()
	}
	return t, nil
}

// heartbeatLoop pings the coordinator every heartbeat interval: the
// ping keeps this worker's lastSeen fresh (so long compute phases are
// not mistaken for death) and brings back the coordinator's view of
// dead peers, failing the transport if any worker has gone silent.
func (t *TCP) heartbeatLoop() {
	defer close(t.hbDone)
	tick := time.NewTicker(t.heartbeat)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			if err := t.coord.ping(t.self, t.suspect); err != nil {
				t.fail(err)
				return
			}
		case <-t.hbStop:
			return
		case <-t.failedCh:
			return
		case <-t.killed:
			return
		}
	}
}

// fail records the first fatal transport error and unblocks everything
// waiting on delivery. After fail, Send discards (so aggregation
// goroutines finish their drains) and the collective entry points
// surface the error to the Step goroutine.
func (t *TCP) fail(err error) {
	t.failOnce.Do(func() {
		t.failErr = err
		close(t.failedCh)
	})
}

// Err returns the fatal transport error, nil while healthy. (Nil-safe
// on a zero-value TCP: a nil failedCh never selects.)
func (t *TCP) Err() error {
	select {
	case <-t.failedCh:
		return t.failErr
	default:
		return nil
	}
}

// FaultInjector returns the transport's fault injector (nil when fault
// injection is disabled) for diagnostics.
func (t *TCP) FaultInjector() *fault.Injector { return t.inj }

// Kill abruptly stops the transport as if the process died: the
// listener and every connection close, senders exit without FIN, the
// coordinator connection drops without a goodbye. A chaos-test hook;
// production shutdown is Close.
func (t *TCP) Kill() {
	t.killOnce.Do(func() {
		// Mark the transport failed too, so an in-process caller's Step
		// unwinds instead of spinning on a quiescence that can never
		// reconcile (a real dead process has no callers to unwind).
		t.fail(fmt.Errorf("transport: killed"))
		close(t.killed)
		t.ln.Close()
		if t.hbStop != nil {
			<-t.hbDone
		}
		for _, s := range t.senders {
			if s != nil {
				s.dropConn()
			}
		}
		t.connsMu.Lock()
		for c := range t.conns {
			c.Close()
		}
		t.connsMu.Unlock()
		if t.coord != nil {
			t.coord.close()
		}
	})
}

// Nodes implements fabric.Fabric.
func (t *TCP) Nodes() int { return t.n }

// Self returns the node this process hosts.
func (t *TCP) Self() int { return t.self }

// Hosts implements fabric.Fabric: one node per process.
func (t *TCP) Hosts(node int) bool { return node == t.self }

// Addr returns the transport's listen address.
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// Send implements fabric.Fabric.
func (t *TCP) Send(from, to int, buf []byte, msgs int) {
	t.send(from, to, buf, msgs, false)
}

// SendRouted implements fabric.Fabric.
func (t *TCP) SendRouted(from, gateway int, buf []byte, msgs int) {
	t.send(from, gateway, buf, msgs, true)
}

func (t *TCP) send(from, to int, buf []byte, msgs int, routed bool) {
	if from != t.self {
		panic(fmt.Sprintf("transport: node %d sending from the process hosting %d", from, t.self))
	}
	if to < 0 || to >= t.n {
		panic(fmt.Sprintf("transport: send to invalid node %d", to))
	}
	if to == t.self {
		t.SelfPkts[t.self].Inc()
		if la := t.localApply; la != nil && !routed {
			// Bypass: resolve directly against the banks on this
			// goroutine; the packet never enters the inbox and is fully
			// applied when Send returns, so the quiescence counters
			// never see it.
			la(fabric.Packet{From: from, To: to, Buf: buf, Msgs: msgs})
			wire.PutBuf(buf)
			return
		}
		if t.banks > 1 && !routed {
			var subs [fabric.MaxResolverBanks]fabric.Packet
			nsub := 0
			fabric.ScatterBanks(buf, t.banks, func(bank int, sub []byte, m int) {
				subs[nsub] = fabric.Packet{From: from, To: to, Buf: sub, Msgs: m, Bank: bank, Sub: true}
				nsub++
			})
			wire.PutBuf(buf)
			t.localInflight.Add(int64(nsub))
			for i := 0; i < nsub; i++ {
				t.inbox[t.self][subs[i].Bank] <- subs[i]
			}
			return
		}
		t.localInflight.Add(1)
		t.inbox[t.self][0] <- fabric.Packet{From: from, To: to, Buf: buf, Msgs: msgs, Routed: routed}
		return
	}
	if len(buf) > maxFramePayload {
		// Fail at the source: a frame the receiver would reject as
		// malformed must never enter the retransmit window, where it
		// would livelock the stream in a reconnect loop.
		panic(fmt.Sprintf("transport: %d-byte payload exceeds the %d-byte frame limit", len(buf), maxFramePayload))
	}
	t.ObserveWire(from, to, len(buf))
	t.clocks[from].CountPacket(len(buf))
	typ := frameData
	if routed {
		typ = frameRouted
	}
	f := getFrame()
	f.typ, f.from, f.to, f.msgs, f.payload = typ, from, to, msgs, buf
	f.gen = t.wireGen()
	t.sentWire.Add(1)
	if t.wall {
		t0 := time.Now()
		t.enqueue(to, f)
		t.clocks[from].AddWireSend(float64(time.Since(t0).Nanoseconds()))
	} else {
		t.clocks[from].AddWireSend(t.params.WireNs(len(buf)))
		t.enqueue(to, f)
	}
}

// enqueue stages a frame for a destination, blocking on backpressure.
// Once the transport has failed the frame is discarded instead: the
// aggregation goroutines calling Send must drain and park so the Step
// goroutine — not they — reports the typed error; delivery guarantees
// are void on a failed transport anyway.
func (t *TCP) enqueue(to int, f *frame) {
	select {
	case t.senders[to].queue <- f:
	case <-t.failedCh:
	case <-t.killed:
	}
}

// Inbox implements fabric.Fabric: the node's bank-0 receive channel.
// Only the hosted node's inbox ever receives; the rest exist so the
// runtime's shape is node-symmetric.
func (t *TCP) Inbox(node int) <-chan fabric.Packet { return t.inbox[node][0] }

// Banks implements fabric.Banked.
func (t *TCP) Banks() int { return t.banks }

// BankInbox implements fabric.Banked.
func (t *TCP) BankInbox(node, bank int) <-chan fabric.Packet { return t.inbox[node][bank] }

// SetLocalApply implements fabric.LocalApplier. It must be called
// before the first Send.
func (t *TCP) SetLocalApply(fn func(fabric.Packet)) { t.localApply = fn }

// Done implements fabric.Fabric. It recycles the packet's buffer:
// self-packets still carry the sender's builder buffer, wire packets a
// pooled payload drawn by the frame reader.
func (t *TCP) Done(p fabric.Packet) {
	if p.From == t.self && p.To == t.self {
		t.localInflight.Add(-1)
		wire.PutBuf(p.Buf)
		return
	}
	t.recvInflight.Add(-1)
	if !p.Sub {
		// A demuxed bank sub-packet is one of several carved from a
		// single wire frame; deliver counted the frame applied once at
		// demux time, so only whole packets bump the counter here.
		t.appliedWire.Add(1)
	}
	wire.PutBuf(p.Buf)
}

// SetHostDrain implements fabric.HostDrainer.
func (t *TCP) SetHostDrain(f func() bool) { t.hostDrain.Store(f) }

// localIdle reports whether this process has nothing in flight: no
// host-side staged messages, no self-packets or received packets being
// applied, and every outbound stream drained and acknowledged. The
// drain hook runs first so a message it flushes is caught by the
// sender-idle check below, and so the sent/applied counters the
// callers report afterwards include it.
func (t *TCP) localIdle() bool {
	if f, ok := t.hostDrain.Load().(func() bool); ok {
		if !f() {
			return false
		}
	}
	if t.localInflight.Load() != 0 || t.recvInflight.Load() != 0 {
		return false
	}
	for _, s := range t.senders {
		if s != nil && !s.idle() {
			return false
		}
	}
	return true
}

// quietSnapshot produces a consistent (sent, applied, idle) report for
// the coordinator's quiet protocol. Idleness and the counters must be
// observed at one instant: if a frame is applied — and its cascade
// follow-up staged and flushed — between the localIdle evaluation and
// the counter loads, the report would claim idle with counters that
// balance globally, and the cluster could release a barrier around the
// in-flight cascade. When the counters move during an idle observation
// the snapshot is retried.
func (t *TCP) quietSnapshot() (sent, applied int64, idle bool) {
	for {
		s0, a0 := t.sentWire.Load(), t.appliedWire.Load()
		idle = t.localIdle()
		sent, applied = t.sentWire.Load(), t.appliedWire.Load()
		if !idle || (sent == s0 && applied == a0) {
			return
		}
	}
}

// Quiet implements fabric.Fabric. Local activity is checked first;
// cluster-wide quiescence is then established through the coordinator
// and cached until the local counters move again.
func (t *TCP) Quiet() bool {
	if err := t.Err(); err != nil {
		// The transport has failed: counters can never reconcile again
		// (Send discards), so quiescence polling would spin forever.
		// Panicking the typed error here unwinds the Step goroutine,
		// where the node runtime recovers it into a diagnosed exit.
		panic(err)
	}
	sent, applied, idle := t.quietSnapshot()
	if !idle {
		return false
	}
	if t.n == 1 {
		return true
	}
	// n > 1 implies a coordinator: NewTCP rejects peers-only clusters.
	t.quietMu.Lock()
	defer t.quietMu.Unlock()
	if t.quietCached && sent == t.quietSent && applied == t.quietApplied {
		return true
	}
	quiet, err := t.coord.quiet(t.self, sent, applied, true, t.suspect)
	if err != nil {
		t.fail(err)
		panic(err)
	}
	// Only cache if the counters did not move while we asked.
	if quiet && sent == t.sentWire.Load() && applied == t.appliedWire.Load() {
		t.quietCached, t.quietSent, t.quietApplied = true, sent, applied
		return true
	}
	return false
}

// StepBarrier aligns step boundaries across the cluster (the runtime
// calls it after every Step's quiescence, via interface assertion).
// Each process polls the coordinator's epoch barrier, refreshing its
// counter report on every poll; the coordinator releases the barrier
// only when all processes have arrived at the same epoch at a globally
// quiescent instant. Without this, a fast process could read results
// or start the next step before a skewed peer's messages landed.
func (t *TCP) StepBarrier() {
	if t.coord == nil || t.n == 1 {
		return
	}
	key := fmt.Sprintf("step:%d", t.epoch.Add(1))
	for {
		if err := t.Err(); err != nil {
			panic(err)
		}
		sent, applied, idle := t.quietSnapshot()
		released, err := t.coord.barrier(t.self, key, sent, applied, idle, t.suspect)
		if err != nil {
			t.fail(err)
			panic(err)
		}
		if released {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// Reduce folds val into the named cluster-wide sum through the
// coordinator, blocking until every node has contributed. Without a
// coordinator it returns val.
func (t *TCP) Reduce(key string, val uint64) (uint64, error) {
	if t.coord == nil {
		return val, nil
	}
	if err := t.Err(); err != nil {
		return 0, err
	}
	total, err := t.coord.reduce(t.self, key, val, "", 0, t.suspect)
	if err != nil {
		t.fail(err)
		return 0, err
	}
	return total, nil
}

// Barrier blocks until every node has reached the named barrier.
func (t *TCP) Barrier(key string) error {
	_, err := t.Reduce("barrier:"+key, 0)
	return err
}

// Generation is the membership generation this transport was built
// with (0 when the cluster is not elastic).
func (t *TCP) Generation() uint32 { return t.gen }

// wireGen is the generation stamp for frame headers (the header has 16
// bits; the launcher's epoch counter never approaches that).
func (t *TCP) wireGen() uint16 { return uint16(t.gen) }

// SaveCheckpoint stores this process's shard of the step checkpoint at
// the coordinator's checkpoint store. Call it at a step barrier — a
// proven quiescent instant — so the assembled cluster checkpoint is
// consistent. A no-op without a coordinator.
func (t *TCP) SaveCheckpoint(step uint64, data []byte) error {
	if t.coord == nil {
		return nil
	}
	if err := t.Err(); err != nil {
		return err
	}
	if err := t.coord.saveCkpt(t.self, step, data, t.suspect); err != nil {
		t.fail(err)
		return err
	}
	if obs.Enabled() {
		obs.Emit(obs.KCheckpoint, t.self, int64(step), int64(len(data)), "")
	}
	return nil
}

// FetchCheckpoint retrieves the epoch's restore point from the
// coordinator; ok is false on a cold start (no complete checkpoint
// predates this epoch) or without a coordinator.
func (t *TCP) FetchCheckpoint() (rp *RestorePoint, ok bool, err error) {
	if t.coord == nil {
		return nil, false, nil
	}
	if err := t.Err(); err != nil {
		return nil, false, err
	}
	rp, ok, err = t.coord.fetchCkpt(t.self)
	if err != nil {
		t.fail(err)
		return nil, false, err
	}
	if ok && obs.Enabled() {
		obs.Emit(obs.KRestore, t.self, int64(rp.Step), int64(rp.Nodes), "")
	}
	return rp, ok, nil
}

// Close runs the drain/close handshake: every sender flushes its queue
// and window, FINs its stream, and awaits the FIN-ACK; inbound streams
// are given time to FIN symmetrically; then all inboxes close so the
// network threads exit, and the coordinator is told goodbye.
func (t *TCP) Close() {
	t.closeOnce.Do(func() {
		t.closed.Store(true)
		if t.hbStop != nil {
			close(t.hbStop)
			<-t.hbDone
		}
		var wg sync.WaitGroup
		for _, s := range t.senders {
			if s == nil {
				continue
			}
			wg.Add(1)
			go func(s *sender) {
				defer wg.Done()
				s.shutdown()
			}(s)
		}
		wg.Wait()
		t.ln.Close()

		// Peers close concurrently; give their FINs time to land, then
		// cut whatever is left.
		handlersDone := make(chan struct{})
		go func() { t.handlers.Wait(); close(handlersDone) }()
		select {
		case <-handlersDone:
		case <-time.After(drainTimeout):
			t.connsMu.Lock()
			for c := range t.conns {
				c.Close()
			}
			t.connsMu.Unlock()
			<-handlersDone
		}

		for _, node := range t.inbox {
			for _, ch := range node {
				close(ch)
			}
		}
		if t.coord != nil {
			t.coord.bye(t.self)
			t.coord.close()
		}
	})
}

// DropConnections forcibly closes every established connection, inbound
// and outbound, without touching queued or unacknowledged frames — a
// fault-injection hook: senders must reconnect (with backoff) and
// retransmit, and no message may be lost or duplicated.
func (t *TCP) DropConnections() {
	for _, s := range t.senders {
		if s != nil {
			s.dropConn()
		}
	}
	t.connsMu.Lock()
	for c := range t.conns {
		c.Close()
	}
	t.connsMu.Unlock()
}

// peerRecv serializes the receive side of one peer. mu is held across
// the whole dedup-check / deliver / record sequence, and conn tracks
// the connection currently allowed to deliver: a reconnecting peer's
// new HELLO supersedes (closes) the old connection under mu, so two
// handlers for the same peer can never both pass the dedup test and
// enqueue one frame twice — even while the old handler drains frames
// still buffered in its reader.
type peerRecv struct {
	mu   sync.Mutex
	seq  uint64   // highest data seq handed to the inbox
	conn net.Conn // connection allowed to deliver for this peer
}

// acceptLoop admits peer connections until the listener closes.
func (t *TCP) acceptLoop() {
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return
		}
		t.connsMu.Lock()
		t.conns[conn] = struct{}{}
		t.connsMu.Unlock()
		t.handlers.Add(1)
		go t.serveConn(conn)
	}
}

// serveConn is the receive side of one peer stream: HELLO, then data
// frames — validated, deduplicated, delivered, acknowledged — until FIN
// or error. Any malformed frame poisons the connection; the peer
// reconnects and retransmits from the last acknowledged frame.
func (t *TCP) serveConn(conn net.Conn) {
	defer t.handlers.Done()
	defer func() {
		t.connsMu.Lock()
		delete(t.conns, conn)
		t.connsMu.Unlock()
		conn.Close()
	}()
	br := bufio.NewReaderSize(conn, 64<<10)

	conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	hello, err := readFrame(br)
	if err != nil || hello.typ != frameHello || hello.to != t.self ||
		hello.from < 0 || hello.from >= t.n || hello.from == t.self {
		t.Malformed.Inc()
		return
	}
	// Generation gate: a hello stamped with another membership
	// generation is from an evicted (or not-yet-evicted stale) peer.
	// Reply frameEvict carrying our generation so the sender fails with
	// a typed StaleGenerationError instead of retrying forever, and
	// never let its frames near the dedup/deliver path. Unstamped
	// hellos (gen 0 on either side) pass: fixed-membership clusters
	// never stamp.
	if hello.gen != t.wireGen() && hello.gen != 0 && t.gen != 0 {
		writeFrame(conn, &frame{typ: frameEvict, from: t.self, to: hello.from, seq: uint64(t.gen), gen: t.wireGen()})
		return
	}
	conn.SetReadDeadline(time.Time{})
	from := hello.from
	peerGen := hello.gen
	pr := t.recv[from]
	// Supersede any previous connection from this peer before acking
	// the resume point: the old handler may still be draining frames
	// buffered in its reader, and the retransmitted window must not be
	// able to race it past the dedup check.
	pr.mu.Lock()
	if pr.conn != nil {
		pr.conn.Close()
	}
	pr.conn = conn
	resume := pr.seq
	pr.mu.Unlock()
	defer func() {
		pr.mu.Lock()
		if pr.conn == conn {
			pr.conn = nil
		}
		pr.mu.Unlock()
	}()
	// Control replies (acks, fin-ack) reuse one encode scratch instead
	// of allocating per frame; one goroutine owns this connection's
	// writes, so no lock is needed.
	var ctlBuf []byte
	writeCtl := func(typ frameType, seq uint64) error {
		ctlBuf = appendFrame(ctlBuf[:0], &frame{typ: typ, from: t.self, to: from, seq: seq})
		_, err := conn.Write(ctlBuf)
		return err
	}
	if err := writeCtl(frameAck, resume); err != nil {
		return
	}

	// The frame struct is reused across reads; its payload is a fresh
	// pooled buffer per data frame, owned by the inbox packet once
	// delivered (Done recycles it) and recycled here on the drop paths
	// that keep the connection alive.
	var f frame
	for {
		if err := readFrameInto(br, &f); err != nil {
			if errors.Is(err, errCorruptPayload) {
				// In-flight corruption, caught by the frame CRC. Count it,
				// re-acknowledge the resume point as an explicit retransmit
				// request, and poison the connection: the sender reconnects
				// and replays everything after the ack, so corruption costs
				// a round trip, never data.
				t.CorruptFrames.Inc()
				pr.mu.Lock()
				resume := pr.seq
				pr.mu.Unlock()
				writeCtl(frameAck, resume)
			}
			return
		}
		switch f.typ {
		case frameFin:
			writeCtl(frameFinAck, 0)
			return
		case framePing:
			// Peer heartbeat: answer with the cumulative ack so liveness
			// and ack progress share one signal.
			pr.mu.Lock()
			cum := pr.seq
			pr.mu.Unlock()
			if writeCtl(frameAck, cum) != nil {
				return
			}
		case frameData, frameRouted:
			routed := f.typ == frameRouted
			pr.mu.Lock()
			if pr.conn != conn {
				// Superseded by a reconnect while this frame sat in the
				// reader; the new stream retransmits everything unacked.
				pr.mu.Unlock()
				return
			}
			last := pr.seq
			switch {
			case f.from != from || f.to != t.self,
				f.gen != peerGen, // generation drift mid-stream: reject, not misdeliver
				f.seq > last+1,   // gap: protocol violation
				wire.CheckBuf(f.payload, routed, t.n) != nil:
				pr.mu.Unlock()
				t.Malformed.Inc()
				return
			case f.seq <= last:
				// Duplicate after a reconnect: re-acknowledge, drop (and
				// recycle the payload nothing will ever apply).
				pr.mu.Unlock()
				wire.PutBuf(f.payload)
				f.payload = nil
				if writeCtl(frameAck, f.seq) != nil {
					return
				}
				continue
			}
			ok := t.deliver(&f, routed)
			if ok {
				pr.seq = f.seq
			}
			pr.mu.Unlock()
			if !ok {
				return
			}
			if writeCtl(frameAck, f.seq) != nil {
				return
			}
		default:
			t.Malformed.Inc()
			return
		}
	}
}

// deliver hands one validated data frame to the hosted node's inbox,
// charging receive-side wire time. It reports false if the transport
// closed underneath it (stray post-drain frame).
func (t *TCP) deliver(f *frame, routed bool) bool {
	if t.wall {
		t0 := time.Now()
		ok := t.pushFrame(f, routed)
		t.clocks[t.self].AddWireRecv(float64(time.Since(t0).Nanoseconds()))
		return ok
	}
	t.clocks[t.self].AddWireRecv(t.params.WireNs(len(f.payload)))
	return t.pushFrame(f, routed)
}

// pushFrame enqueues one validated frame's packet(s), demuxing into
// per-bank sub-packets when banked resolution is on. Counter order
// matters for the demuxed path: recvInflight covers every sub-packet
// before appliedWire counts the frame applied, so the coordinator's
// sent/applied comparison can never balance while a sub-packet is
// still pending, and each sub-packet's Done decrements recvInflight
// only (see Done).
func (t *TCP) pushFrame(f *frame, routed bool) (ok bool) {
	if t.banks == 1 || routed {
		defer func() {
			if recover() != nil {
				// Inbox closed during shutdown; the frame is unacked, so a
				// surviving peer would retransmit — by protocol this frame is
				// post-quiescence and carries nothing the run still needs.
				t.recvInflight.Add(-1)
				ok = false
			}
		}()
		t.recvInflight.Add(1)
		t.inbox[t.self][0] <- fabric.Packet{From: f.from, To: t.self, Buf: f.payload, Msgs: f.msgs, Routed: routed}
		return true
	}
	var subs [fabric.MaxResolverBanks]fabric.Packet
	nsub := 0
	fabric.ScatterBanks(f.payload, t.banks, func(bank int, sub []byte, m int) {
		subs[nsub] = fabric.Packet{From: f.from, To: t.self, Buf: sub, Msgs: m, Bank: bank, Sub: true}
		nsub++
	})
	wire.PutBuf(f.payload)
	t.recvInflight.Add(int64(nsub))
	t.appliedWire.Add(1)
	pushed := 0
	defer func() {
		if recover() != nil {
			// Inboxes closed during shutdown mid-demux: retire the
			// sub-packets that never reached an inbox (post-quiescence
			// by protocol, same as the unbanked path above).
			t.recvInflight.Add(int64(pushed - nsub))
			ok = false
		}
	}()
	for i := 0; i < nsub; i++ {
		t.inbox[t.self][subs[i].Bank] <- subs[i]
		pushed++
	}
	return true
}

// sender is one outbound stream: a bounded queue of staged frames, a
// bounded window of unacknowledged frames, and a writer goroutine that
// owns the connection — dialing, handshaking, retransmitting the window
// after reconnects, and FINing on shutdown.
type sender struct {
	t    *TCP
	dest int
	addr string

	queue chan *frame
	stop  chan struct{}
	done  chan struct{}

	// Writer-goroutine-only state for write coalescing: enc is the
	// frame-encode scratch, bw batches encoded frames into one socket
	// write (reset onto each new connection), and winScratch is reused
	// across handshake retransmits so replaying the window allocates
	// nothing.
	enc        []byte
	bw         *bufio.Writer
	winScratch []*frame

	// lastAck is the unix-nano time of the last proof the peer is alive:
	// construction, a completed handshake, or any received ack (data
	// frames and heartbeat pings are both acknowledged). The suspect
	// check compares silence against it.
	lastAck atomic.Int64

	mu      sync.Mutex
	window  []*frame
	nextSeq uint64
	conn    net.Conn // current connection, for fault injection
}

// progress marks the peer alive now.
func (s *sender) progress() { s.lastAck.Store(time.Now().UnixNano()) }

// silence returns how long the peer has shown no sign of life.
func (s *sender) silence() time.Duration {
	return time.Duration(time.Now().UnixNano() - s.lastAck.Load())
}

// suspectCheck declares the peer down — failing the whole transport —
// if it has been silent past the suspect timeout. Heartbeat pings keep
// a live, idle peer acking, so sustained silence really means the peer
// (or the path to it) is gone. Disabled (suspect == 0) for hand-built
// senders in tests and when Options.SuspectTimeout < 0.
func (s *sender) suspectCheck() bool {
	suspect := s.t.suspect
	if suspect <= 0 || s.t.closed.Load() {
		return false
	}
	if sil := s.silence(); sil > suspect {
		s.t.fail(&PeerDownError{Node: s.dest, Detector: "sender", Silence: sil})
		return true
	}
	return false
}

// idle reports whether nothing is staged or awaiting acknowledgment.
func (s *sender) idle() bool {
	if len(s.queue) != 0 {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.window) == 0
}

// trim drops acknowledged frames (seq ≤ acked) from the window and
// recycles them: the cumulative ack is the proof no retransmit can ever
// replay a trimmed frame, so this is the one safe recycle point on the
// send side.
func (s *sender) trim(acked uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := 0
	for i < len(s.window) && s.window[i].seq <= acked {
		if f := s.window[i]; f.sentAt != 0 && obs.Enabled() {
			rtt := obs.Now() - f.sentAt
			obs.ObserveFlushRTT(rtt)
			obs.Emit(obs.KAck, s.t.self, int64(f.seq), rtt, "")
		}
		putFrame(s.window[i])
		s.window[i] = nil
		i++
	}
	if i == len(s.window) {
		s.window = s.window[:0]
	} else {
		s.window = s.window[i:]
	}
}

// windowHead returns the seq of the oldest unacknowledged frame, or 0
// (sequences start at 1) when the window is empty.
func (s *sender) windowHead() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.window) == 0 {
		return 0
	}
	return s.window[0].seq
}

// appendWindow appends the unacknowledged window onto dst (a reusable
// scratch), replacing the per-call snapshot copy the handshake used to
// allocate on every reconnect.
func (s *sender) appendWindow(dst []*frame) []*frame {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append(dst, s.window...)
}

// writeCoalesced encodes f into the sender's scratch and appends it to
// the connection's batching writer. Bytes are copied out of the frame,
// so the caller's ownership (window, pool) is unaffected. The caller is
// responsible for flushing: data frames ride the 125µs flush deadline
// (mirroring the aggregator's flush timeout), control frames flush
// immediately.
func (s *sender) writeCoalesced(f *frame) error {
	s.enc = appendFrame(s.enc[:0], f)
	_, err := s.bw.Write(s.enc)
	return err
}

// writeData assigns a sequence number (first transmission only), pushes
// f onto the retransmit window, and stages its bytes on the batching
// writer.
func (s *sender) writeData(f *frame) error {
	if f.seq == 0 {
		s.nextSeq++
		f.seq = s.nextSeq
		if obs.Enabled() {
			f.sentAt = obs.Now()
		}
	}
	s.push(f)
	return s.writeCoalesced(f)
}

func (s *sender) windowFull() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.window) >= sendWindowFrames
}

func (s *sender) push(f *frame) {
	s.mu.Lock()
	s.window = append(s.window, f)
	s.mu.Unlock()
}

func (s *sender) setConn(c net.Conn) {
	s.mu.Lock()
	s.conn = c
	s.mu.Unlock()
}

// dropConn force-closes the current connection (fault injection).
func (s *sender) dropConn() {
	s.mu.Lock()
	c := s.conn
	s.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

// shutdown drains and stops the writer.
func (s *sender) shutdown() {
	close(s.stop)
	<-s.done
}

// connect dials with exponential backoff and jitter until it succeeds,
// shutdown begins (stop closes — stopped=true so the caller can start
// its bounded drain), or the drain deadline fires. On success it
// handshakes, retransmits the unacknowledged window, and returns the
// established conn with its ack reader channels.
func (s *sender) connect(stop <-chan struct{}, abort <-chan time.Time, attempted *bool) (conn net.Conn, acks chan uint64, errs chan error, stopped bool) {
	backoff := backoffInitial
	for {
		if !s.t.inj.LinkBlocked(s.t.self, s.dest) { // cut links fail fast into backoff
			conn, err := net.DialTimeout("tcp", s.addr, dialTimeout)
			if err == nil {
				conn = s.t.inj.WrapConn(conn, s.t.self, s.dest)
				if c, acks, errs := s.handshake(conn); c != nil {
					if *attempted {
						s.t.Reconnects.Inc()
						if obs.Enabled() {
							obs.Emit(obs.KReconnect, s.t.self, int64(s.dest), 0, "")
						}
					}
					*attempted = true
					return c, acks, errs, false
				}
			}
		}
		s.t.Retries.Inc()
		if s.suspectCheck() {
			return nil, nil, nil, false
		}
		if s.t.Err() != nil {
			// The transport failed while we were (re)dialing — e.g. the
			// handshake above was refused with a stale-generation evict.
			// Redialing cannot help; let the writer loop exit.
			return nil, nil, nil, false
		}
		sleep := backoff + time.Duration(rand.Int63n(int64(backoff)))
		if backoff < backoffMax {
			backoff *= 2
		}
		select {
		case <-time.After(sleep):
		case <-stop:
			return nil, nil, nil, true
		case <-abort:
			return nil, nil, nil, false
		case <-s.t.killed:
			return nil, nil, nil, false
		}
	}
}

// handshake sends HELLO, consumes the receiver's cumulative ack (which
// trims the window after a reconnect), retransmits whatever remains,
// and starts the ack reader.
func (s *sender) handshake(conn net.Conn) (net.Conn, chan uint64, chan error) {
	if err := writeFrame(conn, &frame{typ: frameHello, from: s.t.self, to: s.dest, gen: s.t.wireGen()}); err != nil {
		conn.Close()
		return nil, nil, nil
	}
	br := bufio.NewReaderSize(conn, 16<<10)
	conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	ack, err := readFrame(br)
	if err == nil && ack.typ == frameEvict {
		// The receiver is on a newer membership generation: this process
		// was evicted. Fail the whole transport with the typed error —
		// retrying the handshake could never succeed.
		conn.Close()
		s.t.fail(&StaleGenerationError{Have: s.t.gen, Want: uint32(ack.seq), Source: "peer"})
		return nil, nil, nil
	}
	if err != nil || ack.typ != frameAck {
		conn.Close()
		return nil, nil, nil
	}
	conn.SetReadDeadline(time.Time{})
	s.trim(ack.seq)
	if s.bw == nil {
		s.bw = bufio.NewWriterSize(conn, coalesceBufBytes)
	} else {
		s.bw.Reset(conn)
	}
	s.winScratch = s.appendWindow(s.winScratch[:0])
	if len(s.winScratch) > 0 && obs.Enabled() {
		obs.Emit(obs.KRetransmit, s.t.self, int64(s.dest), int64(len(s.winScratch)), "")
	}
	retransmitErr := false
	for _, f := range s.winScratch {
		if err := s.writeCoalesced(f); err != nil {
			retransmitErr = true
			break
		}
	}
	for i := range s.winScratch {
		s.winScratch[i] = nil // scratch must not pin recycled frames
	}
	if retransmitErr || s.bw.Flush() != nil {
		conn.Close()
		return nil, nil, nil
	}
	acks := make(chan uint64, sendWindowFrames)
	errs := make(chan error, 1)
	go func() {
		var f frame // reused: acks carry no payload
		for {
			if err := readFrameInto(br, &f); err != nil {
				errs <- err
				return
			}
			switch f.typ {
			case frameAck:
				// Progress is stamped at arrival, not when the writer loop
				// drains the channel: an injected stall blocks the writer,
				// and acks landing meanwhile must still prove liveness.
				s.progress()
				acks <- f.seq
			case frameFinAck:
				acks <- finAckMark
				return
			default:
				errs <- fmt.Errorf("transport: unexpected %d frame on ack stream", f.typ)
				return
			}
		}
	}()
	s.setConn(conn)
	s.progress()
	return conn, acks, errs
}

// run is the writer loop.
func (s *sender) run() {
	defer close(s.done)
	var (
		conn      net.Conn
		acks      chan uint64
		errs      chan error
		attempted bool
		draining  bool
		deadline  <-chan time.Time
		stop      = s.stop
	)
	disconnect := func() {
		if conn != nil {
			conn.Close()
			s.setConn(nil)
			conn = nil
		}
	}
	defer disconnect()
	var drainTimer *time.Timer
	defer func() {
		if drainTimer != nil {
			drainTimer.Stop()
		}
	}()
	beginDrain := func() {
		stop = nil
		draining = true
		drainTimer = time.NewTimer(drainTimeout)
		deadline = drainTimer.C
	}
	// With failure detection on, ping the peer every heartbeat interval
	// (the receiver answers with a cumulative ack) and check for suspect
	// silence on the same tick. A nil channel — detection disabled —
	// never fires.
	var heartbeat <-chan time.Time
	if s.t.suspect > 0 && s.t.heartbeat > 0 {
		hb := time.NewTicker(s.t.heartbeat)
		defer hb.Stop()
		heartbeat = hb.C
	}
	// Retransmit watchdog: if the oldest unacked frame is the same one
	// it was a full interval ago, the stream tail was lost in flight;
	// reconnecting replays the window (the receiver deduplicates).
	rx := time.NewTicker(rexmitInterval)
	defer rx.Stop()
	var rexmitHead uint64
	// Flush deadline for coalesced writes: armed after staging data
	// frames, it bounds how long encoded bytes may sit in s.bw. Created
	// stopped; hand-built test senders that never connect never arm it.
	flushTimer := time.NewTimer(coalesceFlushInterval)
	if !flushTimer.Stop() {
		<-flushTimer.C
	}
	defer flushTimer.Stop()
	flushArmed := false
	for {
		if draining && len(s.queue) == 0 {
			s.mu.Lock()
			empty := len(s.window) == 0
			s.mu.Unlock()
			if empty {
				if conn != nil {
					s.fin(conn, acks)
				}
				return
			}
		}
		if conn == nil {
			// Nothing to transmit and shutting down: don't redial.
			if draining && len(s.queue) == 0 && s.idle() {
				continue // loops into the exit branch above
			}
			var stopped bool
			conn, acks, errs, stopped = s.connect(stop, deadline, &attempted)
			if stopped {
				// Shutdown arrived mid-reconnect: switch to the bounded
				// drain so an unreachable peer cannot hang Close.
				beginDrain()
				continue
			}
			if conn == nil {
				return // drain deadline fired while reconnecting
			}
			continue
		}
		// With a full window, only acks (or failure/shutdown) can
		// make progress.
		queue := s.queue
		if s.windowFull() {
			queue = nil
		}
		select {
		case seq := <-acks:
			if seq == finAckMark {
				disconnect()
				continue
			}
			s.trim(seq)
		case <-errs:
			disconnect()
		case f := <-queue:
			// Burst-drain: pull every frame already staged (up to the
			// window limit) into one buffered write, then arm the flush
			// deadline instead of paying a syscall per frame.
			err := s.writeData(f)
		burst:
			for err == nil && !s.windowFull() {
				select {
				case f2 := <-s.queue:
					err = s.writeData(f2)
				default:
					break burst
				}
			}
			if err != nil {
				disconnect()
			} else if s.bw.Buffered() > 0 && !flushArmed {
				flushTimer.Reset(coalesceFlushInterval)
				flushArmed = true
			}
		case <-flushTimer.C:
			flushArmed = false
			if conn != nil && s.bw.Flush() != nil {
				disconnect()
			}
		case <-heartbeat:
			if s.suspectCheck() {
				return
			}
			ping := frame{typ: framePing, from: s.t.self, to: s.dest, gen: s.t.wireGen()}
			if s.writeCoalesced(&ping) != nil || s.bw.Flush() != nil {
				disconnect()
			}
		case <-rx.C:
			head := s.windowHead()
			if head != 0 && head == rexmitHead {
				disconnect()
				head = 0 // fresh grace period after the reconnect replays
			}
			rexmitHead = head
		case <-stop:
			beginDrain()
		case <-deadline:
			return
		case <-s.t.killed:
			disconnect()
			return
		}
	}
}

// fin runs the close handshake on a drained stream. The window is
// empty (every data frame acked, which implies flushed), so the
// batching writer holds no bytes; flush anyway to make FIN ordering
// independent of that invariant.
func (s *sender) fin(conn net.Conn, acks chan uint64) {
	if s.bw != nil && s.bw.Flush() != nil {
		return
	}
	if err := writeFrame(conn, &frame{typ: frameFin, from: s.t.self, to: s.dest, gen: s.t.wireGen()}); err != nil {
		return
	}
	timeout := time.After(finAckTimeout)
	for {
		select {
		case seq := <-acks:
			if seq == finAckMark {
				return
			}
		case <-timeout:
			return
		}
	}
}

var _ fabric.Fabric = (*TCP)(nil)
