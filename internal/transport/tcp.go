package transport

import (
	"bufio"
	"fmt"
	"math"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gravel/internal/fabric"
	"gravel/internal/timemodel"
	"gravel/internal/wire"
)

// Tunables of the TCP transport. Frames are whole per-node queues
// (64 kB by default), so modest queue depths already buffer megabytes.
const (
	sendQueueFrames  = 64  // staged frames per destination before Send blocks
	sendWindowFrames = 256 // written-but-unacked frames before the writer stalls
	recvQueueFrames  = 256 // received packets before the reader stalls (backpressure)

	dialTimeout      = 2 * time.Second
	backoffInitial   = 10 * time.Millisecond
	backoffMax       = time.Second
	handshakeTimeout = 5 * time.Second
	drainTimeout     = 8 * time.Second
	finAckTimeout    = 2 * time.Second

	finAckMark = math.MaxUint64 // in-band marker on the ack channel
)

// TCP is the real-socket transport: the cluster runs as one OS process
// per node, and per-node queues travel as CRC-framed, sequence-numbered
// messages over per-destination TCP connections.
//
// Reliability: each sender→destination stream numbers its data frames;
// the receiver acknowledges cumulatively and deduplicates, and the
// sender keeps a bounded window of unacknowledged frames that it
// retransmits after reconnecting (exponential backoff with jitter), so
// a dropped connection delays but never loses or duplicates messages.
//
// Quiescence: Quiet extends the runtime's Step barrier across
// processes through the rendezvous coordinator (see Coordinator) using
// monotonic sent/applied frame counters.
//
// Timing: with Options.WallClock the clocks charge measured wall time
// for wire activity; otherwise the virtual LogGP model is charged
// sender-side and receiver-side as in the in-process fabrics.
type TCP struct {
	*fabric.Metrics
	params *timemodel.Params
	clocks []*timemodel.Clocks
	n      int
	self   int
	wall   bool

	ln      net.Listener
	coord   *coordClient
	senders []*sender

	inbox         []chan fabric.Packet
	localInflight atomic.Int64 // self→self packets between Send and Done
	recvInflight  atomic.Int64 // wire packets between inbox enqueue and Done
	sentWire      atomic.Int64 // data frames originated (monotonic)
	appliedWire   atomic.Int64 // data frames fully applied (monotonic)
	epoch         atomic.Int64 // step barriers passed

	recv []*peerRecv // per-peer receive state (dedup seq + active conn)

	connsMu sync.Mutex
	conns   map[net.Conn]struct{} // live inbound connections

	quietMu      sync.Mutex
	quietCached  bool
	quietSent    int64
	quietApplied int64

	closed    atomic.Bool
	closeOnce sync.Once
	handlers  sync.WaitGroup
}

// NewTCP builds the transport: it binds opt.Listen (default
// "127.0.0.1:0"), discovers peers through the coordinator rendezvous
// (blocking until the whole cluster has joined), and starts the
// per-destination connection pools. Multi-node clusters require
// opt.Coord: the Quiet() quiescence guarantee the runtime's Step
// barrier relies on cannot be established from a static peers list
// alone, so a peers-only configuration is rejected rather than
// silently weakening the contract.
func NewTCP(params *timemodel.Params, clocks []*timemodel.Clocks, opt fabric.Options) (*TCP, error) {
	n := len(clocks)
	if n == 0 {
		return nil, fmt.Errorf("transport: no nodes")
	}
	if opt.Self < 0 || opt.Self >= n {
		return nil, fmt.Errorf("transport: self %d out of range [0,%d)", opt.Self, n)
	}
	if n > 1 && opt.Coord == "" {
		return nil, fmt.Errorf("transport: %d nodes but no coordinator: cross-process quiescence requires Options.Coord", n)
	}
	listen := opt.Listen
	if listen == "" {
		listen = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", listen, err)
	}
	t := &TCP{
		Metrics: fabric.NewMetrics(n),
		params:  params,
		clocks:  clocks,
		n:       n,
		self:    opt.Self,
		wall:    opt.WallClock,
		ln:      ln,
		inbox:   make([]chan fabric.Packet, n),
		recv:    make([]*peerRecv, n),
		conns:   make(map[net.Conn]struct{}),
	}
	for i := range t.inbox {
		t.inbox[i] = make(chan fabric.Packet, recvQueueFrames)
		t.recv[i] = &peerRecv{}
	}

	peers := opt.Peers
	if opt.Coord != "" {
		coord, err := dialCoord(opt.Coord, 30*time.Second)
		if err != nil {
			ln.Close()
			return nil, err
		}
		t.coord = coord
		peers, err = coord.join(t.self, ln.Addr().String())
		if err != nil {
			coord.close()
			ln.Close()
			return nil, err
		}
	}
	if n > 1 && len(peers) != n {
		if t.coord != nil {
			t.coord.close()
		}
		ln.Close()
		return nil, fmt.Errorf("transport: have %d peer addresses for %d nodes", len(peers), n)
	}

	t.senders = make([]*sender, n)
	for d := 0; d < n; d++ {
		if d == t.self {
			continue
		}
		s := &sender{
			t:     t,
			dest:  d,
			addr:  peers[d],
			queue: make(chan *frame, sendQueueFrames),
			stop:  make(chan struct{}),
			done:  make(chan struct{}),
		}
		t.senders[d] = s
		go s.run()
	}
	go t.acceptLoop()
	return t, nil
}

// Nodes implements fabric.Fabric.
func (t *TCP) Nodes() int { return t.n }

// Self returns the node this process hosts.
func (t *TCP) Self() int { return t.self }

// Hosts implements fabric.Fabric: one node per process.
func (t *TCP) Hosts(node int) bool { return node == t.self }

// Addr returns the transport's listen address.
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// Send implements fabric.Fabric.
func (t *TCP) Send(from, to int, buf []byte, msgs int) {
	t.send(from, to, buf, msgs, false)
}

// SendRouted implements fabric.Fabric.
func (t *TCP) SendRouted(from, gateway int, buf []byte, msgs int) {
	t.send(from, gateway, buf, msgs, true)
}

func (t *TCP) send(from, to int, buf []byte, msgs int, routed bool) {
	if from != t.self {
		panic(fmt.Sprintf("transport: node %d sending from the process hosting %d", from, t.self))
	}
	if to < 0 || to >= t.n {
		panic(fmt.Sprintf("transport: send to invalid node %d", to))
	}
	if to == t.self {
		t.SelfPkts[t.self].Inc()
		t.localInflight.Add(1)
		t.inbox[t.self] <- fabric.Packet{From: from, To: to, Buf: buf, Msgs: msgs, Routed: routed}
		return
	}
	if len(buf) > maxFramePayload {
		// Fail at the source: a frame the receiver would reject as
		// malformed must never enter the retransmit window, where it
		// would livelock the stream in a reconnect loop.
		panic(fmt.Sprintf("transport: %d-byte payload exceeds the %d-byte frame limit", len(buf), maxFramePayload))
	}
	t.ObserveWire(from, to, len(buf))
	t.clocks[from].CountPacket(len(buf))
	typ := frameData
	if routed {
		typ = frameRouted
	}
	f := &frame{typ: typ, from: from, to: to, msgs: msgs, payload: buf}
	t.sentWire.Add(1)
	if t.wall {
		t0 := time.Now()
		t.senders[to].queue <- f
		t.clocks[from].AddWireSend(float64(time.Since(t0).Nanoseconds()))
	} else {
		t.clocks[from].AddWireSend(t.params.WireNs(len(buf)))
		t.senders[to].queue <- f
	}
}

// Inbox implements fabric.Fabric. Only the hosted node's inbox ever
// receives; the rest exist so the runtime's shape is node-symmetric.
func (t *TCP) Inbox(node int) <-chan fabric.Packet { return t.inbox[node] }

// Done implements fabric.Fabric.
func (t *TCP) Done(p fabric.Packet) {
	if p.From == t.self && p.To == t.self {
		t.localInflight.Add(-1)
		return
	}
	t.recvInflight.Add(-1)
	t.appliedWire.Add(1)
}

// localIdle reports whether this process has nothing in flight: no
// self-packets or received packets being applied, and every outbound
// stream drained and acknowledged.
func (t *TCP) localIdle() bool {
	if t.localInflight.Load() != 0 || t.recvInflight.Load() != 0 {
		return false
	}
	for _, s := range t.senders {
		if s != nil && !s.idle() {
			return false
		}
	}
	return true
}

// Quiet implements fabric.Fabric. Local activity is checked first;
// cluster-wide quiescence is then established through the coordinator
// and cached until the local counters move again.
func (t *TCP) Quiet() bool {
	if !t.localIdle() {
		return false
	}
	if t.n == 1 {
		return true
	}
	// n > 1 implies a coordinator: NewTCP rejects peers-only clusters.
	sent, applied := t.sentWire.Load(), t.appliedWire.Load()
	t.quietMu.Lock()
	defer t.quietMu.Unlock()
	if t.quietCached && sent == t.quietSent && applied == t.quietApplied {
		return true
	}
	quiet, err := t.coord.quiet(t.self, sent, applied, true)
	if err != nil {
		panic(fmt.Sprintf("transport: quiescence query failed: %v", err))
	}
	// Only cache if the counters did not move while we asked.
	if quiet && sent == t.sentWire.Load() && applied == t.appliedWire.Load() {
		t.quietCached, t.quietSent, t.quietApplied = true, sent, applied
		return true
	}
	return false
}

// StepBarrier aligns step boundaries across the cluster (the runtime
// calls it after every Step's quiescence, via interface assertion).
// Each process polls the coordinator's epoch barrier, refreshing its
// counter report on every poll; the coordinator releases the barrier
// only when all processes have arrived at the same epoch at a globally
// quiescent instant. Without this, a fast process could read results
// or start the next step before a skewed peer's messages landed.
func (t *TCP) StepBarrier() {
	if t.coord == nil || t.n == 1 {
		return
	}
	key := fmt.Sprintf("step:%d", t.epoch.Add(1))
	for {
		released, err := t.coord.barrier(t.self, key, t.sentWire.Load(), t.appliedWire.Load(), t.localIdle())
		if err != nil {
			panic(fmt.Sprintf("transport: step barrier failed: %v", err))
		}
		if released {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// Reduce folds val into the named cluster-wide sum through the
// coordinator, blocking until every node has contributed. Without a
// coordinator it returns val.
func (t *TCP) Reduce(key string, val uint64) (uint64, error) {
	if t.coord == nil {
		return val, nil
	}
	return t.coord.reduce(t.self, key, val)
}

// Barrier blocks until every node has reached the named barrier.
func (t *TCP) Barrier(key string) error {
	_, err := t.Reduce("barrier:"+key, 0)
	return err
}

// Close runs the drain/close handshake: every sender flushes its queue
// and window, FINs its stream, and awaits the FIN-ACK; inbound streams
// are given time to FIN symmetrically; then all inboxes close so the
// network threads exit, and the coordinator is told goodbye.
func (t *TCP) Close() {
	t.closeOnce.Do(func() {
		t.closed.Store(true)
		var wg sync.WaitGroup
		for _, s := range t.senders {
			if s == nil {
				continue
			}
			wg.Add(1)
			go func(s *sender) {
				defer wg.Done()
				s.shutdown()
			}(s)
		}
		wg.Wait()
		t.ln.Close()

		// Peers close concurrently; give their FINs time to land, then
		// cut whatever is left.
		handlersDone := make(chan struct{})
		go func() { t.handlers.Wait(); close(handlersDone) }()
		select {
		case <-handlersDone:
		case <-time.After(drainTimeout):
			t.connsMu.Lock()
			for c := range t.conns {
				c.Close()
			}
			t.connsMu.Unlock()
			<-handlersDone
		}

		for _, ch := range t.inbox {
			close(ch)
		}
		if t.coord != nil {
			t.coord.bye(t.self)
			t.coord.close()
		}
	})
}

// DropConnections forcibly closes every established connection, inbound
// and outbound, without touching queued or unacknowledged frames — a
// fault-injection hook: senders must reconnect (with backoff) and
// retransmit, and no message may be lost or duplicated.
func (t *TCP) DropConnections() {
	for _, s := range t.senders {
		if s != nil {
			s.dropConn()
		}
	}
	t.connsMu.Lock()
	for c := range t.conns {
		c.Close()
	}
	t.connsMu.Unlock()
}

// peerRecv serializes the receive side of one peer. mu is held across
// the whole dedup-check / deliver / record sequence, and conn tracks
// the connection currently allowed to deliver: a reconnecting peer's
// new HELLO supersedes (closes) the old connection under mu, so two
// handlers for the same peer can never both pass the dedup test and
// enqueue one frame twice — even while the old handler drains frames
// still buffered in its reader.
type peerRecv struct {
	mu   sync.Mutex
	seq  uint64   // highest data seq handed to the inbox
	conn net.Conn // connection allowed to deliver for this peer
}

// acceptLoop admits peer connections until the listener closes.
func (t *TCP) acceptLoop() {
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return
		}
		t.connsMu.Lock()
		t.conns[conn] = struct{}{}
		t.connsMu.Unlock()
		t.handlers.Add(1)
		go t.serveConn(conn)
	}
}

// serveConn is the receive side of one peer stream: HELLO, then data
// frames — validated, deduplicated, delivered, acknowledged — until FIN
// or error. Any malformed frame poisons the connection; the peer
// reconnects and retransmits from the last acknowledged frame.
func (t *TCP) serveConn(conn net.Conn) {
	defer t.handlers.Done()
	defer func() {
		t.connsMu.Lock()
		delete(t.conns, conn)
		t.connsMu.Unlock()
		conn.Close()
	}()
	br := bufio.NewReaderSize(conn, 64<<10)

	conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	hello, err := readFrame(br)
	if err != nil || hello.typ != frameHello || hello.to != t.self ||
		hello.from < 0 || hello.from >= t.n || hello.from == t.self {
		t.Malformed.Inc()
		return
	}
	conn.SetReadDeadline(time.Time{})
	from := hello.from
	pr := t.recv[from]
	// Supersede any previous connection from this peer before acking
	// the resume point: the old handler may still be draining frames
	// buffered in its reader, and the retransmitted window must not be
	// able to race it past the dedup check.
	pr.mu.Lock()
	if pr.conn != nil {
		pr.conn.Close()
	}
	pr.conn = conn
	resume := pr.seq
	pr.mu.Unlock()
	defer func() {
		pr.mu.Lock()
		if pr.conn == conn {
			pr.conn = nil
		}
		pr.mu.Unlock()
	}()
	if err := writeFrame(conn, &frame{typ: frameAck, from: t.self, to: from, seq: resume}); err != nil {
		return
	}

	for {
		f, err := readFrame(br)
		if err != nil {
			return
		}
		switch f.typ {
		case frameFin:
			writeFrame(conn, &frame{typ: frameFinAck, from: t.self, to: from})
			return
		case frameData, frameRouted:
			routed := f.typ == frameRouted
			pr.mu.Lock()
			if pr.conn != conn {
				// Superseded by a reconnect while this frame sat in the
				// reader; the new stream retransmits everything unacked.
				pr.mu.Unlock()
				return
			}
			last := pr.seq
			switch {
			case f.from != from || f.to != t.self,
				f.seq > last+1, // gap: protocol violation
				wire.CheckBuf(f.payload, routed, t.n) != nil:
				pr.mu.Unlock()
				t.Malformed.Inc()
				return
			case f.seq <= last:
				// Duplicate after a reconnect: re-acknowledge, drop.
				pr.mu.Unlock()
				if writeFrame(conn, &frame{typ: frameAck, from: t.self, to: from, seq: f.seq}) != nil {
					return
				}
				continue
			}
			ok := t.deliver(f, routed)
			if ok {
				pr.seq = f.seq
			}
			pr.mu.Unlock()
			if !ok {
				return
			}
			if writeFrame(conn, &frame{typ: frameAck, from: t.self, to: from, seq: f.seq}) != nil {
				return
			}
		default:
			t.Malformed.Inc()
			return
		}
	}
}

// deliver hands one validated data frame to the hosted node's inbox,
// charging receive-side wire time. It reports false if the transport
// closed underneath it (stray post-drain frame).
func (t *TCP) deliver(f *frame, routed bool) (ok bool) {
	defer func() {
		if recover() != nil {
			// Inbox closed during shutdown; the frame is unacked, so a
			// surviving peer would retransmit — by protocol this frame is
			// post-quiescence and carries nothing the run still needs.
			t.recvInflight.Add(-1)
			ok = false
		}
	}()
	if t.wall {
		t0 := time.Now()
		t.recvInflight.Add(1)
		t.inbox[t.self] <- fabric.Packet{From: f.from, To: t.self, Buf: f.payload, Msgs: f.msgs, Routed: routed}
		t.clocks[t.self].AddWireRecv(float64(time.Since(t0).Nanoseconds()))
		return true
	}
	t.clocks[t.self].AddWireRecv(t.params.WireNs(len(f.payload)))
	t.recvInflight.Add(1)
	t.inbox[t.self] <- fabric.Packet{From: f.from, To: t.self, Buf: f.payload, Msgs: f.msgs, Routed: routed}
	return true
}

// sender is one outbound stream: a bounded queue of staged frames, a
// bounded window of unacknowledged frames, and a writer goroutine that
// owns the connection — dialing, handshaking, retransmitting the window
// after reconnects, and FINing on shutdown.
type sender struct {
	t    *TCP
	dest int
	addr string

	queue chan *frame
	stop  chan struct{}
	done  chan struct{}

	mu      sync.Mutex
	window  []*frame
	nextSeq uint64
	conn    net.Conn // current connection, for fault injection
}

// idle reports whether nothing is staged or awaiting acknowledgment.
func (s *sender) idle() bool {
	if len(s.queue) != 0 {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.window) == 0
}

// trim drops acknowledged frames (seq ≤ acked) from the window.
func (s *sender) trim(acked uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := 0
	for i < len(s.window) && s.window[i].seq <= acked {
		i++
	}
	s.window = s.window[i:]
}

func (s *sender) windowSnapshot() []*frame {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*frame(nil), s.window...)
}

func (s *sender) windowFull() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.window) >= sendWindowFrames
}

func (s *sender) push(f *frame) {
	s.mu.Lock()
	s.window = append(s.window, f)
	s.mu.Unlock()
}

func (s *sender) setConn(c net.Conn) {
	s.mu.Lock()
	s.conn = c
	s.mu.Unlock()
}

// dropConn force-closes the current connection (fault injection).
func (s *sender) dropConn() {
	s.mu.Lock()
	c := s.conn
	s.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

// shutdown drains and stops the writer.
func (s *sender) shutdown() {
	close(s.stop)
	<-s.done
}

// connect dials with exponential backoff and jitter until it succeeds,
// shutdown begins (stop closes — stopped=true so the caller can start
// its bounded drain), or the drain deadline fires. On success it
// handshakes, retransmits the unacknowledged window, and returns the
// established conn with its ack reader channels.
func (s *sender) connect(stop <-chan struct{}, abort <-chan time.Time, attempted *bool) (conn net.Conn, acks chan uint64, errs chan error, stopped bool) {
	backoff := backoffInitial
	for {
		conn, err := net.DialTimeout("tcp", s.addr, dialTimeout)
		if err == nil {
			if c, acks, errs := s.handshake(conn); c != nil {
				if *attempted {
					s.t.Reconnects.Inc()
				}
				*attempted = true
				return c, acks, errs, false
			}
		}
		s.t.Retries.Inc()
		sleep := backoff + time.Duration(rand.Int63n(int64(backoff)))
		if backoff < backoffMax {
			backoff *= 2
		}
		select {
		case <-time.After(sleep):
		case <-stop:
			return nil, nil, nil, true
		case <-abort:
			return nil, nil, nil, false
		}
	}
}

// handshake sends HELLO, consumes the receiver's cumulative ack (which
// trims the window after a reconnect), retransmits whatever remains,
// and starts the ack reader.
func (s *sender) handshake(conn net.Conn) (net.Conn, chan uint64, chan error) {
	if err := writeFrame(conn, &frame{typ: frameHello, from: s.t.self, to: s.dest}); err != nil {
		conn.Close()
		return nil, nil, nil
	}
	br := bufio.NewReaderSize(conn, 16<<10)
	conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	ack, err := readFrame(br)
	if err != nil || ack.typ != frameAck {
		conn.Close()
		return nil, nil, nil
	}
	conn.SetReadDeadline(time.Time{})
	s.trim(ack.seq)
	for _, f := range s.windowSnapshot() {
		if err := writeFrame(conn, f); err != nil {
			conn.Close()
			return nil, nil, nil
		}
	}
	acks := make(chan uint64, sendWindowFrames)
	errs := make(chan error, 1)
	go func() {
		for {
			f, err := readFrame(br)
			if err != nil {
				errs <- err
				return
			}
			switch f.typ {
			case frameAck:
				acks <- f.seq
			case frameFinAck:
				acks <- finAckMark
				return
			default:
				errs <- fmt.Errorf("transport: unexpected %d frame on ack stream", f.typ)
				return
			}
		}
	}()
	s.setConn(conn)
	return conn, acks, errs
}

// run is the writer loop.
func (s *sender) run() {
	defer close(s.done)
	var (
		conn      net.Conn
		acks      chan uint64
		errs      chan error
		attempted bool
		draining  bool
		deadline  <-chan time.Time
		stop      = s.stop
	)
	disconnect := func() {
		if conn != nil {
			conn.Close()
			s.setConn(nil)
			conn = nil
		}
	}
	defer disconnect()
	var drainTimer *time.Timer
	defer func() {
		if drainTimer != nil {
			drainTimer.Stop()
		}
	}()
	beginDrain := func() {
		stop = nil
		draining = true
		drainTimer = time.NewTimer(drainTimeout)
		deadline = drainTimer.C
	}
	for {
		if draining && len(s.queue) == 0 {
			s.mu.Lock()
			empty := len(s.window) == 0
			s.mu.Unlock()
			if empty {
				if conn != nil {
					s.fin(conn, acks)
				}
				return
			}
		}
		if conn == nil {
			// Nothing to transmit and shutting down: don't redial.
			if draining && len(s.queue) == 0 && s.idle() {
				continue // loops into the exit branch above
			}
			var stopped bool
			conn, acks, errs, stopped = s.connect(stop, deadline, &attempted)
			if stopped {
				// Shutdown arrived mid-reconnect: switch to the bounded
				// drain so an unreachable peer cannot hang Close.
				beginDrain()
				continue
			}
			if conn == nil {
				return // drain deadline fired while reconnecting
			}
			continue
		}
		// With a full window, only acks (or failure/shutdown) can
		// make progress.
		queue := s.queue
		if s.windowFull() {
			queue = nil
		}
		select {
		case seq := <-acks:
			if seq == finAckMark {
				disconnect()
				continue
			}
			s.trim(seq)
		case <-errs:
			disconnect()
		case f := <-queue:
			if f.seq == 0 {
				s.nextSeq++
				f.seq = s.nextSeq
			}
			s.push(f)
			if err := writeFrame(conn, f); err != nil {
				disconnect()
			}
		case <-stop:
			beginDrain()
		case <-deadline:
			return
		}
	}
}

// fin runs the close handshake on a drained stream.
func (s *sender) fin(conn net.Conn, acks chan uint64) {
	if err := writeFrame(conn, &frame{typ: frameFin, from: s.t.self, to: s.dest}); err != nil {
		return
	}
	timeout := time.After(finAckTimeout)
	for {
		select {
		case seq := <-acks:
			if seq == finAckMark {
				return
			}
		case <-timeout:
			return
		}
	}
}

var _ fabric.Fabric = (*TCP)(nil)
