package transport

import (
	"testing"
)

// TestCoordinatorReclaimsCollectiveState pins the coordinator's memory
// bound: per-step barrier and reduce entries must be deleted once every
// node has observed the release (or collected the total), so state does
// not grow with step count on long-running clusters.
func TestCoordinatorReclaimsCollectiveState(t *testing.T) {
	c := NewCoordinator(2)
	idle := quietReport{idle: true}

	barrier := func(node int, key string) bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.barrierLocked(node, key, idle)
	}
	if barrier(0, "step:1") {
		t.Fatal("barrier released with one node absent")
	}
	// Release needs two consecutive quiescent evaluations with unchanged
	// counters (one balanced observation can be a cross-report artifact),
	// so the first all-arrived poll must not release yet.
	if barrier(1, "step:1") {
		t.Fatal("barrier released on a single quiescent observation")
	}
	if !barrier(1, "step:1") {
		t.Fatal("barrier not released after two stable quiescent observations")
	}
	if !barrier(0, "step:1") {
		t.Fatal("release not sticky for the remaining node")
	}
	c.mu.Lock()
	nb := len(c.barriers)
	c.mu.Unlock()
	if nb != 0 {
		t.Fatalf("%d barrier entries retained after every node observed the release", nb)
	}

	// Reduce is a polled collective: nodes contribute, then poll until
	// everyone has; the entry is reclaimed once all have collected.
	reduce := func(node int, key string, val uint64) (uint64, bool) {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.reduceLocked(node, key, val, "", 0)
	}
	if _, ready := reduce(0, "sum:1", 1); ready {
		t.Fatal("reduce ready with one node missing")
	}
	tot1, ready := reduce(1, "sum:1", 2)
	if !ready || tot1 != 3 {
		t.Fatalf("reduce(1) = %d ready=%v, want 3 true", tot1, ready)
	}
	tot0, ready := reduce(0, "sum:1", 1) // node 0 polls again and collects
	if !ready || tot0 != 3 {
		t.Fatalf("reduce(0) poll = %d ready=%v, want 3 true", tot0, ready)
	}
	c.mu.Lock()
	nr := len(c.reduces)
	c.mu.Unlock()
	if nr != 0 {
		t.Fatalf("%d reduce entries retained after every node collected the total", nr)
	}
}
