package transport

import (
	"sync"
	"testing"
)

// TestCoordinatorReclaimsCollectiveState pins the coordinator's memory
// bound: per-step barrier and reduce entries must be deleted once every
// node has observed the release (or collected the total), so state does
// not grow with step count on long-running clusters.
func TestCoordinatorReclaimsCollectiveState(t *testing.T) {
	c := NewCoordinator(2)
	idle := quietReport{idle: true}

	if c.barrier(0, "step:1", idle) {
		t.Fatal("barrier released with one node absent")
	}
	if !c.barrier(1, "step:1", idle) {
		t.Fatal("barrier not released with all nodes arrived and idle")
	}
	if !c.barrier(0, "step:1", idle) {
		t.Fatal("release not sticky for the remaining node")
	}
	c.mu.Lock()
	nb := len(c.barriers)
	c.mu.Unlock()
	if nb != 0 {
		t.Fatalf("%d barrier entries retained after every node observed the release", nb)
	}

	totals := make([]uint64, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			totals[i] = c.reduce(i, "sum:1", uint64(i+1))
		}(i)
	}
	wg.Wait()
	for i, tot := range totals {
		if tot != 3 {
			t.Fatalf("node %d reduced to %d, want 3", i, tot)
		}
	}
	c.mu.Lock()
	nr := len(c.reduces)
	c.mu.Unlock()
	if nr != 0 {
		t.Fatalf("%d reduce entries retained after every node collected the total", nr)
	}
}
