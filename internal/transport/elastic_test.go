package transport

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"gravel/internal/fabric"
	"gravel/internal/timemodel"
)

// TestTCPEvictsStaleHello pins the receive side of the membership
// generation gate: a HELLO stamped with a dead epoch's generation must
// be answered with frameEvict carrying the receiver's generation and
// the connection cut, while matching and unstamped (compat) hellos
// complete the handshake normally. Without the gate a stale worker's
// frames would be silently applied into the new epoch's replicas.
func TestTCPEvictsStaleHello(t *testing.T) {
	tr := newRecvOnlyTCP(t, 2, 1, 3)
	defer tr.Close()

	dial := func(gen uint16) (net.Conn, *frame, error) {
		t.Helper()
		c, err := net.DialTimeout("tcp", tr.Addr(), dialTimeout)
		if err != nil {
			t.Fatal(err)
		}
		if err := writeFrame(c, &frame{typ: frameHello, from: 0, to: 1, gen: gen}); err != nil {
			t.Fatal(err)
		}
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		f, err := readFrame(bufio.NewReader(c))
		return c, f, err
	}

	// Stale generation: evicted, not acked.
	c, f, err := dial(1)
	if err != nil {
		t.Fatalf("reading evict reply: %v", err)
	}
	if f.typ != frameEvict {
		t.Fatalf("stale hello answered with frame type %d, want evict", f.typ)
	}
	if f.seq != 3 || f.gen != 3 {
		t.Fatalf("evict carries generation seq=%d gen=%d, want 3", f.seq, f.gen)
	}
	// The receiver must also cut the connection: nothing else may flow.
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := readFrame(bufio.NewReader(c)); err == nil {
		t.Fatal("stale connection stayed open after the evict")
	}
	c.Close()

	// Matching generation completes the handshake.
	c, f, err = dial(3)
	if err != nil || f.typ != frameAck {
		t.Fatalf("matching-generation hello: frame %+v err %v, want ack", f, err)
	}
	c.Close()

	// Unstamped hello (fixed-membership compat) also passes.
	c, f, err = dial(0)
	if err != nil || f.typ != frameAck {
		t.Fatalf("unstamped hello: frame %+v err %v, want ack", f, err)
	}
	c.Close()
}

// TestTCPSenderEvictedTypedError pins the send side: a sender whose
// handshake is refused with frameEvict must fail its whole transport
// with *StaleGenerationError (Source "peer") instead of redialing
// forever.
func TestTCPSenderEvictedTypedError(t *testing.T) {
	recv := newRecvOnlyTCP(t, 2, 1, 3)
	defer recv.Close()

	tr := &TCP{
		Metrics:  fabric.NewMetrics(2),
		params:   timemodel.Default(),
		clocks:   newClocks(2),
		n:        2,
		self:     0,
		gen:      2,
		failedCh: make(chan struct{}),
		killed:   make(chan struct{}),
	}
	s := &sender{
		t:     tr,
		dest:  1,
		addr:  recv.Addr(),
		queue: make(chan *frame, sendQueueFrames),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go s.run()
	defer s.shutdown()

	deadline := time.Now().Add(10 * time.Second)
	for tr.Err() == nil && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	var se *StaleGenerationError
	if err := tr.Err(); !errors.As(err, &se) {
		t.Fatalf("transport error is %T (%v), want *StaleGenerationError", err, err)
	}
	if se.Have != 2 || se.Want != 3 || se.Source != "peer" {
		t.Fatalf("typed error = %+v, want Have=2 Want=3 Source=peer", se)
	}
}

// TestCoordinatorRejectsStaleGeneration pins the coordinator's
// generation gate: a worker joining with a dead epoch's generation is
// refused with *StaleGenerationError (Source "coordinator") on its
// first RPC, before it can pollute the new epoch's membership.
func TestCoordinatorRejectsStaleGeneration(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	c := NewCoordinator(2)
	go c.Serve(ln)
	if gen := c.BeginEpoch(2); gen != 2 {
		t.Fatalf("BeginEpoch moved to generation %d, want 2", gen)
	}

	_, err = NewTCP(timemodel.Default(), newClocks(2), fabric.Options{
		Self:             0,
		Coord:            ln.Addr().String(),
		Generation:       1,
		CoordDialTimeout: 5 * time.Second,
		CoordRPCTimeout:  2 * time.Second,
	})
	var se *StaleGenerationError
	if !errors.As(err, &se) {
		t.Fatalf("join error is %T (%v), want *StaleGenerationError", err, err)
	}
	if se.Have != 1 || se.Want != 2 || se.Source != "coordinator" {
		t.Fatalf("typed error = %+v, want Have=1 Want=2 Source=coordinator", se)
	}
}

// TestTCPCoordinatorKillTypedUnwind kills the coordinator under an
// assembled cluster and requires the workers to unwind with the typed
// *CoordDownError — Reduce by returning it, Quiet by panicking it on
// the Step goroutine — rather than hanging in a collective that can
// never complete.
func TestTCPCoordinatorKillTypedUnwind(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := NewCoordinator(2)
	go c.Serve(ln)

	fabs := make([]*TCP, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fabs[i], errs[i] = NewTCP(timemodel.Default(), newClocks(2), fabric.Options{
				Self:            i,
				Coord:           ln.Addr().String(),
				CoordRPCTimeout: time.Second,
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("fabric %d: %v", i, err)
		}
	}
	defer func() {
		fabs[0].Kill()
		fabs[1].Kill()
	}()

	c.Kill()
	ln.Close()

	_, err = fabs[0].Reduce("after-kill", 1)
	var cde *CoordDownError
	if !errors.As(err, &cde) {
		t.Fatalf("Reduce error is %T (%v), want *CoordDownError", err, err)
	}

	unwound := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				var ok bool
				if err, ok = r.(error); !ok {
					t.Fatalf("Quiet panicked a non-error %v", r)
				}
			}
		}()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			fabs[1].Quiet()
			time.Sleep(time.Millisecond)
		}
		return nil
	}()
	if !errors.As(unwound, &cde) {
		t.Fatalf("Quiet unwound with %T (%v), want *CoordDownError", unwound, unwound)
	}
}
