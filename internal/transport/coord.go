package transport

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Coordinator is the rendezvous point of a multi-process cluster: it
// assigns nothing and moves no data, but provides the three collective
// services sockets cannot: peer discovery (join), distributed
// quiescence detection (the cross-process extension of fabric.Quiet),
// and terminal reductions (gathering per-node results such as table
// sums).
//
// Quiescence uses the classic sum-matching argument over monotonic
// counters: every worker reports (wire frames sent, wire frames
// applied, locally idle). The cluster is quiet when every worker has
// reported, every worker is idle, the sums match, and the previous
// evaluation — also a candidate — saw identical sums. Counters only
// grow, so two consecutive matching candidates imply no frame was in
// flight between them.
type Coordinator struct {
	nodes int

	mu   sync.Mutex
	cond *sync.Cond

	peers   map[int]string
	reports map[int]quietReport
	prevS   int64
	prevA   int64
	prevOK  bool

	reduces  map[string]*reduceState
	barriers map[string]*barrierState
	byes     int
	done     chan struct{}
}

type barrierState struct {
	arrived  map[int]bool
	released bool
	observed map[int]bool // nodes that have seen the release
}

type quietReport struct {
	sent, applied int64
	idle          bool
}

type reduceState struct {
	vals      map[int]uint64
	total     uint64
	done      bool
	collected int // nodes that have received the total
}

// coordMsg is both request and response of the line-oriented JSON
// protocol workers speak to the coordinator.
type coordMsg struct {
	Op      string   `json:"op,omitempty"`
	Node    int      `json:"node"`
	Addr    string   `json:"addr,omitempty"`
	Sent    int64    `json:"sent,omitempty"`
	Applied int64    `json:"applied,omitempty"`
	Idle    bool     `json:"idle,omitempty"`
	Key     string   `json:"key,omitempty"`
	Val     uint64   `json:"val,omitempty"`
	OK      bool     `json:"ok"`
	Err     string   `json:"err,omitempty"`
	Quiet   bool     `json:"quiet,omitempty"`
	Total   uint64   `json:"total,omitempty"`
	Peers   []string `json:"peers,omitempty"`
}

// NewCoordinator creates a coordinator expecting the given worker
// count.
func NewCoordinator(nodes int) *Coordinator {
	c := &Coordinator{
		nodes:    nodes,
		peers:    make(map[int]string),
		reports:  make(map[int]quietReport),
		reduces:  make(map[string]*reduceState),
		barriers: make(map[string]*barrierState),
		done:     make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Done is closed once every worker has said goodbye.
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// Serve accepts worker connections until the listener closes. Call
// `ln.Close()` after Done() fires (or on error) to end it.
func (c *Coordinator) Serve(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go c.handle(conn)
	}
}

func (c *Coordinator) handle(conn net.Conn) {
	defer conn.Close()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		var req coordMsg
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := c.dispatch(&req)
		if err := enc.Encode(resp); err != nil {
			return
		}
		if req.Op == "bye" {
			return
		}
	}
}

func (c *Coordinator) dispatch(req *coordMsg) *coordMsg {
	if req.Node < 0 || req.Node >= c.nodes {
		return &coordMsg{Err: fmt.Sprintf("node %d out of range [0,%d)", req.Node, c.nodes)}
	}
	switch req.Op {
	case "join":
		peers, err := c.join(req.Node, req.Addr)
		if err != nil {
			return &coordMsg{Err: err.Error()}
		}
		return &coordMsg{OK: true, Peers: peers}
	case "quiet":
		q := c.quietEval(req.Node, quietReport{sent: req.Sent, applied: req.Applied, idle: req.Idle})
		return &coordMsg{OK: true, Quiet: q}
	case "reduce":
		return &coordMsg{OK: true, Total: c.reduce(req.Node, req.Key, req.Val)}
	case "barrier":
		rel := c.barrier(req.Node, req.Key, quietReport{sent: req.Sent, applied: req.Applied, idle: req.Idle})
		return &coordMsg{OK: true, Quiet: rel}
	case "bye":
		c.bye()
		return &coordMsg{OK: true}
	default:
		return &coordMsg{Err: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// join registers a worker's listen address and blocks until the whole
// cluster has assembled, returning the address table indexed by node.
func (c *Coordinator) join(node int, addr string) ([]string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, dup := c.peers[node]; dup && prev != addr {
		return nil, fmt.Errorf("node %d joined twice (%s, %s)", node, prev, addr)
	}
	c.peers[node] = addr
	c.cond.Broadcast()
	for len(c.peers) < c.nodes {
		c.cond.Wait()
	}
	out := make([]string, c.nodes)
	for i, a := range c.peers {
		out[i] = a
	}
	return out, nil
}

// quietEval folds one worker's report into the global picture and
// reports whether the cluster is provably quiescent.
func (c *Coordinator) quietEval(node int, r quietReport) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reports[node] = r
	if len(c.reports) < c.nodes {
		return false
	}
	var s, a int64
	allIdle := true
	for _, rep := range c.reports {
		s += rep.sent
		a += rep.applied
		allIdle = allIdle && rep.idle
	}
	candidate := allIdle && s == a
	quiet := candidate && c.prevOK && s == c.prevS && a == c.prevA
	c.prevS, c.prevA, c.prevOK = s, a, candidate
	return quiet
}

// barrier registers node's arrival at the named step barrier and
// reports whether it has released. Workers poll rather than block, and
// every poll refreshes the node's quiescence report — this is what
// keeps the counter picture current while a fast worker waits for a
// skewed peer. Release requires everyone arrived AND a globally
// quiescent instant (all idle, sent == applied), so nothing is on the
// wire when a step boundary commits. Once every node has observed the
// release the entry is deleted — barrier keys are per-step, so a
// long-running cluster must not accrete one forever.
func (c *Coordinator) barrier(node int, key string, r quietReport) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reports[node] = r
	st := c.barriers[key]
	if st == nil {
		st = &barrierState{arrived: make(map[int]bool), observed: make(map[int]bool)}
		c.barriers[key] = st
	}
	st.arrived[node] = true
	if !st.released && len(st.arrived) == c.nodes {
		var s, a int64
		allIdle := true
		for _, rep := range c.reports {
			s += rep.sent
			a += rep.applied
			allIdle = allIdle && rep.idle
		}
		if allIdle && s == a {
			st.released = true
		}
	}
	if !st.released {
		return false
	}
	st.observed[node] = true
	if len(st.observed) == c.nodes {
		delete(c.barriers, key)
	}
	return true
}

// reduce folds val into the named reduction and blocks until every
// worker has contributed, returning the sum. Keys must be unique per
// collective (tag them with a step or phase counter). The entry is
// deleted once every node has collected the total, so per-step
// collectives do not leak coordinator memory.
func (c *Coordinator) reduce(node int, key string, val uint64) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.reduces[key]
	if st == nil {
		st = &reduceState{vals: make(map[int]uint64)}
		c.reduces[key] = st
	}
	st.vals[node] = val
	if len(st.vals) == c.nodes {
		for _, v := range st.vals {
			st.total += v
		}
		st.vals = nil
		st.done = true
		c.cond.Broadcast()
	}
	for !st.done {
		c.cond.Wait()
	}
	st.collected++
	if st.collected == c.nodes {
		delete(c.reduces, key)
	}
	return st.total
}

// ReduceTotal returns a completed reduction's sum. A reduction is
// reclaimed once every node has collected it, so this only reports
// ones still in flight or awaiting stragglers.
func (c *Coordinator) ReduceTotal(key string) (uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.reduces[key]
	if st == nil || !st.done {
		return 0, false
	}
	return st.total, true
}

func (c *Coordinator) bye() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.byes++
	if c.byes == c.nodes {
		close(c.done)
	}
}

// coordClient is a worker's connection to the coordinator. All calls
// are serialized request/response exchanges.
type coordClient struct {
	mu   sync.Mutex
	conn net.Conn
	dec  *json.Decoder
	enc  *json.Encoder
}

// dialCoord connects with retries: workers routinely start before the
// coordinator is listening.
func dialCoord(addr string, timeout time.Duration) (*coordClient, error) {
	deadline := time.Now().Add(timeout)
	backoff := 10 * time.Millisecond
	for {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			return &coordClient{
				conn: conn,
				dec:  json.NewDecoder(bufio.NewReader(conn)),
				enc:  json.NewEncoder(conn),
			}, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("transport: coordinator %s unreachable: %w", addr, err)
		}
		time.Sleep(backoff + time.Duration(rand.Int63n(int64(backoff))))
		if backoff < time.Second {
			backoff *= 2
		}
	}
}

func (c *coordClient) call(req *coordMsg) (*coordMsg, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("transport: coordinator request: %w", err)
	}
	var resp coordMsg
	if err := c.dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("transport: coordinator response: %w", err)
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("transport: coordinator: %s", resp.Err)
	}
	return &resp, nil
}

func (c *coordClient) join(node int, addr string) ([]string, error) {
	resp, err := c.call(&coordMsg{Op: "join", Node: node, Addr: addr})
	if err != nil {
		return nil, err
	}
	return resp.Peers, nil
}

func (c *coordClient) quiet(node int, sent, applied int64, idle bool) (bool, error) {
	resp, err := c.call(&coordMsg{Op: "quiet", Node: node, Sent: sent, Applied: applied, Idle: idle})
	if err != nil {
		return false, err
	}
	return resp.Quiet, nil
}

func (c *coordClient) reduce(node int, key string, val uint64) (uint64, error) {
	resp, err := c.call(&coordMsg{Op: "reduce", Node: node, Key: key, Val: val})
	if err != nil {
		return 0, err
	}
	return resp.Total, nil
}

func (c *coordClient) barrier(node int, key string, sent, applied int64, idle bool) (bool, error) {
	resp, err := c.call(&coordMsg{Op: "barrier", Node: node, Key: key, Sent: sent, Applied: applied, Idle: idle})
	if err != nil {
		return false, err
	}
	return resp.Quiet, nil
}

func (c *coordClient) bye(node int) error {
	_, err := c.call(&coordMsg{Op: "bye", Node: node})
	return err
}

func (c *coordClient) close() {
	c.conn.Close()
}
