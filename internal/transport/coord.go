package transport

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Coordinator is the rendezvous point of a multi-process cluster: it
// assigns nothing and moves no data, but provides the collective
// services sockets cannot: peer discovery (join), distributed
// quiescence detection (the cross-process extension of fabric.Quiet),
// terminal reductions (gathering per-node results such as table sums),
// and cluster-wide failure detection (workers heartbeat; a worker
// silent past the suspect timeout is reported Down to every poll).
//
// Every operation is a prompt request/response — workers poll instead
// of blocking in the server — so every worker RPC can carry a deadline
// and a vanished coordinator always surfaces as a typed CoordDownError
// within that deadline, never as a hang.
//
// Quiescence uses the classic sum-matching argument over monotonic
// counters: every worker reports (wire frames sent, wire frames
// applied, locally idle). The cluster is quiet when every worker has
// reported, every worker is idle, the sums match, and the previous
// evaluation — also a candidate — saw identical sums. Counters only
// grow, so two consecutive matching candidates imply no frame was in
// flight between them.
// Membership is epoch-based: the coordinator stamps every epoch with a
// generation (starting at 1) and every worker RPC carries its
// generation. A worker from a dead epoch — one the launcher has moved
// past with BeginEpoch — gets a typed stale-generation rejection
// instead of silently polluting the new epoch's collectives. The
// coordinator also doubles as the cluster's checkpoint store: workers
// save per-shard state at step barriers ("ckpt") and a relaunched
// epoch fetches the latest complete restore point ("restore").
type Coordinator struct {
	nodes int

	// SuspectTimeout, when positive, declares a joined worker down
	// after that much silence (workers heartbeat at a fraction of it).
	// Joiners report their own configured timeouts and the coordinator
	// adopts the largest it has seen, so setting it here is optional.
	SuspectTimeout time.Duration

	mu sync.Mutex

	gen       uint32
	peers     map[int]string
	firstJoin time.Time
	lastSeen  map[int]time.Time
	left      map[int]bool
	reports   map[int]quietReport
	prevS     int64
	prevA     int64
	prevOK    bool

	reduces  map[string]*reduceState
	barriers map[string]*barrierState
	done     chan struct{}

	// ckpts accumulates the running epoch's per-step checkpoints;
	// restore is the point frozen at the last BeginEpoch (the newest
	// checkpoint every current-epoch shard had saved). pendingRescale,
	// when nonzero, is a planned membership change: op responses carry
	// it so every worker unwinds with a typed RescaleError at its next
	// collective.
	ckpts          map[uint64]*ckptState
	restore        *RestorePoint
	pendingRescale int

	conns map[net.Conn]struct{} // live worker connections (for Kill)
}

// ckptState is one step's checkpoint being assembled: complete once
// every node of the saving epoch has stored its shard.
type ckptState struct {
	nodes  int
	shards map[int][]byte
}

// RestorePoint is a complete cluster checkpoint: every shard of one
// epoch, at one step barrier. Shards are indexed by the saving epoch's
// node ids — a restoring epoch with a different node count replays all
// of them (shard payloads are keyed by global indices).
type RestorePoint struct {
	Step   uint64
	Nodes  int
	Shards [][]byte
}

type barrierState struct {
	arrived  map[int]bool
	released bool
	observed map[int]bool // nodes that have seen the release

	// Release requires two consecutive quiescent evaluations with
	// unchanged counter sums (same rule as quietEvalLocked): a single
	// balanced observation can be a transient artifact of reports taken
	// at different instants while a message is between a handler and
	// the wire.
	prevS, prevA int64
	prevOK       bool
}

type quietReport struct {
	sent, applied int64
	idle          bool
}

type reduceState struct {
	vals      map[int]uint64
	op        string // "" (sum), "min", or "max" — fixed by the first contributor
	count     int    // contributions required (0 = every node)
	total     uint64
	done      bool
	collected map[int]bool // nodes that have received the total
}

// coordMsg is both request and response of the line-oriented JSON
// protocol workers speak to the coordinator.
type coordMsg struct {
	Op      string   `json:"op,omitempty"`
	Node    int      `json:"node"`
	Gen     uint32   `json:"gen,omitempty"` // sender's membership generation (0 = unstamped)
	Addr    string   `json:"addr,omitempty"`
	Sent    int64    `json:"sent,omitempty"`
	Applied int64    `json:"applied,omitempty"`
	Idle    bool     `json:"idle,omitempty"`
	Key     string   `json:"key,omitempty"`
	Val     uint64   `json:"val,omitempty"`
	ROp     string   `json:"rop,omitempty"`   // reduction operator ("" = sum, "min", "max")
	Count   int      `json:"count,omitempty"` // contributions required (0 = every node)
	Step    uint64   `json:"step,omitempty"`    // checkpoint step ("ckpt"/"restore")
	Data    []byte   `json:"data,omitempty"`    // checkpoint shard payload
	Suspect int64    `json:"suspect,omitempty"` // joiner's suspect timeout, ns
	OK      bool     `json:"ok"`
	Err     string   `json:"err,omitempty"`
	Stale   uint32   `json:"stale,omitempty"`   // rejection: coordinator's newer generation
	Rescale int      `json:"rescale,omitempty"` // planned next-epoch node count
	RGen    uint32   `json:"rgen,omitempty"`    // generation the rescaled epoch will get
	Quiet   bool     `json:"quiet,omitempty"`
	Ready   bool     `json:"ready,omitempty"` // polled op (join/reduce) completed
	Total   uint64   `json:"total,omitempty"`
	Nodes   int      `json:"nodes,omitempty"`  // restore point's saving node count
	Shards  [][]byte `json:"shards,omitempty"` // restore point's per-node payloads
	Peers   []string `json:"peers,omitempty"`
	Down    []int    `json:"down,omitempty"` // workers silent past the suspect timeout
}

// NewCoordinator creates a coordinator expecting the given worker
// count.
func NewCoordinator(nodes int) *Coordinator {
	return &Coordinator{
		nodes:    nodes,
		gen:      1,
		peers:    make(map[int]string),
		lastSeen: make(map[int]time.Time),
		left:     make(map[int]bool),
		reports:  make(map[int]quietReport),
		reduces:  make(map[string]*reduceState),
		barriers: make(map[string]*barrierState),
		ckpts:    make(map[uint64]*ckptState),
		done:     make(chan struct{}),
		conns:    make(map[net.Conn]struct{}),
	}
}

// Done is closed once every worker has said goodbye.
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// Generation is the current epoch's generation stamp.
func (c *Coordinator) Generation() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// Nodes is the current epoch's expected worker count.
func (c *Coordinator) Nodes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodes
}

// BeginEpoch moves the cluster to a fresh epoch with the given worker
// count: the generation bumps, membership / quiescence / barrier /
// reduce state resets, any pending rescale signal clears, and the
// restore point freezes at the newest complete checkpoint. Workers of
// the dead epoch that are still talking get stale-generation
// rejections from here on. Returns the new generation.
func (c *Coordinator) BeginEpoch(nodes int) uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if rp := c.latestCompleteLocked(); rp != nil {
		c.restore = rp
	}
	c.ckpts = make(map[uint64]*ckptState)
	c.gen++
	c.nodes = nodes
	c.peers = make(map[int]string)
	c.firstJoin = time.Time{}
	c.lastSeen = make(map[int]time.Time)
	c.left = make(map[int]bool)
	c.reports = make(map[int]quietReport)
	c.prevS, c.prevA, c.prevOK = 0, 0, false
	c.reduces = make(map[string]*reduceState)
	c.barriers = make(map[string]*barrierState)
	c.pendingRescale = 0
	return c.gen
}

// Rescale schedules a planned membership change to the given node
// count: every worker's next collective RPC carries the signal and
// unwinds with a typed RescaleError, after which the launcher calls
// BeginEpoch(nodes) and relaunches from the restore point. Returns the
// generation the rescaled epoch will be given.
func (c *Coordinator) Rescale(nodes int) uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pendingRescale = nodes
	return c.gen + 1
}

// Restore returns the current restore point (nil before any complete
// checkpoint has been frozen by BeginEpoch).
func (c *Coordinator) Restore() *RestorePoint {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.restore
}

// latestCompleteLocked picks the newest step for which every node of
// the saving epoch stored a shard; falls back to nil (caller keeps the
// previous restore point) when the dead epoch never completed one.
func (c *Coordinator) latestCompleteLocked() *RestorePoint {
	best := uint64(0)
	var bestSt *ckptState
	for step, st := range c.ckpts {
		if len(st.shards) == st.nodes && (bestSt == nil || step > best) {
			best, bestSt = step, st
		}
	}
	if bestSt == nil {
		return nil
	}
	rp := &RestorePoint{Step: best, Nodes: bestSt.nodes, Shards: make([][]byte, bestSt.nodes)}
	for i := 0; i < bestSt.nodes; i++ {
		rp.Shards[i] = bestSt.shards[i]
	}
	return rp
}

// Serve accepts worker connections until the listener closes. Call
// `ln.Close()` after Done() fires (or on error) to end it.
func (c *Coordinator) Serve(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		c.mu.Lock()
		c.conns[conn] = struct{}{}
		c.mu.Unlock()
		go c.handle(conn)
	}
}

// Kill abruptly severs every worker connection — the chaos harness's
// "coordinator process died" lever. Workers' next RPC fails and must
// surface as a CoordDownError.
func (c *Coordinator) Kill() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for conn := range c.conns {
		conn.Close()
	}
}

func (c *Coordinator) handle(conn net.Conn) {
	defer func() {
		c.mu.Lock()
		delete(c.conns, conn)
		c.mu.Unlock()
		conn.Close()
	}()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		var req coordMsg
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := c.dispatch(&req)
		if err := enc.Encode(resp); err != nil {
			return
		}
		if req.Op == "bye" {
			return
		}
	}
}

func (c *Coordinator) dispatch(req *coordMsg) *coordMsg {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Generation gate: an op stamped with a dead epoch's generation is
	// rejected before it can touch membership or collective state (a
	// stale worker must not refresh a new-epoch node's liveness, arrive
	// at its barriers, or pollute its reductions). Unstamped ops (gen 0)
	// pass — single-epoch clusters never stamp.
	if req.Gen != 0 && req.Gen != c.gen {
		return &coordMsg{Stale: c.gen}
	}
	if req.Node < 0 || req.Node >= c.nodes {
		return &coordMsg{Err: fmt.Sprintf("node %d out of range [0,%d)", req.Node, c.nodes)}
	}
	c.lastSeen[req.Node] = time.Now()
	switch req.Op {
	case "join":
		peers, ready, err := c.joinLocked(req.Node, req.Addr, time.Duration(req.Suspect))
		if err != nil {
			return &coordMsg{Err: err.Error()}
		}
		return &coordMsg{OK: true, Ready: ready, Peers: peers}
	case "quiet":
		q := c.quietEvalLocked(req.Node, quietReport{sent: req.Sent, applied: req.Applied, idle: req.Idle})
		return c.annotateLocked(&coordMsg{OK: true, Quiet: q, Down: c.downLocked()})
	case "reduce":
		total, ready := c.reduceLocked(req.Node, req.Key, req.Val, req.ROp, req.Count)
		return c.annotateLocked(&coordMsg{OK: true, Ready: ready, Total: total, Down: c.downLocked()})
	case "barrier":
		rel := c.barrierLocked(req.Node, req.Key, quietReport{sent: req.Sent, applied: req.Applied, idle: req.Idle})
		return c.annotateLocked(&coordMsg{OK: true, Quiet: rel, Down: c.downLocked()})
	case "ping":
		return c.annotateLocked(&coordMsg{OK: true, Down: c.downLocked()})
	case "ckpt":
		c.ckptLocked(req.Node, req.Step, req.Data)
		return c.annotateLocked(&coordMsg{OK: true, Down: c.downLocked()})
	case "restore":
		if c.restore == nil {
			return &coordMsg{OK: true}
		}
		return &coordMsg{OK: true, Ready: true, Step: c.restore.Step, Nodes: c.restore.Nodes, Shards: c.restore.Shards}
	case "bye":
		c.byeLocked(req.Node)
		return &coordMsg{OK: true}
	default:
		return &coordMsg{Err: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// annotateLocked stamps a pending planned rescale onto an op response,
// so every worker learns about the membership change at its next
// collective and unwinds cooperatively.
func (c *Coordinator) annotateLocked(resp *coordMsg) *coordMsg {
	if c.pendingRescale != 0 {
		resp.Rescale = c.pendingRescale
		resp.RGen = c.gen + 1
	}
	return resp
}

// ckptLocked stores one shard of the named step's checkpoint. The
// shard payload is opaque to the coordinator; a step's checkpoint is
// complete (restorable) once every node of the saving epoch has
// stored, and only the newest complete step survives an epoch change.
func (c *Coordinator) ckptLocked(node int, step uint64, data []byte) {
	st := c.ckpts[step]
	if st == nil {
		st = &ckptState{nodes: c.nodes, shards: make(map[int][]byte)}
		c.ckpts[step] = st
	}
	if _, dup := st.shards[node]; dup {
		return // idempotent: a retried save keeps the first copy
	}
	st.shards[node] = append([]byte(nil), data...)
	if len(st.shards) == st.nodes {
		// A newly complete step supersedes older checkpoints; dropping
		// them bounds the store for long runs.
		for s := range c.ckpts {
			if s < step && len(c.ckpts[s].shards) == c.ckpts[s].nodes {
				delete(c.ckpts, s)
			}
		}
	}
}

// joinLocked registers a worker's listen address; once the whole
// cluster has registered it reports ready with the address table
// indexed by node. Workers poll until ready.
func (c *Coordinator) joinLocked(node int, addr string, suspect time.Duration) ([]string, bool, error) {
	if prev, dup := c.peers[node]; dup && addr != "" && prev != addr {
		return nil, false, fmt.Errorf("node %d joined twice (%s, %s)", node, prev, addr)
	}
	if c.firstJoin.IsZero() {
		c.firstJoin = time.Now()
	}
	if addr != "" {
		c.peers[node] = addr
	}
	if suspect > c.SuspectTimeout {
		c.SuspectTimeout = suspect
	}
	if len(c.peers) < c.nodes {
		// Assembly can legitimately be slow, but with failure detection
		// on it must not wait forever on a worker that died before
		// joining: past a generous grace the join itself fails, so every
		// surviving worker gets a diagnosed exit instead of a hang.
		if c.SuspectTimeout > 0 {
			grace := 4 * c.SuspectTimeout
			if grace < 5*time.Second {
				grace = 5 * time.Second
			}
			if time.Since(c.firstJoin) > grace {
				return nil, false, fmt.Errorf("cluster failed to assemble: %d/%d workers joined within %v",
					len(c.peers), c.nodes, grace)
			}
		}
		return nil, false, nil
	}
	out := make([]string, c.nodes)
	for i, a := range c.peers {
		out[i] = a
	}
	return out, true, nil
}

// downLocked lists joined workers that have been silent past the
// suspect timeout — the coordinator-side half of failure detection.
// Heartbeats (op "ping") keep a live worker's lastSeen fresh even while
// it computes, so staleness really means the process is gone or
// unreachable. Workers that said goodbye are not dead, just done.
func (c *Coordinator) downLocked() []int {
	if c.SuspectTimeout <= 0 || len(c.peers) < c.nodes {
		return nil
	}
	now := time.Now()
	var down []int
	for i := 0; i < c.nodes; i++ {
		if c.left[i] {
			continue
		}
		seen, ok := c.lastSeen[i]
		if ok && now.Sub(seen) > c.SuspectTimeout {
			down = append(down, i)
		}
	}
	return down
}

// quietEvalLocked folds one worker's report into the global picture and
// reports whether the cluster is provably quiescent.
func (c *Coordinator) quietEvalLocked(node int, r quietReport) bool {
	c.reports[node] = r
	if len(c.reports) < c.nodes {
		return false
	}
	var s, a int64
	allIdle := true
	for _, rep := range c.reports {
		s += rep.sent
		a += rep.applied
		allIdle = allIdle && rep.idle
	}
	candidate := allIdle && s == a
	quiet := candidate && c.prevOK && s == c.prevS && a == c.prevA
	c.prevS, c.prevA, c.prevOK = s, a, candidate
	return quiet
}

// barrierLocked registers node's arrival at the named step barrier and
// reports whether it has released. Workers poll rather than block, and
// every poll refreshes the node's quiescence report — this is what
// keeps the counter picture current while a fast worker waits for a
// skewed peer. Release requires everyone arrived AND a globally
// quiescent instant (all idle, sent == applied), so nothing is on the
// wire when a step boundary commits. Once every node has observed the
// release the entry is deleted — barrier keys are per-step, so a
// long-running cluster must not accrete one forever.
func (c *Coordinator) barrierLocked(node int, key string, r quietReport) bool {
	c.reports[node] = r
	st := c.barriers[key]
	if st == nil {
		st = &barrierState{arrived: make(map[int]bool), observed: make(map[int]bool)}
		c.barriers[key] = st
	}
	st.arrived[node] = true
	if !st.released && len(st.arrived) == c.nodes {
		var s, a int64
		allIdle := true
		for _, rep := range c.reports {
			s += rep.sent
			a += rep.applied
			allIdle = allIdle && rep.idle
		}
		candidate := allIdle && s == a
		if candidate && st.prevOK && s == st.prevS && a == st.prevA {
			st.released = true
		}
		st.prevS, st.prevA, st.prevOK = s, a, candidate
	}
	if !st.released {
		return false
	}
	st.observed[node] = true
	if len(st.observed) == c.nodes {
		delete(c.barriers, key)
	}
	return true
}

// reduceLocked folds val into the named reduction; once enough workers
// have contributed it reports ready with the combined value. Workers
// poll (their contribution is idempotent), so the handler never blocks.
// Keys must be unique per collective (tag them with a step or phase
// counter; team collectives additionally carry the team tag). The first
// contributor fixes the key's operator ("" = sum, "min", "max") and
// required contribution count (0 = every node of the epoch); the fold
// happens once, at completion, so min/max need no streaming identity.
// The entry is deleted once every contributor has collected the result,
// so per-step collectives do not leak coordinator memory.
func (c *Coordinator) reduceLocked(node int, key string, val uint64, rop string, count int) (uint64, bool) {
	st := c.reduces[key]
	if st == nil {
		if count <= 0 || count > c.nodes {
			count = c.nodes
		}
		st = &reduceState{vals: make(map[int]uint64), op: rop, count: count, collected: make(map[int]bool)}
		c.reduces[key] = st
	}
	if !st.done {
		st.vals[node] = val
		if len(st.vals) == st.count {
			first := true
			for _, v := range st.vals {
				switch {
				case first:
					st.total = v
					first = false
				case st.op == "min" && v < st.total:
					st.total = v
				case st.op == "max" && v > st.total:
					st.total = v
				case st.op != "min" && st.op != "max":
					st.total += v
				}
			}
			st.vals = nil
			st.done = true
		}
	}
	if !st.done {
		return 0, false
	}
	st.collected[node] = true
	if len(st.collected) == st.count {
		delete(c.reduces, key)
	}
	return st.total, true
}

// ReduceTotal returns a completed reduction's sum. A reduction is
// reclaimed once every node has collected it, so this only reports
// ones still in flight or awaiting stragglers.
func (c *Coordinator) ReduceTotal(key string) (uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.reduces[key]
	if st == nil || !st.done {
		return 0, false
	}
	return st.total, true
}

func (c *Coordinator) byeLocked(node int) {
	if c.left[node] {
		return
	}
	c.left[node] = true
	if len(c.left) == c.nodes {
		close(c.done)
	}
}

// coordDialOpts shapes dialCoord's retry loop and the client's per-RPC
// deadline; zero fields take the listed defaults.
type coordDialOpts struct {
	timeout    time.Duration // total dial budget (default 30s)
	backoff    time.Duration // initial retry backoff (default 10ms)
	backoffMax time.Duration // backoff ceiling (default 1s)
	rpcTimeout time.Duration // per-exchange deadline (default 15s; <0 none)
}

func (o coordDialOpts) withDefaults() coordDialOpts {
	if o.timeout == 0 {
		o.timeout = 30 * time.Second
	}
	if o.backoff == 0 {
		o.backoff = 10 * time.Millisecond
	}
	if o.backoffMax == 0 {
		o.backoffMax = time.Second
	}
	if o.rpcTimeout == 0 {
		o.rpcTimeout = 15 * time.Second
	}
	return o
}

// coordClient is a worker's connection to the coordinator. All calls
// are serialized request/response exchanges, each bounded by the RPC
// deadline; any failure is a *CoordDownError.
type coordClient struct {
	addr       string
	rpcTimeout time.Duration
	gen        uint32 // stamped onto every request (0 = unstamped)

	mu   sync.Mutex
	conn net.Conn
	dec  *json.Decoder
	enc  *json.Encoder
}

// dialCoord connects with retries: workers routinely start before the
// coordinator is listening. Timeout and backoff come from the
// transport options (fabric.Options.CoordDial*).
func dialCoord(addr string, o coordDialOpts) (*coordClient, error) {
	o = o.withDefaults()
	deadline := time.Now().Add(o.timeout)
	backoff := o.backoff
	for {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			return &coordClient{
				addr:       addr,
				rpcTimeout: o.rpcTimeout,
				conn:       conn,
				dec:        json.NewDecoder(bufio.NewReader(conn)),
				enc:        json.NewEncoder(conn),
			}, nil
		}
		if time.Now().After(deadline) {
			return nil, &CoordDownError{Addr: addr, Cause: fmt.Errorf("unreachable after %v: %w", o.timeout, err)}
		}
		time.Sleep(backoff + time.Duration(rand.Int63n(int64(backoff))))
		if backoff < o.backoffMax {
			backoff *= 2
		}
	}
}

func (c *coordClient) call(req *coordMsg) (*coordMsg, error) {
	req.Gen = c.gen
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rpcTimeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.rpcTimeout))
	}
	if err := c.enc.Encode(req); err != nil {
		return nil, &CoordDownError{Addr: c.addr, Cause: fmt.Errorf("request: %w", err)}
	}
	var resp coordMsg
	if err := c.dec.Decode(&resp); err != nil {
		return nil, &CoordDownError{Addr: c.addr, Cause: fmt.Errorf("response: %w", err)}
	}
	if c.rpcTimeout > 0 {
		c.conn.SetDeadline(time.Time{})
	}
	if resp.Stale != 0 {
		return nil, &StaleGenerationError{Have: c.gen, Want: resp.Stale, Source: "coordinator"}
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("transport: coordinator: %s", resp.Err)
	}
	return &resp, nil
}

// peerDown converts a response's Down list into the typed error, or
// nil. Any down peer dooms the run; the first is reported. A planned
// rescale outranks it — if the coordinator is rescaling, unwinding
// cooperatively is the point, whether or not a peer also died.
func (c *coordClient) peerDown(resp *coordMsg, suspect time.Duration) error {
	if resp.Rescale != 0 {
		return &RescaleError{Nodes: resp.Rescale, Gen: resp.RGen}
	}
	if len(resp.Down) == 0 {
		return nil
	}
	return &PeerDownError{Node: resp.Down[0], Detector: "coordinator", Silence: suspect}
}

// join registers this worker and polls until the whole cluster has
// assembled. Assembly can legitimately take as long as the slowest
// worker's start, so only coordinator failure — not elapsed time —
// aborts the wait.
func (c *coordClient) join(node int, addr string, suspect time.Duration) ([]string, error) {
	registered := addr
	for {
		resp, err := c.call(&coordMsg{Op: "join", Node: node, Addr: registered, Suspect: int64(suspect)})
		if err != nil {
			return nil, err
		}
		if resp.Ready {
			return resp.Peers, nil
		}
		registered = "" // already recorded; further polls just wait
		time.Sleep(5 * time.Millisecond)
	}
}

func (c *coordClient) quiet(node int, sent, applied int64, idle bool, suspect time.Duration) (bool, error) {
	resp, err := c.call(&coordMsg{Op: "quiet", Node: node, Sent: sent, Applied: applied, Idle: idle})
	if err != nil {
		return false, err
	}
	if err := c.peerDown(resp, suspect); err != nil {
		return false, err
	}
	return resp.Quiet, nil
}

// reduce contributes val and polls until every required worker has
// contributed. rop and count extend the wire message only when set
// (omitempty), so plain sum-over-all-nodes reductions are byte-for-byte
// what pre-collective clients sent.
func (c *coordClient) reduce(node int, key string, val uint64, rop string, count int, suspect time.Duration) (uint64, error) {
	for {
		resp, err := c.call(&coordMsg{Op: "reduce", Node: node, Key: key, Val: val, ROp: rop, Count: count})
		if err != nil {
			return 0, err
		}
		if err := c.peerDown(resp, suspect); err != nil {
			return 0, err
		}
		if resp.Ready {
			return resp.Total, nil
		}
		time.Sleep(time.Millisecond)
	}
}

func (c *coordClient) barrier(node int, key string, sent, applied int64, idle bool, suspect time.Duration) (bool, error) {
	resp, err := c.call(&coordMsg{Op: "barrier", Node: node, Key: key, Sent: sent, Applied: applied, Idle: idle})
	if err != nil {
		return false, err
	}
	if err := c.peerDown(resp, suspect); err != nil {
		return false, err
	}
	return resp.Quiet, nil
}

// ping is the worker heartbeat: it keeps this worker's lastSeen fresh
// at the coordinator (even during long compute phases) and brings back
// the coordinator's view of dead peers.
func (c *coordClient) ping(node int, suspect time.Duration) error {
	resp, err := c.call(&coordMsg{Op: "ping", Node: node})
	if err != nil {
		return err
	}
	return c.peerDown(resp, suspect)
}

// saveCkpt stores this node's shard of the step checkpoint at the
// coordinator. Called at a step barrier (a quiescent instant), so the
// saved cluster state is consistent by construction.
func (c *coordClient) saveCkpt(node int, step uint64, data []byte, suspect time.Duration) error {
	resp, err := c.call(&coordMsg{Op: "ckpt", Node: node, Step: step, Data: data})
	if err != nil {
		return err
	}
	return c.peerDown(resp, suspect)
}

// fetchCkpt retrieves the epoch's restore point; ok is false when no
// complete checkpoint predates this epoch (a cold start).
func (c *coordClient) fetchCkpt(node int) (*RestorePoint, bool, error) {
	resp, err := c.call(&coordMsg{Op: "restore", Node: node})
	if err != nil {
		return nil, false, err
	}
	if !resp.Ready {
		return nil, false, nil
	}
	return &RestorePoint{Step: resp.Step, Nodes: resp.Nodes, Shards: resp.Shards}, true, nil
}

func (c *coordClient) bye(node int) error {
	_, err := c.call(&coordMsg{Op: "bye", Node: node})
	return err
}

func (c *coordClient) close() {
	c.conn.Close()
}
