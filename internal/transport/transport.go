// Package transport carries fabric.Packet traffic over real byte
// streams, so a Gravel cluster can run as N OS processes. The paper
// ships its per-node queues over InfiniBand via MPI (§3.4, §6); this
// package is the reproduction's equivalent layer — connection
// management, framing, reliability, and progress — below the aggregator
// and above the OS.
//
// Two transports register themselves with the fabric registry:
//
//   - "loopback": in-process, every packet round-trips through the real
//     frame codec into bounded per-destination queues. Deterministic,
//     used by unit tests and as a framing-path reference.
//   - "tcp": real sockets. Each process hosts one node; per-destination
//     connection pools with reconnect (exponential backoff + jitter),
//     sequence-numbered frames with cumulative acks and retransmit
//     (exactly-once delivery across connection drops), bounded send and
//     receive queues for backpressure, a FIN/FIN-ACK drain handshake on
//     Close, and a rendezvous coordinator that extends the runtime's
//     Quiet() quiescence barrier across processes.
//
// Virtual-time simulation stays the default elsewhere; the TCP
// transport can charge measured wall-clock time instead
// (fabric.Options.WallClock).
package transport

import (
	"gravel/internal/fabric"
	"gravel/internal/timemodel"
)

func init() {
	fabric.Register("loopback", func(p *timemodel.Params, clocks []*timemodel.Clocks, opt fabric.Options) (fabric.Fabric, error) {
		return NewLoopbackBanked(p, clocks, opt.ResolverBanks), nil
	})
	fabric.Register("tcp", func(p *timemodel.Params, clocks []*timemodel.Clocks, opt fabric.Options) (fabric.Fabric, error) {
		return NewTCP(p, clocks, opt)
	})
}
