package transport

import (
	"fmt"

	"gravel/internal/obs"
	"gravel/internal/rt"
)

// tcpCollectives adapts the coordinator's polled reduction protocol to
// the rt.Collectives surface. Every collective is encoded as one
// coordinator reduction whose key carries the team tag (empty for the
// world team — a world-team sum AllReduce therefore produces the exact
// wire bytes the legacy rt.Collective sum produced) and whose required
// contribution count is the team size, so non-members neither block the
// collective nor are blocked by it.
type tcpCollectives struct {
	t *TCP
}

// Collectives returns the transport's host-side collective surface,
// bound to this process's node. Without a coordinator (a standalone
// worker) the collectives degrade to the single-process identity, the
// same convention TCP.Reduce uses.
func (t *TCP) Collectives() rt.Collectives {
	return tcpCollectives{t: t}
}

func (c tcpCollectives) member(op, key string, team rt.Team) error {
	if !team.Contains(c.t.self) {
		return &rt.CollectiveError{Op: op, Key: key,
			Detail: fmt.Sprintf("node %d is not a member of team %s", c.t.self, team.Tag())}
	}
	return nil
}

// reduce runs one coordinator reduction for a team collective. rop and
// count are omitted from the wire message for a world-team sum, keeping
// legacy byte-compatibility; teams always carry an explicit count so
// the coordinator completes at team-size contributions.
func (c tcpCollectives) reduce(key string, team rt.Team, rop string, val uint64) (uint64, error) {
	t := c.t
	if t.coord == nil {
		return val, nil
	}
	if err := t.Err(); err != nil {
		return 0, err
	}
	count := 0
	if !team.World() {
		count = team.Size(t.n)
	}
	total, err := t.coord.reduce(t.self, key, val, rop, count, t.suspect)
	if err != nil {
		t.fail(err)
		return 0, err
	}
	return total, nil
}

func (c tcpCollectives) emit(tag string, team rt.Team, val uint64) {
	if !obs.Enabled() {
		return
	}
	size := 0 // 0 = world team
	if !team.World() {
		size = team.Size(c.t.n)
	}
	obs.Emit(obs.KCollective, c.t.self, int64(size), int64(val), tag)
}

// AllReduce implements rt.Collectives.
func (c tcpCollectives) AllReduce(key string, team rt.Team, op rt.ReduceOp, val uint64) (uint64, error) {
	if err := c.member("allreduce", key, team); err != nil {
		return 0, err
	}
	rop := ""
	if op != rt.OpSum {
		rop = op.String()
	}
	total, err := c.reduce(key+team.Tag(), team, rop, val)
	if err != nil {
		return 0, err
	}
	c.emit("allreduce:"+op.String(), team, total)
	return total, nil
}

// Broadcast implements rt.Collectives: root contributes its value and
// everyone else the sum identity, so the team-wide sum is root's value.
func (c tcpCollectives) Broadcast(key string, team rt.Team, root int, val uint64) (uint64, error) {
	if err := c.member("broadcast", key, team); err != nil {
		return 0, err
	}
	if !team.Contains(root) {
		return 0, &rt.CollectiveError{Op: "broadcast", Key: key,
			Detail: fmt.Sprintf("root %d is not a member of team %s", root, team.Tag())}
	}
	contrib := uint64(0)
	if c.t.self == root {
		contrib = val
	}
	total, err := c.reduce(key+":bcast"+team.Tag(), team, "", contrib)
	if err != nil {
		return 0, err
	}
	c.emit("broadcast", team, total)
	return total, nil
}

// Barrier implements rt.Collectives. The world-team barrier reuses the
// legacy "barrier:"+key sum-of-zeros encoding byte for byte, so mixed
// fleets (old Barrier callers, new Collectives callers) rendezvous on
// the same coordinator entry.
func (c tcpCollectives) Barrier(key string, team rt.Team) error {
	if err := c.member("barrier", key, team); err != nil {
		return err
	}
	_, err := c.reduce("barrier:"+key+team.Tag(), team, "", 0)
	if err != nil {
		return err
	}
	c.emit("barrier", team, 0)
	return nil
}

var _ rt.Collectives = tcpCollectives{}
