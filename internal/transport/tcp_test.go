package transport

import (
	"bufio"
	"net"
	"sync"
	"testing"
	"time"

	"gravel/internal/fabric"
	"gravel/internal/timemodel"
	"gravel/internal/wire"
)

// newTCPCluster assembles n TCP fabrics (one per simulated process)
// around an in-process coordinator. Joins block until the whole
// cluster has assembled, so construction is concurrent.
func newTCPCluster(t *testing.T, n int) []*TCP {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := NewCoordinator(n)
	go c.Serve(ln)
	t.Cleanup(func() { ln.Close() })

	fabs := make([]*TCP, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fabs[i], errs[i] = NewTCP(timemodel.Default(), newClocks(n), fabric.Options{
				Self:  i,
				Coord: ln.Addr().String(),
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("fabric %d: %v", i, err)
		}
	}
	return fabs
}

// allQuiet polls every fabric's Quiet — deliberately without
// short-circuiting. Coordinator-based quiescence needs each process to
// keep reporting its counters (in real deployments every process's own
// Quiesce loop does this); a short-circuiting f0 && f1 would starve
// f1's reports and deadlock the detection.
func allQuiet(fabs []*TCP) bool {
	quiet := true
	for _, f := range fabs {
		if !f.Quiet() {
			quiet = false
		}
	}
	return quiet
}

func closeAll(fabs []*TCP) {
	var wg sync.WaitGroup
	for _, f := range fabs {
		wg.Add(1)
		go func(f *TCP) {
			defer wg.Done()
			f.Close()
		}(f)
	}
	wg.Wait()
}

func TestTCPSingleNodeNeedsNoCoordinator(t *testing.T) {
	f, err := NewTCP(timemodel.Default(), newClocks(1), fabric.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f.Send(0, 0, incBuf(3, 1), 1)
	f.Done(<-f.Inbox(0))
	if !f.Quiet() {
		t.Fatal("single node not quiet after Done")
	}
	f.Close()
}

func TestTCPDeliversAndQuiesces(t *testing.T) {
	fabs := newTCPCluster(t, 2)
	defer closeAll(fabs)

	buf := incBuf(7, 2)
	fabs[0].Send(0, 1, buf, 1)
	var p fabric.Packet
	select {
	case p = <-fabs[1].Inbox(1):
	case <-time.After(5 * time.Second):
		t.Fatal("packet never delivered")
	}
	if p.From != 0 || p.To != 1 || p.Msgs != 1 || p.Routed || string(p.Buf) != string(buf) {
		t.Fatalf("bad packet %+v", p)
	}
	// Not applied yet: the cluster must not report quiet.
	if fabs[0].Quiet() && fabs[1].Quiet() && fabs[0].Quiet() {
		t.Fatal("cluster quiet while a packet is being applied")
	}
	fabs[1].Done(p)
	waitQuiet(t, "tcp pair", func() bool { return allQuiet(fabs) })

	if got := fabs[0].NetMetrics().PerDest.Packets(1); got != 1 {
		t.Fatalf("sender PerDest.Packets(1) = %d, want 1", got)
	}
}

func TestTCPReduceSumsAcrossFabrics(t *testing.T) {
	fabs := newTCPCluster(t, 3)
	defer closeAll(fabs)

	totals := make([]uint64, 3)
	var wg sync.WaitGroup
	for i, f := range fabs {
		wg.Add(1)
		go func(i int, f *TCP) {
			defer wg.Done()
			totals[i], _ = f.Reduce("sum", uint64(10*(i+1)))
		}(i, f)
	}
	wg.Wait()
	for i, tot := range totals {
		if tot != 60 {
			t.Fatalf("fabric %d reduced to %d, want 60", i, tot)
		}
	}
}

func TestTCPStepBarrierAligns(t *testing.T) {
	fabs := newTCPCluster(t, 2)
	defer closeAll(fabs)

	done := make(chan int, 2)
	go func() {
		fabs[0].StepBarrier()
		done <- 0
	}()
	select {
	case <-done:
		t.Fatal("barrier released with one of two processes absent")
	case <-time.After(50 * time.Millisecond):
	}
	go func() {
		fabs[1].StepBarrier()
		done <- 1
	}()
	for i := 0; i < 2; i++ {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("step barrier never released")
		}
	}
}

// TestTCPRecoversFromConnectionDrop is the transport's recovery
// contract: sever every established connection mid-stream and every
// message must still arrive exactly once, with the reconnect counted.
func TestTCPRecoversFromConnectionDrop(t *testing.T) {
	fabs := newTCPCluster(t, 2)

	const total = 48
	recvd := make(chan uint64, total)
	go func() {
		for p := range fabs[1].Inbox(1) {
			wire.Decode(p.Buf, func(_, a, _ uint64) { recvd <- a })
			fabs[1].Done(p)
		}
	}()

	collect := func(want int, seen map[uint64]bool) {
		t.Helper()
		for i := 0; i < want; i++ {
			select {
			case a := <-recvd:
				if seen[a] {
					t.Fatalf("message %d delivered twice", a)
				}
				seen[a] = true
			case <-time.After(10 * time.Second):
				t.Fatalf("gave up with %d messages delivered", len(seen))
			}
		}
	}

	seen := make(map[uint64]bool)
	// Phase 1 proves the stream is established and flowing.
	for i := 0; i < total/4; i++ {
		fabs[0].Send(0, 1, incBuf(uint64(i), 1), 1)
	}
	collect(total/4, seen)

	// Sever everything, then keep sending: the sender must reconnect
	// (with backoff) and retransmit whatever the drop swallowed.
	fabs[0].DropConnections()
	fabs[1].DropConnections()
	for i := total / 4; i < total; i++ {
		fabs[0].Send(0, 1, incBuf(uint64(i), 1), 1)
		if i == total/2 {
			fabs[0].DropConnections() // once more, mid-retransmission
		}
	}
	collect(total-total/4, seen)

	for i := 0; i < total; i++ {
		if !seen[uint64(i)] {
			t.Fatalf("message %d lost", i)
		}
	}
	if got := fabs[0].Reconnects.Load(); got < 1 {
		t.Fatalf("Reconnects = %d, want >= 1", got)
	}
	waitQuiet(t, "tcp pair", func() bool { return allQuiet(fabs) })
	closeAll(fabs)
}

func TestTCPRejectsPeersWithoutCoordinator(t *testing.T) {
	_, err := NewTCP(timemodel.Default(), newClocks(2), fabric.Options{
		Peers: []string{"127.0.0.1:1", "127.0.0.1:2"},
	})
	if err == nil {
		t.Fatal("NewTCP accepted a multi-node peers list without a coordinator")
	}
}

// TestTCPCloseInterruptsReconnect pins the shutdown path against a
// vanished peer: a writer stuck in its dial/backoff loop must notice
// stop and fall into the bounded drain instead of redialing forever.
func TestTCPCloseInterruptsReconnect(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nobody listening: every dial is refused

	tr := &TCP{Metrics: fabric.NewMetrics(2), params: timemodel.Default(), clocks: newClocks(2), n: 2, self: 0}
	s := &sender{
		t:     tr,
		dest:  1,
		addr:  addr,
		queue: make(chan *frame, sendQueueFrames),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go s.run()
	time.Sleep(50 * time.Millisecond) // let the writer enter the backoff loop

	done := make(chan struct{})
	go func() {
		s.shutdown()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("shutdown hung in the reconnect loop")
	}
}

// newRecvOnlyTCP assembles the receive side of a TCP fabric without
// senders or a coordinator, so tests can drive its wire protocol with
// hand-rolled connections. gen is the membership generation (0 =
// fixed-membership, unstamped).
func newRecvOnlyTCP(t *testing.T, n, self int, gen uint32) *TCP {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tr := &TCP{
		Metrics: fabric.NewMetrics(n),
		params:  timemodel.Default(),
		clocks:  newClocks(n),
		n:       n,
		self:    self,
		gen:     gen,
		banks:   1,
		ln:      ln,
		inbox:   make([][]chan fabric.Packet, n),
		recv:    make([]*peerRecv, n),
		conns:   make(map[net.Conn]struct{}),
		senders: make([]*sender, n),
	}
	for i := range tr.inbox {
		tr.inbox[i] = []chan fabric.Packet{make(chan fabric.Packet, recvQueueFrames)}
		tr.recv[i] = &peerRecv{}
	}
	go tr.acceptLoop()
	return tr
}

// TestTCPSupersedesStaleInboundConn pins the receive side's
// exactly-once contract across reconnects: a new HELLO from a peer
// must retire the old connection before the resume point is acked, and
// a retransmitted frame must be re-acked without a second delivery.
func TestTCPSupersedesStaleInboundConn(t *testing.T) {
	tr := newRecvOnlyTCP(t, 2, 1, 0)
	defer tr.Close()

	dial := func() (net.Conn, *bufio.Reader) {
		t.Helper()
		c, err := net.DialTimeout("tcp", tr.Addr(), dialTimeout)
		if err != nil {
			t.Fatal(err)
		}
		return c, bufio.NewReader(c)
	}
	expectAck := func(br *bufio.Reader, seq uint64) {
		t.Helper()
		f, err := readFrame(br)
		if err != nil {
			t.Fatalf("reading ack: %v", err)
		}
		if f.typ != frameAck || f.seq != seq {
			t.Fatalf("got frame type %d seq %d, want ack seq %d", f.typ, f.seq, seq)
		}
	}
	recvInc := func(want uint64) {
		t.Helper()
		select {
		case p := <-tr.Inbox(1):
			var got uint64
			wire.Decode(p.Buf, func(_, a, _ uint64) { got = a })
			if got != want {
				t.Fatalf("delivered address %d, want %d", got, want)
			}
			tr.Done(p)
		case <-time.After(5 * time.Second):
			t.Fatal("packet never delivered")
		}
	}

	connA, brA := dial()
	defer connA.Close()
	if err := writeFrame(connA, &frame{typ: frameHello, from: 0, to: 1}); err != nil {
		t.Fatal(err)
	}
	expectAck(brA, 0)
	if err := writeFrame(connA, &frame{typ: frameData, from: 0, to: 1, msgs: 1, seq: 1, payload: incBuf(5, 1)}); err != nil {
		t.Fatal(err)
	}
	recvInc(5)
	expectAck(brA, 1)

	// Reconnect: the new stream's HELLO must resume at seq 1 and cut
	// the old connection off before it can deliver anything else.
	connB, brB := dial()
	defer connB.Close()
	if err := writeFrame(connB, &frame{typ: frameHello, from: 0, to: 1}); err != nil {
		t.Fatal(err)
	}
	expectAck(brB, 1)
	connA.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := readFrame(brA); err == nil {
		t.Fatal("superseded connection still alive")
	}

	// The retransmitted window re-acks without a second delivery; the
	// next fresh frame flows normally.
	if err := writeFrame(connB, &frame{typ: frameData, from: 0, to: 1, msgs: 1, seq: 1, payload: incBuf(5, 1)}); err != nil {
		t.Fatal(err)
	}
	expectAck(brB, 1)
	if err := writeFrame(connB, &frame{typ: frameData, from: 0, to: 1, msgs: 1, seq: 2, payload: incBuf(9, 1)}); err != nil {
		t.Fatal(err)
	}
	recvInc(9)
	expectAck(brB, 2)
	select {
	case p := <-tr.Inbox(1):
		t.Fatalf("unexpected extra delivery %+v", p)
	default:
	}
}
