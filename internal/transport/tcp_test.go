package transport

import (
	"net"
	"sync"
	"testing"
	"time"

	"gravel/internal/fabric"
	"gravel/internal/timemodel"
	"gravel/internal/wire"
)

// newTCPCluster assembles n TCP fabrics (one per simulated process)
// around an in-process coordinator. Joins block until the whole
// cluster has assembled, so construction is concurrent.
func newTCPCluster(t *testing.T, n int) []*TCP {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := NewCoordinator(n)
	go c.Serve(ln)
	t.Cleanup(func() { ln.Close() })

	fabs := make([]*TCP, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fabs[i], errs[i] = NewTCP(timemodel.Default(), newClocks(n), fabric.Options{
				Self:  i,
				Coord: ln.Addr().String(),
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("fabric %d: %v", i, err)
		}
	}
	return fabs
}

// allQuiet polls every fabric's Quiet — deliberately without
// short-circuiting. Coordinator-based quiescence needs each process to
// keep reporting its counters (in real deployments every process's own
// Quiesce loop does this); a short-circuiting f0 && f1 would starve
// f1's reports and deadlock the detection.
func allQuiet(fabs []*TCP) bool {
	quiet := true
	for _, f := range fabs {
		if !f.Quiet() {
			quiet = false
		}
	}
	return quiet
}

func closeAll(fabs []*TCP) {
	var wg sync.WaitGroup
	for _, f := range fabs {
		wg.Add(1)
		go func(f *TCP) {
			defer wg.Done()
			f.Close()
		}(f)
	}
	wg.Wait()
}

func TestTCPSingleNodeNeedsNoCoordinator(t *testing.T) {
	f, err := NewTCP(timemodel.Default(), newClocks(1), fabric.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f.Send(0, 0, incBuf(3, 1), 1)
	f.Done(<-f.Inbox(0))
	if !f.Quiet() {
		t.Fatal("single node not quiet after Done")
	}
	f.Close()
}

func TestTCPDeliversAndQuiesces(t *testing.T) {
	fabs := newTCPCluster(t, 2)
	defer closeAll(fabs)

	buf := incBuf(7, 2)
	fabs[0].Send(0, 1, buf, 1)
	var p fabric.Packet
	select {
	case p = <-fabs[1].Inbox(1):
	case <-time.After(5 * time.Second):
		t.Fatal("packet never delivered")
	}
	if p.From != 0 || p.To != 1 || p.Msgs != 1 || p.Routed || string(p.Buf) != string(buf) {
		t.Fatalf("bad packet %+v", p)
	}
	// Not applied yet: the cluster must not report quiet.
	if fabs[0].Quiet() && fabs[1].Quiet() && fabs[0].Quiet() {
		t.Fatal("cluster quiet while a packet is being applied")
	}
	fabs[1].Done(p)
	waitQuiet(t, "tcp pair", func() bool { return allQuiet(fabs) })

	if got := fabs[0].NetMetrics().PerDest.Packets(1); got != 1 {
		t.Fatalf("sender PerDest.Packets(1) = %d, want 1", got)
	}
}

func TestTCPReduceSumsAcrossFabrics(t *testing.T) {
	fabs := newTCPCluster(t, 3)
	defer closeAll(fabs)

	totals := make([]uint64, 3)
	var wg sync.WaitGroup
	for i, f := range fabs {
		wg.Add(1)
		go func(i int, f *TCP) {
			defer wg.Done()
			totals[i], _ = f.Reduce("sum", uint64(10*(i+1)))
		}(i, f)
	}
	wg.Wait()
	for i, tot := range totals {
		if tot != 60 {
			t.Fatalf("fabric %d reduced to %d, want 60", i, tot)
		}
	}
}

func TestTCPStepBarrierAligns(t *testing.T) {
	fabs := newTCPCluster(t, 2)
	defer closeAll(fabs)

	done := make(chan int, 2)
	go func() {
		fabs[0].StepBarrier()
		done <- 0
	}()
	select {
	case <-done:
		t.Fatal("barrier released with one of two processes absent")
	case <-time.After(50 * time.Millisecond):
	}
	go func() {
		fabs[1].StepBarrier()
		done <- 1
	}()
	for i := 0; i < 2; i++ {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("step barrier never released")
		}
	}
}

// TestTCPRecoversFromConnectionDrop is the transport's recovery
// contract: sever every established connection mid-stream and every
// message must still arrive exactly once, with the reconnect counted.
func TestTCPRecoversFromConnectionDrop(t *testing.T) {
	fabs := newTCPCluster(t, 2)

	const total = 48
	recvd := make(chan uint64, total)
	go func() {
		for p := range fabs[1].Inbox(1) {
			wire.Decode(p.Buf, func(_, a, _ uint64) { recvd <- a })
			fabs[1].Done(p)
		}
	}()

	collect := func(want int, seen map[uint64]bool) {
		t.Helper()
		for i := 0; i < want; i++ {
			select {
			case a := <-recvd:
				if seen[a] {
					t.Fatalf("message %d delivered twice", a)
				}
				seen[a] = true
			case <-time.After(10 * time.Second):
				t.Fatalf("gave up with %d messages delivered", len(seen))
			}
		}
	}

	seen := make(map[uint64]bool)
	// Phase 1 proves the stream is established and flowing.
	for i := 0; i < total/4; i++ {
		fabs[0].Send(0, 1, incBuf(uint64(i), 1), 1)
	}
	collect(total/4, seen)

	// Sever everything, then keep sending: the sender must reconnect
	// (with backoff) and retransmit whatever the drop swallowed.
	fabs[0].DropConnections()
	fabs[1].DropConnections()
	for i := total / 4; i < total; i++ {
		fabs[0].Send(0, 1, incBuf(uint64(i), 1), 1)
		if i == total/2 {
			fabs[0].DropConnections() // once more, mid-retransmission
		}
	}
	collect(total-total/4, seen)

	for i := 0; i < total; i++ {
		if !seen[uint64(i)] {
			t.Fatalf("message %d lost", i)
		}
	}
	if got := fabs[0].Reconnects.Load(); got < 1 {
		t.Fatalf("Reconnects = %d, want >= 1", got)
	}
	waitQuiet(t, "tcp pair", func() bool { return allQuiet(fabs) })
	closeAll(fabs)
}
