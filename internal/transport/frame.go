package transport

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"

	"gravel/internal/wire"
)

// errCorruptPayload marks a frame whose header parsed but whose payload
// failed the CRC — in-flight corruption rather than a protocol
// violation. Receivers count these (NetStats.CorruptFrames) and force a
// retransmit instead of dropping the loss silently.
var errCorruptPayload = errors.New("transport: frame CRC mismatch")

// Wire framing: every unit on a transport connection is one frame — a
// fixed 36-byte little-endian header followed by an optional payload.
//
//	offset  size  field
//	0       4     magic "GRVL"
//	4       1     version (1)
//	5       1     type
//	6       2     membership generation (0 = not generation-stamped)
//	8       4     from node
//	12      4     to node
//	16      4     message count
//	20      4     payload length
//	24      8     sequence number
//	32      4     CRC-32 (IEEE) of the payload
//
// Data and routed-data payloads are exactly the wire-package per-node
// (or per-group) queue encodings; control frames carry no payload and
// reuse the seq field (hello: stream resume point; ack: cumulative
// acknowledged seq).
const (
	frameMagic      = 0x4C565247 // "GRVL"
	frameVersion    = 1
	headerBytes     = 36
	maxFramePayload = 1 << 24
)

type frameType uint8

const (
	// frameData carries one per-node queue (wire.MsgWireBytes records).
	frameData frameType = iota + 1
	// frameRouted carries one per-group queue (wire.RoutedMsgBytes
	// records bound for a gateway, §10).
	frameRouted
	// frameHello opens a sender→receiver stream; seq echoes the highest
	// sequence number the sender believes was delivered, and the
	// receiver's helloAck reply carries its own cumulative count so the
	// sender can trim and retransmit.
	frameHello
	// frameAck acknowledges every data frame with seq ≤ its seq field.
	frameAck
	// frameFin asks the receiver to drain and confirm with frameFinAck;
	// the graceful half of the close handshake.
	frameFin
	frameFinAck
	// framePing is a sender→receiver heartbeat; the receiver answers
	// with a cumulative frameAck, so liveness and ack progress share one
	// signal. Pings carry no payload and no sequence number.
	framePing
	// frameEvict rejects a stale-generation hello: the receiver is on a
	// newer membership generation than the sender's stamp, so instead of
	// a helloAck it replies frameEvict (seq carries the receiver's
	// generation) and drops the connection. The sender surfaces a typed
	// *StaleGenerationError rather than retrying forever.
	frameEvict
)

func (t frameType) valid() bool { return t >= frameData && t <= frameEvict }

// frame is one transport protocol unit.
type frame struct {
	typ      frameType
	from, to int
	msgs     int
	seq      uint64
	gen      uint16 // membership generation stamp (0 = unstamped)
	payload  []byte

	// sentAt is the flight recorder's timestamp of the frame's first
	// transmission (0 when tracing was off); the cumulative ack that
	// trims the frame closes the flush→ack RTT sample.
	sentAt int64
}

// appendFrame encodes f onto dst and returns the extended slice. It
// panics on a payload over maxFramePayload: the receiver rejects such
// a frame as malformed, so emitting it could only poison the stream
// (and its retransmit window) — oversized buffers must fail at the
// source.
func appendFrame(dst []byte, f *frame) []byte {
	if len(f.payload) > maxFramePayload {
		panic(fmt.Sprintf("transport: %d-byte frame payload exceeds the %d-byte limit", len(f.payload), maxFramePayload))
	}
	var h [headerBytes]byte
	binary.LittleEndian.PutUint32(h[0:4], frameMagic)
	h[4] = frameVersion
	h[5] = byte(f.typ)
	binary.LittleEndian.PutUint16(h[6:8], f.gen)
	binary.LittleEndian.PutUint32(h[8:12], uint32(f.from))
	binary.LittleEndian.PutUint32(h[12:16], uint32(f.to))
	binary.LittleEndian.PutUint32(h[16:20], uint32(f.msgs))
	binary.LittleEndian.PutUint32(h[20:24], uint32(len(f.payload)))
	binary.LittleEndian.PutUint64(h[24:32], f.seq)
	binary.LittleEndian.PutUint32(h[32:36], crc32.ChecksumIEEE(f.payload))
	dst = append(dst, h[:]...)
	return append(dst, f.payload...)
}

// writeFrame writes one encoded frame to w.
func writeFrame(w io.Writer, f *frame) error {
	buf := appendFrame(make([]byte, 0, headerBytes+len(f.payload)), f)
	_, err := w.Write(buf)
	return err
}

// framePool recycles frame structs on the transport's send path, where
// every flushed per-node queue once allocated one. Frames are taken in
// TCP.send and returned when the ack trims them out of the retransmit
// window; drop paths (a failed transport discarding its queue) simply
// leak them to the GC, which is safe but unpooled.
var framePool = sync.Pool{New: func() any { return new(frame) }}

// getFrame returns a zeroed frame from the pool.
func getFrame() *frame {
	f := framePool.Get().(*frame)
	*f = frame{}
	return f
}

// putFrame recycles a frame and its payload buffer. The caller must be
// the frame's sole owner (for window frames: only after the cumulative
// ack proves no retransmit can ever replay it).
func putFrame(f *frame) {
	wire.PutBuf(f.payload)
	f.payload = nil
	framePool.Put(f)
}

// readFrameInto reads and validates one frame from a stream into f,
// drawing the payload buffer from the wire packet pool (delivery hands
// it to the inbox packet, whose Done recycles it). Malformed input
// returns an error and poisons the stream (the caller must drop the
// connection); it never panics. On error f holds no pooled buffer.
func readFrameInto(r *bufio.Reader, f *frame) error {
	var h [headerBytes]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return err
	}
	if m := binary.LittleEndian.Uint32(h[0:4]); m != frameMagic {
		return fmt.Errorf("transport: bad frame magic %#x", m)
	}
	if h[4] != frameVersion {
		return fmt.Errorf("transport: unsupported frame version %d", h[4])
	}
	typ := frameType(h[5])
	if !typ.valid() {
		return fmt.Errorf("transport: unknown frame type %d", h[5])
	}
	plen := binary.LittleEndian.Uint32(h[20:24])
	if plen > maxFramePayload {
		return fmt.Errorf("transport: frame payload %d exceeds limit %d", plen, maxFramePayload)
	}
	*f = frame{
		typ:  typ,
		from: int(binary.LittleEndian.Uint32(h[8:12])),
		to:   int(binary.LittleEndian.Uint32(h[12:16])),
		msgs: int(binary.LittleEndian.Uint32(h[16:20])),
		seq:  binary.LittleEndian.Uint64(h[24:32]),
		gen:  binary.LittleEndian.Uint16(h[6:8]),
	}
	if plen > 0 {
		f.payload = wire.GetBuf(int(plen))[:plen]
		if _, err := io.ReadFull(r, f.payload); err != nil {
			wire.PutBuf(f.payload)
			f.payload = nil
			return err
		}
	}
	if got, want := crc32.ChecksumIEEE(f.payload), binary.LittleEndian.Uint32(h[32:36]); got != want {
		wire.PutBuf(f.payload)
		f.payload = nil
		return fmt.Errorf("%w (got %#x want %#x)", errCorruptPayload, got, want)
	}
	return nil
}

// readFrame is readFrameInto with a freshly allocated frame, for call
// sites (handshakes, tests) that keep the frame around.
func readFrame(r *bufio.Reader) (*frame, error) {
	f := new(frame)
	if err := readFrameInto(r, f); err != nil {
		return nil, err
	}
	return f, nil
}

// parseFrame decodes a frame from a complete in-memory buffer (the
// loopback transport's path).
func parseFrame(b []byte) (*frame, error) {
	br := bufio.NewReader(bytes.NewReader(b))
	f, err := readFrame(br)
	if err != nil {
		return nil, err
	}
	if br.Buffered() > 0 {
		return nil, fmt.Errorf("transport: %d trailing bytes after frame", br.Buffered())
	}
	return f, nil
}
